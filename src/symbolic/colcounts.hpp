#pragma once
/// \file colcounts.hpp
/// \brief Symbolic Cholesky column counts via row-subtree traversal.

#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace sptrsv {

/// Number of nonzeros in each column of the Cholesky factor L (diagonal
/// included) of a symmetric-pattern matrix with elimination tree `parent`.
///
/// Uses the row-subtree characterization: L(k,j) != 0 iff j is on the etree
/// path from some i (with a_ki != 0, i < k) up to k. Each row's subtree is
/// traversed once with stamping, so the cost is O(nnz(L)) time, O(n) space —
/// no factor storage is ever allocated.
std::vector<Nnz> cholesky_col_counts(const CsrMatrix& a, std::span<const Idx> parent);

/// Total nonzeros in L (sum of column counts); nnz(LU) with a symmetric
/// pattern is `2*sum - n` (L and U share the diagonal). Used for Table 1.
Nnz cholesky_factor_nnz(const CsrMatrix& a, std::span<const Idx> parent);

}  // namespace sptrsv
