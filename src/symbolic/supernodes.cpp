#include "symbolic/supernodes.hpp"

#include <algorithm>
#include <stdexcept>

namespace sptrsv {

bool SupernodePartition::check_invariants(Idx n) const {
  if (start.empty() || start.front() != 0 || start.back() != n) return false;
  if (col_to_sn.size() != static_cast<size_t>(n)) return false;
  for (size_t k = 0; k + 1 < start.size(); ++k) {
    if (start[k] >= start[k + 1]) return false;
    for (Idx c = start[k]; c < start[k + 1]; ++c) {
      if (col_to_sn[static_cast<size_t>(c)] != static_cast<Idx>(k)) return false;
    }
  }
  return true;
}

SupernodePartition find_supernodes(std::span<const Idx> parent,
                                   std::span<const Nnz> col_counts,
                                   const SupernodeOptions& opt) {
  const Idx n = static_cast<Idx>(parent.size());
  if (col_counts.size() != static_cast<size_t>(n)) {
    throw std::invalid_argument("find_supernodes: size mismatch");
  }
  if (opt.max_width <= 0) throw std::invalid_argument("find_supernodes: max_width");

  std::vector<bool> forced(static_cast<size_t>(n) + 1, false);
  for (const Idx b : opt.forced_breaks) {
    if (b > 0 && b < n) forced[static_cast<size_t>(b)] = true;
  }

  // A column j continues the supernode of j-1 iff the classic fundamental
  // condition holds and no forced break separates them.
  auto chains = [&](Idx j) {
    return !forced[static_cast<size_t>(j)] && parent[static_cast<size_t>(j - 1)] == j &&
           col_counts[static_cast<size_t>(j)] == col_counts[static_cast<size_t>(j - 1)] - 1;
  };

  std::vector<Idx> start{0};
  for (Idx j = 1; j < n; ++j) {
    if (!chains(j)) start.push_back(j);
  }
  start.push_back(n);

  // Relaxed amalgamation: greedily merge a narrow supernode into the next
  // one when they are etree-adjacent (parent of the last column is the
  // first column of the next supernode). The block layer stores dense
  // panels, so the only cost of the merge is explicit zeros.
  if (opt.relax_width > 0) {
    std::vector<Idx> merged{start[0]};
    for (size_t k = 1; k + 1 < start.size(); ++k) {
      const Idx lo = merged.back();
      const Idx mid = start[k];
      const Idx hi = start[k + 1];
      const bool narrow = (mid - lo) <= opt.relax_width || (hi - mid) <= opt.relax_width;
      const bool adjacent = parent[static_cast<size_t>(mid - 1)] == mid;
      const bool fits = (hi - lo) <= opt.max_width;
      if (narrow && adjacent && fits && !forced[static_cast<size_t>(mid)]) {
        continue;  // drop the boundary: merge
      }
      merged.push_back(mid);
    }
    merged.push_back(n);
    start = std::move(merged);
  }

  // Enforce max_width by splitting oversized supernodes evenly.
  std::vector<Idx> split{0};
  for (size_t k = 0; k + 1 < start.size(); ++k) {
    const Idx lo = start[k], hi = start[k + 1];
    const Idx w = hi - lo;
    if (w > opt.max_width) {
      const Idx pieces = (w + opt.max_width - 1) / opt.max_width;
      for (Idx p = 1; p < pieces; ++p) {
        split.push_back(lo + static_cast<Idx>((static_cast<Nnz>(w) * p) / pieces));
      }
    }
    split.push_back(hi);
  }
  start = std::move(split);

  SupernodePartition part;
  part.start = std::move(start);
  part.col_to_sn.resize(static_cast<size_t>(n));
  for (size_t k = 0; k + 1 < part.start.size(); ++k) {
    for (Idx c = part.start[k]; c < part.start[k + 1]; ++c) {
      part.col_to_sn[static_cast<size_t>(c)] = static_cast<Idx>(k);
    }
  }
  return part;
}

}  // namespace sptrsv
