#pragma once
/// \file supernodes.hpp
/// \brief Supernode detection: contiguous column groups with (near-)identical
/// factor patterns, the unit of all block computation and communication.

#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace sptrsv {

/// Partition of columns 0..n-1 into supernodes of contiguous columns.
struct SupernodePartition {
  /// `start[K]..start[K+1]` are the columns of supernode K; size nsup+1.
  std::vector<Idx> start;
  /// Column -> supernode map; size n.
  std::vector<Idx> col_to_sn;

  Idx num_supernodes() const { return static_cast<Idx>(start.size()) - 1; }
  Idx width(Idx k) const { return start[static_cast<size_t>(k) + 1] - start[static_cast<size_t>(k)]; }
  Idx first_col(Idx k) const { return start[static_cast<size_t>(k)]; }

  /// Structural sanity: contiguous cover of [0,n), consistent col_to_sn.
  bool check_invariants(Idx n) const;
};

/// Options for supernode detection.
struct SupernodeOptions {
  /// Maximum supernode width; wide root separators are split so block
  /// kernels stay cache-sized and the solve DAG keeps parallelism.
  Idx max_width = 96;
  /// Relaxed amalgamation: a supernode narrower than this may be merged
  /// into its etree-following neighbour even if patterns differ slightly
  /// (extra explicit zeros are stored). 0 disables relaxation.
  Idx relax_width = 8;
  /// Column indices where supernodes are forced to break (exclusive of 0
  /// and n). The 3D layout requires supernodes not to straddle
  /// ND-separator-tree node boundaries.
  std::vector<Idx> forced_breaks;
};

/// Detects fundamental supernodes from the elimination tree and factor
/// column counts (parent[j] == j+1 and count[j+1] == count[j]-1 chains),
/// then applies relaxation and the forced breaks.
SupernodePartition find_supernodes(std::span<const Idx> parent,
                                   std::span<const Nnz> col_counts,
                                   const SupernodeOptions& opt = {});

}  // namespace sptrsv
