#pragma once
/// \file block_pattern.hpp
/// \brief Supernode-level fill pattern of the LU factors.
///
/// With a symmetric nonzero pattern, L's block-column pattern equals U's
/// block-row pattern, so one sorted list `below[K]` per supernode describes
/// both: `I` in `below[K]` means L(I,K) and U(K,I) are structurally nonzero.
/// Patterns are built by child->parent propagation (block-level symbolic
/// Cholesky), which guarantees the closure property right-looking updates
/// need: if I < J are both in below[K], then J is in below[I].

#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "symbolic/supernodes.hpp"

namespace sptrsv {

/// Block-level symbolic structure of the LU factors.
struct SymbolicStructure {
  Idx n = 0;
  SupernodePartition part;

  /// Supernodal elimination tree: parent of K is the first block in
  /// below[K], or kNoIdx for roots.
  std::vector<Idx> sn_parent;

  /// For each supernode K: sorted block row ids I > K with L(I,K) != 0.
  std::vector<std::vector<Idx>> below;

  /// below_offset[K][i] = scalar row offset of block below[K][i] within
  /// supernode K's L panel (and symmetric column offset in its U panel).
  std::vector<std::vector<Idx>> below_offset;

  /// Total scalar rows in supernode K's off-diagonal panel.
  std::vector<Idx> panel_rows;

  Idx num_supernodes() const { return part.num_supernodes(); }

  /// Position of block I within below[K] (binary search), kNoIdx if absent.
  Idx find_block(Idx k, Idx i) const;

  /// Scalar nonzero count of the dense-block factor storage:
  /// sum over K of width(K) * (width(K) + 2*panel_rows(K)).
  Nnz blocked_lu_nnz() const;

  /// Verifies the closure property (O(sum |below|^2); test use only).
  bool check_closure() const;
};

/// Builds the block-level symbolic structure of `a` (symmetric pattern
/// required) under the supernode partition `part`.
SymbolicStructure block_symbolic(const CsrMatrix& a, SupernodePartition part);

}  // namespace sptrsv
