#include "symbolic/block_pattern.hpp"

#include <algorithm>
#include <stdexcept>

namespace sptrsv {

Idx SymbolicStructure::find_block(Idx k, Idx i) const {
  const auto& b = below[static_cast<size_t>(k)];
  const auto it = std::lower_bound(b.begin(), b.end(), i);
  if (it == b.end() || *it != i) return kNoIdx;
  return static_cast<Idx>(it - b.begin());
}

Nnz SymbolicStructure::blocked_lu_nnz() const {
  Nnz total = 0;
  for (Idx k = 0; k < num_supernodes(); ++k) {
    const Nnz w = part.width(k);
    total += w * (w + 2 * static_cast<Nnz>(panel_rows[static_cast<size_t>(k)]));
  }
  return total;
}

bool SymbolicStructure::check_closure() const {
  for (Idx k = 0; k < num_supernodes(); ++k) {
    const auto& b = below[static_cast<size_t>(k)];
    for (size_t i = 0; i < b.size(); ++i) {
      for (size_t j = i + 1; j < b.size(); ++j) {
        if (find_block(b[i], b[j]) == kNoIdx) return false;
      }
    }
  }
  return true;
}

SymbolicStructure block_symbolic(const CsrMatrix& a, SupernodePartition part) {
  const Idx n = a.rows();
  if (!part.check_invariants(n)) {
    throw std::invalid_argument("block_symbolic: invalid supernode partition");
  }
  const Idx nsup = part.num_supernodes();

  SymbolicStructure s;
  s.n = n;
  s.part = std::move(part);
  s.sn_parent.assign(static_cast<size_t>(nsup), kNoIdx);
  s.below.resize(static_cast<size_t>(nsup));
  s.below_offset.resize(static_cast<size_t>(nsup));
  s.panel_rows.assign(static_cast<size_t>(nsup), 0);

  // pending[K]: blocks propagated from children (may contain duplicates).
  std::vector<std::vector<Idx>> pending(static_cast<size_t>(nsup));
  std::vector<Idx> stamp(static_cast<size_t>(nsup), kNoIdx);
  std::vector<Idx> current;

  for (Idx k = 0; k < nsup; ++k) {
    current.clear();
    auto add = [&](Idx blk) {
      if (blk > k && stamp[static_cast<size_t>(blk)] != k) {
        stamp[static_cast<size_t>(blk)] = k;
        current.push_back(blk);
      }
    };
    // Original entries: symmetric pattern makes row j's pattern double as
    // column j's pattern.
    for (Idx j = s.part.first_col(k); j < s.part.first_col(k) + s.part.width(k); ++j) {
      for (const Idx i : a.row_cols(j)) {
        add(s.part.col_to_sn[static_cast<size_t>(i)]);
      }
    }
    // Fill propagated up from children.
    for (const Idx blk : pending[static_cast<size_t>(k)]) add(blk);
    pending[static_cast<size_t>(k)].clear();
    pending[static_cast<size_t>(k)].shrink_to_fit();

    std::sort(current.begin(), current.end());
    auto& b = s.below[static_cast<size_t>(k)];
    b = current;
    if (!b.empty()) {
      const Idx parent = b.front();
      s.sn_parent[static_cast<size_t>(k)] = parent;
      auto& pp = pending[static_cast<size_t>(parent)];
      pp.insert(pp.end(), b.begin() + 1, b.end());
    }
    auto& off = s.below_offset[static_cast<size_t>(k)];
    off.resize(b.size());
    Idx rows = 0;
    for (size_t i = 0; i < b.size(); ++i) {
      off[i] = rows;
      rows += s.part.width(b[i]);
    }
    s.panel_rows[static_cast<size_t>(k)] = rows;
  }
  return s;
}

}  // namespace sptrsv
