#include "symbolic/colcounts.hpp"

#include <stdexcept>

namespace sptrsv {

std::vector<Nnz> cholesky_col_counts(const CsrMatrix& a, std::span<const Idx> parent) {
  const Idx n = a.rows();
  if (a.cols() != n || parent.size() != static_cast<size_t>(n)) {
    throw std::invalid_argument("cholesky_col_counts: shape mismatch");
  }
  std::vector<Nnz> count(static_cast<size_t>(n), 1);  // diagonals
  std::vector<Idx> stamp(static_cast<size_t>(n), kNoIdx);
  for (Idx k = 0; k < n; ++k) {
    stamp[static_cast<size_t>(k)] = k;  // never walk past k itself
    for (const Idx i : a.row_cols(k)) {
      if (i >= k) break;
      // Walk i's etree path until an already-stamped vertex; every newly
      // stamped vertex j contributes L(k,j) != 0.
      for (Idx j = i; stamp[static_cast<size_t>(j)] != k;
           j = parent[static_cast<size_t>(j)]) {
        stamp[static_cast<size_t>(j)] = k;
        ++count[static_cast<size_t>(j)];
        if (parent[static_cast<size_t>(j)] == kNoIdx) break;
      }
    }
  }
  return count;
}

Nnz cholesky_factor_nnz(const CsrMatrix& a, std::span<const Idx> parent) {
  Nnz total = 0;
  for (const Nnz c : cholesky_col_counts(a, parent)) total += c;
  return total;
}

}  // namespace sptrsv
