#pragma once
/// \file analysis.hpp
/// \brief Solve-DAG analysis: critical path, available parallelism, and
/// level structure of the supernodal triangular-solve task graph.
///
/// SpTRSV performance is governed by the dependency DAG (paper §2.1): the
/// critical path bounds any parallel schedule from below, and the ratio
/// total-work / critical-path bounds the useful processor count. The
/// paper's own analyses (critical-path studies in [12, 13]) use the same
/// quantities; benches report them to explain where the Pz / GPU scaling
/// knees fall.

#include <vector>

#include "symbolic/block_pattern.hpp"

namespace sptrsv {

/// Statistics of the L-solve task DAG (the U-solve DAG is its reverse and
/// shares every number).
struct SolveDagStats {
  /// Task = one supernode: apply the diagonal inverse + panel GEMV.
  Idx num_tasks = 0;
  /// Flops summed over all tasks (one triangular solve, `nrhs` RHS).
  double total_flops = 0;
  /// Flops along the heaviest dependency chain.
  double critical_path_flops = 0;
  /// Tasks along the longest (by count) dependency chain.
  Idx critical_path_length = 0;
  /// total_flops / critical_path_flops: the max useful speedup of any
  /// schedule, however many processors.
  double parallelism() const {
    return critical_path_flops > 0 ? total_flops / critical_path_flops : 1.0;
  }
  /// Number of level sets (wavefronts) of the DAG == critical_path_length.
  /// Sizes of each wavefront, in elimination order.
  std::vector<Idx> level_sizes;
};

/// Analyzes the solve DAG of `sym` for `nrhs` right-hand sides.
SolveDagStats analyze_solve_dag(const SymbolicStructure& sym, Idx nrhs = 1);

/// Lower bound (seconds) on any solve schedule with per-task flop rate
/// `flop_rate` and `latency` charged per critical-path hop — the model's
/// analogue of the paper's critical-path estimates.
double solve_time_lower_bound(const SolveDagStats& s, double flop_rate,
                              double latency);

}  // namespace sptrsv
