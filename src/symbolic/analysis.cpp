#include "symbolic/analysis.hpp"

#include <algorithm>

namespace sptrsv {

SolveDagStats analyze_solve_dag(const SymbolicStructure& sym, Idx nrhs) {
  const Idx nsup = sym.num_supernodes();
  SolveDagStats s;
  s.num_tasks = nsup;

  // Task K's work: diagonal inverse apply plus the whole panel GEMV.
  auto work_of = [&](Idx k) {
    const double w = sym.part.width(k);
    const double r = sym.panel_rows[static_cast<size_t>(k)];
    return 2.0 * w * (w + r) * nrhs;
  };

  // Longest weighted / unweighted chains via one forward sweep: task K
  // depends on every J with K in below(J); equivalently, propagate from J
  // to its below-set. cp[K] includes K's own work.
  std::vector<double> cp_flops(static_cast<size_t>(nsup), 0.0);
  std::vector<Idx> cp_len(static_cast<size_t>(nsup), 0);
  std::vector<Idx> level(static_cast<size_t>(nsup), 0);
  for (Idx k = 0; k < nsup; ++k) {
    const double w = work_of(k);
    cp_flops[static_cast<size_t>(k)] += w;
    cp_len[static_cast<size_t>(k)] += 1;
    s.total_flops += w;
    s.critical_path_flops = std::max(s.critical_path_flops, cp_flops[static_cast<size_t>(k)]);
    s.critical_path_length = std::max(s.critical_path_length, cp_len[static_cast<size_t>(k)]);
    for (const Idx i : sym.below[static_cast<size_t>(k)]) {
      cp_flops[static_cast<size_t>(i)] =
          std::max(cp_flops[static_cast<size_t>(i)], cp_flops[static_cast<size_t>(k)]);
      cp_len[static_cast<size_t>(i)] =
          std::max(cp_len[static_cast<size_t>(i)], cp_len[static_cast<size_t>(k)]);
      level[static_cast<size_t>(i)] =
          std::max(level[static_cast<size_t>(i)], level[static_cast<size_t>(k)] + 1);
    }
  }

  // Wavefront sizes.
  Idx max_level = 0;
  for (const Idx l : level) max_level = std::max(max_level, l);
  s.level_sizes.assign(static_cast<size_t>(max_level) + 1, 0);
  for (const Idx l : level) ++s.level_sizes[static_cast<size_t>(l)];
  return s;
}

double solve_time_lower_bound(const SolveDagStats& s, double flop_rate,
                              double latency) {
  return s.critical_path_flops / flop_rate +
         latency * static_cast<double>(std::max<Idx>(0, s.critical_path_length - 1));
}

}  // namespace sptrsv
