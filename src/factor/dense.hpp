#pragma once
/// \file dense.hpp
/// \brief Small dense kernels used inside supernodal panels.
///
/// All matrices are column-major and packed (leading dimension = number of
/// rows) unless an explicit `ld` parameter says otherwise. Kernel sizes are
/// bounded by the supernode width cap, so simple register-blocked loops are
/// appropriate; no external BLAS is required (none is installed offline).

#include <span>

#include "sparse/types.hpp"

namespace sptrsv {

/// C (m x n) -= A (m x k) * B (k x n); packed column-major.
void gemm_minus(Idx m, Idx k, Idx n, std::span<const Real> a, std::span<const Real> b,
                std::span<Real> c);

/// C (m x n) += A (m x k) * B (k x n); packed column-major.
void gemm_plus(Idx m, Idx k, Idx n, std::span<const Real> a, std::span<const Real> b,
               std::span<Real> c);

/// C (m x n, ld ldc) -= A (m x k) * B (k x n, ld ldb). Used to update a
/// block embedded in a taller panel.
void gemm_minus_ld(Idx m, Idx k, Idx n, std::span<const Real> a, Idx lda,
                   std::span<const Real> b, Idx ldb, std::span<Real> c, Idx ldc);

/// C (m x n, ld ldc) += A (m x k, ld lda) * B (k x n, ld ldb).
void gemm_plus_ld(Idx m, Idx k, Idx n, std::span<const Real> a, Idx lda,
                  std::span<const Real> b, Idx ldb, std::span<Real> c, Idx ldc);

/// In-place unpivoted LU (Doolittle): on return the strict lower triangle
/// holds L (unit diagonal implied) and the upper triangle holds U.
/// Returns false if a zero pivot is hit (caller treats as singular).
bool lu_unpivoted_inplace(Idx n, std::span<Real> a);

/// inv(L) for the unit-lower factor packed in `a` (strict lower + implied
/// unit diagonal); writes a full n x n matrix with explicit unit diagonal.
void invert_unit_lower(Idx n, std::span<const Real> a, std::span<Real> out);

/// inv(U) for the upper factor packed in `a` (upper triangle incl diagonal);
/// writes a full n x n upper-triangular matrix.
void invert_upper(Idx n, std::span<const Real> a, std::span<Real> out);

/// B (m x n) := B * inv(U) where U is the upper triangle of `lu` (n x n).
void trsm_right_upper(Idx m, Idx n, std::span<const Real> lu, std::span<Real> b);

/// B (n x m) := inv(L) * B where L is the unit-lower triangle of `lu` (n x n).
void trsm_left_unit_lower(Idx n, Idx m, std::span<const Real> lu, std::span<Real> b);

/// y (m x nrhs) -= A (m x k) * x (k x nrhs); panel-of-vectors update.
inline void block_update_minus(Idx m, Idx k, Idx nrhs, std::span<const Real> a,
                               std::span<const Real> x, std::span<Real> y) {
  gemm_minus(m, k, nrhs, a, x, y);
}

/// Frobenius-norm of the difference of two packed matrices (test helper).
Real frob_diff(std::span<const Real> a, std::span<const Real> b);

}  // namespace sptrsv
