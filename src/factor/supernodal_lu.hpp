#pragma once
/// \file supernodal_lu.hpp
/// \brief Supernodal LU factor storage and the numeric factorization.
///
/// The solver consumes exactly what the paper assumes from SuperLU_DIST's 3D
/// factorization (§2.1): supernodal L panels (full rows per block), U row
/// panels (equal-length columns per block — the paper's simplification of
/// the skyline format), and precomputed inverted diagonal blocks
/// L(K,K)^{-1} / U(K,K)^{-1}.

#include <vector>

#include "factor/dense.hpp"
#include "ordering/nested_dissection.hpp"
#include "sparse/csr.hpp"
#include "symbolic/block_pattern.hpp"

namespace sptrsv {

/// LU factors of a symmetric-pattern matrix in supernodal block form.
///
/// Per supernode K with width w and panel_rows r:
///  - `diag[K]`:      w x w packed LU of the diagonal block (L unit-lower).
///  - `diag_linv[K]`: w x w full inv(L_KK) (explicit unit diagonal).
///  - `diag_uinv[K]`: w x w upper-triangular inv(U_KK).
///  - `lpanel[K]`:    r x w column-major; block L(I,K) occupies rows
///                    [below_offset[K][i], +width(I)) where I = below[K][i].
///  - `upanel[K]`:    w x r column-major; block U(K,I) occupies columns
///                    [below_offset[K][i], +width(I)).
struct SupernodalLU {
  SymbolicStructure sym;
  std::vector<std::vector<Real>> diag;
  std::vector<std::vector<Real>> diag_linv;
  std::vector<std::vector<Real>> diag_uinv;
  std::vector<std::vector<Real>> lpanel;
  std::vector<std::vector<Real>> upanel;

  Idx n() const { return sym.n; }
  Idx num_supernodes() const { return sym.num_supernodes(); }

  /// View of L(I,K) where `i` indexes below[K]: width(I) x width(K) block
  /// at leading dimension panel_rows[K].
  std::span<const Real> lblock(Idx k, size_t i) const {
    return std::span<const Real>(lpanel[static_cast<size_t>(k)])
        .subspan(static_cast<size_t>(sym.below_offset[static_cast<size_t>(k)][i]));
  }
  /// View of U(K,I): width(K) x width(I) block, packed (ld = width(K)).
  std::span<const Real> ublock(Idx k, size_t i) const {
    return std::span<const Real>(upanel[static_cast<size_t>(k)])
        .subspan(static_cast<size_t>(sym.below_offset[static_cast<size_t>(k)][i]) *
                 static_cast<size_t>(sym.part.width(k)));
  }

  /// Reconstructs the dense n x n matrix L*U (small-n test helper).
  std::vector<Real> reconstruct_dense() const;

  /// Total floating-point operation count of one L-solve + U-solve with
  /// `nrhs` right-hand sides (2*flops of all block GEMMs + diagonal ops).
  double solve_flops(Idx nrhs) const;
};

/// Allocates the factor storage for `sym` and scatters `a`'s values into
/// the diagonal blocks and L/U panels (no numeric work yet). Shared by the
/// sequential and distributed factorizations.
SupernodalLU init_supernodal_storage(const CsrMatrix& a, SymbolicStructure sym);

/// Numeric right-looking supernodal LU factorization. `a` must have a
/// symmetric pattern and a full diagonal; no pivoting is performed, so the
/// caller is responsible for numerical viability (the library's generators
/// produce diagonally dominant matrices). Throws on a zero pivot.
SupernodalLU factor_supernodal(const CsrMatrix& a, SymbolicStructure sym);

/// Full pipeline convenience: nested-dissection order (with `nd_levels`
/// tracked levels), symbolic analysis, numeric factorization. Returns the
/// factor plus the permutation used (new -> old).
struct FactoredSystem {
  SupernodalLU lu;
  std::vector<Idx> perm;  ///< new -> old
  NdTree tree;            ///< tracked separator tree (see ordering/)
};
FactoredSystem analyze_and_factor(const CsrMatrix& a, int nd_levels,
                                  Idx max_supernode_width = 96);

/// Expert-level pipeline options. `supernode.forced_breaks` is overwritten
/// with the ND tree node boundaries (the 3D layout requires them).
struct AnalyzeOptions {
  NdOptions nd;
  SupernodeOptions supernode;
};
FactoredSystem analyze_and_factor(const CsrMatrix& a, const AnalyzeOptions& opt);

}  // namespace sptrsv
