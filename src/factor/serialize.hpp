#pragma once
/// \file serialize.hpp
/// \brief Binary save/load of factored systems.
///
/// The paper's workloads factor once and solve many times — often across
/// job boundaries (the artifact's runs spend most wall time in
/// factorization). Serializing the FactoredSystem lets a user pay the
/// factorization once and reload it for later solve campaigns.
///
/// Format: a little-endian stream with a magic/version header followed by
/// the permutation, tracked tree, supernode partition, block pattern and
/// the numeric panels. The format is versioned; loading rejects mismatched
/// versions and corrupt streams rather than guessing.

#include <iosfwd>
#include <string>

#include "factor/supernodal_lu.hpp"

namespace sptrsv {

/// Writes `fs` to a binary stream. Throws std::runtime_error on I/O error.
void save_factored_system(std::ostream& out, const FactoredSystem& fs);

/// Reads a FactoredSystem previously written by save_factored_system.
/// Throws std::runtime_error on corrupt/incompatible input.
FactoredSystem load_factored_system(std::istream& in);

/// File-path conveniences.
void save_factored_system_file(const std::string& path, const FactoredSystem& fs);
FactoredSystem load_factored_system_file(const std::string& path);

}  // namespace sptrsv
