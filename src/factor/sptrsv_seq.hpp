#pragma once
/// \file sptrsv_seq.hpp
/// \brief Sequential reference triangular solves on supernodal factors.
///
/// These implement Eq (1)/(2) of the paper directly and serve as the golden
/// reference every distributed algorithm is tested against. Right-hand sides
/// are n x nrhs column-major.

#include <span>
#include <vector>

#include "factor/supernodal_lu.hpp"

namespace sptrsv {

/// y := L^{-1} b (L-solve, Eq (1)); b and y may alias.
void solve_l_seq(const SupernodalLU& f, std::span<const Real> b, std::span<Real> y,
                 Idx nrhs = 1);

/// x := U^{-1} y (U-solve, Eq (2)); y and x may alias.
void solve_u_seq(const SupernodalLU& f, std::span<const Real> y, std::span<Real> x,
                 Idx nrhs = 1);

/// x := (LU)^{-1} b — full solve.
std::vector<Real> solve_seq(const SupernodalLU& f, std::span<const Real> b, Idx nrhs = 1);

/// Solves A x = b where `fs` factors P A P^T: applies the permutation on the
/// way in and its inverse on the way out. b is in original (unpermuted) row
/// order; the result is too.
std::vector<Real> solve_system_seq(const FactoredSystem& fs, std::span<const Real> b,
                                   Idx nrhs = 1);

/// ||A x - b||_inf / ||b||_inf, columnwise max over nrhs systems.
Real relative_residual(const CsrMatrix& a, std::span<const Real> x,
                       std::span<const Real> b, Idx nrhs = 1);

}  // namespace sptrsv
