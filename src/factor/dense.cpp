#include "factor/dense.hpp"

#include <cassert>
#include <cmath>

namespace sptrsv {

namespace {

/// Shared jki-ordered kernel: C +/-= A*B with arbitrary leading dimensions.
template <int Sign>
void gemm_ld(Idx m, Idx k, Idx n, const Real* a, Idx lda, const Real* b, Idx ldb,
             Real* c, Idx ldc) {
  for (Idx j = 0; j < n; ++j) {
    Real* cj = c + static_cast<size_t>(j) * ldc;
    const Real* bj = b + static_cast<size_t>(j) * ldb;
    for (Idx p = 0; p < k; ++p) {
      const Real bpj = Sign * bj[p];
      if (bpj == 0.0) continue;
      const Real* ap = a + static_cast<size_t>(p) * lda;
      for (Idx i = 0; i < m; ++i) {
        cj[i] += ap[i] * bpj;
      }
    }
  }
}

}  // namespace

void gemm_minus(Idx m, Idx k, Idx n, std::span<const Real> a, std::span<const Real> b,
                std::span<Real> c) {
  assert(a.size() >= static_cast<size_t>(m) * k);
  assert(b.size() >= static_cast<size_t>(k) * n);
  assert(c.size() >= static_cast<size_t>(m) * n);
  gemm_ld<-1>(m, k, n, a.data(), m, b.data(), k, c.data(), m);
}

void gemm_plus(Idx m, Idx k, Idx n, std::span<const Real> a, std::span<const Real> b,
               std::span<Real> c) {
  assert(a.size() >= static_cast<size_t>(m) * k);
  assert(b.size() >= static_cast<size_t>(k) * n);
  assert(c.size() >= static_cast<size_t>(m) * n);
  gemm_ld<+1>(m, k, n, a.data(), m, b.data(), k, c.data(), m);
}

void gemm_minus_ld(Idx m, Idx k, Idx n, std::span<const Real> a, Idx lda,
                   std::span<const Real> b, Idx ldb, std::span<Real> c, Idx ldc) {
  gemm_ld<-1>(m, k, n, a.data(), lda, b.data(), ldb, c.data(), ldc);
}

void gemm_plus_ld(Idx m, Idx k, Idx n, std::span<const Real> a, Idx lda,
                  std::span<const Real> b, Idx ldb, std::span<Real> c, Idx ldc) {
  gemm_ld<+1>(m, k, n, a.data(), lda, b.data(), ldb, c.data(), ldc);
}

bool lu_unpivoted_inplace(Idx n, std::span<Real> a) {
  assert(a.size() >= static_cast<size_t>(n) * n);
  for (Idx k = 0; k < n; ++k) {
    const Real pivot = a[static_cast<size_t>(k) * n + k];
    if (pivot == 0.0) return false;
    const Real inv_pivot = 1.0 / pivot;
    for (Idx i = k + 1; i < n; ++i) {
      a[static_cast<size_t>(k) * n + i] *= inv_pivot;  // L(i,k)
    }
    for (Idx j = k + 1; j < n; ++j) {
      const Real ukj = a[static_cast<size_t>(j) * n + k];
      if (ukj == 0.0) continue;
      Real* col_j = a.data() + static_cast<size_t>(j) * n;
      const Real* col_k = a.data() + static_cast<size_t>(k) * n;
      for (Idx i = k + 1; i < n; ++i) {
        col_j[i] -= col_k[i] * ukj;
      }
    }
  }
  return true;
}

void invert_unit_lower(Idx n, std::span<const Real> a, std::span<Real> out) {
  assert(out.size() >= static_cast<size_t>(n) * n);
  // Column-by-column forward substitution: out(:,j) = L^{-1} e_j.
  for (Idx j = 0; j < n; ++j) {
    Real* col = out.data() + static_cast<size_t>(j) * n;
    for (Idx i = 0; i < n; ++i) col[i] = (i == j) ? 1.0 : 0.0;
    for (Idx k = j; k < n; ++k) {
      const Real v = col[k];
      if (v == 0.0) continue;
      const Real* lk = a.data() + static_cast<size_t>(k) * n;
      for (Idx i = k + 1; i < n; ++i) {
        col[i] -= lk[i] * v;
      }
    }
  }
}

void invert_upper(Idx n, std::span<const Real> a, std::span<Real> out) {
  assert(out.size() >= static_cast<size_t>(n) * n);
  // Back substitution per column: out(:,j) = U^{-1} e_j.
  for (Idx j = 0; j < n; ++j) {
    Real* col = out.data() + static_cast<size_t>(j) * n;
    for (Idx i = 0; i < n; ++i) col[i] = (i == j) ? 1.0 : 0.0;
    for (Idx k = j; k >= 0; --k) {
      col[k] /= a[static_cast<size_t>(k) * n + k];
      const Real v = col[k];
      if (v == 0.0) continue;
      const Real* uk = a.data() + static_cast<size_t>(k) * n;
      for (Idx i = 0; i < k; ++i) {
        col[i] -= uk[i] * v;
      }
    }
  }
}

void trsm_right_upper(Idx m, Idx n, std::span<const Real> lu, std::span<Real> b) {
  // Solve X * U = B column by column of U: X(:,j) = (B(:,j) - X(:,0:j)*U(0:j,j)) / U(j,j).
  for (Idx j = 0; j < n; ++j) {
    Real* bj = b.data() + static_cast<size_t>(j) * m;
    const Real* uj = lu.data() + static_cast<size_t>(j) * n;
    for (Idx k = 0; k < j; ++k) {
      const Real ukj = uj[k];
      if (ukj == 0.0) continue;
      const Real* bk = b.data() + static_cast<size_t>(k) * m;
      for (Idx i = 0; i < m; ++i) bj[i] -= bk[i] * ukj;
    }
    const Real inv = 1.0 / uj[j];
    for (Idx i = 0; i < m; ++i) bj[i] *= inv;
  }
}

void trsm_left_unit_lower(Idx n, Idx m, std::span<const Real> lu, std::span<Real> b) {
  // Solve L * X = B: forward substitution down the rows, all RHS columns.
  for (Idx k = 0; k < n; ++k) {
    const Real* lk = lu.data() + static_cast<size_t>(k) * n;
    for (Idx j = 0; j < m; ++j) {
      Real* bj = b.data() + static_cast<size_t>(j) * n;
      const Real v = bj[k];
      if (v == 0.0) continue;
      for (Idx i = k + 1; i < n; ++i) {
        bj[i] -= lk[i] * v;
      }
    }
  }
}

Real frob_diff(std::span<const Real> a, std::span<const Real> b) {
  assert(a.size() == b.size());
  Real acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const Real d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace sptrsv
