#include "factor/supernodal_lu.hpp"

#include <cassert>
#include <stdexcept>

#include "ordering/etree.hpp"
#include "symbolic/colcounts.hpp"

namespace sptrsv {

std::vector<Real> SupernodalLU::reconstruct_dense() const {
  const Idx N = n();
  std::vector<Real> l(static_cast<size_t>(N) * N, 0.0);
  std::vector<Real> u(static_cast<size_t>(N) * N, 0.0);
  const auto& part = sym.part;
  for (Idx k = 0; k < num_supernodes(); ++k) {
    const Idx w = part.width(k);
    const Idx base = part.first_col(k);
    const auto& d = diag[static_cast<size_t>(k)];
    for (Idx j = 0; j < w; ++j) {
      for (Idx i = 0; i < w; ++i) {
        const Real v = d[static_cast<size_t>(j) * w + i];
        if (i > j) {
          l[static_cast<size_t>(base + j) * N + (base + i)] = v;
        } else {
          u[static_cast<size_t>(base + j) * N + (base + i)] = v;
        }
      }
      l[static_cast<size_t>(base + j) * N + (base + j)] = 1.0;  // unit diagonal
    }
    const Idx r = sym.panel_rows[static_cast<size_t>(k)];
    const auto& lb = sym.below[static_cast<size_t>(k)];
    for (size_t bi = 0; bi < lb.size(); ++bi) {
      const Idx ib = part.first_col(lb[bi]);
      const Idx wi = part.width(lb[bi]);
      const Idx off = sym.below_offset[static_cast<size_t>(k)][bi];
      for (Idx j = 0; j < w; ++j) {
        for (Idx i = 0; i < wi; ++i) {
          l[static_cast<size_t>(base + j) * N + (ib + i)] =
              lpanel[static_cast<size_t>(k)][static_cast<size_t>(j) * r + off + i];
          u[static_cast<size_t>(ib + i) * N + (base + j)] =
              upanel[static_cast<size_t>(k)][(static_cast<size_t>(off) + i) * w + j];
        }
      }
    }
  }
  // Dense product L * U.
  std::vector<Real> prod(static_cast<size_t>(N) * N, 0.0);
  gemm_plus(N, N, N, l, u, prod);
  return prod;
}

double SupernodalLU::solve_flops(Idx nrhs) const {
  double fl = 0;
  for (Idx k = 0; k < num_supernodes(); ++k) {
    const double w = sym.part.width(k);
    const double r = sym.panel_rows[static_cast<size_t>(k)];
    // Both solves: diagonal inverse apply (w*w GEMM) + panel GEMM (r*w).
    fl += 2.0 * nrhs * (2.0 * w * w + 2.0 * w * r);
  }
  return fl;
}

SupernodalLU init_supernodal_storage(const CsrMatrix& a, SymbolicStructure sym) {
  const Idx nsup = sym.num_supernodes();
  const auto& part = sym.part;

  SupernodalLU f;
  f.diag.resize(static_cast<size_t>(nsup));
  f.diag_linv.resize(static_cast<size_t>(nsup));
  f.diag_uinv.resize(static_cast<size_t>(nsup));
  f.lpanel.resize(static_cast<size_t>(nsup));
  f.upanel.resize(static_cast<size_t>(nsup));
  for (Idx k = 0; k < nsup; ++k) {
    const size_t w = static_cast<size_t>(part.width(k));
    const size_t r = static_cast<size_t>(sym.panel_rows[static_cast<size_t>(k)]);
    f.diag[static_cast<size_t>(k)].assign(w * w, 0.0);
    f.lpanel[static_cast<size_t>(k)].assign(r * w, 0.0);
    f.upanel[static_cast<size_t>(k)].assign(w * r, 0.0);
  }

  // Scatter A's values into the block storage. Entry (i,j):
  //   sn(i) == sn(j): diagonal block of that supernode.
  //   sn(i) >  sn(j): L block (row block sn(i)) in column supernode sn(j).
  //   sn(i) <  sn(j): U block (column block sn(j)) in row supernode sn(i).
  for (Idx i = 0; i < a.rows(); ++i) {
    const Idx ki = part.col_to_sn[static_cast<size_t>(i)];
    const auto cs = a.row_cols(i);
    const auto vs = a.row_vals(i);
    for (size_t t = 0; t < cs.size(); ++t) {
      const Idx j = cs[t];
      const Real v = vs[t];
      const Idx kj = part.col_to_sn[static_cast<size_t>(j)];
      if (ki == kj) {
        const Idx w = part.width(ki);
        f.diag[static_cast<size_t>(ki)][static_cast<size_t>(j - part.first_col(kj)) * w +
                                        (i - part.first_col(ki))] = v;
      } else if (ki > kj) {
        const Idx pos = sym.find_block(kj, ki);
        assert(pos != kNoIdx);
        const Idx r = sym.panel_rows[static_cast<size_t>(kj)];
        const Idx off = sym.below_offset[static_cast<size_t>(kj)][static_cast<size_t>(pos)];
        f.lpanel[static_cast<size_t>(kj)][static_cast<size_t>(j - part.first_col(kj)) * r +
                                          off + (i - part.first_col(ki))] = v;
      } else {
        const Idx pos = sym.find_block(ki, kj);
        assert(pos != kNoIdx);
        const Idx w = part.width(ki);
        const Idx off = sym.below_offset[static_cast<size_t>(ki)][static_cast<size_t>(pos)];
        f.upanel[static_cast<size_t>(ki)][(static_cast<size_t>(off) + (j - part.first_col(kj))) * w +
                                          (i - part.first_col(ki))] = v;
      }
    }
  }
  f.sym = std::move(sym);
  return f;
}

SupernodalLU factor_supernodal(const CsrMatrix& a, SymbolicStructure sym0) {
  SupernodalLU f = init_supernodal_storage(a, std::move(sym0));
  const SymbolicStructure& sym = f.sym;
  const auto& part = sym.part;
  const Idx nsup = sym.num_supernodes();

  // Right-looking factorization over the block structure.
  std::vector<Real> prod;  // scratch for Schur products
  for (Idx k = 0; k < nsup; ++k) {
    const Idx w = part.width(k);
    auto& d = f.diag[static_cast<size_t>(k)];
    if (!lu_unpivoted_inplace(w, d)) {
      throw std::runtime_error("factor_supernodal: zero pivot in supernode " +
                               std::to_string(k));
    }
    auto& linv = f.diag_linv[static_cast<size_t>(k)];
    auto& uinv = f.diag_uinv[static_cast<size_t>(k)];
    linv.assign(static_cast<size_t>(w) * w, 0.0);
    uinv.assign(static_cast<size_t>(w) * w, 0.0);
    invert_unit_lower(w, d, linv);
    invert_upper(w, d, uinv);

    const Idx r = sym.panel_rows[static_cast<size_t>(k)];
    if (r > 0) {
      trsm_right_upper(r, w, d, f.lpanel[static_cast<size_t>(k)]);
      trsm_left_unit_lower(w, r, d, f.upanel[static_cast<size_t>(k)]);
    }

    // Schur updates: (I, J) -= L(I,K) * U(K,J) for all I, J in below[K].
    const auto& blist = sym.below[static_cast<size_t>(k)];
    const auto& boff = sym.below_offset[static_cast<size_t>(k)];
    for (size_t bi = 0; bi < blist.size(); ++bi) {
      const Idx I = blist[bi];
      const Idx wi = part.width(I);
      const Real* lik =
          f.lpanel[static_cast<size_t>(k)].data() + boff[bi];  // wi x w, ld r
      for (size_t bj = 0; bj < blist.size(); ++bj) {
        const Idx J = blist[bj];
        const Idx wj = part.width(J);
        const Real* ukj = f.upanel[static_cast<size_t>(k)].data() +
                          static_cast<size_t>(boff[bj]) * w;  // w x wj, ld w
        if (I == J) {
          gemm_minus_ld(wi, w, wj, {lik, static_cast<size_t>(r) * w - boff[bi]}, r,
                        {ukj, static_cast<size_t>(w) * wj}, w,
                        f.diag[static_cast<size_t>(I)], wi);
        } else if (I > J) {
          const Idx pos = sym.find_block(J, I);
          assert(pos != kNoIdx);
          const Idx rj = sym.panel_rows[static_cast<size_t>(J)];
          const Idx off = sym.below_offset[static_cast<size_t>(J)][static_cast<size_t>(pos)];
          gemm_minus_ld(wi, w, wj, {lik, static_cast<size_t>(r) * w - boff[bi]}, r,
                        {ukj, static_cast<size_t>(w) * wj}, w,
                        std::span<Real>(f.lpanel[static_cast<size_t>(J)]).subspan(off), rj);
        } else {  // I < J: U panel of I
          const Idx pos = sym.find_block(I, J);
          assert(pos != kNoIdx);
          const Idx off = sym.below_offset[static_cast<size_t>(I)][static_cast<size_t>(pos)];
          gemm_minus_ld(wi, w, wj, {lik, static_cast<size_t>(r) * w - boff[bi]}, r,
                        {ukj, static_cast<size_t>(w) * wj}, w,
                        std::span<Real>(f.upanel[static_cast<size_t>(I)])
                            .subspan(static_cast<size_t>(off) * wi),
                        wi);
        }
      }
    }
  }

  return f;
}

FactoredSystem analyze_and_factor(const CsrMatrix& a, const AnalyzeOptions& opt) {
  const CsrMatrix sym_a = a.has_symmetric_pattern() ? a : a.symmetrized_pattern();
  if (!sym_a.has_full_diagonal()) {
    throw std::invalid_argument("analyze_and_factor: matrix needs a full diagonal");
  }
  NdOrdering nd = nested_dissection(sym_a, opt.nd);
  const CsrMatrix pa = sym_a.permuted_symmetric(nd.perm);

  const std::vector<Idx> parent = elimination_tree(pa);
  const std::vector<Nnz> counts = cholesky_col_counts(pa, parent);

  SupernodeOptions sn_opt = opt.supernode;
  sn_opt.forced_breaks.clear();  // the layout requires exactly these breaks
  for (Idx id = 0; id < nd.tree.num_nodes(); ++id) {
    sn_opt.forced_breaks.push_back(nd.tree.node(id).col_begin);
    sn_opt.forced_breaks.push_back(nd.tree.node(id).col_end);
  }
  SupernodePartition part = find_supernodes(parent, counts, sn_opt);
  SymbolicStructure sym = block_symbolic(pa, std::move(part));

  FactoredSystem out{factor_supernodal(pa, std::move(sym)), std::move(nd.perm),
                     std::move(nd.tree)};
  return out;
}

FactoredSystem analyze_and_factor(const CsrMatrix& a, int nd_levels,
                                  Idx max_supernode_width) {
  AnalyzeOptions opt;
  opt.nd.levels = nd_levels;
  opt.supernode.max_width = max_supernode_width;
  return analyze_and_factor(a, opt);
}

}  // namespace sptrsv
