#include "factor/sptrsv_seq.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace sptrsv {

namespace {

/// Gathers the supernode-K rows of an n x nrhs column-major vector into a
/// packed w x nrhs buffer.
void gather(const SupernodalLU& f, Idx k, std::span<const Real> v, Idx nrhs,
            std::vector<Real>& out) {
  const Idx w = f.sym.part.width(k);
  const Idx base = f.sym.part.first_col(k);
  const Idx n = f.n();
  out.resize(static_cast<size_t>(w) * nrhs);
  for (Idx j = 0; j < nrhs; ++j) {
    for (Idx i = 0; i < w; ++i) {
      out[static_cast<size_t>(j) * w + i] = v[static_cast<size_t>(j) * n + base + i];
    }
  }
}

void scatter(const SupernodalLU& f, Idx k, std::span<const Real> in, Idx nrhs,
             std::span<Real> v) {
  const Idx w = f.sym.part.width(k);
  const Idx base = f.sym.part.first_col(k);
  const Idx n = f.n();
  for (Idx j = 0; j < nrhs; ++j) {
    for (Idx i = 0; i < w; ++i) {
      v[static_cast<size_t>(j) * n + base + i] = in[static_cast<size_t>(j) * w + i];
    }
  }
}

}  // namespace

void solve_l_seq(const SupernodalLU& f, std::span<const Real> b, std::span<Real> y,
                 Idx nrhs) {
  const Idx n = f.n();
  assert(b.size() == static_cast<size_t>(n) * nrhs);
  assert(y.size() == static_cast<size_t>(n) * nrhs);
  // lsum accumulates off-diagonal partial sums, scattered by supernode rows.
  std::vector<Real> lsum(static_cast<size_t>(n) * nrhs, 0.0);
  std::vector<Real> yk, t;
  for (Idx k = 0; k < f.num_supernodes(); ++k) {
    const Idx w = f.sym.part.width(k);
    gather(f, k, b, nrhs, yk);
    // yk -= lsum(K)
    {
      const Idx base = f.sym.part.first_col(k);
      for (Idx j = 0; j < nrhs; ++j) {
        for (Idx i = 0; i < w; ++i) {
          yk[static_cast<size_t>(j) * w + i] -= lsum[static_cast<size_t>(j) * n + base + i];
        }
      }
    }
    // yk := inv(L_KK) * yk
    t.assign(static_cast<size_t>(w) * nrhs, 0.0);
    gemm_plus(w, w, nrhs, f.diag_linv[static_cast<size_t>(k)], yk, t);
    scatter(f, k, t, nrhs, y);
    // lsum(I) += L(I,K) * y(K) for each I below K.
    const Idx r = f.sym.panel_rows[static_cast<size_t>(k)];
    if (r == 0) continue;
    const auto& blist = f.sym.below[static_cast<size_t>(k)];
    const auto& boff = f.sym.below_offset[static_cast<size_t>(k)];
    for (size_t bi = 0; bi < blist.size(); ++bi) {
      const Idx I = blist[bi];
      const Idx wi = f.sym.part.width(I);
      const Idx ibase = f.sym.part.first_col(I);
      // lsum(I) += L(I,K) (wi x w, ld r) * t (w x nrhs)
      for (Idx j = 0; j < nrhs; ++j) {
        for (Idx p = 0; p < w; ++p) {
          const Real v = t[static_cast<size_t>(j) * w + p];
          if (v == 0.0) continue;
          const Real* lcol =
              f.lpanel[static_cast<size_t>(k)].data() + static_cast<size_t>(p) * r + boff[bi];
          Real* out = lsum.data() + static_cast<size_t>(j) * n + ibase;
          for (Idx i = 0; i < wi; ++i) out[i] += lcol[i] * v;
        }
      }
    }
  }
}

void solve_u_seq(const SupernodalLU& f, std::span<const Real> y, std::span<Real> x,
                 Idx nrhs) {
  const Idx n = f.n();
  assert(y.size() == static_cast<size_t>(n) * nrhs);
  assert(x.size() == static_cast<size_t>(n) * nrhs);
  std::vector<Real> xk, t;
  for (Idx k = f.num_supernodes() - 1; k >= 0; --k) {
    const Idx w = f.sym.part.width(k);
    gather(f, k, y, nrhs, xk);
    // Gather-style: xk -= sum_J U(K,J) x(J), all J > K already solved.
    const auto& blist = f.sym.below[static_cast<size_t>(k)];
    const auto& boff = f.sym.below_offset[static_cast<size_t>(k)];
    for (size_t bj = 0; bj < blist.size(); ++bj) {
      const Idx J = blist[bj];
      const Idx wj = f.sym.part.width(J);
      const Idx jbase = f.sym.part.first_col(J);
      const Real* ukj =
          f.upanel[static_cast<size_t>(k)].data() + static_cast<size_t>(boff[bj]) * w;
      for (Idx j = 0; j < nrhs; ++j) {
        for (Idx p = 0; p < wj; ++p) {
          const Real v = x[static_cast<size_t>(j) * n + jbase + p];
          if (v == 0.0) continue;
          const Real* ucol = ukj + static_cast<size_t>(p) * w;
          Real* out = xk.data() + static_cast<size_t>(j) * w;
          for (Idx i = 0; i < w; ++i) out[i] -= ucol[i] * v;
        }
      }
    }
    // xk := inv(U_KK) * xk
    t.assign(static_cast<size_t>(w) * nrhs, 0.0);
    gemm_plus(w, w, nrhs, f.diag_uinv[static_cast<size_t>(k)], xk, t);
    scatter(f, k, t, nrhs, x);
  }
}

std::vector<Real> solve_seq(const SupernodalLU& f, std::span<const Real> b, Idx nrhs) {
  std::vector<Real> y(b.size());
  solve_l_seq(f, b, y, nrhs);
  std::vector<Real> x(b.size());
  solve_u_seq(f, y, x, nrhs);
  return x;
}

std::vector<Real> solve_system_seq(const FactoredSystem& fs, std::span<const Real> b,
                                   Idx nrhs) {
  const Idx n = fs.lu.n();
  assert(b.size() == static_cast<size_t>(n) * nrhs);
  std::vector<Real> pb(b.size());
  // Permuted system: (P A P^T)(P x) = P b; row `new` of pb is row perm[new] of b.
  for (Idx j = 0; j < nrhs; ++j) {
    for (Idx i = 0; i < n; ++i) {
      pb[static_cast<size_t>(j) * n + i] =
          b[static_cast<size_t>(j) * n + fs.perm[static_cast<size_t>(i)]];
    }
  }
  const std::vector<Real> px = solve_seq(fs.lu, pb, nrhs);
  std::vector<Real> x(b.size());
  for (Idx j = 0; j < nrhs; ++j) {
    for (Idx i = 0; i < n; ++i) {
      x[static_cast<size_t>(j) * n + fs.perm[static_cast<size_t>(i)]] =
          px[static_cast<size_t>(j) * n + i];
    }
  }
  return x;
}

Real relative_residual(const CsrMatrix& a, std::span<const Real> x,
                       std::span<const Real> b, Idx nrhs) {
  const Idx n = a.rows();
  std::vector<Real> ax(static_cast<size_t>(n) * nrhs);
  a.matmul(x, ax, nrhs);
  Real worst = 0;
  for (Idx j = 0; j < nrhs; ++j) {
    Real num = 0, den = 0;
    for (Idx i = 0; i < n; ++i) {
      num = std::max(num, std::abs(ax[static_cast<size_t>(j) * n + i] -
                                   b[static_cast<size_t>(j) * n + i]));
      den = std::max(den, std::abs(b[static_cast<size_t>(j) * n + i]));
    }
    worst = std::max(worst, num / std::max(den, Real{1e-300}));
  }
  return worst;
}

}  // namespace sptrsv
