#include "factor/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace sptrsv {

namespace {

constexpr std::uint64_t kMagic = 0x53505452'53563344ULL;  // "SPTRSV3D"
constexpr std::uint32_t kVersion = 1;

void put_bytes(std::ostream& out, const void* p, size_t n) {
  out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  if (!out) throw std::runtime_error("save_factored_system: write failed");
}

void get_bytes(std::istream& in, void* p, size_t n) {
  in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  if (!in || in.gcount() != static_cast<std::streamsize>(n)) {
    throw std::runtime_error("load_factored_system: truncated stream");
  }
}

template <class T>
void put(std::ostream& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  put_bytes(out, &v, sizeof(T));
}

template <class T>
T get(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v;
  get_bytes(in, &v, sizeof(T));
  return v;
}

template <class T>
void put_vec(std::ostream& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  put<std::uint64_t>(out, v.size());
  if (!v.empty()) put_bytes(out, v.data(), v.size() * sizeof(T));
}

template <class T>
std::vector<T> get_vec(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto n = get<std::uint64_t>(in);
  // Sanity cap: 2^40 bytes would mean a corrupt header.
  if (n * sizeof(T) > (1ULL << 40)) {
    throw std::runtime_error("load_factored_system: implausible array size");
  }
  std::vector<T> v(static_cast<size_t>(n));
  if (n > 0) get_bytes(in, v.data(), static_cast<size_t>(n) * sizeof(T));
  return v;
}

template <class T>
void put_vec2(std::ostream& out, const std::vector<std::vector<T>>& v) {
  put<std::uint64_t>(out, v.size());
  for (const auto& inner : v) put_vec(out, inner);
}

template <class T>
std::vector<std::vector<T>> get_vec2(std::istream& in) {
  const auto n = get<std::uint64_t>(in);
  if (n > (1ULL << 32)) {
    throw std::runtime_error("load_factored_system: implausible outer size");
  }
  std::vector<std::vector<T>> v(static_cast<size_t>(n));
  for (auto& inner : v) inner = get_vec<T>(in);
  return v;
}

}  // namespace

void save_factored_system(std::ostream& out, const FactoredSystem& fs) {
  put(out, kMagic);
  put(out, kVersion);

  put_vec(out, fs.perm);

  // Tracked tree.
  put<std::int32_t>(out, fs.tree.levels());
  put<std::int64_t>(out, fs.tree.num_nodes());
  for (Idx id = 0; id < fs.tree.num_nodes(); ++id) {
    const NdNode& nd = fs.tree.node(id);
    put(out, nd.parent);
    put(out, nd.left);
    put(out, nd.right);
    put(out, nd.depth);
    put(out, nd.col_begin);
    put(out, nd.col_end);
  }

  // Symbolic structure.
  const SymbolicStructure& sym = fs.lu.sym;
  put(out, sym.n);
  put_vec(out, sym.part.start);
  put_vec(out, sym.part.col_to_sn);
  put_vec(out, sym.sn_parent);
  put_vec2(out, sym.below);
  put_vec2(out, sym.below_offset);
  put_vec(out, sym.panel_rows);

  // Numeric panels.
  put_vec2(out, fs.lu.diag);
  put_vec2(out, fs.lu.diag_linv);
  put_vec2(out, fs.lu.diag_uinv);
  put_vec2(out, fs.lu.lpanel);
  put_vec2(out, fs.lu.upanel);
}

FactoredSystem load_factored_system(std::istream& in) {
  if (get<std::uint64_t>(in) != kMagic) {
    throw std::runtime_error("load_factored_system: bad magic");
  }
  if (get<std::uint32_t>(in) != kVersion) {
    throw std::runtime_error("load_factored_system: unsupported version");
  }

  FactoredSystem fs;
  fs.perm = get_vec<Idx>(in);

  const auto levels = get<std::int32_t>(in);
  const auto n_nodes = get<std::int64_t>(in);
  if (levels < 0 || levels > 30 ||
      n_nodes != ((std::int64_t{1} << (levels + 1)) - 1)) {
    throw std::runtime_error("load_factored_system: corrupt tree header");
  }
  std::vector<NdNode> nodes(static_cast<size_t>(n_nodes));
  for (auto& nd : nodes) {
    nd.parent = get<Idx>(in);
    nd.left = get<Idx>(in);
    nd.right = get<Idx>(in);
    nd.depth = get<int>(in);
    nd.col_begin = get<Idx>(in);
    nd.col_end = get<Idx>(in);
  }
  fs.tree = NdTree(levels, std::move(nodes));

  SymbolicStructure sym;
  sym.n = get<Idx>(in);
  sym.part.start = get_vec<Idx>(in);
  sym.part.col_to_sn = get_vec<Idx>(in);
  sym.sn_parent = get_vec<Idx>(in);
  sym.below = get_vec2<Idx>(in);
  sym.below_offset = get_vec2<Idx>(in);
  sym.panel_rows = get_vec<Idx>(in);
  if (!sym.part.check_invariants(sym.n) ||
      sym.below.size() != static_cast<size_t>(sym.num_supernodes())) {
    throw std::runtime_error("load_factored_system: corrupt symbolic structure");
  }

  fs.lu.sym = std::move(sym);
  fs.lu.diag = get_vec2<Real>(in);
  fs.lu.diag_linv = get_vec2<Real>(in);
  fs.lu.diag_uinv = get_vec2<Real>(in);
  fs.lu.lpanel = get_vec2<Real>(in);
  fs.lu.upanel = get_vec2<Real>(in);
  const auto nsup = static_cast<size_t>(fs.lu.num_supernodes());
  if (fs.lu.diag.size() != nsup || fs.lu.lpanel.size() != nsup ||
      fs.lu.upanel.size() != nsup || fs.lu.diag_linv.size() != nsup ||
      fs.lu.diag_uinv.size() != nsup ||
      fs.perm.size() != static_cast<size_t>(fs.lu.n())) {
    throw std::runtime_error("load_factored_system: inconsistent panel counts");
  }
  if (!is_permutation(fs.perm)) {
    throw std::runtime_error("load_factored_system: corrupt permutation");
  }
  if (!fs.tree.check_invariants(fs.lu.n())) {
    throw std::runtime_error("load_factored_system: corrupt tree ranges");
  }
  return fs;
}

void save_factored_system_file(const std::string& path, const FactoredSystem& fs) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_factored_system: cannot open " + path);
  save_factored_system(out, fs);
}

FactoredSystem load_factored_system_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_factored_system: cannot open " + path);
  return load_factored_system(in);
}

}  // namespace sptrsv
