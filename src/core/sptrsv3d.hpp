#pragma once
/// \file sptrsv3d.hpp
/// \brief The 3D SpTRSV algorithms: the paper's proposed one-synchronization
/// algorithm (Algorithm 1) and the baseline level-by-level algorithm [39].
///
/// Both run on a Px x Py x Pz layout (Fig 1): the world communicator is
/// split into Pz 2D grids of Px x Py ranks plus "z-line" communicators
/// joining the same (x,y) position across grids. Grid z handles L^z/U^z —
/// the submatrix of its leaf elimination-tree node and all replicated
/// ancestors.
///
///  - Proposed (§3.1-3.2): every grid runs ONE whole-matrix 2D L-solve on a
///    zero-masked RHS (replicated computation), a single sparse allreduce
///    completes the ancestor solutions (the only inter-grid
///    synchronization), then one whole-matrix 2D U-solve.
///  - Baseline [39] (§2.2): grids solve one elimination-tree node per
///    level, exchanging partial sums pairwise between grids after every
///    level (O(log Pz) inter-grid synchronizations; half the active grids
///    go idle at each level).

#include <vector>

#include "comm/sparse_allreduce.hpp"
#include "core/solver2d.hpp"
#include "dist/layout.hpp"
#include "factor/supernodal_lu.hpp"
#include "ordering/nested_dissection.hpp"
#include "runtime/cluster.hpp"

namespace sptrsv {

/// Which 3D algorithm to run.
enum class Algorithm3d {
  kBaseline,  ///< level-by-level [39]
  kProposed,  ///< Algorithm 1 (one inter-grid sync, sparse allreduce)
};

/// Solve configuration.
struct SolveConfig {
  Grid3dShape shape;
  Algorithm3d algorithm = Algorithm3d::kProposed;
  /// Intra-grid communication shape: binary trees (the paper's latency
  /// optimization, NEW3DSOLVETREECOMM) or flat fan-out (ablation).
  TreeKind tree = TreeKind::kBinary;
  /// Inter-grid reduction flavor: the sparse allreduce of Algorithm 2 or
  /// the naive per-node dense allreduce (ablation). Proposed algorithm only.
  bool sparse_zreduce = true;
  Idx nrhs = 1;
  /// Runtime scheduling: deterministic token-handoff mode and the
  /// perturbation seed (see RunOptions in runtime/cluster.hpp).
  RunOptions run;
};

/// Per-rank phase timing (virtual seconds), split by the paper's breakdown
/// categories within each phase.
struct RankPhaseTimes {
  double l_fp = 0, l_xy = 0, l_z = 0;  ///< L-solve phase
  double z_time = 0;                   ///< inter-grid allreduce (proposed)
  double u_fp = 0, u_xy = 0, u_z = 0;  ///< U-solve phase
  double total = 0;                    ///< rank's final virtual time

  double l_solve() const { return l_fp + l_xy; }  ///< Fig 7-8 convention
  double u_solve() const { return u_fp + u_xy; }  ///< (Z-comm excluded)
};

/// Outcome of a distributed solve.
struct DistSolveOutcome {
  /// Solution in the factor's (permuted) row order, n x nrhs column-major.
  std::vector<Real> x;
  /// Per-world-rank phase times.
  std::vector<RankPhaseTimes> rank_times;
  /// Raw runtime statistics (category times, message/byte counts) — feeds
  /// Cluster::Result::fingerprint() for repeatability checks.
  Cluster::Result run_stats;
  /// Modeled makespan (max total over ranks).
  double makespan = 0;
  double mean(double RankPhaseTimes::* field) const;
  double max(double RankPhaseTimes::* field) const;
  double min(double RankPhaseTimes::* field) const;
};

/// Runs the selected 3D SpTRSV on `machine` and returns the solution (in
/// permuted order) plus modeled timings. `b` is n x nrhs column-major in
/// the factor's permuted order. Checks shape constraints (pz must be a
/// power of two not exceeding the tracked tree's leaves; the machine must
/// allow the layout).
DistSolveOutcome solve_sptrsv_3d(const SupernodalLU& lu, const NdTree& tree,
                                 std::span<const Real> b, const SolveConfig& cfg,
                                 const MachineModel& machine);

/// Convenience wrapper around a FactoredSystem: permutes b in, solves, and
/// permutes x back to the original row order.
DistSolveOutcome solve_system_3d(const FactoredSystem& fs, std::span<const Real> b,
                                 const SolveConfig& cfg, const MachineModel& machine);

/// Outcome of a residual-verified solve (docs/ROBUSTNESS.md §SDC).
struct VerifiedSolveOutcome {
  DistSolveOutcome solve;     ///< the accepted (possibly repaired) solve
  Real residual = 0.0;        ///< relative max-norm residual of solve.x
  bool repaired = false;      ///< degraded-mode refinement repair engaged
  Idx repair_iterations = 0;  ///< refinement iterations the repair spent
};

/// solve_system_3d plus the end-of-solve verification gate: evaluates the
/// relative max-norm residual ||A x - b||_inf / ||b||_inf against
/// MachineModel::abft.residual_tol, pricing the check onto the fault ledger
/// (each rank's 1/P share of the SpMV plus a max-reduce tree — the clean
/// ledger never moves). A residual above the gate means silent corruption
/// survived the solve (ABFT off, or an uncorrectable fault): with
/// RunOptions::sdc_repair the solve degrades gracefully into iterative
/// refinement (iterations and modeled cost recorded on the SdcStats ledger);
/// otherwise a structured FaultError with FaultKind::kSilentCorruption is
/// thrown. `a` is the original matrix in original row order, `b` likewise.
VerifiedSolveOutcome solve_system_3d_verified(const CsrMatrix& a,
                                              const FactoredSystem& fs,
                                              std::span<const Real> b,
                                              const SolveConfig& cfg,
                                              const MachineModel& machine);

}  // namespace sptrsv
