#pragma once
/// \file refinement.hpp
/// \brief Iterative refinement on top of the distributed 3D solve.
///
/// The paper motivates SpTRSV scalability with workloads that apply the
/// triangular solves repeatedly; iterative refinement is the canonical
/// one inside a direct solver: every iteration is one L+U solve plus a
/// SpMV, so the solve layout directly multiplies end-to-end throughput.
/// This driver also exercises the library's numerical story: the unpivoted
/// factorization's residual is polished to working accuracy.

#include <vector>

#include "core/sptrsv3d.hpp"
#include "sparse/csr.hpp"

namespace sptrsv {

struct RefinementOptions {
  Idx max_iterations = 10;
  /// Stop once max-norm relative residual drops below this.
  Real tolerance = 1e-13;
};

struct RefinementResult {
  std::vector<Real> x;                  ///< refined solution (original order)
  std::vector<Real> residual_history;   ///< relative residual per iteration
  bool converged = false;
  /// Modeled solve time summed over the refinement iterations (the SpMV
  /// and vector updates are not charged; they are embarrassingly parallel
  /// and negligible next to the solves in the paper's regime).
  double modeled_solve_time = 0.0;

  Idx iterations() const { return static_cast<Idx>(residual_history.size()); }
};

/// Solves A x = b by repeated distributed solves with residual correction.
/// `a` is the original matrix (original row order); `fs` its factorization.
RefinementResult iterative_refinement(const CsrMatrix& a, const FactoredSystem& fs,
                                      std::span<const Real> b, const SolveConfig& cfg,
                                      const MachineModel& machine,
                                      const RefinementOptions& opt = {});

}  // namespace sptrsv
