#pragma once
/// \file solver2d.hpp
/// \brief Message-driven distributed 2D triangular solves (paper §3.3,
/// Algorithm 3 generalized from Px x 1 to Px x Py).
///
/// The L-solve is a data-driven loop: whoever owns the diagonal of a
/// supernode K computes y(K) once all partial sums have been reduced to it,
/// then sends y(K) down K's broadcast tree; owners of blocks L(I,K) fold
/// y(K) into their local lsum(I) and push it up I's reduction tree. All
/// bookkeeping (`fmod` in the paper) is precomputed in the Solve2dPlan.
/// The U-solve mirrors the pattern with broadcast and reduction roles
/// swapped and the elimination order reversed.
///
/// The same routine serves both 3D algorithms: the proposed one calls it
/// once per grid on the whole L^z/U^z, the baseline calls it per
/// elimination-tree node with partial sums for replicated ancestors handed
/// back through `external_lsum` / fed forward through `x_external`.

#include <unordered_map>
#include <vector>

#include "dist/solve_plan.hpp"
#include "runtime/cluster.hpp"

namespace sptrsv {

/// Supernode id -> packed (width x nrhs) column-major values.
using VecMap = std::unordered_map<Idx, std::vector<Real>>;

/// Result of a distributed 2D L-solve on one grid.
struct LSolve2dResult {
  /// y(K) for every solved column K whose diagonal this rank owns.
  VecMap y;
  /// Accumulated partial sums lsum(I) for external rows I whose diagonal
  /// position this rank holds (handed to inter-grid reduction).
  VecMap external_lsum;
};

/// Result of a distributed 2D U-solve.
struct USolve2dResult {
  /// x(K) for every solved column K whose diagonal this rank owns.
  VecMap x;
};

/// Distributed L-solve over `plan` on the 2D communicator `grid`.
///  - `b_local`: RHS pieces b(K) for solved columns this rank diag-owns
///    (absent entries are treated as zero — the Algorithm 1 masking).
///  - `lsum_in`: initial partial sums for solved columns this rank
///    diag-owns (baseline: reductions from lower tree levels).
///  - `tag_base`: disambiguates concurrent solves on one communicator
///    (baseline levels overlap in time across ranks).
/// Communication cost is charged to `cat`; GEMV/GEMM to FP.
LSolve2dResult solve_l_2d(Comm& grid, const Solve2dPlan& plan, const VecMap& b_local,
                          const VecMap& lsum_in, Idx nrhs, int tag_base,
                          TimeCategory cat = TimeCategory::kXyComm);

/// Distributed U-solve over `plan`.
///  - `y_local`: RHS pieces y(K) for solved columns this rank diag-owns.
///  - `x_external`: already-known solutions of external rows this rank
///    diag-owns (baseline: received from the parent grid); they are
///    broadcast to block owners at startup.
USolve2dResult solve_u_2d(Comm& grid, const Solve2dPlan& plan, const VecMap& y_local,
                          const VecMap& x_external, Idx nrhs, int tag_base,
                          TimeCategory cat = TimeCategory::kXyComm);

}  // namespace sptrsv
