#include "core/solver2d.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "factor/dense.hpp"

namespace sptrsv {

namespace {

// Tag layout within a solve's window: tag_base + 4*supernode + kind.
constexpr int kKindYsol = 0;  // L-solve solution broadcast
constexpr int kKindLsum = 1;  // L-solve partial-sum reduction
constexpr int kKindXsol = 2;  // U-solve solution broadcast
constexpr int kKindUsum = 3;  // U-solve partial-sum reduction

}  // namespace

LSolve2dResult solve_l_2d(Comm& grid, const Solve2dPlan& plan, const VecMap& b_local,
                          const VecMap& lsum_in, Idx nrhs, int tag_base,
                          TimeCategory cat) {
  const auto& shape = plan.shape();
  const auto& lu = plan.lu();
  const auto& part = lu.sym.part;
  const int me = grid.rank();
  const int myrow = shape.row_of(me);
  const int mycol = shape.col_of(me);
  const Idx nsup_window = static_cast<Idx>(lu.num_supernodes());
  const TraceSpan solve_span = grid.annotate("solve_l_2d", tag_base);

  // Null handles (no-op add) unless RunOptions::metrics is on — the solver's
  // contribution to the registry taxonomy (docs/OBSERVABILITY.md).
  const MetricsRegistry::Counter m_rows = grid.metric_counter("solver2d.rows_completed");
  const MetricsRegistry::Counter m_diag = grid.metric_counter("solver2d.diag_solves");
  const MetricsRegistry::Counter m_bcast = grid.metric_counter("tree.bcast_sends");
  const MetricsRegistry::Counter m_reduce = grid.metric_counter("tree.reduce_sends");

  LSolve2dResult result;

  // Per-row reduction state (only rows whose reduction tree I belong to).
  // Contributions are *recorded* as they arrive but only *summed* when the
  // row completes, in an order fixed by the plan — never by message arrival
  // — so the FP result is bitwise reproducible (docs/DETERMINISM.md).
  struct RowState {
    std::vector<Real> lsum;
    std::vector<std::pair<int, std::vector<Real>>> child_lsum;  // (src, partial)
    Idx pending = 0;
  };
  std::unordered_map<Idx, RowState> rowstate;  // key: row position
  // y(K) for every column whose broadcast reached this rank; gemms against
  // it are deferred to row completion.
  std::unordered_map<Idx, std::vector<Real>> ycache;  // key: supernode
  int expected = 0;
  Idx my_diag = 0;  // diagonal solves this rank roots (epoch pacing)

  for (Idx rp = 0; rp < plan.num_rows(); ++rp) {
    const TreeView t = plan.l_reduce(rp);
    if (!t.contains(me)) continue;
    const Idx i = plan.rows()[static_cast<size_t>(rp)];
    if (t.root() == me && plan.col_pos(i) != kNoIdx) ++my_diag;
    RowState st;
    st.lsum.assign(static_cast<size_t>(part.width(i)) * nrhs, 0.0);
    if (shape.owner_row(i) == myrow) {
      for (const Idx k : plan.row_pattern(rp)) {
        if (shape.owner_col(k) == mycol) ++st.pending;
      }
    }
    const int children = t.num_children(me);
    st.pending += children;
    expected += children;
    rowstate.emplace(rp, std::move(st));
  }
  for (Idx cp = 0; cp < plan.num_cols(); ++cp) {
    const TreeView t = plan.l_bcast(cp);
    if (t.contains(me) && t.root() != me) ++expected;
  }

  // Handlers communicate through an explicit ready queue instead of
  // recursing: DAG chains can be O(nsup) long (e.g. on a 1x1 grid), which
  // would otherwise overflow the rank thread's stack.
  std::vector<Idx> ready_rows;

  auto process_y = [&](Idx cp, std::span<const Real> yk) {
    const Idx k = plan.cols()[static_cast<size_t>(cp)];
    const TreeView t = plan.l_bcast(cp);
    {
      // Span arg = my depth in the broadcast tree (relay stage number).
      const TraceSpan bcast_span = grid.annotate("l_bcast", t.depth_of(me));
      t.for_each_child(me, [&](int child) {
        m_bcast.add();
        grid.send(child, tag_base + 4 * static_cast<int>(k) + kKindYsol,
                  std::vector<Real>(yk.begin(), yk.end()), cat);
      });
    }
    if (shape.owner_col(k) != mycol) return;
    // Charge the gemm time for my blocks in this column now (the compute
    // overlaps the remaining traffic), but defer the numeric fold to row
    // completion so the accumulation order is fixed by the plan.
    ycache.emplace(k, std::vector<Real>(yk.begin(), yk.end()));
    for (const Idx i : plan.below(cp)) {
      if (shape.owner_row(i) != myrow) continue;
      const Idx rp = plan.row_pos(i);
      auto& st = rowstate.at(rp);
      grid.compute(plan.block_flops(i, k, nrhs));
      if (--st.pending == 0) ready_rows.push_back(rp);
    }
  };

  auto complete_row = [&](Idx rp) {
    const Idx i = plan.rows()[static_cast<size_t>(rp)];
    const TraceSpan row_span = grid.annotate("l_row", static_cast<std::int64_t>(i));
    m_rows.add();
    const TreeView t = plan.l_reduce(rp);
    auto& st = rowstate.at(rp);
    // Reduce in plan order: carry-in first, then my blocks by ascending
    // column, then child partials by ascending source rank.
    if (t.root() == me) {
      const auto itl = lsum_in.find(i);
      if (itl != lsum_in.end()) {
        if (itl->second.size() != st.lsum.size()) {
          throw std::invalid_argument("solve_l_2d: lsum_in size mismatch");
        }
        for (size_t v = 0; v < st.lsum.size(); ++v) st.lsum[v] += itl->second[v];
      }
    }
    if (shape.owner_row(i) == myrow) {
      const auto pat = plan.row_pattern(rp);
      const auto pidx = plan.row_pattern_index(rp);
      const Idx wi = part.width(i);
      for (size_t pi = 0; pi < pat.size(); ++pi) {
        const Idx k = pat[pi];
        if (shape.owner_col(k) != mycol) continue;
        const Idx wk = part.width(k);
        const Idx ldk = lu.sym.panel_rows[static_cast<size_t>(k)];
        const Idx off =
            lu.sym.below_offset[static_cast<size_t>(k)][static_cast<size_t>(pidx[pi])];
        gemm_plus_ld(wi, wk, nrhs,
                     std::span<const Real>(lu.lpanel[static_cast<size_t>(k)]).subspan(
                         static_cast<size_t>(off)),
                     ldk, ycache.at(k), wk, st.lsum, wi);
      }
    }
    std::sort(st.child_lsum.begin(), st.child_lsum.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [src, partial] : st.child_lsum) {
      for (size_t v = 0; v < st.lsum.size(); ++v) st.lsum[v] += partial[v];
    }
    if (t.root() != me) {
      m_reduce.add();
      grid.send(t.parent_of(me), tag_base + 4 * static_cast<int>(i) + kKindLsum,
                std::move(st.lsum), cat);
      return;
    }
    const Idx cp = plan.col_pos(i);
    if (cp == kNoIdx) {  // external row: hand the accumulated sums back
      result.external_lsum.emplace(i, std::move(st.lsum));
      return;
    }
    // Diagonal solve: y(K) = inv(L_KK) * (b(K) - lsum(K)).
    const Idx w = part.width(i);
    std::vector<Real> rhs(static_cast<size_t>(w) * nrhs, 0.0);
    const auto itb = b_local.find(i);
    if (itb != b_local.end()) {
      if (itb->second.size() != rhs.size()) {
        throw std::invalid_argument("solve_l_2d: b_local size mismatch");
      }
      rhs = itb->second;
    }
    for (size_t v = 0; v < rhs.size(); ++v) rhs[v] -= st.lsum[v];
    std::vector<Real> yk(static_cast<size_t>(w) * nrhs, 0.0);
    gemm_plus(w, w, nrhs, lu.diag_linv[static_cast<size_t>(i)], rhs, yk);
    grid.compute(plan.diag_flops(i, nrhs));
    m_diag.add();
    const auto [it, inserted] = result.y.emplace(i, std::move(yk));
    assert(inserted);
    process_y(cp, it->second);
  };

  // Buddy-checkpoint hook: the solve state worth surviving a crash is the
  // append-only y-fragment map plus the remaining-message cursor. Epochs cut
  // at quarter marks of local diagonal-solve progress (the 2D solve has no
  // level barriers to hang them on). No-op unless a crash model is active.
  // The per-row accumulation order is a pure function of the *partition*
  // (owner rows and their DAG order), not of which physical rank hosts it —
  // so an adopter replaying this partition after an elastic shrink
  // (RunOptions::degrade) reproduces the victim's floating-point results
  // bit for bit.
  const CheckpointScope ckpt = grid.register_checkpoint(
      "solve_l_2d",
      [&] { return checkpoint_pack(result.y, static_cast<double>(expected)); },
      [&](const CheckpointImage& img) {
        checkpoint_verify(img, result.y, "solve_l_2d");
      },
      [&] { return sdc_spans(result.y); });
  Idx next_mark = 1;

  auto drain = [&] {
    while (!ready_rows.empty()) {
      const Idx rp = ready_rows.back();
      ready_rows.pop_back();
      complete_row(rp);
    }
    while (next_mark < 4 && my_diag > 0 &&
           static_cast<Idx>(result.y.size()) * 4 >= next_mark * my_diag) {
      grid.checkpoint_epoch(next_mark);
      ++next_mark;
    }
  };

  // Kick off: rows that are already complete (DAG sources and externals
  // with no local contributions).
  for (auto& [rp, st] : rowstate) {
    if (st.pending == 0) ready_rows.push_back(rp);
  }
  drain();

  // Message-driven loop (Algorithm 3's while-loop).
  const int tag_hi = tag_base + 4 * static_cast<int>(nsup_window) + 4;
  while (expected > 0) {
    Message m;
    try {
      m = grid.recv_range(kAnySource, tag_base, tag_hi, cat);
    } catch (FaultError& fe) {
      rethrow_with_phase(fe, "solve_l_2d");
    }
    --expected;
    const int rel = m.tag - tag_base;
    const Idx k = static_cast<Idx>(rel / 4);
    const int kind = rel % 4;
    if (kind == kKindYsol) {
      process_y(plan.col_pos(k), m.data);
    } else if (kind == kKindLsum) {
      const Idx rp = plan.row_pos(k);
      auto& st = rowstate.at(rp);
      if (m.data.size() != st.lsum.size()) {
        throw std::runtime_error("solve_l_2d: lsum message size mismatch");
      }
      st.child_lsum.emplace_back(m.src, std::move(m.data));
      if (--st.pending == 0) ready_rows.push_back(rp);
    } else {
      throw std::runtime_error("solve_l_2d: unexpected message kind");
    }
    drain();
  }
  return result;
}

USolve2dResult solve_u_2d(Comm& grid, const Solve2dPlan& plan, const VecMap& y_local,
                          const VecMap& x_external, Idx nrhs, int tag_base,
                          TimeCategory cat) {
  const auto& shape = plan.shape();
  const auto& lu = plan.lu();
  const auto& part = lu.sym.part;
  const int me = grid.rank();
  const int myrow = shape.row_of(me);
  const int mycol = shape.col_of(me);
  const Idx nsup_window = static_cast<Idx>(lu.num_supernodes());
  const TraceSpan solve_span = grid.annotate("solve_u_2d", tag_base);

  // Same taxonomy as the L-solve; counters aggregate across both phases.
  const MetricsRegistry::Counter m_cols = grid.metric_counter("solver2d.cols_completed");
  const MetricsRegistry::Counter m_diag = grid.metric_counter("solver2d.diag_solves");
  const MetricsRegistry::Counter m_bcast = grid.metric_counter("tree.bcast_sends");
  const MetricsRegistry::Counter m_reduce = grid.metric_counter("tree.reduce_sends");

  USolve2dResult result;

  // Per-column reduction state (columns whose U-reduction tree I'm in).
  // Same deferred-accumulation scheme as the L-solve: record contributions
  // at arrival, sum in plan order at completion.
  struct ColState {
    std::vector<Real> usum;
    std::vector<std::pair<int, std::vector<Real>>> child_usum;  // (src, partial)
    Idx pending = 0;
  };
  std::unordered_map<Idx, ColState> colstate;  // key: column position
  std::unordered_map<Idx, std::vector<Real>> xcache;  // key: supernode
  int expected = 0;
  Idx my_diag = 0;  // diagonal solves this rank roots (epoch pacing)

  for (Idx cp = 0; cp < plan.num_cols(); ++cp) {
    const TreeView t = plan.u_reduce(cp);
    if (!t.contains(me)) continue;
    const Idx k = plan.cols()[static_cast<size_t>(cp)];
    if (t.root() == me) ++my_diag;
    ColState st;
    st.usum.assign(static_cast<size_t>(part.width(k)) * nrhs, 0.0);
    if (shape.owner_row(k) == myrow) {
      for (const Idx i : plan.below(cp)) {
        if (shape.owner_col(i) == mycol) ++st.pending;
      }
    }
    const int children = t.num_children(me);
    st.pending += children;
    expected += children;
    colstate.emplace(cp, std::move(st));
  }
  for (Idx rp = 0; rp < plan.num_rows(); ++rp) {
    const TreeView t = plan.u_bcast(rp);
    if (t.contains(me) && t.root() != me) ++expected;
  }

  std::vector<Idx> ready_cols;  // explicit queue; see L-solve comment

  auto process_x = [&](Idx rp, std::span<const Real> xi) {
    const Idx i = plan.rows()[static_cast<size_t>(rp)];
    const TreeView t = plan.u_bcast(rp);
    {
      // Span arg = my depth in the broadcast tree (relay stage number).
      const TraceSpan bcast_span = grid.annotate("u_bcast", t.depth_of(me));
      t.for_each_child(me, [&](int child) {
        m_bcast.add();
        grid.send(child, tag_base + 4 * static_cast<int>(i) + kKindXsol,
                  std::vector<Real>(xi.begin(), xi.end()), cat);
      });
    }
    if (shape.owner_col(i) != mycol) return;
    // Charge the gemm time for my blocks in this row now; the numeric
    // usum(K) += U(K,I) * x(I) fold runs at column completion, in plan
    // order (see the L-solve).
    xcache.emplace(i, std::vector<Real>(xi.begin(), xi.end()));
    for (const Idx k : plan.row_pattern(rp)) {
      if (shape.owner_row(k) != myrow) continue;
      const Idx cp = plan.col_pos(k);
      auto& st = colstate.at(cp);
      grid.compute(plan.block_flops(i, k, nrhs));
      if (--st.pending == 0) ready_cols.push_back(cp);
    }
  };

  auto complete_col = [&](Idx cp) {
    const Idx k = plan.cols()[static_cast<size_t>(cp)];
    const TraceSpan col_span = grid.annotate("u_col", static_cast<std::int64_t>(k));
    m_cols.add();
    const TreeView t = plan.u_reduce(cp);
    auto& st = colstate.at(cp);
    // Reduce in plan order: my blocks by ascending row, then child partials
    // by ascending source rank.
    if (shape.owner_row(k) == myrow) {
      const auto blist = plan.below(cp);
      const auto bidx = plan.below_index(cp);
      const Idx wk = part.width(k);
      for (size_t bi = 0; bi < blist.size(); ++bi) {
        const Idx i = blist[bi];
        if (shape.owner_col(i) != mycol) continue;
        const Idx wi = part.width(i);
        const Idx off =
            lu.sym.below_offset[static_cast<size_t>(k)][static_cast<size_t>(bidx[bi])];
        // U(K,I) is a packed wk x wi block at column offset `off` of K's panel.
        gemm_plus_ld(wk, wi, nrhs,
                     std::span<const Real>(lu.upanel[static_cast<size_t>(k)])
                         .subspan(static_cast<size_t>(off) * static_cast<size_t>(wk)),
                     wk, xcache.at(i), wi, st.usum, wk);
      }
    }
    std::sort(st.child_usum.begin(), st.child_usum.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [src, partial] : st.child_usum) {
      for (size_t v = 0; v < st.usum.size(); ++v) st.usum[v] += partial[v];
    }
    if (t.root() != me) {
      m_reduce.add();
      grid.send(t.parent_of(me), tag_base + 4 * static_cast<int>(k) + kKindUsum,
                std::move(st.usum), cat);
      return;
    }
    // x(K) = inv(U_KK) * (y(K) - usum(K)).
    const Idx w = part.width(k);
    std::vector<Real> rhs(static_cast<size_t>(w) * nrhs, 0.0);
    const auto ity = y_local.find(k);
    if (ity != y_local.end()) {
      if (ity->second.size() != rhs.size()) {
        throw std::invalid_argument("solve_u_2d: y_local size mismatch");
      }
      rhs = ity->second;
    }
    for (size_t v = 0; v < rhs.size(); ++v) rhs[v] -= st.usum[v];
    std::vector<Real> xk(static_cast<size_t>(w) * nrhs, 0.0);
    gemm_plus(w, w, nrhs, lu.diag_uinv[static_cast<size_t>(k)], rhs, xk);
    grid.compute(plan.diag_flops(k, nrhs));
    m_diag.add();
    const auto [it, inserted] = result.x.emplace(k, std::move(xk));
    assert(inserted);
    process_x(plan.row_pos(k), it->second);
  };

  // Buddy-checkpoint hook; mirrors the L-solve (append-only x fragments,
  // quarter-mark epochs on local diagonal-solve progress).
  const CheckpointScope ckpt = grid.register_checkpoint(
      "solve_u_2d",
      [&] { return checkpoint_pack(result.x, static_cast<double>(expected)); },
      [&](const CheckpointImage& img) {
        checkpoint_verify(img, result.x, "solve_u_2d");
      },
      [&] { return sdc_spans(result.x); });
  Idx next_mark = 1;

  auto drain = [&] {
    while (!ready_cols.empty()) {
      const Idx cp = ready_cols.back();
      ready_cols.pop_back();
      complete_col(cp);
    }
    while (next_mark < 4 && my_diag > 0 &&
           static_cast<Idx>(result.x.size()) * 4 >= next_mark * my_diag) {
      grid.checkpoint_epoch(next_mark);
      ++next_mark;
    }
  };

  // Kick off. Queue the zero-dependency columns BEFORE processing external
  // rows: external broadcasts decrement pendings and push newly-completed
  // columns themselves, so queueing afterwards would enqueue those twice.
  for (auto& [cp, st] : colstate) {
    if (st.pending == 0) ready_cols.push_back(cp);
  }
  for (const Idx i : plan.external_rows()) {
    const Idx rp = plan.row_pos(i);
    const TreeView t = plan.u_bcast(rp);
    if (t.root() != me) continue;
    const auto it = x_external.find(i);
    if (it == x_external.end()) {
      throw std::invalid_argument("solve_u_2d: missing x_external for row " +
                                  std::to_string(i));
    }
    process_x(rp, it->second);
  }
  drain();

  const int tag_hi = tag_base + 4 * static_cast<int>(nsup_window) + 4;
  while (expected > 0) {
    Message m;
    try {
      m = grid.recv_range(kAnySource, tag_base, tag_hi, cat);
    } catch (FaultError& fe) {
      rethrow_with_phase(fe, "solve_u_2d");
    }
    --expected;
    const int rel = m.tag - tag_base;
    const Idx k = static_cast<Idx>(rel / 4);
    const int kind = rel % 4;
    if (kind == kKindXsol) {
      process_x(plan.row_pos(k), m.data);
    } else if (kind == kKindUsum) {
      const Idx cp = plan.col_pos(k);
      auto& st = colstate.at(cp);
      if (m.data.size() != st.usum.size()) {
        throw std::runtime_error("solve_u_2d: usum message size mismatch");
      }
      st.child_usum.emplace_back(m.src, std::move(m.data));
      if (--st.pending == 0) ready_cols.push_back(cp);
    } else {
      throw std::runtime_error("solve_u_2d: unexpected message kind");
    }
    drain();
  }
  return result;
}

}  // namespace sptrsv
