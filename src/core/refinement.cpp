#include "core/refinement.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sptrsv {

RefinementResult iterative_refinement(const CsrMatrix& a, const FactoredSystem& fs,
                                      std::span<const Real> b, const SolveConfig& cfg,
                                      const MachineModel& machine,
                                      const RefinementOptions& opt) {
  const Idx n = a.rows();
  const Idx nrhs = cfg.nrhs;
  if (b.size() != static_cast<size_t>(n) * static_cast<size_t>(nrhs)) {
    throw std::invalid_argument("iterative_refinement: RHS size mismatch");
  }

  RefinementResult out;
  out.x.assign(b.size(), 0.0);
  std::vector<Real> r(b.begin(), b.end());  // r = b - A*0
  std::vector<Real> ax(b.size());

  Real bnorm = 0;
  for (const Real v : b) bnorm = std::max(bnorm, std::abs(v));
  if (bnorm == 0) bnorm = 1;

  for (Idx it = 0; it < opt.max_iterations; ++it) {
    // dx = (LU)^{-1} r via the distributed solve.
    const DistSolveOutcome step = solve_system_3d(fs, r, cfg, machine);
    out.modeled_solve_time += step.makespan;
    for (size_t i = 0; i < out.x.size(); ++i) out.x[i] += step.x[i];

    // r = b - A x; record the max-norm relative residual.
    a.matmul(out.x, ax, nrhs);
    Real rnorm = 0;
    for (size_t i = 0; i < r.size(); ++i) {
      r[i] = b[i] - ax[i];
      rnorm = std::max(rnorm, std::abs(r[i]));
    }
    out.residual_history.push_back(rnorm / bnorm);
    if (out.residual_history.back() < opt.tolerance) {
      out.converged = true;
      break;
    }
  }
  return out;
}

}  // namespace sptrsv
