#include "core/sptrsv3d.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <stdexcept>

#include "core/refinement.hpp"
#include "dist/solve_plan.hpp"
#include "factor/sptrsv_seq.hpp"

namespace sptrsv {

namespace {

// Tag windows. Each elimination-tree level of the baseline gets its own
// window so overlapping solves on one grid communicator cannot mix
// messages; the proposed algorithm uses windows 0 (L) and 1 (U).
int tag_window(const SupernodalLU& lu, int window) {
  return window * (4 * static_cast<int>(lu.num_supernodes()) + 4);
}

// z-line exchange tags (separate communicator, separate numbering). The
// baseline exchanges one message per elimination-tree node per level — it
// predates the packed sparse allreduce of §3.2 — so tags carry both the
// level and the node id.
constexpr int kZTagLsum = 1000000;
constexpr int kZTagXsol = 2000000;
int ztag(int base, int level, Idx node) {
  return base + level * 4096 + static_cast<int>(node);
}

bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

int log2_exact(int v) {
  int l = 0;
  while ((1 << l) < v) ++l;
  return l;
}

/// Gathers the (width x nrhs) slice of supernode K from an n x nrhs
/// column-major vector.
std::vector<Real> gather_snode(const SupernodalLU& lu, Idx k, std::span<const Real> v,
                               Idx nrhs) {
  const Idx w = lu.sym.part.width(k);
  const Idx base = lu.sym.part.first_col(k);
  const Idx n = lu.n();
  std::vector<Real> out(static_cast<size_t>(w) * nrhs);
  for (Idx j = 0; j < nrhs; ++j) {
    for (Idx i = 0; i < w; ++i) {
      out[static_cast<size_t>(j) * w + i] = v[static_cast<size_t>(j) * n + base + i];
    }
  }
  return out;
}

void scatter_snode(const SupernodalLU& lu, Idx k, std::span<const Real> piece,
                   std::span<Real> v, Idx nrhs) {
  const Idx w = lu.sym.part.width(k);
  const Idx base = lu.sym.part.first_col(k);
  const Idx n = lu.n();
  for (Idx j = 0; j < nrhs; ++j) {
    for (Idx i = 0; i < w; ++i) {
      v[static_cast<size_t>(j) * n + base + i] = piece[static_cast<size_t>(j) * w + i];
    }
  }
}

/// Nodes `path[s..]` = common ancestors at exchange step s, ascending ids.
std::vector<Idx> nodes_from_step(std::span<const Idx> path, int s) {
  std::vector<Idx> out(path.begin() + s, path.end());
  std::sort(out.begin(), out.end());
  return out;
}

/// Packs, in deterministic (node asc, supernode asc) order, the pieces this
/// grid rank diag-owns from `store` for the given nodes.
std::vector<Real> pack_pieces(const SupernodalLU& lu, const NdTree& tree,
                              const Grid2dShape& shape, int grid_rank,
                              std::span<const Idx> nodes, const VecMap& store) {
  std::vector<Real> buf;
  for (const Idx node : nodes) {
    const auto [lo, hi] = node_supernode_range(lu.sym, tree, node);
    for (Idx k = lo; k < hi; ++k) {
      if (shape.diag_owner(k) != grid_rank) continue;
      const auto it = store.find(k);
      if (it == store.end()) {
        throw std::logic_error("pack_pieces: missing piece for supernode " +
                               std::to_string(k));
      }
      buf.insert(buf.end(), it->second.begin(), it->second.end());
    }
  }
  return buf;
}

/// Inverse of pack_pieces; `op` combines incoming data with the store
/// (accumulate for lsum, replace for x).
template <class Op>
void unpack_pieces(const SupernodalLU& lu, const NdTree& tree, const Grid2dShape& shape,
                   int grid_rank, std::span<const Idx> nodes, std::span<const Real> buf,
                   VecMap& store, Idx nrhs, Op op) {
  size_t off = 0;
  for (const Idx node : nodes) {
    const auto [lo, hi] = node_supernode_range(lu.sym, tree, node);
    for (Idx k = lo; k < hi; ++k) {
      if (shape.diag_owner(k) != grid_rank) continue;
      const size_t len = static_cast<size_t>(lu.sym.part.width(k)) * nrhs;
      auto& dst = store[k];
      if (dst.empty()) dst.assign(len, 0.0);
      if (off + len > buf.size() || dst.size() != len) {
        throw std::runtime_error("unpack_pieces: layout mismatch");
      }
      op(dst, buf.subspan(off, len));
      off += len;
    }
  }
  if (off != buf.size()) throw std::runtime_error("unpack_pieces: trailing data");
}

void accumulate_op(std::vector<Real>& dst, std::span<const Real> src) {
  for (size_t i = 0; i < src.size(); ++i) dst[i] += src[i];
}
void replace_op(std::vector<Real>& dst, std::span<const Real> src) {
  std::copy(src.begin(), src.end(), dst.begin());
}

/// Shared, read-only context for all rank threads of one solve.
struct SolveContext {
  const SupernodalLU* lu = nullptr;
  NdTree coarse;  // tracked tree cut to log2(pz) levels
  SolveConfig cfg;
  std::span<const Real> b;
  // Plans: proposed -> one per leaf; baseline -> one per tree node.
  std::vector<Solve2dPlan> leaf_plans;  // by leaf z
  std::vector<Solve2dPlan> node_plans;  // by node id
  // Output (disjoint writes by design).
  std::vector<Real>* x_out = nullptr;
  std::vector<RankPhaseTimes>* times = nullptr;
};

/// Snapshot helper for phase accounting.
struct CatSnapshot {
  double fp = 0, xy = 0, z = 0;
  static CatSnapshot take(const Comm& c) {
    return {c.category_time(TimeCategory::kFp), c.category_time(TimeCategory::kXyComm),
            c.category_time(TimeCategory::kZComm)};
  }
};

void run_proposed(const SolveContext& ctx, Comm& world, Comm& grid, Comm& zline, int z) {
  const auto& lu = *ctx.lu;
  const auto& tree = ctx.coarse;
  const auto& shape = ctx.cfg.shape.grid2d();
  const Idx nrhs = ctx.cfg.nrhs;
  const Solve2dPlan& plan = ctx.leaf_plans[static_cast<size_t>(z)];
  const int me = grid.rank();

  // RHS masking (Algorithm 1, lines 4-9): keep b(K) only if this grid is
  // the smallest grid id replicating K's tree node.
  VecMap b_local;
  for (const Idx k : plan.cols()) {
    if (shape.diag_owner(k) != me) continue;
    const Idx node = tree.node_of_column(lu.sym.part.first_col(k));
    if (tree.leaf_range(node).first == z) {
      b_local.emplace(k, gather_snode(lu, k, ctx.b, nrhs));
    }
  }

  world.barrier();
  world.reset_clock();

  // Phase-boundary buddy checkpoints: the y-fragment map is the state worth
  // restoring between the three phases (inside a 2D solve the solve's own
  // hook is innermost and takes over). The z-phase overwrites y values with
  // completed sums, so restore validation is layout-only (see the lambda).
  LSolve2dResult lres;
  const CheckpointScope ckpt = world.register_checkpoint(
      "sptrsv3d proposed",
      [&] { return checkpoint_pack(lres.y, static_cast<double>(z)); },
      [&](const CheckpointImage& img) {
        // Values mutate after capture (z-phase accumulation), so only the
        // shape is checked: every checkpointed fragment must still exist
        // with its checkpointed length.
        const std::vector<Real>& s = img.state;
        const auto count = s.size() < 2 ? 0 : static_cast<std::size_t>(s[0]);
        std::size_t pos = 2;
        for (std::size_t e = 0; e < count; ++e) {
          const auto k = static_cast<Idx>(s[pos]);
          const auto len = static_cast<std::size_t>(s[pos + 1]);
          const auto it = lres.y.find(k);
          if (it == lres.y.end() || it->second.size() != len) {
            throw std::logic_error(
                "sptrsv3d proposed: checkpoint image disagrees with live state");
          }
          pos += 2 + len;
        }
      },
      [&] { return sdc_spans(lres.y); });

  // 2D L-solve of the whole L^z (replicated computation, no inter-grid
  // communication).
  try {
    const TraceSpan phase = world.annotate("phase:L", z);
    lres = solve_l_2d(grid, plan, b_local, {}, nrhs, tag_window(lu, 0));
  } catch (FaultError& fe) {
    rethrow_with_phase(fe, "sptrsv3d L-solve");
  }
  world.checkpoint_epoch(0);  // L-phase boundary
  const CatSnapshot after_l = CatSnapshot::take(world);

  // The single inter-grid synchronization: sparse allreduce of the partial
  // ancestor solutions (Algorithm 2).
  try {
    const TraceSpan phase = world.annotate("phase:Z", z);
    const MetricsRegistry::Counter m_segs = world.metric_counter("solver3d.zsegments");
    const auto path = tree.path_to_root(tree.leaf_node_id(z));
    std::vector<std::vector<Real>> node_bufs;
    std::vector<std::vector<Idx>> node_sns;
    std::vector<ReduceSegment> segments;
    for (const Idx node : path) {
      if (tree.node(node).depth >= tree.levels()) continue;  // leaf: not replicated
      auto& sns = node_sns.emplace_back();
      auto& buf = node_bufs.emplace_back();
      const auto [lo, hi] = node_supernode_range(lu.sym, tree, node);
      for (Idx k = lo; k < hi; ++k) {
        if (shape.diag_owner(k) != me) continue;
        const auto& piece = lres.y.at(k);
        sns.push_back(k);
        buf.insert(buf.end(), piece.begin(), piece.end());
      }
      segments.push_back({node, buf});
    }
    m_segs.add(static_cast<std::int64_t>(segments.size()));
    if (ctx.cfg.sparse_zreduce) {
      sparse_allreduce(zline, tree, segments);
    } else {
      dense_allreduce_per_node(zline, tree, segments);
    }
    // Scatter the completed sums back into the y map (RHS of the U-solve).
    for (size_t s = 0; s < node_sns.size(); ++s) {
      size_t off = 0;
      for (const Idx k : node_sns[s]) {
        auto& piece = lres.y.at(k);
        std::copy_n(node_bufs[s].begin() + static_cast<std::ptrdiff_t>(off),
                    piece.size(), piece.begin());
        off += piece.size();
      }
    }
  } catch (FaultError& fe) {
    rethrow_with_phase(fe, "sptrsv3d z-reduction");
  }
  world.checkpoint_epoch(1);  // Z-phase boundary
  const CatSnapshot after_z = CatSnapshot::take(world);

  // 2D U-solve of U^z, again with no inter-grid communication.
  USolve2dResult ures;
  try {
    const TraceSpan phase = world.annotate("phase:U", z);
    ures = solve_u_2d(grid, plan, lres.y, {}, nrhs, tag_window(lu, 1));
  } catch (FaultError& fe) {
    rethrow_with_phase(fe, "sptrsv3d U-solve");
  }
  const CatSnapshot after_u = CatSnapshot::take(world);

  // Emit my share of the solution: every grid holds the complete x for its
  // whole index set; the smallest replicating grid writes each node.
  for (const auto& [k, piece] : ures.x) {
    const Idx node = tree.node_of_column(lu.sym.part.first_col(k));
    if (tree.leaf_range(node).first == z) {
      scatter_snode(lu, k, piece, *ctx.x_out, nrhs);
    }
  }

  RankPhaseTimes& t = (*ctx.times)[static_cast<size_t>(world.rank())];
  t.l_fp = after_l.fp;
  t.l_xy = after_l.xy;
  t.l_z = after_l.z;
  t.z_time = after_z.z - after_l.z;
  t.u_fp = after_u.fp - after_z.fp;
  t.u_xy = after_u.xy - after_z.xy;
  t.u_z = after_u.z - after_z.z;
  t.total = world.vtime();
}

void run_baseline(const SolveContext& ctx, Comm& world, Comm& grid, Comm& zline, int z) {
  const auto& lu = *ctx.lu;
  const auto& tree = ctx.coarse;
  const auto& shape = ctx.cfg.shape.grid2d();
  const Idx nrhs = ctx.cfg.nrhs;
  const int me = grid.rank();
  const int levels = tree.levels();

  // Null handles unless RunOptions::metrics is on. The baseline exchanges
  // one message per replicated node per level; the counters make that
  // contrast with the proposed algorithm's packed allreduce measurable.
  const MetricsRegistry::Counter m_levels = world.metric_counter("solver3d.levels");
  const MetricsRegistry::Counter m_zexch = world.metric_counter("solver3d.z_exchanges");

  // path[s] is my ancestor at depth levels-s; path[0] is my leaf.
  const auto path = tree.path_to_root(tree.leaf_node_id(z));

  world.barrier();
  world.reset_clock();

  // ---- Bottom-up L phase: one 2D node solve per level, pairwise
  // inter-grid reduction of the replicated partial sums in between. ----
  VecMap lsum_store;  // partial sums of ancestors (diag positions I hold)
  VecMap y_store;     // solutions of nodes this grid solved

  // Level-boundary buddy checkpoints: y_store is append-only (values never
  // mutate after insertion), so restore validation is a bitwise subset
  // check; the cursor records the last completed level so recovery replays
  // from there rather than the phase start.
  int ckpt_level = 0;
  const CheckpointScope ckpt = world.register_checkpoint(
      "sptrsv3d baseline",
      [&] { return checkpoint_pack(y_store, static_cast<double>(ckpt_level)); },
      [&](const CheckpointImage& img) {
        checkpoint_verify(img, y_store, "sptrsv3d baseline");
      },
      [&] { return sdc_spans(y_store); });

  try {
  for (int s = 0; s <= levels; ++s) {
    const TraceSpan level_span = world.annotate("l_level", s);
    m_levels.add();
    if (s > 0) {
      const int bit = 1 << (s - 1);
      const auto nodes = nodes_from_step(path, s);
      if (z % (1 << s) == bit) {
        // Hand my partial sums to the surviving grid and go idle. One
        // message per replicated node (the baseline predates the packed
        // sparse allreduce).
        for (const Idx node : nodes) {
          m_zexch.add();
          zline.send(z - bit, ztag(kZTagLsum, s, node),
                     pack_pieces(lu, tree, shape, me, {&node, 1}, lsum_store),
                     TimeCategory::kZComm);
        }
        break;
      }
      for (const Idx node : nodes) {
        m_zexch.add();
        const Message m =
            zline.recv(z + bit, ztag(kZTagLsum, s, node), TimeCategory::kZComm);
        unpack_pieces(lu, tree, shape, me, {&node, 1}, m.data, lsum_store, nrhs,
                      accumulate_op);
      }
    }
    const Solve2dPlan& plan = ctx.node_plans[static_cast<size_t>(path[static_cast<size_t>(s)])];
    VecMap b_local, lsum_in;
    for (const Idx k : plan.cols()) {
      if (shape.diag_owner(k) != me) continue;
      b_local.emplace(k, gather_snode(lu, k, ctx.b, nrhs));
      const auto it = lsum_store.find(k);
      if (it != lsum_store.end()) {
        lsum_in.emplace(k, it->second);
        lsum_store.erase(it);
      }
    }
    LSolve2dResult res =
        solve_l_2d(grid, plan, b_local, lsum_in, nrhs, tag_window(lu, 2 + 2 * s));
    for (auto& [k, v] : res.y) y_store.emplace(k, std::move(v));
    for (auto& [k, v] : res.external_lsum) {
      auto& dst = lsum_store[k];
      if (dst.empty()) {
        dst = std::move(v);
      } else {
        accumulate_op(dst, v);
      }
    }
    ckpt_level = s;
    world.checkpoint_epoch(s);  // L-level boundary
  }
  } catch (FaultError& fe) {
    rethrow_with_phase(fe, "sptrsv3d baseline L-phase");
  }
  const CatSnapshot after_l = CatSnapshot::take(world);

  // ---- Top-down U phase: owners solve, then broadcast solutions to the
  // grids that wake at the next level. ----
  VecMap x_store;  // known solutions (mine + received ancestors)
  try {
  for (int s = levels; s >= 0; --s) {
    const TraceSpan level_span = world.annotate("u_level", s);
    const int group = 1 << s;
    if (z % group == 0) {
      const Solve2dPlan& plan =
          ctx.node_plans[static_cast<size_t>(path[static_cast<size_t>(s)])];
      VecMap y_local, x_external;
      for (const Idx k : plan.cols()) {
        if (shape.diag_owner(k) != me) continue;
        y_local.emplace(k, y_store.at(k));
      }
      for (const Idx i : plan.external_rows()) {
        if (shape.diag_owner(i) != me) continue;
        x_external.emplace(i, x_store.at(i));
      }
      USolve2dResult res = solve_u_2d(grid, plan, y_local, x_external, nrhs,
                                      tag_window(lu, 3 + 2 * s));
      for (auto& [k, v] : res.x) {
        scatter_snode(lu, k, v, *ctx.x_out, nrhs);  // unique writer: the owner
        x_store.emplace(k, std::move(v));
      }
      if (s > 0) {
        const int bit = 1 << (s - 1);
        for (const Idx node : nodes_from_step(path, s)) {
          m_zexch.add();
          zline.send(z + bit, ztag(kZTagXsol, s, node),
                     pack_pieces(lu, tree, shape, me, {&node, 1}, x_store),
                     TimeCategory::kZComm);
        }
      }
    } else if (s > 0 && z % group == (1 << (s - 1))) {
      const int bit = 1 << (s - 1);
      for (const Idx node : nodes_from_step(path, s)) {
        m_zexch.add();
        const Message m =
            zline.recv(z - bit, ztag(kZTagXsol, s, node), TimeCategory::kZComm);
        unpack_pieces(lu, tree, shape, me, {&node, 1}, m.data, x_store, nrhs,
                      replace_op);
      }
    }
    ckpt_level = levels + (levels - s);
    world.checkpoint_epoch(ckpt_level);  // U-level boundary
  }
  } catch (FaultError& fe) {
    rethrow_with_phase(fe, "sptrsv3d baseline U-phase");
  }
  const CatSnapshot after_u = CatSnapshot::take(world);

  RankPhaseTimes& t = (*ctx.times)[static_cast<size_t>(world.rank())];
  t.l_fp = after_l.fp;
  t.l_xy = after_l.xy;
  t.l_z = after_l.z;
  t.z_time = 0.0;  // inter-grid traffic is interleaved; see l_z / u_z
  t.u_fp = after_u.fp - after_l.fp;
  t.u_xy = after_u.xy - after_l.xy;
  t.u_z = after_u.z - after_l.z;
  t.total = world.vtime();
}

}  // namespace

double DistSolveOutcome::mean(double RankPhaseTimes::* field) const {
  double s = 0;
  for (const auto& r : rank_times) s += r.*field;
  return rank_times.empty() ? 0.0 : s / static_cast<double>(rank_times.size());
}
double DistSolveOutcome::max(double RankPhaseTimes::* field) const {
  double m = 0;
  for (const auto& r : rank_times) m = std::max(m, r.*field);
  return m;
}
double DistSolveOutcome::min(double RankPhaseTimes::* field) const {
  if (rank_times.empty()) return 0.0;
  double m = rank_times.front().*field;
  for (const auto& r : rank_times) m = std::min(m, r.*field);
  return m;
}

DistSolveOutcome solve_sptrsv_3d(const SupernodalLU& lu, const NdTree& tree,
                                 std::span<const Real> b, const SolveConfig& cfg,
                                 const MachineModel& machine) {
  const auto& shape = cfg.shape;
  if (!is_pow2(shape.pz)) {
    throw std::invalid_argument("solve_sptrsv_3d: pz must be a power of two");
  }
  const int zlevels = log2_exact(shape.pz);
  if (zlevels > tree.levels()) {
    throw std::invalid_argument(
        "solve_sptrsv_3d: pz exceeds the factor's tracked tree leaves");
  }
  if (b.size() != static_cast<size_t>(lu.n()) * static_cast<size_t>(cfg.nrhs)) {
    throw std::invalid_argument("solve_sptrsv_3d: RHS size mismatch");
  }

  SolveContext ctx;
  ctx.lu = &lu;
  ctx.coarse = coarsen_nd_tree(tree, zlevels);
  ctx.cfg = cfg;
  ctx.b = b;

  // Precompute the plans (the paper's CPU-side setup phase; untimed).
  if (cfg.algorithm == Algorithm3d::kProposed) {
    for (int z = 0; z < shape.pz; ++z) {
      ctx.leaf_plans.push_back(
          make_grid_plan(lu, ctx.coarse, z, shape.grid2d(), cfg.tree));
    }
  } else {
    for (Idx node = 0; node < ctx.coarse.num_nodes(); ++node) {
      ctx.node_plans.push_back(
          make_node_plan(lu, ctx.coarse, node, shape.grid2d(), cfg.tree));
    }
  }

  std::vector<Real> x(b.size(), 0.0);
  std::vector<RankPhaseTimes> times(static_cast<size_t>(shape.size()));
  ctx.x_out = &x;
  ctx.times = &times;

  // Per-rank static work estimates for load-aware degradation and
  // straggler rebalancing (RecoveryModel::rank_work): the diagonal flops
  // each world rank owns under the solve plans. Consulted only while
  // building crash plans, so deriving them here never perturbs the clean
  // ledger; a caller-supplied profile wins.
  MachineModel mach = machine;
  if ((cfg.run.degrade || cfg.run.rebalance) && mach.recovery.rank_work.empty()) {
    std::vector<double>& w = mach.recovery.rank_work;
    w.assign(static_cast<size_t>(shape.size()), 0.0);
    for (int r = 0; r < shape.size(); ++r) {
      const int z = shape.z_of(r);
      const int grid_rank = shape.grid_rank_of(r);
      if (cfg.algorithm == Algorithm3d::kProposed) {
        const Solve2dPlan& plan = ctx.leaf_plans[static_cast<size_t>(z)];
        for (const Idx k : plan.cols()) {
          if (plan.shape().diag_owner(k) == grid_rank) {
            w[static_cast<size_t>(r)] += plan.diag_flops(k, cfg.nrhs);
          }
        }
      } else {
        // Baseline: a z-plane solves at L/U level s only while
        // z % 2^s == 0 (see run_baseline); count both phases.
        const auto path = ctx.coarse.path_to_root(ctx.coarse.leaf_node_id(z));
        for (int s = 0; s <= ctx.coarse.levels(); ++s) {
          if (z % (1 << s) != 0) break;
          const Solve2dPlan& plan =
              ctx.node_plans[static_cast<size_t>(path[static_cast<size_t>(s)])];
          for (const Idx k : plan.cols()) {
            if (plan.shape().diag_owner(k) == grid_rank) {
              w[static_cast<size_t>(r)] += 2.0 * plan.diag_flops(k, cfg.nrhs);
            }
          }
        }
      }
    }
  }

  // try_run instead of run: recoverable crash schedules finish normally
  // (recovery cost on the fault ledger only), while unrecoverable verdicts
  // and transport failures surface as a structured FaultError carrying the
  // rank/peer/tag/phase diagnostics instead of a bare error string.
  const Cluster::Result stats =
      Cluster::try_run(shape.size(), mach, [&](Comm& world) {
        const int z = shape.z_of(world.rank());
        const int grid_rank = shape.grid_rank_of(world.rank());
        Comm grid = world.split(/*color=*/z, /*key=*/grid_rank);
        Comm zline = world.split(/*color=*/shape.pz + grid_rank, /*key=*/z);
        if (cfg.algorithm == Algorithm3d::kProposed) {
          run_proposed(ctx, world, grid, zline, z);
        } else {
          run_baseline(ctx, world, grid, zline, z);
        }
      }, cfg.run);
  if (!stats.ok()) {
    if (stats.fault.kind != FaultKind::kNone) throw FaultError(stats.fault);
    throw std::runtime_error(stats.error);
  }

  DistSolveOutcome out;
  out.x = std::move(x);
  out.rank_times = std::move(times);
  out.run_stats = stats;
  for (const auto& t : out.rank_times) out.makespan = std::max(out.makespan, t.total);
  return out;
}

DistSolveOutcome solve_system_3d(const FactoredSystem& fs, std::span<const Real> b,
                                 const SolveConfig& cfg, const MachineModel& machine) {
  const Idx n = fs.lu.n();
  if (b.size() != static_cast<size_t>(n) * static_cast<size_t>(cfg.nrhs)) {
    throw std::invalid_argument("solve_system_3d: RHS size mismatch");
  }
  std::vector<Real> pb(b.size());
  for (Idx j = 0; j < cfg.nrhs; ++j) {
    for (Idx i = 0; i < n; ++i) {
      pb[static_cast<size_t>(j) * n + i] =
          b[static_cast<size_t>(j) * n + fs.perm[static_cast<size_t>(i)]];
    }
  }
  DistSolveOutcome out = solve_sptrsv_3d(fs.lu, fs.tree, pb, cfg, machine);
  std::vector<Real> x(out.x.size());
  for (Idx j = 0; j < cfg.nrhs; ++j) {
    for (Idx i = 0; i < n; ++i) {
      x[static_cast<size_t>(j) * n + fs.perm[static_cast<size_t>(i)]] =
          out.x[static_cast<size_t>(j) * n + i];
    }
  }
  out.x = std::move(x);
  return out;
}

VerifiedSolveOutcome solve_system_3d_verified(const CsrMatrix& a,
                                              const FactoredSystem& fs,
                                              std::span<const Real> b,
                                              const SolveConfig& cfg,
                                              const MachineModel& machine) {
  VerifiedSolveOutcome out;
  out.solve = solve_system_3d(fs, b, cfg, machine);

  // End-of-solve residual gate, priced onto the fault ledger only: each
  // rank evaluates its 1/P share of the SpMV (2 flops per stored entry per
  // RHS column) and the max norm rides one reduce tree. The clean ledger —
  // and with it Result::fingerprint — never sees the check.
  const int p = cfg.shape.size();
  const double flops =
      2.0 * static_cast<double>(a.nnz()) * static_cast<double>(cfg.nrhs);
  const double cost =
      flops / (static_cast<double>(p) * machine.cpu_flop_rate) +
      static_cast<double>(log2_exact(p)) *
          (machine.net.latency + machine.mpi_overhead);
  for (auto& r : out.solve.run_stats.ranks) {
    r.fault_vtime += cost;
    r.sdc.residual_checks += 1;
    r.sdc.residual_time += cost;
  }
  out.residual = relative_residual(a, out.solve.x, b, cfg.nrhs);
  if (!(out.residual > machine.abft.residual_tol)) return out;

  if (!cfg.run.sdc_repair) {
    FaultReport r;
    r.kind = FaultKind::kSilentCorruption;
    r.rank = 0;
    r.vt = out.solve.run_stats.makespan();
    // Per-target attribution of the surviving flips: names the corrupted
    // state class (solution / factor values / reduction partials) so the
    // report localizes the fault, not just its symptom.
    std::int64_t inj[3] = {0, 0, 0};
    for (const auto& rs : out.solve.run_stats.ranks) {
      for (int t = 0; t < 3; ++t) inj[t] += rs.sdc.injected_by[t];
    }
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "end-of-solve residual %.3e exceeds gate %.3e; "
                  "corruption survived the solve (injected x=%lld l=%lld "
                  "partial=%lld)",
                  static_cast<double>(out.residual), machine.abft.residual_tol,
                  static_cast<long long>(inj[0]), static_cast<long long>(inj[1]),
                  static_cast<long long>(inj[2]));
    r.detail = buf;
    throw FaultError(std::move(r));
  }

  // Degraded-mode repair: polish the corrupted solution with iterative
  // refinement. Each refinement solve replays the same deterministic fault
  // schedule, but the injected flips perturb at most 2^-3 of a word, so the
  // correction steps still contract the residual geometrically. Modeled
  // repair time lands on every rank's fault clock (they all re-ran the
  // solves); iteration counts land once, on rank 0's SdcStats.
  RefinementOptions ro;
  ro.max_iterations = 20;
  ro.tolerance = machine.abft.residual_tol;
  RefinementResult ref = iterative_refinement(a, fs, b, cfg, machine, ro);
  if (!ref.converged) {
    FaultReport r;
    r.kind = FaultKind::kSilentCorruption;
    r.rank = 0;
    r.vt = out.solve.run_stats.makespan();
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "degraded-mode refinement stalled at residual %.3e "
                  "(gate %.3e) after %lld iterations",
                  ref.residual_history.empty()
                      ? static_cast<double>(out.residual)
                      : static_cast<double>(ref.residual_history.back()),
                  machine.abft.residual_tol,
                  static_cast<long long>(ref.iterations()));
    r.detail = buf;
    throw FaultError(std::move(r));
  }
  out.repaired = true;
  out.repair_iterations = ref.iterations();
  out.residual = ref.residual_history.back();
  out.solve.x = std::move(ref.x);
  for (auto& r : out.solve.run_stats.ranks) r.fault_vtime += ref.modeled_solve_time;
  if (!out.solve.run_stats.ranks.empty()) {
    SdcStats& s0 = out.solve.run_stats.ranks.front().sdc;
    s0.refine_iters += static_cast<std::int64_t>(ref.iterations());
    s0.repair_time += ref.modeled_solve_time;
  }
  return out;
}

}  // namespace sptrsv
