#pragma once
/// \file min_degree.hpp
/// \brief Greedy minimum-degree fill-reducing ordering.
///
/// The paper's §2.2 names the two classic fill-reducing orderings —
/// "minimum degree ordering or nested-dissection (ND) ordering". The 3D
/// layout requires ND's separator tree at the top, but inside the leaf
/// subdomains any fill reducer works; minimum degree is the standard
/// choice for small/irregular blocks and is offered through
/// `NdOptions::leaf_ordering`.
///
/// This is the textbook greedy algorithm on an explicit quotient-free
/// elimination graph: repeatedly eliminate a vertex of minimum degree and
/// turn its neighbourhood into a clique. Cost is O(fill) — fine for the
/// subdomain sizes it is applied to (hundreds of vertices), not meant for
/// whole large matrices.

#include <vector>

#include "sparse/graph.hpp"
#include "sparse/types.hpp"

namespace sptrsv {

/// Returns a permutation (new -> old) ordering `g`'s vertices by greedy
/// minimum degree. Deterministic: ties break toward the smallest vertex id.
std::vector<Idx> min_degree_ordering(const Graph& g);

}  // namespace sptrsv
