#pragma once
/// \file nested_dissection.hpp
/// \brief Nested-dissection fill-reducing ordering with a tracked binary
/// separator tree, replacing the paper's METIS dependency.
///
/// The 3D SpTRSV layout (§2.2 of the paper) requires the top `log2(Pz)`
/// levels of the elimination tree to form a binary subtree whose leaves can
/// be mapped one-to-one onto the `Pz` 2D grids. Our orderer produces exactly
/// that interface: a recursive graph bisection where the top `levels` splits
/// are recorded as an `NdTree` (paper Fig 1(a)); recursion continues below
/// the tracked leaves purely for fill reduction.

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/graph.hpp"
#include "sparse/types.hpp"

namespace sptrsv {

/// One node of the tracked separator tree. Nodes use the paper's BFS
/// numbering: root is 0, children of node i are 2i+1 and 2i+2, and the
/// 2^levels leaves are the last block of ids.
struct NdNode {
  Idx parent = kNoIdx;
  Idx left = kNoIdx;   ///< kNoIdx for leaves
  Idx right = kNoIdx;  ///< kNoIdx for leaves
  int depth = 0;       ///< root = 0
  /// Column range [col_begin, col_end) of this node in the ND-permuted
  /// matrix. For internal nodes this is the separator; for leaves it is the
  /// whole remaining subdomain.
  Idx col_begin = 0;
  Idx col_end = 0;
};

/// Tracked binary separator tree: the top `levels()` splits of the ND
/// recursion. Leaves correspond one-to-one to the paper's 2D grids.
class NdTree {
 public:
  NdTree() = default;
  NdTree(int levels, std::vector<NdNode> nodes);

  int levels() const { return levels_; }
  Idx num_nodes() const { return static_cast<Idx>(nodes_.size()); }
  Idx num_leaves() const { return Idx{1} << levels_; }
  const NdNode& node(Idx id) const { return nodes_[static_cast<size_t>(id)]; }

  bool is_leaf(Idx id) const { return nodes_[static_cast<size_t>(id)].left == kNoIdx; }

  /// Node id of the `leaf`-th leaf (left to right), 0 <= leaf < num_leaves().
  Idx leaf_node_id(Idx leaf) const { return (Idx{1} << levels_) - 1 + leaf; }

  /// Path from `id` to the root, inclusive on both ends.
  std::vector<Idx> path_to_root(Idx id) const;

  /// Range of leaves [first, last) descending from node `id` — i.e. the
  /// replication group of 2D grids that share this node in the 3D layout.
  std::pair<Idx, Idx> leaf_range(Idx id) const;

  /// The tracked node whose column range contains column `c`, or kNoIdx if
  /// the tree is empty.
  Idx node_of_column(Idx c) const;

  /// Validates the structural invariants (ranges partition [0,n), children
  /// precede parents in column order, BFS numbering consistent).
  bool check_invariants(Idx n) const;

 private:
  int levels_ = 0;
  std::vector<NdNode> nodes_;
};

/// How terminal (small) partitions are ordered inside the leaves.
enum class LeafOrdering {
  kNatural,    ///< keep the input order (cheapest)
  kMinDegree,  ///< greedy minimum degree (paper §2.2's alternative reducer)
};

/// Options for the ND orderer.
struct NdOptions {
  /// Number of tracked binary levels; the tree has 2^levels leaves. This
  /// must be >= log2(Pz) of any 3D grid the ordering will be used with.
  int levels = 3;
  /// Stop the (untracked) fill-reduction recursion when a part has at most
  /// this many vertices.
  Idx min_partition = 24;
  /// Balance slack for the bisection level cut (0.5 = perfectly balanced).
  Real balance = 0.5;
  /// Ordering applied to terminal partitions.
  LeafOrdering leaf_ordering = LeafOrdering::kNatural;
};

/// Result of the ordering.
struct NdOrdering {
  /// Permutation, new index -> old index.
  std::vector<Idx> perm;
  /// Tracked binary separator tree over the permuted index space.
  NdTree tree;
};

/// Computes a nested-dissection ordering of `g` with a tracked binary top
/// tree of `opt.levels` levels. Works on arbitrary (possibly disconnected)
/// graphs; empty parts yield empty leaf ranges, which downstream layers
/// accept.
NdOrdering nested_dissection(const Graph& g, const NdOptions& opt = {});

/// Convenience: symmetrizes the pattern of `a` and orders its graph.
NdOrdering nested_dissection(const CsrMatrix& a, const NdOptions& opt = {});

/// A single graph bisection (exposed for tests): labels each vertex
/// 0 (part A), 1 (part B) or 2 (separator). Guarantees no A-B edges.
std::vector<std::uint8_t> bisect_graph(const Graph& g, Real balance = 0.5);

/// Coarsens a tracked tree to `levels` levels (levels <= tree.levels()):
/// nodes above the cut are copied verbatim (BFS ids preserved); each
/// depth-`levels` node becomes a leaf whose column range covers its whole
/// original subtree. Used to run a Pz-grid solve on a factor whose tracked
/// tree is deeper than log2(Pz).
NdTree coarsen_nd_tree(const NdTree& tree, int levels);

}  // namespace sptrsv
