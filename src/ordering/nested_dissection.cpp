#include "ordering/nested_dissection.hpp"

#include "ordering/min_degree.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace sptrsv {

NdTree::NdTree(int levels, std::vector<NdNode> nodes)
    : levels_(levels), nodes_(std::move(nodes)) {
  if (nodes_.size() != static_cast<size_t>((Idx{1} << (levels_ + 1)) - 1)) {
    throw std::invalid_argument("NdTree: node count must be 2^(levels+1)-1");
  }
}

std::vector<Idx> NdTree::path_to_root(Idx id) const {
  std::vector<Idx> path;
  for (Idx v = id; v != kNoIdx; v = nodes_[static_cast<size_t>(v)].parent) {
    path.push_back(v);
  }
  return path;
}

std::pair<Idx, Idx> NdTree::leaf_range(Idx id) const {
  const int d = nodes_[static_cast<size_t>(id)].depth;
  const Idx row_pos = id - ((Idx{1} << d) - 1);
  const int shift = levels_ - d;
  return {row_pos << shift, (row_pos + 1) << shift};
}

Idx NdTree::node_of_column(Idx c) const {
  for (Idx id = 0; id < num_nodes(); ++id) {
    const auto& nd = nodes_[static_cast<size_t>(id)];
    if (c >= nd.col_begin && c < nd.col_end) return id;
  }
  return kNoIdx;
}

bool NdTree::check_invariants(Idx n) const {
  if (nodes_.empty()) return n == 0;
  // Recursively verify: subtree of `id` occupies a contiguous range ending
  // with the node's own columns, children packed left-then-right.
  struct Checker {
    const NdTree& t;
    bool ok = true;
    // Returns [lo, hi) covered by the subtree.
    std::pair<Idx, Idx> visit(Idx id) {
      const auto& nd = t.nodes_[static_cast<size_t>(id)];
      if (nd.col_begin > nd.col_end) ok = false;
      if (nd.left == kNoIdx) {
        if (nd.right != kNoIdx) ok = false;
        return {nd.col_begin, nd.col_end};
      }
      const auto [la, lb] = visit(nd.left);
      const auto [ra, rb] = visit(nd.right);
      if (lb != ra || rb != nd.col_begin) ok = false;
      if (t.nodes_[static_cast<size_t>(nd.left)].parent != id ||
          t.nodes_[static_cast<size_t>(nd.right)].parent != id) {
        ok = false;
      }
      return {la, nd.col_end};
    }
  };
  Checker c{*this};
  const auto [lo, hi] = c.visit(0);
  return c.ok && lo == 0 && hi == n;
}

std::vector<std::uint8_t> bisect_graph(const Graph& g, Real balance) {
  const Idx n = g.num_vertices();
  std::vector<std::uint8_t> label(static_cast<size_t>(n), 1);  // default: part B
  if (n == 0) return label;

  // BFS level structure; returns (levels vector with kNoIdx for unreached,
  // farthest vertex, max level).
  auto bfs = [&](Idx root, std::vector<Idx>& level) {
    level.assign(static_cast<size_t>(n), kNoIdx);
    std::vector<Idx> frontier{root};
    level[static_cast<size_t>(root)] = 0;
    Idx far = root;
    Idx max_lvl = 0;
    while (!frontier.empty()) {
      std::vector<Idx> next;
      for (const Idx v : frontier) {
        for (const Idx u : g.neighbors(v)) {
          if (level[static_cast<size_t>(u)] == kNoIdx) {
            level[static_cast<size_t>(u)] = level[static_cast<size_t>(v)] + 1;
            if (level[static_cast<size_t>(u)] > max_lvl) {
              max_lvl = level[static_cast<size_t>(u)];
              far = u;
            }
            next.push_back(u);
          }
        }
      }
      frontier = std::move(next);
    }
    return std::pair<Idx, Idx>{far, max_lvl};
  };

  // Pseudo-peripheral root: two BFS sweeps from vertex 0's component.
  std::vector<Idx> level;
  auto [far1, ml1] = bfs(0, level);
  (void)ml1;
  auto [far2, max_lvl] = bfs(far1, level);
  (void)far2;

  if (max_lvl == 0) {
    // Component is a single vertex (or clique-free trivial case): that
    // vertex becomes part A; everything unreached stays in part B.
    label[static_cast<size_t>(far1)] = 0;
    return label;
  }

  // Count vertices reached per level and choose the cut level m that best
  // trades partition balance against separator size. Taking "the first
  // level where the cumulative count passes the target" degenerates on
  // graphs whose outermost BFS shell is huge (e.g. 27-point grids): the cut
  // lands on the last level, part B comes out empty, and the recursion
  // collapses. Scoring every candidate avoids that.
  std::vector<Idx> cnt(static_cast<size_t>(max_lvl) + 1, 0);
  Idx reached = 0;
  for (Idx v = 0; v < n; ++v) {
    if (level[static_cast<size_t>(v)] != kNoIdx) {
      ++cnt[static_cast<size_t>(level[static_cast<size_t>(v)])];
      ++reached;
    }
  }
  Idx m = 1;
  {
    const Real target = balance * reached;
    Real best_score = std::numeric_limits<Real>::infinity();
    Idx cum = cnt[0];  // |A| for candidate cut m = 1
    for (Idx cand = 1; cand <= max_lvl; ++cand) {
      const Idx a_size = cum;
      const Idx s_size = cnt[static_cast<size_t>(cand)];
      const Idx b_size = reached - a_size - s_size;
      Real score = std::abs(static_cast<Real>(a_size) - target) +
                   std::abs(static_cast<Real>(b_size) - (reached - target)) +
                   static_cast<Real>(s_size);
      if (b_size == 0 || a_size == 0) score += reached;  // degenerate cut
      if (score < best_score) {
        best_score = score;
        m = cand;
      }
      cum += s_size;
    }
  }

  // A = levels < m, S = level m (thinned), B = levels > m and unreached.
  Idx b_count = static_cast<Idx>(n);
  for (Idx v = 0; v < n; ++v) {
    const Idx lv = level[static_cast<size_t>(v)];
    if (lv == kNoIdx) continue;  // other component -> B
    if (lv < m) {
      label[static_cast<size_t>(v)] = 0;
      --b_count;
    } else if (lv == m) {
      label[static_cast<size_t>(v)] = 2;
      --b_count;
    }
  }
  // Thin the separator: a level-m vertex with no neighbour in B can join A
  // without creating A-B edges. Skip when B is empty — the "thinning"
  // would dissolve the separator entirely.
  if (b_count > 0) {
    for (Idx v = 0; v < n; ++v) {
      if (label[static_cast<size_t>(v)] != 2) continue;
      bool touches_b = false;
      for (const Idx u : g.neighbors(v)) {
        if (label[static_cast<size_t>(u)] == 1) {
          touches_b = true;
          break;
        }
      }
      if (!touches_b) label[static_cast<size_t>(v)] = 0;
    }
  }
  return label;
}

namespace {

/// Recursive ND builder working on global vertex id lists.
class NdBuilder {
 public:
  NdBuilder(const Graph& g, const NdOptions& opt) : g_(g), opt_(opt) {
    const Idx n_nodes = (Idx{1} << (opt.levels + 1)) - 1;
    nodes_.resize(static_cast<size_t>(n_nodes));
    perm_.reserve(static_cast<size_t>(g.num_vertices()));
    for (Idx id = 0; id < n_nodes; ++id) {
      auto& nd = nodes_[static_cast<size_t>(id)];
      if (id > 0) nd.parent = (id - 1) / 2;
      nd.depth = depth_of(id);
      if (nd.depth < opt.levels) {
        nd.left = 2 * id + 1;
        nd.right = 2 * id + 2;
      }
    }
  }

  NdOrdering build() {
    std::vector<Idx> all(static_cast<size_t>(g_.num_vertices()));
    std::iota(all.begin(), all.end(), 0);
    order_tracked(std::move(all), /*node_id=*/0);
    NdOrdering out;
    out.perm = std::move(perm_);
    out.tree = NdTree(opt_.levels, std::move(nodes_));
    return out;
  }

 private:
  static int depth_of(Idx id) {
    int d = 0;
    while (id > 0) {
      id = (id - 1) / 2;
      ++d;
    }
    return d;
  }

  /// Splits `verts` by the bisection labels of their induced subgraph.
  void split(const std::vector<Idx>& verts, std::vector<Idx>& a, std::vector<Idx>& b,
             std::vector<Idx>& s) const {
    const Graph sub = g_.induced_subgraph(verts);
    const auto label = bisect_graph(sub, opt_.balance);
    for (size_t i = 0; i < verts.size(); ++i) {
      (label[i] == 0 ? a : label[i] == 1 ? b : s).push_back(verts[i]);
    }
  }

  void order_tracked(std::vector<Idx> verts, Idx node_id) {
    auto& nd = nodes_[static_cast<size_t>(node_id)];
    if (nd.depth == opt_.levels) {  // tracked leaf: whole remaining subdomain
      nd.col_begin = static_cast<Idx>(perm_.size());
      order_untracked(std::move(verts));
      nd.col_end = static_cast<Idx>(perm_.size());
      return;
    }
    std::vector<Idx> a, b, s;
    split(verts, a, b, s);
    order_tracked(std::move(a), nd.left);
    order_tracked(std::move(b), nd.right);
    nd.col_begin = static_cast<Idx>(perm_.size());
    emit_separator(s);
    nd.col_end = static_cast<Idx>(perm_.size());
  }

  void order_untracked(std::vector<Idx> verts) {
    if (static_cast<Idx>(verts.size()) <= opt_.min_partition) {
      emit_terminal(verts);
      return;
    }
    std::vector<Idx> a, b, s;
    split(verts, a, b, s);
    if (a.empty() || a.size() == verts.size()) {
      // Degenerate bisection (clique-like region): stop recursing.
      emit_terminal(verts);
      return;
    }
    order_untracked(std::move(a));
    order_untracked(std::move(b));
    emit_separator(s);
  }

  void emit_terminal(const std::vector<Idx>& verts) {
    if (opt_.leaf_ordering == LeafOrdering::kMinDegree && verts.size() > 1) {
      const Graph sub = g_.induced_subgraph(verts);
      for (const Idx local : min_degree_ordering(sub)) {
        perm_.push_back(verts[static_cast<size_t>(local)]);
      }
      return;
    }
    perm_.insert(perm_.end(), verts.begin(), verts.end());
  }

  void emit_separator(const std::vector<Idx>& s) {
    perm_.insert(perm_.end(), s.begin(), s.end());
  }

  const Graph& g_;
  NdOptions opt_;
  std::vector<Idx> perm_;
  std::vector<NdNode> nodes_;
};

}  // namespace

NdOrdering nested_dissection(const Graph& g, const NdOptions& opt) {
  if (opt.levels < 0 || opt.levels > 20) {
    throw std::invalid_argument("nested_dissection: levels out of range");
  }
  return NdBuilder(g, opt).build();
}

NdTree coarsen_nd_tree(const NdTree& tree, int levels) {
  if (levels < 0 || levels > tree.levels()) {
    throw std::invalid_argument("coarsen_nd_tree: levels out of range");
  }
  if (levels == tree.levels()) return tree;

  // Column start of the whole subtree rooted at `id` (subtrees occupy
  // contiguous ranges ending at the root node's col_end).
  std::function<Idx(Idx)> subtree_begin = [&](Idx id) -> Idx {
    const auto& nd = tree.node(id);
    return nd.left == kNoIdx ? nd.col_begin : subtree_begin(nd.left);
  };

  const Idx n_nodes = (Idx{1} << (levels + 1)) - 1;
  std::vector<NdNode> nodes(static_cast<size_t>(n_nodes));
  for (Idx id = 0; id < n_nodes; ++id) {
    NdNode nd = tree.node(id);  // BFS ids coincide above the cut
    if (nd.depth == levels) {   // becomes a leaf spanning its old subtree
      nd.left = nd.right = kNoIdx;
      nd.col_begin = subtree_begin(id);
    }
    nodes[static_cast<size_t>(id)] = nd;
  }
  return NdTree(levels, std::move(nodes));
}

NdOrdering nested_dissection(const CsrMatrix& a, const NdOptions& opt) {
  const CsrMatrix sym = a.has_symmetric_pattern() ? a : a.symmetrized_pattern();
  return nested_dissection(Graph::from_matrix(sym), opt);
}

}  // namespace sptrsv
