#pragma once
/// \file etree.hpp
/// \brief Elimination tree utilities for symmetric-pattern matrices.

#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace sptrsv {

/// Computes the elimination tree of a symmetric-pattern matrix using Liu's
/// algorithm with path compression. `parent[j]` is the etree parent of column
/// j, or `kNoIdx` for roots. O(nnz * alpha(n)).
std::vector<Idx> elimination_tree(const CsrMatrix& a);

/// Postorders a forest given parent pointers; returns `post` with
/// `post[k] = j` meaning column j is the k-th in postorder. Children are
/// visited in ascending index order, which keeps the postorder stable.
std::vector<Idx> postorder(std::span<const Idx> parent);

/// Depth of each node (roots have depth 0).
std::vector<Idx> tree_depths(std::span<const Idx> parent);

/// Height of the forest: 1 + max depth (0 for an empty forest).
Idx tree_height(std::span<const Idx> parent);

/// True if `parent` encodes a forest where every parent index exceeds the
/// child index — the invariant elimination trees of properly ordered
/// matrices satisfy, and which the symbolic layer relies on.
bool is_topologically_ordered_forest(std::span<const Idx> parent);

}  // namespace sptrsv
