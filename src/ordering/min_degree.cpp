#include "ordering/min_degree.hpp"

#include <algorithm>
#include <set>

namespace sptrsv {

std::vector<Idx> min_degree_ordering(const Graph& g) {
  const Idx n = g.num_vertices();
  // Elimination graph as sorted neighbour sets (explicit fill).
  std::vector<std::set<Idx>> adj(static_cast<size_t>(n));
  for (Idx v = 0; v < n; ++v) {
    for (const Idx u : g.neighbors(v)) {
      if (u != v) adj[static_cast<size_t>(v)].insert(u);
    }
  }

  // Degree buckets: set of (degree, vertex) gives O(log n) min extraction
  // with deterministic tie-breaking on vertex id.
  std::set<std::pair<Idx, Idx>> queue;
  for (Idx v = 0; v < n; ++v) {
    queue.insert({static_cast<Idx>(adj[static_cast<size_t>(v)].size()), v});
  }

  std::vector<Idx> perm;
  perm.reserve(static_cast<size_t>(n));
  std::vector<bool> eliminated(static_cast<size_t>(n), false);
  while (!queue.empty()) {
    const auto [deg, v] = *queue.begin();
    queue.erase(queue.begin());
    (void)deg;
    perm.push_back(v);
    eliminated[static_cast<size_t>(v)] = true;

    // Clique the neighbourhood: every surviving pair becomes adjacent.
    auto& nv = adj[static_cast<size_t>(v)];
    const std::vector<Idx> nbrs(nv.begin(), nv.end());
    for (const Idx u : nbrs) {
      auto& nu = adj[static_cast<size_t>(u)];
      queue.erase({static_cast<Idx>(nu.size()), u});
      nu.erase(v);
      for (const Idx w : nbrs) {
        if (w != u) nu.insert(w);
      }
      queue.insert({static_cast<Idx>(nu.size()), u});
    }
    nv.clear();
  }
  return perm;
}

}  // namespace sptrsv
