#include "ordering/etree.hpp"

#include <algorithm>
#include <stdexcept>

namespace sptrsv {

std::vector<Idx> elimination_tree(const CsrMatrix& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("elimination_tree: square only");
  const Idx n = a.rows();
  std::vector<Idx> parent(static_cast<size_t>(n), kNoIdx);
  std::vector<Idx> ancestor(static_cast<size_t>(n), kNoIdx);
  for (Idx j = 0; j < n; ++j) {
    for (const Idx i : a.row_cols(j)) {
      if (i >= j) break;  // columns sorted; only the strict lower triangle matters
      Idx r = i;
      while (ancestor[static_cast<size_t>(r)] != kNoIdx &&
             ancestor[static_cast<size_t>(r)] != j) {
        const Idx next = ancestor[static_cast<size_t>(r)];
        ancestor[static_cast<size_t>(r)] = j;  // path compression
        r = next;
      }
      if (ancestor[static_cast<size_t>(r)] == kNoIdx) {
        ancestor[static_cast<size_t>(r)] = j;
        parent[static_cast<size_t>(r)] = j;
      }
    }
  }
  return parent;
}

std::vector<Idx> postorder(std::span<const Idx> parent) {
  const Idx n = static_cast<Idx>(parent.size());
  // Build child lists (ascending order falls out of the forward scan).
  std::vector<Idx> head(static_cast<size_t>(n), kNoIdx);
  std::vector<Idx> next(static_cast<size_t>(n), kNoIdx);
  std::vector<Idx> roots;
  for (Idx j = n - 1; j >= 0; --j) {  // reverse scan so lists end up ascending
    const Idx p = parent[static_cast<size_t>(j)];
    if (p == kNoIdx) {
      roots.push_back(j);
    } else {
      next[static_cast<size_t>(j)] = head[static_cast<size_t>(p)];
      head[static_cast<size_t>(p)] = j;
    }
  }
  std::reverse(roots.begin(), roots.end());  // ascending roots

  std::vector<Idx> post;
  post.reserve(static_cast<size_t>(n));
  std::vector<Idx> stack;
  std::vector<Idx> child_iter(head.begin(), head.end());
  for (const Idx r : roots) {
    stack.push_back(r);
    while (!stack.empty()) {
      const Idx v = stack.back();
      const Idx c = child_iter[static_cast<size_t>(v)];
      if (c != kNoIdx) {
        child_iter[static_cast<size_t>(v)] = next[static_cast<size_t>(c)];
        stack.push_back(c);
      } else {
        post.push_back(v);
        stack.pop_back();
      }
    }
  }
  return post;
}

std::vector<Idx> tree_depths(std::span<const Idx> parent) {
  const Idx n = static_cast<Idx>(parent.size());
  std::vector<Idx> depth(static_cast<size_t>(n), kNoIdx);
  for (Idx j = 0; j < n; ++j) {
    // Walk up collecting the unknown prefix, then fill it in.
    Idx v = j;
    std::vector<Idx> chain;
    while (v != kNoIdx && depth[static_cast<size_t>(v)] == kNoIdx) {
      chain.push_back(v);
      v = parent[static_cast<size_t>(v)];
    }
    Idx d = (v == kNoIdx) ? -1 : depth[static_cast<size_t>(v)];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      depth[static_cast<size_t>(*it)] = ++d;
    }
  }
  return depth;
}

Idx tree_height(std::span<const Idx> parent) {
  const auto depths = tree_depths(parent);
  Idx h = 0;
  for (const Idx d : depths) h = std::max(h, d + 1);
  return h;
}

bool is_topologically_ordered_forest(std::span<const Idx> parent) {
  for (size_t j = 0; j < parent.size(); ++j) {
    const Idx p = parent[j];
    if (p != kNoIdx && p <= static_cast<Idx>(j)) return false;
  }
  return true;
}

}  // namespace sptrsv
