#include "trace/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace sptrsv {

namespace {

/// Exact-tiling tolerance: event boundaries are recorded from the same
/// double (`vt` before/after an advance), so contiguity holds bitwise.
bool tiles(const std::vector<TraceEvent>& events) {
  if (events.empty()) return true;
  if (events.front().t0 != 0.0) return false;
  for (size_t i = 1; i < events.size(); ++i) {
    if (events[i].t0 != events[i - 1].t1) return false;
  }
  return true;
}

const char* kind_name(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kCompute: return "compute";
    case TraceEventKind::kAdvance: return "advance";
    case TraceEventKind::kSend: return "send";
    case TraceEventKind::kRecv: return "recv";
    case TraceEventKind::kCollective: return "collective";
  }
  return "?";
}

const char* cat_name(TimeCategory c) {
  switch (c) {
    case TimeCategory::kFp: return "FP";
    case TimeCategory::kXyComm: return "XY-Comm";
    case TimeCategory::kZComm: return "Z-Comm";
    case TimeCategory::kOther: return "other";
  }
  return "?";
}

/// Microseconds with fixed precision — deterministic for equal doubles.
std::string us(double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", seconds * 1e6);
  return buf;
}

/// JSON string escaping for names that reach the export via %s. Annotation
/// labels are caller-chosen, so a quote or backslash in one must not break
/// the document. Identity for plain labels — the byte-identical-export
/// pins rely on that.
std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Trace Trace::build(std::vector<RankTrace> ranks) {
  Trace t;
  t.ranks_ = std::move(ranks);
  t.recv_edge_.resize(t.ranks_.size());

  // Index sends by their globally unique (sender rank, sender seq) key.
  struct SendRef {
    int rank;
    std::uint32_t event;
  };
  std::unordered_map<std::uint64_t, SendRef> sends;
  auto key_of = [](int rank, std::int64_t seq) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)) << 32) ^
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(seq));
  };
  for (size_t r = 0; r < t.ranks_.size(); ++r) {
    const auto& events = t.ranks_[r].events;
    t.recv_edge_[r].assign(events.size(), -1);
    t.contiguous_ = t.contiguous_ && tiles(events);
    if (!events.empty()) t.makespan_ = std::max(t.makespan_, events.back().t1);
    for (std::uint32_t i = 0; i < events.size(); ++i) {
      const TraceEvent& e = events[i];
      if (e.kind == TraceEventKind::kSend) {
        ++t.num_sends_;
        sends[key_of(static_cast<int>(r), e.seq)] = {static_cast<int>(r), i};
      } else if (e.kind == TraceEventKind::kCollective) {
        t.colls_[{e.ctx, e.seq}].emplace_back(static_cast<int>(r), i);
      }
    }
  }
  for (size_t r = 0; r < t.ranks_.size(); ++r) {
    const auto& events = t.ranks_[r].events;
    for (std::uint32_t i = 0; i < events.size(); ++i) {
      const TraceEvent& e = events[i];
      if (e.kind != TraceEventKind::kRecv) continue;
      ++t.num_recvs_;
      const auto it = sends.find(key_of(e.peer, e.seq));
      if (it == sends.end()) continue;  // sender recorded pre-reset_clock
      const TraceEvent& s = t.ranks_[static_cast<size_t>(it->second.rank)]
                                .events[it->second.event];
      t.recv_edge_[r][i] = static_cast<std::int32_t>(t.edges_.size());
      t.edges_.push_back({it->second.rank, it->second.event, static_cast<int>(r), i,
                          e.arrival - s.t1});
    }
  }
  return t;
}

std::size_t Trace::num_events() const {
  std::size_t n = 0;
  for (const auto& r : ranks_) n += r.events.size();
  return n;
}

Trace::CriticalPath Trace::critical_path() const {
  if (!contiguous_) {
    throw std::logic_error(
        "Trace::critical_path: events do not tile the timeline (runtime "
        "traces only; GPU-simulator traces are export-only)");
  }
  CriticalPath cp;
  cp.breakdown.makespan = makespan_;
  // Sink: first rank whose final event ends at the makespan.
  std::int64_t idx = -1;
  for (size_t r = 0; r < ranks_.size(); ++r) {
    const auto& events = ranks_[r].events;
    if (!events.empty() && events.back().t1 == makespan_) {
      cp.sink_rank = static_cast<int>(r);
      idx = static_cast<std::int64_t>(events.size()) - 1;
      break;
    }
  }
  if (cp.sink_rank < 0) return cp;  // empty trace

  auto charge = [&cp](TimeCategory cat, double dt) {
    cp.breakdown.category[static_cast<int>(cat)] += dt;
  };
  int rank = cp.sink_rank;
  // Guard against malformed input: the walk visits each event at most once.
  std::size_t steps = 0;
  const std::size_t cap = num_events() + 1;
  while (idx >= 0 && steps++ < cap) {
    const TraceEvent& e = ranks_[static_cast<size_t>(rank)]
                              .events[static_cast<size_t>(idx)];
    ++cp.num_events;
    if (e.kind == TraceEventKind::kRecv && e.arrival > e.t0) {
      const std::int32_t ei =
          recv_edge_[static_cast<size_t>(rank)][static_cast<size_t>(idx)];
      if (ei >= 0) {
        // The receiver was *waiting*: commit segment [arrival, t1] is the
        // receive's own cost; [send end, arrival] is flight = wait; the
        // path continues through the matched send on the source rank.
        const Edge& edge = edges_[static_cast<size_t>(ei)];
        const TraceEvent& s = ranks_[static_cast<size_t>(edge.src_rank)]
                                  .events[edge.src_event];
        charge(e.cat, e.t1 - e.arrival);
        cp.breakdown.wait += e.arrival - s.t1;
        cp.edges.push_back({&s, &e, edge.src_rank, rank, e.arrival - s.t1});
        rank = edge.src_rank;
        idx = static_cast<std::int64_t>(edge.src_event);
        continue;  // the send event itself is charged next iteration
      }
    } else if (e.kind == TraceEventKind::kCollective && e.arrival > e.t0) {
      // The group synchronized above my entry time: [sync, t1] is the
      // modeled collective cost; the path jumps (zero-width) to whatever
      // the straggler — the member whose entry *is* the sync point — was
      // doing just before it entered.
      const auto it = colls_.find({e.ctx, e.seq});
      if (it != colls_.end()) {
        int srank = -1;
        std::uint32_t sidx = 0;
        for (const auto& [r, i] : it->second) {
          const TraceEvent& m = ranks_[static_cast<size_t>(r)].events[i];
          if (m.t0 == e.arrival) {
            srank = r;
            sidx = i;
            break;  // members are in rank order; lowest straggler wins
          }
        }
        if (srank >= 0) {
          charge(e.cat, e.t1 - e.arrival);
          rank = srank;
          idx = static_cast<std::int64_t>(sidx) - 1;
          continue;
        }
      }
    }
    charge(e.cat, e.t1 - e.t0);
    --idx;
  }
  return cp;
}

std::map<std::int64_t, double> Trace::wait_by_span(const char* label) const {
  std::map<std::int64_t, double> out;
  for (const auto& rt : ranks_) {
    for (const auto& sp : rt.spans) {
      if (std::strcmp(sp.label, label) != 0) continue;
      auto it = std::partition_point(
          rt.events.begin(), rt.events.end(),
          [&](const TraceEvent& e) { return e.t0 < sp.t0; });
      double wait = 0.0;
      for (; it != rt.events.end() && it->t0 < sp.t1; ++it) {
        if (it->kind != TraceEventKind::kRecv) continue;
        wait += std::max(0.0, std::min(it->arrival, it->t1) - it->t0);
      }
      out[sp.arg] += wait;
    }
  }
  return out;
}

void Trace::write_chrome_json(std::ostream& os, bool fault_ledger) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) os << ",";
    first = false;
    os << "\n" << line;
  };
  char buf[256];
  for (size_t r = 0; r < ranks_.size(); ++r) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":0,\"tid\":%zu,\"name\":\"thread_name\","
                  "\"args\":{\"name\":\"rank %zu\"}}",
                  r, r);
    emit(buf);
  }
  for (size_t r = 0; r < ranks_.size(); ++r) {
    for (const auto& sp : ranks_[r].spans) {
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"X\",\"pid\":0,\"tid\":%zu,\"ts\":%s,\"dur\":%s,"
                    "\"name\":\"%s\",\"cat\":\"span\",\"args\":{\"arg\":%lld}}",
                    r, us(sp.t0).c_str(), us(sp.t1 - sp.t0).c_str(),
                    json_escape(sp.label).c_str(),
                    static_cast<long long>(sp.arg));
      emit(buf);
    }
    for (const auto& e : ranks_[r].events) {
      const char* name =
          (e.label != nullptr) ? e.label : kind_name(e.kind);
      std::string args;
      switch (e.kind) {
        case TraceEventKind::kSend:
        case TraceEventKind::kRecv: {
          char a[224];
          // Transport fields are emitted only when a fault actually hit this
          // message, so fault-free traces serialize byte-identically to a
          // build without the reliable transport. A clean-ledger export
          // (fault_ledger = false) suppresses them outright: everything a
          // fault touched lives on the fault ledger, so the clean JSON of a
          // faulty run must match its fault-free twin byte for byte.
          char extra[96] = "";
          if (fault_ledger && e.retrans > 0) {
            std::snprintf(extra, sizeof(extra), ",\"retrans\":%d",
                          static_cast<int>(e.retrans));
          }
          if (fault_ledger && e.kind == TraceEventKind::kRecv &&
              e.fault_arrival > e.arrival) {
            const size_t len = std::strlen(extra);
            std::snprintf(extra + len, sizeof(extra) - len,
                          ",\"fault_delay_us\":%s",
                          us(e.fault_arrival - e.arrival).c_str());
          }
          std::snprintf(a, sizeof(a),
                        ",\"args\":{\"peer\":%d,\"tag\":%d,\"bytes\":%lld,"
                        "\"wait_us\":%s%s}",
                        e.peer, e.tag, static_cast<long long>(e.bytes),
                        us(std::max(0.0, std::min(e.arrival, e.t1) - e.t0)).c_str(),
                        extra);
          args = a;
          break;
        }
        case TraceEventKind::kCollective: {
          char a[96];
          std::snprintf(a, sizeof(a), ",\"args\":{\"bytes\":%lld,\"sync_us\":%s}",
                        static_cast<long long>(e.bytes), us(e.arrival).c_str());
          args = a;
          break;
        }
        default:
          break;
      }
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"X\",\"pid\":0,\"tid\":%zu,\"ts\":%s,\"dur\":%s,"
                    "\"name\":\"%s\",\"cat\":\"%s\"%s}",
                    r, us(e.t0).c_str(), us(e.t1 - e.t0).c_str(),
                    json_escape(name).c_str(), cat_name(e.cat), args.c_str());
      emit(buf);
    }
    if (fault_ledger) {
      // Recovery markers: thread-scoped instant events pinned to the clean
      // virtual time where the crash fired / the restore completed / the
      // checkpoint epoch was cut.
      for (const auto& m : ranks_[r].marks) {
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%zu,"
                      "\"ts\":%s,\"name\":\"%s\",\"cat\":\"recovery\","
                      "\"args\":{\"arg\":%lld}}",
                      r, us(m.t).c_str(), json_escape(m.label).c_str(),
                      static_cast<long long>(m.arg));
        emit(buf);
      }
    }
  }
  for (size_t i = 0; i < edges_.size(); ++i) {
    const Edge& edge = edges_[i];
    const TraceEvent& s =
        ranks_[static_cast<size_t>(edge.src_rank)].events[edge.src_event];
    const TraceEvent& d =
        ranks_[static_cast<size_t>(edge.dst_rank)].events[edge.dst_event];
    // Bind the arrow end inside the receive slice even if the message beat
    // the receiver there (arrival < entry).
    const double land = std::max(d.t0, std::min(d.arrival, d.t1));
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"s\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"id\":%zu,"
                  "\"name\":\"msg\",\"cat\":\"flow\"}",
                  edge.src_rank, us(s.t1).c_str(), i);
    emit(buf);
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":%d,\"ts\":%s,"
                  "\"id\":%zu,\"name\":\"msg\",\"cat\":\"flow\"}",
                  edge.dst_rank, us(land).c_str(), i);
    emit(buf);
    if (fault_ledger && d.retrans > 0 && d.fault_arrival > 0.0) {
      // Recovered message: a second arrow in its own category shows where
      // the accepted copy landed on the fault clock, making retransmission
      // delay visible next to the clean-flight arrow. Ids continue past the
      // clean-arrow range so the two sets never collide.
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"s\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"id\":%zu,"
                    "\"name\":\"retransmit\",\"cat\":\"transport\"}",
                    edge.src_rank, us(s.t1).c_str(), edges_.size() + i);
      emit(buf);
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":%d,\"ts\":%s,"
                    "\"id\":%zu,\"name\":\"retransmit\",\"cat\":\"transport\"}",
                    edge.dst_rank, us(std::max(land, d.fault_arrival)).c_str(),
                    edges_.size() + i);
      emit(buf);
    }
  }
  os << "\n]}\n";
}

std::string Trace::chrome_json(bool fault_ledger) const {
  std::ostringstream os;
  write_chrome_json(os, fault_ledger);
  return os.str();
}

bool Trace::write_chrome_json_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_json(f);
  return f.good();
}

}  // namespace sptrsv
