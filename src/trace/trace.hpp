#pragma once
/// \file trace.hpp
/// \brief Virtual-time event tracing for the cluster runtime
/// (docs/OBSERVABILITY.md).
///
/// When `RunOptions::trace` is set, every rank records one `TraceEvent` per
/// clock advance — compute, send, receive, collective — plus zero-cost user
/// annotation spans (`Comm::annotate`). On `Cluster::run` completion the
/// per-rank buffers are merged into a `Trace`, which
///  - matches every receive to its send via the (sender rank, sender
///    sequence number) key stamped on each message, yielding the cross-rank
///    happens-before edges,
///  - walks the happens-before DAG backwards from the makespan rank and
///    partitions the makespan into the paper's breakdown categories plus
///    explicit *wait* time (message flight on the critical path — the
///    quantity the synchronization-reduction optimizations attack),
///  - aggregates per-(label, arg) receive-wait totals for span histograms,
///  - exports Chrome trace-event JSON loadable in Perfetto (one track per
///    rank, flow arrows for messages).
///
/// Interval events of a runtime trace are *contiguous*: each rank's events
/// tile [0, final vt] exactly, because every clock mutation funnels through
/// one recording chokepoint. The critical-path walk relies on that
/// invariant and refuses traces that violate it (e.g. the GPU simulator's
/// overlapping per-SM task slices, which are export-only).

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "runtime/perturbation.hpp"

namespace sptrsv {

/// What a recorded clock advance was doing.
enum class TraceEventKind : std::uint8_t {
  kCompute = 0,     ///< Comm::compute (flops / rate)
  kAdvance = 1,     ///< Comm::advance (explicitly modeled cost)
  kSend = 2,        ///< sender-side software overhead of a message
  kRecv = 3,        ///< receive: wait until arrival + software overhead
  kCollective = 4,  ///< barrier / allreduce_sum: sync to group max + cost
};

/// One clock advance on one rank, stamped in virtual time.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kAdvance;
  TimeCategory cat = TimeCategory::kOther;
  double t0 = 0.0;  ///< rank virtual time when the advance began
  double t1 = 0.0;  ///< rank virtual time when it ended
  /// Peer *global* rank: destination (send) / source (recv); -1 otherwise.
  int peer = -1;
  int tag = 0;
  std::int64_t bytes = 0;  ///< payload bytes (send/recv/collective)
  /// send: the stamped arrival at the destination; recv: the taken
  /// message's arrival; collective: the group's sync point (max entry vt).
  double arrival = 0.0;
  /// send/recv: the sender's per-rank message sequence number (edge
  /// matching key, unique per sender); collective: the generation number.
  std::int64_t seq = 0;
  std::uint64_t ctx = 0;  ///< communicator context id
  /// Reliable-transport retransmissions behind this message (send/recv under
  /// delivery faults; 0 otherwise — clean traces serialize unchanged).
  std::int32_t retrans = 0;
  /// Fault-clock arrival of the accepted copy (recv under delivery faults;
  /// equals `arrival` plus the recovery delay). 0 when no transport ran.
  double fault_arrival = 0.0;
  /// Optional static-string label ("barrier", "allreduce", GPU-sim task
  /// names). Must point at storage outliving the trace (string literals).
  const char* label = nullptr;
};

/// A user annotation span (Comm::annotate): zero clock cost, overlays the
/// interval events — excluded from the critical-path partition.
struct TraceSpanRec {
  const char* label = nullptr;  ///< static string (see TraceEvent::label)
  std::int64_t arg = -1;        ///< caller-chosen discriminator (level, row id, ...)
  double t0 = 0.0;
  double t1 = 0.0;
};

/// A zero-duration marker pinned to one virtual-time instant — crash,
/// restore and checkpoint epochs from the recovery layer. Markers are
/// fault-ledger metadata: they never participate in the critical-path walk
/// or the contiguity invariant, and the clean-ledger JSON export
/// (write_chrome_json(os, /*fault_ledger=*/false)) omits them entirely.
struct TraceMarker {
  const char* label = nullptr;  ///< static string (see TraceEvent::label)
  double t = 0.0;               ///< clean virtual time of the instant
  std::int64_t arg = -1;        ///< spare index / image epoch / caller arg
};

/// One rank's raw recording buffer (append-only while the rank runs).
struct RankTrace {
  std::vector<TraceEvent> events;
  std::vector<TraceSpanRec> spans;
  std::vector<TraceMarker> marks;
};

/// Merged, matched view of a whole run. Build once via Trace::build.
class Trace {
 public:
  /// A matched send -> recv happens-before edge.
  struct Edge {
    int src_rank = -1;
    std::uint32_t src_event = 0;  ///< index into rank(src_rank).events
    int dst_rank = -1;
    std::uint32_t dst_event = 0;
    double flight = 0.0;  ///< arrival - send completion (virtual seconds)
  };

  /// Makespan attribution along the critical path. The invariant the tests
  /// pin: category[0..3] + wait telescopes to `makespan` exactly (the walk
  /// partitions [0, makespan] into disjoint segments).
  struct Breakdown {
    double makespan = 0.0;
    double category[kNumTimeCategories] = {0, 0, 0, 0};
    double wait = 0.0;  ///< message flight time on the path
    double total() const {
      double s = wait;
      for (const double c : category) s += c;
      return s;
    }
  };

  /// A cross-rank hop on the critical path (sink-to-source order).
  struct PathEdge {
    const TraceEvent* send = nullptr;
    const TraceEvent* recv = nullptr;
    int src_rank = -1;
    int dst_rank = -1;
    double flight = 0.0;
  };

  struct CriticalPath {
    Breakdown breakdown;
    std::vector<PathEdge> edges;  ///< message hops, sink-to-source
    int sink_rank = -1;           ///< rank whose final event ends at makespan
    std::size_t num_events = 0;   ///< interval events visited by the walk
  };

  Trace() = default;

  /// Merges per-rank buffers (index = global rank) and matches edges.
  static Trace build(std::vector<RankTrace> ranks);

  int num_ranks() const { return static_cast<int>(ranks_.size()); }
  const RankTrace& rank(int r) const { return ranks_[static_cast<size_t>(r)]; }
  /// Max over ranks of the final event's t1 (0 for an empty trace).
  double makespan() const { return makespan_; }
  /// True if every rank's events tile [0, vt] with no gaps or overlaps —
  /// holds for runtime traces, not for GPU-simulator traces.
  bool contiguous() const { return contiguous_; }

  std::size_t num_events() const;
  std::size_t num_sends() const { return num_sends_; }
  std::size_t num_recvs() const { return num_recvs_; }
  std::size_t num_matched_recvs() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Extracts the critical path (throws std::logic_error on a
  /// non-contiguous trace — see contiguous()).
  CriticalPath critical_path() const;

  /// Total receive *wait* time (clamped arrival - entry) of events enclosed
  /// in spans labeled `label`, keyed by the span's arg, summed over ranks —
  /// e.g. wait_by_span("l_level") is the per-level wait histogram of the
  /// baseline L phase.
  std::map<std::int64_t, double> wait_by_span(const char* label) const;

  /// Chrome trace-event JSON (Perfetto-loadable): one thread per rank,
  /// "X" slices for events and spans, flow arrows for matched messages,
  /// instant events for recovery markers (crash/restore/checkpoint).
  /// Deterministic formatting: equal traces serialize byte-identically.
  /// `fault_ledger = false` strips everything the fault ledger owns —
  /// markers, retransmit arrows, retrans/fault_delay_us args — so the
  /// export of a crashed-but-recovered run is byte-identical to its
  /// fault-free twin's (the two-ledger invariant, made greppable).
  void write_chrome_json(std::ostream& os, bool fault_ledger = true) const;
  std::string chrome_json(bool fault_ledger = true) const;
  /// Writes chrome_json() (full fidelity) to `path`; returns false on I/O
  /// failure.
  bool write_chrome_json_file(const std::string& path) const;

 private:
  std::vector<RankTrace> ranks_;
  std::vector<Edge> edges_;
  /// Per rank, per event: index into edges_ for matched kRecv events, -1
  /// otherwise.
  std::vector<std::vector<std::int32_t>> recv_edge_;
  /// (ctx, generation) -> member (rank, event index) list, for collective
  /// straggler jumps in the critical-path walk.
  std::map<std::pair<std::uint64_t, std::int64_t>,
           std::vector<std::pair<int, std::uint32_t>>>
      colls_;
  double makespan_ = 0.0;
  bool contiguous_ = true;
  std::size_t num_sends_ = 0;
  std::size_t num_recvs_ = 0;
};

}  // namespace sptrsv
