#pragma once
/// \file sparse_allreduce.hpp
/// \brief Sparse AllReduce of partial solution vectors across the Pz grids
/// (paper Algorithm 2 / Fig 3).
///
/// After the 2D L-solves, each grid holds *partial* solutions for its
/// replicated ancestor nodes; the complete value is the sum over the
/// replication group. Instead of one MPI_Allreduce per elimination-tree
/// node (latency O(#nodes * log Pz)), the sparse scheme does one pairwise
/// exchange per tree level with the per-level shared ancestors packed into
/// a single buffer: O(log Pz) messages per process total. The reduce phase
/// sums toward the smallest grid id of each replication group (matching the
/// "z is the smallest grid id replicating a" RHS rule of Algorithm 1); the
/// broadcast phase mirrors it back.
///
/// Note the paper's Algorithm 2 pseudocode swaps the send/recv conditions
/// relative to its Fig 3; we follow the figure (see DESIGN.md §5).

#include <span>
#include <vector>

#include "ordering/nested_dissection.hpp"
#include "runtime/cluster.hpp"

namespace sptrsv {

/// One replicated segment: the local slice of the solution subvector of a
/// tracked tree node. Slices of the same node have identical length and
/// element order on every grid sharing it (same 2D position, same layout).
struct ReduceSegment {
  Idx node = kNoIdx;       ///< tracked NdTree node id (an ancestor of my leaf)
  std::span<Real> values;  ///< local slice; summed in place
};

/// Performs the sparse allreduce over `zcomm` (one rank per grid, rank ==
/// grid id z, size == tree.num_leaves()). `segments` must hold exactly the
/// ancestors (depth < tree.levels()) of leaf z, in any order. On return
/// every grid's segments contain the complete sums. Communication time is
/// attributed to `cat` (inter-grid / Z in the paper's breakdown).
void sparse_allreduce(Comm& zcomm, const NdTree& tree,
                      std::span<const ReduceSegment> segments,
                      TimeCategory cat = TimeCategory::kZComm);

/// Ablation baseline: one dense `allreduce_sum` over the whole z
/// communicator per tracked internal node, padding with zeros on grids that
/// do not share the node — the "straightforward implementation using
/// MPI_allreduce for each node k" the paper argues against (§3.2).
void dense_allreduce_per_node(Comm& zcomm, const NdTree& tree,
                              std::span<const ReduceSegment> segments,
                              TimeCategory cat = TimeCategory::kZComm);

}  // namespace sptrsv
