#include "comm/sparse_allreduce.hpp"

#include <algorithm>
#include <stdexcept>

namespace sptrsv {

namespace {

constexpr int kTagSparseReduce = 0x5A01;
constexpr int kTagSparseBcast = 0x5A02;

/// Segments shared by a pair of grids at exchange level `l`: a node at
/// depth d is replicated across 2^(levels-d) grids, so it is common to a
/// pair at distance 2^l iff d <= levels - l - 1. Returned sorted by node id
/// so both sides pack in the same order.
std::vector<const ReduceSegment*> shared_at_level(const NdTree& tree,
                                                  std::span<const ReduceSegment> segs,
                                                  int l) {
  std::vector<const ReduceSegment*> out;
  for (const auto& s : segs) {
    if (tree.node(s.node).depth <= tree.levels() - l - 1) out.push_back(&s);
  }
  std::sort(out.begin(), out.end(),
            [](const ReduceSegment* a, const ReduceSegment* b) { return a->node < b->node; });
  return out;
}

std::vector<Real> pack(const std::vector<const ReduceSegment*>& segs) {
  size_t total = 0;
  for (const auto* s : segs) total += s->values.size();
  std::vector<Real> buf;
  buf.reserve(total);
  for (const auto* s : segs) buf.insert(buf.end(), s->values.begin(), s->values.end());
  return buf;
}

void unpack_accumulate(const std::vector<const ReduceSegment*>& segs,
                       std::span<const Real> buf) {
  size_t off = 0;
  for (const auto* s : segs) {
    if (off + s->values.size() > buf.size()) {
      throw std::runtime_error("sparse_allreduce: mismatched buffer layout");
    }
    for (size_t i = 0; i < s->values.size(); ++i) s->values[i] += buf[off + i];
    off += s->values.size();
  }
  if (off != buf.size()) {
    throw std::runtime_error("sparse_allreduce: trailing buffer data");
  }
}

void unpack_replace(const std::vector<const ReduceSegment*>& segs,
                    std::span<const Real> buf) {
  size_t off = 0;
  for (const auto* s : segs) {
    if (off + s->values.size() > buf.size()) {
      throw std::runtime_error("sparse_allreduce: mismatched buffer layout");
    }
    std::copy_n(buf.begin() + static_cast<std::ptrdiff_t>(off), s->values.size(),
                s->values.begin());
    off += s->values.size();
  }
  if (off != buf.size()) {
    throw std::runtime_error("sparse_allreduce: trailing buffer data");
  }
}

void validate(Comm& zcomm, const NdTree& tree, std::span<const ReduceSegment> segments) {
  if (zcomm.size() != tree.num_leaves()) {
    throw std::invalid_argument("sparse_allreduce: zcomm size != number of grids");
  }
  for (const auto& s : segments) {
    const auto [lo, hi] = tree.leaf_range(s.node);
    if (zcomm.rank() < lo || zcomm.rank() >= hi) {
      throw std::invalid_argument("sparse_allreduce: segment node not an ancestor");
    }
    if (tree.node(s.node).depth >= tree.levels()) {
      throw std::invalid_argument("sparse_allreduce: leaf nodes are not replicated");
    }
  }
}

}  // namespace

void sparse_allreduce(Comm& zcomm, const NdTree& tree,
                      std::span<const ReduceSegment> segments, TimeCategory cat) {
  validate(zcomm, tree, segments);
  const int levels = tree.levels();
  const int z = zcomm.rank();

  // Metric handles are null when RunOptions::metrics is off; add() is then a
  // no-op. Counters live outside the clean ledger (docs/OBSERVABILITY.md).
  const MetricsRegistry::Counter m_rexch = zcomm.metric_counter("zreduce.exchanges");
  const MetricsRegistry::Counter m_rvals = zcomm.metric_counter("zreduce.values");
  const MetricsRegistry::Counter m_bexch = zcomm.metric_counter("zbcast.exchanges");
  const MetricsRegistry::Counter m_bvals = zcomm.metric_counter("zbcast.values");
  const auto count_values = [](const std::vector<const ReduceSegment*>& shared) {
    std::int64_t n = 0;
    for (const auto* s : shared) n += static_cast<std::int64_t>(s->values.size());
    return n;
  };

  // Buddy checkpoint of the in-flight allreduce partials, cut after every
  // exchange level. Partials mutate in place (that is the whole point of
  // the reduction), so restore validation checks the layout only — every
  // checkpointed segment must still exist with its checkpointed length.
  // The exchange schedule and reduction order are pinned by the virtual
  // rank inside the reduce tree, not by the physical host, so a shrunk
  // world replaying an adopted partition (RunOptions::degrade) sums the
  // same partials in the same order and stays bitwise fault-invariant.
  int ckpt_level = 0;
  const CheckpointScope ckpt = zcomm.register_checkpoint(
      "sparse_allreduce",
      [&] {
        std::vector<Real> buf;
        buf.push_back(static_cast<Real>(segments.size()));
        buf.push_back(static_cast<Real>(ckpt_level));
        for (const auto& s : segments) {
          buf.push_back(static_cast<Real>(s.node));
          buf.push_back(static_cast<Real>(s.values.size()));
          buf.insert(buf.end(), s.values.begin(), s.values.end());
        }
        return buf;
      },
      [&](const CheckpointImage& img) {
        const std::vector<Real>& s = img.state;
        const auto count = s.size() < 2 ? 0 : static_cast<std::size_t>(s[0]);
        if (count != segments.size()) {
          throw std::logic_error(
              "sparse_allreduce: checkpoint image disagrees with live state");
        }
        std::size_t pos = 2;
        for (std::size_t e = 0; e < count; ++e) {
          const auto node = static_cast<Idx>(s[pos]);
          const auto len = static_cast<std::size_t>(s[pos + 1]);
          if (segments[e].node != node || segments[e].values.size() != len) {
            throw std::logic_error(
                "sparse_allreduce: checkpoint image disagrees with live state");
          }
          pos += 2 + len;
        }
      },
      // Live words a memory fault can land in: the in-flight partial sums,
      // in segment order (already deterministic — no map iteration here).
      [&] {
        std::vector<std::span<Real>> spans;
        spans.reserve(segments.size());
        for (const auto& s : segments) spans.push_back(s.values);
        return spans;
      });

  try {
  // Reduce phase (Fig 3a): leaf-to-root; the higher grid of each pair sends
  // its partial sums to the lower one and goes inactive.
  for (int l = 0; l < levels; ++l) {
    if (z % (1 << l) != 0) break;  // went inactive at an earlier level
    const auto shared = shared_at_level(tree, segments, l);
    if (shared.empty()) continue;
    const TraceSpan level_span = zcomm.annotate("zreduce", l);
    const int partner = z ^ (1 << l);
    m_rexch.add();
    m_rvals.add(count_values(shared));
    if (z & (1 << l)) {
      zcomm.send(partner, kTagSparseReduce, pack(shared), cat);
    } else {
      const Message m = zcomm.recv(partner, kTagSparseReduce, cat);
      unpack_accumulate(shared, m.data);
    }
    ckpt_level = l + 1;
    zcomm.checkpoint_epoch(l);  // reduce-level boundary
  }

  // Broadcast phase (Fig 3b): root-to-leaf; lower grid sends completed sums
  // back to the higher one.
  for (int l = levels - 1; l >= 0; --l) {
    if (z % (1 << l) != 0) continue;  // participates only from its level down
    const auto shared = shared_at_level(tree, segments, l);
    if (shared.empty()) continue;
    const TraceSpan level_span = zcomm.annotate("zbcast", l);
    const int partner = z ^ (1 << l);
    m_bexch.add();
    m_bvals.add(count_values(shared));
    if (z & (1 << l)) {
      const Message m = zcomm.recv(partner, kTagSparseBcast, cat);
      unpack_replace(shared, m.data);
    } else {
      zcomm.send(partner, kTagSparseBcast, pack(shared), cat);
    }
    ckpt_level = 2 * levels - l;
    zcomm.checkpoint_epoch(levels + (levels - 1 - l));  // bcast-level boundary
  }
  } catch (FaultError& fe) {
    rethrow_with_phase(fe, "sparse_allreduce");
  }
}

void dense_allreduce_per_node(Comm& zcomm, const NdTree& tree,
                              std::span<const ReduceSegment> segments, TimeCategory cat) {
  validate(zcomm, tree, segments);
  const MetricsRegistry::Counter m_rounds = zcomm.metric_counter("zreduce.dense_rounds");
  const MetricsRegistry::Counter m_rvals = zcomm.metric_counter("zreduce.values");
  try {
  // Every internal tracked node triggers one full-communicator allreduce.
  // Grids that do not share the node contribute zeros; node sizes are
  // agreed via an (uncharged) max-reduce of the local lengths.
  for (Idx id = 0; id < tree.num_nodes(); ++id) {
    if (tree.node(id).depth >= tree.levels()) continue;
    const ReduceSegment* mine = nullptr;
    for (const auto& s : segments) {
      if (s.node == id) mine = &s;
    }
    const double len = zcomm.allreduce_max(mine ? static_cast<double>(mine->values.size()) : 0.0);
    const auto n = static_cast<size_t>(len);
    if (n == 0) continue;
    const TraceSpan node_span = zcomm.annotate("dense_zreduce", static_cast<std::int64_t>(id));
    m_rounds.add();
    m_rvals.add(static_cast<std::int64_t>(n));
    std::vector<Real> contrib(n, 0.0);
    if (mine) std::copy(mine->values.begin(), mine->values.end(), contrib.begin());
    const std::vector<Real> sum = zcomm.allreduce_sum(contrib, cat);
    if (mine) std::copy_n(sum.begin(), mine->values.size(), mine->values.begin());
  }
  } catch (FaultError& fe) {
    rethrow_with_phase(fe, "dense_allreduce_per_node");
  }
}

}  // namespace sptrsv
