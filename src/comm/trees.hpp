#pragma once
/// \file trees.hpp
/// \brief Broadcast / reduction communication trees (paper §3.3, ref [29]).
///
/// In the 2D solve, the process that computes y(I) must broadcast it to the
/// processes owning blocks L(K,I); symmetrically, partial sums lsum(K) must
/// be reduced to the diagonal owner of K. A flat fan-out makes the root send
/// O(P) messages; the binary tree caps every process at <= 3 messages per
/// supernode, trading total latency O(P) for O(log P) — the paper's intra-
/// grid latency optimization. One tree is built per supernode column (bcast)
/// and per supernode row (reduction); roots are the diagonal owners.

#include <span>
#include <unordered_map>
#include <vector>

#include "sparse/types.hpp"

namespace sptrsv {

/// Tree shape selector (the flat variant is the un-optimized ablation).
enum class TreeKind { kBinary, kFlat };

/// A broadcast/reduction tree over a set of member ranks.
///
/// Broadcast: each member forwards a received value to `children_of(me)`.
/// Reduction: each member sends its accumulated value to `parent_of(me)`
/// once it has received from all children. Both directions share one shape.
class CommTree {
 public:
  CommTree() = default;

  /// Builds a tree over `members` rooted at `root` (must be a member).
  /// Members may be in any order; the layout is deterministic in the
  /// sorted member order, so every rank builds the identical tree locally.
  static CommTree build(TreeKind kind, std::span<const int> members, int root);

  int root() const { return root_; }
  int num_members() const { return static_cast<int>(ordered_.size()); }
  bool contains(int rank) const { return pos_.count(rank) != 0; }

  /// Parent rank of `rank`, or kNoIdx for the root.
  int parent_of(int rank) const;
  /// Children ranks of `rank` (0-2 for binary; up to n-1 for flat root).
  std::span<const int> children_of(int rank) const;
  /// Number of children (reduction readiness counting).
  int num_children(int rank) const { return static_cast<int>(children_of(rank).size()); }

  /// Hop count from the root down to `rank` (0 for the root itself) —
  /// trace annotations label relay sends with their tree depth.
  int depth_of(int rank) const;
  /// Longest root-to-leaf hop count (0 for a singleton).
  int depth() const;

 private:
  int root_ = kNoIdx;
  std::vector<int> ordered_;                    // root first, then heap layout
  std::unordered_map<int, int> pos_;            // rank -> position in ordered_
  std::vector<std::vector<int>> children_;      // by position
  std::vector<int> parent_;                     // by position (kNoIdx for root)
};

}  // namespace sptrsv
