#include "comm/trees.hpp"

#include <algorithm>
#include <stdexcept>

namespace sptrsv {

CommTree CommTree::build(TreeKind kind, std::span<const int> members, int root) {
  CommTree t;
  t.ordered_.assign(members.begin(), members.end());
  std::sort(t.ordered_.begin(), t.ordered_.end());
  t.ordered_.erase(std::unique(t.ordered_.begin(), t.ordered_.end()), t.ordered_.end());
  const auto it = std::find(t.ordered_.begin(), t.ordered_.end(), root);
  if (it == t.ordered_.end()) {
    throw std::invalid_argument("CommTree::build: root is not a member");
  }
  // Root first, remaining members in sorted order (deterministic layout).
  std::rotate(t.ordered_.begin(), it, it + 1);
  std::sort(t.ordered_.begin() + 1, t.ordered_.end());
  t.root_ = root;

  const int n = static_cast<int>(t.ordered_.size());
  for (int p = 0; p < n; ++p) t.pos_[t.ordered_[static_cast<size_t>(p)]] = p;
  t.children_.resize(static_cast<size_t>(n));
  t.parent_.assign(static_cast<size_t>(n), kNoIdx);
  if (kind == TreeKind::kBinary) {
    // Heap layout over positions: children of position p are 2p+1, 2p+2.
    for (int p = 1; p < n; ++p) {
      const int par = (p - 1) / 2;
      t.parent_[static_cast<size_t>(p)] = t.ordered_[static_cast<size_t>(par)];
      t.children_[static_cast<size_t>(par)].push_back(t.ordered_[static_cast<size_t>(p)]);
    }
  } else {  // flat: root fans out to everyone
    for (int p = 1; p < n; ++p) {
      t.parent_[static_cast<size_t>(p)] = root;
      t.children_[0].push_back(t.ordered_[static_cast<size_t>(p)]);
    }
  }
  return t;
}

int CommTree::parent_of(int rank) const {
  const auto it = pos_.find(rank);
  if (it == pos_.end()) throw std::out_of_range("CommTree::parent_of: not a member");
  return parent_[static_cast<size_t>(it->second)];
}

std::span<const int> CommTree::children_of(int rank) const {
  const auto it = pos_.find(rank);
  if (it == pos_.end()) throw std::out_of_range("CommTree::children_of: not a member");
  return children_[static_cast<size_t>(it->second)];
}

int CommTree::depth_of(int rank) const {
  const auto it = pos_.find(rank);
  if (it == pos_.end()) throw std::out_of_range("CommTree::depth_of: not a member");
  int hops = 0;
  for (int v = it->second; v != 0; v = pos_.at(parent_[static_cast<size_t>(v)])) ++hops;
  return hops;
}

int CommTree::depth() const {
  int d = 0;
  for (int p = 0; p < num_members(); ++p) {
    d = std::max(d, depth_of(ordered_[static_cast<size_t>(p)]));
  }
  return d;
}

}  // namespace sptrsv
