#include "runtime/reliable.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace sptrsv {

namespace {

/// Salt separating the fault-draw stream from the timing-perturbation
/// stream: adding delivery faults must not shift the jitter/skew draws, or
/// a combined model would stop matching its timing-only twin.
constexpr std::uint64_t kFaultStreamSalt = 0xFA17C0DE5EEDULL;

double fault_uniform(std::uint64_t seed, int rank, std::uint64_t* fseq) {
  return detail::perturb_uniform(detail::hash64(seed ^ kFaultStreamSalt),
                                 static_cast<std::uint64_t>(rank), (*fseq)++);
}

/// Stall state of one frame crossing `src -> dst` at sender clock `t`.
struct StallEffect {
  double flight_factor = 1.0;
  bool permanent = false;
};

StallEffect stall_for(const PerturbationModel& pm, int src, int dst, double t) {
  StallEffect s;
  for (const auto& st : pm.stalls) {
    if (st.rank != -1 && st.rank != src && st.rank != dst) continue;
    if (t < st.vt_begin || t >= st.vt_end) continue;
    s.flight_factor = std::max(s.flight_factor, st.flight_factor);
    s.permanent = s.permanent || st.permanent;
  }
  return s;
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kRetriesExhausted: return "retries-exhausted";
    case FaultKind::kRankStalled: return "rank-stalled";
    case FaultKind::kDeadlock: return "deadlock";
    case FaultKind::kVtLimit: return "vt-limit";
    case FaultKind::kRevoked: return "revoked";
    case FaultKind::kBuddyLoss: return "buddy-loss";
    case FaultKind::kSparesExhausted: return "spares-exhausted";
    case FaultKind::kSilentCorruption: return "silent-corruption";
    case FaultKind::kNoSurvivors: return "no-survivors";
    case FaultKind::kStraggler: return "straggler";
  }
  return "?";
}

std::string FaultReport::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "fault[%s] rank=%d peer=%d tag=%d retries=%d vt=%.9e",
                fault_kind_name(kind), rank, peer, tag, retries, vt);
  std::string s(buf);
  if (!detail.empty()) {
    s += ": ";
    s += detail;
  }
  return s;
}

FaultError::FaultError(FaultReport r)
    : std::runtime_error(r.to_string()), report(std::move(r)) {}

void rethrow_with_phase(FaultError& fe, const char* phase) {
  FaultReport r = std::move(fe.report);
  r.detail = r.detail.empty() ? std::string(phase)
                              : std::string(phase) + ": " + r.detail;
  throw FaultError(std::move(r));
}

std::uint64_t payload_checksum(std::span<const Real> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64-bit offset basis
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data.data());
  const std::size_t n = data.size() * sizeof(Real);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t frame_checksum(int src, int dst, int tag, std::uint64_t seq,
                             std::span<const Real> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64-bit offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<unsigned char>(v >> (8 * i));
      h *= 0x100000001b3ULL;
    }
  };
  mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(src)));
  mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(dst)));
  mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(tag)));
  mix(seq);
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data.data());
  const std::size_t n = data.size() * sizeof(Real);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

double drop_prob_for(const PerturbationModel& pm, int src, int dst) {
  double p = pm.drop_prob;
  for (const auto& lf : pm.link_faults) {
    if ((lf.src == -1 || lf.src == src) && (lf.dst == -1 || lf.dst == dst)) {
      p = std::max(p, lf.drop_prob);
    }
  }
  return std::min(p, 1.0);
}

TransportOutcome simulate_transport(const PerturbationModel& pm,
                                    const TransportOptions& to, std::uint64_t seed,
                                    int src, int dst, double send_vt, double flight,
                                    double ack_flight, double overhead,
                                    std::uint64_t* fseq) {
  TransportOutcome out;
  const double drop_fwd = drop_prob_for(pm, src, dst);
  const double drop_rev = drop_prob_for(pm, dst, src);
  double rto = to.rto > 0.0
                   ? to.rto
                   : 2.0 * (flight + ack_flight + 2.0 * overhead);
  if (rto <= 0.0) rto = 1e-6;  // zero-latency link: keep the timer finite

  // Stop-and-wait from the sender's point of view. `elapsed` is virtual
  // time past the send; the receiver's extra arrival delay is fixed by the
  // first *intact* delivery; later attempts only produce duplicates.
  double elapsed = 0.0;
  bool delivered = false;
  bool stall_blocked = false;
  out.attempts = 0;
  const int max_attempts = std::max(1, to.max_retries + 1);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    ++out.attempts;
    const StallEffect st = stall_for(pm, src, dst, send_vt + elapsed);
    if (st.permanent) {
      // The outage swallows the frame whole; the retransmit timer is the
      // only way past the window.
      stall_blocked = true;
      ++out.frames_dropped;
      ++out.timeouts;
      elapsed += rto;
      rto *= to.backoff;
      continue;
    }
    if (fault_uniform(seed, src, fseq) < drop_fwd) {
      ++out.frames_dropped;
      ++out.timeouts;
      elapsed += rto;
      rto *= to.backoff;
      continue;
    }
    double this_flight = flight * st.flight_factor;
    if (fault_uniform(seed, src, fseq) < pm.corrupt_prob) {
      // Arrives, fails the checksum, is discarded without an ack.
      ++out.corrupt;
      ++out.timeouts;
      elapsed += rto;
      rto *= to.backoff;
      continue;
    }
    // Intact delivery.
    if (!delivered) {
      delivered = true;
      stall_blocked = false;
      if (pm.reorder_prob > 0.0 &&
          fault_uniform(seed, src, fseq) < pm.reorder_prob) {
        out.reordered = true;
        this_flight += pm.reorder_window * fault_uniform(seed, src, fseq);
      }
      out.extra_delay = elapsed + (this_flight - flight);
    } else {
      ++out.duplicates;
    }
    ++out.acks;
    // Spurious duplicate of an acked frame (network-level replay).
    if (pm.dup_prob > 0.0 && fault_uniform(seed, src, fseq) < pm.dup_prob) {
      ++out.duplicates;
      ++out.acks;
    }
    if (fault_uniform(seed, src, fseq) < drop_rev) {
      // Ack lost: the sender times out and retransmits a copy the receiver
      // will suppress.
      ++out.frames_dropped;
      ++out.timeouts;
      elapsed += rto;
      rto *= to.backoff;
      continue;
    }
    break;  // acked — the sender releases the message
  }
  if (!delivered) {
    out.failed = true;
    out.stalled = stall_blocked;
    out.extra_delay = elapsed;
  }
  return out;
}

}  // namespace sptrsv
