#pragma once
/// \file cluster.hpp
/// \brief In-process message-passing runtime with virtual LogGP clocks.
///
/// This substitutes for MPI + the physical cluster (see DESIGN.md §1).
/// Every rank is an OS thread; `Comm` exposes MPI-shaped primitives
/// (send / recv with wildcards / barrier / allreduce / split) with real
/// message passing through per-rank mailboxes, so distributed algorithms
/// are written exactly as they would be against MPI and their *functional*
/// behaviour (message counts, DAG traversal, data movement) is real.
///
/// Performance is modeled, not measured: each rank carries a virtual clock.
/// Compute advances it by flops/rate; a send costs the sender its software
/// overhead and stamps the message with `sender_vt + latency + bytes/BW`;
/// a receive advances the receiver to `max(own_vt, arrival)`. The reported
/// solve time of a run is the maximum clock over ranks (modeled makespan).
///
/// Two scheduling modes (selected by RunOptions, see docs/DETERMINISM.md):
///  - Free-running (default): ranks execute concurrently; a wildcard
///    receive takes the earliest virtual arrival among *queued* messages,
///    so OS scheduling can perturb which message wins and makespans carry
///    a small run-to-run jitter. Fastest; fine for exploratory sweeps.
///  - Deterministic: ranks hand off a run token in virtual-time order via a
///    sequenced condition-variable protocol. A receive only commits to a
///    queued message once no runnable rank could still produce an earlier
///    virtual arrival, so makespans, per-category breakdowns and message
///    counts are bit-reproducible across runs and machines.
///
/// Time is attributed to the paper's breakdown categories (FP operation,
/// XY/intra-grid communication, Z/inter-grid communication; Fig 5-6),
/// defined in runtime/perturbation.hpp together with the seeded
/// PerturbationModel the clock applies when MachineModel::perturb is set.

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "metrics/metrics.hpp"
#include "runtime/machine.hpp"
#include "sparse/types.hpp"

namespace sptrsv {

/// Wildcard selectors for Comm::recv (MPI_ANY_SOURCE / MPI_ANY_TAG).
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Grant-order policy for the deterministic scheduler. Every policy keeps
/// the commit fence of docs/DETERMINISM.md intact — a wildcard receive
/// still only commits once no runnable rank could produce an earlier
/// arrival — so clocks, counters and fingerprints must be *identical*
/// across policies; the policies only permute which legal interleaving is
/// explored. That makes schedule exploration a bug-finding tool: any
/// observable difference between two policies is a schedule-dependence bug
/// in the program under test (see docs/TESTING.md).
enum class SchedulePolicy {
  /// Token goes to the minimal (virtual-time key, rank) READY rank — the
  /// historical order; free of any seeded choice.
  kFifo = 0,
  /// PCT-style randomized priorities: each rank draws a seeded priority,
  /// the highest eligible priority runs, and at `priority_points` seeded
  /// grant indices the running rank is demoted below everyone else.
  kRandomPriority = 1,
  /// FIFO, except up to `delay_budget` seeded grants defer the front rank
  /// once in favour of the second-eligible rank.
  kDelayBounded = 2,
};

/// Name of a policy for logs / certificates ("fifo", "random_priority",
/// "delay_bounded").
const char* schedule_policy_name(SchedulePolicy p);

/// Compact replayable record of every grant decision a deterministic run
/// made. `(policy, seed, grants)` pins the interleaving exactly: replaying
/// it (RunOptions::replay_schedule) reproduces the run bit-for-bit,
/// including every wildcard tie-break, without re-deriving the policy's
/// choices. Serializes to one text line for bug reports.
struct ScheduleCertificate {
  SchedulePolicy policy = SchedulePolicy::kFifo;
  std::uint64_t seed = 0;
  /// Rank granted the token at each scheduler decision, in order.
  std::vector<std::int32_t> grants;

  /// One line: "<policy> <seed> <n> <g0> <g1> ...".
  std::string to_string() const;
  /// Inverse of to_string; throws std::invalid_argument on malformed text.
  static ScheduleCertificate parse(const std::string& text);
};

/// Per-run scheduling options for Cluster::run.
struct RunOptions {
  /// Serialize rank execution behind a virtual-time-ordered token so the
  /// whole run (makespan, breakdowns, message counts) is bit-reproducible.
  bool deterministic = false;
  /// Seed for MachineModel::perturb draws. A given (machine, seed) pair
  /// yields the same perturbations in every run; ignored when the machine's
  /// perturbation model is inactive.
  std::uint64_t seed = 0;
  /// Record a per-event virtual-time trace (docs/OBSERVABILITY.md) and
  /// publish it as Cluster::Result::trace. Recording never changes modeled
  /// results — clock math is identical with tracing on or off.
  bool trace = false;
  /// Convert would-be infinite hangs (a receive no send will ever match, a
  /// collective a dead rank never joins) into a structured FaultReport
  /// (docs/ROBUSTNESS.md). In deterministic mode detection is exact (the
  /// scheduler sees the global blocked state); in free-running mode a
  /// quiescence watchdog declares after the whole cluster sits blocked with
  /// no progress for a real-time patience window.
  bool watchdog = true;
  /// Abort with FaultKind::kVtLimit once any rank's clean virtual clock
  /// passes this bound (infinity = unlimited). A cheap guard against
  /// runaway modeled time under pathological fault schedules.
  double vt_limit = std::numeric_limits<double>::infinity();
  /// Grant-order exploration policy (deterministic mode only; any other
  /// value than kFifo with deterministic == false throws
  /// std::invalid_argument). See docs/TESTING.md.
  SchedulePolicy schedule = SchedulePolicy::kFifo;
  /// Seed for the schedule policy's choices. Independent of `seed` (the
  /// fault/perturbation stream) so schedules can be swept without touching
  /// fault draws. Wildcard arrival ties are NOT seeded — they break by a
  /// fixed function of the messages, or the clean ledger would diverge.
  std::uint64_t schedule_seed = 0;
  /// kRandomPriority: number of seeded priority-change points (PCT's d).
  /// Must be >= 0.
  int priority_points = 2;
  /// kDelayBounded: maximum number of seeded one-grant deferrals. Must
  /// be >= 0.
  int delay_budget = 8;
  /// Replay a recorded certificate instead of running a policy (the
  /// certificate's policy/seed take precedence over the fields above).
  /// Deterministic mode only; the pointed-to certificate must outlive the
  /// run. Grants out of range for `nranks` throw std::invalid_argument.
  const ScheduleCertificate* replay_schedule = nullptr;
  /// Maintain the per-rank MetricsRegistry (docs/OBSERVABILITY.md §Metrics)
  /// and publish the merged MetricsReport as Cluster::Result::metrics.
  /// Like tracing, metrics sit outside the clean ledger: enabling them
  /// changes no clock bit, fingerprint, message count or trace byte.
  bool metrics = false;
  /// Virtual-time sampling period (seconds on the modeled clock) for the
  /// metrics time series; 0 = no series, final snapshot only. Requires
  /// `metrics`; samples land on the fixed grid k * metrics_period, so the
  /// series is schedule- and thread-timing-independent.
  double metrics_period = 0.0;
  /// Checksum-augmented (ABFT) solves: verify a running checksum of the
  /// registered solver state at every checkpoint_epoch, localize and
  /// recompute any corrupted word on the spot (docs/ROBUSTNESS.md §SDC).
  /// All verification/repair cost rides the fault ledger, so enabling ABFT
  /// changes no clean-ledger bit — with or without injected faults.
  bool abft = false;
  /// Degraded-mode repair: when the end-of-solve residual check trips with
  /// corruption ABFT could not (or was not enabled to) correct, fall back
  /// to iterative refinement instead of failing with
  /// FaultKind::kSilentCorruption (see solve_system_3d_verified).
  bool sdc_repair = false;
  /// Elastic recovery: when a crash draws an unrecoverable verdict
  /// (kSparesExhausted / kBuddyLoss), shrink the world onto the survivors
  /// and redistribute the victim's partition from the surviving buddy image
  /// instead of aborting (docs/ROBUSTNESS.md §Graceful degradation). The
  /// clean ledger stays bitwise fault-invariant — the solvers' pinned FP
  /// reduction order is partition-parametric, not world-size-parametric —
  /// while agree/shrink/redistribute/replay and the adopter's overload ride
  /// the fault ledger (Result::degradation_stats, recovery.degrade.*
  /// metrics). Only running out of survivors (FaultKind::kNoSurvivors) is
  /// still terminal.
  bool degrade = false;
  /// Straggler mitigation: when the progress-watermark watchdog classifies
  /// this rank as a straggler (fault-clock lag growth beyond
  /// RecoveryModel::straggler_lag between checkpoint epochs, only while
  /// rank-stall schedules are configured), trigger a load-aware repartition
  /// — two survivor agreement sweeps plus one repartition sweep on the
  /// fault ledger — instead of merely diagnosing. Mitigation forgives the
  /// accrued lag (the watermark resets), modeling work shed to peers. The
  /// clean ledger is bitwise invariant either way; costs land on
  /// ElasticityStats (Result::elasticity_stats, recovery.straggler.*).
  bool rebalance = false;
};

/// A received message.
struct Message {
  int src = 0;             ///< sender's rank within the communicator
  int tag = 0;
  std::vector<Real> data;  ///< payload
  double arrival = 0.0;    ///< virtual arrival time at the receiver
};

namespace detail {
class ClusterState;
class CommGroup;
struct RankCtx;
}  // namespace detail

class Trace;  // trace/trace.hpp — merged per-event trace of a traced run

/// RAII annotation span opened by Comm::annotate. Zero virtual-clock cost;
/// records [open vt, close vt] into the rank's trace buffer (no-op when
/// tracing is off). Closed by destruction; do not hold across reset_clock
/// (the record is dropped, harmlessly, because reset wipes the buffer).
class TraceSpan {
 public:
  TraceSpan(TraceSpan&& other) noexcept;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  TraceSpan& operator=(TraceSpan&&) = delete;
  ~TraceSpan();

 private:
  friend class Comm;
  TraceSpan(detail::RankCtx* ctx, const char* label, std::int64_t arg);
  detail::RankCtx* ctx_ = nullptr;  // null when tracing is off
  std::size_t index_ = 0;           // span record to close
  std::uint64_t epoch_ = 0;         // guards against reset_clock in between
};

/// RAII registration of a checkpoint/restore hook pair opened by
/// Comm::register_checkpoint. Hooks form a per-rank stack (strictly LIFO —
/// destroy in reverse registration order): Comm::checkpoint_epoch captures
/// through the innermost hook, and crash recovery verifies a restored image
/// against the innermost hook whose label matches the image. The optional
/// sdc_state exposure additionally anchors memory-fault injection and ABFT
/// verification at the same epochs. No-op (and cost-free) unless the
/// machine's crash model, an SDC schedule, or RunOptions::abft is active.
class CheckpointScope {
 public:
  CheckpointScope(CheckpointScope&& other) noexcept;
  CheckpointScope(const CheckpointScope&) = delete;
  CheckpointScope& operator=(const CheckpointScope&) = delete;
  CheckpointScope& operator=(CheckpointScope&&) = delete;
  ~CheckpointScope();

 private:
  friend class Comm;
  CheckpointScope(detail::RankCtx* ctx, std::size_t index)
      : ctx_(ctx), index_(index) {}
  detail::RankCtx* ctx_ = nullptr;  // null when the crash model is off
  std::size_t index_ = 0;           // hook-stack depth to pop back to
};

/// Per-rank communicator handle (value type; cheap to copy). Created by
/// `Cluster::run` for the world and by `split` for subgrids.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;
  const MachineModel& machine() const;

  /// Buffered, non-blocking-semantics send (like MPI_Isend with an
  /// implicit buffer): charges the sender its software overhead and stamps
  /// the arrival using the machine's default network link.
  void send(int dst, int tag, std::vector<Real> data,
            TimeCategory cat = TimeCategory::kOther);

  /// Send with explicit link parameters and software overhead — the GPU
  /// layer uses this to model NVSHMEM puts over NVLink vs inter-node links.
  void send_link(int dst, int tag, std::vector<Real> data, const LinkParams& link,
                 double overhead, TimeCategory cat);

  /// Blocking receive; `src`/`tag` may be kAnySource/kAnyTag. Advances the
  /// virtual clock to max(own, arrival) and attributes the wait to `cat`.
  Message recv(int src, int tag, TimeCategory cat = TimeCategory::kOther);

  /// Blocking receive matching any tag in [tag_lo, tag_hi) — used by
  /// message-driven solves so a neighbouring solve's traffic (different tag
  /// window) on the same communicator stays queued.
  Message recv_range(int src, int tag_lo, int tag_hi,
                     TimeCategory cat = TimeCategory::kOther);

  /// Non-blocking: true if a matching message is queued.
  bool probe(int src, int tag);

  /// Collective barrier; clocks synchronize to the group maximum plus a
  /// logarithmic tree cost.
  void barrier(TimeCategory cat = TimeCategory::kOther);

  /// Collective elementwise sum; models recursive-doubling cost.
  std::vector<Real> allreduce_sum(std::span<const Real> v, TimeCategory cat);

  /// Collective max of a scalar (convenience for makespan / stats).
  double allreduce_max(double v);

  /// Splits into subcommunicators by color, ranked by (key, old rank).
  /// Setup cost is not charged (grids/trees are precomputed in the paper).
  Comm split(int color, int key);

  // --- ULFM-style recovery primitives (docs/ROBUSTNESS.md) ---
  /// Marks this communicator revoked (ULFM MPI_Comm_revoke): every pending
  /// and future point-to-point or collective operation on it, at every
  /// member, fails with FaultKind::kRevoked — blocked peers are woken to
  /// unwind. agree() and shrink() still complete on a revoked communicator,
  /// which is how survivors coordinate the repair. Charges the caller one
  /// software overhead (the notification is one-sided and asynchronous).
  void revoke(TimeCategory cat = TimeCategory::kOther);
  /// True once any member has revoked this communicator.
  bool revoked() const;
  /// Fault-tolerant agreement (ULFM MPIX_Comm_agree): returns the bitwise
  /// AND of every member's `value`, and completes even on a revoked
  /// communicator. Costs two synchronizing tree sweeps (twice a barrier).
  /// Every member must call it; exclude dead ranks with shrink() first (the
  /// in-process model has no asynchronous rank death to tolerate here).
  std::int64_t agree(std::int64_t value, TimeCategory cat = TimeCategory::kOther);
  /// Collectively rebuilds the communicator without the `failed` comm-local
  /// ranks (ULFM MPI_Comm_shrink): only the survivors call (every caller
  /// must pass an identical `failed` list), completion needs exactly
  /// size() - failed.size() arrivals, and it works on a revoked
  /// communicator. Survivors keep their relative order. Costs one
  /// synchronizing tree sweep (one barrier) among the survivors.
  Comm shrink(const std::vector<int>& failed,
              TimeCategory cat = TimeCategory::kOther);

  // --- buddy checkpointing + SDC anchoring (docs/ROBUSTNESS.md; no-ops
  // without a crash model, SDC schedule, or RunOptions::abft) ---
  /// Live mutable solver state exposed for memory-fault injection and ABFT
  /// verification: spans over the words a bit flip could land in, in a
  /// deterministic order (sort map keys before building them). The spans
  /// must stay valid for the duration of the checkpoint_epoch call that
  /// fetches them.
  using SdcStateFn = std::function<std::vector<std::span<Real>>()>;
  /// Pushes a checkpoint/restore hook pair for the enclosing algorithm
  /// phase. `capture` serializes this rank's replayable solve state (called
  /// at each checkpoint_epoch); `restore` is handed the latest image during
  /// crash recovery and must verify it against the live state (throw
  /// std::logic_error on a mismatch — a broken image is a checkpoint bug,
  /// not a modeled fault). `sdc_state`, when provided, exposes the live
  /// words the SDC layer may flip and the ABFT layer checksums at each
  /// epoch. `label` must outlive the run (string literal).
  CheckpointScope register_checkpoint(
      const char* label, std::function<std::vector<Real>()> capture,
      std::function<void(const CheckpointImage&)> restore,
      SdcStateFn sdc_state = {});
  /// Level-boundary epoch: runs the SDC injection/ABFT verification pass
  /// over the innermost hook's exposed state, then captures that state and
  /// ships it to this rank's buddy. All cost rides the fault ledger only —
  /// the clean clock never moves — so epoch cadence cannot perturb the
  /// modeled solve. `arg` tags the trace marker (level id, row count).
  void checkpoint_epoch(std::int64_t arg = -1);

  // --- virtual clock ---
  double vtime() const;
  void advance(double seconds, TimeCategory cat);
  /// Advances by flops / machine CPU rate, attributed to FP.
  void compute(double flops);
  /// Zeroes this rank's clock, category accumulators and message counters
  /// (call after a barrier so ranks restart together; setup is untimed
  /// this way).
  void reset_clock();
  double category_time(TimeCategory cat) const;

  // --- message accounting (validates the paper's message-count claims) ---
  /// Messages this rank sent in `cat` since reset_clock. A point-to-point
  /// send counts one; `barrier` and `allreduce_sum` add the
  /// 2*ceil(log2 P) tree messages their cost model charges (docs/MODEL.md
  /// §collectives); `allreduce_max` and `split` are untimed bookkeeping and
  /// count nothing.
  std::int64_t messages_sent(TimeCategory cat) const;
  /// Payload bytes this rank sent in `cat` since reset_clock. Each modeled
  /// `allreduce_sum` tree message carries the full vector payload;
  /// `barrier` messages are zero-byte.
  std::int64_t bytes_sent(TimeCategory cat) const;

  // --- fault ledger (docs/ROBUSTNESS.md; all zero without delivery faults) ---
  /// This rank's fault clock: the clean clock plus every recovery delay
  /// (retransmit timeouts, straggler flights) the reliable transport
  /// absorbed. Bitwise equal to vtime() when no delivery faults are set.
  double fault_vtime() const;
  /// This rank's reliable-transport counters since reset_clock.
  const TransportStats& transport_stats() const;
  /// This rank's crash-recovery counters since reset_clock (crashes
  /// absorbed, checkpoint epochs/bytes, detection/repair/restore/replay
  /// time). All zero without a crash model.
  const RecoveryStats& recovery_stats() const;
  /// This rank's SDC/ABFT counters since reset_clock (flips injected /
  /// detected / corrected, epoch checks, verification and repair time).
  /// All zero without an SDC schedule or RunOptions::abft.
  const SdcStats& sdc_stats() const;

  /// Opens a zero-cost annotation span labeled `label` (must be a string
  /// literal or otherwise outlive the run) with an optional caller-chosen
  /// discriminator `arg` (level, row id, ...). The span closes when the
  /// returned object is destroyed. No-op unless RunOptions::trace is set.
  TraceSpan annotate(const char* label, std::int64_t arg = -1) const;

  // --- metrics (docs/OBSERVABILITY.md §Metrics; no-ops unless
  // RunOptions::metrics) ---
  /// Find-or-register a counter in this rank's registry. Returns a
  /// null-safe handle: register once outside the loop, bump inside it —
  /// the bump never allocates. With metrics off the handle is null and
  /// add() is one branch.
  MetricsRegistry::Counter metric_counter(const char* name) const;
  /// Find-or-register a gauge (point-in-time double).
  MetricsRegistry::Gauge metric_gauge(const char* name) const;
  /// Find-or-register a fixed-bucket histogram; `bounds` must ascend.
  MetricsRegistry::Histogram metric_histogram(
      const char* name, std::span<const double> bounds) const;

 private:
  friend class Cluster;
  friend class detail::CommGroup;
  Comm(std::shared_ptr<detail::CommGroup> group, int rank, detail::RankCtx* ctx)
      : group_(std::move(group)), rank_(rank), ctx_(ctx) {}

  std::shared_ptr<detail::CommGroup> group_;
  int rank_ = 0;
  detail::RankCtx* ctx_ = nullptr;  // owned by ClusterState, outlives Comm
  std::int64_t coll_gen_ = 0;       // this rank's collective sequence number
};

/// Per-rank outcome of a cluster run. The first four fields are the clean
/// ledger (fault-free by construction, hashed by Result::fingerprint);
/// fault_vtime and transport carry the reliable transport's recovery cost
/// and traffic, and coincide with the clean ledger when no delivery faults
/// are configured.
struct RankStats {
  double vtime = 0.0;
  double category[kNumTimeCategories] = {0, 0, 0, 0};
  std::int64_t messages[kNumTimeCategories] = {0, 0, 0, 0};
  std::int64_t bytes[kNumTimeCategories] = {0, 0, 0, 0};
  double fault_vtime = 0.0;
  TransportStats transport;
  RecoveryStats recovery;
  SdcStats sdc;
  DegradationStats degradation;
  ElasticityStats elasticity;
};

/// Distribution summary of one per-rank statistic (Figs 7-8 load-balance
/// plots). Percentiles use the nearest-rank method, so every reported value
/// is an actual rank's value.
struct Spread {
  double min = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  /// Max-over-mean load-imbalance ratio (1.0 = perfectly balanced).
  double imbalance() const { return mean > 0.0 ? max / mean : 0.0; }
};

/// Summarizes one value per rank into a Spread.
Spread spread_over(std::span<const double> values);

/// Spawns `nranks` rank threads, runs `rank_fn` on each, joins, and returns
/// the virtual-clock statistics. Exceptions thrown by any rank are
/// rethrown (first one wins) after all threads have been joined.
class Cluster {
 public:
  struct Result {
    std::vector<RankStats> ranks;
    /// Merged event trace; non-null iff RunOptions::trace was set.
    std::shared_ptr<const Trace> trace;
    /// First fault a rank hit (kind == FaultKind::kNone on success). Only
    /// populated by try_run — plain run throws instead.
    FaultReport fault;
    /// First error message of a failed try_run ("" on success).
    std::string error;
    /// Grant-decision record of a deterministic run (empty grants
    /// otherwise). Feed it back through RunOptions::replay_schedule to
    /// reproduce this exact interleaving — docs/TESTING.md shows the
    /// one-liner.
    ScheduleCertificate schedule;
    /// Merged per-rank metrics; non-null iff RunOptions::metrics was set.
    /// Built even for a faulted run (the counters up to the abort are the
    /// post-mortem evidence).
    std::shared_ptr<const MetricsReport> metrics;
    bool ok() const { return error.empty(); }
    /// Modeled solve makespan: max vtime over ranks.
    double makespan() const;
    /// Makespan on the fault clock: max fault_vtime over ranks — the clean
    /// makespan plus the recovery delay on the slowest rank.
    double fault_makespan() const;
    /// Sum of every rank's reliable-transport counters.
    TransportStats transport_totals() const;
    /// Sum of every rank's crash-recovery counters (crashes, checkpoint
    /// epochs and bytes, detection/repair/restore/replay time). All zero
    /// without a crash model — recovery cost never reaches the clean ledger.
    RecoveryStats recovery_stats() const;
    /// Sum of every rank's SDC/ABFT counters (flips injected / detected /
    /// corrected / escalated, epoch checks, residual checks, degraded-mode
    /// refinement iterations, verify/repair/residual time). All zero
    /// without an SDC schedule or ABFT — like every other fault class, SDC
    /// cost never reaches the clean ledger.
    SdcStats sdc_stats() const;
    /// Sum of every rank's graceful-degradation counters (shrinks, ranks
    /// lost, partitions adopted, redistribution traffic, agree/shrink/
    /// redistribute/replay/overload time). All zero unless
    /// RunOptions::degrade absorbed an otherwise-unrecoverable crash.
    /// The overload_mult component merges with max semantics: the worst
    /// post-shrink multiplier any partition ran under.
    DegradationStats degradation_stats() const;
    /// Sum of every rank's elasticity counters (spare returns, world
    /// re-expansions, partition hand-backs, straggler classifications and
    /// mitigation sweeps, with their fault-clock time). All zero unless a
    /// spare return re-expanded a degraded world or the straggler watchdog
    /// fired — armed-but-inert repair schedules leave every field zero.
    ElasticityStats elasticity_stats() const;
    /// Mean over ranks of one category (paper plots rank-averaged bars).
    double mean_category(TimeCategory cat) const;
    double max_category(TimeCategory cat) const;
    double min_category(TimeCategory cat) const;
    /// Distribution of one category's per-rank time (p50/p99/max/imbalance).
    Spread category_spread(TimeCategory cat) const;
    /// Distribution of per-rank total virtual times.
    Spread vtime_spread() const;
    /// Order-sensitive hash of every per-rank *clean-ledger* statistic
    /// (clock bits, category times, message/byte counts). Two deterministic
    /// runs of the same program must produce equal fingerprints;
    /// repeatability checks and benches compare this single value. Delivery
    /// faults never move it — that is the reliable transport's contract.
    std::uint64_t fingerprint() const;
    /// fingerprint() extended with the fault ledger (fault clocks,
    /// transport counters and recovery counters) — pins the *fault
    /// schedule* itself, so a seeded faulty run is bit-reproducible end to
    /// end.
    std::uint64_t fault_fingerprint() const;
  };

  /// Runs `rank_fn(comm)` on every rank of a world of size `nranks`.
  /// A rank's exception (including FaultError) is rethrown after join.
  static Result run(int nranks, const MachineModel& machine,
                    const std::function<void(Comm&)>& rank_fn,
                    const RunOptions& opts = {});

  /// Like run, but never throws on a rank failure: the Result carries the
  /// first error string and, for fault-terminated runs, the structured
  /// FaultReport (docs/ROBUSTNESS.md). Statistics reflect the state at
  /// abort. Invalid arguments still throw.
  static Result try_run(int nranks, const MachineModel& machine,
                        const std::function<void(Comm&)>& rank_fn,
                        const RunOptions& opts = {});

 private:
  /// Shared body of run/try_run: always returns the statistics gathered up
  /// to completion or abort, and hands the first per-rank error (if any)
  /// back through `err_out` for the caller to rethrow or record.
  static Result run_impl(int nranks, const MachineModel& machine,
                         const std::function<void(Comm&)>& rank_fn,
                         const RunOptions& opts, std::exception_ptr* err_out);
};

}  // namespace sptrsv
