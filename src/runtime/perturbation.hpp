#pragma once
/// \file perturbation.hpp
/// \brief Time-breakdown categories and the seeded fault/perturbation model.
///
/// The PerturbationModel injects seeded faults into the runtime. The
/// *timing* knobs (latency jitter, scheduled link degradation, per-rank
/// compute skew, delivery-delay windows) perturb the virtual clock only:
/// payloads, message counts and numerical results are never touched, so a
/// solver that is correct must produce bit-identical solutions and message
/// counts under every seed — the invariant tests/test_determinism.cpp
/// asserts. The *delivery* knobs (drop / duplicate / corrupt / reorder
/// probabilities, per-link faults, rank-stall schedules) feed the reliable
/// transport layer (runtime/reliable.hpp, docs/ROBUSTNESS.md): the clean
/// clock and counters still never move, and recovery cost lands on the
/// parallel fault clock and TransportStats ledger instead. Randomness is a
/// pure counter-based hash of (seed, rank, draw index), so a draw does not
/// depend on thread scheduling and a failing seed replays exactly.
///
/// The model is attached to MachineModel (a degraded machine is still a
/// machine); the seed lives in RunOptions so one machine description can be
/// swept over many perturbation seeds.

#include <cstdint>
#include <limits>
#include <vector>

namespace sptrsv {

/// Paper Fig 5-6 time-breakdown buckets.
enum class TimeCategory : int {
  kFp = 0,      ///< floating-point operations
  kXyComm = 1,  ///< intra-grid (2D solve) communication
  kZComm = 2,   ///< inter-grid (between 2D grids) communication
  kOther = 3,   ///< setup, idle at final barrier, uncategorized
};
inline constexpr int kNumTimeCategories = 4;

/// Seeded, timing-only fault injection applied by the runtime's clock.
struct PerturbationModel {
  /// Per-message latency jitter: each send's link latency is multiplied by
  /// 1 + U[0, latency_jitter).
  double latency_jitter = 0.0;
  /// Per-message delivery delay window: U[0, delivery_delay) extra seconds
  /// are added to the message's virtual arrival time.
  double delivery_delay = 0.0;
  /// Per-rank compute skew: a rank's floating-point time is multiplied by a
  /// rank-constant factor drawn from 1 + U[0, compute_skew).
  double compute_skew = 0.0;

  /// Scheduled slowdown of one traffic class: within the virtual-time
  /// window [vt_begin, vt_end), latency is multiplied by `latency_factor`
  /// and bandwidth by `bandwidth_factor` for matching sends.
  struct LinkDegradation {
    /// Traffic class the degradation applies to (matched against the
    /// TimeCategory of the send); ignored when `all_categories` is set.
    TimeCategory category = TimeCategory::kOther;
    bool all_categories = false;
    double vt_begin = 0.0;
    double vt_end = std::numeric_limits<double>::infinity();
    double latency_factor = 1.0;
    double bandwidth_factor = 1.0;
  };
  std::vector<LinkDegradation> degradations;

  // --- delivery faults (reliable transport, docs/ROBUSTNESS.md) ---
  // These never perturb the clean clock/counters; they drive the analytic
  // ack/retransmit simulation whose cost lands on the fault clock.

  /// Probability a network frame (data or ack) is dropped.
  double drop_prob = 0.0;
  /// Probability a delivered, acked data frame is followed by a spurious
  /// duplicate (suppressed by the receiver's sequence numbers).
  double dup_prob = 0.0;
  /// Probability a delivered data frame arrives with flipped payload bits
  /// (caught by the end-to-end checksum; the receiver discards, the sender
  /// times out and retransmits).
  double corrupt_prob = 0.0;
  /// Probability a delivered frame straggles behind later traffic by
  /// U[0, reorder_window) extra virtual seconds. The transport resequences
  /// via per-peer sequence numbers, so the application-visible order is
  /// unchanged; the straggle delay lands on the fault clock.
  double reorder_prob = 0.0;
  double reorder_window = 0.0;

  /// Extra drop probability on one directed link; -1 matches any rank.
  /// The worst matching probability (including the global drop_prob) wins.
  struct LinkFault {
    int src = -1;  ///< sender world rank, -1 = any
    int dst = -1;  ///< receiver world rank, -1 = any
    double drop_prob = 0.0;
  };
  std::vector<LinkFault> link_faults;

  // --- crash-stop failures (recovery layer, docs/ROBUSTNESS.md) ---
  // Crash schedules never perturb the clean clock/counters either: the
  // victim's solve state is restored from its buddy checkpoint and replayed,
  // so the solution and clean ledger are bitwise fault-invariant. Detection
  // latency, ULFM repair collectives, restore traffic and replayed compute
  // land on the fault clock and Result::recovery_stats.

  /// Deterministic crash schedule: kill world rank `rank` the first time its
  /// clean virtual clock reaches `vt` (interpreted on the post-reset_clock
  /// clock, i.e. relative to solve start when the solver resets the clock).
  struct Crash {
    int rank = -1;
    double vt = 0.0;
  };
  std::vector<Crash> crashes;

  /// Poisson crash model: each rank draws exponential inter-failure times
  /// with this mean (seconds of clean virtual time); 0 disables. Draws come
  /// from a dedicated salted stream (kCrashStreamSalt) with its own per-rank
  /// counter, so enabling MTBF crashes never shifts a timing or delivery
  /// draw.
  double crash_mtbf = 0.0;
  /// Cap on MTBF-generated crashes per rank (a rank is adopted by a spare
  /// after each crash, so >1 models repeated failures of the same slot).
  int crash_max_per_rank = 1;

  // --- spare-return (repair) events (elastic re-expansion,
  // docs/ROBUSTNESS.md §Elasticity lifecycle) ---
  // A repaired node rejoins the machine: if the returning rank was degraded
  // away earlier (RunOptions::degrade), the runtime re-agrees, re-expands
  // the world and hands the adopted partition back, restoring the original
  // parallelism. Returns for ranks that are alive are inert. Like every
  // other fault class the clean ledger never moves; re-agree/expand/
  // transfer/replay cost lands on the fault clock and ElasticityStats.

  /// Deterministic spare-return schedule: world rank `rank`'s repaired node
  /// rejoins the first time the clean clock reaches `vt` (interpreted on
  /// the post-reset_clock clock, like Crash::vt).
  struct NodeReturn {
    int rank = -1;
    double vt = 0.0;
  };
  std::vector<NodeReturn> returns;

  /// Poisson repair model: each rank draws exponential repair times with
  /// this mean (seconds of clean virtual time); 0 disables. Draws come from
  /// a dedicated salted stream (kRepairStreamSalt) with its own per-rank
  /// counter, so arming repair never shifts a timing, delivery, crash or
  /// SDC draw.
  double repair_mtbf = 0.0;
  /// Cap on MTBF-generated returns per rank (explicit `returns` entries are
  /// never capped).
  int repair_max_per_rank = 1;

  /// Deterministic checkpoint-image corruption: flip one bit in the image
  /// rank `rank` captures at epoch `epoch`, after its payload checksum is
  /// stamped — so the corruption is latent until a restore or degrade fetch
  /// validates the image, rejects it (RecoveryStats::image_rejects) and
  /// escalates to replay-from-start instead of resurrecting bad state.
  struct CheckpointFault {
    int rank = -1;
    std::int64_t epoch = -1;
  };
  std::vector<CheckpointFault> ckpt_faults;

  // --- silent data corruption (ABFT layer, docs/ROBUSTNESS.md) ---
  // Memory faults flip bits in modeled solver state (solution entries,
  // local factor values, reduction partials) at level/epoch boundaries.
  // With RunOptions::abft the flips are detected and corrected on the spot
  // and — like every other fault class — the clean clock, counters and
  // solution stay bitwise fault-invariant; without ABFT the corruption
  // persists into the solution and is caught (if at all) by the end-of-solve
  // residual check. Draws come from a dedicated salted stream
  // (kMemStreamSalt) with its own per-rank counter, so arming SDC injection
  // never shifts a timing, delivery or crash draw.

  /// Which class of modeled solver state a memory fault lands in. All
  /// classes corrupt live solve state; the target is kept for attribution
  /// (per-target stats and flight-recorder entries).
  enum class MemFaultTarget : int {
    kX = 0,        ///< a solution / RHS entry
    kLValues = 1,  ///< a local factor value feeding the next updates
    kPartial = 2,  ///< a reduction partial sum
  };

  /// Deterministic memory-fault schedule: flip one bit in `rank`'s solver
  /// state at the first epoch boundary whose clean clock reaches `vt`
  /// (interpreted on the post-reset_clock solve clock, like Crash::vt).
  struct MemFault {
    int rank = -1;
    double vt = 0.0;
    MemFaultTarget target = MemFaultTarget::kX;
  };
  std::vector<MemFault> mem_faults;

  /// Poisson SDC model: each rank draws exponential inter-fault times with
  /// mean 1/sdc_rate (faults per second of clean virtual time); 0 disables.
  double sdc_rate = 0.0;
  /// Cap on rate-generated memory faults per rank (explicit mem_faults are
  /// never capped).
  int sdc_max_per_rank = 4;

  /// Scheduled rank stall: within the sender-clock window
  /// [vt_begin, vt_end), frames to or from `rank` either crawl (flight
  /// multiplied by `flight_factor` — a slow straggler) or, if `permanent`,
  /// are never delivered at all (an outage; retransmits that land past
  /// vt_end recover, an infinite window exhausts the retry budget and
  /// surfaces as a FaultReport).
  struct RankStall {
    int rank = -1;  ///< world rank, -1 = any
    double vt_begin = 0.0;
    double vt_end = std::numeric_limits<double>::infinity();
    double flight_factor = 1.0;
    bool permanent = false;
  };
  std::vector<RankStall> stalls;

  /// True if any timing knob deviates from the identity model (these alter
  /// the clean virtual clock).
  bool active() const {
    return latency_jitter > 0.0 || delivery_delay > 0.0 || compute_skew > 0.0 ||
           !degradations.empty();
  }

  /// True if any delivery-fault knob is set (these engage the reliable
  /// transport; the clean clock and counters are still never altered).
  bool delivery_active() const {
    return drop_prob > 0.0 || dup_prob > 0.0 || corrupt_prob > 0.0 ||
           reorder_prob > 0.0 || !link_faults.empty() || !stalls.empty();
  }

  /// True if any crash-stop knob is set (these engage heartbeat detection,
  /// buddy checkpointing and the ULFM-style recovery path; the clean clock,
  /// counters and solution are still never altered).
  bool crash_active() const { return !crashes.empty() || crash_mtbf > 0.0; }

  /// True if any silent-data-corruption knob is set (these inject memory
  /// faults at epoch boundaries; with ABFT the clean ledger and solution
  /// are still never altered).
  bool sdc_active() const { return !mem_faults.empty() || sdc_rate > 0.0; }

  /// True if any spare-return knob is set (these can re-expand a degraded
  /// world under RunOptions::degrade; the clean ledger is still never
  /// altered, and with no preceding degrade events they are fully inert).
  bool repair_active() const { return !returns.empty() || repair_mtbf > 0.0; }
};

namespace detail {

/// SplitMix64: the counter-based generator behind every perturbation draw.
inline std::uint64_t hash64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform draw in [0, 1) as a pure function of (seed, rank, sequence
/// number) — identical across runs regardless of thread interleaving.
inline double perturb_uniform(std::uint64_t seed, std::uint64_t rank,
                              std::uint64_t seq) {
  const std::uint64_t h = hash64(hash64(seed ^ (rank << 32)) ^ seq);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace detail

}  // namespace sptrsv
