#include "runtime/machine.hpp"

namespace sptrsv {

MachineModel MachineModel::cori_haswell() {
  MachineModel m;
  m.name = "cori-haswell";
  // E5-2698v3 core: ~2.3 GHz, solve kernels are memory-bound GEMV; a few
  // Gflop/s sustained per core is representative.
  m.cpu_flop_rate = 3.0e9;
  m.mpi_overhead = 1.0e-6;
  m.net = {/*latency=*/1.5e-6, /*bandwidth=*/8.0e9};  // Cray Aries class
  // No GPUs on the Haswell partition; GPU fields left at defaults and
  // unused by the CPU benches.
  m.gpus_per_node = 0;
  return m;
}

MachineModel MachineModel::perlmutter() {
  MachineModel m;
  m.name = "perlmutter";
  m.cpu_flop_rate = 6.0e9;  // EPYC 7763 core
  m.mpi_overhead = 0.8e-6;
  m.net = {/*latency=*/1.8e-6, /*bandwidth=*/12.5e9};  // Slingshot 11 per rank
  // A100 sustained rate for 1-RHS supernodal GEMV (bandwidth-bound, partial
  // occupancy); calibrated so the modeled CPU->GPU speedups land in the
  // paper's 4.6x-6.5x range. Multi-RHS kernels gain the GEMM boost (see
  // GpuExecModel::gemm_boost).
  m.gpu_flop_rate = 1.1e11;
  m.gpu_sms = 24;   // bandwidth slots (see machine.hpp)
  m.gpu_gemm_boost_cap = 4.0;  // 50-RHS speedups track the 1-RHS ones (Fig 10)
  m.gpu_task_overhead = 1.5e-6;
  m.nvshmem_latency = 1.0e-6;
  m.nvshmem_latency_internode = 6.0e-6;
  m.bw_gpu_intranode = 300e9;  // NVLink3 per direction
  m.bw_gpu_internode = 12.5e9; // paper: 25 GB/s node, per GPU per direction
  m.gpus_per_node = 4;
  m.shmem_subcomm_support = true;
  return m;
}

MachineModel MachineModel::crusher() {
  MachineModel m;
  m.name = "crusher";
  m.cpu_flop_rate = 5.0e9;  // EPYC 7A53 core
  m.mpi_overhead = 0.8e-6;
  m.net = {/*latency=*/2.0e-6, /*bandwidth=*/12.5e9};
  // MI250X GCD: competitive peak but the paper observes much lower SpTRSV
  // CPU-GPU speedups on Crusher (up to 1.8x/2.9x vs 6.5x on Perlmutter),
  // which the lower sustained solve rate and higher task overhead model.
  m.gpu_flop_rate = 0.28e11;
  m.gpu_sms = 12;   // bandwidth slots (see machine.hpp)
  m.gpu_gemm_boost_cap = 6.0;  // Crusher's 50-RHS speedups exceed 1-RHS (Fig 9)
  m.gpu_task_overhead = 4e-6;
  m.nvshmem_latency = 1.5e-6;
  m.nvshmem_latency_internode = 8.0e-6;
  m.bw_gpu_intranode = 200e9;   // Infinity Fabric class
  m.bw_gpu_internode = 12.5e9;
  m.gpus_per_node = 8;          // 4 MI250X = 8 GCDs, 1 rank per GCD
  m.shmem_subcomm_support = false;  // ROC-SHMEM limitation (paper §3.4)
  return m;
}

}  // namespace sptrsv
