#pragma once
/// \file machine.hpp
/// \brief Performance-model parameter sets for the paper's three machines.
///
/// The reproduction runs on one box, so wall-clock time at 2048 ranks is
/// meaningless; instead every rank carries a virtual clock advanced by a
/// LogGP-style cost model parameterized per machine. Parameters follow the
/// hardware description in §4 / Appendix A of the paper (Cray Aries and
/// Slingshot latencies/bandwidths, A100/MI250X rates, 4 GPUs per node,
/// NVLink 300 GB/s vs inter-node 12.5 GB/s per direction per GPU). Absolute
/// accuracy is not the goal — regime boundaries (latency-bound DAG chains,
/// the intra/inter-node GPU bandwidth cliff) are.

#include <string>

#include "runtime/abft.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/perturbation.hpp"
#include "runtime/reliable.hpp"

namespace sptrsv {

/// One point-to-point link: first-byte latency plus stream bandwidth.
struct LinkParams {
  double latency = 1e-6;       ///< seconds to first byte
  double bandwidth = 10.0e9;   ///< bytes/second
};

/// Machine performance model used by the virtual clock.
struct MachineModel {
  std::string name;

  // --- CPU side ---
  double cpu_flop_rate = 5.0e9;   ///< sustained flops/s per rank (one core)
  double mpi_overhead = 0.5e-6;   ///< CPU send/recv software overhead (s)
  LinkParams net;                 ///< inter-rank MPI network link

  // --- GPU side ---
  double gpu_flop_rate = 5.0e11;  ///< sustained flops/s per GPU (solve kernels)
  /// Concurrency slots of the execution model. Solve kernels are
  /// memory-bound, and a GPU's bandwidth saturates with O(10) resident
  /// blocks, so this is the bandwidth-slot count (aggregate = gpu_flop_rate
  /// when all slots are busy; a lone thread block gets 1/slots of it), not
  /// the physical SM count.
  int gpu_sms = 16;
  /// Saturation cap of the multi-RHS GEMM-efficiency boost for GPU solve
  /// kernels (see GpuExecModel::gemm_boost). CPU cores cap at 4.
  double gpu_gemm_boost_cap = 4.0;
  double gpu_task_overhead = 2e-6;///< per block-column scheduling/spin cost (s)
  double nvshmem_latency = 1e-6;  ///< one-sided put latency, same node (s)
  /// One-sided put latency crossing nodes (NIC + network); several times
  /// the NVLink latency — with the bandwidth cliff below, this is what
  /// stops the 2D GPU algorithm at one node (paper Fig 11).
  double nvshmem_latency_internode = 6e-6;
  double bw_gpu_intranode = 300e9;///< NVLink-class bandwidth (bytes/s)
  double bw_gpu_internode = 12.5e9;///< Slingshot per-GPU bandwidth (bytes/s)
  int gpus_per_node = 4;
  /// ROC-SHMEM (Crusher) lacks MPI subcommunicator support, so 2D grids
  /// larger than 1x1 are not allowed on that machine (paper §3.4).
  bool shmem_subcomm_support = true;

  /// Seeded fault injection: timing knobs (latency jitter, link degradation
  /// schedules, compute skew, delivery delays) perturb the clean clock;
  /// delivery knobs (drop/dup/corrupt/reorder, rank stalls) engage the
  /// reliable transport (docs/ROBUSTNESS.md). Inactive by default; the seed
  /// driving its draws lives in RunOptions (see cluster.hpp).
  PerturbationModel perturb;

  /// Reliable-transport tuning (retransmit timeout, backoff, retry budget,
  /// ack size). Only consulted while perturb.delivery_active().
  TransportOptions transport;

  /// Crash-stop recovery tuning (heartbeat detector, spare pool, buddy
  /// checkpoint/restore/replay costs; docs/ROBUSTNESS.md). Only consulted
  /// while perturb.crash_active().
  RecoveryModel recovery;

  /// ABFT checksum/recompute cost model and the end-of-solve residual gate
  /// (docs/ROBUSTNESS.md). Only consulted while RunOptions::abft or
  /// perturb.sdc_active().
  AbftModel abft;

  /// Cori Haswell: Xeon E5-2698v3 cores, Cray Aries. CPU-only experiments
  /// (paper Fig 4-8).
  static MachineModel cori_haswell();
  /// Perlmutter GPU partition: EPYC 7763 + 4x A100, Slingshot 11
  /// (paper Fig 10-11).
  static MachineModel perlmutter();
  /// Crusher: EPYC 7A53 + 4x MI250X (8 GCDs), Slingshot; no ROC-SHMEM
  /// subcommunicators (paper Fig 9).
  static MachineModel crusher();
};

}  // namespace sptrsv
