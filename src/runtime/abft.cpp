#include "runtime/abft.hpp"

#include <algorithm>
#include <cmath>

namespace sptrsv {

namespace {

/// Salt separating the memory-fault stream from the timing, delivery and
/// crash streams: arming SDC injection must not shift any other draw, or an
/// SDC run would stop matching its fault-free twin.
constexpr std::uint64_t kMemStreamSalt = 0x5DCBADB175EEDULL;

double sdc_uniform(std::uint64_t seed, int rank, std::uint64_t* mseq) {
  return detail::perturb_uniform(detail::hash64(seed ^ kMemStreamSalt),
                                 static_cast<std::uint64_t>(rank), (*mseq)++);
}

/// Fills the predrawn choices of one event from the rank's salted stream:
/// target (explicit faults carry their own), word, bit in 46..49 (relative
/// perturbation 2^-6..2^-3 — large enough to trip the residual gate, small
/// enough that refinement repair converges), and the recompute-refail draw.
void draw_event_body(SdcEvent& ev, bool draw_target, std::uint64_t seed,
                     int rank, std::uint64_t* mseq) {
  const double tu = sdc_uniform(seed, rank, mseq);
  if (draw_target) {
    ev.target = static_cast<PerturbationModel::MemFaultTarget>(
        static_cast<int>(tu * 3.0) % 3);
  }
  ev.word_draw = static_cast<std::uint64_t>(sdc_uniform(seed, rank, mseq) *
                                            0x1.0p53);
  ev.bit = 46 + static_cast<int>(sdc_uniform(seed, rank, mseq) * 4.0) % 4;
  ev.refail_draw = sdc_uniform(seed, rank, mseq);
}

}  // namespace

SdcPlan build_sdc_plan(const PerturbationModel& pm, std::uint64_t seed,
                       int nranks) {
  SdcPlan plan;
  plan.by_rank.resize(static_cast<std::size_t>(nranks));
  // One counter per rank covers both the explicit-fault body draws and the
  // Poisson arrivals, in a fixed order (explicit faults in schedule order
  // first, then the rate stream), so the plan is reproducible.
  std::vector<std::uint64_t> mseq(static_cast<std::size_t>(nranks), 0);
  for (const auto& f : pm.mem_faults) {
    if (f.rank < 0 || f.rank >= nranks || !(f.vt >= 0.0)) continue;
    SdcEvent ev;
    ev.vt = f.vt;
    ev.target = f.target;
    draw_event_body(ev, /*draw_target=*/false, seed, f.rank,
                    &mseq[static_cast<std::size_t>(f.rank)]);
    plan.by_rank[static_cast<std::size_t>(f.rank)].push_back(ev);
  }
  if (pm.sdc_rate > 0.0) {
    const double mean = 1.0 / pm.sdc_rate;
    for (int r = 0; r < nranks; ++r) {
      double t = 0.0;
      for (int k = 0; k < pm.sdc_max_per_rank; ++k) {
        // Exponential inter-fault gap; 1-u keeps the argument in (0, 1].
        const double u = sdc_uniform(seed, r, &mseq[static_cast<std::size_t>(r)]);
        t += -mean * std::log(1.0 - u);
        SdcEvent ev;
        ev.vt = t;
        draw_event_body(ev, /*draw_target=*/true, seed, r,
                        &mseq[static_cast<std::size_t>(r)]);
        plan.by_rank[static_cast<std::size_t>(r)].push_back(ev);
      }
    }
  }
  for (auto& v : plan.by_rank) {
    std::stable_sort(v.begin(), v.end(),
                     [](const SdcEvent& a, const SdcEvent& b) { return a.vt < b.vt; });
  }
  return plan;
}

}  // namespace sptrsv
