#pragma once
/// \file reliable.hpp
/// \brief Reliable transport over the lossy modeled network
/// (docs/ROBUSTNESS.md).
///
/// When PerturbationModel::delivery_active() — drops, duplicates,
/// corruption, reordering, rank stalls — every point-to-point message rides
/// a stop-and-wait ack/retransmit protocol: per-sender sequence numbers, an
/// end-to-end payload checksum, positive acks, virtual-clock retransmit
/// timeouts with exponential backoff and a capped retry budget, and
/// receiver-side duplicate suppression. The protocol is simulated
/// *analytically* at send time (simulate_transport): the sequence of frame
/// fates is a pure counter-based function of (seed, sender rank, fault draw
/// index), so a fault schedule replays exactly and is independent of thread
/// scheduling.
///
/// Two-ledger accounting is the load-bearing invariant: the clean virtual
/// clock, category times and message/byte counters — everything behind
/// Cluster::Result::fingerprint() — never see a fault. Recovery delay
/// accrues on a parallel per-rank *fault clock* (Comm::fault_vtime), and
/// retransmit/ack/duplicate traffic accrues in TransportStats. A run with
/// no faults configured is bypass-free: both ledgers coincide bit for bit.
///
/// A message the protocol cannot deliver (retry budget exhausted, permanent
/// rank stall) surfaces as a structured FaultError at the blocking receive,
/// naming rank, peer, tag and retry count — never as a hung run. The
/// virtual-clock watchdog in the cluster runtime covers the remaining hang
/// class (a receive no send will ever match) the same way.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/perturbation.hpp"
#include "sparse/types.hpp"

namespace sptrsv {

/// Reliable-transport tuning (attached to MachineModel::transport).
struct TransportOptions {
  /// Initial retransmit timeout in virtual seconds; 0 = auto, twice the
  /// modeled round trip (data flight + ack flight + 2 software overheads).
  double rto = 0.0;
  /// Exponential backoff factor applied to the timeout per retry.
  double backoff = 2.0;
  /// Retransmissions of one message before the transport gives up and the
  /// receive fails with FaultKind::kRetriesExhausted.
  int max_retries = 12;
  /// Modeled size of an ack frame (bytes) for the fault-ledger byte counts.
  double ack_bytes = 16.0;
};

/// Per-rank reliable-transport counters — the fault ledger. Sender-side
/// fields (frames, retransmits, timeouts, drops) accrue at the sending
/// rank; receiver-side fields (acks, duplicates, corruption detections,
/// resequenced stragglers) accrue at the receiving rank when the message is
/// taken. All zero when no delivery faults are configured.
struct TransportStats {
  std::int64_t data_frames = 0;    ///< data frames on the wire (first send + retransmits)
  std::int64_t retransmits = 0;    ///< data frames beyond each message's first attempt
  std::int64_t retrans_bytes = 0;  ///< payload bytes of those retransmissions
  std::int64_t timeouts = 0;       ///< retransmit-timer expiries at the sender
  std::int64_t frames_dropped = 0; ///< frames (data or ack) the network dropped
  std::int64_t acks = 0;           ///< ack frames the receiver returned
  std::int64_t ack_bytes = 0;      ///< modeled bytes of that ack traffic
  std::int64_t corrupt_detected = 0; ///< data frames rejected by the checksum
  std::int64_t duplicates = 0;     ///< duplicate data frames suppressed by seqno
  std::int64_t reordered = 0;      ///< straggler frames resequenced on arrival

  TransportStats& operator+=(const TransportStats& o) {
    data_frames += o.data_frames;
    retransmits += o.retransmits;
    retrans_bytes += o.retrans_bytes;
    timeouts += o.timeouts;
    frames_dropped += o.frames_dropped;
    acks += o.acks;
    ack_bytes += o.ack_bytes;
    corrupt_detected += o.corrupt_detected;
    duplicates += o.duplicates;
    reordered += o.reordered;
    return *this;
  }
  bool any() const {
    return data_frames != 0 || acks != 0 || duplicates != 0 || reordered != 0;
  }
};

/// Why a run terminated on a fault instead of completing.
enum class FaultKind : int {
  kNone = 0,
  kRetriesExhausted,  ///< transport gave up on a message (loss too heavy)
  kRankStalled,       ///< permanent rank stall swallowed every attempt
  kDeadlock,          ///< watchdog: every live rank blocked, nothing in flight
  kVtLimit,           ///< virtual clock passed RunOptions::vt_limit
  kRevoked,           ///< operation on a communicator revoked after a crash
  kBuddyLoss,         ///< crashed rank and its checkpoint buddy both died
  kSparesExhausted,   ///< more crashes than the spare-rank pool could absorb
  kSilentCorruption,  ///< residual check caught uncorrected memory faults
  kNoSurvivors,       ///< elastic degradation ran out of survivors to adopt
                      ///< the dead ranks' partitions (RunOptions::degrade)
  kStraggler,         ///< slow-but-alive rank flagged by the progress-
                      ///< watermark watchdog (diagnostic only — never
                      ///< terminal; see ElasticityStats::stragglers)
};

const char* fault_kind_name(FaultKind k);

/// Structured description of where a fault-terminated run gave up —
/// Cluster::try_run returns this on the Result instead of a wedged job.
struct FaultReport {
  FaultKind kind = FaultKind::kNone;
  int rank = -1;       ///< world rank that observed the fault
  int peer = -1;       ///< world rank of the other endpoint (-1 if none)
  int tag = 0;         ///< message tag involved (0 if none)
  int retries = 0;     ///< retransmissions spent before giving up
  double vt = 0.0;     ///< observer's clean virtual clock at detection
  std::string detail;  ///< human-readable context ("waiting on (src,tag)", phase)
  /// Flight-recorder dump: each rank's bounded ring of recent runtime
  /// events (sends, receive waits, collectives, crashes), formatted one
  /// line per entry as "rank R: ...". Attached by the cluster runtime when
  /// the run terminates on a fault/deadlock/crash, so a failed run is
  /// diagnosable post-mortem (docs/OBSERVABILITY.md §Flight recorder).
  /// Not part of to_string() — the report stays one-line loggable.
  std::vector<std::string> flight;

  std::string to_string() const;
};

/// Exception carrying a FaultReport; thrown at the blocking receive (or by
/// the watchdog) and surfaced through Cluster::run / try_run.
struct FaultError : std::runtime_error {
  explicit FaultError(FaultReport r);
  FaultReport report;
};

/// Prepends `phase` to the caught fault's detail and rethrows it with a
/// regenerated what() string. Solver layers use this so a report escaping a
/// deep recv names the algorithm phase it unwound through, e.g.
/// "sptrsv3d L-solve: retry budget exhausted ...".
[[noreturn]] void rethrow_with_phase(FaultError& fe, const char* phase);

/// End-to-end payload checksum (FNV-1a over the raw bytes). Stamped on
/// every envelope while delivery faults are active and verified when the
/// receiver takes the message.
std::uint64_t payload_checksum(std::span<const Real> data);

/// Whole-frame checksum: FNV-1a over the frame header (src, dst, tag,
/// sequence number) before the payload bytes, so a corrupted header cannot
/// deliver an intact-looking payload to the wrong wait. This is the checksum
/// the transport actually stamps and verifies; payload_checksum remains for
/// header-free state images (buddy checkpoints).
std::uint64_t frame_checksum(int src, int dst, int tag, std::uint64_t seq,
                             std::span<const Real> data);

/// Worst matching drop probability for one directed frame, combining the
/// global knob with per-link faults.
double drop_prob_for(const PerturbationModel& pm, int src, int dst);

/// Analytic outcome of pushing one message through the lossy network under
/// the ack/retransmit protocol. Counters are split by which endpoint they
/// accrue to (see TransportStats).
struct TransportOutcome {
  int attempts = 1;       ///< data frames sent (1 = clean first try)
  int timeouts = 0;       ///< sender retransmit-timer expiries
  int frames_dropped = 0; ///< data + ack frames the network dropped
  int acks = 0;           ///< acks the receiver sent back
  int corrupt = 0;        ///< data frames the receiver's checksum rejected
  int duplicates = 0;     ///< duplicate data frames the receiver suppressed
  bool reordered = false; ///< the accepted frame straggled and was resequenced
  /// Extra virtual seconds (timeout waits + straggle + stall slowdown) the
  /// accepted copy arrives after the clean arrival — added to the
  /// receiver's fault-clock arrival, never the clean one.
  double extra_delay = 0.0;
  bool failed = false;    ///< no intact copy was ever delivered
  bool stalled = false;   ///< failure was caused by a permanent rank stall
};

/// Simulates the delivery of one message sent src -> dst at sender clock
/// `send_vt` whose clean flight time is `flight` (latency + bytes/BW).
/// `overhead` is the per-frame software overhead, `payload_bytes` sizes the
/// retransmission ledger. Draws consume `*fseq` (the sender's fault-draw
/// counter), making the whole schedule a pure function of
/// (seed, src, draw index).
TransportOutcome simulate_transport(const PerturbationModel& pm,
                                    const TransportOptions& to, std::uint64_t seed,
                                    int src, int dst, double send_vt, double flight,
                                    double ack_flight, double overhead,
                                    std::uint64_t* fseq);

}  // namespace sptrsv
