#pragma once
/// \file abft.hpp
/// \brief Silent-data-corruption model: memory-fault plans and the
/// algorithm-based fault tolerance (ABFT) cost/ledger model
/// (docs/ROBUSTNESS.md).
///
/// PR 3 made the runtime survive a lossy network, PR 4 a lossy membership;
/// this layer makes it survive lossy *memory*. A memory-fault schedule
/// (explicit rank/vt/target triples or a Poisson sdc_rate stream) flips one
/// mantissa bit of live solver state at level/epoch boundaries. With
/// RunOptions::abft the runtime verifies a running checksum of that state at
/// every epoch: a mismatch localizes the corrupted word, which is recomputed
/// from retained inputs (escalating to the buddy-checkpoint restore path if
/// the recomputation re-fails), so the clean clock, counters, trace bytes
/// and Result::fingerprint stay bitwise identical to a fault-free run.
/// Without ABFT the corruption persists into the solution and is caught (if
/// at all) by the end-of-solve residual check, which surfaces
/// FaultKind::kSilentCorruption or — with RunOptions::sdc_repair — falls
/// back to iterative refinement as degraded-mode repair.
///
/// Like every other fault source, SDC draws come from a dedicated salted
/// counter-RNG stream (kMemStreamSalt) with its own per-rank counter, so
/// arming SDC injection never shifts a timing, delivery or crash draw.

#include <cstdint>
#include <vector>

#include "runtime/perturbation.hpp"

namespace sptrsv {

/// ABFT checksum/recompute cost model (attached to MachineModel::abft;
/// consulted while RunOptions::abft or PerturbationModel::sdc_active()).
struct AbftModel {
  /// Flat software cost of one epoch checksum verification, on top of the
  /// per-word arithmetic (one multiply-add per checked word at the
  /// machine's flop rate).
  double check_overhead = 200e-9;
  /// Cost of recomputing one localized corrupt block from retained inputs.
  double recompute_overhead = 2e-6;
  /// End-of-solve residual gate: relative max-norm residuals above this
  /// trip FaultKind::kSilentCorruption (or the sdc_repair fallback). The
  /// injected flips perturb 2^-6..2^-3 of a word, far above this.
  double residual_tol = 1e-6;
  /// Probability a localized recomputation re-fails and correction
  /// escalates to the buddy-checkpoint restore path (costed at
  /// RecoveryModel::restore_overhead; the escalated restore always
  /// succeeds in the model).
  double recompute_refail_prob = 0.0;
};

/// Per-rank SDC/ABFT ledger — the memory-fault third of the fault ledger.
/// All fields are 8-byte scalars so RankStats stays padding-free (tests
/// memcmp it). All zero when neither SDC injection nor ABFT is configured.
struct SdcStats {
  std::int64_t injected = 0;         ///< bit flips landed in solver state
  std::int64_t detected = 0;         ///< flips caught by an epoch checksum
  std::int64_t corrected = 0;        ///< flips repaired by recomputation
  std::int64_t escalated = 0;        ///< corrections that re-failed into a
                                     ///< buddy-checkpoint restore
  std::int64_t checks = 0;           ///< epoch checksum verifications run
  std::int64_t residual_checks = 0;  ///< end-of-solve residual evaluations
  std::int64_t refine_iters = 0;     ///< degraded-mode refinement iterations
  /// Per-target attribution of injected/corrected flips, indexed by
  /// PerturbationModel::MemFaultTarget (kX / kLValues / kPartial). The
  /// target is the plan's declared fault class — placement inside the
  /// exposed state is target-independent (word_draw spans all live words).
  std::int64_t injected_by[3] = {0, 0, 0};
  std::int64_t corrected_by[3] = {0, 0, 0};
  double verify_time = 0.0;          ///< checksum verification time absorbed
  double repair_time = 0.0;          ///< recompute + escalation time
  double residual_time = 0.0;        ///< end-of-solve residual check time

  SdcStats& operator+=(const SdcStats& o) {
    injected += o.injected;
    detected += o.detected;
    corrected += o.corrected;
    escalated += o.escalated;
    checks += o.checks;
    residual_checks += o.residual_checks;
    refine_iters += o.refine_iters;
    for (int t = 0; t < 3; ++t) {
      injected_by[t] += o.injected_by[t];
      corrected_by[t] += o.corrected_by[t];
    }
    verify_time += o.verify_time;
    repair_time += o.repair_time;
    residual_time += o.residual_time;
    return *this;
  }
  bool any() const {
    return injected != 0 || detected != 0 || checks != 0 || residual_checks != 0;
  }
};

/// One planned memory fault at a rank, with every random choice predrawn so
/// both scheduler modes (and the ABFT-on / ABFT-off twins of one schedule)
/// flip the exact same bit of the exact same word.
struct SdcEvent {
  double vt = 0.0;  ///< clean virtual time the fault arms at; it fires at
                    ///< the first epoch boundary whose clock reaches it
  PerturbationModel::MemFaultTarget target =
      PerturbationModel::MemFaultTarget::kX;
  std::uint64_t word_draw = 0;  ///< raw draw; word index = draw % live words
  int bit = 46;                 ///< mantissa bit to flip (46..49)
  double refail_draw = 0.0;     ///< vs AbftModel::recompute_refail_prob
};

/// The full schedule: per-rank memory faults sorted by virtual time. A pure
/// function of (PerturbationModel, seed, nranks) — no wall-clock state — so
/// a failing schedule replays exactly.
struct SdcPlan {
  std::vector<std::vector<SdcEvent>> by_rank;
  bool any() const {
    for (const auto& v : by_rank) {
      if (!v.empty()) return true;
    }
    return false;
  }
};

/// Builds the memory-fault plan: explicit PerturbationModel::mem_faults
/// entries plus, when sdc_rate > 0, per-rank Poisson arrivals (exponential
/// inter-fault times drawn from the salted kMemStreamSalt stream, capped at
/// sdc_max_per_rank). Word/bit/refail draws are consumed here, once, on the
/// same stream.
SdcPlan build_sdc_plan(const PerturbationModel& pm, std::uint64_t seed,
                       int nranks);

}  // namespace sptrsv
