#pragma once
/// \file checkpoint.hpp
/// \brief Crash-stop failure model: in-memory buddy checkpointing and the
/// precomputed crash plan behind ULFM-style recovery (docs/ROBUSTNESS.md).
///
/// PR 3 made the runtime survive a lossy *network*; this layer makes it
/// survive a lossy *membership*. A crash schedule (explicit rank/vt pairs or
/// a Poisson MTBF stream) kills ranks mid-solve; the runtime detects the
/// failure by missed virtual-clock heartbeats, repairs the communicator with
/// ULFM-style revoke/shrink/agree sweeps, has a spare rank adopt the dead
/// rank's identity, restores the victim's solve state from the in-memory
/// checkpoint its buddy holds, and replays only the work since the last
/// level-boundary epoch.
///
/// Two-ledger accounting extends to all of it: the crash is simulated
/// analytically at the instant the victim's *clean* clock crosses the crash
/// time, so the clean clock, counters, solution and trace stay bitwise
/// fault-invariant, while detection latency, repair sweeps, checkpoint
/// traffic, restore traffic and replayed compute land on the fault clock and
/// the RecoveryStats ledger (Cluster::Result::recovery_stats).
///
/// Like every other fault source, crash draws come from a dedicated salted
/// counter-RNG stream with its own per-rank counter, so enabling crashes
/// never shifts a timing or delivery draw.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/perturbation.hpp"
#include "runtime/reliable.hpp"
#include "sparse/types.hpp"

namespace sptrsv {

/// Tuning of the failure detector, spare pool and recovery cost model
/// (attached to MachineModel::recovery; consulted only while
/// PerturbationModel::crash_active()).
struct RecoveryModel {
  /// Virtual-clock heartbeat period of the failure detector. A crash at
  /// clean time t is detected at the first heartbeat slot
  /// (floor(t / period) + misses) * period — the dead rank must miss
  /// `heartbeat_misses` consecutive beats before it is declared failed.
  double heartbeat_period = 100e-6;
  int heartbeat_misses = 3;
  /// Warm spare ranks available to adopt dead ranks' identities. Crashes are
  /// matched to spares in global (crash time, rank) order; one more crash
  /// than spares is unrecoverable (FaultKind::kSparesExhausted).
  int spare_ranks = 2;
  /// Per-epoch software cost of capturing + shipping one buddy checkpoint
  /// (on top of the modeled wire time of the image).
  double checkpoint_overhead = 1e-6;
  /// Software cost of installing a fetched checkpoint image on the spare
  /// (on top of the modeled wire time of the fetch).
  double restore_overhead = 10e-6;
  /// Replayed-compute multiplier: recovery re-executes the (crash time −
  /// last epoch time) of lost progress scaled by this factor (1.0 = replay
  /// at the original speed).
  double replay_factor = 1.0;
  /// Overload-aware rebalancing: under RunOptions::degrade, split a dead
  /// rank's hosted partitions across the `rebalance_fanout` least-loaded
  /// survivors instead of moving them whole to the ring adopter, bounding
  /// the post-shrink overload multiplier. 0 keeps the classic ring adoption
  /// (bitwise-identical plans to earlier releases).
  int rebalance_fanout = 0;
  /// Per-world-rank relative work estimates for load-aware choices (the
  /// solve plan's diagonal-block flops, filled by the solver front ends).
  /// Empty = uniform work. Indexed by partition id (== original world rank).
  std::vector<double> rank_work;
  /// Straggler watchdog threshold: at every checkpoint epoch each rank
  /// compares its fault-clock lag (fvt − vt) against the high-water mark of
  /// earlier epochs; growth beyond this many seconds classifies the rank as
  /// a straggler (FaultKind::kStraggler diagnostics, ElasticityStats).
  /// 0 disables; consulted only while rank-stall schedules are configured.
  double straggler_lag = 0.0;
};

/// Per-rank recovery-cost ledger — the crash-stop half of the fault ledger.
/// All fields are 8-byte scalars so RankStats stays padding-free (tests
/// memcmp it). All zero when no crash model is configured.
struct RecoveryStats {
  std::int64_t crashes = 0;          ///< crash events processed at this rank
  std::int64_t checkpoints = 0;      ///< buddy checkpoint epochs captured
  std::int64_t checkpoint_bytes = 0; ///< bytes shipped to the buddy
  std::int64_t restores = 0;         ///< checkpoint images restored
  std::int64_t spares_used = 0;      ///< spare adoptions consumed by this rank
  std::int64_t image_rejects = 0;    ///< images failing their payload checksum
                                     ///< on fetch (escalated to full replay)
  double detect_time = 0.0;          ///< heartbeat detection latency absorbed
  double repair_time = 0.0;          ///< revoke/shrink/agree sweep time
  double restore_time = 0.0;         ///< buddy fetch + install time
  double replay_time = 0.0;          ///< recomputed progress since last epoch
  double checkpoint_time = 0.0;      ///< epoch capture + shipment time

  RecoveryStats& operator+=(const RecoveryStats& o) {
    crashes += o.crashes;
    checkpoints += o.checkpoints;
    checkpoint_bytes += o.checkpoint_bytes;
    restores += o.restores;
    spares_used += o.spares_used;
    image_rejects += o.image_rejects;
    detect_time += o.detect_time;
    repair_time += o.repair_time;
    restore_time += o.restore_time;
    replay_time += o.replay_time;
    checkpoint_time += o.checkpoint_time;
    return *this;
  }
  bool any() const { return crashes != 0 || checkpoints != 0; }
};

/// Per-rank graceful-degradation ledger (RunOptions::degrade): shrink,
/// redistribution and replay cost of elastic recovery after the spare pool
/// ran dry. All fields are 8-byte scalars so RankStats stays padding-free
/// (tests memcmp it). All zero unless a degrade actually fired.
struct DegradationStats {
  std::int64_t degrades = 0;           ///< shrink-and-redistribute recoveries
  std::int64_t ranks_lost = 0;         ///< ranks permanently retired at this rank
  std::int64_t partitions_adopted = 0; ///< partitions this rank took over
  std::int64_t redistributed_bytes = 0;///< checkpoint bytes shipped to adopters
  double agree_time = 0.0;             ///< survivor agreement sweeps (2 per degrade)
  double shrink_time = 0.0;            ///< survivor communicator rebuild sweep
  double redistribute_time = 0.0;      ///< buddy-image wire time to the adopter
  double replay_time = 0.0;            ///< replayed progress since the last epoch
  double overload_time = 0.0;          ///< extra compute from hosting >1 partition
  /// Peak post-shrink overload multiplier this partition ran under (1.0 =
  /// never overloaded). Merged with max semantics, not summed: the cluster
  /// total reports the worst multiplier any partition saw.
  double overload_mult = 0.0;

  DegradationStats& operator+=(const DegradationStats& o) {
    degrades += o.degrades;
    ranks_lost += o.ranks_lost;
    partitions_adopted += o.partitions_adopted;
    redistributed_bytes += o.redistributed_bytes;
    agree_time += o.agree_time;
    shrink_time += o.shrink_time;
    redistribute_time += o.redistribute_time;
    replay_time += o.replay_time;
    overload_time += o.overload_time;
    if (o.overload_mult > overload_mult) overload_mult = o.overload_mult;
    return *this;
  }
  bool any() const { return degrades != 0 || partitions_adopted != 0; }
};

/// Per-rank elasticity ledger (spare returns, world re-expansion, straggler
/// watchdog). All fields are 8-byte scalars so RankStats stays padding-free
/// (tests memcmp it). All zero unless a spare-return or straggler event
/// actually fired — arming repair schedules alone is bitwise invisible on
/// both ledgers.
struct ElasticityStats {
  std::int64_t returns = 0;        ///< spare-return events processed
  std::int64_t expansions = 0;     ///< world re-growth events (re-agree + expand)
  std::int64_t transfers = 0;      ///< partition images handed back on return
  std::int64_t transfer_bytes = 0; ///< checkpoint bytes shipped on hand-back
  std::int64_t stragglers = 0;     ///< straggler classifications at this rank
  std::int64_t rebalances = 0;     ///< straggler-triggered repartitions
  double agree_time = 0.0;         ///< survivor re-agreement sweeps (2 per return)
  double expand_time = 0.0;        ///< grown-communicator rebuild sweep
  double transfer_time = 0.0;      ///< partition-image wire time on hand-back
  double replay_time = 0.0;        ///< replayed progress since the image epoch
  double straggler_time = 0.0;     ///< lag absorbed + mitigation sweeps

  ElasticityStats& operator+=(const ElasticityStats& o) {
    returns += o.returns;
    expansions += o.expansions;
    transfers += o.transfers;
    transfer_bytes += o.transfer_bytes;
    stragglers += o.stragglers;
    rebalances += o.rebalances;
    agree_time += o.agree_time;
    expand_time += o.expand_time;
    transfer_time += o.transfer_time;
    replay_time += o.replay_time;
    straggler_time += o.straggler_time;
    return *this;
  }
  bool any() const { return returns != 0 || stragglers != 0; }
};

/// One captured solve-state image, conceptually resident at the owner's
/// buddy. `state` is the hook's serialized solve state (fragment values,
/// progress cursors); `checksum` is verified before any restore.
struct CheckpointImage {
  std::int64_t epoch = -1;   ///< monotone per-owner epoch counter
  double vt = 0.0;           ///< owner's clean clock at capture
  const char* label = "";    ///< registering hook's label (string literal)
  std::uint64_t checksum = 0;
  std::vector<Real> state;
};

/// In-memory buddy checkpoint store: one latest-image slot per owner rank,
/// conceptually stored at buddy_of(owner) = (owner + 1) mod P (a ring, so
/// every rank buddies exactly one other). Each owner thread is the sole
/// writer and reader of its own slot, so slots need no locking; the buddy
/// placement is a cost/feasibility model (shipment and fetch are charged to
/// the fault ledger, and a buddy that dies inside the owner's detection
/// window makes the owner's crash unrecoverable), not a data-movement one.
class CheckpointStore {
 public:
  explicit CheckpointStore(int nranks)
      : nranks_(nranks), slots_(static_cast<std::size_t>(nranks)) {}

  int buddy_of(int rank) const { return (rank + 1) % nranks_; }

  /// Installs `img` as the owner's latest image (previous epoch discarded —
  /// recovery only ever replays from the most recent complete epoch).
  void save(int owner, CheckpointImage img) {
    slots_[static_cast<std::size_t>(owner)] = std::move(img);
  }

  /// Latest image for `owner`, or nullptr if no epoch completed yet.
  const CheckpointImage* latest(int owner) const {
    const CheckpointImage& img = slots_[static_cast<std::size_t>(owner)];
    return img.epoch >= 0 ? &img : nullptr;
  }

  /// Drops the owner's image (reset_clock: pre-solve epochs must not leak a
  /// stale clock into post-reset replay arithmetic).
  void clear(int owner) { slots_[static_cast<std::size_t>(owner)] = CheckpointImage{}; }

 private:
  int nranks_;
  std::vector<CheckpointImage> slots_;
};

/// One planned crash of a rank, with its recovery verdict precomputed from
/// the static schedule (so both scheduler modes agree on it bit for bit).
struct CrashEvent {
  double vt = 0.0;   ///< clean virtual time the rank dies at
  int spare = -1;    ///< spare slot adopting the identity (-1: unrecoverable)
  /// kNone = recoverable; kBuddyLoss = the buddy died inside this crash's
  /// detection window (the checkpoint died with it); kSparesExhausted = the
  /// spare pool was already consumed by earlier crashes.
  FaultKind verdict = FaultKind::kNone;
  /// Elastic-recovery plan for an unrecoverable verdict, precomputed so both
  /// scheduler modes degrade identically under RunOptions::degrade (and
  /// ignored entirely without it). `adopter` is the survivor that inherits
  /// the victim's partition; `survivors_after` counts the post-shrink world
  /// (<= 0: nobody left, FaultKind::kNoSurvivors); `image_survives` is 0
  /// when the buddy image died with the buddy (kBuddyLoss, or a buddy that
  /// was itself degraded away) and the adopter must replay from solve start.
  int adopter = -1;
  int survivors_after = -1;
  int image_survives = 1;
};

/// One step of an adopter's overload schedule under RunOptions::degrade:
/// from clean time `vt` on, every partition hosted on the adopter's physical
/// rank runs at 1/mult speed (mult = partitions per host), so each clean
/// compute second costs an extra (mult - 1) seconds on the fault clock.
/// `adopt_delta` is nonzero only on the adopting partition's own event: the
/// number of partitions it just inherited (DegradationStats attribution).
struct DegradeEvent {
  double vt = 0.0;
  double mult = 1.0;
  std::int64_t adopt_delta = 0;
};

/// One planned spare return that re-expands a degraded world: at clean time
/// `vt` the repaired node for rank `returned` rejoins, the survivors
/// re-agree (two sweeps), the communicator grows back by one (one sweep) and
/// the host `from` hands the adopted partition's checkpoint image back
/// (checksum-verified on fetch, escalating to replay-from-start on a reject).
/// Processed at the returning partition's own context — the partition thread
/// kept executing through the degraded window, so the clean ledger is
/// untouched by construction and every cost lands on the fault clock and
/// ElasticityStats. Returns whose rank is alive at `vt` are inert and never
/// planned.
struct ElasticEvent {
  double vt = 0.0;
  int from = -1;           ///< host handing the partition back
  int survivors_after = 0; ///< world size after the re-expansion
};

/// The full schedule: per-rank crash events sorted by virtual time. A pure
/// function of (PerturbationModel, RecoveryModel, seed, nranks) — no
/// wall-clock state — so a failing schedule replays exactly.
/// `degrade_by_rank` carries the per-partition overload schedule implied by
/// the unrecoverable-verdict events; it is precomputed unconditionally
/// (cheap) and consulted only under RunOptions::degrade.
struct CrashPlan {
  std::vector<std::vector<CrashEvent>> by_rank;
  std::vector<std::vector<DegradeEvent>> degrade_by_rank;
  /// Spare-return schedule per returning rank (empty without repair knobs or
  /// when every return was inert); consulted only under RunOptions::degrade.
  std::vector<std::vector<ElasticEvent>> elastic_by_rank;
  bool any() const {
    for (const auto& v : by_rank) {
      if (!v.empty()) return true;
    }
    return false;
  }
};

/// Pure geometry of one elastic shrink: who inherits the newest victim's
/// partition and how many ranks remain. `dead` is the ordered list of ranks
/// degraded away so far, newest last; duplicates are ignored. The adopter is
/// the first survivor scanning up the rank ring from victim + 1 — the same
/// deterministic rule on every rank, so survivors agree without
/// communication. `image_survives` reflects only the ring state (buddy not
/// yet degraded away); build_crash_plan additionally clears it for
/// kBuddyLoss verdicts, where the buddy died inside the detection window.
struct DegradePlan {
  int victim = -1;
  int adopter = -1;
  int survivors_after = 0;
  int image_survives = 0;
  /// Load-aware mode (RecoveryModel::rebalance_fanout > 0): the victim's
  /// hosted partitions and the survivor each one moves to, parallel vectors
  /// in assignment order (largest work first, LPT-greedy over the k
  /// least-loaded survivors). Empty in classic ring mode, where every
  /// victim-hosted partition moves to `adopter`.
  std::vector<int> moved_partitions;
  std::vector<int> adopters;
};

/// `host` is the current partition -> physical-rank map accumulated over
/// earlier shrinks (empty = identity, the fresh-world default); it selects
/// the victim's hosted partitions and the survivors' current loads in
/// load-aware mode and is ignored by the classic ring rule.
DegradePlan build_degrade_plan(const RecoveryModel& rm, int nranks,
                               const std::vector<int>& dead,
                               const std::vector<int>& host = {});

/// Builds the spare-return schedule: explicit PerturbationModel::returns
/// entries plus, when repair_mtbf > 0, per-rank Poisson repair arrivals
/// (exponential times drawn from the salted kRepairStreamSalt stream, capped
/// at repair_max_per_rank). Returns per-rank sorted times; a pure function
/// of (PerturbationModel, seed, nranks), so arming repair shifts no timing,
/// delivery, crash or SDC draw. Which returns actually re-expand the world
/// is decided by build_crash_plan's verdict pass (a return only matters for
/// a rank that was degraded away before it fires).
std::vector<std::vector<double>> build_repair_plan(const PerturbationModel& pm,
                                                   std::uint64_t seed,
                                                   int nranks);

/// Deterministic serialization of an (index -> value-vector) map plus a
/// progress cursor — the common shape of solver checkpoint state (x/y
/// fragments keyed by supernode, partial sums keyed by node). Keys are
/// visited in sorted order so two captures of equal state are bitwise equal
/// regardless of hash-map iteration order. Layout:
///   [entry count, cursor, (key, length, values...)*]
/// Idx keys and lengths are stored as Real — exact for anything below 2^53.
template <class Map>
std::vector<Real> checkpoint_pack(const Map& m, double cursor) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(m.size());
  for (const auto& kv : m) keys.push_back(kv.first);
  std::sort(keys.begin(), keys.end());
  std::vector<Real> out;
  out.push_back(static_cast<Real>(keys.size()));
  out.push_back(cursor);
  for (const auto k : keys) {
    const auto& v = m.at(k);
    out.push_back(static_cast<Real>(k));
    out.push_back(static_cast<Real>(v.size()));
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

/// Deterministic span exposure of an (index -> value-vector) map for the SDC
/// layer (Comm::SdcStateFn): one span per entry, keys visited in sorted
/// order, so the flat word index a memory-fault plan draws into is invariant
/// under hash-map iteration order (docs/ROBUSTNESS.md §SDC).
template <class Map>
std::vector<std::span<Real>> sdc_spans(Map& m) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(m.size());
  for (const auto& kv : m) keys.push_back(kv.first);
  std::sort(keys.begin(), keys.end());
  std::vector<std::span<Real>> spans;
  spans.reserve(keys.size());
  for (const auto k : keys) spans.push_back(std::span<Real>(m.at(k)));
  return spans;
}

/// Restore-side validation for checkpoint_pack images. In the analytic crash
/// model the victim's live state already sits at the crash point, so a
/// correct image — captured at an earlier epoch of append-only solve state —
/// must be a bitwise *subset* of the live map: every entry present, every
/// value bit-identical. A mismatch means the checkpoint layer corrupted
/// state, which is a bug (std::logic_error), not a modeled fault.
template <class Map>
void checkpoint_verify(const CheckpointImage& img, const Map& live,
                       const char* who) {
  const auto fail = [who] {
    throw std::logic_error(std::string(who) +
                           ": checkpoint image disagrees with live solve state");
  };
  const std::vector<Real>& s = img.state;
  if (s.size() < 2) fail();
  const std::size_t count = static_cast<std::size_t>(s[0]);
  std::size_t pos = 2;
  for (std::size_t e = 0; e < count; ++e) {
    if (pos + 2 > s.size()) fail();
    const auto key = static_cast<typename Map::key_type>(s[pos]);
    const std::size_t len = static_cast<std::size_t>(s[pos + 1]);
    pos += 2;
    if (pos + len > s.size()) fail();
    const auto it = live.find(key);
    if (it == live.end() || it->second.size() != len) fail();
    for (std::size_t i = 0; i < len; ++i) {
      if (!(std::memcmp(&it->second[i], &s[pos + i], sizeof(Real)) == 0)) fail();
    }
    pos += len;
  }
}

/// Builds the crash plan: explicit PerturbationModel::crashes entries plus,
/// when crash_mtbf > 0, per-rank Poisson arrivals (exponential inter-failure
/// times drawn from the salted crash stream, capped at crash_max_per_rank).
/// Verdicts are assigned here, statically: buddy-pair losses first (both
/// events inside one detection window are unrecoverable), then spares in
/// global (vt, rank) order until the pool runs dry.
CrashPlan build_crash_plan(const PerturbationModel& pm, const RecoveryModel& rm,
                           std::uint64_t seed, int nranks);

}  // namespace sptrsv
