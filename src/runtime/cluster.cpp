#include "runtime/cluster.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <exception>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "trace/trace.hpp"

namespace sptrsv {
namespace detail {

namespace {
/// Tree depth used by the collective cost model.
double log2_ceil(int p) { return p <= 1 ? 0.0 : std::ceil(std::log2(static_cast<double>(p))); }

/// Perturbation draw-stream id reserved for the rank-constant compute skew
/// (message draws count up from 0 and never reach it).
constexpr std::uint64_t kSkewDraw = ~std::uint64_t{0};

/// Metric-name suffix of a TimeCategory ("cluster.messages.fp", ...).
const char* metric_cat(int c) {
  switch (static_cast<TimeCategory>(c)) {
    case TimeCategory::kFp: return "fp";
    case TimeCategory::kXyComm: return "xy";
    case TimeCategory::kZComm: return "z";
    case TimeCategory::kOther: return "other";
  }
  return "?";
}

/// Fixed bucket bounds for the runtime's histograms: receive wait seconds
/// (log-spaced around the modeled latency scale) and peer distance in
/// global ranks (powers of two — "how far does traffic travel").
constexpr double kWaitBounds[] = {1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1};
constexpr double kPeerDistBounds[] = {0, 1, 2, 4, 8, 16, 32, 64, 128};
}  // namespace

/// A message annotated with the communicator context it was sent on, plus
/// the trace edge-matching key: the sender's global rank and its per-sender
/// monotone sequence number (stamped even with tracing off — it is cheap
/// and keeps envelopes mode-independent). While delivery faults are active
/// the envelope additionally carries the reliable-transport verdict: the
/// end-to-end checksum, the fault-clock arrival (clean arrival plus every
/// recovery delay), and the analytic TransportOutcome the receiver charges
/// to its fault ledger on take (docs/ROBUSTNESS.md).
struct Envelope {
  std::uint64_t ctx = 0;
  int src_grank = 0;
  std::int64_t seq = 0;
  std::uint64_t checksum = 0;
  double fault_arrival = 0.0;
  std::unique_ptr<const TransportOutcome> transport;  // null when faults off
  Message msg;
};

/// What a parked rank is waiting for — published (lock-free) before every
/// blocking wait so the watchdog's FaultReport can say "rank R waiting on
/// recv(src, tags)" instead of just "wedged" (docs/ROBUSTNESS.md).
struct WaitInfo {
  std::atomic<int> kind{0};  ///< 0 none, 1 recv, 2 collective
  std::atomic<int> a{0};     ///< recv: src (comm-local, -1 wildcard); coll: generation
  std::atomic<int> b{0};     ///< recv: tag_lo
  std::atomic<int> c{0};     ///< recv: tag_hi (lo >= hi: any tag)
  std::atomic<std::uint64_t> ctx{0};  ///< communicator context id
};

/// RAII publication of a WaitInfo around a blocking wait.
struct WaitScope {
  WaitInfo& w;
  WaitScope(WaitInfo& wi, int kind, int a, int b, int c, std::uint64_t ctx) : w(wi) {
    w.a.store(a, std::memory_order_relaxed);
    w.b.store(b, std::memory_order_relaxed);
    w.c.store(c, std::memory_order_relaxed);
    w.ctx.store(ctx, std::memory_order_relaxed);
    w.kind.store(kind, std::memory_order_release);
  }
  ~WaitScope() { w.kind.store(0, std::memory_order_release); }
};

/// Per-rank mailbox: all communicators deliver here; receives filter by
/// (ctx, src, tag).
struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Envelope> q;
};

/// Per-rank runtime context (virtual clock + accounting + mailbox).
struct RankCtx {
  Mailbox mailbox;
  int grank = 0;                 ///< global (world) rank of this context
  double vt = 0.0;
  double category[kNumTimeCategories] = {0, 0, 0, 0};
  std::int64_t messages[kNumTimeCategories] = {0, 0, 0, 0};
  std::int64_t bytes[kNumTimeCategories] = {0, 0, 0, 0};
  double skew = 1.0;             ///< perturbation compute-skew factor
  std::uint64_t pseq = 0;        ///< per-message perturbation draw counter

  // --- fault ledger (docs/ROBUSTNESS.md) ---
  double fvt = 0.0;              ///< fault clock: vt + transport recovery delay
  TransportStats tstats;         ///< reliable-transport counters
  std::uint64_t fseq = 0;        ///< fault-draw counter (separate stream from
                                 ///< pseq so adding delivery faults does not
                                 ///< shift the timing draws; never reset)
  /// Accepted per-sender sequence numbers (protocol self-check: a duplicate
  /// reaching the application would be a transport bug). Only consulted
  /// while delivery faults are active.
  std::map<int, std::set<std::int64_t>> seen_seqs;
  WaitInfo wait;                 ///< watchdog diagnostics for blocking waits
  double vt_limit = std::numeric_limits<double>::infinity();

  bool tracing = false;          ///< RunOptions::trace
  RankTrace trace;               ///< event/span buffer (tracing only)
  std::int64_t send_seq = 0;     ///< per-sender message sequence (NOT reset
                                 ///< by reset_clock — seq stays unique)
  std::uint64_t trace_epoch = 0; ///< bumped by reset_clock; guards TraceSpan

  // --- metrics (docs/OBSERVABILITY.md §Metrics; null when off) ---
  MetricsRegistry* metrics = nullptr;  ///< owned by ClusterState
  double metrics_period = 0.0;         ///< RunOptions::metrics_period
  double next_sample = 0.0;            ///< next virtual-time sampling point
  /// Pre-registered handles for the runtime's own hot paths (registered in
  /// the ClusterState constructor, so bumping them never allocates). All
  /// null — one predictable branch per bump — when metrics are off.
  struct MetricHandles {
    MetricsRegistry::Counter msgs[kNumTimeCategories];
    MetricsRegistry::Counter bytes[kNumTimeCategories];
    MetricsRegistry::Histogram wait;       ///< per-receive wait seconds
    MetricsRegistry::Histogram peer_dist;  ///< |dst_grank - src_grank| per send
    MetricsRegistry::Counter retransmits;
    MetricsRegistry::Counter timeouts;
    MetricsRegistry::Counter frames_dropped;
    MetricsRegistry::Counter acks;
    MetricsRegistry::Counter duplicates;
    MetricsRegistry::Counter ckpt_epochs;
    MetricsRegistry::Counter ckpt_bytes;
    MetricsRegistry::Counter crashes;
    MetricsRegistry::Counter recovery_sweeps;
    MetricsRegistry::Counter abft_checks;
    MetricsRegistry::Counter abft_injected;
    MetricsRegistry::Counter abft_detected;
    MetricsRegistry::Counter abft_corrected;
    /// Per-target ABFT attribution, indexed by MemFaultTarget (x/l/partial).
    MetricsRegistry::Counter abft_injected_tgt[3];
    MetricsRegistry::Counter abft_corrected_tgt[3];
    MetricsRegistry::Counter image_rejects;
    MetricsRegistry::Counter degrades;
    MetricsRegistry::Counter degrade_ranks_lost;
    MetricsRegistry::Counter degrade_adopted;
    MetricsRegistry::Counter degrade_bytes;
    MetricsRegistry::Gauge degrade_overload;
    MetricsRegistry::Counter elastic_returns;
    MetricsRegistry::Counter elastic_expansions;
    MetricsRegistry::Counter elastic_transfers;
    MetricsRegistry::Counter elastic_bytes;
    MetricsRegistry::Counter straggler_events;
    MetricsRegistry::Counter straggler_rebalances;
  } mh;

  // --- flight recorder (always on, allocation-free; dumped into
  // FaultReport::flight when a run dies — docs/OBSERVABILITY.md) ---
  struct FlightEntry {
    enum Kind : int {
      kNone = 0, kSend, kRecvWait, kRecvDone, kCollective, kCrash, kCheckpoint,
      kSdc, kDegrade, kElastic
    };
    Kind kind = kNone;
    int peer = -1;          ///< dst/src global rank (-1 wildcard/none)
    int a = 0;              ///< tag / tag_lo / collective generation
    int b = 0;              ///< tag_hi (recv-wait only)
    std::int64_t bytes = 0;
    double vt = 0.0;
  };
  static constexpr std::size_t kFlightCap = 32;
  FlightEntry flight[kFlightCap];
  std::uint64_t flight_n = 0;  ///< entries ever recorded (ring wraps)

  void flight_record(FlightEntry::Kind kind, int peer, int a, int b,
                     std::int64_t fbytes) {
    FlightEntry& e = flight[flight_n % kFlightCap];
    e.kind = kind;
    e.peer = peer;
    e.a = a;
    e.b = b;
    e.bytes = fbytes;
    e.vt = vt;
    ++flight_n;
  }

  // --- crash-stop recovery (docs/ROBUSTNESS.md) ---
  const MachineModel* mach = nullptr;  ///< owning cluster's machine model
  /// This rank's slice of the crash plan (null = no crash model configured).
  const std::vector<CrashEvent>* crash_events = nullptr;
  std::size_t crash_idx = 0;     ///< next unfired crash event (re-armed by
                                 ///< reset_clock: crash times are interpreted
                                 ///< on the post-reset clock)
  /// Monotone sum of every crash delay charged to fvt. The recv/collective
  /// fault-clock rewrites capture a before/after delta of this to re-apply a
  /// delay that landed *inside* their own advance (the rewrite would
  /// otherwise overwrite it); comparing for inequality keeps the no-crash
  /// arithmetic bitwise untouched.
  double crash_total = 0.0;
  RecoveryStats rstats;          ///< crash-recovery ledger (fault side)
  CheckpointStore* ckpt = nullptr;       ///< buddy store (null = crash model off)
  double ulfm_sweep = 0.0;       ///< one modeled revoke/shrink/agree tree sweep
  std::int64_t ckpt_epoch_counter = 0;
  /// Checkpoint hook stack (innermost = back). capture serializes the
  /// replayable solve state; restore verifies a fetched image against it.
  struct CheckpointHook {
    const char* label;
    std::function<std::vector<Real>()> capture;
    std::function<void(const CheckpointImage&)> restore;
    std::function<std::vector<std::span<Real>>()> sdc_state;
  };
  std::vector<CheckpointHook> hooks;

  // --- graceful degradation (docs/ROBUSTNESS.md §Graceful degradation) ---
  bool degrade = false;          ///< RunOptions::degrade
  /// This partition's overload schedule (null = degrade off or never
  /// overloaded): precomputed DegradeEvents raising the compute multiplier
  /// when the hosting physical rank adopts extra partitions.
  const std::vector<DegradeEvent>* degrade_events = nullptr;
  std::size_t degrade_idx = 0;   ///< next unfired event (re-armed by
                                 ///< reset_clock like crash_idx)
  double degrade_mult = 1.0;     ///< current partitions-per-host multiplier
  DegradationStats dstats;       ///< degradation ledger (fault side)

  // --- silent data corruption + ABFT (docs/ROBUSTNESS.md §SDC) ---
  /// This rank's slice of the memory-fault plan (null = no SDC schedule).
  const std::vector<SdcEvent>* sdc_events = nullptr;
  std::size_t sdc_idx = 0;       ///< next unfired event (re-armed by
                                 ///< reset_clock: fault times are interpreted
                                 ///< on the post-reset clock)
  bool abft = false;             ///< RunOptions::abft
  SdcStats sdc;                  ///< ABFT/SDC ledger (fault side)

  // --- elastic re-expansion + straggler watchdog (docs/ROBUSTNESS.md
  // §Elasticity lifecycle) ---
  /// This rank's slice of the spare-return schedule (null = no repair knobs,
  /// degrade off, or every return was inert).
  const std::vector<ElasticEvent>* elastic_events = nullptr;
  std::size_t elastic_idx = 0;   ///< next unfired event (re-armed by
                                 ///< reset_clock like crash_idx)
  bool rebalance = false;        ///< RunOptions::rebalance
  /// Progress-watermark watchdog arming: rank-stall schedules configured
  /// AND RecoveryModel::straggler_lag > 0 (never on clean runs — without
  /// stalls the fault clock tracks the clean clock bitwise).
  bool straggler_armed = false;
  double straggle_hwm = 0.0;     ///< high-water mark of fvt − vt at epochs
  ElasticityStats estats;        ///< elasticity ledger (fault side)

  /// Advances both clocks in lockstep (identical arithmetic keeps fvt
  /// bitwise equal to vt while no faults intervene); receive/collective
  /// sites then rewrite fvt with the mirrored fault-arrival expression.
  void advance(double seconds, TimeCategory cat) {
    vt += seconds;
    fvt += seconds;
    category[static_cast<int>(cat)] += seconds;
    // Virtual-time sampling: snapshot the registry at every grid point
    // k * metrics_period the clock just crossed. The grid is a pure
    // function of the clean clock, so the series is schedule-invariant.
    // Metric storage is written, never read, by clock math — the sample
    // cannot perturb the clean ledger.
    if (metrics != nullptr && metrics_period > 0.0) {
      while (vt >= next_sample) {
        metrics->sample(next_sample);
        next_sample += metrics_period;
      }
    }
    if (crash_events != nullptr && crash_idx < crash_events->size() &&
        vt >= (*crash_events)[crash_idx].vt) {
      process_crash();
    }
    if (elastic_events != nullptr && elastic_idx < elastic_events->size() &&
        vt >= (*elastic_events)[elastic_idx].vt) {
      process_elastic();
    }
    // Elastic-degradation overload: once this partition's host adopted extra
    // partitions, every clean compute second really takes `mult` seconds on
    // the shrunken machine. The extra rides the fault clock only, and also
    // crash_total so the recv/collective fault-clock rewrites re-apply a
    // charge that landed inside their own advance (same guard as crashes).
    if (degrade_events != nullptr) {
      while (degrade_idx < degrade_events->size() &&
             vt >= (*degrade_events)[degrade_idx].vt) {
        const DegradeEvent de = (*degrade_events)[degrade_idx++];
        degrade_mult = de.mult;
        // Peak multiplier on the stats (max semantics), live multiplier on
        // the gauge — a re-expansion lowers the gauge but not the peak.
        if (de.mult > dstats.overload_mult) dstats.overload_mult = de.mult;
        mh.degrade_overload.set(de.mult);
        if (de.adopt_delta > 0) {
          dstats.partitions_adopted += de.adopt_delta;
          mh.degrade_adopted.add(de.adopt_delta);
        }
      }
      if (degrade_mult > 1.0 && cat == TimeCategory::kFp) {
        const double extra = (degrade_mult - 1.0) * seconds;
        fvt += extra;
        crash_total += extra;
        dstats.overload_time += extra;
      }
    }
    if (vt > vt_limit) {
      FaultReport r;
      r.kind = FaultKind::kVtLimit;
      r.rank = grank;
      r.vt = vt;
      r.detail = "virtual clock passed RunOptions::vt_limit";
      throw FaultError(std::move(r));
    }
  }

  /// Fires every crash event the clean clock just crossed: simulated
  /// analytically at the crossing instant — the victim thread *is* the spare
  /// that adopts its identity (the clean clock, counters and solve state are
  /// exactly what the restored spare would recompute bit for bit), so only
  /// the recovery delay (heartbeat detection, ULFM repair sweeps, buddy
  /// restore, replay since the last epoch) needs modeling, and it lands on
  /// the fault clock and RecoveryStats. Unrecoverable verdicts (buddy-pair
  /// loss, spare-pool exhaustion) throw a structured FaultError instead.
  void process_crash() {
    while (crash_idx < crash_events->size() &&
           vt >= (*crash_events)[crash_idx].vt) {
      const CrashEvent ev = (*crash_events)[crash_idx++];
      rstats.crashes += 1;
      const int buddy = ckpt->buddy_of(grank);
      if (ev.verdict != FaultKind::kNone) {
        if (!degrade || ev.survivors_after <= 0 || ev.adopter < 0) {
          FaultReport r;
          r.kind = degrade ? FaultKind::kNoSurvivors : ev.verdict;
          r.rank = grank;
          r.peer = buddy;
          r.vt = ev.vt;
          r.detail =
              degrade ? "elastic degradation found no survivor to adopt the "
                        "dead rank's partition"
              : ev.verdict == FaultKind::kBuddyLoss
                  ? "rank and its checkpoint buddy died inside one "
                    "detection window; no image survives to restore from"
                  : "crash outlived the spare-rank pool; no identity "
                    "left to adopt";
          throw FaultError(std::move(r));
        }
        process_degrade(ev);
        continue;
      }
      const RecoveryModel& rm = mach->recovery;
      const double t = ev.vt;
      // Heartbeat detection: the rank is declared dead `misses` beats after
      // the last heartbeat it answered (the beat grid is absolute).
      const double detect =
          (std::floor(t / rm.heartbeat_period) +
           static_cast<double>(rm.heartbeat_misses)) * rm.heartbeat_period - t;
      // ULFM repair: revoke, shrink and two agreement sweeps among the
      // survivors, each a logarithmic tree round.
      const double repair = 4.0 * ulfm_sweep;
      double restore = 0.0;
      double replay = t * rm.replay_factor;  // no epoch yet: replay from start
      const CheckpointImage* img = ckpt->latest(grank);
      if (img != nullptr && payload_checksum(img->state) != img->checksum) {
        // The image was silently corrupted after capture: reject it instead
        // of resurrecting bad state, and fall through to replay-from-start
        // (the recompute path needs no image).
        rstats.image_rejects += 1;
        mh.image_rejects.add();
        img = nullptr;
      }
      if (img != nullptr) {
        const double bytes = static_cast<double>(img->state.size()) * sizeof(Real);
        restore = rm.restore_overhead + mach->net.latency +
                  bytes / mach->net.bandwidth;
        replay = (t - img->vt) * rm.replay_factor;
        // The innermost hook whose label matches the image verifies it
        // against the live state (a mismatch is a checkpoint bug, not a
        // modeled fault — it throws logic_error). No matching hook (the
        // capturing scope already closed) still counts as a restore.
        for (auto it = hooks.rbegin(); it != hooks.rend(); ++it) {
          if (std::strcmp(it->label, img->label) == 0) {
            it->restore(*img);
            break;
          }
        }
        rstats.restores += 1;
      }
      rstats.spares_used += 1;
      rstats.detect_time += detect;
      rstats.repair_time += repair;
      rstats.restore_time += restore;
      rstats.replay_time += replay;
      mh.crashes.add();
      mh.recovery_sweeps.add(4);  // revoke + shrink + two agreement sweeps
      flight_record(FlightEntry::kCrash, ev.spare, img ? static_cast<int>(img->epoch) : -1,
                    0, 0);
      const double delay = detect + repair + restore + replay;
      fvt += delay;
      crash_total += delay;
      if (tracing) {
        trace.marks.push_back({"crash", t, static_cast<std::int64_t>(ev.spare)});
        trace.marks.push_back({"restore", t + delay, img ? img->epoch : -1});
      }
    }
  }

  /// Elastic shrink-and-redistribute (RunOptions::degrade) for a crash whose
  /// verdict was terminal: the survivors agree on the dead set (two
  /// survivor-sized sweeps), shrink the world (one sweep), and the ring
  /// adopter pulls the victim's partition from the surviving buddy image,
  /// replaying the work since that epoch. Modeled analytically at the
  /// victim's context — the victim thread keeps executing its partition,
  /// which is bit-for-bit the work the adopter performs after the shrink
  /// (the solvers' reduction order is partition-parametric), so the clean
  /// ledger is untouched by construction; every cost lands on the fault
  /// clock and DegradationStats. The adopter's ongoing overload is charged
  /// separately by the DegradeEvent stream in advance().
  void process_degrade(const CrashEvent& ev) {
    const RecoveryModel& rm = mach->recovery;
    const double t = ev.vt;
    const double detect =
        (std::floor(t / rm.heartbeat_period) +
         static_cast<double>(rm.heartbeat_misses)) * rm.heartbeat_period - t;
    // Repair sweeps are sized to the surviving world, not the original one.
    const double sweep = 2.0 * log2_ceil(ev.survivors_after) *
                         (mach->net.latency + mach->mpi_overhead);
    const double agree = 2.0 * sweep;
    const double shrink = sweep;
    double redistribute = 0.0;
    double replay = t * rm.replay_factor;  // image lost: replay from start
    const CheckpointImage* img =
        ev.image_survives != 0 ? ckpt->latest(grank) : nullptr;
    if (img != nullptr && payload_checksum(img->state) != img->checksum) {
      // Same integrity gate as spare restores: a corrupt image escalates to
      // replay-from-start instead of resurrecting corruption.
      rstats.image_rejects += 1;
      mh.image_rejects.add();
      img = nullptr;
    }
    std::int64_t rbytes = 0;
    if (img != nullptr) {
      const double bytes = static_cast<double>(img->state.size()) * sizeof(Real);
      rbytes = static_cast<std::int64_t>(bytes);
      redistribute = rm.restore_overhead + mach->net.latency +
                     bytes / mach->net.bandwidth;
      replay = (t - img->vt) * rm.replay_factor;
      for (auto it = hooks.rbegin(); it != hooks.rend(); ++it) {
        if (std::strcmp(it->label, img->label) == 0) {
          it->restore(*img);
          break;
        }
      }
      rstats.restores += 1;
    }
    rstats.detect_time += detect;
    dstats.degrades += 1;
    dstats.ranks_lost += 1;
    dstats.redistributed_bytes += rbytes;
    dstats.agree_time += agree;
    dstats.shrink_time += shrink;
    dstats.redistribute_time += redistribute;
    dstats.replay_time += replay;
    mh.crashes.add();
    mh.recovery_sweeps.add(3);  // two agreement sweeps + the shrink
    mh.degrades.add();
    mh.degrade_ranks_lost.add();
    mh.degrade_bytes.add(rbytes);
    flight_record(FlightEntry::kDegrade, ev.adopter, ev.survivors_after,
                  img ? static_cast<int>(img->epoch) : -1, rbytes);
    const double delay = detect + agree + shrink + redistribute + replay;
    fvt += delay;
    crash_total += delay;
    if (tracing) {
      trace.marks.push_back(
          {"shrink", t, static_cast<std::int64_t>(ev.survivors_after)});
      trace.marks.push_back(
          {"redistribute", t + delay, static_cast<std::int64_t>(ev.adopter)});
    }
  }

  /// Fires every spare-return event the clean clock just crossed: the
  /// repaired node rejoins a degraded world, the survivors re-agree on the
  /// grown membership (two sweeps), the communicator expands (one sweep) and
  /// the relieved host hands this partition's checkpoint image back
  /// (checksum-verified, escalating to replay-from-start on a reject, same
  /// integrity rules as every other fetch). Modeled analytically at the
  /// returning partition's context — the partition thread kept executing
  /// through the degraded window, so the clean ledger is untouched by
  /// construction; every cost lands on the fault clock and ElasticityStats.
  /// The relieved host's lowered multiplier arrives separately through the
  /// DegradeEvent stream in advance().
  void process_elastic() {
    while (elastic_idx < elastic_events->size() &&
           vt >= (*elastic_events)[elastic_idx].vt) {
      const ElasticEvent ev = (*elastic_events)[elastic_idx++];
      const RecoveryModel& rm = mach->recovery;
      const double t = ev.vt;
      // Re-expansion sweeps are sized to the grown world.
      const double sweep = 2.0 * log2_ceil(ev.survivors_after) *
                           (mach->net.latency + mach->mpi_overhead);
      const double agree = 2.0 * sweep;
      const double expand = sweep;
      double transfer = 0.0;
      double replay = t * rm.replay_factor;  // image lost: replay from start
      const CheckpointImage* img = ckpt != nullptr ? ckpt->latest(grank) : nullptr;
      if (img != nullptr && payload_checksum(img->state) != img->checksum) {
        // Same integrity gate as restores and degrade fetches: a corrupt
        // image escalates to replay-from-start instead of resurrecting bad
        // state on the rejoining node.
        rstats.image_rejects += 1;
        mh.image_rejects.add();
        img = nullptr;
      }
      std::int64_t tbytes = 0;
      if (img != nullptr) {
        const double bytes = static_cast<double>(img->state.size()) * sizeof(Real);
        tbytes = static_cast<std::int64_t>(bytes);
        transfer = rm.restore_overhead + mach->net.latency +
                   bytes / mach->net.bandwidth;
        replay = (t - img->vt) * rm.replay_factor;
        estats.transfers += 1;
        mh.elastic_transfers.add();
      }
      estats.returns += 1;
      estats.expansions += 1;
      estats.transfer_bytes += tbytes;
      estats.agree_time += agree;
      estats.expand_time += expand;
      estats.transfer_time += transfer;
      estats.replay_time += replay;
      mh.elastic_returns.add();
      mh.elastic_expansions.add();
      mh.elastic_bytes.add(tbytes);
      mh.recovery_sweeps.add(3);  // two re-agreement sweeps + the expansion
      flight_record(FlightEntry::kElastic, ev.from, ev.survivors_after, 0,
                    tbytes);
      const double delay = agree + expand + transfer + replay;
      fvt += delay;
      crash_total += delay;
      if (tracing) {
        trace.marks.push_back(
            {"expand", t, static_cast<std::int64_t>(ev.survivors_after)});
        trace.marks.push_back({"transfer", t + delay, tbytes});
      }
    }
  }

  /// Progress-watermark watchdog, run at every checkpoint epoch while
  /// rank-stall schedules are configured: the fault-clock lag (fvt − vt)
  /// accrued by stalled transport is compared against the high-water mark of
  /// earlier epochs; growth beyond RecoveryModel::straggler_lag classifies
  /// this rank as a straggler (FaultKind::kStraggler diagnostics only —
  /// never terminal). Under RunOptions::rebalance the classification also
  /// triggers a load-aware repartition — two survivor agreement sweeps plus
  /// one repartition sweep on the fault clock — and forgives the accrued lag
  /// (work shed to peers). Clean runs never fire: without delivery faults
  /// the fault clock tracks the clean clock bitwise, so the lag is zero.
  void process_straggler_epoch() {
    const double lag = fvt - vt;
    const double growth = lag - straggle_hwm;
    if (growth <= mach->recovery.straggler_lag) {
      if (lag > straggle_hwm) straggle_hwm = lag;
      return;
    }
    estats.stragglers += 1;
    estats.straggler_time += growth;
    mh.straggler_events.add();
    flight_record(FlightEntry::kElastic, grank, rebalance ? 1 : 0, 1, 0);
    if (tracing) {
      trace.marks.push_back(
          {"straggler", vt, static_cast<std::int64_t>(rebalance ? 1 : 0)});
    }
    if (rebalance) {
      // Two agreement sweeps + one repartition sweep, charged at the epoch
      // boundary (outside any receive's advance, so no crash_total echo —
      // the same pattern as checkpoint shipment).
      const double cost = 3.0 * ulfm_sweep;
      fvt += cost;
      estats.rebalances += 1;
      estats.straggler_time += cost;
      mh.straggler_rebalances.add();
      mh.recovery_sweeps.add(3);
      if (tracing) {
        trace.marks.push_back({"rebalance", vt, estats.rebalances});
      }
    }
    straggle_hwm = fvt - vt;
  }

  /// Fires at every checkpoint epoch while an SDC schedule or ABFT is
  /// active: lands every armed memory fault the clean clock has passed as a
  /// bit flip in the innermost hook's live solver state, then (with ABFT on)
  /// charges the epoch checksum verification, localizes each flipped word
  /// and recomputes it from retained inputs — in the analytic model the
  /// recomputed value is exactly the journaled pre-fault bits, so downstream
  /// state, the clean clock and every clean counter stay bitwise identical
  /// to a fault-free run. All detection/repair cost lands on the fault clock
  /// and SdcStats; with ABFT off the corruption persists for the end-of-
  /// solve residual gate to catch (docs/ROBUSTNESS.md §SDC).
  void process_sdc_epoch() {
    if (hooks.empty() || !hooks.back().sdc_state) return;
    const bool due = sdc_events != nullptr && sdc_idx < sdc_events->size() &&
                     vt >= (*sdc_events)[sdc_idx].vt;
    if (!abft && !due) return;
    std::vector<std::span<Real>> spans = hooks.back().sdc_state();
    std::size_t words = 0;
    for (const auto& s : spans) words += s.size();
    struct Flip {
      std::size_t span, off;
      Real original;
      int bit;
      double refail_draw;
      int target;  ///< MemFaultTarget ordinal, for per-target attribution
    };
    Flip flips[8];
    std::size_t nflips = 0;
    while (sdc_events != nullptr && sdc_idx < sdc_events->size() &&
           vt >= (*sdc_events)[sdc_idx].vt) {
      const SdcEvent ev = (*sdc_events)[sdc_idx++];
      if (words == 0 || nflips == sizeof(flips) / sizeof(flips[0])) continue;
      // Probe forward (wrapping) from the drawn word to the next nonzero:
      // flipping a mantissa bit of ±0 yields denormal noise with no
      // numerical effect, which is not a modeled upset. All-zero state
      // drops the event without counting it as injected.
      const std::size_t w0 = static_cast<std::size_t>(ev.word_draw % words);
      for (std::size_t probe = 0; probe < words; ++probe) {
        std::size_t idx = (w0 + probe) % words;
        std::size_t si = 0;
        while (idx >= spans[si].size()) idx -= spans[si++].size();
        Real& v = spans[si][idx];
        if (v == 0.0) continue;
        flips[nflips++] = {si,     idx,           v,
                           ev.bit, ev.refail_draw, static_cast<int>(ev.target)};
        std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
        bits ^= std::uint64_t{1} << ev.bit;
        v = std::bit_cast<Real>(bits);
        sdc.injected += 1;
        sdc.injected_by[static_cast<int>(ev.target)] += 1;
        mh.abft_injected.add();
        mh.abft_injected_tgt[static_cast<int>(ev.target)].add();
        flight_record(FlightEntry::kSdc, -1, static_cast<int>(ev.target),
                      ev.bit, 0);
        if (tracing) {
          trace.marks.push_back(
              {"sdc-inject", vt, static_cast<std::int64_t>(ev.bit)});
        }
        break;
      }
    }
    if (!abft) return;
    // Checksum verification: one fused multiply-add per live word against
    // the running block checksum, plus a fixed bookkeeping overhead.
    const AbftModel& am = mach->abft;
    const double vcost =
        am.check_overhead + 2.0 * static_cast<double>(words) / mach->cpu_flop_rate;
    sdc.checks += 1;
    sdc.verify_time += vcost;
    fvt += vcost;
    mh.abft_checks.add();
    // Unwind the flip journal in reverse (LIFO) order: when two events of
    // the same epoch land on the same word, the later journal entry's
    // "original" already contains the earlier flip, so forward restoration
    // would re-corrupt the word after the first restore undoes it.
    for (std::size_t i = nflips; i-- > 0;) {
      const Flip& f = flips[i];
      sdc.detected += 1;
      mh.abft_detected.add();
      if (tracing) {
        trace.marks.push_back(
            {"sdc-detect", vt, static_cast<std::int64_t>(f.bit)});
      }
      // The checksum mismatch localizes the corrupt block; recomputing it
      // from retained inputs restores the exact pre-fault bits. A re-failed
      // recomputation escalates to the buddy-checkpoint restore path.
      spans[f.span][f.off] = f.original;
      double rcost = am.recompute_overhead;
      if (f.refail_draw < am.recompute_refail_prob) {
        rcost += mach->recovery.restore_overhead;
        sdc.escalated += 1;
      }
      sdc.corrected += 1;
      sdc.corrected_by[f.target] += 1;
      sdc.repair_time += rcost;
      fvt += rcost;
      mh.abft_corrected.add();
      mh.abft_corrected_tgt[f.target].add();
      if (tracing) {
        trace.marks.push_back(
            {"sdc-correct", vt, static_cast<std::int64_t>(f.bit)});
      }
    }
  }

  /// Recording chokepoint: every clock advance that should appear in the
  /// trace funnels through here, so a traced rank's events tile [0, vt]
  /// exactly (the contiguity invariant Trace::critical_path relies on).
  void advance_traced(double seconds, TimeCategory cat, TraceEventKind kind) {
    const double t0 = vt;
    advance(seconds, cat);
    if (tracing) {
      TraceEvent e;
      e.kind = kind;
      e.cat = cat;
      e.t0 = t0;
      e.t1 = vt;
      trace.events.push_back(e);
    }
  }
};

/// Thrown into ranks blocked on a dead cluster.
struct ClusterAborted : std::runtime_error {
  ClusterAborted() : std::runtime_error("cluster aborted: another rank failed") {}
};

/// Thrown into ranks parked on the deterministic scheduler when it proves
/// the run is wedged (no READY or RUNNING rank, some BLOCKED). The catcher
/// turns it into a structured FaultError naming its own blocked wait.
struct SchedulerDeadlock {};

/// Deterministic-mode run-token scheduler (docs/DETERMINISM.md).
///
/// Exactly one rank executes at a time; every blocking point in the runtime
/// hands the token back here. Under the default kFifo policy the next
/// holder is always the READY rank with the lexicographically smallest
/// (virtual-time key, rank) pair, so the complete execution order — and
/// with it every wildcard-receive choice, clock value and message count —
/// is a pure function of the program.
///
/// Exploration policies (docs/TESTING.md) permute the grant order among
/// *eligible* ranks only: a rank that yielded through the commit fence
/// (Comm::recv_range deferring while someone could still send earlier) is
/// eligible again only once it holds the minimal key — re-granting it any
/// sooner would spin it against the very condition it yielded on. Ranks
/// that are READY for any other reason (start, wake after a delivery) are
/// freely permutable: whichever of them runs first, each receive still
/// commits to the globally earliest producible arrival, so the modeled
/// outcome is invariant and only the interleaving explored changes. Every
/// grant decision is recorded into a ScheduleCertificate for exact replay.
///
/// States: READY (wants the token, key = the virtual time it would resume
/// at), RUNNING (holds the token), BLOCKED (needs wake(): an unsatisfied
/// receive or an unfinished collective), DONE. No token is granted until
/// all ranks have registered via start(), so the first holder does not
/// depend on thread start-up order.
class Scheduler {
 public:
  Scheduler(int nranks, const RunOptions& opts)
      : watchdog_(opts.watchdog),
        replay_(opts.replay_schedule),
        policy_(replay_ ? replay_->policy : opts.schedule),
        seed_(replay_ ? replay_->seed : opts.schedule_seed),
        delay_left_(opts.delay_budget),
        state_(static_cast<size_t>(nranks), State::kUnstarted),
        key_(static_cast<size_t>(nranks), 0.0),
        yielded_(static_cast<size_t>(nranks), 0),
        cv_(static_cast<size_t>(nranks)) {
    if (policy_ == SchedulePolicy::kRandomPriority) {
      prio_.resize(static_cast<size_t>(nranks));
      for (int r = 0; r < nranks; ++r) {
        // Bit 32 keeps every initial priority above the demotion counter's
        // range, so a demoted rank sinks below all undemoted ones.
        prio_[static_cast<size_t>(r)] =
            hash64(seed_ ^ hash64(static_cast<std::uint64_t>(r) + 1)) |
            (std::uint64_t{1} << 32);
      }
      change_at_.reserve(static_cast<size_t>(opts.priority_points));
      for (int i = 0; i < opts.priority_points; ++i) {
        change_at_.push_back(hash64(seed_ ^ (0x9E3779B9ull + static_cast<std::uint64_t>(i))) % 512);
      }
      std::sort(change_at_.begin(), change_at_.end());
    }
  }

  /// Invoked (under the scheduler lock) at the moment a deadlock is proven,
  /// with some blocked rank as witness — while every parked rank's WaitInfo
  /// is still published, so the report can name what each one waits on.
  void set_deadlock_callback(std::function<void(int)> cb) {
    deadlock_cb_ = std::move(cb);
  }

  /// Per-rank "sched.grants" metric handles (empty when metrics are off).
  /// Bumped under the scheduler mutex by whichever thread grants; the token
  /// handoff orders those writes against the owner rank's own reads, so the
  /// counter is race-free. NOTE: grant counts are the one metric that is
  /// legitimately policy-dependent — exploration policies permute grants by
  /// design — so cross-policy comparisons must skip "sched.*" names.
  void set_grant_counters(std::vector<MetricsRegistry::Counter> counters) {
    grant_counters_ = std::move(counters);
  }

  /// Registers the calling rank and waits for its first grant.
  void start(int rank) {
    std::unique_lock<std::mutex> lk(mu_);
    state_[static_cast<size_t>(rank)] = State::kReady;
    key_[static_cast<size_t>(rank)] = 0.0;
    ++started_;
    grant_locked();
    wait_for_token(lk, rank);
  }

  /// Releases the token for good (rank_fn returned).
  void finish(int rank) {
    std::lock_guard<std::mutex> lk(mu_);
    state_[static_cast<size_t>(rank)] = State::kDone;
    running_ = -1;
    grant_locked();
  }

  /// Re-enters the ready set with `key` (the virtual time the rank intends
  /// to resume at) and waits until it is the minimum again. Used to defer a
  /// receive commit while a rank with an earlier clock could still send.
  void yield(int rank, double key) {
    std::unique_lock<std::mutex> lk(mu_);
    state_[static_cast<size_t>(rank)] = State::kReady;
    key_[static_cast<size_t>(rank)] = key;
    yielded_[static_cast<size_t>(rank)] = 1;
    running_ = -1;
    grant_locked();
    wait_for_token(lk, rank);
  }

  /// Parks the rank until wake(); resumes once re-granted the token.
  void block(int rank, double key) {
    std::unique_lock<std::mutex> lk(mu_);
    state_[static_cast<size_t>(rank)] = State::kBlocked;
    key_[static_cast<size_t>(rank)] = key;
    yielded_[static_cast<size_t>(rank)] = 0;
    running_ = -1;
    grant_locked();
    wait_for_token(lk, rank);
  }

  /// Marks a blocked rank ready (no-op otherwise). Only the token holder
  /// calls this — after delivering a message or finalizing a collective —
  /// so the transition is serialized and needs no grant of its own.
  void wake(int rank) {
    std::lock_guard<std::mutex> lk(mu_);
    if (state_[static_cast<size_t>(rank)] == State::kBlocked) {
      state_[static_cast<size_t>(rank)] = State::kReady;
    }
  }

  /// True if a READY rank's key is strictly below `key` — i.e. someone
  /// could still execute (and send) at an earlier virtual time.
  bool ready_below(int rank, double key) {
    std::lock_guard<std::mutex> lk(mu_);
    for (size_t r = 0; r < state_.size(); ++r) {
      if (static_cast<int>(r) != rank && state_[r] == State::kReady && key_[r] < key) {
        return true;
      }
    }
    return false;
  }

  /// Wakes every waiter with the abort flag; they throw ClusterAborted.
  void abort() {
    std::lock_guard<std::mutex> lk(mu_);
    aborted_ = true;
    for (auto& cv : cv_) cv.notify_all();
  }

  /// The grant record so far (safe after join; callable any time).
  ScheduleCertificate certificate() {
    std::lock_guard<std::mutex> lk(mu_);
    ScheduleCertificate c;
    c.policy = policy_;
    c.seed = seed_;
    c.grants = record_;
    return c;
  }

 private:
  enum class State { kUnstarted, kReady, kRunning, kBlocked, kDone };

  /// A READY rank the policy may legally grant: never yielded, or yielded
  /// but now holding the minimal key (see the class comment).
  bool eligible_locked(size_t r, double min_key) const {
    return state_[r] == State::kReady && (!yielded_[r] || key_[r] <= min_key);
  }

  /// Grants the token to the policy's choice among eligible READY ranks,
  /// once all ranks have started and no one is running. Caller holds mu_.
  void grant_locked() {
    if (running_ != -1 || started_ < static_cast<int>(state_.size())) return;
    int best = -1;
    for (size_t r = 0; r < state_.size(); ++r) {
      if (state_[r] != State::kReady) continue;
      if (best < 0 || key_[r] < key_[static_cast<size_t>(best)]) {
        best = static_cast<int>(r);  // key tie: lowest rank wins (scan order)
      }
    }
    if (best < 0) {
      // Everyone blocked or done. A BLOCKED rank can only be woken by a
      // RUNNING rank, so if anyone is still blocked the run is provably
      // wedged: wake the parked ranks with the deadlock verdict instead of
      // sleeping forever (docs/ROBUSTNESS.md).
      if (watchdog_ && !aborted_) {
        for (size_t r = 0; r < state_.size(); ++r) {
          if (state_[r] == State::kBlocked) {
            aborted_ = true;
            deadlocked_ = true;
            // Build the report now: once the parked ranks start unwinding,
            // their WaitScopes pop and the wait state is gone.
            if (deadlock_cb_) deadlock_cb_(static_cast<int>(r));
            for (auto& cv : cv_) cv.notify_all();
            break;
          }
        }
      }
      return;
    }
    // `best` is the FIFO choice (minimal key over READY, so always
    // eligible); exploration policies may substitute any other eligible
    // rank without breaking the commit fence.
    best = pick_locked(best, key_[static_cast<size_t>(best)]);
    yielded_[static_cast<size_t>(best)] = 0;
    record_.push_back(best);
    ++grant_n_;
    if (!grant_counters_.empty()) grant_counters_[static_cast<size_t>(best)].add();
    state_[static_cast<size_t>(best)] = State::kRunning;
    running_ = best;
    // Per-rank condition variables: a handoff wakes exactly the new holder.
    // One shared cv would thundering-herd all P waiters per handoff, which
    // dominates runtime at P in the thousands.
    cv_[static_cast<size_t>(best)].notify_one();
  }

  /// Applies the schedule policy / replay to the FIFO choice. Caller holds
  /// mu_; `fifo` is READY with the minimal key `min_key`.
  int pick_locked(int fifo, double min_key) {
    if (replay_ != nullptr) {
      // Follow the certificate while it stays legal; a diverged or
      // exhausted record degrades to FIFO instead of wedging the run.
      if (replay_pos_ < replay_->grants.size()) {
        const int want = replay_->grants[replay_pos_++];
        if (want >= 0 && want < static_cast<int>(state_.size()) &&
            eligible_locked(static_cast<size_t>(want), min_key)) {
          return want;
        }
      }
      return fifo;
    }
    switch (policy_) {
      case SchedulePolicy::kFifo:
        return fifo;
      case SchedulePolicy::kRandomPriority: {
        int best = fifo;
        for (size_t r = 0; r < state_.size(); ++r) {
          if (!eligible_locked(r, min_key)) continue;
          if (prio_[r] > prio_[static_cast<size_t>(best)]) best = static_cast<int>(r);
        }
        // PCT priority-change points: demote the chosen rank below every
        // undemoted priority at the seeded grant indices.
        while (change_pos_ < change_at_.size() && change_at_[change_pos_] <= grant_n_) {
          prio_[static_cast<size_t>(best)] = demote_next_++;
          ++change_pos_;
        }
        return best;
      }
      case SchedulePolicy::kDelayBounded: {
        if (delay_left_ > 0 && (hash64(seed_ ^ (grant_n_ * 0x9E3779B97F4A7C15ull)) & 3) == 0) {
          // Defer the front rank once: grant the second rank in
          // (key, rank) order among eligibles, if there is one.
          int second = -1;
          for (size_t r = 0; r < state_.size(); ++r) {
            if (static_cast<int>(r) == fifo || !eligible_locked(r, min_key)) continue;
            if (second < 0 || key_[r] < key_[static_cast<size_t>(second)]) {
              second = static_cast<int>(r);
            }
          }
          if (second >= 0) {
            --delay_left_;
            return second;
          }
        }
        return fifo;
      }
    }
    return fifo;
  }

  void wait_for_token(std::unique_lock<std::mutex>& lk, int rank) {
    cv_[static_cast<size_t>(rank)].wait(
        lk, [&] { return aborted_ || running_ == rank; });
    if (aborted_) {
      if (deadlocked_) throw SchedulerDeadlock{};
      throw ClusterAborted();
    }
  }

  bool watchdog_ = true;
  bool aborted_ = false;
  bool deadlocked_ = false;
  std::function<void(int)> deadlock_cb_;
  std::vector<MetricsRegistry::Counter> grant_counters_;
  const ScheduleCertificate* replay_ = nullptr;
  SchedulePolicy policy_ = SchedulePolicy::kFifo;
  std::uint64_t seed_ = 0;
  int delay_left_ = 0;
  std::size_t replay_pos_ = 0;
  std::uint64_t grant_n_ = 0;
  std::vector<std::uint64_t> prio_;       // kRandomPriority only
  std::vector<std::uint64_t> change_at_;  // sorted PCT change-point grants
  std::size_t change_pos_ = 0;
  std::uint64_t demote_next_ = 0;
  std::vector<std::int32_t> record_;
  int started_ = 0;
  int running_ = -1;
  std::vector<State> state_;
  std::vector<double> key_;
  std::vector<char> yielded_;
  std::mutex mu_;
  std::vector<std::condition_variable> cv_;
};

/// Whole-cluster shared state.
class ClusterState {
 public:
  ClusterState(int nranks, MachineModel machine, const RunOptions& opts)
      : machine_(std::move(machine)), opts_(opts),
        ranks_(static_cast<size_t>(nranks)), active_(nranks) {
    if (opts_.deterministic) {
      sched_ = std::make_unique<Scheduler>(nranks, opts_);
      sched_->set_deadlock_callback(
          [this](int witness) { record_fault(build_deadlock_report(witness)); });
    }
    const bool skewed = machine_.perturb.compute_skew > 0.0;
    const bool crashing = machine_.perturb.crash_active();
    if (crashing) {
      // The whole crash schedule — times and recovery verdicts — is fixed
      // here, before any thread runs, so both scheduler modes process the
      // exact same events in the exact same order.
      crash_plan_ = build_crash_plan(machine_.perturb, machine_.recovery,
                                     opts_.seed, nranks);
      ckpt_ = std::make_unique<CheckpointStore>(nranks);
    }
    // The memory-fault plan is likewise fixed before any thread runs; its
    // draws ride a salted stream of their own (kMemStreamSalt), so enabling
    // SDC shifts no timing, delivery, or crash draw.
    const bool sdc = machine_.perturb.sdc_active();
    if (sdc) sdc_plan_ = build_sdc_plan(machine_.perturb, opts_.seed, nranks);
    const double sweep = 2.0 * log2_ceil(nranks) *
                         (machine_.net.latency + machine_.mpi_overhead);
    for (int r = 0; r < nranks; ++r) {
      RankCtx& ctx = ranks_[static_cast<size_t>(r)];
      ctx.grank = r;
      ctx.tracing = opts_.trace;
      ctx.vt_limit = opts_.vt_limit;
      ctx.mach = &machine_;
      // The sweep cost is wired unconditionally: crash recovery and the
      // straggler watchdog's rebalance sweeps both price collective rounds
      // with it (it is inert while neither fault class is armed).
      ctx.ulfm_sweep = sweep;
      ctx.rebalance = opts_.rebalance;
      // The progress-watermark watchdog arms only while rank-stall
      // schedules exist AND the detector threshold is set: on a clean run
      // fvt tracks vt bitwise, so there is no lag to watch.
      ctx.straggler_armed = !machine_.perturb.stalls.empty() &&
                            machine_.recovery.straggler_lag > 0.0;
      if (crashing) {
        ctx.crash_events = &crash_plan_.by_rank[static_cast<size_t>(r)];
        ctx.ckpt = ckpt_.get();
        ctx.degrade = opts_.degrade;
        if (opts_.degrade &&
            !crash_plan_.degrade_by_rank[static_cast<size_t>(r)].empty()) {
          ctx.degrade_events =
              &crash_plan_.degrade_by_rank[static_cast<size_t>(r)];
        }
        if (opts_.degrade &&
            !crash_plan_.elastic_by_rank[static_cast<size_t>(r)].empty()) {
          ctx.elastic_events =
              &crash_plan_.elastic_by_rank[static_cast<size_t>(r)];
        }
      }
      if (sdc) ctx.sdc_events = &sdc_plan_.by_rank[static_cast<size_t>(r)];
      ctx.abft = opts_.abft;
      if (skewed) {
        ctx.skew = 1.0 + machine_.perturb.compute_skew *
                             perturb_uniform(opts_.seed, static_cast<std::uint64_t>(r),
                                             kSkewDraw);
      }
      if (opts_.metrics) {
        // Register the runtime's own metrics now, in one fixed program
        // order, so every hot-path bump below is allocation-free and the
        // name set is identical on every rank.
        metrics_.push_back(std::make_unique<MetricsRegistry>());
        MetricsRegistry* m = metrics_.back().get();
        ctx.metrics = m;
        ctx.metrics_period = opts_.metrics_period;
        ctx.next_sample = opts_.metrics_period;
        RankCtx::MetricHandles& mh = ctx.mh;
        for (int c = 0; c < kNumTimeCategories; ++c) {
          mh.msgs[c] = m->counter(std::string("cluster.messages.") + metric_cat(c));
          mh.bytes[c] = m->counter(std::string("cluster.bytes.") + metric_cat(c));
        }
        mh.wait = m->histogram("cluster.wait_time", kWaitBounds);
        mh.peer_dist = m->histogram("cluster.peer_distance", kPeerDistBounds);
        mh.retransmits = m->counter("transport.retransmits");
        mh.timeouts = m->counter("transport.timeouts");
        mh.frames_dropped = m->counter("transport.frames_dropped");
        mh.acks = m->counter("transport.acks");
        mh.duplicates = m->counter("transport.duplicates");
        mh.ckpt_epochs = m->counter("checkpoint.epochs");
        mh.ckpt_bytes = m->counter("checkpoint.bytes");
        mh.crashes = m->counter("recovery.crashes");
        mh.recovery_sweeps = m->counter("recovery.sweeps");
        mh.abft_checks = m->counter("abft.checks");
        mh.abft_injected = m->counter("abft.injected");
        mh.abft_detected = m->counter("abft.detected");
        mh.abft_corrected = m->counter("abft.corrected");
        mh.abft_injected_tgt[0] = m->counter("abft.injected.x");
        mh.abft_injected_tgt[1] = m->counter("abft.injected.l");
        mh.abft_injected_tgt[2] = m->counter("abft.injected.partial");
        mh.abft_corrected_tgt[0] = m->counter("abft.corrected.x");
        mh.abft_corrected_tgt[1] = m->counter("abft.corrected.l");
        mh.abft_corrected_tgt[2] = m->counter("abft.corrected.partial");
        mh.image_rejects = m->counter("recovery.image_rejects");
        mh.degrades = m->counter("recovery.degrade.events");
        mh.degrade_ranks_lost = m->counter("recovery.degrade.ranks_lost");
        mh.degrade_adopted = m->counter("recovery.degrade.adopted");
        mh.degrade_bytes = m->counter("recovery.degrade.bytes");
        mh.degrade_overload = m->gauge("recovery.degrade.overload");
        mh.elastic_returns = m->counter("recovery.elastic.returns");
        mh.elastic_expansions = m->counter("recovery.elastic.expansions");
        mh.elastic_transfers = m->counter("recovery.elastic.transfers");
        mh.elastic_bytes = m->counter("recovery.elastic.bytes");
        mh.straggler_events = m->counter("recovery.straggler.events");
        mh.straggler_rebalances = m->counter("recovery.straggler.rebalances");
      }
    }
    if (sched_ != nullptr && opts_.metrics) {
      std::vector<MetricsRegistry::Counter> grants;
      grants.reserve(static_cast<size_t>(nranks));
      for (int r = 0; r < nranks; ++r) {
        grants.push_back(metrics_[static_cast<size_t>(r)]->counter("sched.grants"));
      }
      sched_->set_grant_counters(std::move(grants));
    }
  }

  const MachineModel& machine() const { return machine_; }
  const RunOptions& opts() const { return opts_; }
  Scheduler* sched() { return sched_.get(); }
  RankCtx& rank(int global) { return ranks_[static_cast<size_t>(global)]; }
  int world_size() const { return static_cast<int>(ranks_.size()); }
  std::uint64_t next_ctx() { return ++ctx_counter_; }

  /// Rank r's registry (null when RunOptions::metrics is off).
  MetricsRegistry* rank_metrics(int r) {
    return opts_.metrics ? metrics_[static_cast<size_t>(r)].get() : nullptr;
  }

  /// Formats every rank's flight-recorder ring, oldest entry first, one
  /// line per entry ("rank R: vt=... recv-wait(src=1, tags[40,41))").
  /// Called after join (or at detection, when the rings are quiescent) to
  /// populate FaultReport::flight.
  std::vector<std::string> flight_dump() const {
    std::vector<std::string> out;
    for (size_t r = 0; r < ranks_.size(); ++r) {
      const RankCtx& c = ranks_[r];
      const std::uint64_t n = std::min<std::uint64_t>(c.flight_n, RankCtx::kFlightCap);
      for (std::uint64_t i = 0; i < n; ++i) {
        const RankCtx::FlightEntry& e =
            c.flight[(c.flight_n - n + i) % RankCtx::kFlightCap];
        char buf[160];
        switch (e.kind) {
          case RankCtx::FlightEntry::kSend:
            std::snprintf(buf, sizeof(buf),
                          "rank %zu: vt=%.9g send(dst=%d, tag=%d, bytes=%lld)", r,
                          e.vt, e.peer, e.a, static_cast<long long>(e.bytes));
            break;
          case RankCtx::FlightEntry::kRecvWait:
            std::snprintf(buf, sizeof(buf),
                          "rank %zu: vt=%.9g recv-wait(src=%d, tags[%d,%d))", r,
                          e.vt, e.peer, e.a, e.b);
            break;
          case RankCtx::FlightEntry::kRecvDone:
            std::snprintf(buf, sizeof(buf),
                          "rank %zu: vt=%.9g recv(src=%d, tag=%d, bytes=%lld)", r,
                          e.vt, e.peer, e.a, static_cast<long long>(e.bytes));
            break;
          case RankCtx::FlightEntry::kCollective:
            std::snprintf(buf, sizeof(buf),
                          "rank %zu: vt=%.9g collective(gen=%d, bytes=%lld)", r,
                          e.vt, e.a, static_cast<long long>(e.bytes));
            break;
          case RankCtx::FlightEntry::kCrash:
            std::snprintf(buf, sizeof(buf),
                          "rank %zu: vt=%.9g crash(spare=%d, epoch=%d)", r, e.vt,
                          e.peer, e.a);
            break;
          case RankCtx::FlightEntry::kCheckpoint:
            std::snprintf(buf, sizeof(buf),
                          "rank %zu: vt=%.9g checkpoint(epoch=%d, bytes=%lld)", r,
                          e.vt, e.a, static_cast<long long>(e.bytes));
            break;
          case RankCtx::FlightEntry::kSdc:
            std::snprintf(buf, sizeof(buf),
                          "rank %zu: vt=%.9g sdc(target=%d, bit=%d)", r, e.vt,
                          e.a, e.b);
            break;
          case RankCtx::FlightEntry::kDegrade:
            std::snprintf(buf, sizeof(buf),
                          "rank %zu: vt=%.9g degrade(adopter=%d, survivors=%d)",
                          r, e.vt, e.peer, e.a);
            break;
          case RankCtx::FlightEntry::kElastic:
            // b discriminates the two elastic entry flavors: 0 = a spare
            // return re-expanding the world, 1 = a straggler classification.
            if (e.b == 1) {
              std::snprintf(buf, sizeof(buf),
                            "rank %zu: vt=%.9g straggler(rebalance=%d)", r,
                            e.vt, e.a);
            } else {
              std::snprintf(buf, sizeof(buf),
                            "rank %zu: vt=%.9g expand(from=%d, survivors=%d, "
                            "bytes=%lld)",
                            r, e.vt, e.peer, e.a,
                            static_cast<long long>(e.bytes));
            }
            break;
          case RankCtx::FlightEntry::kNone:
            continue;
        }
        out.push_back(buf);
      }
    }
    return out;
  }

  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  /// Called when a rank dies with an exception: wakes every blocked wait
  /// so the remaining ranks can unwind instead of deadlocking at join.
  void abort();

  void register_group(const std::shared_ptr<CommGroup>& g) {
    std::lock_guard<std::mutex> lk(groups_mu_);
    groups_.push_back(g);
  }

  // --- watchdog bookkeeping (free-running mode; docs/ROBUSTNESS.md) ---

  /// Bumped whenever anything that could unblock a waiter happens (a send
  /// lands, a collective finalizes, a rank finishes).
  void bump_progress() { progress_.fetch_add(1, std::memory_order_release); }

  /// Rank thread is leaving (returned or threw): it can no longer send.
  void rank_done() {
    active_.fetch_sub(1, std::memory_order_acq_rel);
    bump_progress();
  }

  /// Records the first fault of the run; returns true iff this call won.
  bool record_fault(const FaultReport& r) {
    std::lock_guard<std::mutex> lk(fault_mu_);
    if (has_fault_) return false;
    has_fault_ = true;
    fault_ = r;
    return true;
  }

  /// The fault recorded at detection time, or a freshly built (less
  /// detailed, the waits are gone) report if none was.
  FaultReport recorded_fault_or_report(int grank) {
    {
      std::lock_guard<std::mutex> lk(fault_mu_);
      if (has_fault_) return fault_;
    }
    return build_deadlock_report(grank);
  }

  /// Builds the watchdog's deadlock report from `grank`'s own wait plus a
  /// lock-free snapshot of what every parked rank says it is waiting on.
  FaultReport build_deadlock_report(int grank) {
    FaultReport r;
    r.kind = FaultKind::kDeadlock;
    r.rank = grank;
    r.vt = ranks_[static_cast<size_t>(grank)].vt;
    const WaitInfo& own = ranks_[static_cast<size_t>(grank)].wait;
    if (own.kind.load(std::memory_order_acquire) == 1) {
      r.peer = own.a.load(std::memory_order_relaxed);
      r.tag = own.b.load(std::memory_order_relaxed);
    }
    std::string d = "no rank can make progress;";
    int listed = 0;
    for (size_t i = 0; i < ranks_.size(); ++i) {
      const WaitInfo& w = ranks_[i].wait;
      const int kind = w.kind.load(std::memory_order_acquire);
      if (kind == 0) continue;
      if (++listed > 12) {
        d += " ...";
        break;
      }
      char buf[96];
      if (kind == 1) {
        std::snprintf(buf, sizeof(buf),
                      " rank %zu waiting on recv(src=%d, tags[%d,%d), ctx=%llu);",
                      i, w.a.load(std::memory_order_relaxed),
                      w.b.load(std::memory_order_relaxed),
                      w.c.load(std::memory_order_relaxed),
                      static_cast<unsigned long long>(
                          w.ctx.load(std::memory_order_relaxed)));
      } else {
        std::snprintf(buf, sizeof(buf),
                      " rank %zu waiting on collective(gen=%d, ctx=%llu);", i,
                      w.a.load(std::memory_order_relaxed),
                      static_cast<unsigned long long>(
                          w.ctx.load(std::memory_order_relaxed)));
      }
      d += buf;
    }
    r.detail = std::move(d);
    return r;
  }

  /// Positive in-flight evidence for the free-running watchdog: true if any
  /// *other* rank's published recv wait is already satisfiable by an
  /// envelope queued in its mailbox, or any communicator holds a finalized
  /// collective a member has not consumed yet — i.e. a wakeup was delivered
  /// but its target thread has not run (e.g. starved by a loaded machine).
  /// Declaring a deadlock then would misdiagnose scheduling latency as a
  /// hang, so the watchdog treats it as progress. Declared here, defined
  /// after CommGroup; `held_ctx` names the communicator whose mutex the
  /// caller holds (a collective wait) so the scan skips it — every other
  /// lock is only try_lock'd, and a failed try_lock is itself activity.
  bool pending_wakeup(int skip_rank, std::uint64_t held_ctx);

  /// Free-running-mode blocking wait with deadlock detection: parks on `cv`
  /// until `pred` holds. A deadlock is declared only on positive evidence of
  /// global quiescence: every live rank parked, the progress counter frozen
  /// for the whole patience window, *and* no in-flight wakeup pending
  /// (pending_wakeup) — elapsed quiet time alone never fires, so a rank
  /// descheduled mid-compute on a loaded machine is not misdiagnosed. Then
  /// re-checks `pred` one last time and declares: records a FaultReport,
  /// aborts the cluster and throws FaultError. Throws ClusterAborted if
  /// woken by another rank's abort. `lk` guards `pred`'s state; `held_ctx`
  /// is the communicator context whose mutex `lk` holds (0 for a mailbox
  /// wait).
  template <class Pred>
  void blocking_wait(std::unique_lock<std::mutex>& lk, std::condition_variable& cv,
                     int grank, Pred pred, std::uint64_t held_ctx = 0) {
    if (!opts_.watchdog) {
      cv.wait(lk, [&] { return pred() || aborted(); });
      if (!pred()) throw ClusterAborted();
      return;
    }
    waiting_.fetch_add(1, std::memory_order_acq_rel);
    struct Depart {
      std::atomic<int>& w;
      ~Depart() { w.fetch_sub(1, std::memory_order_acq_rel); }
    } depart{waiting_};
    std::uint64_t snap = progress_.load(std::memory_order_acquire);
    int quiet = 0;
    for (;;) {
      if (cv.wait_for(lk, std::chrono::milliseconds(100),
                      [&] { return pred() || aborted(); })) {
        break;
      }
      const std::uint64_t now = progress_.load(std::memory_order_acquire);
      if (now != snap) {
        snap = now;
        quiet = 0;
        continue;
      }
      if (++quiet < 3) continue;  // ~300 ms of real-time quiescence
      if (waiting_.load(std::memory_order_acquire) <
          active_.load(std::memory_order_acquire)) {
        quiet = 0;  // someone is still computing — not a deadlock
        continue;
      }
      if (pending_wakeup(grank, held_ctx)) {
        quiet = 0;  // a delivered wakeup is still in flight — not a deadlock
        continue;
      }
      if (pred() || aborted()) break;
      FaultReport r = build_deadlock_report(grank);
      lk.unlock();
      record_fault(r);
      abort();
      throw FaultError(std::move(r));
    }
    if (!pred()) throw ClusterAborted();
  }

 private:
  MachineModel machine_;
  RunOptions opts_;
  std::unique_ptr<Scheduler> sched_;  // deterministic mode only
  std::deque<RankCtx> ranks_;  // deque: RankCtx is not movable (mutex)
  std::vector<std::unique_ptr<MetricsRegistry>> metrics_;  // per rank; metrics on only
  std::uint64_t ctx_counter_ = 0;  // pre-incremented under group mutexes only
  std::atomic<bool> aborted_{false};
  std::atomic<std::uint64_t> progress_{0};
  std::atomic<int> waiting_{0};
  std::atomic<int> active_;
  std::mutex fault_mu_;
  bool has_fault_ = false;
  FaultReport fault_;
  std::mutex groups_mu_;
  std::vector<std::weak_ptr<CommGroup>> groups_;
  CrashPlan crash_plan_;                  // empty unless perturb.crash_active()
  std::unique_ptr<CheckpointStore> ckpt_; // null unless perturb.crash_active()
  SdcPlan sdc_plan_;                      // empty unless perturb.sdc_active()
};

/// One communicator: a context id plus the member global ranks. Also hosts
/// the generation-numbered collective slots (barrier / allreduce / split).
class CommGroup : public std::enable_shared_from_this<CommGroup> {
 public:
  CommGroup(ClusterState* cluster, std::uint64_t ctx, std::vector<int> global_ranks)
      : cluster_(cluster), ctx_(ctx), globals_(std::move(global_ranks)) {}

  ClusterState* cluster() const { return cluster_; }
  std::uint64_t ctx() const { return ctx_; }
  int size() const { return static_cast<int>(globals_.size()); }
  int global_rank(int r) const { return globals_[static_cast<size_t>(r)]; }

  // --- ULFM revocation (docs/ROBUSTNESS.md) ---
  bool revoked() const { return revoked_.load(std::memory_order_acquire); }
  void set_revoked() { revoked_.store(true, std::memory_order_release); }

  /// Structured failure for an operation attempted on a revoked
  /// communicator (every member observes the same kind; detail names the
  /// context id so reports from different comms are distinguishable).
  [[noreturn]] void throw_revoked(int grank, double vt) const {
    FaultReport r;
    r.kind = FaultKind::kRevoked;
    r.rank = grank;
    r.vt = vt;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "communicator ctx=%llu was revoked",
                  static_cast<unsigned long long>(ctx_));
    r.detail = buf;
    throw FaultError(std::move(r));
  }

  /// State of one in-flight collective operation.
  struct CollSlot {
    int arrived = 0;
    int consumed = 0;
    /// Arrivals that complete the operation. Normally size(); shrink() and
    /// other survivor-only collectives lower it (dead ranks cannot arrive).
    int expected = 0;
    bool ready = false;
    double max_vt = 0.0;
    double max_fvt = 0.0;  ///< fault-clock sync point (barrier/allreduce_sum)
    std::int64_t agree_and = ~std::int64_t{0};      // agree() running AND
    std::vector<std::vector<Real>> contribs;        // allreduce inputs (by rank)
    std::vector<Real> reduce;                       // allreduce result
    std::vector<std::pair<int, int>> color_key;     // split inputs (by rank)
    std::vector<std::shared_ptr<CommGroup>> split_groups;  // split outputs
    std::vector<int> split_rank;                    // split outputs
  };

  /// Runs one collective: `deposit` stores this rank's contribution into
  /// the slot; the last arriver runs `finalize`; everyone then reads via
  /// `extract` after `ready`. All callbacks run under the group mutex.
  /// `grank`/`vt` identify the caller to the deterministic scheduler.
  /// `tolerate_revoked` lets ULFM repair collectives (agree/shrink) proceed
  /// on a revoked communicator; everything else fails with kRevoked.
  /// `expected` overrides the arrival count that completes the operation
  /// (-1 = all members) for survivor-only collectives.
  template <class Deposit, class Finalize, class Extract>
  auto collective(std::int64_t gen, int grank, double vt, Deposit deposit,
                  Finalize finalize, Extract extract,
                  bool tolerate_revoked = false, int expected = -1) {
    if (expected < 0) expected = size();
    if (!tolerate_revoked && revoked()) throw_revoked(grank, vt);
    if (Scheduler* sched = cluster_->sched()) {
      return collective_det(sched, gen, grank, vt, deposit, finalize, extract,
                            tolerate_revoked, expected);
    }
    std::unique_lock<std::mutex> lk(mu_);
    CollSlot& slot = slots_[gen];
    if (slot.expected == 0) slot.expected = expected;
    deposit(slot);
    if (++slot.arrived == slot.expected) {
      finalize(slot);
      slot.ready = true;
      cluster_->bump_progress();
      cv_.notify_all();
    } else {
      WaitScope ws(cluster_->rank(grank).wait, /*collective*/ 2,
                   static_cast<int>(gen), 0, 0, ctx_);
      cluster_->blocking_wait(
          lk, cv_, grank,
          [&] { return slot.ready || (!tolerate_revoked && revoked()); }, ctx_);
      if (!slot.ready) {
        lk.unlock();
        throw_revoked(grank, vt);
      }
    }
    auto result = extract(slot);
    if (++slot.consumed == slot.expected) slots_.erase(gen);
    return result;
  }

  void wake_all() {
    std::lock_guard<std::mutex> lk(mu_);  // lock so no waiter misses the flag
    cv_.notify_all();
  }

  /// Watchdog scan (ClusterState::pending_wakeup): a finalized collective
  /// not yet consumed by every expected member means a member was woken but
  /// has not run — in-flight progress, not quiescence. try_lock only: a
  /// contended mutex is itself evidence of activity, and never deadlocks
  /// against whatever the caller holds.
  bool pending_collective_wakeup() {
    std::unique_lock<std::mutex> lk(mu_, std::try_to_lock);
    if (!lk.owns_lock()) return true;
    for (const auto& [gen, slot] : slots_) {
      if (slot.ready && slot.consumed < slot.expected) return true;
    }
    return false;
  }

 private:
  /// Deterministic-mode collective: the caller holds the run token, so
  /// slot arrivals are already serialized; non-final arrivers release the
  /// token through the scheduler instead of waiting on the group condition
  /// variable, and the finalizer wakes the parked members.
  template <class Deposit, class Finalize, class Extract>
  auto collective_det(Scheduler* sched, std::int64_t gen, int grank, double vt,
                      Deposit deposit, Finalize finalize, Extract extract,
                      bool tolerate_revoked, int expected) {
    bool finalized_here = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      CollSlot& slot = slots_[gen];
      if (slot.expected == 0) slot.expected = expected;
      deposit(slot);
      if (++slot.arrived == slot.expected) {
        finalize(slot);
        slot.ready = true;
        finalized_here = true;
      }
    }
    if (finalized_here) {
      cluster_->bump_progress();
      for (const int g : globals_) {
        if (g != grank) sched->wake(g);
      }
    } else {
      WaitScope ws(cluster_->rank(grank).wait, /*collective*/ 2,
                   static_cast<int>(gen), 0, 0, ctx_);
      for (;;) {
        {
          std::lock_guard<std::mutex> lk(mu_);
          if (slots_[gen].ready) break;
        }
        if (!tolerate_revoked && revoked()) throw_revoked(grank, vt);
        if (cluster_->aborted()) throw ClusterAborted();
        sched->block(grank, vt);  // a stray message wake rechecks and re-parks
      }
    }
    std::lock_guard<std::mutex> lk(mu_);
    CollSlot& slot = slots_[gen];
    auto result = extract(slot);
    if (++slot.consumed == slot.expected) slots_.erase(gen);
    return result;
  }

  ClusterState* cluster_;
  std::uint64_t ctx_;
  std::vector<int> globals_;
  std::atomic<bool> revoked_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::int64_t, CollSlot> slots_;
};

bool ClusterState::pending_wakeup(int skip_rank, std::uint64_t held_ctx) {
  // A queued envelope already matching some parked rank's published recv
  // wait: the receiver was notified but its thread has not run yet.
  // `skip_rank` is the caller — in a recv wait it holds its own mailbox
  // mutex (try_lock on an owned std::mutex is undefined), and its own pred
  // is re-checked separately anyway.
  for (size_t i = 0; i < ranks_.size(); ++i) {
    if (static_cast<int>(i) == skip_rank) continue;
    RankCtx& rc = ranks_[i];
    if (rc.wait.kind.load(std::memory_order_acquire) != 1) continue;
    const int src = rc.wait.a.load(std::memory_order_relaxed);
    const int lo = rc.wait.b.load(std::memory_order_relaxed);
    const int hi = rc.wait.c.load(std::memory_order_relaxed);
    const std::uint64_t wctx = rc.wait.ctx.load(std::memory_order_relaxed);
    std::unique_lock<std::mutex> lk(rc.mailbox.mu, std::try_to_lock);
    if (!lk.owns_lock()) return true;  // the owner or a sender is active now
    for (const auto& e : rc.mailbox.q) {
      // Envelope src and the published wait are both comm-local, compared
      // under the same communicator context.
      if (e.ctx == wctx && (src == kAnySource || e.msg.src == src) &&
          (lo >= hi || (e.msg.tag >= lo && e.msg.tag < hi))) {
        return true;
      }
    }
  }
  // A finalized-but-unconsumed collective: a member was woken to extract
  // but has not run yet. Snapshot under groups_mu_, scan after releasing it
  // (same discipline as abort()); skip the group whose mutex the caller
  // holds during its own collective wait.
  std::vector<std::shared_ptr<CommGroup>> live;
  {
    std::lock_guard<std::mutex> lk(groups_mu_);
    live.reserve(groups_.size());
    for (auto& wg : groups_) {
      if (auto g = wg.lock()) live.push_back(std::move(g));
    }
  }
  for (auto& g : live) {
    if (g->ctx() == held_ctx) continue;
    if (g->pending_collective_wakeup()) return true;
  }
  return false;
}

void ClusterState::abort() {
  aborted_.store(true, std::memory_order_release);
  if (sched_) sched_->abort();
  for (auto& r : ranks_) {
    std::lock_guard<std::mutex> lk(r.mailbox.mu);
    r.mailbox.cv.notify_all();
  }
  // Snapshot under groups_mu_, wake outside it: split() registers new
  // groups while holding a group mutex, so waking while holding groups_mu_
  // would invert that order (groups_mu_ -> group mu_ vs the reverse).
  std::vector<std::shared_ptr<CommGroup>> live;
  {
    std::lock_guard<std::mutex> lk(groups_mu_);
    live.reserve(groups_.size());
    for (auto& wg : groups_) {
      if (auto g = wg.lock()) live.push_back(std::move(g));
    }
  }
  for (auto& g : live) g->wake_all();
}

}  // namespace detail

int Comm::size() const { return group_->size(); }

const MachineModel& Comm::machine() const { return group_->cluster()->machine(); }

double Comm::vtime() const { return ctx_->vt; }

void Comm::advance(double seconds, TimeCategory cat) {
  ctx_->advance_traced(seconds, cat, TraceEventKind::kAdvance);
}

void Comm::compute(double flops) {
  // ctx_->skew is 1 unless the perturbation model sets a compute skew.
  ctx_->advance_traced(flops / machine().cpu_flop_rate * ctx_->skew,
                       TimeCategory::kFp, TraceEventKind::kCompute);
}

void Comm::reset_clock() {
  ctx_->vt = 0.0;
  ctx_->fvt = 0.0;
  ctx_->tstats = TransportStats{};
  for (double& c : ctx_->category) c = 0.0;
  for (auto& m : ctx_->messages) m = 0;
  for (auto& b : ctx_->bytes) b = 0;
  // fseq (like send_seq below) and seen_seqs survive: fault draws must not
  // collide across phases and accepted sequence numbers stay unique.
  // Crash-stop recovery re-arms with the clock: crash times are interpreted
  // on the post-reset clock (= relative to solve start when the solver
  // resets after its setup barrier), the recovery ledger restarts, and
  // pre-reset checkpoint images are dropped so replay arithmetic never
  // mixes clocks. A schedule entry smaller than the setup time fires once
  // pre-reset too — benign: its ledger entries are discarded here and it
  // re-fires on the fresh clock.
  ctx_->rstats = RecoveryStats{};
  ctx_->crash_idx = 0;
  ctx_->crash_total = 0.0;
  ctx_->ckpt_epoch_counter = 0;
  // SDC re-arms the same way: memory-fault times are on the post-reset
  // clock and the ABFT ledger restarts with the run it accounts for.
  ctx_->sdc = SdcStats{};
  ctx_->sdc_idx = 0;
  // Degrade events ride the crash schedule's clock, so they re-arm with it.
  ctx_->dstats = DegradationStats{};
  ctx_->degrade_idx = 0;
  ctx_->degrade_mult = 1.0;
  // Elasticity re-arms the same way: return times and the straggler
  // watermark are interpreted on the post-reset clock.
  ctx_->estats = ElasticityStats{};
  ctx_->elastic_idx = 0;
  ctx_->straggle_hwm = 0.0;
  if (ctx_->ckpt != nullptr) ctx_->ckpt->clear(ctx_->grank);
  // Setup-phase events would break the fresh clock's contiguity; drop them.
  // send_seq is deliberately NOT reset: a pre-reset send could otherwise
  // alias a post-reset one under the same (rank, seq) matching key.
  if (ctx_->tracing) {
    ctx_->trace.events.clear();
    ctx_->trace.spans.clear();
    ctx_->trace.marks.clear();
    ++ctx_->trace_epoch;
  }
  // Metrics mirror the clean counters, so they restart with them; the
  // sampling grid re-anchors on the fresh clock. The flight-recorder ring
  // deliberately survives — "the most recent events" include setup.
  if (ctx_->metrics != nullptr) {
    ctx_->metrics->reset();
    ctx_->next_sample = ctx_->metrics_period;
  }
}

TraceSpan Comm::annotate(const char* label, std::int64_t arg) const {
  return TraceSpan(ctx_->tracing ? ctx_ : nullptr, label, arg);
}

MetricsRegistry::Counter Comm::metric_counter(const char* name) const {
  return ctx_->metrics != nullptr ? ctx_->metrics->counter(name)
                                  : MetricsRegistry::Counter{};
}

MetricsRegistry::Gauge Comm::metric_gauge(const char* name) const {
  return ctx_->metrics != nullptr ? ctx_->metrics->gauge(name)
                                  : MetricsRegistry::Gauge{};
}

MetricsRegistry::Histogram Comm::metric_histogram(
    const char* name, std::span<const double> bounds) const {
  return ctx_->metrics != nullptr ? ctx_->metrics->histogram(name, bounds)
                                  : MetricsRegistry::Histogram{};
}

TraceSpan::TraceSpan(detail::RankCtx* ctx, const char* label, std::int64_t arg)
    : ctx_(ctx) {
  if (ctx_ == nullptr) return;
  epoch_ = ctx_->trace_epoch;
  index_ = ctx_->trace.spans.size();
  ctx_->trace.spans.push_back({label, arg, ctx_->vt, ctx_->vt});
}

TraceSpan::TraceSpan(TraceSpan&& other) noexcept
    : ctx_(other.ctx_), index_(other.index_), epoch_(other.epoch_) {
  other.ctx_ = nullptr;
}

TraceSpan::~TraceSpan() {
  if (ctx_ == nullptr || epoch_ != ctx_->trace_epoch) return;
  ctx_->trace.spans[index_].t1 = ctx_->vt;
}

double Comm::category_time(TimeCategory cat) const {
  return ctx_->category[static_cast<int>(cat)];
}

std::int64_t Comm::messages_sent(TimeCategory cat) const {
  return ctx_->messages[static_cast<int>(cat)];
}

std::int64_t Comm::bytes_sent(TimeCategory cat) const {
  return ctx_->bytes[static_cast<int>(cat)];
}

double Comm::fault_vtime() const { return ctx_->fvt; }

const TransportStats& Comm::transport_stats() const { return ctx_->tstats; }

void Comm::send(int dst, int tag, std::vector<Real> data, TimeCategory cat) {
  send_link(dst, tag, std::move(data), machine().net, machine().mpi_overhead, cat);
}

void Comm::send_link(int dst, int tag, std::vector<Real> data, const LinkParams& link,
                     double overhead, TimeCategory cat) {
  if (dst < 0 || dst >= size()) throw std::out_of_range("Comm::send: bad destination");
  if (group_->revoked()) group_->throw_revoked(ctx_->grank, ctx_->vt);
  detail::ClusterState* cluster = group_->cluster();
  const double t0 = ctx_->vt;
  ctx_->advance(overhead, cat);
  ++ctx_->messages[static_cast<int>(cat)];
  ctx_->bytes[static_cast<int>(cat)] +=
      static_cast<std::int64_t>(data.size() * sizeof(Real));
  const double bytes = static_cast<double>(data.size()) * sizeof(Real);

  // Perturbation hooks: timing only — payload, counts and destination are
  // untouched, so results must be invariant under any seed.
  double latency = link.latency;
  double bandwidth = link.bandwidth;
  double extra_delay = 0.0;
  const PerturbationModel& pm = machine().perturb;
  if (pm.active()) {
    const std::uint64_t seed = cluster->opts().seed;
    for (const auto& dg : pm.degradations) {
      if (!dg.all_categories && dg.category != cat) continue;
      if (ctx_->vt < dg.vt_begin || ctx_->vt >= dg.vt_end) continue;
      latency *= dg.latency_factor;
      bandwidth *= dg.bandwidth_factor;
    }
    if (pm.latency_jitter > 0.0) {
      latency *= 1.0 + pm.latency_jitter *
                           detail::perturb_uniform(
                               seed, static_cast<std::uint64_t>(ctx_->grank),
                               ctx_->pseq++);
    }
    if (pm.delivery_delay > 0.0) {
      extra_delay = pm.delivery_delay *
                    detail::perturb_uniform(seed,
                                            static_cast<std::uint64_t>(ctx_->grank),
                                            ctx_->pseq++);
    }
  }

  detail::Envelope env;
  env.ctx = group_->ctx();
  env.src_grank = ctx_->grank;
  env.seq = ctx_->send_seq++;
  env.msg.src = rank_;
  env.msg.tag = tag;
  env.msg.data = std::move(data);
  env.msg.arrival = ctx_->vt + latency + bytes / bandwidth + extra_delay;
  // Fault-clock arrival mirrors the clean expression term for term, so the
  // two stay bitwise equal until a delivery fault actually intervenes.
  env.fault_arrival = ctx_->fvt + latency + bytes / bandwidth + extra_delay;
  const int dst_grank = group_->global_rank(dst);
  // Metrics mirror of the clean bumps above + the send's flight entry.
  // Mirrors write metric storage only — no clock state — so the clean
  // ledger is bitwise invariant under metrics on/off.
  ctx_->mh.msgs[static_cast<int>(cat)].add();
  ctx_->mh.bytes[static_cast<int>(cat)].add(
      static_cast<std::int64_t>(env.msg.data.size() * sizeof(Real)));
  const int peer_dist = dst_grank >= ctx_->grank ? dst_grank - ctx_->grank
                                                 : ctx_->grank - dst_grank;
  ctx_->mh.peer_dist.observe(static_cast<double>(peer_dist));
  ctx_->flight_record(detail::RankCtx::FlightEntry::kSend, dst_grank, tag, 0,
                      static_cast<std::int64_t>(env.msg.data.size() * sizeof(Real)));
  if (pm.delivery_active()) {
    // Reliable transport (docs/ROBUSTNESS.md): push the message through the
    // analytic ack/retransmit simulation. The clean ledger above is already
    // final — recovery delay and retransmit traffic land on the fault
    // ledger only. The sender never blocks (buffered-send semantics: the
    // retransmit timers run concurrently with the sender's progress).
    const TransportOptions& topt = machine().transport;
    const double flight = latency + bytes / bandwidth + extra_delay;
    const double ack_flight = latency + topt.ack_bytes / bandwidth;
    auto outcome = std::make_unique<TransportOutcome>(simulate_transport(
        pm, topt, cluster->opts().seed, ctx_->grank, dst_grank, ctx_->vt, flight,
        ack_flight, overhead, &ctx_->fseq));
    env.fault_arrival += outcome->extra_delay;
    env.checksum = frame_checksum(ctx_->grank, dst_grank, tag,
                                  static_cast<std::uint64_t>(env.seq),
                                  env.msg.data);
    TransportStats& ts = ctx_->tstats;
    ts.data_frames += outcome->attempts;
    ts.retransmits += outcome->attempts - 1;
    ts.retrans_bytes += static_cast<std::int64_t>(outcome->attempts - 1) *
                        static_cast<std::int64_t>(env.msg.data.size() * sizeof(Real));
    ts.timeouts += outcome->timeouts;
    ts.frames_dropped += outcome->frames_dropped;
    ctx_->mh.retransmits.add(outcome->attempts - 1);
    ctx_->mh.timeouts.add(outcome->timeouts);
    ctx_->mh.frames_dropped.add(outcome->frames_dropped);
    env.transport = std::move(outcome);
  }
  if (ctx_->tracing) {
    TraceEvent e;
    e.kind = TraceEventKind::kSend;
    e.cat = cat;
    e.t0 = t0;
    e.t1 = ctx_->vt;
    e.peer = dst_grank;
    e.tag = tag;
    e.bytes = static_cast<std::int64_t>(env.msg.data.size() * sizeof(Real));
    e.arrival = env.msg.arrival;
    e.seq = env.seq;
    e.ctx = env.ctx;
    if (env.transport) {
      e.retrans = env.transport->attempts - 1;
      e.fault_arrival = env.fault_arrival;
    }
    ctx_->trace.events.push_back(e);
  }
  detail::Mailbox& box = cluster->rank(dst_grank).mailbox;
  {
    std::lock_guard<std::mutex> lk(box.mu);
    box.q.push_back(std::move(env));
  }
  cluster->bump_progress();
  box.cv.notify_all();
  // Deterministic mode: the receiver parks in the scheduler, not on the
  // mailbox condition variable.
  if (detail::Scheduler* sched = cluster->sched()) sched->wake(dst_grank);
}

Message Comm::recv(int src, int tag, TimeCategory cat) {
  if (tag == kAnyTag) return recv_range(src, 0, 0, cat);
  return recv_range(src, tag, tag + 1, cat);
}

Message Comm::recv_range(int src, int tag_lo, int tag_hi, TimeCategory cat) {
  if (src != kAnySource && (src < 0 || src >= size())) {
    throw std::out_of_range("Comm::recv: bad source");
  }
  const bool any_tag = (tag_lo >= tag_hi);
  detail::Mailbox& box = ctx_->mailbox;
  // Watchdog diagnostics: publish what this rank is about to wait on, so a
  // wedged run names the blocking (src, tag) per rank (docs/ROBUSTNESS.md).
  detail::WaitScope ws(ctx_->wait, /*recv*/ 1, src, tag_lo, tag_hi, group_->ctx());
  // Flight-recorder entry for the wait itself, recorded *before* parking:
  // if this receive never completes (deadlock, exhausted retries), the ring
  // still names what the rank was waiting on.
  ctx_->flight_record(detail::RankCtx::FlightEntry::kRecvWait, src, tag_lo, tag_hi, 0);
  auto matches = [&](const detail::Envelope& e) {
    return e.ctx == group_->ctx() && (src == kAnySource || e.msg.src == src) &&
           (any_tag || (e.msg.tag >= tag_lo && e.msg.tag < tag_hi));
  };
  // Among queued matches take the earliest virtual arrival (unperturbed
  // per-source arrivals are monotone, so same-source FIFO is preserved;
  // perturbation seeds may reorder them — by design, solvers must not care).
  // Bitwise-equal arrivals are broken lexicographically by (sender, seq) —
  // never by queue insertion order, which would leak the thread/grant order
  // into the wildcard choice, and never by a policy-seeded score: which
  // equal-arrival message is taken first changes the virtual times of the
  // sends issued between the two takes, so the tie-break must be one fixed
  // function of the messages themselves for the clean ledger to stay
  // schedule-invariant (docs/TESTING.md).
  auto earlier = [&](const detail::Envelope& a, const detail::Envelope& b) {
    if (a.msg.arrival != b.msg.arrival) return a.msg.arrival < b.msg.arrival;
    if (a.src_grank != b.src_grank) return a.src_grank < b.src_grank;
    return a.seq < b.seq;
  };
  auto scan = [&]() {
    auto best = box.q.end();
    for (auto it = box.q.begin(); it != box.q.end(); ++it) {
      if (matches(*it) && (best == box.q.end() || earlier(*it, *best))) {
        best = it;
      }
    }
    return best;
  };
  auto take = [&](std::deque<detail::Envelope>::iterator best) {
    const int src_grank = best->src_grank;
    const std::int64_t seq = best->seq;
    const std::uint64_t env_ctx = best->ctx;
    const std::uint64_t checksum = best->checksum;
    const double fa = best->fault_arrival;
    std::unique_ptr<const TransportOutcome> outcome = std::move(best->transport);
    Message msg = std::move(best->msg);
    box.q.erase(best);
    if (outcome) {
      if (outcome->failed) {
        // The transport never got an intact copy through (retry budget
        // exhausted or a permanent stall): fail the blocking receive with a
        // structured report instead of waiting forever.
        FaultReport r;
        r.kind = outcome->stalled ? FaultKind::kRankStalled
                                  : FaultKind::kRetriesExhausted;
        r.rank = ctx_->grank;
        r.peer = src_grank;
        r.tag = msg.tag;
        r.retries = outcome->attempts - 1;
        r.vt = ctx_->vt;
        r.detail = outcome->stalled
                       ? "peer permanently stalled; no attempt was delivered"
                       : "retry budget exhausted without an intact delivery";
        throw FaultError(std::move(r));
      }
      // Receiver side of the fault ledger: acks returned, duplicates
      // suppressed by the sequence numbers, corrupt frames the checksum
      // rejected, stragglers resequenced on arrival.
      TransportStats& ts = ctx_->tstats;
      ts.acks += outcome->acks;
      ts.ack_bytes += static_cast<std::int64_t>(outcome->acks) *
                      static_cast<std::int64_t>(machine().transport.ack_bytes);
      ts.corrupt_detected += outcome->corrupt;
      ts.duplicates += outcome->duplicates;
      ts.reordered += outcome->reordered ? 1 : 0;
      ctx_->mh.acks.add(outcome->acks);
      ctx_->mh.duplicates.add(outcome->duplicates);
      // End-to-end verification on the accepted copy: the whole-frame
      // checksum stamped at send — header (src, dst, tag, seq) before the
      // payload bytes — must match, and the per-sender sequence number must
      // be fresh. A violation is a transport bug, not a modeled fault.
      if (checksum != frame_checksum(src_grank, ctx_->grank, msg.tag,
                                     static_cast<std::uint64_t>(seq), msg.data)) {
        throw std::logic_error("reliable transport: accepted frame fails checksum");
      }
      if (!ctx_->seen_seqs[src_grank].insert(seq).second) {
        throw std::logic_error("reliable transport: duplicate reached the application");
      }
    }
    const double t0 = ctx_->vt;
    const double ft0 = ctx_->fvt;
    const double c0 = ctx_->crash_total;
    // One advance covers wait-until-arrival plus software overhead, so the
    // clock math is bit-identical with tracing on or off; the trace splits
    // wait from commit analytically via the recorded arrival.
    ctx_->advance(std::max(0.0, msg.arrival - t0) + machine().mpi_overhead, cat);
    // Rewrite the fault clock with the mirrored expression against the
    // fault arrival: same ops, same order, so fvt == vt bitwise until a
    // fault actually adds delay. A crash that fired inside the advance above
    // put its delay on fvt too — re-apply it after the rewrite (the
    // inequality guard keeps the no-crash arithmetic bitwise untouched).
    ctx_->fvt = ft0;
    ctx_->fvt += std::max(0.0, fa - ft0) + machine().mpi_overhead;
    if (ctx_->crash_total != c0) ctx_->fvt += ctx_->crash_total - c0;
    // Per-rank wait time: the receive's blocked span on the clean clock
    // (same expression the advance above charged, recomputed read-only).
    ctx_->mh.wait.observe(std::max(0.0, msg.arrival - t0));
    ctx_->flight_record(detail::RankCtx::FlightEntry::kRecvDone, src_grank, msg.tag,
                        0, static_cast<std::int64_t>(msg.data.size() * sizeof(Real)));
    if (ctx_->tracing) {
      TraceEvent e;
      e.kind = TraceEventKind::kRecv;
      e.cat = cat;
      e.t0 = t0;
      e.t1 = ctx_->vt;
      e.peer = src_grank;
      e.tag = msg.tag;
      e.bytes = static_cast<std::int64_t>(msg.data.size() * sizeof(Real));
      e.arrival = msg.arrival;
      e.seq = seq;
      e.ctx = env_ctx;
      if (outcome) {
        e.retrans = outcome->attempts - 1;
        e.fault_arrival = fa;
      }
      ctx_->trace.events.push_back(e);
    }
    return msg;
  };

  if (detail::Scheduler* sched = group_->cluster()->sched()) {
    // Deterministic mode: the caller holds the run token. Park until a
    // match is queued, then commit only once no READY rank could still
    // execute (and send) below the commit time — the wildcard choice is
    // the globally earliest arrival any runnable rank can produce.
    for (;;) {
      if (group_->revoked()) group_->throw_revoked(ctx_->grank, ctx_->vt);
      if (group_->cluster()->aborted()) throw detail::ClusterAborted();
      std::unique_lock<std::mutex> lk(box.mu);
      auto best = scan();
      if (best == box.q.end()) {
        lk.unlock();
        sched->block(ctx_->grank, ctx_->vt);
        continue;
      }
      const double commit = std::max(ctx_->vt, best->msg.arrival);
      if (sched->ready_below(ctx_->grank, commit)) {
        lk.unlock();
        sched->yield(ctx_->grank, commit);
        continue;  // an earlier message may have been queued meanwhile
      }
      return take(best);
    }
  }

  if (group_->revoked()) group_->throw_revoked(ctx_->grank, ctx_->vt);
  std::unique_lock<std::mutex> lk(box.mu);
  std::deque<detail::Envelope>::iterator best = box.q.end();
  group_->cluster()->blocking_wait(lk, box.cv, ctx_->grank, [&] {
    if (group_->revoked()) return true;
    best = scan();
    return best != box.q.end();
  });
  if (best == box.q.end()) {
    lk.unlock();
    group_->throw_revoked(ctx_->grank, ctx_->vt);
  }
  return take(best);
}

bool Comm::probe(int src, int tag) {
  detail::Mailbox& box = ctx_->mailbox;
  auto scan = [&] {
    std::lock_guard<std::mutex> lk(box.mu);
    for (const auto& e : box.q) {
      if (e.ctx == group_->ctx() && (src == kAnySource || e.msg.src == src) &&
          (tag == kAnyTag || e.msg.tag == tag)) {
        return true;
      }
    }
    return false;
  };
  if (scan()) return true;
  // Deterministic mode: a miss yields the token at an infinite key so
  // probe-spin loops make progress (everyone else runs first), then
  // rescans — without this a spinning rank would hold the token forever.
  if (detail::Scheduler* sched = group_->cluster()->sched()) {
    sched->yield(ctx_->grank, std::numeric_limits<double>::infinity());
    return scan();
  }
  return false;
}

void Comm::barrier(TimeCategory cat) {
  // The cost model charges 2*ceil(log2 P) tree hops; the message counters
  // charge the same modeled messages (zero-byte) so collective traffic is
  // visible next to point-to-point traffic (docs/MODEL.md).
  const std::int64_t tree_msgs = 2 * static_cast<std::int64_t>(detail::log2_ceil(size()));
  const double cost = static_cast<double>(tree_msgs) *
                      (machine().net.latency + machine().mpi_overhead);
  const std::int64_t gen = coll_gen_++;
  const double my_vt = ctx_->vt;
  const double my_fvt = ctx_->fvt;
  const double c0 = ctx_->crash_total;
  const auto sync = group_->collective(
      gen, ctx_->grank, my_vt,
      [&](auto& slot) {
        slot.max_vt = std::max(slot.max_vt, my_vt);
        slot.max_fvt = std::max(slot.max_fvt, my_fvt);
      },
      [](auto&) {},
      [](auto& slot) { return std::pair<double, double>(slot.max_vt, slot.max_fvt); });
  const double sync_vt = sync.first;
  ctx_->advance(std::max(0.0, sync_vt - my_vt) + cost, cat);
  // Mirrored fault-clock sync (same expression shape; bitwise-equal while
  // the run is fault-free). A crash fired inside the advance re-applies its
  // delay after the rewrite.
  ctx_->fvt = my_fvt;
  ctx_->fvt += std::max(0.0, sync.second - my_fvt) + cost;
  if (ctx_->crash_total != c0) ctx_->fvt += ctx_->crash_total - c0;
  ctx_->messages[static_cast<int>(cat)] += tree_msgs;
  ctx_->mh.msgs[static_cast<int>(cat)].add(tree_msgs);
  ctx_->flight_record(detail::RankCtx::FlightEntry::kCollective, -1,
                      static_cast<int>(gen), 0, 0);
  if (ctx_->tracing) {
    TraceEvent e;
    e.kind = TraceEventKind::kCollective;
    e.cat = cat;
    e.t0 = my_vt;
    e.t1 = ctx_->vt;
    e.arrival = sync_vt;
    e.seq = gen;
    e.ctx = group_->ctx();
    e.label = "barrier";
    ctx_->trace.events.push_back(e);
  }
}

std::vector<Real> Comm::allreduce_sum(std::span<const Real> v, TimeCategory cat) {
  const double bytes = static_cast<double>(v.size()) * sizeof(Real);
  // Recursive doubling: 2*ceil(log2 P) modeled tree messages, each carrying
  // the full payload — counted like the cost model charges them.
  const std::int64_t tree_msgs = 2 * static_cast<std::int64_t>(detail::log2_ceil(size()));
  const double cost = static_cast<double>(tree_msgs) *
                      (machine().net.latency + machine().mpi_overhead +
                       bytes / machine().net.bandwidth);
  const std::int64_t gen = coll_gen_++;
  const double my_vt = ctx_->vt;
  const double my_fvt = ctx_->fvt;
  const double c0 = ctx_->crash_total;
  const int nmembers = size();
  auto result = group_->collective(
      gen, ctx_->grank, my_vt,
      [&](auto& slot) {
        slot.max_vt = std::max(slot.max_vt, my_vt);
        slot.max_fvt = std::max(slot.max_fvt, my_fvt);
        if (slot.contribs.empty()) {
          slot.contribs.resize(static_cast<size_t>(nmembers));
        }
        slot.contribs[static_cast<size_t>(rank_)].assign(v.begin(), v.end());
      },
      [nmembers](auto& slot) {
        // Sum in rank order — the reduction order is fixed by rank, not by
        // arrival, so the result is bitwise identical in every run.
        slot.reduce.assign(slot.contribs.front().size(), 0.0);
        for (int r = 0; r < nmembers; ++r) {
          const auto& c = slot.contribs[static_cast<size_t>(r)];
          if (c.size() != slot.reduce.size()) {
            throw std::invalid_argument("allreduce_sum: mismatched lengths");
          }
          for (size_t i = 0; i < c.size(); ++i) slot.reduce[i] += c[i];
        }
      },
      [](auto& slot) {
        return std::tuple<std::vector<Real>, double, double>(slot.reduce, slot.max_vt,
                                                             slot.max_fvt);
      });
  ctx_->advance(std::max(0.0, std::get<1>(result) - ctx_->vt) + cost, cat);
  ctx_->fvt = my_fvt;
  ctx_->fvt += std::max(0.0, std::get<2>(result) - my_fvt) + cost;
  if (ctx_->crash_total != c0) ctx_->fvt += ctx_->crash_total - c0;
  const std::int64_t payload = static_cast<std::int64_t>(v.size() * sizeof(Real));
  ctx_->messages[static_cast<int>(cat)] += tree_msgs;
  ctx_->bytes[static_cast<int>(cat)] += tree_msgs * payload;
  ctx_->mh.msgs[static_cast<int>(cat)].add(tree_msgs);
  ctx_->mh.bytes[static_cast<int>(cat)].add(tree_msgs * payload);
  ctx_->flight_record(detail::RankCtx::FlightEntry::kCollective, -1,
                      static_cast<int>(gen), 0, payload);
  if (ctx_->tracing) {
    TraceEvent e;
    e.kind = TraceEventKind::kCollective;
    e.cat = cat;
    e.t0 = my_vt;
    e.t1 = ctx_->vt;
    e.bytes = payload;
    e.arrival = std::get<1>(result);
    e.seq = gen;
    e.ctx = group_->ctx();
    e.label = "allreduce";
    ctx_->trace.events.push_back(e);
  }
  return std::move(std::get<0>(result));
}

double Comm::allreduce_max(double v) {
  auto result = group_->collective(
      coll_gen_++, ctx_->grank, ctx_->vt,
      [&](auto& slot) { slot.max_vt = std::max(slot.max_vt, v); },
      [](auto&) {}, [](auto& slot) { return slot.max_vt; });
  return result;
}

Comm Comm::split(int color, int key) {
  auto group = group_;  // keep alive across the collective
  auto result = group_->collective(
      coll_gen_++, ctx_->grank, ctx_->vt,
      [&](auto& slot) {
        if (slot.color_key.empty()) {
          slot.color_key.assign(static_cast<size_t>(size()), {0, 0});
          slot.split_groups.resize(static_cast<size_t>(size()));
          slot.split_rank.assign(static_cast<size_t>(size()), 0);
        }
        slot.color_key[static_cast<size_t>(rank_)] = {color, key};
      },
      [&](auto& slot) {
        // Build one CommGroup per color; members ordered by (key, rank).
        std::map<int, std::vector<int>> members;  // color -> old ranks
        for (int r = 0; r < size(); ++r) {
          members[slot.color_key[static_cast<size_t>(r)].first].push_back(r);
        }
        for (auto& [c, ranks] : members) {
          std::stable_sort(ranks.begin(), ranks.end(), [&](int a, int b) {
            return slot.color_key[static_cast<size_t>(a)].second <
                   slot.color_key[static_cast<size_t>(b)].second;
          });
          std::vector<int> globals;
          globals.reserve(ranks.size());
          for (const int r : ranks) globals.push_back(group->global_rank(r));
          auto g = std::make_shared<detail::CommGroup>(
              group->cluster(), group->cluster()->next_ctx(), std::move(globals));
          group->cluster()->register_group(g);
          for (size_t i = 0; i < ranks.size(); ++i) {
            slot.split_groups[static_cast<size_t>(ranks[i])] = g;
            slot.split_rank[static_cast<size_t>(ranks[i])] = static_cast<int>(i);
          }
        }
      },
      [&](auto& slot) {
        return std::pair<std::shared_ptr<detail::CommGroup>, int>(
            slot.split_groups[static_cast<size_t>(rank_)],
            slot.split_rank[static_cast<size_t>(rank_)]);
      });
  return Comm(std::move(result.first), result.second, ctx_);
}

void Comm::revoke(TimeCategory cat) {
  detail::ClusterState* cluster = group_->cluster();
  // One-sided asynchronous notification: costs the revoker one software
  // overhead, synchronizes nothing.
  ctx_->advance_traced(machine().mpi_overhead, cat, TraceEventKind::kAdvance);
  group_->set_revoked();
  cluster->bump_progress();
  // Wake every member parked on this communicator (mailbox recv waits,
  // collective waits, scheduler blocks) so pending operations fail now
  // rather than at their next natural wakeup.
  for (int r = 0; r < group_->size(); ++r) {
    const int g = group_->global_rank(r);
    if (g == ctx_->grank) continue;
    detail::Mailbox& box = cluster->rank(g).mailbox;
    {
      std::lock_guard<std::mutex> lk(box.mu);  // no waiter may miss the flag
      box.cv.notify_all();
    }
    if (detail::Scheduler* sched = cluster->sched()) sched->wake(g);
  }
  group_->wake_all();
}

bool Comm::revoked() const { return group_->revoked(); }

std::int64_t Comm::agree(std::int64_t value, TimeCategory cat) {
  // Two synchronizing tree sweeps (a reduce and a confirmation round —
  // ULFM agreement is roughly two barriers' worth of traffic).
  const std::int64_t tree_msgs = 4 * static_cast<std::int64_t>(detail::log2_ceil(size()));
  const double cost = static_cast<double>(tree_msgs) *
                      (machine().net.latency + machine().mpi_overhead);
  const std::int64_t gen = coll_gen_++;
  const double my_vt = ctx_->vt;
  const double my_fvt = ctx_->fvt;
  const double c0 = ctx_->crash_total;
  const auto result = group_->collective(
      gen, ctx_->grank, my_vt,
      [&](auto& slot) {
        slot.max_vt = std::max(slot.max_vt, my_vt);
        slot.max_fvt = std::max(slot.max_fvt, my_fvt);
        slot.agree_and &= value;
      },
      [](auto&) {},
      [](auto& slot) {
        return std::tuple<std::int64_t, double, double>(slot.agree_and, slot.max_vt,
                                                        slot.max_fvt);
      },
      /*tolerate_revoked=*/true);
  ctx_->advance(std::max(0.0, std::get<1>(result) - my_vt) + cost, cat);
  ctx_->fvt = my_fvt;
  ctx_->fvt += std::max(0.0, std::get<2>(result) - my_fvt) + cost;
  if (ctx_->crash_total != c0) ctx_->fvt += ctx_->crash_total - c0;
  ctx_->messages[static_cast<int>(cat)] += tree_msgs;
  ctx_->mh.msgs[static_cast<int>(cat)].add(tree_msgs);
  ctx_->flight_record(detail::RankCtx::FlightEntry::kCollective, -1,
                      static_cast<int>(gen), 0, 0);
  if (ctx_->tracing) {
    TraceEvent e;
    e.kind = TraceEventKind::kCollective;
    e.cat = cat;
    e.t0 = my_vt;
    e.t1 = ctx_->vt;
    e.arrival = std::get<1>(result);
    e.seq = gen;
    e.ctx = group_->ctx();
    e.label = "agree";
    ctx_->trace.events.push_back(e);
  }
  return std::get<0>(result);
}

Comm Comm::shrink(const std::vector<int>& failed, TimeCategory cat) {
  std::set<int> dead;
  for (const int f : failed) {
    if (f < 0 || f >= size()) throw std::out_of_range("Comm::shrink: bad failed rank");
    if (f == rank_) {
      throw std::invalid_argument("Comm::shrink: a survivor cannot be on its own failed list");
    }
    dead.insert(f);
  }
  const int expected = size() - static_cast<int>(dead.size());
  // Survivor-only synchronizing sweep: completion needs exactly `expected`
  // arrivals — the dead ranks, by definition, never arrive.
  const std::int64_t tree_msgs =
      2 * static_cast<std::int64_t>(detail::log2_ceil(expected));
  const double cost = static_cast<double>(tree_msgs) *
                      (machine().net.latency + machine().mpi_overhead);
  const std::int64_t gen = coll_gen_++;
  const double my_vt = ctx_->vt;
  const double my_fvt = ctx_->fvt;
  const double c0 = ctx_->crash_total;
  auto group = group_;  // keep alive across the collective
  auto result = group_->collective(
      gen, ctx_->grank, my_vt,
      [&](auto& slot) {
        slot.max_vt = std::max(slot.max_vt, my_vt);
        slot.max_fvt = std::max(slot.max_fvt, my_fvt);
        if (slot.color_key.empty()) {
          slot.color_key.assign(static_cast<size_t>(size()), {0, 0});
          slot.split_groups.resize(static_cast<size_t>(size()));
          slot.split_rank.assign(static_cast<size_t>(size()), 0);
        }
        slot.color_key[static_cast<size_t>(rank_)] = {1, 0};  // I survived
      },
      [&](auto& slot) {
        // Membership is exactly the callers, in old rank order.
        std::vector<int> survivors;
        for (int r = 0; r < size(); ++r) {
          if (slot.color_key[static_cast<size_t>(r)].first == 1) survivors.push_back(r);
        }
        std::vector<int> globals;
        globals.reserve(survivors.size());
        for (const int r : survivors) globals.push_back(group->global_rank(r));
        auto g = std::make_shared<detail::CommGroup>(
            group->cluster(), group->cluster()->next_ctx(), std::move(globals));
        group->cluster()->register_group(g);
        for (size_t i = 0; i < survivors.size(); ++i) {
          slot.split_groups[static_cast<size_t>(survivors[i])] = g;
          slot.split_rank[static_cast<size_t>(survivors[i])] = static_cast<int>(i);
        }
      },
      [&](auto& slot) {
        return std::tuple<std::shared_ptr<detail::CommGroup>, int, double, double>(
            slot.split_groups[static_cast<size_t>(rank_)],
            slot.split_rank[static_cast<size_t>(rank_)], slot.max_vt, slot.max_fvt);
      },
      /*tolerate_revoked=*/true, expected);
  ctx_->advance(std::max(0.0, std::get<2>(result) - my_vt) + cost, cat);
  ctx_->fvt = my_fvt;
  ctx_->fvt += std::max(0.0, std::get<3>(result) - my_fvt) + cost;
  if (ctx_->crash_total != c0) ctx_->fvt += ctx_->crash_total - c0;
  ctx_->messages[static_cast<int>(cat)] += tree_msgs;
  ctx_->mh.msgs[static_cast<int>(cat)].add(tree_msgs);
  ctx_->flight_record(detail::RankCtx::FlightEntry::kCollective, -1,
                      static_cast<int>(gen), 0, 0);
  if (ctx_->tracing) {
    TraceEvent e;
    e.kind = TraceEventKind::kCollective;
    e.cat = cat;
    e.t0 = my_vt;
    e.t1 = ctx_->vt;
    e.arrival = std::get<2>(result);
    e.seq = gen;
    e.ctx = group_->ctx();
    e.label = "shrink";
    ctx_->trace.events.push_back(e);
  }
  return Comm(std::move(std::get<0>(result)), std::get<1>(result), ctx_);
}

const RecoveryStats& Comm::recovery_stats() const { return ctx_->rstats; }

const SdcStats& Comm::sdc_stats() const { return ctx_->sdc; }

CheckpointScope Comm::register_checkpoint(
    const char* label, std::function<std::vector<Real>()> capture,
    std::function<void(const CheckpointImage&)> restore, SdcStateFn sdc_state) {
  // Bypass-free without a crash model, SDC schedule, or ABFT: nothing is
  // pushed, nothing captured.
  const bool sdc_armed =
      ctx_->abft || (ctx_->sdc_events != nullptr && !ctx_->sdc_events->empty());
  if (ctx_->crash_events == nullptr && !sdc_armed) {
    return CheckpointScope(nullptr, 0);
  }
  ctx_->hooks.push_back(
      {label, std::move(capture), std::move(restore), std::move(sdc_state)});
  return CheckpointScope(ctx_, ctx_->hooks.size() - 1);
}

void Comm::checkpoint_epoch(std::int64_t arg) {
  detail::RankCtx* c = ctx_;
  // Straggler watchdog first, and before the hook gate: stall-only runs
  // register no checkpoint hooks, but epoch boundaries are still the
  // progress watermarks the watchdog samples.
  if (c->straggler_armed) c->process_straggler_epoch();
  if (c->hooks.empty()) return;
  // SDC pass first: armed memory faults land (and, under ABFT, are detected
  // and repaired) before the epoch's buddy image is captured, so a crash
  // restore never resurrects a corrupted word.
  c->process_sdc_epoch();
  if (c->crash_events == nullptr) return;
  const auto& hook = c->hooks.back();
  CheckpointImage img;
  img.epoch = c->ckpt_epoch_counter++;
  img.vt = c->vt;
  img.label = hook.label;
  img.state = hook.capture();
  img.checksum = payload_checksum(img.state);
  // Latent image corruption (PerturbationModel::ckpt_faults): the bit flips
  // *after* the checksum is stamped, so the damage stays invisible until a
  // restore or degrade fetch validates the image and rejects it.
  for (const auto& cf : machine().perturb.ckpt_faults) {
    if (cf.rank == c->grank && cf.epoch == img.epoch && !img.state.empty()) {
      std::uint64_t bits = std::bit_cast<std::uint64_t>(img.state[0]);
      bits ^= std::uint64_t{1} << 46;
      img.state[0] = std::bit_cast<Real>(bits);
      break;
    }
  }
  // Shipment to the buddy rides the fault ledger only: capture overhead
  // plus the modeled wire time of the image. The clean clock never moves,
  // so checkpoint cadence cannot perturb the modeled solve.
  const double bytes = static_cast<double>(img.state.size()) * sizeof(Real);
  const RecoveryModel& rm = machine().recovery;
  const double cost = rm.checkpoint_overhead + machine().net.latency +
                      bytes / machine().net.bandwidth;
  c->fvt += cost;
  c->rstats.checkpoints += 1;
  c->rstats.checkpoint_bytes += static_cast<std::int64_t>(bytes);
  c->rstats.checkpoint_time += cost;
  c->mh.ckpt_epochs.add();
  c->mh.ckpt_bytes.add(static_cast<std::int64_t>(bytes));
  c->flight_record(detail::RankCtx::FlightEntry::kCheckpoint,
                   c->ckpt->buddy_of(c->grank), static_cast<int>(img.epoch), 0,
                   static_cast<std::int64_t>(bytes));
  if (c->tracing) c->trace.marks.push_back({"checkpoint", c->vt, arg});
  c->ckpt->save(c->grank, std::move(img));
}

CheckpointScope::CheckpointScope(CheckpointScope&& other) noexcept
    : ctx_(other.ctx_), index_(other.index_) {
  other.ctx_ = nullptr;
}

CheckpointScope::~CheckpointScope() {
  if (ctx_ == nullptr) return;
  // Strictly LIFO: popping back to the registration depth also drops any
  // hooks a misnested inner scope leaked (they could only dangle).
  if (ctx_->hooks.size() > index_) ctx_->hooks.resize(index_);
}

Spread spread_over(std::span<const double> values) {
  Spread s;
  if (values.empty()) return s;
  std::vector<double> v(values.begin(), values.end());
  std::sort(v.begin(), v.end());
  s.min = v.front();
  s.max = v.back();
  double sum = 0.0;
  for (const double x : v) sum += x;
  s.mean = sum / static_cast<double>(v.size());
  auto pct = [&v](double p) {
    // Nearest-rank percentile: the ceil(p/100 * N)-th smallest value.
    auto k = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(v.size())));
    return v[std::max<size_t>(k, 1) - 1];
  };
  s.p50 = pct(50.0);
  s.p99 = pct(99.0);
  return s;
}

Spread Cluster::Result::category_spread(TimeCategory cat) const {
  std::vector<double> v;
  v.reserve(ranks.size());
  for (const auto& r : ranks) v.push_back(r.category[static_cast<int>(cat)]);
  return spread_over(v);
}

Spread Cluster::Result::vtime_spread() const {
  std::vector<double> v;
  v.reserve(ranks.size());
  for (const auto& r : ranks) v.push_back(r.vtime);
  return spread_over(v);
}

double Cluster::Result::makespan() const {
  double m = 0;
  for (const auto& r : ranks) m = std::max(m, r.vtime);
  return m;
}

double Cluster::Result::mean_category(TimeCategory cat) const {
  double s = 0;
  for (const auto& r : ranks) s += r.category[static_cast<int>(cat)];
  return ranks.empty() ? 0.0 : s / static_cast<double>(ranks.size());
}

double Cluster::Result::max_category(TimeCategory cat) const {
  double m = 0;
  for (const auto& r : ranks) m = std::max(m, r.category[static_cast<int>(cat)]);
  return m;
}

double Cluster::Result::min_category(TimeCategory cat) const {
  if (ranks.empty()) return 0.0;
  double m = ranks.front().category[static_cast<int>(cat)];
  for (const auto& r : ranks) m = std::min(m, r.category[static_cast<int>(cat)]);
  return m;
}

std::uint64_t Cluster::Result::fingerprint() const {
  std::uint64_t h = detail::hash64(static_cast<std::uint64_t>(ranks.size()));
  auto mix = [&h](std::uint64_t v) { h = detail::hash64(h ^ v); };
  for (const auto& r : ranks) {
    mix(std::bit_cast<std::uint64_t>(r.vtime));
    for (int c = 0; c < kNumTimeCategories; ++c) {
      mix(std::bit_cast<std::uint64_t>(r.category[c]));
      mix(static_cast<std::uint64_t>(r.messages[c]));
      mix(static_cast<std::uint64_t>(r.bytes[c]));
    }
  }
  return h;
}

double Cluster::Result::fault_makespan() const {
  double m = 0;
  for (const auto& r : ranks) m = std::max(m, r.fault_vtime);
  return m;
}

TransportStats Cluster::Result::transport_totals() const {
  TransportStats t;
  for (const auto& r : ranks) t += r.transport;
  return t;
}

std::uint64_t Cluster::Result::fault_fingerprint() const {
  // Extends fingerprint() with the fault ledger; with no faults injected the
  // transport counters are zero and fault_vtime == vtime, so this value is
  // still seed-stable (but distinct from fingerprint()).
  std::uint64_t h = fingerprint();
  auto mix = [&h](std::uint64_t v) { h = detail::hash64(h ^ v); };
  for (const auto& r : ranks) {
    mix(std::bit_cast<std::uint64_t>(r.fault_vtime));
    const TransportStats& t = r.transport;
    mix(static_cast<std::uint64_t>(t.data_frames));
    mix(static_cast<std::uint64_t>(t.retransmits));
    mix(static_cast<std::uint64_t>(t.retrans_bytes));
    mix(static_cast<std::uint64_t>(t.timeouts));
    mix(static_cast<std::uint64_t>(t.frames_dropped));
    mix(static_cast<std::uint64_t>(t.acks));
    mix(static_cast<std::uint64_t>(t.ack_bytes));
    mix(static_cast<std::uint64_t>(t.corrupt_detected));
    mix(static_cast<std::uint64_t>(t.duplicates));
    mix(static_cast<std::uint64_t>(t.reordered));
    const RecoveryStats& rec = r.recovery;
    mix(static_cast<std::uint64_t>(rec.crashes));
    mix(static_cast<std::uint64_t>(rec.checkpoints));
    mix(static_cast<std::uint64_t>(rec.checkpoint_bytes));
    mix(static_cast<std::uint64_t>(rec.restores));
    mix(static_cast<std::uint64_t>(rec.spares_used));
    mix(static_cast<std::uint64_t>(rec.image_rejects));
    mix(std::bit_cast<std::uint64_t>(rec.detect_time));
    mix(std::bit_cast<std::uint64_t>(rec.repair_time));
    mix(std::bit_cast<std::uint64_t>(rec.restore_time));
    mix(std::bit_cast<std::uint64_t>(rec.replay_time));
    mix(std::bit_cast<std::uint64_t>(rec.checkpoint_time));
    const SdcStats& s = r.sdc;
    mix(static_cast<std::uint64_t>(s.injected));
    mix(static_cast<std::uint64_t>(s.detected));
    mix(static_cast<std::uint64_t>(s.corrected));
    mix(static_cast<std::uint64_t>(s.escalated));
    mix(static_cast<std::uint64_t>(s.checks));
    mix(static_cast<std::uint64_t>(s.residual_checks));
    mix(static_cast<std::uint64_t>(s.refine_iters));
    for (int t = 0; t < 3; ++t) {
      mix(static_cast<std::uint64_t>(s.injected_by[t]));
      mix(static_cast<std::uint64_t>(s.corrected_by[t]));
    }
    mix(std::bit_cast<std::uint64_t>(s.verify_time));
    mix(std::bit_cast<std::uint64_t>(s.repair_time));
    mix(std::bit_cast<std::uint64_t>(s.residual_time));
    const DegradationStats& d = r.degradation;
    mix(static_cast<std::uint64_t>(d.degrades));
    mix(static_cast<std::uint64_t>(d.ranks_lost));
    mix(static_cast<std::uint64_t>(d.partitions_adopted));
    mix(static_cast<std::uint64_t>(d.redistributed_bytes));
    mix(std::bit_cast<std::uint64_t>(d.agree_time));
    mix(std::bit_cast<std::uint64_t>(d.shrink_time));
    mix(std::bit_cast<std::uint64_t>(d.redistribute_time));
    mix(std::bit_cast<std::uint64_t>(d.replay_time));
    mix(std::bit_cast<std::uint64_t>(d.overload_time));
    mix(std::bit_cast<std::uint64_t>(d.overload_mult));
    const ElasticityStats& e = r.elasticity;
    mix(static_cast<std::uint64_t>(e.returns));
    mix(static_cast<std::uint64_t>(e.expansions));
    mix(static_cast<std::uint64_t>(e.transfers));
    mix(static_cast<std::uint64_t>(e.transfer_bytes));
    mix(static_cast<std::uint64_t>(e.stragglers));
    mix(static_cast<std::uint64_t>(e.rebalances));
    mix(std::bit_cast<std::uint64_t>(e.agree_time));
    mix(std::bit_cast<std::uint64_t>(e.expand_time));
    mix(std::bit_cast<std::uint64_t>(e.transfer_time));
    mix(std::bit_cast<std::uint64_t>(e.replay_time));
    mix(std::bit_cast<std::uint64_t>(e.straggler_time));
  }
  return h;
}

RecoveryStats Cluster::Result::recovery_stats() const {
  RecoveryStats total;
  for (const auto& r : ranks) total += r.recovery;
  return total;
}

SdcStats Cluster::Result::sdc_stats() const {
  SdcStats total;
  for (const auto& r : ranks) total += r.sdc;
  return total;
}

DegradationStats Cluster::Result::degradation_stats() const {
  DegradationStats total;
  for (const auto& r : ranks) total += r.degradation;
  return total;
}

ElasticityStats Cluster::Result::elasticity_stats() const {
  ElasticityStats total;
  for (const auto& r : ranks) total += r.elasticity;
  return total;
}

Cluster::Result Cluster::run_impl(int nranks, const MachineModel& machine,
                                  const std::function<void(Comm&)>& rank_fn,
                                  const RunOptions& opts,
                                  std::exception_ptr* err_out) {
  if (nranks <= 0) throw std::invalid_argument("Cluster::run: nranks must be positive");
  // Schedule-exploration knobs are rejected with structured errors before
  // any thread spawns: an invalid combination is a caller bug, never a
  // modeled fault (docs/TESTING.md).
  if (!opts.deterministic && opts.schedule != SchedulePolicy::kFifo) {
    throw std::invalid_argument(
        "Cluster::run: SchedulePolicy exploration requires deterministic mode");
  }
  if (!opts.deterministic && opts.replay_schedule != nullptr) {
    throw std::invalid_argument(
        "Cluster::run: schedule replay requires deterministic mode");
  }
  if (opts.priority_points < 0) {
    throw std::invalid_argument("Cluster::run: priority_points must be >= 0");
  }
  if (opts.delay_budget < 0) {
    throw std::invalid_argument("Cluster::run: delay_budget must be >= 0");
  }
  if (opts.metrics_period < 0.0) {
    throw std::invalid_argument("Cluster::run: metrics_period must be >= 0");
  }
  if (opts.metrics_period > 0.0 && !opts.metrics) {
    throw std::invalid_argument(
        "Cluster::run: metrics_period requires RunOptions::metrics");
  }
  if (opts.replay_schedule != nullptr) {
    for (const std::int32_t g : opts.replay_schedule->grants) {
      if (g < 0 || g >= nranks) {
        throw std::invalid_argument(
            "Cluster::run: replay certificate grants a rank out of range");
      }
    }
  }
  detail::ClusterState state(nranks, machine, opts);
  std::vector<int> globals(static_cast<size_t>(nranks));
  for (int r = 0; r < nranks; ++r) globals[static_cast<size_t>(r)] = r;
  auto world =
      std::make_shared<detail::CommGroup>(&state, state.next_ctx(), std::move(globals));
  state.register_group(world);

  std::exception_ptr first_error;
  std::mutex error_mu;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(world, r, &state.rank(r));
      detail::Scheduler* sched = state.sched();
      try {
        if (sched) sched->start(r);
        rank_fn(comm);
        if (sched) sched->finish(r);
      } catch (const detail::ClusterAborted&) {
        // Secondary casualty of another rank's failure; the original
        // exception is already recorded.
      } catch (const detail::SchedulerDeadlock&) {
        // The deterministic scheduler proved no rank can make progress and
        // recorded the report at detection time (before the parked ranks'
        // wait state unwound); every casualty rank lands here.
        FaultReport rep = state.recorded_fault_or_report(r);
        {
          std::lock_guard<std::mutex> lk(error_mu);
          if (!first_error) {
            first_error = std::make_exception_ptr(FaultError(std::move(rep)));
          }
        }
        state.abort();
      } catch (...) {
        {
          std::lock_guard<std::mutex> lk(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        state.abort();
      }
      state.rank_done();
    });
  }
  for (auto& t : threads) t.join();

  Cluster::Result res;
  res.ranks.resize(static_cast<size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    RankStats& out = res.ranks[static_cast<size_t>(r)];
    out.vtime = state.rank(r).vt;
    out.fault_vtime = state.rank(r).fvt;
    out.transport = state.rank(r).tstats;
    out.recovery = state.rank(r).rstats;
    out.sdc = state.rank(r).sdc;
    out.degradation = state.rank(r).dstats;
    out.elasticity = state.rank(r).estats;
    for (int c = 0; c < kNumTimeCategories; ++c) {
      out.category[c] = state.rank(r).category[c];
      out.messages[c] = state.rank(r).messages[c];
      out.bytes[c] = state.rank(r).bytes[c];
    }
  }
  if (state.sched() != nullptr) res.schedule = state.sched()->certificate();
  if (opts.trace && !first_error) {
    std::vector<RankTrace> buffers;
    buffers.reserve(static_cast<size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      buffers.push_back(std::move(state.rank(r).trace));
    }
    res.trace = std::make_shared<const Trace>(Trace::build(std::move(buffers)));
  }
  if (opts.metrics) {
    // Built even on a fault: the counters up to the abort are exactly the
    // post-mortem evidence a failed run leaves behind.
    auto report = std::make_shared<MetricsReport>();
    report->metrics_period = opts.metrics_period;
    report->ranks.resize(static_cast<size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      MetricsReport::Rank& out = report->ranks[static_cast<size_t>(r)];
      const MetricsRegistry* m = state.rank_metrics(r);
      out.values = m->values();
      out.histograms = m->histograms();
      out.series_names = m->series_names();
      out.series = m->series();
    }
    res.metrics = std::move(report);
  }
  if (first_error) {
    // Attach the flight-recorder dump to a fault-terminated run's report
    // (every FaultError path funnels through here — transport failures,
    // watchdog deadlocks, vt-limit, crash verdicts). The rings are
    // quiescent after join; non-fault exceptions pass through untouched.
    try {
      std::rethrow_exception(first_error);
    } catch (const FaultError& fe) {
      FaultReport rep = fe.report;
      if (rep.flight.empty()) rep.flight = state.flight_dump();
      first_error = std::make_exception_ptr(FaultError(std::move(rep)));
    } catch (...) {
    }
  }
  *err_out = first_error;
  return res;
}

const char* schedule_policy_name(SchedulePolicy p) {
  switch (p) {
    case SchedulePolicy::kFifo: return "fifo";
    case SchedulePolicy::kRandomPriority: return "random_priority";
    case SchedulePolicy::kDelayBounded: return "delay_bounded";
  }
  return "unknown";
}

std::string ScheduleCertificate::to_string() const {
  std::ostringstream os;
  os << schedule_policy_name(policy) << ' ' << seed << ' ' << grants.size();
  for (const std::int32_t g : grants) os << ' ' << g;
  return os.str();
}

ScheduleCertificate ScheduleCertificate::parse(const std::string& text) {
  std::istringstream is(text);
  std::string name;
  ScheduleCertificate c;
  std::size_t n = 0;
  if (!(is >> name >> c.seed >> n)) {
    throw std::invalid_argument("ScheduleCertificate::parse: malformed header");
  }
  if (name == "fifo") {
    c.policy = SchedulePolicy::kFifo;
  } else if (name == "random_priority") {
    c.policy = SchedulePolicy::kRandomPriority;
  } else if (name == "delay_bounded") {
    c.policy = SchedulePolicy::kDelayBounded;
  } else {
    throw std::invalid_argument("ScheduleCertificate::parse: unknown policy '" + name + "'");
  }
  c.grants.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::int32_t g = 0;
    if (!(is >> g)) {
      throw std::invalid_argument("ScheduleCertificate::parse: truncated grant list");
    }
    c.grants.push_back(g);
  }
  std::string extra;
  if (is >> extra) {
    throw std::invalid_argument("ScheduleCertificate::parse: trailing tokens");
  }
  return c;
}

Cluster::Result Cluster::run(int nranks, const MachineModel& machine,
                             const std::function<void(Comm&)>& rank_fn,
                             const RunOptions& opts) {
  std::exception_ptr err;
  Result res = run_impl(nranks, machine, rank_fn, opts, &err);
  if (err) std::rethrow_exception(err);
  return res;
}

Cluster::Result Cluster::try_run(int nranks, const MachineModel& machine,
                                 const std::function<void(Comm&)>& rank_fn,
                                 const RunOptions& opts) {
  std::exception_ptr err;
  Result res = run_impl(nranks, machine, rank_fn, opts, &err);
  if (err) {
    try {
      std::rethrow_exception(err);
    } catch (const FaultError& fe) {
      res.fault = fe.report;
      res.error = fe.what();
    } catch (const std::exception& e) {
      res.error = e.what();
    } catch (...) {
      res.error = "unknown error";
    }
    if (res.error.empty()) res.error = "unknown error";
  }
  return res;
}

}  // namespace sptrsv
