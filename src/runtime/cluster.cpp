#include "runtime/cluster.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <exception>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace sptrsv {
namespace detail {

namespace {
/// Tree depth used by the collective cost model.
double log2_ceil(int p) { return p <= 1 ? 0.0 : std::ceil(std::log2(static_cast<double>(p))); }
}  // namespace

/// A message annotated with the communicator context it was sent on.
struct Envelope {
  std::uint64_t ctx = 0;
  Message msg;
};

/// Per-rank mailbox: all communicators deliver here; receives filter by
/// (ctx, src, tag).
struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Envelope> q;
};

/// Per-rank runtime context (virtual clock + accounting + mailbox).
struct RankCtx {
  Mailbox mailbox;
  double vt = 0.0;
  double category[kNumTimeCategories] = {0, 0, 0, 0};
  std::int64_t messages[kNumTimeCategories] = {0, 0, 0, 0};
  std::int64_t bytes[kNumTimeCategories] = {0, 0, 0, 0};

  void advance(double seconds, TimeCategory cat) {
    vt += seconds;
    category[static_cast<int>(cat)] += seconds;
  }
};

/// Whole-cluster shared state.
class ClusterState {
 public:
  ClusterState(int nranks, MachineModel machine)
      : machine_(std::move(machine)), ranks_(static_cast<size_t>(nranks)) {}

  const MachineModel& machine() const { return machine_; }
  RankCtx& rank(int global) { return ranks_[static_cast<size_t>(global)]; }
  int world_size() const { return static_cast<int>(ranks_.size()); }
  std::uint64_t next_ctx() { return ++ctx_counter_; }

  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  /// Called when a rank dies with an exception: wakes every blocked wait
  /// so the remaining ranks can unwind instead of deadlocking at join.
  void abort();

  void register_group(const std::shared_ptr<CommGroup>& g) {
    std::lock_guard<std::mutex> lk(groups_mu_);
    groups_.push_back(g);
  }

 private:
  MachineModel machine_;
  std::deque<RankCtx> ranks_;  // deque: RankCtx is not movable (mutex)
  std::uint64_t ctx_counter_ = 0;  // pre-incremented under group mutexes only
  std::atomic<bool> aborted_{false};
  std::mutex groups_mu_;
  std::vector<std::weak_ptr<CommGroup>> groups_;
};

/// Thrown into ranks blocked on a dead cluster.
struct ClusterAborted : std::runtime_error {
  ClusterAborted() : std::runtime_error("cluster aborted: another rank failed") {}
};

/// One communicator: a context id plus the member global ranks. Also hosts
/// the generation-numbered collective slots (barrier / allreduce / split).
class CommGroup : public std::enable_shared_from_this<CommGroup> {
 public:
  CommGroup(ClusterState* cluster, std::uint64_t ctx, std::vector<int> global_ranks)
      : cluster_(cluster), ctx_(ctx), globals_(std::move(global_ranks)) {}

  ClusterState* cluster() const { return cluster_; }
  std::uint64_t ctx() const { return ctx_; }
  int size() const { return static_cast<int>(globals_.size()); }
  int global_rank(int r) const { return globals_[static_cast<size_t>(r)]; }

  /// State of one in-flight collective operation.
  struct CollSlot {
    int arrived = 0;
    int consumed = 0;
    bool ready = false;
    double max_vt = 0.0;
    std::vector<Real> reduce;                       // allreduce accumulator
    std::vector<std::pair<int, int>> color_key;     // split inputs (by rank)
    std::vector<std::shared_ptr<CommGroup>> split_groups;  // split outputs
    std::vector<int> split_rank;                    // split outputs
  };

  /// Runs one collective: `deposit` stores this rank's contribution into
  /// the slot; the last arriver runs `finalize`; everyone then reads via
  /// `extract` after `ready`. All callbacks run under the group mutex.
  template <class Deposit, class Finalize, class Extract>
  auto collective(std::int64_t gen, Deposit deposit, Finalize finalize,
                  Extract extract) {
    std::unique_lock<std::mutex> lk(mu_);
    CollSlot& slot = slots_[gen];
    deposit(slot);
    if (++slot.arrived == size()) {
      finalize(slot);
      slot.ready = true;
      cv_.notify_all();
    } else {
      cv_.wait(lk, [&] { return slot.ready || cluster_->aborted(); });
      if (!slot.ready) throw ClusterAborted();
    }
    auto result = extract(slot);
    if (++slot.consumed == size()) slots_.erase(gen);
    return result;
  }

  void wake_all() {
    std::lock_guard<std::mutex> lk(mu_);  // lock so no waiter misses the flag
    cv_.notify_all();
  }

 private:
  ClusterState* cluster_;
  std::uint64_t ctx_;
  std::vector<int> globals_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::int64_t, CollSlot> slots_;
};

void ClusterState::abort() {
  aborted_.store(true, std::memory_order_release);
  for (auto& r : ranks_) {
    std::lock_guard<std::mutex> lk(r.mailbox.mu);
    r.mailbox.cv.notify_all();
  }
  std::lock_guard<std::mutex> lk(groups_mu_);
  for (auto& wg : groups_) {
    if (auto g = wg.lock()) g->wake_all();
  }
}

}  // namespace detail

int Comm::size() const { return group_->size(); }

const MachineModel& Comm::machine() const { return group_->cluster()->machine(); }

double Comm::vtime() const { return ctx_->vt; }

void Comm::advance(double seconds, TimeCategory cat) { ctx_->advance(seconds, cat); }

void Comm::compute(double flops) {
  ctx_->advance(flops / machine().cpu_flop_rate, TimeCategory::kFp);
}

void Comm::reset_clock() {
  ctx_->vt = 0.0;
  for (double& c : ctx_->category) c = 0.0;
  for (auto& m : ctx_->messages) m = 0;
  for (auto& b : ctx_->bytes) b = 0;
}

double Comm::category_time(TimeCategory cat) const {
  return ctx_->category[static_cast<int>(cat)];
}

std::int64_t Comm::messages_sent(TimeCategory cat) const {
  return ctx_->messages[static_cast<int>(cat)];
}

std::int64_t Comm::bytes_sent(TimeCategory cat) const {
  return ctx_->bytes[static_cast<int>(cat)];
}

void Comm::send(int dst, int tag, std::vector<Real> data, TimeCategory cat) {
  send_link(dst, tag, std::move(data), machine().net, machine().mpi_overhead, cat);
}

void Comm::send_link(int dst, int tag, std::vector<Real> data, const LinkParams& link,
                     double overhead, TimeCategory cat) {
  if (dst < 0 || dst >= size()) throw std::out_of_range("Comm::send: bad destination");
  ctx_->advance(overhead, cat);
  ++ctx_->messages[static_cast<int>(cat)];
  ctx_->bytes[static_cast<int>(cat)] +=
      static_cast<std::int64_t>(data.size() * sizeof(Real));
  const double bytes = static_cast<double>(data.size()) * sizeof(Real);
  detail::Envelope env;
  env.ctx = group_->ctx();
  env.msg.src = rank_;
  env.msg.tag = tag;
  env.msg.data = std::move(data);
  env.msg.arrival = ctx_->vt + link.latency + bytes / link.bandwidth;
  detail::Mailbox& box = group_->cluster()->rank(group_->global_rank(dst)).mailbox;
  {
    std::lock_guard<std::mutex> lk(box.mu);
    box.q.push_back(std::move(env));
  }
  box.cv.notify_all();
}

Message Comm::recv(int src, int tag, TimeCategory cat) {
  if (tag == kAnyTag) return recv_range(src, 0, 0, cat);
  return recv_range(src, tag, tag + 1, cat);
}

Message Comm::recv_range(int src, int tag_lo, int tag_hi, TimeCategory cat) {
  const bool any_tag = (tag_lo >= tag_hi);
  detail::Mailbox& box = ctx_->mailbox;
  std::unique_lock<std::mutex> lk(box.mu);
  auto matches = [&](const detail::Envelope& e) {
    return e.ctx == group_->ctx() && (src == kAnySource || e.msg.src == src) &&
           (any_tag || (e.msg.tag >= tag_lo && e.msg.tag < tag_hi));
  };
  // Among queued matches take the earliest virtual arrival (per-source
  // arrivals are monotone, so same-source FIFO is preserved).
  std::deque<detail::Envelope>::iterator best;
  box.cv.wait(lk, [&] {
    best = box.q.end();
    for (auto it = box.q.begin(); it != box.q.end(); ++it) {
      if (matches(*it) && (best == box.q.end() || it->msg.arrival < best->msg.arrival)) {
        best = it;
      }
    }
    return best != box.q.end() || group_->cluster()->aborted();
  });
  if (best == box.q.end()) throw detail::ClusterAborted();
  Message msg = std::move(best->msg);
  box.q.erase(best);
  lk.unlock();
  const double t0 = ctx_->vt;
  ctx_->advance(std::max(0.0, msg.arrival - t0) + machine().mpi_overhead, cat);
  return msg;
}

bool Comm::probe(int src, int tag) {
  detail::Mailbox& box = ctx_->mailbox;
  std::lock_guard<std::mutex> lk(box.mu);
  for (const auto& e : box.q) {
    if (e.ctx == group_->ctx() && (src == kAnySource || e.msg.src == src) &&
        (tag == kAnyTag || e.msg.tag == tag)) {
      return true;
    }
  }
  return false;
}

void Comm::barrier(TimeCategory cat) {
  const double cost =
      detail::log2_ceil(size()) * 2.0 * (machine().net.latency + machine().mpi_overhead);
  const double my_vt = ctx_->vt;
  const double sync_vt = group_->collective(
      coll_gen_++,
      [&](auto& slot) { slot.max_vt = std::max(slot.max_vt, my_vt); },
      [](auto&) {}, [](auto& slot) { return slot.max_vt; });
  ctx_->advance(std::max(0.0, sync_vt - my_vt) + cost, cat);
}

std::vector<Real> Comm::allreduce_sum(std::span<const Real> v, TimeCategory cat) {
  const double bytes = static_cast<double>(v.size()) * sizeof(Real);
  const double cost = detail::log2_ceil(size()) * 2.0 *
                      (machine().net.latency + machine().mpi_overhead +
                       bytes / machine().net.bandwidth);
  const double my_vt = ctx_->vt;
  auto result = group_->collective(
      coll_gen_++,
      [&](auto& slot) {
        slot.max_vt = std::max(slot.max_vt, my_vt);
        if (slot.reduce.empty()) slot.reduce.assign(v.size(), 0.0);
        if (slot.reduce.size() != v.size()) {
          throw std::invalid_argument("allreduce_sum: mismatched lengths");
        }
        for (size_t i = 0; i < v.size(); ++i) slot.reduce[i] += v[i];
      },
      [](auto&) {},
      [](auto& slot) {
        return std::pair<std::vector<Real>, double>(slot.reduce, slot.max_vt);
      });
  ctx_->advance(std::max(0.0, result.second - ctx_->vt) + cost, cat);
  return std::move(result.first);
}

double Comm::allreduce_max(double v) {
  auto result = group_->collective(
      coll_gen_++, [&](auto& slot) { slot.max_vt = std::max(slot.max_vt, v); },
      [](auto&) {}, [](auto& slot) { return slot.max_vt; });
  return result;
}

Comm Comm::split(int color, int key) {
  auto group = group_;  // keep alive across the collective
  auto result = group_->collective(
      coll_gen_++,
      [&](auto& slot) {
        if (slot.color_key.empty()) {
          slot.color_key.assign(static_cast<size_t>(size()), {0, 0});
          slot.split_groups.resize(static_cast<size_t>(size()));
          slot.split_rank.assign(static_cast<size_t>(size()), 0);
        }
        slot.color_key[static_cast<size_t>(rank_)] = {color, key};
      },
      [&](auto& slot) {
        // Build one CommGroup per color; members ordered by (key, rank).
        std::map<int, std::vector<int>> members;  // color -> old ranks
        for (int r = 0; r < size(); ++r) {
          members[slot.color_key[static_cast<size_t>(r)].first].push_back(r);
        }
        for (auto& [c, ranks] : members) {
          std::stable_sort(ranks.begin(), ranks.end(), [&](int a, int b) {
            return slot.color_key[static_cast<size_t>(a)].second <
                   slot.color_key[static_cast<size_t>(b)].second;
          });
          std::vector<int> globals;
          globals.reserve(ranks.size());
          for (const int r : ranks) globals.push_back(group->global_rank(r));
          auto g = std::make_shared<detail::CommGroup>(
              group->cluster(), group->cluster()->next_ctx(), std::move(globals));
          group->cluster()->register_group(g);
          for (size_t i = 0; i < ranks.size(); ++i) {
            slot.split_groups[static_cast<size_t>(ranks[i])] = g;
            slot.split_rank[static_cast<size_t>(ranks[i])] = static_cast<int>(i);
          }
        }
      },
      [&](auto& slot) {
        return std::pair<std::shared_ptr<detail::CommGroup>, int>(
            slot.split_groups[static_cast<size_t>(rank_)],
            slot.split_rank[static_cast<size_t>(rank_)]);
      });
  return Comm(std::move(result.first), result.second, ctx_);
}

double Cluster::Result::makespan() const {
  double m = 0;
  for (const auto& r : ranks) m = std::max(m, r.vtime);
  return m;
}

double Cluster::Result::mean_category(TimeCategory cat) const {
  double s = 0;
  for (const auto& r : ranks) s += r.category[static_cast<int>(cat)];
  return ranks.empty() ? 0.0 : s / static_cast<double>(ranks.size());
}

double Cluster::Result::max_category(TimeCategory cat) const {
  double m = 0;
  for (const auto& r : ranks) m = std::max(m, r.category[static_cast<int>(cat)]);
  return m;
}

double Cluster::Result::min_category(TimeCategory cat) const {
  if (ranks.empty()) return 0.0;
  double m = ranks.front().category[static_cast<int>(cat)];
  for (const auto& r : ranks) m = std::min(m, r.category[static_cast<int>(cat)]);
  return m;
}

Cluster::Result Cluster::run(int nranks, const MachineModel& machine,
                             const std::function<void(Comm&)>& rank_fn) {
  if (nranks <= 0) throw std::invalid_argument("Cluster::run: nranks must be positive");
  detail::ClusterState state(nranks, machine);
  std::vector<int> globals(static_cast<size_t>(nranks));
  for (int r = 0; r < nranks; ++r) globals[static_cast<size_t>(r)] = r;
  auto world =
      std::make_shared<detail::CommGroup>(&state, state.next_ctx(), std::move(globals));
  state.register_group(world);

  std::exception_ptr first_error;
  std::mutex error_mu;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(world, r, &state.rank(r));
      try {
        rank_fn(comm);
      } catch (const detail::ClusterAborted&) {
        // Secondary casualty of another rank's failure; the original
        // exception is already recorded.
      } catch (...) {
        {
          std::lock_guard<std::mutex> lk(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        state.abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  Result res;
  res.ranks.resize(static_cast<size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    res.ranks[static_cast<size_t>(r)].vtime = state.rank(r).vt;
    for (int c = 0; c < kNumTimeCategories; ++c) {
      res.ranks[static_cast<size_t>(r)].category[c] = state.rank(r).category[c];
      res.ranks[static_cast<size_t>(r)].messages[c] = state.rank(r).messages[c];
      res.ranks[static_cast<size_t>(r)].bytes[c] = state.rank(r).bytes[c];
    }
  }
  return res;
}

}  // namespace sptrsv
