#include "runtime/checkpoint.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

namespace sptrsv {

namespace {

/// Salt separating the crash-draw stream from the timing and delivery
/// streams: enabling an MTBF crash model must not shift a jitter, skew or
/// transport draw, or a crashed run would stop matching its crash-free twin.
constexpr std::uint64_t kCrashStreamSalt = 0xC7A54C0DE5EEDULL;

double crash_uniform(std::uint64_t seed, int rank, std::uint64_t* cseq) {
  return detail::perturb_uniform(detail::hash64(seed ^ kCrashStreamSalt),
                                 static_cast<std::uint64_t>(rank), (*cseq)++);
}

/// Salt separating the spare-return (repair) stream from every other draw
/// class: arming repair_mtbf must not shift a timing, delivery, crash or SDC
/// draw, or an elastic run would stop matching its repair-free twin.
constexpr std::uint64_t kRepairStreamSalt = 0x4E9A17C0DE5EEDULL;

double repair_uniform(std::uint64_t seed, int rank, std::uint64_t* rseq) {
  return detail::perturb_uniform(detail::hash64(seed ^ kRepairStreamSalt),
                                 static_cast<std::uint64_t>(rank), (*rseq)++);
}

}  // namespace

DegradePlan build_degrade_plan(const RecoveryModel& rm, int nranks,
                               const std::vector<int>& dead,
                               const std::vector<int>& host) {
  DegradePlan plan;
  if (nranks <= 0 || dead.empty()) return plan;
  std::vector<char> is_dead(static_cast<std::size_t>(nranks), 0);
  int ndead = 0;
  for (const int d : dead) {
    if (d < 0 || d >= nranks || is_dead[static_cast<std::size_t>(d)]) continue;
    is_dead[static_cast<std::size_t>(d)] = 1;
    ++ndead;
  }
  plan.victim = dead.back();
  plan.survivors_after = nranks - ndead;
  if (plan.victim < 0 || plan.victim >= nranks || plan.survivors_after <= 0) {
    plan.survivors_after = std::max(plan.survivors_after, 0);
    return plan;
  }
  for (int step = 1; step < nranks; ++step) {
    const int cand = (plan.victim + step) % nranks;
    if (!is_dead[static_cast<std::size_t>(cand)]) {
      plan.adopter = cand;
      break;
    }
  }
  const int buddy = (plan.victim + 1) % nranks;
  plan.image_survives =
      (buddy != plan.victim && !is_dead[static_cast<std::size_t>(buddy)]) ? 1 : 0;
  // Load-aware mode: instead of moving the victim's whole hosted set to the
  // ring adopter, split it across the k least-loaded survivors (LPT greedy,
  // heaviest partition first), weighting by the solve plan's per-partition
  // work estimates. Every choice is a pure function of (rm, dead, host), so
  // survivors agree on the assignment without communication.
  if (rm.rebalance_fanout > 0 && plan.adopter >= 0) {
    const auto work = [&rm](int p) {
      return static_cast<std::size_t>(p) < rm.rank_work.size() &&
                     rm.rank_work[static_cast<std::size_t>(p)] > 0.0
                 ? rm.rank_work[static_cast<std::size_t>(p)]
                 : 1.0;
    };
    const auto host_of = [&host](int p) {
      return host.empty() ? p : host[static_cast<std::size_t>(p)];
    };
    std::vector<int> moving;
    for (int p = 0; p < nranks; ++p) {
      if (host_of(p) == plan.victim) moving.push_back(p);
    }
    std::stable_sort(moving.begin(), moving.end(),
                     [&](int a, int b) { return work(a) > work(b); });
    std::vector<double> load(static_cast<std::size_t>(nranks), 0.0);
    for (int p = 0; p < nranks; ++p) {
      const int h = host_of(p);
      if (!is_dead[static_cast<std::size_t>(h)]) {
        load[static_cast<std::size_t>(h)] += work(p);
      }
    }
    std::vector<int> cands;
    for (int h = 0; h < nranks; ++h) {
      if (!is_dead[static_cast<std::size_t>(h)]) cands.push_back(h);
    }
    std::sort(cands.begin(), cands.end(), [&](int a, int b) {
      if (load[static_cast<std::size_t>(a)] != load[static_cast<std::size_t>(b)]) {
        return load[static_cast<std::size_t>(a)] < load[static_cast<std::size_t>(b)];
      }
      return a < b;
    });
    cands.resize(std::min<std::size_t>(
        static_cast<std::size_t>(rm.rebalance_fanout), cands.size()));
    for (const int p : moving) {
      int best = cands.front();
      for (const int h : cands) {
        if (load[static_cast<std::size_t>(h)] < load[static_cast<std::size_t>(best)]) {
          best = h;
        }
      }
      load[static_cast<std::size_t>(best)] += work(p);
      plan.moved_partitions.push_back(p);
      plan.adopters.push_back(best);
    }
    // The host of the victim's own partition doubles as the headline adopter
    // (CrashEvent::adopter, flight entries, CLI summaries).
    for (std::size_t i = 0; i < plan.moved_partitions.size(); ++i) {
      if (plan.moved_partitions[i] == plan.victim) {
        plan.adopter = plan.adopters[i];
        break;
      }
    }
  }
  return plan;
}

std::vector<std::vector<double>> build_repair_plan(const PerturbationModel& pm,
                                                   std::uint64_t seed,
                                                   int nranks) {
  std::vector<std::vector<double>> plan(static_cast<std::size_t>(nranks));
  for (const auto& ret : pm.returns) {
    if (ret.rank < 0 || ret.rank >= nranks || !(ret.vt >= 0.0)) continue;
    plan[static_cast<std::size_t>(ret.rank)].push_back(ret.vt);
  }
  if (pm.repair_mtbf > 0.0) {
    for (int r = 0; r < nranks; ++r) {
      std::uint64_t rseq = 0;
      double t = 0.0;
      for (int k = 0; k < pm.repair_max_per_rank; ++k) {
        // Exponential repair gap; 1-u keeps the argument in (0, 1].
        const double u = repair_uniform(seed, r, &rseq);
        t += -pm.repair_mtbf * std::log(1.0 - u);
        plan[static_cast<std::size_t>(r)].push_back(t);
      }
    }
  }
  for (auto& v : plan) std::sort(v.begin(), v.end());
  return plan;
}

CrashPlan build_crash_plan(const PerturbationModel& pm, const RecoveryModel& rm,
                           std::uint64_t seed, int nranks) {
  CrashPlan plan;
  plan.by_rank.resize(static_cast<std::size_t>(nranks));
  plan.degrade_by_rank.resize(static_cast<std::size_t>(nranks));
  plan.elastic_by_rank.resize(static_cast<std::size_t>(nranks));
  for (const auto& c : pm.crashes) {
    if (c.rank < 0 || c.rank >= nranks || !(c.vt >= 0.0)) continue;
    plan.by_rank[static_cast<std::size_t>(c.rank)].push_back({c.vt, -1});
  }
  if (pm.crash_mtbf > 0.0) {
    for (int r = 0; r < nranks; ++r) {
      std::uint64_t cseq = 0;
      double t = 0.0;
      for (int k = 0; k < pm.crash_max_per_rank; ++k) {
        // Exponential inter-failure gap; 1-u keeps the argument in (0, 1].
        const double u = crash_uniform(seed, r, &cseq);
        t += -pm.crash_mtbf * std::log(1.0 - u);
        plan.by_rank[static_cast<std::size_t>(r)].push_back({t, -1});
      }
    }
  }
  for (auto& v : plan.by_rank) {
    std::sort(v.begin(), v.end(),
              [](const CrashEvent& a, const CrashEvent& b) { return a.vt < b.vt; });
  }

  // Verdicts, statically. The failure detector needs a full detection window
  // (heartbeat_period * heartbeat_misses) to declare a rank dead and fetch
  // its buddy's image; if the buddy dies inside that window of a crash, the
  // checkpoint is gone and the crash is unrecoverable (kBuddyLoss). With a
  // single rank the buddy ring degenerates to self-buddying: any crash loses
  // its own checkpoint. Surviving crashes consume spares in global
  // (vt, rank) order — deterministic in both scheduler modes — and overflow
  // of the pool is kSparesExhausted.
  const double window = rm.heartbeat_period * static_cast<double>(rm.heartbeat_misses);
  // The verdict pass walks crashes and spare returns merged in global
  // (vt, kind, rank, index) order — crashes (kind 0) before returns at equal
  // times, so a node cannot rejoin at the very instant it dies.
  const std::vector<std::vector<double>> repairs =
      build_repair_plan(pm, seed, nranks);
  std::vector<std::tuple<double, int, int, std::size_t>> order;
  for (int r = 0; r < nranks; ++r) {
    const auto& events = plan.by_rank[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < events.size(); ++i) {
      order.emplace_back(events[i].vt, 0, r, i);
    }
    const auto& rets = repairs[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < rets.size(); ++i) {
      order.emplace_back(rets[i], 1, r, i);
    }
  }
  std::sort(order.begin(), order.end());
  int spares_used = 0;
  // Elastic-degradation bookkeeping (consulted only under
  // RunOptions::degrade, but precomputed unconditionally so the plan stays a
  // pure function of the static schedule): which physical host runs each
  // partition, and the ordered list of ranks degraded away so far.
  std::vector<int> host(static_cast<std::size_t>(nranks));
  for (int p = 0; p < nranks; ++p) host[static_cast<std::size_t>(p)] = p;
  std::vector<int> degraded_dead;
  const auto work = [&rm](int p) {
    return static_cast<std::size_t>(p) < rm.rank_work.size() &&
                   rm.rank_work[static_cast<std::size_t>(p)] > 0.0
               ? rm.rank_work[static_cast<std::size_t>(p)]
               : 1.0;
  };
  // Refreshes host h's overload multiplier: a DegradeEvent at time t on
  // every partition h currently hosts. Classic ring mode keeps the original
  // partitions-per-host count; load-aware mode weights by the work
  // estimates. `delta_on_own` lands on h's own partition for attribution.
  const auto emit_host_mult = [&](int h, double t, std::int64_t delta_on_own) {
    double hosted = 0.0;
    for (int p = 0; p < nranks; ++p) {
      if (host[static_cast<std::size_t>(p)] == h) {
        hosted += rm.rebalance_fanout > 0 ? work(p) : 1.0;
      }
    }
    const double mult =
        rm.rebalance_fanout > 0 ? hosted / work(h) : hosted;
    for (int p = 0; p < nranks; ++p) {
      if (host[static_cast<std::size_t>(p)] != h) continue;
      plan.degrade_by_rank[static_cast<std::size_t>(p)].push_back(
          {t, mult, p == h ? delta_on_own : 0});
    }
  };
  for (const auto& [vt, kind, r, i] : order) {
    if (kind == 1) {
      // Spare return: meaningful only for a rank currently degraded away —
      // anything else (rank alive, never crashed, or already returned) is
      // inert and leaves the plan untouched.
      const auto it = std::find(degraded_dead.begin(), degraded_dead.end(), r);
      if (it == degraded_dead.end()) continue;
      degraded_dead.erase(it);
      const int from = host[static_cast<std::size_t>(r)];
      host[static_cast<std::size_t>(r)] = r;
      const int survivors = nranks - static_cast<int>(degraded_dead.size());
      plan.elastic_by_rank[static_cast<std::size_t>(r)].push_back(
          {vt, from, survivors});
      // The relieved host drops back to its lighter multiplier; the
      // returning partition runs alone again.
      emit_host_mult(from, vt, 0);
      emit_host_mult(r, vt, 0);
      continue;
    }
    CrashEvent& ev = plan.by_rank[static_cast<std::size_t>(r)][i];
    const int buddy = (r + 1) % nranks;
    bool buddy_lost = (buddy == r);
    for (const CrashEvent& be : plan.by_rank[static_cast<std::size_t>(buddy)]) {
      if (std::abs(be.vt - vt) <= window) {
        buddy_lost = true;
        break;
      }
    }
    if (buddy_lost) {
      ev.verdict = FaultKind::kBuddyLoss;
    } else if (spares_used >= rm.spare_ranks) {
      ev.verdict = FaultKind::kSparesExhausted;
    } else {
      ev.spare = spares_used++;
    }
    if (ev.verdict == FaultKind::kNone) continue;
    // Unrecoverable verdict: fix the elastic alternative now. The victim's
    // partitions (its own plus any it previously adopted) move to the first
    // survivor up the ring; every partition on the overloaded host gains a
    // DegradeEvent raising its compute multiplier from this instant on.
    degraded_dead.push_back(r);
    DegradePlan dp = build_degrade_plan(rm, nranks, degraded_dead, host);
    if (ev.verdict == FaultKind::kBuddyLoss) dp.image_survives = 0;
    ev.adopter = dp.adopter;
    ev.survivors_after = dp.survivors_after;
    ev.image_survives = dp.image_survives;
    if (dp.adopter < 0 || dp.survivors_after <= 0) continue;
    if (!dp.moved_partitions.empty()) {
      // Load-aware split: apply the per-partition assignment, then refresh
      // every host that gained work.
      std::vector<std::int64_t> gained(static_cast<std::size_t>(nranks), 0);
      for (std::size_t m = 0; m < dp.moved_partitions.size(); ++m) {
        host[static_cast<std::size_t>(dp.moved_partitions[m])] = dp.adopters[m];
        ++gained[static_cast<std::size_t>(dp.adopters[m])];
      }
      for (int h = 0; h < nranks; ++h) {
        if (gained[static_cast<std::size_t>(h)] > 0) {
          emit_host_mult(h, vt, gained[static_cast<std::size_t>(h)]);
        }
      }
      continue;
    }
    std::int64_t moved = 0;
    for (int p = 0; p < nranks; ++p) {
      if (host[static_cast<std::size_t>(p)] == r) {
        host[static_cast<std::size_t>(p)] = dp.adopter;
        ++moved;
      }
    }
    emit_host_mult(dp.adopter, vt, moved);
  }
  return plan;
}

}  // namespace sptrsv
