#include "runtime/checkpoint.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

namespace sptrsv {

namespace {

/// Salt separating the crash-draw stream from the timing and delivery
/// streams: enabling an MTBF crash model must not shift a jitter, skew or
/// transport draw, or a crashed run would stop matching its crash-free twin.
constexpr std::uint64_t kCrashStreamSalt = 0xC7A54C0DE5EEDULL;

double crash_uniform(std::uint64_t seed, int rank, std::uint64_t* cseq) {
  return detail::perturb_uniform(detail::hash64(seed ^ kCrashStreamSalt),
                                 static_cast<std::uint64_t>(rank), (*cseq)++);
}

}  // namespace

DegradePlan build_degrade_plan(const RecoveryModel& rm, int nranks,
                               const std::vector<int>& dead) {
  (void)rm;  // reserved: future plans may weigh the detector window
  DegradePlan plan;
  if (nranks <= 0 || dead.empty()) return plan;
  std::vector<char> is_dead(static_cast<std::size_t>(nranks), 0);
  int ndead = 0;
  for (const int d : dead) {
    if (d < 0 || d >= nranks || is_dead[static_cast<std::size_t>(d)]) continue;
    is_dead[static_cast<std::size_t>(d)] = 1;
    ++ndead;
  }
  plan.victim = dead.back();
  plan.survivors_after = nranks - ndead;
  if (plan.victim < 0 || plan.victim >= nranks || plan.survivors_after <= 0) {
    plan.survivors_after = std::max(plan.survivors_after, 0);
    return plan;
  }
  for (int step = 1; step < nranks; ++step) {
    const int cand = (plan.victim + step) % nranks;
    if (!is_dead[static_cast<std::size_t>(cand)]) {
      plan.adopter = cand;
      break;
    }
  }
  const int buddy = (plan.victim + 1) % nranks;
  plan.image_survives =
      (buddy != plan.victim && !is_dead[static_cast<std::size_t>(buddy)]) ? 1 : 0;
  return plan;
}

CrashPlan build_crash_plan(const PerturbationModel& pm, const RecoveryModel& rm,
                           std::uint64_t seed, int nranks) {
  CrashPlan plan;
  plan.by_rank.resize(static_cast<std::size_t>(nranks));
  plan.degrade_by_rank.resize(static_cast<std::size_t>(nranks));
  for (const auto& c : pm.crashes) {
    if (c.rank < 0 || c.rank >= nranks || !(c.vt >= 0.0)) continue;
    plan.by_rank[static_cast<std::size_t>(c.rank)].push_back({c.vt, -1});
  }
  if (pm.crash_mtbf > 0.0) {
    for (int r = 0; r < nranks; ++r) {
      std::uint64_t cseq = 0;
      double t = 0.0;
      for (int k = 0; k < pm.crash_max_per_rank; ++k) {
        // Exponential inter-failure gap; 1-u keeps the argument in (0, 1].
        const double u = crash_uniform(seed, r, &cseq);
        t += -pm.crash_mtbf * std::log(1.0 - u);
        plan.by_rank[static_cast<std::size_t>(r)].push_back({t, -1});
      }
    }
  }
  for (auto& v : plan.by_rank) {
    std::sort(v.begin(), v.end(),
              [](const CrashEvent& a, const CrashEvent& b) { return a.vt < b.vt; });
  }

  // Verdicts, statically. The failure detector needs a full detection window
  // (heartbeat_period * heartbeat_misses) to declare a rank dead and fetch
  // its buddy's image; if the buddy dies inside that window of a crash, the
  // checkpoint is gone and the crash is unrecoverable (kBuddyLoss). With a
  // single rank the buddy ring degenerates to self-buddying: any crash loses
  // its own checkpoint. Surviving crashes consume spares in global
  // (vt, rank) order — deterministic in both scheduler modes — and overflow
  // of the pool is kSparesExhausted.
  const double window = rm.heartbeat_period * static_cast<double>(rm.heartbeat_misses);
  std::vector<std::tuple<double, int, std::size_t>> order;  // (vt, rank, index)
  for (int r = 0; r < nranks; ++r) {
    const auto& events = plan.by_rank[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < events.size(); ++i) {
      order.emplace_back(events[i].vt, r, i);
    }
  }
  std::sort(order.begin(), order.end());
  int spares_used = 0;
  // Elastic-degradation bookkeeping (consulted only under
  // RunOptions::degrade, but precomputed unconditionally so the plan stays a
  // pure function of the static schedule): which physical host runs each
  // partition, and the ordered list of ranks degraded away so far.
  std::vector<int> host(static_cast<std::size_t>(nranks));
  for (int p = 0; p < nranks; ++p) host[static_cast<std::size_t>(p)] = p;
  std::vector<int> degraded_dead;
  for (const auto& [vt, r, i] : order) {
    CrashEvent& ev = plan.by_rank[static_cast<std::size_t>(r)][i];
    const int buddy = (r + 1) % nranks;
    bool buddy_lost = (buddy == r);
    for (const CrashEvent& be : plan.by_rank[static_cast<std::size_t>(buddy)]) {
      if (std::abs(be.vt - vt) <= window) {
        buddy_lost = true;
        break;
      }
    }
    if (buddy_lost) {
      ev.verdict = FaultKind::kBuddyLoss;
    } else if (spares_used >= rm.spare_ranks) {
      ev.verdict = FaultKind::kSparesExhausted;
    } else {
      ev.spare = spares_used++;
    }
    if (ev.verdict == FaultKind::kNone) continue;
    // Unrecoverable verdict: fix the elastic alternative now. The victim's
    // partitions (its own plus any it previously adopted) move to the first
    // survivor up the ring; every partition on the overloaded host gains a
    // DegradeEvent raising its compute multiplier from this instant on.
    degraded_dead.push_back(r);
    DegradePlan dp = build_degrade_plan(rm, nranks, degraded_dead);
    if (ev.verdict == FaultKind::kBuddyLoss) dp.image_survives = 0;
    ev.adopter = dp.adopter;
    ev.survivors_after = dp.survivors_after;
    ev.image_survives = dp.image_survives;
    if (dp.adopter < 0 || dp.survivors_after <= 0) continue;
    std::int64_t moved = 0;
    for (int p = 0; p < nranks; ++p) {
      if (host[static_cast<std::size_t>(p)] == r) {
        host[static_cast<std::size_t>(p)] = dp.adopter;
        ++moved;
      }
    }
    double load = 0.0;
    for (int p = 0; p < nranks; ++p) {
      if (host[static_cast<std::size_t>(p)] == dp.adopter) load += 1.0;
    }
    for (int p = 0; p < nranks; ++p) {
      if (host[static_cast<std::size_t>(p)] != dp.adopter) continue;
      plan.degrade_by_rank[static_cast<std::size_t>(p)].push_back(
          {vt, load, p == dp.adopter ? moved : 0});
    }
  }
  return plan;
}

}  // namespace sptrsv
