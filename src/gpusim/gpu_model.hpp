#pragma once
/// \file gpu_model.hpp
/// \brief GPU execution-model primitives for the NVSHMEM solve simulation.
///
/// The paper's GPU solves (Algorithms 4 and 5) cannot run here (no GPU, no
/// NVSHMEM), so `src/gpusim` reproduces them as a discrete-event execution
/// model that mirrors their structure (DESIGN.md §1):
///  - one thread block per supernode column; a resident block occupies one
///    bandwidth slot, so at most `gpu_sms` tasks run concurrently per GPU
///    at full aggregate bandwidth (see MachineModel::gpu_sms);
///  - a task costs a launch/spin overhead plus its GEMV/GEMM flops at the
///    per-SM rate (one thread block uses one SM's bandwidth);
///  - y(K)/x(K) forwarding between GPUs is a one-sided put whose cost
///    depends on whether the peer GPU shares the node (NVLink-class) or not
///    (inter-node fabric) — the bandwidth cliff that limits 2D GPU SpTRSV
///    to one node in the paper (Fig 11).
///
/// The numerics of the GPU algorithms are identical to the CPU path (same
/// supernodal kernels), so correctness is covered by the CPU solvers; this
/// model produces the *timing* of the GPU runs.

#include <algorithm>
#include <cmath>

#include "runtime/machine.hpp"
#include "sparse/types.hpp"

namespace sptrsv {

/// Per-GPU execution parameters derived from a MachineModel.
struct GpuExecModel {
  int sms = 108;               ///< concurrently resident thread blocks
  double sm_flop_rate = 5e9;   ///< flops/s of one thread block (one SM), 1 RHS
  double task_overhead = 2e-6; ///< block scheduling / spin-wait cost (s)
  /// GEMV (1 RHS) is purely bandwidth-bound; with many RHSs the kernel
  /// becomes a blocked GEMM (shared-memory MAGMA-style on GPU, paper §3.4;
  /// register/cache blocking on CPU) whose arithmetic intensity — and thus
  /// sustained rate — rises with nrhs until the compute-bound cap.
  double max_gemm_boost = 4.0;

  static GpuExecModel from_machine(const MachineModel& m) {
    GpuExecModel e;
    e.sms = m.gpu_sms;
    e.sm_flop_rate = m.gpu_flop_rate / m.gpu_sms;
    e.task_overhead = m.gpu_task_overhead;
    e.max_gemm_boost = m.gpu_gemm_boost_cap;
    return e;
  }

  double gemm_boost(Idx nrhs) const {
    return std::min(max_gemm_boost, std::pow(static_cast<double>(nrhs), 0.4));
  }

  /// Duration of one block-column task performing `flops` work on `nrhs`
  /// right-hand sides.
  double task_time(double flops, Idx nrhs = 1) const {
    return task_overhead + flops / (sm_flop_rate * gemm_boost(nrhs));
  }
};

/// Maps world GPU indices to nodes and prices one-sided puts.
struct GpuFabric {
  double latency_intra = 1e-6;
  double latency_inter = 6e-6;
  double bw_intranode = 300e9;
  double bw_internode = 12.5e9;
  int gpus_per_node = 4;

  static GpuFabric from_machine(const MachineModel& m) {
    return {m.nvshmem_latency, m.nvshmem_latency_internode, m.bw_gpu_intranode,
            m.bw_gpu_internode, m.gpus_per_node};
  }

  bool same_node(int gpu_a, int gpu_b) const {
    return gpu_a / gpus_per_node == gpu_b / gpus_per_node;
  }

  /// Time for a one-sided put of `bytes` from gpu_a to gpu_b.
  double put_time(int gpu_a, int gpu_b, double bytes) const {
    if (same_node(gpu_a, gpu_b)) return latency_intra + bytes / bw_intranode;
    return latency_inter + bytes / bw_internode;
  }
};

}  // namespace sptrsv
