#include "gpusim/gpu_sptrsv.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

#include "dist/solve_plan.hpp"
#include "dist/tree_view.hpp"
#include "trace/trace.hpp"

namespace sptrsv {

namespace {

/// Collects the simulator's events per world GPU. Unlike the runtime's
/// chokepoint recording, tasks here overlap in time (per-SM slots), so the
/// resulting trace is export-only (non-contiguous).
struct TraceSink {
  std::vector<RankTrace> ranks;
  std::vector<std::int64_t> seq;  // per world rank put sequence numbers

  explicit TraceSink(int world)
      : ranks(static_cast<size_t>(world)), seq(static_cast<size_t>(world), 0) {}

  void task(int grank, double start, double end, const char* label, int tag) {
    TraceEvent e;
    e.kind = TraceEventKind::kCompute;
    e.cat = TimeCategory::kFp;
    e.t0 = start;
    e.t1 = end;
    e.tag = tag;
    e.label = label;
    ranks[static_cast<size_t>(grank)].events.push_back(e);
  }

  /// One NVSHMEM put / MPI message: a zero-width send at `send_at` on the
  /// source and a zero-width recv at `arrival` on the destination, matched
  /// through a per-source sequence number like runtime messages.
  void put(int src, int dst, double send_at, double arrival, std::int64_t bytes,
           TimeCategory cat) {
    const std::int64_t s = seq[static_cast<size_t>(src)]++;
    TraceEvent e;
    e.cat = cat;
    e.bytes = bytes;
    e.arrival = arrival;
    e.seq = s;
    e.kind = TraceEventKind::kSend;
    e.t0 = e.t1 = send_at;
    e.peer = dst;
    ranks[static_cast<size_t>(src)].events.push_back(e);
    e.kind = TraceEventKind::kRecv;
    e.t0 = e.t1 = arrival;
    e.peer = src;
    ranks[static_cast<size_t>(dst)].events.push_back(e);
  }

  void span(int grank, const char* label, std::int64_t arg, double t0, double t1) {
    ranks[static_cast<size_t>(grank)].spans.push_back({label, arg, t0, t1});
  }
};

/// Per-world-GPU metric registries (GpuSolveConfig::metrics). Counter names
/// follow the cluster runtime's taxonomy so bench reports aggregate CPU and
/// GPU runs with the same keys (docs/OBSERVABILITY.md).
struct MetricsSink {
  std::vector<std::unique_ptr<MetricsRegistry>> regs;
  struct Handles {
    MetricsRegistry::Counter tasks, puts, put_bytes_xy, put_bytes_z;
    MetricsRegistry::Counter abft_checks, abft_injected, abft_detected,
        abft_corrected;
  };
  std::vector<Handles> h;

  explicit MetricsSink(int world) {
    regs.reserve(static_cast<size_t>(world));
    h.resize(static_cast<size_t>(world));
    for (int r = 0; r < world; ++r) {
      auto reg = std::make_unique<MetricsRegistry>();
      Handles& hh = h[static_cast<size_t>(r)];
      hh.tasks = reg->counter("gpu.tasks");
      hh.puts = reg->counter("gpu.puts");
      hh.put_bytes_xy = reg->counter("gpu.put_bytes.xy");
      hh.put_bytes_z = reg->counter("gpu.put_bytes.z");
      hh.abft_checks = reg->counter("abft.checks");
      hh.abft_injected = reg->counter("abft.injected");
      hh.abft_detected = reg->counter("abft.detected");
      hh.abft_corrected = reg->counter("abft.corrected");
      regs.push_back(std::move(reg));
    }
  }

  void task(int grank) { h[static_cast<size_t>(grank)].tasks.add(); }
  void put(int src, std::int64_t bytes, TimeCategory cat) {
    Handles& hh = h[static_cast<size_t>(src)];
    hh.puts.add();
    (cat == TimeCategory::kZComm ? hh.put_bytes_z : hh.put_bytes_xy).add(bytes);
  }

  std::shared_ptr<const MetricsReport> report() const {
    auto rep = std::make_shared<MetricsReport>();
    rep->ranks.resize(regs.size());
    for (size_t r = 0; r < regs.size(); ++r) {
      rep->ranks[r].values = regs[r]->values();
    }
    return rep;
  }
};

/// Min-heap of SM slot free times for one GPU.
class SlotHeap {
 public:
  SlotHeap(int slots, double t0) : heap_(static_cast<size_t>(slots), t0) {
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>());
  }
  /// Starts a task that became ready at `ready` and lasts `dur`; returns
  /// its (start, end).
  std::pair<double, double> schedule(double ready, double dur) {
    const double start = std::max(ready, admit());
    const double end = start + dur;
    release(end);
    return {start, end};
  }
  /// Takes the earliest-free slot out of the heap (caller must release()).
  double admit() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    const double t = heap_.back();
    heap_.pop_back();
    return t;
  }
  /// Returns a slot that becomes free at `end`.
  void release(double end) {
    heap_.push_back(end);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
  }

 private:
  std::vector<double> heap_;
};

/// One phase's task graph on one grid: a task is (gpu, supernode position)
/// — the thread block handling that block column (L) or block row (U).
struct PhaseTask {
  int deps = 0;            ///< outstanding local GEMV contributions / y-arrival
  double ready = 0.0;      ///< max contributor finish (valid once deps==0)
  double diag_flops = 0;   ///< inverse-apply work (diagonal tasks only)
  double gemv_flops = 0;   ///< panel update work on this GPU
  bool is_diag = false;
  bool exists = false;
};

/// Direction of a phase: L consumes `below` patterns, U mirrors them.
enum class Phase { kL, kU };

/// Simulates one grid's 2D solve phase; returns per-GPU finish times.
/// `t0[g]` is GPU g's start clock. `gpu_base` is the world index of this
/// grid's GPU 0 (node locality for puts).
std::vector<double> run_phase(const Solve2dPlan& plan, Phase phase, Idx nrhs,
                              const GpuExecModel& exec, const GpuFabric& fabric,
                              int gpu_base, std::span<const double> t0,
                              GpuScheduleMode mode, TraceSink* sink,
                              MetricsSink* msink) {
  const char* const task_label = phase == Phase::kL ? "l_task" : "u_task";
  const auto& lu = plan.lu();
  const auto& part = lu.sym.part;
  const int px = plan.shape().px;
  const Idx nc = plan.num_cols();

  // Task table: tasks[g * nc + cp].
  std::vector<PhaseTask> tasks(static_cast<size_t>(px) * static_cast<size_t>(nc));
  auto task_at = [&](int g, Idx cp) -> PhaseTask& {
    return tasks[static_cast<size_t>(g) * static_cast<size_t>(nc) +
                 static_cast<size_t>(cp)];
  };

  // Build tasks. In both phases the "column owner set" is the broadcast
  // tree of the solved supernode: l_bcast for L, u_bcast for U.
  for (Idx cp = 0; cp < nc; ++cp) {
    const Idx k = plan.cols()[static_cast<size_t>(cp)];
    const Idx rp = plan.row_pos(k);
    const double wk = part.width(k);
    // With py == 1, tree member grid-ranks coincide with process rows.
    const int diag_gpu = plan.shape().row_of(plan.shape().diag_owner(k));
    // Dependencies of the diagonal task: one per pattern entry (each is a
    // GEMV executed by another task on the same GPU).
    PhaseTask& dt = task_at(diag_gpu, cp);
    dt.exists = true;
    dt.is_diag = true;
    dt.diag_flops = 2.0 * wk * wk * nrhs;
    dt.deps = static_cast<int>(phase == Phase::kL ? plan.row_pattern(rp).size()
                                                  : plan.below(cp).size());
    dt.ready = t0[static_cast<size_t>(diag_gpu)];
    // GEMV work of every member GPU for this supernode's panel.
    if (phase == Phase::kL) {
      for (const Idx i : plan.below(cp)) {
        const int g = plan.shape().owner_row(i);
        PhaseTask& t = task_at(g, cp);
        if (!t.exists) {
          t.exists = true;
          t.deps = (g == diag_gpu) ? t.deps : 1;  // off-diag waits for y(K)
        }
        t.gemv_flops += 2.0 * part.width(i) * wk * nrhs;
      }
    } else {
      for (const Idx j : plan.row_pattern(rp)) {  // U(J,K) lives on row J
        const int g = plan.shape().owner_row(j);
        PhaseTask& t = task_at(g, cp);
        if (!t.exists) {
          t.exists = true;
          t.deps = (g == diag_gpu) ? t.deps : 1;
        }
        t.gemv_flops += 2.0 * part.width(j) * wk * nrhs;
      }
    }
  }

  std::vector<SlotHeap> slots;
  slots.reserve(static_cast<size_t>(px));
  for (int g = 0; g < px; ++g) slots.emplace_back(exec.sms, t0[static_cast<size_t>(g)]);

  std::vector<double> finish(static_cast<size_t>(px), 0.0);
  for (int g = 0; g < px; ++g) finish[static_cast<size_t>(g)] = t0[static_cast<size_t>(g)];

  if (mode == GpuScheduleMode::kResidentSpin) {
    // Naive single-kernel model: every GPU launches its blocks in the
    // phase's elimination order; a block occupies an SM slot from its
    // admission until completion, spinning while its dependency (fmod or
    // the y/x put) is outstanding. Processing the columns in launch order
    // keeps every producer's completion computed before its consumers.
    for (Idx step = 0; step < nc; ++step) {
      const Idx cp = (phase == Phase::kL) ? step : nc - 1 - step;
      const Idx k = plan.cols()[static_cast<size_t>(cp)];
      const Idx rp = plan.row_pos(k);
      const double wk = part.width(k);
      const TreeView bcast = phase == Phase::kL ? plan.l_bcast(cp) : plan.u_bcast(rp);
      const double bytes = wk * nrhs * sizeof(Real);

      // BFS over the broadcast tree from the diagonal owner so a relay's
      // forward time is known before its children are admitted.
      std::vector<int> order{bcast.empty() ? 0 : bcast.root()};
      std::vector<double> fwd(static_cast<size_t>(px), 0.0);
      for (size_t q = 0; q < order.size(); ++q) {
        bcast.for_each_child(order[q], [&](int child) { order.push_back(child); });
      }
      for (const int g : order) {
        PhaseTask& t = task_at(g, cp);
        if (!t.exists) continue;
        const bool is_diag = t.is_diag;
        const double arrival =
            is_diag ? t.ready : std::max(t.ready, fwd[static_cast<size_t>(g)]);
        const double dur = exec.task_time(t.diag_flops + t.gemv_flops, nrhs);
        // The block holds its slot from admission: spin until `arrival`,
        // compute, release only at completion.
        const double admit = slots[static_cast<size_t>(g)].admit();
        const double start = std::max(admit, arrival);
        const double end = start + dur;
        slots[static_cast<size_t>(g)].release(end);
        finish[static_cast<size_t>(g)] = std::max(finish[static_cast<size_t>(g)], end);
        if (sink) sink->task(gpu_base + g, start, end, task_label, static_cast<int>(k));
        if (msink) msink->task(gpu_base + g);
        const double send_at =
            is_diag ? start + exec.task_time(t.diag_flops, nrhs) : start;
        bcast.for_each_child(g, [&](int child) {
          const double arrive =
              send_at + fabric.put_time(gpu_base + g, gpu_base + child, bytes);
          fwd[static_cast<size_t>(child)] = arrive;
          if (sink) {
            sink->put(gpu_base + g, gpu_base + child, send_at, arrive,
                      static_cast<std::int64_t>(bytes), TimeCategory::kXyComm);
          }
          if (msink) {
            msink->put(gpu_base + g, static_cast<std::int64_t>(bytes),
                       TimeCategory::kXyComm);
          }
        });
        // Feed my local rows'/columns' diagonal readiness.
        if (phase == Phase::kL) {
          for (const Idx i : plan.below(cp)) {
            if (plan.shape().owner_row(i) != g) continue;
            PhaseTask& t2 = task_at(g, plan.col_pos(i));
            t2.ready = std::max(t2.ready, end);
          }
        } else {
          for (const Idx j : plan.row_pattern(rp)) {
            if (plan.shape().owner_row(j) != g) continue;
            PhaseTask& t2 = task_at(g, plan.col_pos(j));
            t2.ready = std::max(t2.ready, end);
          }
        }
      }
    }
    return finish;
  }

  // Event queue over ready tasks (the two-kernel design: a block only
  // occupies a slot while it has work).
  using QEntry = std::pair<double, std::pair<int, Idx>>;  // (ready, (gpu, cp))
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> queue;

  for (Idx cp = 0; cp < nc; ++cp) {
    const Idx k = plan.cols()[static_cast<size_t>(cp)];
    const int diag_gpu = plan.shape().row_of(plan.shape().diag_owner(k));
    PhaseTask& dt = task_at(diag_gpu, cp);
    if (dt.exists && dt.deps == 0) queue.push({dt.ready, {diag_gpu, cp}});
  }

  auto on_contribution = [&](int g, Idx cp, double t) {
    PhaseTask& t2 = task_at(g, cp);
    t2.ready = std::max(t2.ready, t);
    if (--t2.deps == 0) queue.push({t2.ready, {g, cp}});
  };

  while (!queue.empty()) {
    const auto [ready, id] = queue.top();
    queue.pop();
    const auto [g, cp] = id;
    PhaseTask& t = task_at(g, cp);
    const Idx k = plan.cols()[static_cast<size_t>(cp)];
    const Idx rp = plan.row_pos(k);
    const double wk = part.width(k);
    const TreeView bcast = phase == Phase::kL ? plan.l_bcast(cp) : plan.u_bcast(rp);
    const double bytes = wk * nrhs * sizeof(Real);

    const double dur = exec.task_time(t.diag_flops + t.gemv_flops, nrhs);
    const auto [start, end] = slots[static_cast<size_t>(g)].schedule(ready, dur);
    finish[static_cast<size_t>(g)] = std::max(finish[static_cast<size_t>(g)], end);
    if (sink) sink->task(gpu_base + g, start, end, task_label, static_cast<int>(k));
    if (msink) msink->task(gpu_base + g);

    // Forward the solution down the broadcast tree. The diagonal task has
    // the value only after its inverse-apply; a relay forwards as soon as
    // its thread block runs (Algorithm 5 line 13).
    const double send_at = t.is_diag ? start + exec.task_time(t.diag_flops, nrhs) : start;
    bcast.for_each_child(g, [&](int child) {
      const double arrival =
          send_at + fabric.put_time(gpu_base + g, gpu_base + child, bytes);
      if (sink) {
        sink->put(gpu_base + g, gpu_base + child, send_at, arrival,
                  static_cast<std::int64_t>(bytes), TimeCategory::kXyComm);
      }
      if (msink) {
        msink->put(gpu_base + g, static_cast<std::int64_t>(bytes),
                   TimeCategory::kXyComm);
      }
      on_contribution(child, cp, arrival);
    });

    // The GEMVs completed here feed the diagonal tasks of my local rows.
    if (phase == Phase::kL) {
      for (const Idx i : plan.below(cp)) {
        if (plan.shape().owner_row(i) != g) continue;
        on_contribution(g, plan.col_pos(i), end);
      }
    } else {
      for (const Idx j : plan.row_pattern(rp)) {
        if (plan.shape().owner_row(j) != g) continue;
        on_contribution(g, plan.col_pos(j), end);
      }
    }
  }
  return finish;
}

}  // namespace

GpuSolveTimes simulate_solve_3d_gpu(const SupernodalLU& lu, const NdTree& tree,
                                    const GpuSolveConfig& cfg,
                                    const MachineModel& machine) {
  const auto& shape = cfg.shape;
  if (shape.py != 1) {
    throw std::invalid_argument("simulate_solve_3d_gpu: py must be 1 (paper §4.2)");
  }
  if (shape.pz <= 0 || (shape.pz & (shape.pz - 1)) != 0) {
    throw std::invalid_argument("simulate_solve_3d_gpu: pz must be a power of two");
  }
  if (cfg.backend == GpuBackend::kGpu && !machine.shmem_subcomm_support &&
      shape.px > 1) {
    throw std::invalid_argument(
        "simulate_solve_3d_gpu: ROC-SHMEM has no subcommunicators; px must be 1 on " +
        machine.name);
  }
  int zlevels = 0;
  while ((1 << zlevels) < shape.pz) ++zlevels;
  if (zlevels > tree.levels()) {
    throw std::invalid_argument("simulate_solve_3d_gpu: pz exceeds tracked tree");
  }
  const NdTree coarse = coarsen_nd_tree(tree, zlevels);

  // Execution parameters per backend. The CPU backend runs the identical
  // task graph on one sequential "slot" per rank at the core's flop rate —
  // the reference curves of Fig 9-10.
  GpuExecModel exec;
  GpuFabric fabric;
  if (cfg.backend == GpuBackend::kGpu) {
    exec = GpuExecModel::from_machine(machine);
    fabric = GpuFabric::from_machine(machine);
  } else {
    exec.sms = 1;
    exec.sm_flop_rate = machine.cpu_flop_rate;
    exec.task_overhead = machine.mpi_overhead;
    exec.max_gemm_boost = 4.0;  // core GEMM approaches peak with many RHSs
    fabric.latency_intra = machine.net.latency;
    fabric.latency_inter = machine.net.latency;
    fabric.bw_intranode = machine.net.bandwidth;
    fabric.bw_internode = machine.net.bandwidth;
    fabric.gpus_per_node = 1 << 30;  // locality is irrelevant for MPI sends
  }

  const Grid2dShape grid2d{shape.px, 1};
  std::vector<Solve2dPlan> plans;
  plans.reserve(static_cast<size_t>(shape.pz));
  for (int z = 0; z < shape.pz; ++z) {
    plans.push_back(make_grid_plan(lu, coarse, z, grid2d, cfg.tree));
  }

  GpuSolveTimes out;
  const int world = shape.px * shape.pz;
  out.l_finish.assign(static_cast<size_t>(world), 0.0);
  out.u_finish.assign(static_cast<size_t>(world), 0.0);
  std::unique_ptr<TraceSink> sink;
  if (cfg.trace) sink = std::make_unique<TraceSink>(world);
  std::unique_ptr<MetricsSink> msink;
  if (cfg.metrics) msink = std::make_unique<MetricsSink>(world);

  // ---- L phase: independent per grid. ----
  std::vector<std::vector<double>> clock(static_cast<size_t>(shape.pz));
  for (int z = 0; z < shape.pz; ++z) {
    const std::vector<double> t0(static_cast<size_t>(shape.px), 0.0);
    clock[static_cast<size_t>(z)] = run_phase(plans[static_cast<size_t>(z)], Phase::kL,
                                              cfg.nrhs, exec, fabric,
                                              /*gpu_base=*/z * shape.px, t0,
                                              cfg.schedule, sink.get(), msink.get());
    for (int g = 0; g < shape.px; ++g) {
      out.l_finish[static_cast<size_t>(z * shape.px + g)] =
          clock[static_cast<size_t>(z)][static_cast<size_t>(g)];
    }
  }
  out.l_solve = *std::max_element(out.l_finish.begin(), out.l_finish.end());

  // ---- Sparse allreduce (Algorithm 2) over MPI, per GPU line. ----
  // Pairwise exchange cost per level; bytes are the shared ancestors'
  // diag-owned pieces of the line's GPU.
  auto level_bytes = [&](int g, int l) {
    double bytes = 0;
    for (Idx node = 0; node < coarse.num_nodes(); ++node) {
      if (coarse.node(node).depth > coarse.levels() - l - 1) continue;
      const auto [lo, hi] = node_supernode_range(lu.sym, coarse, node);
      for (Idx k = lo; k < hi; ++k) {
        if (grid2d.owner_row(k) == g) {
          bytes += static_cast<double>(lu.sym.part.width(k)) * cfg.nrhs * sizeof(Real);
        }
      }
    }
    return bytes;
  };
  for (int g = 0; g < shape.px; ++g) {
    for (int l = 0; l < zlevels; ++l) {  // reduce toward the lower grid
      const double lvl_bytes = level_bytes(g, l);
      const double cost = 2 * machine.mpi_overhead + machine.net.latency +
                          lvl_bytes / machine.net.bandwidth;
      for (int z = 0; z + (1 << l) < shape.pz; z += 1 << (l + 1)) {
        const int hi = z + (1 << l);
        auto& lo_c = clock[static_cast<size_t>(z)][static_cast<size_t>(g)];
        const double hi_c = clock[static_cast<size_t>(hi)][static_cast<size_t>(g)];
        if (sink) {
          sink->put(hi * shape.px + g, z * shape.px + g, hi_c, hi_c + cost,
                    static_cast<std::int64_t>(lvl_bytes), TimeCategory::kZComm);
        }
        if (msink) {
          msink->put(hi * shape.px + g, static_cast<std::int64_t>(lvl_bytes),
                     TimeCategory::kZComm);
        }
        lo_c = std::max(lo_c, hi_c + cost);
      }
    }
    for (int l = zlevels - 1; l >= 0; --l) {  // broadcast back
      const double lvl_bytes = level_bytes(g, l);
      const double cost = 2 * machine.mpi_overhead + machine.net.latency +
                          lvl_bytes / machine.net.bandwidth;
      for (int z = 0; z + (1 << l) < shape.pz; z += 1 << (l + 1)) {
        const int hi = z + (1 << l);
        auto& hi_c = clock[static_cast<size_t>(hi)][static_cast<size_t>(g)];
        const double lo_c = clock[static_cast<size_t>(z)][static_cast<size_t>(g)];
        if (sink) {
          sink->put(z * shape.px + g, hi * shape.px + g, lo_c, lo_c + cost,
                    static_cast<std::int64_t>(lvl_bytes), TimeCategory::kZComm);
        }
        if (msink) {
          msink->put(z * shape.px + g, static_cast<std::int64_t>(lvl_bytes),
                     TimeCategory::kZComm);
        }
        hi_c = std::max(hi_c, lo_c + cost);
      }
    }
  }
  double after_z = 0;
  for (const auto& grid_clock : clock) {
    for (const double c : grid_clock) after_z = std::max(after_z, c);
  }
  out.z_comm = after_z - out.l_solve;

  // ---- U phase: independent per grid again, starting at the post-
  // allreduce clocks. ----
  for (int z = 0; z < shape.pz; ++z) {
    const auto fin = run_phase(plans[static_cast<size_t>(z)], Phase::kU, cfg.nrhs, exec,
                               fabric, z * shape.px, clock[static_cast<size_t>(z)],
                               cfg.schedule, sink.get(), msink.get());
    for (int g = 0; g < shape.px; ++g) {
      out.u_finish[static_cast<size_t>(z * shape.px + g)] =
          fin[static_cast<size_t>(g)];
    }
  }
  out.total = *std::max_element(out.u_finish.begin(), out.u_finish.end());
  out.u_solve = out.total - after_z;

  if (sink) {
    for (int z = 0; z < shape.pz; ++z) {
      for (int g = 0; g < shape.px; ++g) {
        const int wr = z * shape.px + g;
        const double l_end = out.l_finish[static_cast<size_t>(wr)];
        const double z_end = clock[static_cast<size_t>(z)][static_cast<size_t>(g)];
        sink->span(wr, "phase:L", z, 0.0, l_end);
        sink->span(wr, "phase:Z", z, l_end, z_end);
        sink->span(wr, "phase:U", z, z_end, out.u_finish[static_cast<size_t>(wr)]);
      }
    }
    // Overlapping SM slices arrive out of order; sort for a stable export
    // (stable: equal-t0 events keep their generation order).
    for (auto& rt : sink->ranks) {
      std::stable_sort(rt.events.begin(), rt.events.end(),
                       [](const TraceEvent& a, const TraceEvent& b) { return a.t0 < b.t0; });
    }
    out.trace = std::make_shared<const Trace>(Trace::build(std::move(sink->ranks)));
  }
  // ---- Analytic SDC/ABFT accounting (docs/ROBUSTNESS.md §SDC). The GPU
  // sim carries no mutable numeric state, so memory faults here are pure
  // ledger entries: a scheduled fault "lands" if its virtual time falls
  // inside the solve, and with cfg.abft each phase boundary (L, Z, U)
  // charges one checksum verification of the GPU's solution share plus a
  // recompute per landed fault. The clean phase timings above are final —
  // everything lands in out.sdc / out.abft_overhead only. ----
  if (cfg.abft || machine.perturb.sdc_active()) {
    const SdcPlan plan = build_sdc_plan(machine.perturb, cfg.seed, world);
    const AbftModel& am = machine.abft;
    const double words = static_cast<double>(lu.n()) *
                         static_cast<double>(cfg.nrhs) /
                         static_cast<double>(world);
    const double vcost = am.check_overhead + 2.0 * words / machine.gpu_flop_rate;
    for (int wr = 0; wr < world; ++wr) {
      double overhead = 0;
      if (cfg.abft) {
        out.sdc.checks += 3;  // L, Z and U phase boundaries
        out.sdc.verify_time += 3 * vcost;
        overhead += 3 * vcost;
        if (msink) msink->h[static_cast<size_t>(wr)].abft_checks.add(3);
      }
      for (const SdcEvent& ev : plan.by_rank[static_cast<size_t>(wr)]) {
        if (ev.vt > out.u_finish[static_cast<size_t>(wr)]) continue;
        out.sdc.injected += 1;
        if (msink) msink->h[static_cast<size_t>(wr)].abft_injected.add();
        if (!cfg.abft) continue;
        out.sdc.detected += 1;
        out.sdc.corrected += 1;
        double rcost = am.recompute_overhead;
        if (ev.refail_draw < am.recompute_refail_prob) {
          rcost += machine.recovery.restore_overhead;
          out.sdc.escalated += 1;
        }
        out.sdc.repair_time += rcost;
        overhead += rcost;
        if (msink) {
          msink->h[static_cast<size_t>(wr)].abft_detected.add();
          msink->h[static_cast<size_t>(wr)].abft_corrected.add();
        }
      }
      out.abft_overhead = std::max(out.abft_overhead, overhead);
    }
  }

  if (msink) out.metrics = msink->report();
  return out;
}

}  // namespace sptrsv
