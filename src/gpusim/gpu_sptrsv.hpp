#pragma once
/// \file gpu_sptrsv.hpp
/// \brief Discrete-event timing simulation of the proposed GPU 3D SpTRSV
/// (paper §3.4, Algorithms 4-5; Figures 9-11).
///
/// The simulated algorithm is the proposed 3D algorithm with GPU-resident
/// 2D solves: every grid z runs an in-kernel message-driven L-solve of L^z
/// (one thread block per supernode column, NVSHMEM puts along the binary
/// broadcast trees), the grids join in the MPI-based sparse allreduce, then
/// the U-solve mirrors the L-solve. Layouts are Px x 1 x Pz as in the
/// paper's GPU experiments (the reduction-tree direction is slower on GPUs,
/// so Py = 1 gives the best performance per [12]); Px = 1 covers the
/// Crusher configurations where ROC-SHMEM forbids subcommunicators.

#include <memory>
#include <vector>

#include "comm/trees.hpp"
#include "dist/layout.hpp"
#include "factor/supernodal_lu.hpp"
#include "gpusim/gpu_model.hpp"
#include "metrics/metrics.hpp"
#include "ordering/nested_dissection.hpp"
#include "runtime/machine.hpp"

namespace sptrsv {

class Trace;  // trace/trace.hpp

/// Execution backend for the modeled solve.
enum class GpuBackend {
  kGpu,  ///< Algorithms 4/5: in-kernel DAG traversal, one-sided puts
  kCpu,  ///< reference CPU solve on the same machine's cores (Fig 9-10)
};

/// In-kernel scheduling discipline (paper §3.4). NVSHMEM point-to-point
/// synchronization caps resident thread blocks at the SM count; the paper
/// works around it with two kernels (a single-block WAIT kernel plus the
/// SOLVE kernel) so blocks need not spin while non-resident work is
/// pending. The naive single-kernel alternative launches blocks in
/// elimination order and lets resident blocks spin-wait while HOLDING
/// their slot — "that limitation would significantly restrict SpTRSV
/// concurrency". Both are modeled; `bench/ablation_gpu_wait_kernel`
/// quantifies the difference.
enum class GpuScheduleMode {
  kTwoKernel,     ///< the paper's WAIT+SOLVE design: blocks run when ready
  kResidentSpin,  ///< naive: blocks admitted in order, spin while resident
};

/// Configuration of one modeled solve.
struct GpuSolveConfig {
  Grid3dShape shape;  ///< py must be 1 for the GPU backend
  Idx nrhs = 1;
  GpuBackend backend = GpuBackend::kGpu;
  GpuScheduleMode schedule = GpuScheduleMode::kTwoKernel;
  TreeKind tree = TreeKind::kBinary;
  /// Record per-task/per-put events into GpuSolveTimes::trace. The GPU
  /// sim's task slices overlap (SM slots), so the trace is export-only:
  /// Trace::contiguous() is false and critical_path() refuses it.
  bool trace = false;
  /// Build GpuSolveTimes::metrics: per-world-GPU counters (tasks, puts,
  /// put bytes by category) in the same registry taxonomy as the cluster
  /// runtime. Like the trace flag, it never changes modeled timings.
  bool metrics = false;
  /// Analytic ABFT accounting (docs/ROBUSTNESS.md §SDC): charge per-phase
  /// checksum verification (and correction of any scheduled memory faults)
  /// into GpuSolveTimes::sdc / abft_overhead. The GPU sim has no mutable
  /// numeric state, so SDC here is pure cost/ledger modeling — the clean
  /// phase timings are never touched.
  bool abft = false;
  /// Seed for the memory-fault plan (same salted kMemStreamSalt stream as
  /// the CPU runtime, keyed by world GPU rank).
  std::uint64_t seed = 0;
};

/// Modeled timings (seconds), makespan-style (max over GPUs/ranks).
struct GpuSolveTimes {
  double l_solve = 0;  ///< 2D L-solve phase
  double z_comm = 0;   ///< inter-grid sparse allreduce
  double u_solve = 0;  ///< 2D U-solve phase
  double total = 0;
  /// Per-world-GPU completion times of each phase (diagnostics).
  std::vector<double> l_finish;
  std::vector<double> u_finish;
  /// Event trace (Perfetto export only); non-null iff GpuSolveConfig::trace.
  std::shared_ptr<const Trace> trace;
  /// Per-GPU metrics report; non-null iff GpuSolveConfig::metrics. No time
  /// series (the sim has no sampling clock): final values only.
  std::shared_ptr<const MetricsReport> metrics;
  /// SDC/ABFT ledger totals over all world GPUs (GpuSolveConfig::abft or an
  /// armed PerturbationModel SDC schedule); all zero otherwise.
  SdcStats sdc;
  /// Worst per-GPU ABFT verification + correction time — the fault-side
  /// makespan overhead. Never added to l_solve/z_comm/u_solve/total.
  double abft_overhead = 0;
};

/// Runs the discrete-event model and returns the phase timings. Enforces
/// the paper's platform constraints: `py == 1`; on machines without SHMEM
/// subcommunicator support (Crusher/ROC-SHMEM) the GPU backend requires
/// `px == 1`.
GpuSolveTimes simulate_solve_3d_gpu(const SupernodalLU& lu, const NdTree& tree,
                                    const GpuSolveConfig& cfg,
                                    const MachineModel& machine);

}  // namespace sptrsv
