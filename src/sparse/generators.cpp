#include "sparse/generators.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace sptrsv {

namespace {

/// Deterministic small off-diagonal coupling in [-1.0, -0.1]; negative
/// couplings with a dominant positive diagonal is the classic M-matrix shape
/// of discretized elliptic operators.
class CouplingGen {
 public:
  explicit CouplingGen(std::uint64_t seed) : rng_(seed) {}
  Real operator()() {
    return -std::uniform_real_distribution<Real>(0.1, 1.0)(rng_);
  }

 private:
  std::mt19937_64 rng_;
};

/// Adds a fully coupled dofs x dofs block between grid nodes a and b.
void add_block(CooMatrix& coo, Idx a, Idx b, Idx dofs, Real weight, CouplingGen& gen) {
  for (Idx i = 0; i < dofs; ++i) {
    for (Idx j = 0; j < dofs; ++j) {
      coo.add_sym(a * dofs + i, b * dofs + j, weight * gen());
    }
  }
}

void add_diag(CooMatrix& coo, Idx n_nodes, Idx dofs) {
  for (Idx a = 0; a < n_nodes; ++a) {
    for (Idx i = 0; i < dofs; ++i) {
      coo.add(a * dofs + i, a * dofs + i, 1.0);  // placeholder, replaced below
    }
    // Weak intra-node coupling between the dofs of one node.
    for (Idx i = 0; i < dofs; ++i) {
      for (Idx j = i + 1; j < dofs; ++j) {
        coo.add_sym(a * dofs + i, a * dofs + j, -0.05);
      }
    }
  }
}

CsrMatrix finalize(CooMatrix& coo) {
  CsrMatrix m = CsrMatrix::from_coo(coo);
  m.make_diagonally_dominant(/*factor=*/1.0, /*shift=*/1.0);
  return m;
}

}  // namespace

CsrMatrix make_grid2d(Idx nx, Idx ny, Stencil2d stencil, const GridOptions& opt) {
  if (nx <= 0 || ny <= 0 || opt.dofs_per_node <= 0) {
    throw std::invalid_argument("make_grid2d: sizes must be positive");
  }
  const Idx d = opt.dofs_per_node;
  CooMatrix coo;
  coo.rows = coo.cols = nx * ny * d;
  CouplingGen gen(opt.seed);
  auto id = [nx](Idx x, Idx y) { return y * nx + x; };
  add_diag(coo, nx * ny, d);
  for (Idx y = 0; y < ny; ++y) {
    for (Idx x = 0; x < nx; ++x) {
      const Idx a = id(x, y);
      if (x + 1 < nx) add_block(coo, a, id(x + 1, y), d, 1.0, gen);
      if (y + 1 < ny) add_block(coo, a, id(x, y + 1), d, opt.anisotropy, gen);
      if (stencil == Stencil2d::kNinePoint) {
        if (x + 1 < nx && y + 1 < ny) add_block(coo, a, id(x + 1, y + 1), d, opt.anisotropy, gen);
        if (x > 0 && y + 1 < ny) add_block(coo, a, id(x - 1, y + 1), d, opt.anisotropy, gen);
      }
    }
  }
  return finalize(coo);
}

CsrMatrix make_grid3d(Idx nx, Idx ny, Idx nz, Stencil3d stencil, const GridOptions& opt) {
  if (nx <= 0 || ny <= 0 || nz <= 0 || opt.dofs_per_node <= 0) {
    throw std::invalid_argument("make_grid3d: sizes must be positive");
  }
  const Idx d = opt.dofs_per_node;
  CooMatrix coo;
  coo.rows = coo.cols = nx * ny * nz * d;
  CouplingGen gen(opt.seed);
  auto id = [nx, ny](Idx x, Idx y, Idx z) { return (z * ny + y) * nx + x; };
  add_diag(coo, nx * ny * nz, d);
  for (Idx z = 0; z < nz; ++z) {
    for (Idx y = 0; y < ny; ++y) {
      for (Idx x = 0; x < nx; ++x) {
        const Idx a = id(x, y, z);
        if (stencil == Stencil3d::kSevenPoint) {
          if (x + 1 < nx) add_block(coo, a, id(x + 1, y, z), d, 1.0, gen);
          if (y + 1 < ny) add_block(coo, a, id(x, y + 1, z), d, opt.anisotropy, gen);
          if (z + 1 < nz) add_block(coo, a, id(x, y, z + 1), d, opt.anisotropy, gen);
        } else {
          // 27-point: couple to every neighbour in the forward half-space.
          for (Idx dz = 0; dz <= 1; ++dz) {
            for (Idx dy = -1; dy <= 1; ++dy) {
              for (Idx dx = -1; dx <= 1; ++dx) {
                // Enumerate each unordered pair once.
                if (dz == 0 && (dy < 0 || (dy == 0 && dx <= 0))) continue;
                const Idx X = x + dx, Y = y + dy, Z = z + dz;
                if (X < 0 || X >= nx || Y < 0 || Y >= ny || Z < 0 || Z >= nz) continue;
                const Real w = (dy != 0 || dz != 0) ? opt.anisotropy : 1.0;
                add_block(coo, a, id(X, Y, Z), d, w, gen);
              }
            }
          }
        }
      }
    }
  }
  return finalize(coo);
}

CsrMatrix make_random_geometric(Idx n, Real avg_degree, Real long_range,
                                std::uint64_t seed) {
  if (n <= 0) throw std::invalid_argument("make_random_geometric: n must be positive");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<Real> uni(0.0, 1.0);
  std::vector<std::pair<Real, Real>> pos(static_cast<size_t>(n));
  for (auto& p : pos) p = {uni(rng), uni(rng)};

  CooMatrix coo;
  coo.rows = coo.cols = n;
  CouplingGen gen(seed ^ 0x9e3779b97f4a7c15ULL);
  for (Idx i = 0; i < n; ++i) coo.add(i, i, 1.0);

  // Local edges: connect each vertex to its nearest neighbours by a grid
  // hash (cell lists), which keeps generation O(n).
  const Real radius = std::sqrt(avg_degree / (3.141592653589793 * n));
  const Idx cells = std::max<Idx>(1, static_cast<Idx>(1.0 / std::max(radius, 1e-6)));
  std::vector<std::vector<Idx>> grid(static_cast<size_t>(cells) * cells);
  auto cell_of = [&](Idx v) {
    const Idx cx = std::min<Idx>(cells - 1, static_cast<Idx>(pos[static_cast<size_t>(v)].first * cells));
    const Idx cy = std::min<Idx>(cells - 1, static_cast<Idx>(pos[static_cast<size_t>(v)].second * cells));
    return cy * cells + cx;
  };
  for (Idx v = 0; v < n; ++v) grid[static_cast<size_t>(cell_of(v))].push_back(v);
  for (Idx v = 0; v < n; ++v) {
    const Idx c = cell_of(v);
    const Idx cx = c % cells, cy = c / cells;
    for (Idx dy = -1; dy <= 1; ++dy) {
      for (Idx dx = -1; dx <= 1; ++dx) {
        const Idx X = cx + dx, Y = cy + dy;
        if (X < 0 || X >= cells || Y < 0 || Y >= cells) continue;
        for (const Idx u : grid[static_cast<size_t>(Y * cells + X)]) {
          if (u <= v) continue;
          const Real ddx = pos[static_cast<size_t>(v)].first - pos[static_cast<size_t>(u)].first;
          const Real ddy = pos[static_cast<size_t>(v)].second - pos[static_cast<size_t>(u)].second;
          if (ddx * ddx + ddy * ddy <= radius * radius) coo.add_sym(v, u, gen());
        }
      }
    }
  }

  // Long-range edges: uniformly random pairs; these create heavy fill.
  const auto n_long = static_cast<Nnz>(long_range * n);
  std::uniform_int_distribution<Idx> pick(0, n - 1);
  for (Nnz e = 0; e < n_long; ++e) {
    const Idx a = pick(rng), b = pick(rng);
    if (a != b) coo.add_sym(a, b, gen());
  }
  return finalize(coo);
}

CsrMatrix make_random_symmetric(Idx n, Real avg_degree, std::uint64_t seed) {
  if (n <= 0) throw std::invalid_argument("make_random_symmetric: n must be positive");
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Idx> pick(0, n - 1);
  CouplingGen gen(seed ^ 0xc2b2ae3d27d4eb4fULL);
  CooMatrix coo;
  coo.rows = coo.cols = n;
  for (Idx i = 0; i < n; ++i) coo.add(i, i, 1.0);
  const auto n_edges = static_cast<Nnz>(avg_degree * n / 2.0);
  for (Nnz e = 0; e < n_edges; ++e) {
    const Idx a = pick(rng), b = pick(rng);
    if (a != b) coo.add_sym(a, b, gen());
  }
  return finalize(coo);
}

CsrMatrix make_banded(Idx n, Idx bw, std::uint64_t seed) {
  if (n <= 0 || bw < 0) throw std::invalid_argument("make_banded: bad sizes");
  CouplingGen gen(seed);
  CooMatrix coo;
  coo.rows = coo.cols = n;
  for (Idx i = 0; i < n; ++i) {
    coo.add(i, i, 1.0);
    for (Idx j = i + 1; j <= std::min<Idx>(n - 1, i + bw); ++j) coo.add_sym(i, j, gen());
  }
  return finalize(coo);
}

}  // namespace sptrsv
