#pragma once
/// \file graph.hpp
/// \brief Undirected adjacency graph extracted from a sparse matrix pattern.
///
/// The nested-dissection orderer works on this representation. Vertices are
/// 0..n-1; edges are the off-diagonal entries of the (symmetrized) pattern.

#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace sptrsv {

/// CSR-style adjacency structure (no values, no self-loops).
class Graph {
 public:
  Graph() = default;

  /// Extracts the adjacency graph of `m`'s off-diagonal pattern. The matrix
  /// pattern must be symmetric (callers symmetrize first if needed).
  static Graph from_matrix(const CsrMatrix& m);

  /// Builds from raw adjacency arrays.
  static Graph from_raw(Idx n, std::vector<Nnz> xadj, std::vector<Idx> adj);

  Idx num_vertices() const { return n_; }
  Nnz num_edges() const { return static_cast<Nnz>(adj_.size()) / 2; }

  std::span<const Idx> neighbors(Idx v) const {
    return {adj_.data() + xadj_[v], static_cast<size_t>(xadj_[v + 1] - xadj_[v])};
  }
  Idx degree(Idx v) const { return static_cast<Idx>(xadj_[v + 1] - xadj_[v]); }

  /// Induced subgraph on `vertices`; also returns the local->global map
  /// (which is just `vertices`) implicitly — callers keep their own copy.
  Graph induced_subgraph(std::span<const Idx> vertices) const;

  /// Number of connected components.
  Idx num_components() const;

 private:
  Idx n_ = 0;
  std::vector<Nnz> xadj_;
  std::vector<Idx> adj_;
};

}  // namespace sptrsv
