#pragma once
/// \file types.hpp
/// \brief Fundamental index and scalar types shared across the library.
///
/// All matrix dimensions use 32-bit signed indices (`Idx`); nonzero offsets
/// use 64-bit (`Nnz`) so that matrices with more than 2^31 nonzeros in their
/// LU factors (cf. Table 1 of the paper: nlpkkt80 has 1.9e9 nonzeros) remain
/// representable even though the scaled-down reproduction never reaches that.

#include <cstdint>
#include <limits>

namespace sptrsv {

/// Row/column/supernode index type.
using Idx = std::int32_t;

/// Nonzero-count / offset type.
using Nnz = std::int64_t;

/// Scalar type for matrix values. The paper's solver is templated on
/// real/complex in SuperLU_DIST; this reproduction fixes double precision,
/// which is what all reported experiments use.
using Real = double;

/// Sentinel for "no index" (e.g. a root in an elimination tree).
inline constexpr Idx kNoIdx = -1;

}  // namespace sptrsv
