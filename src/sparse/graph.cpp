#include "sparse/graph.hpp"

#include <cassert>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace sptrsv {

Graph Graph::from_matrix(const CsrMatrix& m) {
  if (m.rows() != m.cols()) throw std::invalid_argument("Graph::from_matrix: square only");
  Graph g;
  g.n_ = m.rows();
  g.xadj_.assign(static_cast<size_t>(g.n_) + 1, 0);
  for (Idx r = 0; r < g.n_; ++r) {
    Nnz deg = 0;
    for (const Idx c : m.row_cols(r)) {
      if (c != r) ++deg;
    }
    g.xadj_[static_cast<size_t>(r) + 1] = g.xadj_[static_cast<size_t>(r)] + deg;
  }
  g.adj_.resize(static_cast<size_t>(g.xadj_.back()));
  for (Idx r = 0; r < g.n_; ++r) {
    Nnz p = g.xadj_[static_cast<size_t>(r)];
    for (const Idx c : m.row_cols(r)) {
      if (c != r) g.adj_[static_cast<size_t>(p++)] = c;
    }
  }
  return g;
}

Graph Graph::from_raw(Idx n, std::vector<Nnz> xadj, std::vector<Idx> adj) {
  if (xadj.size() != static_cast<size_t>(n) + 1 ||
      xadj.back() != static_cast<Nnz>(adj.size())) {
    throw std::invalid_argument("Graph::from_raw: inconsistent arrays");
  }
  Graph g;
  g.n_ = n;
  g.xadj_ = std::move(xadj);
  g.adj_ = std::move(adj);
  return g;
}

Graph Graph::induced_subgraph(std::span<const Idx> vertices) const {
  std::vector<Idx> local(static_cast<size_t>(n_), kNoIdx);
  for (size_t i = 0; i < vertices.size(); ++i) {
    local[static_cast<size_t>(vertices[i])] = static_cast<Idx>(i);
  }
  Graph s;
  s.n_ = static_cast<Idx>(vertices.size());
  s.xadj_.assign(vertices.size() + 1, 0);
  for (size_t i = 0; i < vertices.size(); ++i) {
    Nnz deg = 0;
    for (const Idx u : neighbors(vertices[i])) {
      if (local[static_cast<size_t>(u)] != kNoIdx) ++deg;
    }
    s.xadj_[i + 1] = s.xadj_[i] + deg;
  }
  s.adj_.resize(static_cast<size_t>(s.xadj_.back()));
  for (size_t i = 0; i < vertices.size(); ++i) {
    Nnz p = s.xadj_[i];
    for (const Idx u : neighbors(vertices[i])) {
      const Idx lu = local[static_cast<size_t>(u)];
      if (lu != kNoIdx) s.adj_[static_cast<size_t>(p++)] = lu;
    }
  }
  return s;
}

Idx Graph::num_components() const {
  std::vector<Idx> stack;
  std::vector<bool> seen(static_cast<size_t>(n_), false);
  Idx comps = 0;
  for (Idx v = 0; v < n_; ++v) {
    if (seen[static_cast<size_t>(v)]) continue;
    ++comps;
    stack.push_back(v);
    seen[static_cast<size_t>(v)] = true;
    while (!stack.empty()) {
      const Idx u = stack.back();
      stack.pop_back();
      for (const Idx w : neighbors(u)) {
        if (!seen[static_cast<size_t>(w)]) {
          seen[static_cast<size_t>(w)] = true;
          stack.push_back(w);
        }
      }
    }
  }
  return comps;
}

}  // namespace sptrsv
