#include "sparse/mmio.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sptrsv {

CsrMatrix read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("mmio: empty stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket" || object != "matrix" || format != "coordinate" ||
      field != "real") {
    throw std::runtime_error("mmio: unsupported header: " + line);
  }
  const bool symmetric = (symmetry == "symmetric");
  if (!symmetric && symmetry != "general") {
    throw std::runtime_error("mmio: unsupported symmetry: " + symmetry);
  }
  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream dims(line);
  long long rows = 0, cols = 0, nnz = 0;
  if (!(dims >> rows >> cols >> nnz)) throw std::runtime_error("mmio: bad size line");

  CooMatrix coo;
  coo.rows = static_cast<Idx>(rows);
  coo.cols = static_cast<Idx>(cols);
  coo.entries.reserve(static_cast<size_t>(nnz));
  for (long long k = 0; k < nnz; ++k) {
    long long r = 0, c = 0;
    Real v = 0;
    if (!(in >> r >> c >> v)) throw std::runtime_error("mmio: truncated entries");
    const Idx ri = static_cast<Idx>(r - 1), ci = static_cast<Idx>(c - 1);
    if (symmetric) {
      coo.add_sym(ri, ci, v);
    } else {
      coo.add(ri, ci, v);
    }
  }
  return CsrMatrix::from_coo(coo);
}

CsrMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("mmio: cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const CsrMatrix& m) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << m.rows() << " " << m.cols() << " " << m.nnz() << "\n";
  out.precision(17);
  for (Idx r = 0; r < m.rows(); ++r) {
    const auto cs = m.row_cols(r);
    const auto vs = m.row_vals(r);
    for (size_t k = 0; k < cs.size(); ++k) {
      out << (r + 1) << " " << (cs[k] + 1) << " " << vs[k] << "\n";
    }
  }
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& m) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("mmio: cannot open " + path);
  write_matrix_market(out, m);
}

}  // namespace sptrsv
