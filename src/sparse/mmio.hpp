#pragma once
/// \file mmio.hpp
/// \brief Minimal Matrix-Market I/O (coordinate real general/symmetric).
///
/// Lets users feed their own matrices (e.g. SuiteSparse downloads, the
/// paper's actual test set) into the solver pipeline, and lets tests
/// round-trip matrices through a canonical text form.

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace sptrsv {

/// Reads a `matrix coordinate real {general|symmetric}` Matrix-Market stream.
/// Symmetric files are expanded to full storage.
CsrMatrix read_matrix_market(std::istream& in);

/// Convenience overload reading from a file path.
CsrMatrix read_matrix_market_file(const std::string& path);

/// Writes `m` as `matrix coordinate real general`.
void write_matrix_market(std::ostream& out, const CsrMatrix& m);

/// Convenience overload writing to a file path.
void write_matrix_market_file(const std::string& path, const CsrMatrix& m);

}  // namespace sptrsv
