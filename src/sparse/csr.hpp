#pragma once
/// \file csr.hpp
/// \brief Compressed sparse row matrix and the structural operations the
/// ordering / symbolic layers need.
///
/// The solver pipeline assumes a structurally symmetric matrix (the paper
/// makes the same assumption, §2.2: "we have assumed that the matrix A has
/// symmetric nonzero patterns for simplicity"); `symmetrized_pattern` enforces
/// it for arbitrary inputs by adding explicit zeros.

#include <span>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/types.hpp"

namespace sptrsv {

/// Compressed sparse row matrix with sorted column indices per row.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds an empty (all-zero) matrix of the given shape.
  CsrMatrix(Idx rows, Idx cols);

  /// Compresses a COO matrix: sorts entries, sums duplicates.
  static CsrMatrix from_coo(const CooMatrix& coo);

  /// Builds directly from raw CSR arrays (validated).
  static CsrMatrix from_raw(Idx rows, Idx cols, std::vector<Nnz> rowptr,
                            std::vector<Idx> colidx, std::vector<Real> values);

  Idx rows() const { return rows_; }
  Idx cols() const { return cols_; }
  Nnz nnz() const { return static_cast<Nnz>(colidx_.size()); }

  std::span<const Nnz> rowptr() const { return rowptr_; }
  std::span<const Idx> colidx() const { return colidx_; }
  std::span<const Real> values() const { return values_; }
  std::span<Real> values_mut() { return values_; }

  /// Column indices of row `r` (sorted ascending).
  std::span<const Idx> row_cols(Idx r) const {
    return {colidx_.data() + rowptr_[r], static_cast<size_t>(rowptr_[r + 1] - rowptr_[r])};
  }
  /// Values of row `r`, aligned with `row_cols(r)`.
  std::span<const Real> row_vals(Idx r) const {
    return {values_.data() + rowptr_[r], static_cast<size_t>(rowptr_[r + 1] - rowptr_[r])};
  }

  /// Value at (r,c); zero if not stored. O(log nnz(row)).
  Real at(Idx r, Idx c) const;

  /// True if (r,c) is a stored entry.
  bool has_entry(Idx r, Idx c) const;

  /// Transposed copy.
  CsrMatrix transposed() const;

  /// Pattern-symmetrized copy: the result stores entry (i,j) whenever either
  /// (i,j) or (j,i) is stored in `*this`; new entries get value 0.
  CsrMatrix symmetrized_pattern() const;

  /// Symmetric permutation P*A*P^T where `perm[new] = old`... see note:
  /// `perm` maps new index -> old index (i.e. row `i` of the result is row
  /// `perm[i]` of the input with columns relabeled by the inverse map).
  CsrMatrix permuted_symmetric(std::span<const Idx> perm) const;

  /// True if the *pattern* is symmetric.
  bool has_symmetric_pattern() const;

  /// y = A*x for a dense vector (used by residual checks).
  void matvec(std::span<const Real> x, std::span<Real> y) const;

  /// y = A*X for `nrhs` column-major dense RHS, ld = rows.
  void matmul(std::span<const Real> x, std::span<Real> y, Idx nrhs) const;

  /// Overwrites the diagonal so every row is strictly diagonally dominant:
  /// a_ii = sum_j |a_ij| * factor + shift. Requires a stored diagonal.
  void make_diagonally_dominant(Real factor = 1.0, Real shift = 1.0);

  /// Returns true if every row has a stored diagonal entry.
  bool has_full_diagonal() const;

 private:
  Idx rows_ = 0;
  Idx cols_ = 0;
  std::vector<Nnz> rowptr_;
  std::vector<Idx> colidx_;
  std::vector<Real> values_;
};

/// Inverts a permutation: returns `inv` with inv[perm[i]] = i.
std::vector<Idx> invert_permutation(std::span<const Idx> perm);

/// True if `perm` is a permutation of 0..n-1.
bool is_permutation(std::span<const Idx> perm);

}  // namespace sptrsv
