#include "sparse/paper_matrices.hpp"

#include <stdexcept>

#include "sparse/generators.hpp"

namespace sptrsv {

std::vector<PaperMatrix> all_paper_matrices() {
  return {PaperMatrix::kNlpkkt80,     PaperMatrix::kGa19As19H42,
          PaperMatrix::kS1Mat0253872, PaperMatrix::kS2D9pt2048,
          PaperMatrix::kLdoor,        PaperMatrix::kDielFilterV3real};
}

std::string paper_matrix_name(PaperMatrix which) {
  switch (which) {
    case PaperMatrix::kNlpkkt80: return "nlpkkt80";
    case PaperMatrix::kGa19As19H42: return "Ga19As19H42";
    case PaperMatrix::kS1Mat0253872: return "s1_mat_0_253872";
    case PaperMatrix::kS2D9pt2048: return "s2D9pt2048";
    case PaperMatrix::kLdoor: return "ldoor";
    case PaperMatrix::kDielFilterV3real: return "dielFilterV3real";
  }
  throw std::invalid_argument("paper_matrix_name: unknown matrix");
}

std::string paper_matrix_description(PaperMatrix which) {
  switch (which) {
    case PaperMatrix::kNlpkkt80: return "Optimization";
    case PaperMatrix::kGa19As19H42: return "Chemistry";
    case PaperMatrix::kS1Mat0253872: return "Fusion";
    case PaperMatrix::kS2D9pt2048: return "Poisson";
    case PaperMatrix::kLdoor: return "Structural";
    case PaperMatrix::kDielFilterV3real: return "Wave";
  }
  throw std::invalid_argument("paper_matrix_description: unknown matrix");
}

CsrMatrix make_paper_matrix(PaperMatrix which, MatrixScale scale) {
  const int s = static_cast<int>(scale);  // 0=tiny, 1=small, 2=medium
  switch (which) {
    case PaperMatrix::kNlpkkt80: {
      // 3D KKT-like coupling: 27-point 3D stencil drives the 3D-PDE fill
      // growth the paper highlights in Fig 6/8.
      const Idx side[] = {8, 16, 30};
      return make_grid3d(side[s], side[s], side[s], Stencil3d::kTwentySevenPoint);
    }
    case PaperMatrix::kGa19As19H42: {
      // Dense-LU regime: geometric graph with many long-range couplings.
      const Idx n[] = {400, 1500, 4000};
      return make_random_geometric(n[s], /*avg_degree=*/12.0, /*long_range=*/4.0,
                                   /*seed=*/1234);
    }
    case PaperMatrix::kS1Mat0253872: {
      // Anisotropic 2D (fusion plasma fields are strongly field-aligned).
      const Idx nx[] = {24, 80, 280};
      GridOptions opt;
      opt.anisotropy = 0.05;
      return make_grid2d(nx[s] * 2, nx[s], Stencil2d::kNinePoint, opt);
    }
    case PaperMatrix::kS2D9pt2048: {
      const Idx side[] = {32, 96, 360};
      return make_grid2d(side[s], side[s], Stencil2d::kNinePoint);
    }
    case PaperMatrix::kLdoor: {
      // Elasticity-style: 3 dofs per node on a 2D mesh.
      const Idx side[] = {16, 48, 160};
      GridOptions opt;
      opt.dofs_per_node = 3;
      return make_grid2d(side[s], side[s], Stencil2d::kNinePoint, opt);
    }
    case PaperMatrix::kDielFilterV3real: {
      // Maxwell FEM: 3D grid, 2 dofs per node.
      const Idx side[] = {6, 12, 24};
      GridOptions opt;
      opt.dofs_per_node = 2;
      return make_grid3d(side[s], side[s], side[s], Stencil3d::kSevenPoint, opt);
    }
  }
  throw std::invalid_argument("make_paper_matrix: unknown matrix");
}

}  // namespace sptrsv
