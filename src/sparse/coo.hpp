#pragma once
/// \file coo.hpp
/// \brief Coordinate-format sparse matrix used as a construction staging area.

#include <vector>

#include "sparse/types.hpp"

namespace sptrsv {

/// A single nonzero entry in coordinate format.
struct Triplet {
  Idx row = 0;
  Idx col = 0;
  Real val = 0.0;
};

/// Coordinate-format (COO) sparse matrix.
///
/// COO is the universal staging format: generators and Matrix-Market readers
/// emit triplets (possibly unsorted, possibly with duplicates), and
/// `CsrMatrix::from_coo` compresses them. Duplicate entries are summed, which
/// matches Matrix-Market assembly semantics for FEM-style generators.
struct CooMatrix {
  Idx rows = 0;
  Idx cols = 0;
  std::vector<Triplet> entries;

  void add(Idx r, Idx c, Real v) { entries.push_back({r, c, v}); }

  /// Adds both (r,c,v) and (c,r,v). Diagonal entries are added once.
  void add_sym(Idx r, Idx c, Real v) {
    add(r, c, v);
    if (r != c) add(c, r, v);
  }
};

}  // namespace sptrsv
