#pragma once
/// \file generators.hpp
/// \brief Synthetic sparse matrix generators.
///
/// These replace the SuiteSparse download the paper uses (offline
/// reproduction). Each generator produces a structurally symmetric,
/// diagonally dominant matrix so the unpivoted supernodal LU in `src/factor`
/// is numerically stable, matching the paper's assumption of pre-factorized
/// systems with precomputed inverted diagonal blocks.

#include <cstdint>

#include "sparse/csr.hpp"

namespace sptrsv {

/// 2D grid stencils.
enum class Stencil2d { kFivePoint, kNinePoint };

/// 3D grid stencils.
enum class Stencil3d { kSevenPoint, kTwentySevenPoint };

/// Options for grid-based generators.
struct GridOptions {
  /// Degrees of freedom per grid node (vector PDEs couple all dofs of
  /// adjacent nodes; dofs > 1 mimics elasticity / Maxwell FEM blocks).
  Idx dofs_per_node = 1;
  /// Anisotropy: couplings along x get weight 1, along y (and z) get
  /// `anisotropy`. 1.0 = isotropic.
  Real anisotropy = 1.0;
  /// Seed for the value perturbation (patterns are deterministic).
  std::uint64_t seed = 42;
};

/// Finite-difference discretization of a 2D Poisson-like operator on an
/// nx-by-ny grid. `s2D9pt2048` in the paper is the 9-point variant.
CsrMatrix make_grid2d(Idx nx, Idx ny, Stencil2d stencil, const GridOptions& opt = {});

/// Finite-difference discretization of a 3D operator on an nx*ny*nz grid.
CsrMatrix make_grid3d(Idx nx, Idx ny, Idx nz, Stencil3d stencil, const GridOptions& opt = {});

/// Random geometric graph on `n` vertices: vertices are placed uniformly in
/// the unit square, and each vertex connects to roughly `avg_degree`
/// neighbours with probability decaying with distance, plus a fraction
/// `long_range` of uniformly random long-range edges. Long-range edges drive
/// LU fill toward the dense regime (Ga19As19H42-like matrices).
CsrMatrix make_random_geometric(Idx n, Real avg_degree, Real long_range,
                                std::uint64_t seed = 42);

/// Uniformly random structurally-symmetric sparse matrix with ~`avg_degree`
/// off-diagonal entries per row. Used by property-based tests.
CsrMatrix make_random_symmetric(Idx n, Real avg_degree, std::uint64_t seed);

/// Dense lower-bandwidth banded matrix (bandwidth `bw` each side); handy for
/// exercising supernode merging in tests.
CsrMatrix make_banded(Idx n, Idx bw, std::uint64_t seed = 42);

}  // namespace sptrsv
