#pragma once
/// \file paper_matrices.hpp
/// \brief Generators for the six Table-1 test matrices (substituted).
///
/// The paper evaluates on SuiteSparse matrices plus two private ones
/// (s1_mat_0_253872, s2D9pt2048). Offline, we generate synthetic stand-ins
/// that preserve each matrix's *role* in the evaluation — PDE dimensionality
/// (2D vs 3D fill growth), LU density class, and supernode-size profile —
/// which are the properties the paper's analysis keys on (see DESIGN.md §3).
/// Three size presets keep unit tests fast while letting benches run the
/// largest instances this machine can factorize.

#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace sptrsv {

/// Size presets for the paper-matrix generators.
enum class MatrixScale {
  kTiny,    ///< sub-second factorization; unit tests
  kSmall,   ///< seconds; integration tests and quick benches
  kMedium,  ///< tens of seconds; full figure benches
};

/// Identifiers mirroring Table 1 of the paper.
enum class PaperMatrix {
  kNlpkkt80,          ///< 3D-PDE-like optimization KKT system
  kGa19As19H42,       ///< quantum chemistry; ~9% dense LU
  kS1Mat0253872,      ///< fusion simulation; anisotropic 2D
  kS2D9pt2048,        ///< 2D 9-point Poisson
  kLdoor,             ///< structural; vector dofs, 2D-like
  kDielFilterV3real,  ///< Maxwell FEM; 3D, 2 dofs
};

/// All six matrices in Table-1 order.
std::vector<PaperMatrix> all_paper_matrices();

/// The paper's name for the matrix (Table 1).
std::string paper_matrix_name(PaperMatrix which);

/// One-line application-domain description (Table 1's Description column).
std::string paper_matrix_description(PaperMatrix which);

/// Generates the substituted matrix at the requested scale.
CsrMatrix make_paper_matrix(PaperMatrix which, MatrixScale scale);

}  // namespace sptrsv
