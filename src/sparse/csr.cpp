#include "sparse/csr.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sptrsv {

CsrMatrix::CsrMatrix(Idx rows, Idx cols) : rows_(rows), cols_(cols) {
  rowptr_.assign(static_cast<size_t>(rows) + 1, 0);
}

CsrMatrix CsrMatrix::from_coo(const CooMatrix& coo) {
  CsrMatrix m(coo.rows, coo.cols);
  const auto n = static_cast<size_t>(coo.rows);

  // Count entries per row, then bucket-place and finally merge duplicates.
  std::vector<Nnz> counts(n + 1, 0);
  for (const auto& t : coo.entries) {
    if (t.row < 0 || t.row >= coo.rows || t.col < 0 || t.col >= coo.cols) {
      throw std::out_of_range("CsrMatrix::from_coo: entry out of range");
    }
    ++counts[static_cast<size_t>(t.row) + 1];
  }
  std::partial_sum(counts.begin(), counts.end(), counts.begin());

  std::vector<Idx> cols(coo.entries.size());
  std::vector<Real> vals(coo.entries.size());
  {
    std::vector<Nnz> next(counts.begin(), counts.end() - 1);
    for (const auto& t : coo.entries) {
      const Nnz p = next[static_cast<size_t>(t.row)]++;
      cols[static_cast<size_t>(p)] = t.col;
      vals[static_cast<size_t>(p)] = t.val;
    }
  }

  // Sort each row by column and sum duplicates in place.
  m.rowptr_.assign(n + 1, 0);
  std::vector<Nnz> perm_buf;
  Nnz out = 0;
  std::vector<std::pair<Idx, Real>> row;
  for (size_t r = 0; r < n; ++r) {
    row.clear();
    for (Nnz p = counts[r]; p < counts[r + 1]; ++p) {
      row.emplace_back(cols[static_cast<size_t>(p)], vals[static_cast<size_t>(p)]);
    }
    std::sort(row.begin(), row.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (size_t i = 0; i < row.size();) {
      Idx c = row[i].first;
      Real v = 0;
      while (i < row.size() && row[i].first == c) v += row[i++].second;
      cols[static_cast<size_t>(out)] = c;
      vals[static_cast<size_t>(out)] = v;
      ++out;
    }
    m.rowptr_[r + 1] = out;
  }
  cols.resize(static_cast<size_t>(out));
  vals.resize(static_cast<size_t>(out));
  m.colidx_ = std::move(cols);
  m.values_ = std::move(vals);
  return m;
}

CsrMatrix CsrMatrix::from_raw(Idx rows, Idx cols, std::vector<Nnz> rowptr,
                              std::vector<Idx> colidx, std::vector<Real> values) {
  if (rowptr.size() != static_cast<size_t>(rows) + 1 || rowptr.front() != 0 ||
      rowptr.back() != static_cast<Nnz>(colidx.size()) ||
      colidx.size() != values.size()) {
    throw std::invalid_argument("CsrMatrix::from_raw: inconsistent arrays");
  }
  for (Idx r = 0; r < rows; ++r) {
    if (rowptr[r] > rowptr[r + 1]) {
      throw std::invalid_argument("CsrMatrix::from_raw: rowptr not monotone");
    }
    for (Nnz p = rowptr[r]; p < rowptr[r + 1]; ++p) {
      const Idx c = colidx[static_cast<size_t>(p)];
      if (c < 0 || c >= cols) throw std::out_of_range("CsrMatrix::from_raw: column");
      if (p > rowptr[r] && colidx[static_cast<size_t>(p - 1)] >= c) {
        throw std::invalid_argument("CsrMatrix::from_raw: columns not sorted/unique");
      }
    }
  }
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.rowptr_ = std::move(rowptr);
  m.colidx_ = std::move(colidx);
  m.values_ = std::move(values);
  return m;
}

Real CsrMatrix::at(Idx r, Idx c) const {
  const auto cs = row_cols(r);
  const auto it = std::lower_bound(cs.begin(), cs.end(), c);
  if (it == cs.end() || *it != c) return 0.0;
  return values_[static_cast<size_t>(rowptr_[r] + (it - cs.begin()))];
}

bool CsrMatrix::has_entry(Idx r, Idx c) const {
  const auto cs = row_cols(r);
  return std::binary_search(cs.begin(), cs.end(), c);
}

CsrMatrix CsrMatrix::transposed() const {
  CsrMatrix t(cols_, rows_);
  t.rowptr_.assign(static_cast<size_t>(cols_) + 1, 0);
  for (const Idx c : colidx_) ++t.rowptr_[static_cast<size_t>(c) + 1];
  std::partial_sum(t.rowptr_.begin(), t.rowptr_.end(), t.rowptr_.begin());
  t.colidx_.resize(colidx_.size());
  t.values_.resize(values_.size());
  std::vector<Nnz> next(t.rowptr_.begin(), t.rowptr_.end() - 1);
  for (Idx r = 0; r < rows_; ++r) {
    for (Nnz p = rowptr_[r]; p < rowptr_[r + 1]; ++p) {
      const Idx c = colidx_[static_cast<size_t>(p)];
      const Nnz q = next[static_cast<size_t>(c)]++;
      t.colidx_[static_cast<size_t>(q)] = r;
      t.values_[static_cast<size_t>(q)] = values_[static_cast<size_t>(p)];
    }
  }
  return t;
}

CsrMatrix CsrMatrix::symmetrized_pattern() const {
  const CsrMatrix t = transposed();
  CsrMatrix s(rows_, cols_);
  s.rowptr_.assign(static_cast<size_t>(rows_) + 1, 0);
  // Two-pass merge of each row of A and A^T.
  auto merge_row = [&](Idx r, auto&& emit) {
    const auto a = row_cols(r);
    const auto av = row_vals(r);
    const auto b = t.row_cols(r);
    size_t i = 0, j = 0;
    while (i < a.size() || j < b.size()) {
      if (j == b.size() || (i < a.size() && a[i] < b[j])) {
        emit(a[i], av[i]);
        ++i;
      } else if (i == a.size() || b[j] < a[i]) {
        emit(b[j], 0.0);  // structural zero added for symmetry
        ++j;
      } else {
        emit(a[i], av[i]);
        ++i;
        ++j;
      }
    }
  };
  for (Idx r = 0; r < rows_; ++r) {
    Nnz cnt = 0;
    merge_row(r, [&](Idx, Real) { ++cnt; });
    s.rowptr_[static_cast<size_t>(r) + 1] = s.rowptr_[static_cast<size_t>(r)] + cnt;
  }
  s.colidx_.resize(static_cast<size_t>(s.rowptr_.back()));
  s.values_.resize(static_cast<size_t>(s.rowptr_.back()));
  for (Idx r = 0; r < rows_; ++r) {
    Nnz p = s.rowptr_[static_cast<size_t>(r)];
    merge_row(r, [&](Idx c, Real v) {
      s.colidx_[static_cast<size_t>(p)] = c;
      s.values_[static_cast<size_t>(p)] = v;
      ++p;
    });
  }
  return s;
}

CsrMatrix CsrMatrix::permuted_symmetric(std::span<const Idx> perm) const {
  assert(rows_ == cols_);
  assert(perm.size() == static_cast<size_t>(rows_));
  const std::vector<Idx> inv = invert_permutation(perm);
  CooMatrix coo;
  coo.rows = rows_;
  coo.cols = cols_;
  coo.entries.reserve(static_cast<size_t>(nnz()));
  for (Idx newr = 0; newr < rows_; ++newr) {
    const Idx oldr = perm[static_cast<size_t>(newr)];
    const auto cs = row_cols(oldr);
    const auto vs = row_vals(oldr);
    for (size_t k = 0; k < cs.size(); ++k) {
      coo.add(newr, inv[static_cast<size_t>(cs[k])], vs[k]);
    }
  }
  return from_coo(coo);
}

bool CsrMatrix::has_symmetric_pattern() const {
  if (rows_ != cols_) return false;
  for (Idx r = 0; r < rows_; ++r) {
    for (const Idx c : row_cols(r)) {
      if (!has_entry(c, r)) return false;
    }
  }
  return true;
}

void CsrMatrix::matvec(std::span<const Real> x, std::span<Real> y) const {
  assert(x.size() == static_cast<size_t>(cols_));
  assert(y.size() == static_cast<size_t>(rows_));
  for (Idx r = 0; r < rows_; ++r) {
    Real acc = 0;
    for (Nnz p = rowptr_[r]; p < rowptr_[r + 1]; ++p) {
      acc += values_[static_cast<size_t>(p)] * x[static_cast<size_t>(colidx_[static_cast<size_t>(p)])];
    }
    y[static_cast<size_t>(r)] = acc;
  }
}

void CsrMatrix::matmul(std::span<const Real> x, std::span<Real> y, Idx nrhs) const {
  assert(x.size() == static_cast<size_t>(cols_) * static_cast<size_t>(nrhs));
  assert(y.size() == static_cast<size_t>(rows_) * static_cast<size_t>(nrhs));
  for (Idx j = 0; j < nrhs; ++j) {
    matvec(x.subspan(static_cast<size_t>(j) * static_cast<size_t>(cols_), static_cast<size_t>(cols_)),
           y.subspan(static_cast<size_t>(j) * static_cast<size_t>(rows_), static_cast<size_t>(rows_)));
  }
}

void CsrMatrix::make_diagonally_dominant(Real factor, Real shift) {
  for (Idx r = 0; r < rows_; ++r) {
    Real sum = 0;
    Nnz diag = -1;
    for (Nnz p = rowptr_[r]; p < rowptr_[r + 1]; ++p) {
      if (colidx_[static_cast<size_t>(p)] == r) {
        diag = p;
      } else {
        sum += std::abs(values_[static_cast<size_t>(p)]);
      }
    }
    if (diag < 0) throw std::logic_error("make_diagonally_dominant: missing diagonal");
    values_[static_cast<size_t>(diag)] = sum * factor + shift;
  }
}

bool CsrMatrix::has_full_diagonal() const {
  for (Idx r = 0; r < rows_; ++r) {
    if (!has_entry(r, r)) return false;
  }
  return true;
}

std::vector<Idx> invert_permutation(std::span<const Idx> perm) {
  std::vector<Idx> inv(perm.size(), kNoIdx);
  for (size_t i = 0; i < perm.size(); ++i) {
    inv[static_cast<size_t>(perm[i])] = static_cast<Idx>(i);
  }
  return inv;
}

bool is_permutation(std::span<const Idx> perm) {
  std::vector<bool> seen(perm.size(), false);
  for (const Idx p : perm) {
    if (p < 0 || static_cast<size_t>(p) >= perm.size() || seen[static_cast<size_t>(p)]) {
      return false;
    }
    seen[static_cast<size_t>(p)] = true;
  }
  return true;
}

}  // namespace sptrsv
