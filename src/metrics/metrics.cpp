#include "metrics/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace sptrsv {

namespace {

/// Shortest round-trippable double — %.17g reproduces the bits, so equal
/// doubles always print the same bytes (the report-determinism contract).
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// JSON string escaping for metric names (names are program identifiers,
/// but the exporter must not be the one place that trusts that).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Prometheus metric-name mangling: [a-zA-Z0-9_:] only.
std::string prom_name(const std::string& s) {
  std::string out = "sptrsv_";
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

MetricsRegistry::Counter MetricsRegistry::counter(const std::string& name) {
  auto it = names_.find(name);
  if (it == names_.end()) {
    counters_.push_back(std::make_unique<std::int64_t>(0));
    it = names_.emplace(name, Slot{Slot::Kind::kCounter, counters_.size() - 1})
             .first;
  }
  if (it->second.kind != Slot::Kind::kCounter) {
    throw std::logic_error("MetricsRegistry: '" + name +
                           "' already registered with another type");
  }
  return Counter{counters_[it->second.index].get()};
}

MetricsRegistry::Gauge MetricsRegistry::gauge(const std::string& name) {
  auto it = names_.find(name);
  if (it == names_.end()) {
    gauges_.push_back(std::make_unique<double>(0.0));
    it = names_.emplace(name, Slot{Slot::Kind::kGauge, gauges_.size() - 1}).first;
  }
  if (it->second.kind != Slot::Kind::kGauge) {
    throw std::logic_error("MetricsRegistry: '" + name +
                           "' already registered with another type");
  }
  return Gauge{gauges_[it->second.index].get()};
}

MetricsRegistry::Histogram MetricsRegistry::histogram(
    const std::string& name, std::span<const double> bounds) {
  auto it = names_.find(name);
  if (it == names_.end()) {
    auto h = std::make_unique<HistStorage>();
    h->bounds.assign(bounds.begin(), bounds.end());
    if (!std::is_sorted(h->bounds.begin(), h->bounds.end())) {
      throw std::invalid_argument("MetricsRegistry: histogram bounds for '" +
                                  name + "' must be ascending");
    }
    h->counts.assign(h->bounds.size() + 1, 0);
    hists_.push_back(std::move(h));
    it = names_.emplace(name, Slot{Slot::Kind::kHistogram, hists_.size() - 1})
             .first;
  }
  if (it->second.kind != Slot::Kind::kHistogram) {
    throw std::logic_error("MetricsRegistry: '" + name +
                           "' already registered with another type");
  }
  return Histogram{hists_[it->second.index].get()};
}

void MetricsRegistry::sample(double vt) {
  SeriesSample s;
  s.vt = vt;
  // Column order is the sorted name order of counters and gauges at sample
  // time; series_names() re-derives the same order, so columns line up.
  for (const auto& [name, slot] : names_) {
    if (slot.kind == Slot::Kind::kCounter) {
      s.values.push_back(static_cast<double>(*counters_[slot.index]));
    } else if (slot.kind == Slot::Kind::kGauge) {
      s.values.push_back(*gauges_[slot.index]);
    }
  }
  series_.push_back(std::move(s));
}

void MetricsRegistry::reset() {
  for (auto& c : counters_) *c = 0;
  for (auto& g : gauges_) *g = 0.0;
  for (auto& h : hists_) {
    std::fill(h->counts.begin(), h->counts.end(), 0);
    h->sum = 0.0;
    h->total = 0;
  }
  series_.clear();
}

std::map<std::string, double> MetricsRegistry::values() const {
  std::map<std::string, double> out;
  for (const auto& [name, slot] : names_) {
    if (slot.kind == Slot::Kind::kCounter) {
      out[name] = static_cast<double>(*counters_[slot.index]);
    } else if (slot.kind == Slot::Kind::kGauge) {
      out[name] = *gauges_[slot.index];
    }
  }
  return out;
}

std::map<std::string, MetricsRegistry::HistStorage> MetricsRegistry::histograms()
    const {
  std::map<std::string, HistStorage> out;
  for (const auto& [name, slot] : names_) {
    if (slot.kind == Slot::Kind::kHistogram) out[name] = *hists_[slot.index];
  }
  return out;
}

std::vector<std::string> MetricsRegistry::series_names() const {
  std::vector<std::string> out;
  for (const auto& [name, slot] : names_) {
    if (slot.kind != Slot::Kind::kHistogram) out.push_back(name);
  }
  return out;
}

double MetricsReport::value(int rank, const std::string& name) const {
  if (rank < 0 || rank >= static_cast<int>(ranks.size())) return 0.0;
  const auto& vals = ranks[static_cast<std::size_t>(rank)].values;
  const auto it = vals.find(name);
  return it == vals.end() ? 0.0 : it->second;
}

double MetricsReport::total(const std::string& name) const {
  double s = 0.0;
  for (int r = 0; r < static_cast<int>(ranks.size()); ++r) s += value(r, name);
  return s;
}

double MetricsReport::max(const std::string& name) const {
  double m = 0.0;
  for (int r = 0; r < static_cast<int>(ranks.size()); ++r) {
    m = std::max(m, value(r, name));
  }
  return m;
}

double MetricsReport::hist_sum_total(const std::string& name) const {
  double s = 0.0;
  for (const auto& r : ranks) {
    const auto it = r.histograms.find(name);
    if (it != r.histograms.end()) s += it->second.sum;
  }
  return s;
}

double MetricsReport::hist_sum_max(const std::string& name) const {
  double m = 0.0;
  for (const auto& r : ranks) {
    const auto it = r.histograms.find(name);
    if (it != r.histograms.end()) m = std::max(m, it->second.sum);
  }
  return m;
}

std::string MetricsReport::to_json() const {
  std::ostringstream os;
  os << "{\"schema\":\"" << kSchema << "\",\"metrics_period\":"
     << fmt_double(metrics_period) << ",\"ranks\":[";
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    const Rank& rk = ranks[r];
    if (r > 0) os << ",";
    os << "\n{\"rank\":" << r << ",\"values\":{";
    bool first = true;
    for (const auto& [name, v] : rk.values) {
      if (!first) os << ",";
      first = false;
      os << "\"" << json_escape(name) << "\":" << fmt_double(v);
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : rk.histograms) {
      if (!first) os << ",";
      first = false;
      os << "\"" << json_escape(name) << "\":{\"bounds\":[";
      for (std::size_t i = 0; i < h.bounds.size(); ++i) {
        if (i > 0) os << ",";
        os << fmt_double(h.bounds[i]);
      }
      os << "],\"counts\":[";
      for (std::size_t i = 0; i < h.counts.size(); ++i) {
        if (i > 0) os << ",";
        os << h.counts[i];
      }
      os << "],\"sum\":" << fmt_double(h.sum) << ",\"count\":" << h.total << "}";
    }
    os << "},\"series_names\":[";
    for (std::size_t i = 0; i < rk.series_names.size(); ++i) {
      if (i > 0) os << ",";
      os << "\"" << json_escape(rk.series_names[i]) << "\"";
    }
    os << "],\"series\":[";
    for (std::size_t i = 0; i < rk.series.size(); ++i) {
      if (i > 0) os << ",";
      os << "{\"vt\":" << fmt_double(rk.series[i].vt) << ",\"values\":[";
      for (std::size_t j = 0; j < rk.series[i].values.size(); ++j) {
        if (j > 0) os << ",";
        os << fmt_double(rk.series[i].values[j]);
      }
      os << "]}";
    }
    os << "]}";
  }
  os << "\n]}\n";
  return os.str();
}

std::string MetricsReport::to_prometheus() const {
  // One family per metric name: a TYPE line, then one sample per rank that
  // defines it. Families are name-sorted (union over ranks), so the export
  // is deterministic regardless of per-rank registration differences.
  std::map<std::string, const char*> families;  // name -> "counter"/"gauge"
  std::map<std::string, bool> hist_families;
  for (const auto& rk : ranks) {
    for (const auto& [name, v] : rk.values) {
      (void)v;
      families.emplace(name, "gauge");
    }
    for (const auto& [name, h] : rk.histograms) {
      (void)h;
      hist_families.emplace(name, true);
    }
  }
  std::ostringstream os;
  for (const auto& [name, type] : families) {
    const std::string pname = prom_name(name);
    os << "# TYPE " << pname << " " << type << "\n";
    for (std::size_t r = 0; r < ranks.size(); ++r) {
      const auto it = ranks[r].values.find(name);
      if (it == ranks[r].values.end()) continue;
      os << pname << "{rank=\"" << r << "\"} " << fmt_double(it->second) << "\n";
    }
  }
  for (const auto& [name, unused] : hist_families) {
    (void)unused;
    const std::string pname = prom_name(name);
    os << "# TYPE " << pname << " histogram\n";
    for (std::size_t r = 0; r < ranks.size(); ++r) {
      const auto it = ranks[r].histograms.find(name);
      if (it == ranks[r].histograms.end()) continue;
      const MetricsRegistry::HistStorage& h = it->second;
      std::int64_t cum = 0;
      for (std::size_t i = 0; i < h.bounds.size(); ++i) {
        cum += h.counts[i];
        os << pname << "_bucket{rank=\"" << r << "\",le=\""
           << fmt_double(h.bounds[i]) << "\"} " << cum << "\n";
      }
      cum += h.counts.back();
      os << pname << "_bucket{rank=\"" << r << "\",le=\"+Inf\"} " << cum << "\n";
      os << pname << "_sum{rank=\"" << r << "\"} " << fmt_double(h.sum) << "\n";
      os << pname << "_count{rank=\"" << r << "\"} " << h.total << "\n";
    }
  }
  return os.str();
}

}  // namespace sptrsv
