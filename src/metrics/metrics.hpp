#pragma once
/// \file metrics.hpp
/// \brief Always-cheap metrics: a per-rank registry of typed counters,
/// gauges and fixed-bucket histograms, virtual-time sampling into time
/// series, and exporters (docs/OBSERVABILITY.md §Metrics).
///
/// Design contract (mirrors the trace layer's):
///  - Zero allocation on the hot path. Registration (find-or-create by
///    name) may allocate; it happens once per (rank, name). A registered
///    handle is one pointer; bumping it is a null check plus an add.
///  - Null-safe handles. A default-constructed handle is a no-op, so
///    instrumented code needs no `if (metrics_enabled)` branches — with
///    metrics off every handle is null and the cost is one predictable
///    branch.
///  - Outside the clean ledger. Metric storage is written next to the
///    clean counters, never read by clock math: enabling metrics changes
///    no virtual time, fingerprint, message count or trace byte. Pinned by
///    tests/test_metrics.cpp.
///
/// The registry is strictly per-rank (one owner thread; the deterministic
/// scheduler's grant counter is the one cross-thread writer and is
/// serialized by the token handoff). Cluster::run_impl merges the per-rank
/// registries into an immutable MetricsReport after join.

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace sptrsv {

/// Per-rank metric store. Values live in stable storage (deques by
/// another name: chunked vectors that never move), so handles stay valid
/// for the registry's lifetime.
class MetricsRegistry {
 public:
  /// Monotone integer count (messages, retransmits, grants...).
  struct Counter {
    std::int64_t* v = nullptr;
    // const: a handle is a pointer; bumping mutates the registry, not it.
    void add(std::int64_t d = 1) const {
      if (v != nullptr) *v += d;
    }
  };

  /// Point-in-time double (clock skew, queue depth...).
  struct Gauge {
    double* v = nullptr;
    void set(double x) const {
      if (v != nullptr) *v = x;
    }
    void add(double x) const {
      if (v != nullptr) *v += x;
    }
  };

  /// Fixed-bucket histogram: counts[i] counts observations <= bounds[i],
  /// counts.back() is the overflow bucket, plus a running sum. Buckets are
  /// non-cumulative in storage; exporters cumulate for Prometheus.
  struct HistStorage {
    std::vector<double> bounds;        ///< ascending upper bounds
    std::vector<std::int64_t> counts;  ///< bounds.size() + 1 buckets
    double sum = 0.0;
    std::int64_t total = 0;
  };
  struct Histogram {
    HistStorage* h = nullptr;
    void observe(double x) const {
      if (h == nullptr) return;
      std::size_t i = 0;
      while (i < h->bounds.size() && x > h->bounds[i]) ++i;
      ++h->counts[i];
      h->sum += x;
      ++h->total;
    }
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-register. Names are dot-separated ("cluster.messages.fp");
  /// exporters sort by name, so registration order never matters.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  /// `bounds` must be ascending; re-registration with different bounds
  /// keeps the first definition (same-name handles share storage).
  Histogram histogram(const std::string& name, std::span<const double> bounds);

  /// Appends one time-series sample: the virtual timestamp plus the current
  /// value of every counter and gauge (histograms are exported final-only).
  void sample(double vt);

  /// Zeroes every value and drops the series (reset_clock mirror: metric
  /// mirrors of the clean counters restart with them). Definitions and
  /// handles survive.
  void reset();

  // --- read side (report building / tests) ---
  struct SeriesSample {
    double vt = 0.0;
    std::vector<double> values;  ///< parallel to series_names()
  };
  /// Counter+gauge values flattened to doubles, sorted by name.
  std::map<std::string, double> values() const;
  std::map<std::string, HistStorage> histograms() const;
  /// Names (sorted) of the columns of each SeriesSample captured so far.
  /// Metrics registered after the first sample() join later samples with
  /// the column set re-derived per sample; names are the union.
  std::vector<std::string> series_names() const;
  const std::vector<SeriesSample>& series() const { return series_; }

 private:
  struct Slot {
    enum class Kind { kCounter, kGauge, kHistogram } kind;
    std::size_t index = 0;  ///< into the kind's storage deque
  };
  std::map<std::string, Slot> names_;
  // Heap cells: element addresses survive vector growth, which is exactly
  // the handle-stability contract.
  std::vector<std::unique_ptr<std::int64_t>> counters_;
  std::vector<std::unique_ptr<double>> gauges_;
  std::vector<std::unique_ptr<HistStorage>> hists_;
  std::vector<SeriesSample> series_;
};

/// Immutable merged snapshot of every rank's registry at run end —
/// Cluster::Result::metrics. Schema-versioned: exporters stamp kSchema so
/// downstream tooling (bench_compare, dashboards) can reject a format it
/// does not understand.
struct MetricsReport {
  static constexpr const char* kSchema = "sptrsv-metrics/1";

  struct Rank {
    std::map<std::string, double> values;
    std::map<std::string, MetricsRegistry::HistStorage> histograms;
    std::vector<std::string> series_names;
    std::vector<MetricsRegistry::SeriesSample> series;
  };
  std::vector<Rank> ranks;
  double metrics_period = 0.0;  ///< RunOptions::metrics_period of the run

  /// Value of `name` at `rank` (0.0 when absent).
  double value(int rank, const std::string& name) const;
  /// Sum of `name` over every rank (absent ranks contribute 0).
  double total(const std::string& name) const;
  /// Max of `name` over every rank (0.0 when absent everywhere).
  double max(const std::string& name) const;
  /// Total histogram sum of `name` over ranks (0.0 when absent).
  double hist_sum_total(const std::string& name) const;
  /// Max per-rank histogram sum of `name` (0.0 when absent).
  double hist_sum_max(const std::string& name) const;

  /// Schema-versioned JSON document. Deterministic byte-for-byte for equal
  /// inputs: maps are name-sorted and doubles print with %.17g.
  std::string to_json() const;
  /// Prometheus text exposition format: names mangled ('.' -> '_',
  /// "sptrsv_" prefix), one sample per rank with a rank="N" label,
  /// histograms as cumulative _bucket/_sum/_count families.
  std::string to_prometheus() const;
};

}  // namespace sptrsv
