#include "dist/factor_dist.hpp"

#include <algorithm>
#include <stdexcept>

#include "factor/dense.hpp"

namespace sptrsv {

namespace {

// Per-step tags (steps are pipelined across ranks, so tags carry K).
int tag_diag_col(Idx k) { return 8 * static_cast<int>(k) + 0; }
int tag_diag_row(Idx k) { return 8 * static_cast<int>(k) + 1; }
int tag_lpanel(Idx k) { return 8 * static_cast<int>(k) + 2; }
int tag_upanel(Idx k) { return 8 * static_cast<int>(k) + 3; }

/// Sorted unique process rows (or columns) touched by a pattern.
std::vector<int> procs_of(std::span<const Idx> blocks, int modulus) {
  std::vector<int> out;
  for (const Idx b : blocks) out.push_back(static_cast<int>(b % modulus));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

SupernodalLU factor_supernodal_distributed(const CsrMatrix& a, SymbolicStructure sym0,
                                           Grid2dShape shape,
                                           const MachineModel& machine,
                                           DistFactorStats* stats) {
  SupernodalLU f = init_supernodal_storage(a, std::move(sym0));
  const SymbolicStructure& sym = f.sym;
  const auto& part = sym.part;
  const Idx nsup = sym.num_supernodes();

  const Cluster::Result res = Cluster::run(shape.size(), machine, [&](Comm& comm) {
    const int myrow = shape.row_of(comm.rank());
    const int mycol = shape.col_of(comm.rank());
    std::vector<Real> dk;       // this step's factored diagonal block
    std::vector<Real> lbuf, ubuf;  // received panel pieces

    for (Idx k = 0; k < nsup; ++k) {
      const int kr = shape.owner_row(k);
      const int kc = shape.owner_col(k);
      const Idx w = part.width(k);
      const Idx ld = sym.panel_rows[static_cast<size_t>(k)];
      const auto& below = sym.below[static_cast<size_t>(k)];
      const auto& boff = sym.below_offset[static_cast<size_t>(k)];
      const std::vector<int> rows_of = procs_of(below, shape.px);
      const std::vector<int> cols_of = procs_of(below, shape.py);
      const bool in_rows = std::binary_search(rows_of.begin(), rows_of.end(), myrow);
      const bool in_cols = std::binary_search(cols_of.begin(), cols_of.end(), mycol);
      const bool i_am_diag = (myrow == kr && mycol == kc);
      const bool have_l = (mycol == kc) && in_rows;  // I own L(:,K) blocks
      const bool have_u = (myrow == kr) && in_cols;  // I own U(K,:) blocks
      const bool have_schur = in_rows && in_cols;
      if (!i_am_diag && !have_l && !have_u && !have_schur) continue;

      // --- 1. Diagonal factorization and fan-out. ---
      if (i_am_diag) {
        auto& d = f.diag[static_cast<size_t>(k)];
        if (!lu_unpivoted_inplace(w, d)) {
          throw std::runtime_error("factor_supernodal_distributed: zero pivot in " +
                                   std::to_string(k));
        }
        auto& linv = f.diag_linv[static_cast<size_t>(k)];
        auto& uinv = f.diag_uinv[static_cast<size_t>(k)];
        linv.assign(static_cast<size_t>(w) * w, 0.0);
        uinv.assign(static_cast<size_t>(w) * w, 0.0);
        invert_unit_lower(w, d, linv);
        invert_upper(w, d, uinv);
        comm.compute(2.0 / 3.0 * w * w * w + 2.0 * w * w * w);
        dk = d;
        for (const int r : rows_of) {
          if (r == kr) continue;
          comm.send(shape.rank_of(r, kc), tag_diag_col(k), dk, TimeCategory::kXyComm);
        }
        for (const int c : cols_of) {
          if (c == kc) continue;
          comm.send(shape.rank_of(kr, c), tag_diag_row(k), dk, TimeCategory::kXyComm);
        }
      } else if (have_l) {
        dk = comm.recv(shape.rank_of(kr, kc), tag_diag_col(k), TimeCategory::kXyComm)
                 .data;
      } else if (have_u) {
        dk = comm.recv(shape.rank_of(kr, kc), tag_diag_row(k), TimeCategory::kXyComm)
                 .data;
      }

      // --- 2. L panel: L(I,K) = A(I,K) * inv(U_KK) for my block rows. ---
      std::vector<Real> my_l;  // my blocks packed (ascending I), for fan-out
      if (have_l) {
        std::vector<Real> blk;
        for (size_t bi = 0; bi < below.size(); ++bi) {
          const Idx i = below[bi];
          if (shape.owner_row(i) != myrow) continue;
          const Idx wi = part.width(i);
          blk.resize(static_cast<size_t>(wi) * w);
          Real* panel = f.lpanel[static_cast<size_t>(k)].data() + boff[bi];
          for (Idx col = 0; col < w; ++col) {  // gather (ld-strided block)
            std::copy_n(panel + static_cast<size_t>(col) * ld, wi,
                        blk.data() + static_cast<size_t>(col) * wi);
          }
          trsm_right_upper(wi, w, dk, blk);
          comm.compute(static_cast<double>(wi) * w * w);
          for (Idx col = 0; col < w; ++col) {  // scatter back
            std::copy_n(blk.data() + static_cast<size_t>(col) * wi, wi,
                        panel + static_cast<size_t>(col) * ld);
          }
          my_l.insert(my_l.end(), blk.begin(), blk.end());
        }
        for (const int c : cols_of) {
          if (c == mycol) continue;
          comm.send(shape.rank_of(myrow, c), tag_lpanel(k), my_l,
                    TimeCategory::kXyComm);
        }
      }

      // --- 3. U panel: U(K,J) = inv(L_KK) * A(K,J) for my block columns. ---
      std::vector<Real> my_u;
      if (have_u) {
        for (size_t bj = 0; bj < below.size(); ++bj) {
          const Idx j = below[bj];
          if (shape.owner_col(j) != mycol) continue;
          const Idx wj = part.width(j);
          Real* blk = f.upanel[static_cast<size_t>(k)].data() +
                      static_cast<size_t>(boff[bj]) * w;  // contiguous w x wj
          trsm_left_unit_lower(w, wj, dk, {blk, static_cast<size_t>(w) * wj});
          comm.compute(static_cast<double>(w) * w * wj);
          my_u.insert(my_u.end(), blk, blk + static_cast<size_t>(w) * wj);
        }
        for (const int r : rows_of) {
          if (r == myrow) continue;
          comm.send(shape.rank_of(r, mycol), tag_upanel(k), my_u,
                    TimeCategory::kXyComm);
        }
      }

      // --- 4. Schur updates to my blocks. ---
      if (!have_schur) continue;
      std::span<const Real> lsrc;
      if (have_l) {
        lsrc = my_l;
      } else {
        lbuf = comm.recv(shape.rank_of(myrow, kc), tag_lpanel(k), TimeCategory::kXyComm)
                   .data;
        lsrc = lbuf;
      }
      std::span<const Real> usrc;
      if (have_u) {
        usrc = my_u;
      } else {
        ubuf = comm.recv(shape.rank_of(kr, mycol), tag_upanel(k), TimeCategory::kXyComm)
                   .data;
        usrc = ubuf;
      }
      size_t loff = 0;
      for (size_t bi = 0; bi < below.size(); ++bi) {
        const Idx i = below[bi];
        if (shape.owner_row(i) != myrow) continue;
        const Idx wi = part.width(i);
        const std::span<const Real> lik = lsrc.subspan(loff, static_cast<size_t>(wi) * w);
        loff += static_cast<size_t>(wi) * w;
        size_t uoff = 0;
        for (size_t bj = 0; bj < below.size(); ++bj) {
          const Idx j = below[bj];
          if (shape.owner_col(j) != mycol) continue;
          const Idx wj = part.width(j);
          const std::span<const Real> ukj = usrc.subspan(uoff, static_cast<size_t>(w) * wj);
          uoff += static_cast<size_t>(w) * wj;
          // Target block (I,J): diagonal, L panel of J, or U panel of I —
          // always owned by this rank under the cyclic map.
          if (i == j) {
            gemm_minus_ld(wi, w, wj, lik, wi, ukj, w, f.diag[static_cast<size_t>(i)],
                          wi);
          } else if (i > j) {
            const Idx pos = sym.find_block(j, i);
            const Idx rj = sym.panel_rows[static_cast<size_t>(j)];
            const Idx off = sym.below_offset[static_cast<size_t>(j)][static_cast<size_t>(pos)];
            gemm_minus_ld(wi, w, wj, lik, wi, ukj, w,
                          std::span<Real>(f.lpanel[static_cast<size_t>(j)]).subspan(
                              static_cast<size_t>(off)),
                          rj);
          } else {
            const Idx pos = sym.find_block(i, j);
            const Idx off = sym.below_offset[static_cast<size_t>(i)][static_cast<size_t>(pos)];
            gemm_minus_ld(wi, w, wj, lik, wi, ukj, w,
                          std::span<Real>(f.upanel[static_cast<size_t>(i)])
                              .subspan(static_cast<size_t>(off) * wi),
                          wi);
          }
          comm.compute(2.0 * wi * w * wj);
        }
      }
    }
  });

  if (stats != nullptr) {
    stats->makespan = res.makespan();
    stats->mean_fp = res.mean_category(TimeCategory::kFp);
    stats->mean_comm = res.mean_category(TimeCategory::kXyComm);
    stats->total_messages = 0;
    stats->total_bytes = 0;
    for (const auto& r : res.ranks) {
      stats->total_messages += r.messages[static_cast<int>(TimeCategory::kXyComm)];
      stats->total_bytes += r.bytes[static_cast<int>(TimeCategory::kXyComm)];
    }
  }
  return f;
}

}  // namespace sptrsv
