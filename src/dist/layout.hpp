#pragma once
/// \file layout.hpp
/// \brief 2D block-cyclic process layout and the 3D grid geometry.
///
/// Supernodal block (I,J) lives on process (I mod Px, J mod Py) of a 2D
/// grid — SuperLU_DIST's layout, which the paper builds on. Crucially the
/// cyclic map uses *global* supernode ids, so a replicated ancestor
/// supernode maps to the same (x,y) process position in every 2D grid that
/// shares it; the sparse allreduce (Algorithm 2) relies on that alignment.

#include "sparse/types.hpp"

namespace sptrsv {

/// Shape of one 2D process grid.
struct Grid2dShape {
  int px = 1;  ///< process rows
  int py = 1;  ///< process columns

  int size() const { return px * py; }
  /// Grid rank of process (row r, column c); row-major.
  int rank_of(int r, int c) const { return r * py + c; }
  int row_of(int rank) const { return rank / py; }
  int col_of(int rank) const { return rank % py; }

  /// Process row owning block-row I.
  int owner_row(Idx i) const { return static_cast<int>(i % px); }
  /// Process column owning block-column J.
  int owner_col(Idx j) const { return static_cast<int>(j % py); }
  /// Grid rank owning block (I,J).
  int owner(Idx i, Idx j) const { return rank_of(owner_row(i), owner_col(j)); }
  /// Grid rank owning the diagonal block (and solution subvector) of K.
  int diag_owner(Idx k) const { return owner(k, k); }
};

/// Shape of the full 3D layout (paper Fig 1).
struct Grid3dShape {
  int px = 1;
  int py = 1;
  int pz = 1;

  int size() const { return px * py * pz; }
  Grid2dShape grid2d() const { return {px, py}; }

  /// World-rank decomposition: consecutive px*py ranks form one 2D grid.
  int z_of(int world_rank) const { return world_rank / (px * py); }
  int grid_rank_of(int world_rank) const { return world_rank % (px * py); }
  int world_rank(int z, int grid_rank) const { return z * px * py + grid_rank; }
};

}  // namespace sptrsv
