#pragma once
/// \file tree_view.hpp
/// \brief Zero-allocation view of a broadcast/reduction tree stored as a
/// member list.
///
/// Solve plans store one member list per supernode and tree family; every
/// rank of the grid derives its own parent/children from the shared list,
/// so trees occupy O(total members) memory instead of O(members) per rank.
/// Layout: members[0] is the root, members[1..] are the remaining ranks in
/// ascending order; the binary tree is the heap over positions (children of
/// position p are 2p+1 and 2p+2), the flat tree parents everyone to root.

#include <algorithm>
#include <span>

#include "comm/trees.hpp"
#include "sparse/types.hpp"

namespace sptrsv {

class TreeView {
 public:
  TreeView(std::span<const int> members, TreeKind kind)
      : members_(members), kind_(kind) {}

  int size() const { return static_cast<int>(members_.size()); }
  bool empty() const { return members_.empty(); }
  int root() const { return members_.front(); }

  /// Position of `rank` in the member list, or -1 if absent.
  int pos_of(int rank) const {
    if (members_.empty()) return -1;
    if (members_[0] == rank) return 0;
    const auto tail = members_.subspan(1);
    const auto it = std::lower_bound(tail.begin(), tail.end(), rank);
    if (it == tail.end() || *it != rank) return -1;
    return static_cast<int>(it - tail.begin()) + 1;
  }

  bool contains(int rank) const { return pos_of(rank) >= 0; }

  /// Parent rank of `rank` (kNoIdx for the root). `rank` must be a member.
  int parent_of(int rank) const {
    const int p = pos_of(rank);
    if (p <= 0) return kNoIdx;
    if (kind_ == TreeKind::kFlat) return members_[0];
    return members_[static_cast<size_t>((p - 1) / 2)];
  }

  /// Hop count from the root down to `rank` (0 for the root). `rank` must
  /// be a member. Used to label trace annotation spans with tree depth.
  int depth_of(int rank) const {
    int p = pos_of(rank);
    if (p <= 0) return 0;
    if (kind_ == TreeKind::kFlat) return 1;
    int hops = 0;
    for (; p != 0; p = (p - 1) / 2) ++hops;
    return hops;
  }

  /// Number of children of `rank`.
  int num_children(int rank) const {
    int n = 0;
    for_each_child(rank, [&](int) { ++n; });
    return n;
  }

  /// Invokes `fn(child_rank)` for each child of `rank`.
  template <class Fn>
  void for_each_child(int rank, Fn&& fn) const {
    const int p = pos_of(rank);
    if (p < 0) return;
    const int n = size();
    if (kind_ == TreeKind::kFlat) {
      if (p == 0) {
        for (int i = 1; i < n; ++i) fn(members_[static_cast<size_t>(i)]);
      }
      return;
    }
    for (int c = 2 * p + 1; c <= 2 * p + 2 && c < n; ++c) {
      fn(members_[static_cast<size_t>(c)]);
    }
  }

 private:
  std::span<const int> members_;
  TreeKind kind_;
};

}  // namespace sptrsv
