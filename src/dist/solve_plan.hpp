#pragma once
/// \file solve_plan.hpp
/// \brief Precomputed structure for one distributed 2D triangular solve.
///
/// A plan fixes the scope of a 2D solve on one grid: the set `cols` of
/// supernodes whose diagonal is solved (the paper's per-node submatrix for
/// the baseline algorithm, or the whole L^z/U^z of Fig 1(c) for the
/// proposed algorithm) and the set `rows` of supernodes whose partial sums
/// are tracked (cols plus replicated ancestors). From the global symbolic
/// structure it derives, per supernode, the four communication-tree member
/// lists of §3.3 (L broadcast/reduction, U broadcast/reduction). Plans are
/// built once per grid and shared read-only by the grid's ranks — exactly
/// the setup precomputation the paper performs on the CPU before the solve.

#include <vector>

#include "dist/layout.hpp"
#include "dist/tree_view.hpp"
#include "factor/supernodal_lu.hpp"
#include "ordering/nested_dissection.hpp"

namespace sptrsv {

class Solve2dPlan {
 public:
  /// Builds a plan. `cols` must be sorted ascending; `rows` must be sorted
  /// ascending and contain every block row of every column's (filtered)
  /// pattern that the solve should track. Rows of `cols` are implicitly
  /// tracked and need not be listed separately.
  static Solve2dPlan build(const SupernodalLU& lu, Grid2dShape shape, TreeKind kind,
                           std::vector<Idx> cols, std::vector<Idx> extra_rows);

  const SupernodalLU& lu() const { return *lu_; }
  const Grid2dShape& shape() const { return shape_; }
  TreeKind kind() const { return kind_; }

  /// Supernodes solved here, ascending.
  std::span<const Idx> cols() const { return cols_; }
  /// All tracked rows (cols plus external targets), ascending.
  std::span<const Idx> rows() const { return rows_; }
  /// Rows that are tracked but not solved (partial sums handed back).
  std::span<const Idx> external_rows() const { return external_rows_; }

  Idx num_cols() const { return static_cast<Idx>(cols_.size()); }
  Idx num_rows() const { return static_cast<Idx>(rows_.size()); }

  /// Position of supernode in cols()/rows(); kNoIdx if absent.
  Idx col_pos(Idx k) const;
  Idx row_pos(Idx i) const;

  /// Below-pattern of column `cp` (position into cols), filtered to rows().
  std::span<const Idx> below(Idx cp) const { return below_[static_cast<size_t>(cp)]; }
  /// For each entry of below(cp): its index into lu.sym.below[K] (for
  /// locating the block inside the global panels).
  std::span<const Idx> below_index(Idx cp) const {
    return below_index_[static_cast<size_t>(cp)];
  }

  /// Columns K in cols() whose pattern contains row `rp` (position into
  /// rows()), ascending; aligned `pattern_index` gives the entry's index in
  /// lu.sym.below[K].
  std::span<const Idx> row_pattern(Idx rp) const {
    return row_pattern_[static_cast<size_t>(rp)];
  }
  std::span<const Idx> row_pattern_index(Idx rp) const {
    return row_pattern_index_[static_cast<size_t>(rp)];
  }

  // Communication trees (paper §3.3). All lists have the root first and the
  // remaining member ranks ascending (see TreeView).
  TreeView l_bcast(Idx cp) const { return {l_bcast_[static_cast<size_t>(cp)], kind_}; }
  TreeView u_reduce(Idx cp) const { return {u_reduce_[static_cast<size_t>(cp)], kind_}; }
  TreeView l_reduce(Idx rp) const { return {l_reduce_[static_cast<size_t>(rp)], kind_}; }
  TreeView u_bcast(Idx rp) const { return {u_bcast_[static_cast<size_t>(rp)], kind_}; }

  /// Flop count of one GEMV/GEMM with block (I,K) of width-of-I rows.
  double block_flops(Idx i, Idx k, Idx nrhs) const {
    return 2.0 * lu_->sym.part.width(i) * lu_->sym.part.width(k) * nrhs;
  }
  /// Flop count of applying a diagonal inverse of K.
  double diag_flops(Idx k, Idx nrhs) const {
    const double w = lu_->sym.part.width(k);
    return 2.0 * w * w * nrhs;
  }

 private:
  const SupernodalLU* lu_ = nullptr;
  Grid2dShape shape_;
  TreeKind kind_ = TreeKind::kBinary;
  std::vector<Idx> cols_;
  std::vector<Idx> rows_;
  std::vector<Idx> external_rows_;
  std::vector<std::vector<Idx>> below_;
  std::vector<std::vector<Idx>> below_index_;
  std::vector<std::vector<Idx>> row_pattern_;
  std::vector<std::vector<Idx>> row_pattern_index_;
  std::vector<std::vector<int>> l_bcast_;
  std::vector<std::vector<int>> l_reduce_;
  std::vector<std::vector<int>> u_bcast_;
  std::vector<std::vector<int>> u_reduce_;
};

/// Supernode id range [first, last) of a tracked tree node's columns.
/// Requires the supernode partition to respect node boundaries (which
/// `analyze_and_factor` guarantees via forced breaks).
std::pair<Idx, Idx> node_supernode_range(const SymbolicStructure& sym, const NdTree& tree,
                                         Idx node);

/// All supernodes of the given tree nodes, ascending.
std::vector<Idx> supernodes_of_nodes(const SymbolicStructure& sym, const NdTree& tree,
                                     std::span<const Idx> nodes);

/// Plan for the proposed algorithm's whole-grid solve on leaf z: cols =
/// rows = supernodes of the leaf and all its ancestors (Fig 1(c)).
Solve2dPlan make_grid_plan(const SupernodalLU& lu, const NdTree& tree, Idx leaf,
                           Grid2dShape shape, TreeKind kind);

/// Plan for one node of the baseline algorithm: cols = the node's
/// supernodes, external rows = all its ancestors' supernodes.
Solve2dPlan make_node_plan(const SupernodalLU& lu, const NdTree& tree, Idx node,
                           Grid2dShape shape, TreeKind kind);

}  // namespace sptrsv
