#pragma once
/// \file factor_dist.hpp
/// \brief Distributed-memory supernodal LU factorization on a 2D
/// block-cyclic grid (SuperLU_DIST-style right-looking fan-out).
///
/// The paper consumes LU factors produced by SuperLU_DIST's distributed
/// factorization; this module reproduces that substrate on the library's
/// runtime. Each step K: the diagonal owner factors D_K and fans it out to
/// K's panel owners; column-K owners form L(:,K), row-K owners form
/// U(K,:); panels are forwarded along process rows/columns; every rank
/// applies the Schur updates to the blocks it owns. Ownership follows
/// layout.hpp's cyclic map, so update targets are always rank-local.
///
/// Numerically the result matches the sequential `factor_supernodal`
/// (same update order per block), which the tests assert.

#include "dist/layout.hpp"
#include "factor/supernodal_lu.hpp"
#include "runtime/cluster.hpp"

namespace sptrsv {

/// Communication/time statistics of a distributed factorization.
struct DistFactorStats {
  double makespan = 0;          ///< modeled factorization time (max over ranks)
  double mean_fp = 0;           ///< rank-mean kernel time
  double mean_comm = 0;         ///< rank-mean communication time
  std::int64_t total_messages = 0;
  std::int64_t total_bytes = 0;
};

/// Factorizes `a` (symmetric pattern, full diagonal) under the symbolic
/// structure `sym` on a modeled `shape.px x shape.py` process grid of
/// `machine`. Returns the factors; `stats`, if non-null, receives the
/// modeled cost. Throws on zero pivots like the sequential factorization.
SupernodalLU factor_supernodal_distributed(const CsrMatrix& a, SymbolicStructure sym,
                                           Grid2dShape shape,
                                           const MachineModel& machine,
                                           DistFactorStats* stats = nullptr);

}  // namespace sptrsv
