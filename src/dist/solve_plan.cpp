#include "dist/solve_plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace sptrsv {

namespace {

/// Builds a member list: root first, remaining members ascending, deduped.
std::vector<int> make_members(int root, std::vector<int> others) {
  std::sort(others.begin(), others.end());
  others.erase(std::unique(others.begin(), others.end()), others.end());
  std::vector<int> out{root};
  for (const int r : others) {
    if (r != root) out.push_back(r);
  }
  return out;
}

Idx find_pos(std::span<const Idx> sorted, Idx v) {
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), v);
  if (it == sorted.end() || *it != v) return kNoIdx;
  return static_cast<Idx>(it - sorted.begin());
}

}  // namespace

Idx Solve2dPlan::col_pos(Idx k) const { return find_pos(cols_, k); }
Idx Solve2dPlan::row_pos(Idx i) const { return find_pos(rows_, i); }

Solve2dPlan Solve2dPlan::build(const SupernodalLU& lu, Grid2dShape shape, TreeKind kind,
                               std::vector<Idx> cols, std::vector<Idx> extra_rows) {
  if (!std::is_sorted(cols.begin(), cols.end()) ||
      std::adjacent_find(cols.begin(), cols.end()) != cols.end()) {
    throw std::invalid_argument("Solve2dPlan: cols must be sorted unique");
  }
  Solve2dPlan p;
  p.lu_ = &lu;
  p.shape_ = shape;
  p.kind_ = kind;
  p.cols_ = std::move(cols);

  // rows = cols ∪ extra_rows (sorted unique).
  p.rows_ = p.cols_;
  p.rows_.insert(p.rows_.end(), extra_rows.begin(), extra_rows.end());
  std::sort(p.rows_.begin(), p.rows_.end());
  p.rows_.erase(std::unique(p.rows_.begin(), p.rows_.end()), p.rows_.end());
  for (const Idx r : p.rows_) {
    if (find_pos(p.cols_, r) == kNoIdx) p.external_rows_.push_back(r);
  }

  const Idx nc = p.num_cols();
  const Idx nr = p.num_rows();
  p.below_.resize(static_cast<size_t>(nc));
  p.below_index_.resize(static_cast<size_t>(nc));
  p.row_pattern_.resize(static_cast<size_t>(nr));
  p.row_pattern_index_.resize(static_cast<size_t>(nr));

  // Filter each column's pattern to the tracked rows; record row patterns.
  for (Idx cp = 0; cp < nc; ++cp) {
    const Idx k = p.cols_[static_cast<size_t>(cp)];
    const auto& full = lu.sym.below[static_cast<size_t>(k)];
    for (size_t bi = 0; bi < full.size(); ++bi) {
      const Idx i = full[bi];
      const Idx rp = find_pos(p.rows_, i);
      if (rp == kNoIdx) continue;  // outside this solve's scope
      p.below_[static_cast<size_t>(cp)].push_back(i);
      p.below_index_[static_cast<size_t>(cp)].push_back(static_cast<Idx>(bi));
      p.row_pattern_[static_cast<size_t>(rp)].push_back(k);
      p.row_pattern_index_[static_cast<size_t>(rp)].push_back(static_cast<Idx>(bi));
    }
  }

  // Communication trees. Roots are the diagonal owners; members are the
  // grid ranks holding blocks of the column (L broadcast / U reduction) or
  // of the row (L reduction / U broadcast).
  p.l_bcast_.resize(static_cast<size_t>(nc));
  p.u_reduce_.resize(static_cast<size_t>(nc));
  p.l_reduce_.resize(static_cast<size_t>(nr));
  p.u_bcast_.resize(static_cast<size_t>(nr));
  for (Idx cp = 0; cp < nc; ++cp) {
    const Idx k = p.cols_[static_cast<size_t>(cp)];
    std::vector<int> bcast, ureduce;
    for (const Idx i : p.below_[static_cast<size_t>(cp)]) {
      bcast.push_back(shape.rank_of(shape.owner_row(i), shape.owner_col(k)));
      ureduce.push_back(shape.rank_of(shape.owner_row(k), shape.owner_col(i)));
    }
    p.l_bcast_[static_cast<size_t>(cp)] =
        make_members(shape.diag_owner(k), std::move(bcast));
    p.u_reduce_[static_cast<size_t>(cp)] =
        make_members(shape.diag_owner(k), std::move(ureduce));
  }
  for (Idx rp = 0; rp < nr; ++rp) {
    const Idx i = p.rows_[static_cast<size_t>(rp)];
    std::vector<int> lreduce, ubcast;
    for (const Idx k : p.row_pattern_[static_cast<size_t>(rp)]) {
      lreduce.push_back(shape.rank_of(shape.owner_row(i), shape.owner_col(k)));
      ubcast.push_back(shape.rank_of(shape.owner_row(k), shape.owner_col(i)));
    }
    p.l_reduce_[static_cast<size_t>(rp)] =
        make_members(shape.diag_owner(i), std::move(lreduce));
    p.u_bcast_[static_cast<size_t>(rp)] =
        make_members(shape.diag_owner(i), std::move(ubcast));
  }
  return p;
}

std::pair<Idx, Idx> node_supernode_range(const SymbolicStructure& sym, const NdTree& tree,
                                         Idx node) {
  const auto& nd = tree.node(node);
  if (nd.col_begin == nd.col_end) return {0, 0};  // empty node
  const Idx first = sym.part.col_to_sn[static_cast<size_t>(nd.col_begin)];
  const Idx last = sym.part.col_to_sn[static_cast<size_t>(nd.col_end - 1)] + 1;
  // Forced breaks at node boundaries guarantee clean alignment.
  if (sym.part.first_col(first) != nd.col_begin ||
      sym.part.first_col(last - 1) + sym.part.width(last - 1) != nd.col_end) {
    throw std::logic_error("node_supernode_range: supernodes straddle node boundary");
  }
  return {first, last};
}

std::vector<Idx> supernodes_of_nodes(const SymbolicStructure& sym, const NdTree& tree,
                                     std::span<const Idx> nodes) {
  std::vector<Idx> out;
  for (const Idx node : nodes) {
    const auto [lo, hi] = node_supernode_range(sym, tree, node);
    for (Idx k = lo; k < hi; ++k) out.push_back(k);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Solve2dPlan make_grid_plan(const SupernodalLU& lu, const NdTree& tree, Idx leaf,
                           Grid2dShape shape, TreeKind kind) {
  const auto path = tree.path_to_root(tree.leaf_node_id(leaf));
  std::vector<Idx> snodes = supernodes_of_nodes(lu.sym, tree, path);
  return Solve2dPlan::build(lu, shape, kind, std::move(snodes), {});
}

Solve2dPlan make_node_plan(const SupernodalLU& lu, const NdTree& tree, Idx node,
                           Grid2dShape shape, TreeKind kind) {
  std::vector<Idx> own{node};
  std::vector<Idx> ancestors;
  for (Idx v = tree.node(node).parent; v != kNoIdx; v = tree.node(v).parent) {
    ancestors.push_back(v);
  }
  return Solve2dPlan::build(lu, shape, kind, supernodes_of_nodes(lu.sym, tree, own),
                            supernodes_of_nodes(lu.sym, tree, ancestors));
}

}  // namespace sptrsv
