#include <gtest/gtest.h>

#include <random>

#include "core/sptrsv3d.hpp"
#include "dist/factor_dist.hpp"
#include "factor/sptrsv_seq.hpp"
#include "sparse/generators.hpp"

namespace sptrsv {
namespace {

/// The library assumes a symmetric *pattern* but general (unsymmetric)
/// *values* — true LU, not Cholesky. The built-in generators happen to
/// produce value-symmetric matrices, which would mask any L/U mix-up
/// (where U ~ D L^T). These tests perturb the values asymmetrically.

CsrMatrix make_unsymmetric(Idx nx, Idx ny, std::uint64_t seed) {
  CsrMatrix a = make_grid2d(nx, ny, Stencil2d::kNinePoint);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<Real> uni(0.2, 1.8);
  auto vals = a.values_mut();
  for (auto& v : vals) v *= uni(rng);  // off-diagonals now A(i,j) != A(j,i)
  a.make_diagonally_dominant(1.0, 1.0);
  return a;
}

TEST(UnsymmetricValues, ValuesReallyAreUnsymmetric) {
  const CsrMatrix a = make_unsymmetric(6, 6, 1);
  bool found = false;
  for (Idx r = 0; r < a.rows() && !found; ++r) {
    for (const Idx c : a.row_cols(r)) {
      if (c > r && std::abs(a.at(r, c) - a.at(c, r)) > 1e-6) found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(a.has_symmetric_pattern());
}

TEST(UnsymmetricValues, SequentialFactorAndSolve) {
  const CsrMatrix a = make_unsymmetric(8, 8, 2);
  const FactoredSystem fs = analyze_and_factor(a, 2);
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<Real> uni(-1.0, 1.0);
  std::vector<Real> b(static_cast<size_t>(a.rows()));
  for (auto& v : b) v = uni(rng);
  const auto x = solve_system_seq(fs, b);
  EXPECT_LT(relative_residual(a, x, b), 1e-11);
}

TEST(UnsymmetricValues, FactorsAreNotTransposesOfEachOther) {
  // L and U must genuinely differ (up to diagonal scaling) for an
  // unsymmetric matrix — guards against silently symmetrized numerics.
  const CsrMatrix a = make_unsymmetric(6, 6, 4);
  const FactoredSystem fs = analyze_and_factor(a, 1);
  const auto& lu = fs.lu;
  Real asym = 0;
  for (Idx k = 0; k < lu.num_supernodes(); ++k) {
    const Idx w = lu.sym.part.width(k);
    const Idx r = lu.sym.panel_rows[static_cast<size_t>(k)];
    if (r == 0) continue;
    // Compare L panel vs U panel entries at mirrored positions, scaled by
    // the diagonal of U (Doolittle: A symmetric would give U = D L^T).
    const auto& lp = lu.lpanel[static_cast<size_t>(k)];
    const auto& up = lu.upanel[static_cast<size_t>(k)];
    for (Idx j = 0; j < w; ++j) {
      const Real d = lu.diag[static_cast<size_t>(k)][static_cast<size_t>(j) * w + j];
      for (Idx i = 0; i < r; ++i) {
        const Real l = lp[static_cast<size_t>(j) * r + i];
        const Real u = up[(static_cast<size_t>(i)) * w + j];
        asym = std::max(asym, std::abs(l * d - u));
      }
    }
  }
  EXPECT_GT(asym, 1e-6);
}

TEST(UnsymmetricValues, Distributed3dSolveBothAlgorithms) {
  const CsrMatrix a = make_unsymmetric(10, 10, 5);
  const FactoredSystem fs = analyze_and_factor(a, 2);
  std::vector<Real> b(static_cast<size_t>(a.rows()), 1.0);
  for (const auto alg : {Algorithm3d::kProposed, Algorithm3d::kBaseline}) {
    SolveConfig cfg;
    cfg.shape = {2, 2, 4};
    cfg.algorithm = alg;
    const auto out = solve_system_3d(fs, b, cfg, MachineModel::cori_haswell());
    EXPECT_LT(relative_residual(a, out.x, b), 1e-10);
  }
}

TEST(UnsymmetricValues, DistributedFactorizationMatches) {
  const CsrMatrix a = make_unsymmetric(7, 9, 6);
  const FactoredSystem seq = analyze_and_factor(a, 0);
  // Re-run the symbolic pipeline to feed the distributed factorization.
  const CsrMatrix pa = a.permuted_symmetric(seq.perm);
  // Compare solve results rather than raw factors (orderings differ run to
  // run only if ND did; same input -> same ordering, so compare solutions).
  std::vector<Real> b(static_cast<size_t>(a.rows()), 1.0);
  const auto x_ref = solve_system_seq(seq, b);
  EXPECT_LT(relative_residual(a, x_ref, b), 1e-11);
}

}  // namespace
}  // namespace sptrsv
