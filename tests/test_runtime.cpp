#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "runtime/cluster.hpp"
#include "test_support.hpp"

namespace sptrsv {
namespace {

using test::test_machine;

TEST(Runtime, PingPong) {
  const auto res = Cluster::run(2, test_machine(), [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, /*tag=*/7, {1.0, 2.0, 3.0});
      const Message m = c.recv(1, 8);
      EXPECT_EQ(m.src, 1);
      ASSERT_EQ(m.data.size(), 1u);
      EXPECT_DOUBLE_EQ(m.data[0], 6.0);
    } else {
      const Message m = c.recv(0, 7);
      EXPECT_EQ(m.src, 0);
      ASSERT_EQ(m.data.size(), 3u);
      c.send(0, 8, {m.data[0] + m.data[1] + m.data[2]});
    }
  });
  EXPECT_EQ(res.ranks.size(), 2u);
  EXPECT_GT(res.makespan(), 0.0);
}

TEST(Runtime, AnySourceReceivesAll) {
  const int P = 8;
  Cluster::run(P, test_machine(), [](Comm& c) {
    if (c.rank() == 0) {
      double sum = 0;
      for (int i = 1; i < c.size(); ++i) {
        const Message m = c.recv(kAnySource, kAnyTag);
        sum += m.data.at(0);
      }
      EXPECT_DOUBLE_EQ(sum, 1.0 + 2 + 3 + 4 + 5 + 6 + 7);
    } else {
      c.send(0, c.rank(), {static_cast<Real>(c.rank())});
    }
  });
}

TEST(Runtime, TagFilteringHoldsBackOtherTags) {
  Cluster::run(2, test_machine(), [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, /*tag=*/1, {1.0});
      c.send(1, /*tag=*/2, {2.0});
    } else {
      // Receive tag 2 first even though tag 1 arrived first.
      const Message m2 = c.recv(0, 2);
      EXPECT_DOUBLE_EQ(m2.data.at(0), 2.0);
      const Message m1 = c.recv(0, 1);
      EXPECT_DOUBLE_EQ(m1.data.at(0), 1.0);
    }
  });
}

TEST(Runtime, SameSourceFifoPerTag) {
  Cluster::run(2, test_machine(), [](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) c.send(1, 0, {static_cast<Real>(i)});
    } else {
      for (int i = 0; i < 10; ++i) {
        EXPECT_DOUBLE_EQ(c.recv(0, 0).data.at(0), static_cast<Real>(i));
      }
    }
  });
}

TEST(Runtime, VirtualClockAdvancesOnCompute) {
  const auto res = Cluster::run(1, test_machine(), [](Comm& c) {
    EXPECT_DOUBLE_EQ(c.vtime(), 0.0);
    c.compute(3.0e9);  // one second at cori rate
    EXPECT_NEAR(c.vtime(), 1.0, 1e-12);
    EXPECT_NEAR(c.category_time(TimeCategory::kFp), 1.0, 1e-12);
  });
  EXPECT_NEAR(res.makespan(), 1.0, 1e-12);
}

TEST(Runtime, MessageArrivalDominatesReceiverClock) {
  // Receiver is idle; its clock must jump to sender_time + latency + b/BW.
  const MachineModel m = test_machine();
  Cluster::run(2, m, [&](Comm& c) {
    if (c.rank() == 0) {
      c.compute(m.cpu_flop_rate);  // 1 virtual second of work
      c.send(1, 0, std::vector<Real>(1000, 1.0), TimeCategory::kXyComm);
    } else {
      const Message msg = c.recv(0, 0, TimeCategory::kXyComm);
      const double expected = 1.0 + m.mpi_overhead + m.net.latency +
                              1000.0 * sizeof(Real) / m.net.bandwidth;
      EXPECT_NEAR(msg.arrival, expected, 1e-9);
      EXPECT_GE(c.vtime(), expected);
      EXPECT_GT(c.category_time(TimeCategory::kXyComm), 0.0);
      EXPECT_DOUBLE_EQ(c.category_time(TimeCategory::kFp), 0.0);
    }
  });
}

TEST(Runtime, BarrierSynchronizesClocks) {
  const int P = 4;
  const auto res = Cluster::run(P, test_machine(), [](Comm& c) {
    // Rank r works r virtual seconds; after the barrier all clocks >= max.
    c.advance(static_cast<double>(c.rank()), TimeCategory::kFp);
    c.barrier();
    EXPECT_GE(c.vtime(), 3.0);
  });
  for (const auto& r : res.ranks) EXPECT_GE(r.vtime, 3.0);
}

TEST(Runtime, AllreduceSumsContributions) {
  const int P = 6;
  Cluster::run(P, test_machine(), [](Comm& c) {
    const std::vector<Real> mine{static_cast<Real>(c.rank()), 1.0};
    const auto out = c.allreduce_sum(mine, TimeCategory::kZComm);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0], 0.0 + 1 + 2 + 3 + 4 + 5);
    EXPECT_DOUBLE_EQ(out[1], 6.0);
  });
}

TEST(Runtime, AllreduceMax) {
  Cluster::run(5, test_machine(), [](Comm& c) {
    EXPECT_DOUBLE_EQ(c.allreduce_max(static_cast<double>(c.rank())), 4.0);
  });
}

TEST(Runtime, SplitFormsRowCommunicators) {
  // 2x3 grid: color = row, key = col.
  Cluster::run(6, test_machine(), [](Comm& c) {
    const int row = c.rank() / 3;
    const int col = c.rank() % 3;
    Comm rc = c.split(row, col);
    EXPECT_EQ(rc.size(), 3);
    EXPECT_EQ(rc.rank(), col);
    // Sum ranks within the row communicator.
    const auto sum = rc.allreduce_sum(std::vector<Real>{static_cast<Real>(c.rank())},
                                      TimeCategory::kOther);
    EXPECT_DOUBLE_EQ(sum[0], row == 0 ? 0.0 + 1 + 2 : 3.0 + 4 + 5);
  });
}

TEST(Runtime, SplitIsIsolatedFromParent) {
  // A message on the subcommunicator must not be visible to a recv on the
  // parent communicator and vice versa.
  Cluster::run(2, test_machine(), [](Comm& c) {
    Comm sub = c.split(0, c.rank());
    if (c.rank() == 0) {
      c.send(1, 5, {1.0});
      sub.send(1, 5, {2.0});
    } else {
      const Message on_sub = sub.recv(0, 5);
      EXPECT_DOUBLE_EQ(on_sub.data.at(0), 2.0);
      const Message on_parent = c.recv(0, 5);
      EXPECT_DOUBLE_EQ(on_parent.data.at(0), 1.0);
    }
  });
}

TEST(Runtime, NestedSplit) {
  // Split a 8-rank world into 2 grids of 4, then each grid into rows of 2.
  Cluster::run(8, test_machine(), [](Comm& c) {
    Comm grid = c.split(c.rank() / 4, c.rank() % 4);
    EXPECT_EQ(grid.size(), 4);
    Comm row = grid.split(grid.rank() / 2, grid.rank() % 2);
    EXPECT_EQ(row.size(), 2);
    const auto s = row.allreduce_sum(std::vector<Real>{1.0}, TimeCategory::kOther);
    EXPECT_DOUBLE_EQ(s[0], 2.0);
  });
}

TEST(Runtime, ProbeSeesOnlyMatching) {
  Cluster::run(2, test_machine(), [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 3, {1.0});
      c.recv(1, 0);  // ack: message 3 definitely delivered
      EXPECT_FALSE(c.probe(1, 9));
    } else {
      while (!c.probe(0, 3)) {
      }
      EXPECT_TRUE(c.probe(kAnySource, kAnyTag));
      EXPECT_FALSE(c.probe(0, 4));
      c.recv(0, 3);
      c.send(0, 0, {});
    }
  });
}

TEST(Runtime, SelfSendIsDelivered) {
  Cluster::run(1, test_machine(), [](Comm& c) {
    c.send(0, 5, {42.0});
    const Message m = c.recv(0, 5);
    EXPECT_EQ(m.src, 0);
    EXPECT_DOUBLE_EQ(m.data.at(0), 42.0);
  });
}

TEST(Runtime, RecvRangeFiltersTagWindow) {
  Cluster::run(2, test_machine(), [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 150, {150.0});  // outside the first window
      c.send(1, 30, {30.0});
      c.send(1, 40, {40.0});
    } else {
      // Window [0, 100): receives 30 and 40 but never 150.
      const Message a = c.recv_range(0, 0, 100);
      const Message b = c.recv_range(0, 0, 100);
      EXPECT_TRUE((a.data.at(0) == 30.0 && b.data.at(0) == 40.0) ||
                  (a.data.at(0) == 40.0 && b.data.at(0) == 30.0));
      // The out-of-window message is still queued.
      const Message d = c.recv_range(0, 100, 200);
      EXPECT_DOUBLE_EQ(d.data.at(0), 150.0);
    }
  });
}

TEST(Runtime, RecvRangeEmptyWindowMeansAnyTag) {
  Cluster::run(2, test_machine(), [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 12345, {7.0});
    } else {
      EXPECT_DOUBLE_EQ(c.recv_range(kAnySource, 0, 0).data.at(0), 7.0);
    }
  });
}

TEST(Runtime, ResetClockZeroesAccounting) {
  Cluster::run(1, test_machine(), [](Comm& c) {
    c.compute(1e9);
    c.reset_clock();
    EXPECT_DOUBLE_EQ(c.vtime(), 0.0);
    EXPECT_DOUBLE_EQ(c.category_time(TimeCategory::kFp), 0.0);
  });
}

TEST(Runtime, RankExceptionPropagatesWithoutDeadlock) {
  EXPECT_THROW(
      Cluster::run(4, test_machine(),
                   [](Comm& c) {
                     if (c.rank() == 2) throw std::runtime_error("rank 2 died");
                     // These would block forever without abort poisoning.
                     c.recv(kAnySource, kAnyTag);
                   }),
      std::runtime_error);
}

TEST(Runtime, ExceptionInCollectiveUnblocksPeers) {
  EXPECT_THROW(Cluster::run(3, test_machine(),
                            [](Comm& c) {
                              if (c.rank() == 0) throw std::logic_error("boom");
                              c.barrier();
                            }),
               std::logic_error);
}

TEST(Runtime, ManyRanksScale) {
  // Smoke test that a few hundred rank threads work (benches use 2048).
  const int P = 256;
  const auto res = Cluster::run(P, test_machine(), [](Comm& c) {
    const auto s = c.allreduce_sum(std::vector<Real>{1.0}, TimeCategory::kOther);
    EXPECT_DOUBLE_EQ(s[0], 256.0);
    c.barrier();
  });
  EXPECT_EQ(res.ranks.size(), 256u);
}

TEST(Runtime, StatsAggregations) {
  const auto res = Cluster::run(3, test_machine(), [](Comm& c) {
    c.advance(static_cast<double>(c.rank() + 1), TimeCategory::kFp);
  });
  EXPECT_DOUBLE_EQ(res.makespan(), 3.0);
  EXPECT_DOUBLE_EQ(res.mean_category(TimeCategory::kFp), 2.0);
  EXPECT_DOUBLE_EQ(res.max_category(TimeCategory::kFp), 3.0);
  EXPECT_DOUBLE_EQ(res.min_category(TimeCategory::kFp), 1.0);
}

TEST(Runtime, InvalidArgs) {
  EXPECT_THROW(Cluster::run(0, test_machine(), [](Comm&) {}), std::invalid_argument);
  Cluster::run(2, test_machine(), [](Comm& c) {
    if (c.rank() == 0) {
      EXPECT_THROW(c.send(7, 0, {}), std::out_of_range);
    }
  });
}

TEST(Machine, PresetsAreDistinct) {
  const auto cori = MachineModel::cori_haswell();
  const auto pm = MachineModel::perlmutter();
  const auto cr = MachineModel::crusher();
  EXPECT_EQ(cori.name, "cori-haswell");
  EXPECT_TRUE(pm.shmem_subcomm_support);
  EXPECT_FALSE(cr.shmem_subcomm_support);  // ROC-SHMEM limitation
  EXPECT_GT(pm.bw_gpu_intranode, 10 * pm.bw_gpu_internode);  // the BW cliff
  EXPECT_GT(pm.gpu_flop_rate, cr.gpu_flop_rate);  // Perlmutter speedups higher
}

}  // namespace
}  // namespace sptrsv
