#include <gtest/gtest.h>

#include <numeric>

#include "sparse/csr.hpp"

namespace sptrsv {
namespace {

CooMatrix small_coo() {
  CooMatrix coo;
  coo.rows = coo.cols = 4;
  coo.add(0, 0, 2.0);
  coo.add(1, 1, 3.0);
  coo.add(2, 2, 4.0);
  coo.add(3, 3, 5.0);
  coo.add(0, 2, 1.0);
  coo.add(2, 0, -1.0);
  coo.add(3, 1, 0.5);
  return coo;
}

TEST(Csr, FromCooSortsAndStores) {
  const CsrMatrix m = CsrMatrix::from_coo(small_coo());
  EXPECT_EQ(m.rows(), 4);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.nnz(), 7);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(m.at(2, 0), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);
  EXPECT_TRUE(m.has_entry(3, 1));
  EXPECT_FALSE(m.has_entry(1, 3));
}

TEST(Csr, DuplicatesAreSummed) {
  CooMatrix coo;
  coo.rows = coo.cols = 2;
  coo.add(0, 1, 1.5);
  coo.add(0, 1, 2.5);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 1.0);
  const CsrMatrix m = CsrMatrix::from_coo(coo);
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 4.0);
}

TEST(Csr, RowsAreSorted) {
  const CsrMatrix m = CsrMatrix::from_coo(small_coo());
  for (Idx r = 0; r < m.rows(); ++r) {
    const auto cs = m.row_cols(r);
    for (size_t i = 1; i < cs.size(); ++i) EXPECT_LT(cs[i - 1], cs[i]);
  }
}

TEST(Csr, OutOfRangeEntryThrows) {
  CooMatrix coo;
  coo.rows = coo.cols = 2;
  coo.add(0, 5, 1.0);
  EXPECT_THROW(CsrMatrix::from_coo(coo), std::out_of_range);
}

TEST(Csr, FromRawValidates) {
  EXPECT_NO_THROW(CsrMatrix::from_raw(2, 2, {0, 1, 2}, {0, 1}, {1.0, 1.0}));
  // rowptr/colidx mismatch
  EXPECT_THROW(CsrMatrix::from_raw(2, 2, {0, 1, 3}, {0, 1}, {1.0, 1.0}),
               std::invalid_argument);
  // unsorted columns
  EXPECT_THROW(CsrMatrix::from_raw(1, 3, {0, 2}, {2, 0}, {1.0, 1.0}),
               std::invalid_argument);
}

TEST(Csr, Transpose) {
  const CsrMatrix m = CsrMatrix::from_coo(small_coo());
  const CsrMatrix t = m.transposed();
  for (Idx r = 0; r < m.rows(); ++r) {
    for (Idx c = 0; c < m.cols(); ++c) {
      EXPECT_DOUBLE_EQ(m.at(r, c), t.at(c, r));
    }
  }
}

TEST(Csr, TransposeTwiceIsIdentity) {
  const CsrMatrix m = CsrMatrix::from_coo(small_coo());
  const CsrMatrix tt = m.transposed().transposed();
  EXPECT_EQ(tt.nnz(), m.nnz());
  for (Idx r = 0; r < m.rows(); ++r) {
    for (Idx c = 0; c < m.cols(); ++c) {
      EXPECT_DOUBLE_EQ(m.at(r, c), tt.at(r, c));
    }
  }
}

TEST(Csr, SymmetrizedPattern) {
  const CsrMatrix m = CsrMatrix::from_coo(small_coo());
  EXPECT_FALSE(m.has_symmetric_pattern());  // (3,1) has no (1,3)
  const CsrMatrix s = m.symmetrized_pattern();
  EXPECT_TRUE(s.has_symmetric_pattern());
  // Original values preserved; mirror entries are structural zeros.
  EXPECT_DOUBLE_EQ(s.at(3, 1), 0.5);
  EXPECT_DOUBLE_EQ(s.at(1, 3), 0.0);
  EXPECT_TRUE(s.has_entry(1, 3));
  EXPECT_DOUBLE_EQ(s.at(0, 2), 1.0);
}

TEST(Csr, PermutedSymmetric) {
  const CsrMatrix m = CsrMatrix::from_coo(small_coo());
  const std::vector<Idx> perm{2, 0, 3, 1};  // new -> old
  const CsrMatrix p = m.permuted_symmetric(perm);
  for (Idx i = 0; i < 4; ++i) {
    for (Idx j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(p.at(i, j), m.at(perm[static_cast<size_t>(i)],
                                        perm[static_cast<size_t>(j)]));
    }
  }
}

TEST(Csr, IdentityPermutationIsNoop) {
  const CsrMatrix m = CsrMatrix::from_coo(small_coo());
  std::vector<Idx> perm(4);
  std::iota(perm.begin(), perm.end(), 0);
  const CsrMatrix p = m.permuted_symmetric(perm);
  EXPECT_EQ(p.nnz(), m.nnz());
  for (Idx i = 0; i < 4; ++i) {
    for (Idx j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(p.at(i, j), m.at(i, j));
  }
}

TEST(Csr, Matvec) {
  const CsrMatrix m = CsrMatrix::from_coo(small_coo());
  const std::vector<Real> x{1.0, 2.0, 3.0, 4.0};
  std::vector<Real> y(4);
  m.matvec(x, y);
  EXPECT_DOUBLE_EQ(y[0], 2.0 * 1 + 1.0 * 3);
  EXPECT_DOUBLE_EQ(y[1], 3.0 * 2);
  EXPECT_DOUBLE_EQ(y[2], -1.0 * 1 + 4.0 * 3);
  EXPECT_DOUBLE_EQ(y[3], 0.5 * 2 + 5.0 * 4);
}

TEST(Csr, MatmulMultiRhsMatchesRepeatedMatvec) {
  const CsrMatrix m = CsrMatrix::from_coo(small_coo());
  std::vector<Real> x(8);
  std::iota(x.begin(), x.end(), 1.0);
  std::vector<Real> y(8);
  m.matmul(x, y, 2);
  for (Idx j = 0; j < 2; ++j) {
    std::vector<Real> yj(4);
    m.matvec(std::span<const Real>(x).subspan(static_cast<size_t>(j) * 4, 4), yj);
    for (Idx i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(y[static_cast<size_t>(j) * 4 + i], yj[static_cast<size_t>(i)]);
    }
  }
}

TEST(Csr, MakeDiagonallyDominant) {
  CooMatrix coo = small_coo();
  CsrMatrix m = CsrMatrix::from_coo(coo);
  m.make_diagonally_dominant(1.0, 1.0);
  for (Idx r = 0; r < m.rows(); ++r) {
    Real offdiag = 0;
    const auto cs = m.row_cols(r);
    const auto vs = m.row_vals(r);
    for (size_t i = 0; i < cs.size(); ++i) {
      if (cs[i] != r) offdiag += std::abs(vs[i]);
    }
    EXPECT_GT(m.at(r, r), offdiag);
  }
}

TEST(Csr, MissingDiagonalDetected) {
  CooMatrix coo;
  coo.rows = coo.cols = 2;
  coo.add(0, 0, 1.0);
  coo.add(0, 1, 1.0);
  CsrMatrix m = CsrMatrix::from_coo(coo);
  EXPECT_FALSE(m.has_full_diagonal());
  EXPECT_THROW(m.make_diagonally_dominant(), std::logic_error);
}

TEST(Permutation, InvertAndValidate) {
  const std::vector<Idx> perm{2, 0, 3, 1};
  EXPECT_TRUE(is_permutation(perm));
  const std::vector<Idx> inv = invert_permutation(perm);
  for (size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(inv[static_cast<size_t>(perm[i])], static_cast<Idx>(i));
  }
  EXPECT_FALSE(is_permutation(std::vector<Idx>{0, 0, 1, 2}));
  EXPECT_FALSE(is_permutation(std::vector<Idx>{0, 4, 1, 2}));
}

}  // namespace
}  // namespace sptrsv
