#include <gtest/gtest.h>

#include "core/sptrsv3d.hpp"
#include "sparse/paper_matrices.hpp"
#include "test_support.hpp"

namespace sptrsv {
namespace {

using test::bitwise_equal;
using test::message_counts_identical;
using test::random_rhs;
using test::test_machine;

constexpr RunOptions kDet{.deterministic = true, .seed = 0};

double mean_cat(const Cluster::Result& r, TimeCategory c) {
  return r.mean_category(c);
}

/// Fig 5-6 accounting guard: degrade the inter-grid (Z) links 10x and the
/// breakdown must charge the slowdown to kZComm — not to kXyComm or kFp.
TEST(Perturbation, ZLinkDegradationIsAttributedToZComm) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, 3);
  const auto b = random_rhs(a.rows(), 1, 17);

  SolveConfig cfg;
  cfg.shape = {2, 2, 4};
  cfg.algorithm = Algorithm3d::kProposed;
  cfg.run = kDet;

  const auto base = solve_system_3d(fs, b, cfg, test_machine());

  MachineModel degraded = test_machine();
  PerturbationModel::LinkDegradation dg;
  dg.category = TimeCategory::kZComm;
  dg.latency_factor = 10.0;
  dg.bandwidth_factor = 0.1;
  degraded.perturb.degradations.push_back(dg);
  const auto slow = solve_system_3d(fs, b, cfg, degraded);

  // Functional behaviour untouched: same bits, same traffic.
  EXPECT_TRUE(bitwise_equal(base.x, slow.x));
  EXPECT_TRUE(message_counts_identical(base.run_stats, slow.run_stats));

  // FP time never moves (no compute in a link, no skew configured).
  for (size_t r = 0; r < base.run_stats.ranks.size(); ++r) {
    EXPECT_EQ(base.run_stats.ranks[r].category[static_cast<int>(TimeCategory::kFp)],
              slow.run_stats.ranks[r].category[static_cast<int>(TimeCategory::kFp)])
        << "rank " << r;
  }
  // The L phase runs entirely before any inter-grid traffic, so its
  // per-phase numbers are bitwise unchanged.
  for (size_t r = 0; r < base.rank_times.size(); ++r) {
    EXPECT_EQ(base.rank_times[r].l_fp, slow.rank_times[r].l_fp) << "rank " << r;
    EXPECT_EQ(base.rank_times[r].l_xy, slow.rank_times[r].l_xy) << "rank " << r;
  }

  // The slowdown lands on kZComm, dwarfing any knock-on kXyComm shift.
  const double dz = mean_cat(slow.run_stats, TimeCategory::kZComm) -
                    mean_cat(base.run_stats, TimeCategory::kZComm);
  const double dxy = mean_cat(slow.run_stats, TimeCategory::kXyComm) -
                     mean_cat(base.run_stats, TimeCategory::kXyComm);
  EXPECT_GT(dz, 0.0);
  EXPECT_GT(mean_cat(slow.run_stats, TimeCategory::kZComm),
            2.0 * mean_cat(base.run_stats, TimeCategory::kZComm));
  EXPECT_LT(std::abs(dxy), 0.25 * dz)
      << "Z-link slowdown leaked into the XY accounting";
  EXPECT_GT(slow.makespan, base.makespan);
}

/// Degrading the XY class must not inflate the Z accounting either —
/// the attribution works in both directions.
TEST(Perturbation, XyLinkDegradationIsAttributedToXyComm) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, 3);
  const auto b = random_rhs(a.rows(), 1, 18);

  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.algorithm = Algorithm3d::kProposed;
  cfg.run = kDet;

  const auto base = solve_system_3d(fs, b, cfg, test_machine());

  MachineModel degraded = test_machine();
  PerturbationModel::LinkDegradation dg;
  dg.category = TimeCategory::kXyComm;
  dg.latency_factor = 10.0;
  degraded.perturb.degradations.push_back(dg);
  const auto slow = solve_system_3d(fs, b, cfg, degraded);

  EXPECT_TRUE(bitwise_equal(base.x, slow.x));
  const double dxy = mean_cat(slow.run_stats, TimeCategory::kXyComm) -
                     mean_cat(base.run_stats, TimeCategory::kXyComm);
  EXPECT_GT(dxy, 0.0);
  for (size_t r = 0; r < base.run_stats.ranks.size(); ++r) {
    EXPECT_EQ(base.run_stats.ranks[r].category[static_cast<int>(TimeCategory::kFp)],
              slow.run_stats.ranks[r].category[static_cast<int>(TimeCategory::kFp)]);
  }
}

/// A degradation window that closes before the solve starts is a no-op.
TEST(Perturbation, ClosedWindowIsInert) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, 2);
  const auto b = random_rhs(a.rows(), 1, 19);

  SolveConfig cfg;
  cfg.shape = {2, 2, 1};
  cfg.run = kDet;

  MachineModel m = test_machine();
  PerturbationModel::LinkDegradation dg;
  dg.all_categories = true;
  dg.vt_begin = 0.0;
  dg.vt_end = 0.0;  // empty window
  dg.latency_factor = 100.0;
  m.perturb.degradations.push_back(dg);

  const auto base = solve_system_3d(fs, b, cfg, test_machine());
  const auto windowed = solve_system_3d(fs, b, cfg, m);
  EXPECT_TRUE(test::outcomes_identical(base, windowed));
}

/// Rank compute skew shows up in kFp and nowhere in the message counters.
TEST(Perturbation, ComputeSkewInflatesFpOnly) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, 2);
  const auto b = random_rhs(a.rows(), 1, 20);

  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.run = RunOptions{.deterministic = true, .seed = 11};

  MachineModel m = test_machine();
  m.perturb.compute_skew = 1.0;  // up to 2x slower FP per rank

  const auto base = solve_system_3d(fs, b, cfg, test_machine());
  const auto skewed = solve_system_3d(fs, b, cfg, m);
  EXPECT_TRUE(bitwise_equal(base.x, skewed.x));
  EXPECT_TRUE(message_counts_identical(base.run_stats, skewed.run_stats));
  EXPECT_GT(mean_cat(skewed.run_stats, TimeCategory::kFp),
            mean_cat(base.run_stats, TimeCategory::kFp));
}

}  // namespace
}  // namespace sptrsv
