#include <gtest/gtest.h>

#include <random>

#include "core/sptrsv3d.hpp"
#include "factor/sptrsv_seq.hpp"
#include "sparse/generators.hpp"
#include "sparse/paper_matrices.hpp"
#include "test_support.hpp"

namespace sptrsv {
namespace {

using test::max_abs_diff;
using test::random_rhs;

struct Case {
  Grid3dShape shape;
  Algorithm3d alg;
  TreeKind tree;
  Idx nrhs;
  std::string name;
};

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  auto add = [&](int px, int py, int pz, Algorithm3d alg, TreeKind tk, Idx nrhs) {
    const std::string alg_s = alg == Algorithm3d::kProposed ? "new" : "base";
    const std::string tk_s = tk == TreeKind::kBinary ? "btree" : "flat";
    cases.push_back({{px, py, pz},
                     alg,
                     tk,
                     nrhs,
                     alg_s + "_" + tk_s + "_p" + std::to_string(px) + "x" +
                         std::to_string(py) + "x" + std::to_string(pz) + "_r" +
                         std::to_string(nrhs)});
  };
  for (const auto alg : {Algorithm3d::kProposed, Algorithm3d::kBaseline}) {
    add(1, 1, 1, alg, TreeKind::kBinary, 1);
    add(2, 2, 1, alg, TreeKind::kBinary, 1);
    add(2, 3, 2, alg, TreeKind::kBinary, 1);
    add(1, 1, 4, alg, TreeKind::kBinary, 1);
    add(3, 2, 4, alg, TreeKind::kBinary, 1);
    add(2, 2, 8, alg, TreeKind::kBinary, 1);
    add(2, 2, 2, alg, TreeKind::kFlat, 1);
    add(2, 2, 4, alg, TreeKind::kBinary, 3);
    add(4, 1, 2, alg, TreeKind::kBinary, 1);
    add(1, 4, 2, alg, TreeKind::kBinary, 1);
  }
  return cases;
}

class Sptrsv3dTest : public ::testing::TestWithParam<Case> {};

TEST_P(Sptrsv3dTest, MatchesSequentialSolve) {
  const Case& c = GetParam();
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/3);
  const auto b = random_rhs(a.rows(), c.nrhs, 42);

  SolveConfig cfg;
  cfg.shape = c.shape;
  cfg.algorithm = c.alg;
  cfg.tree = c.tree;
  cfg.nrhs = c.nrhs;
  const DistSolveOutcome out =
      solve_system_3d(fs, b, cfg, MachineModel::cori_haswell());

  const auto ref = solve_system_seq(fs, b, c.nrhs);
  EXPECT_LT(max_abs_diff(out.x, ref), 1e-9);
  EXPECT_LT(relative_residual(a, out.x, b, c.nrhs), 1e-9);
  EXPECT_GT(out.makespan, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, Sptrsv3dTest, ::testing::ValuesIn(all_cases()),
                         [](const auto& info) { return info.param.name; });

class Sptrsv3dMatrixTest : public ::testing::TestWithParam<PaperMatrix> {};

TEST_P(Sptrsv3dMatrixTest, BothAlgorithmsSolveEveryPaperMatrix) {
  const CsrMatrix a = make_paper_matrix(GetParam(), MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, 2);
  const auto b = random_rhs(a.rows(), 2, 7);
  for (const auto alg : {Algorithm3d::kProposed, Algorithm3d::kBaseline}) {
    SolveConfig cfg;
    cfg.shape = {2, 2, 4};
    cfg.algorithm = alg;
    cfg.nrhs = 2;
    const DistSolveOutcome out =
        solve_system_3d(fs, b, cfg, MachineModel::cori_haswell());
    EXPECT_LT(relative_residual(a, out.x, b, 2), 1e-9)
        << paper_matrix_name(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllPaperMatrices, Sptrsv3dMatrixTest,
                         ::testing::ValuesIn(all_paper_matrices()),
                         [](const auto& info) { return paper_matrix_name(info.param); });

TEST(Sptrsv3d, DenseZReduceAblationMatches) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, 2);
  const auto b = random_rhs(a.rows(), 1, 5);
  SolveConfig cfg;
  cfg.shape = {2, 2, 4};
  cfg.sparse_zreduce = false;  // per-node dense allreduce ablation
  const DistSolveOutcome out =
      solve_system_3d(fs, b, cfg, MachineModel::cori_haswell());
  EXPECT_LT(relative_residual(a, out.x, b), 1e-9);
}

TEST(Sptrsv3d, RandomMatrixProperty) {
  // Property sweep: random symmetric matrices, random-ish shapes.
  const std::vector<Grid3dShape> shapes{{1, 2, 2}, {2, 1, 4}, {2, 2, 2}};
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const CsrMatrix a = make_random_symmetric(150, 3.0, seed);
    const FactoredSystem fs = analyze_and_factor(a, 2);
    const auto b = random_rhs(a.rows(), 1, seed);
    for (const auto& shape : shapes) {
      for (const auto alg : {Algorithm3d::kProposed, Algorithm3d::kBaseline}) {
        SolveConfig cfg;
        cfg.shape = shape;
        cfg.algorithm = alg;
        const DistSolveOutcome out =
            solve_system_3d(fs, b, cfg, MachineModel::cori_haswell());
        EXPECT_LT(relative_residual(a, out.x, b), 1e-8)
            << "seed " << seed << " shape " << shape.px << "x" << shape.py << "x"
            << shape.pz;
      }
    }
  }
}

TEST(Sptrsv3d, PhaseTimesArePopulated) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, 2);
  const auto b = random_rhs(a.rows(), 1, 3);
  SolveConfig cfg;
  cfg.shape = {2, 2, 4};
  const DistSolveOutcome out =
      solve_system_3d(fs, b, cfg, MachineModel::cori_haswell());
  EXPECT_EQ(out.rank_times.size(), 16u);
  EXPECT_GT(out.mean(&RankPhaseTimes::l_fp), 0.0);
  EXPECT_GT(out.mean(&RankPhaseTimes::u_fp), 0.0);
  EXPECT_GT(out.mean(&RankPhaseTimes::z_time), 0.0);  // Pz=4: allreduce happened
  EXPECT_GE(out.max(&RankPhaseTimes::total), out.mean(&RankPhaseTimes::total));
  EXPECT_LE(out.min(&RankPhaseTimes::l_fp), out.mean(&RankPhaseTimes::l_fp));
  EXPECT_DOUBLE_EQ(out.makespan, out.max(&RankPhaseTimes::total));
}

TEST(Sptrsv3d, ProposedDoesReplicatedWork) {
  // The proposed algorithm trades replication for synchronization: summed
  // FP time across ranks must exceed the baseline's.
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kNlpkkt80, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, 2);
  const auto b = random_rhs(a.rows(), 1, 4);
  auto total_fp = [&](Algorithm3d alg) {
    SolveConfig cfg;
    cfg.shape = {1, 1, 4};
    cfg.algorithm = alg;
    const DistSolveOutcome out =
        solve_system_3d(fs, b, cfg, MachineModel::cori_haswell());
    return out.mean(&RankPhaseTimes::l_fp) + out.mean(&RankPhaseTimes::u_fp);
  };
  EXPECT_GT(total_fp(Algorithm3d::kProposed), total_fp(Algorithm3d::kBaseline));
}

TEST(Sptrsv3d, InvalidShapesThrow) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, 2);
  const auto b = random_rhs(a.rows(), 1, 1);
  SolveConfig cfg;
  cfg.shape = {1, 1, 3};  // not a power of two
  EXPECT_THROW(solve_system_3d(fs, b, cfg, MachineModel::cori_haswell()),
               std::invalid_argument);
  cfg.shape = {1, 1, 8};  // deeper than the tracked tree (levels=2)
  EXPECT_THROW(solve_system_3d(fs, b, cfg, MachineModel::cori_haswell()),
               std::invalid_argument);
  cfg.shape = {1, 1, 2};
  cfg.nrhs = 2;  // b sized for 1 RHS
  EXPECT_THROW(solve_system_3d(fs, b, cfg, MachineModel::cori_haswell()),
               std::invalid_argument);
}

}  // namespace
}  // namespace sptrsv
