#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "comm/sparse_allreduce.hpp"
#include "core/sptrsv3d.hpp"
#include "factor/sptrsv_seq.hpp"
#include "sparse/generators.hpp"
#include "test_support.hpp"
#include "trace/trace.hpp"

namespace sptrsv {
namespace {

/// Systematic schedule exploration (docs/TESTING.md): every RunOptions
/// point of test::schedule_sweep runs the same program under a different
/// legal grant order of the deterministic scheduler. The commit fence
/// makes all of them semantically equivalent, so the whole clean ledger —
/// solution bits, Result::fingerprint, message/byte counts — must be
/// bitwise identical across the sweep, while the recorded
/// ScheduleCertificates prove the interleavings genuinely differed. Any
/// divergence is a schedule-dependence bug in the runtime or the program
/// under test; the failing point's certificate replays it exactly.

constexpr int kSeedsPerPolicy = 12;  // 1 + 5*12 = 61 sweep points
constexpr std::size_t kMinDistinctSchedules = 50;

/// Runs `make_rank_fn(&data)` over the whole sweep and checks ledger and
/// data invariance against the FIFO baseline. `data` must be written
/// rank-indexed (never appended in execution order). Returns the number of
/// distinct grant sequences seen.
template <typename MakeRankFn>
std::size_t sweep_and_check(int nranks, const MachineModel& m, MakeRankFn make_rank_fn) {
  const auto points = test::schedule_sweep(kSeedsPerPolicy);
  std::set<std::vector<std::int32_t>> distinct;
  Cluster::Result baseline;
  std::vector<Real> baseline_data;
  for (const auto& pt : points) {
    std::vector<Real> data;
    const Cluster::Result res = Cluster::run(nranks, m, make_rank_fn(&data), pt.opts);
    EXPECT_EQ(res.schedule.policy, pt.opts.schedule) << pt.name;
    distinct.insert(res.schedule.grants);
    if (pt.name == "fifo") {
      baseline = res;
      baseline_data = std::move(data);
      continue;
    }
    EXPECT_TRUE(test::stats_identical(baseline, res)) << pt.name;
    EXPECT_TRUE(test::message_counts_identical(baseline, res)) << pt.name;
    EXPECT_EQ(baseline.fingerprint(), res.fingerprint()) << pt.name;
    EXPECT_TRUE(test::bitwise_equal(baseline_data, data)) << pt.name;
  }
  return distinct.size();
}

/// Raw wildcard all-to-all: every rank sends its stamped payload to every
/// other rank, then drains P-1 MPI_ANY_SOURCE receives — the access
/// pattern that actually breaks MPI SpTRSV codes. The commit fence pins
/// which queued message every wildcard receive takes, so the fold below is
/// schedule-invariant even though doubles do not commute.
TEST(ScheduleExplore, WildcardAllToAllLedgerIsScheduleInvariant) {
  constexpr int kP = 8;
  const std::size_t distinct = sweep_and_check(
      kP, test::test_machine(), [](std::vector<Real>* out) {
        out->assign(kP, 0.0);
        return [out](Comm& c) {
          for (int dst = 0; dst < c.size(); ++dst) {
            if (dst == c.rank()) continue;
            c.compute(1e4 * (1 + (c.rank() * 7 + dst) % 5));
            c.send(dst, /*tag=*/7, {Real(c.rank()) + 0.25, Real(dst)});
          }
          Real sum = 0.0;
          for (int i = 0; i + 1 < c.size(); ++i) {
            const Message msg = c.recv(kAnySource, kAnyTag);
            sum += msg.data[0] / (1.0 + msg.data[1]);
          }
          (*out)[static_cast<std::size_t>(c.rank())] = sum;
        };
      });
  EXPECT_GE(distinct, kMinDistinctSchedules);
}

/// Sparse allreduce over the Pz tree (paper Algorithm 2) — the collective
/// the 3D solver's correctness hinges on.
TEST(ScheduleExplore, SparseAllreduceLedgerIsScheduleInvariant) {
  const NdTree tree = test::shape_tree(3);  // 8 leaves, 3 ancestors per leaf
  constexpr int kP = 8;
  const int levels = tree.levels();
  const std::size_t width = 3;  // values per segment
  const std::size_t per_rank = static_cast<std::size_t>(levels) * width;
  const std::size_t distinct = sweep_and_check(
      kP, test::test_machine(), [&](std::vector<Real>* out) {
        out->assign(kP * per_rank, 0.0);
        return [&, out](Comm& c) {
          const Idx z = c.rank();
          const std::span<Real> mine(
              out->data() + static_cast<std::size_t>(z) * per_rank, per_rank);
          std::vector<ReduceSegment> segs;
          std::size_t off = 0;
          for (const Idx node : tree.path_to_root(tree.leaf_node_id(z))) {
            if (tree.node(node).depth >= levels) continue;  // skip the leaf itself
            const std::span<Real> slice = mine.subspan(off, width);
            slice[0] = Real(z) + 0.5;
            slice[1] = Real(node);
            slice[2] = Real(z) * 0.25;
            segs.push_back({node, slice});
            off += width;
          }
          sparse_allreduce(c, tree, segs);
        };
      });
  EXPECT_GE(distinct, kMinDistinctSchedules);
}

/// Full message-driven 2D L+U solve on a 3x2 grid.
TEST(ScheduleExplore, Solver2dLedgerIsScheduleInvariant) {
  const CsrMatrix a = make_grid2d(12, 12, Stencil2d::kNinePoint, {.seed = 11});
  const FactoredSystem fs = analyze_and_factor(a, 0);
  const std::vector<Real> b = test::random_rhs(a.rows(), 1, 3);

  const auto points = test::schedule_sweep(kSeedsPerPolicy);
  std::set<std::vector<std::int32_t>> distinct;
  test::Dist2dOutcome baseline;
  for (const auto& pt : points) {
    test::Dist2dOutcome out =
        test::solve_system_2d(fs, {3, 2}, b, 1, test::test_machine(), pt.opts);
    distinct.insert(out.run.schedule.grants);
    if (pt.name == "fifo") {
      baseline = std::move(out);
      continue;
    }
    EXPECT_TRUE(test::bitwise_equal(baseline.x, out.x)) << pt.name;
    EXPECT_TRUE(test::stats_identical(baseline.run, out.run)) << pt.name;
    EXPECT_EQ(baseline.run.fingerprint(), out.run.fingerprint()) << pt.name;
  }
  EXPECT_GE(distinct.size(), kMinDistinctSchedules);
}

/// Both 3D algorithms on a 2x2x2 grid (the full pipeline: per-grid 2D
/// solves plus the inter-grid sparse reduction).
class ScheduleExplore3d : public ::testing::TestWithParam<Algorithm3d> {};

TEST_P(ScheduleExplore3d, LedgerIsScheduleInvariant) {
  const CsrMatrix a = make_grid2d(12, 12, Stencil2d::kNinePoint, {.seed = 5});
  const FactoredSystem fs = analyze_and_factor(a, 3);
  const std::vector<Real> b = test::random_rhs(a.rows(), 2, 4);
  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.algorithm = GetParam();
  cfg.nrhs = 2;

  const auto points = test::schedule_sweep(kSeedsPerPolicy);
  std::set<std::vector<std::int32_t>> distinct;
  DistSolveOutcome baseline;
  for (const auto& pt : points) {
    cfg.run = pt.opts;
    DistSolveOutcome out = solve_system_3d(fs, b, cfg, test::test_machine());
    distinct.insert(out.run_stats.schedule.grants);
    if (pt.name == "fifo") {
      baseline = std::move(out);
      continue;
    }
    EXPECT_TRUE(test::outcomes_identical(baseline, out)) << pt.name;
  }
  EXPECT_GE(distinct.size(), kMinDistinctSchedules);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ScheduleExplore3d,
                         ::testing::Values(Algorithm3d::kProposed,
                                           Algorithm3d::kBaseline),
                         [](const auto& info) {
                           return info.param == Algorithm3d::kProposed ? "Proposed"
                                                                       : "Baseline";
                         });

/// Trace conservation invariants hold at every sweep point: the trace is
/// contiguous, the critical-path breakdown telescopes to the makespan, and
/// (for a split-free program, where collective context ids cannot be
/// renumbered) the Chrome JSON export is byte-identical across schedules.
TEST(ScheduleExplore, TraceConservationIsScheduleInvariant) {
  constexpr int kP = 6;
  auto rank_fn = [](Comm& c) {
    c.compute(5e4 * (c.rank() + 1));
    if (c.rank() != 0) {
      c.send(0, 3, {Real(c.rank())});
    } else {
      for (int i = 0; i + 1 < c.size(); ++i) c.recv(kAnySource, 3);
    }
    c.barrier();
  };
  std::string baseline_json;
  for (const auto& pt : test::schedule_sweep(3)) {
    RunOptions opts = pt.opts;
    opts.trace = true;
    const Cluster::Result res = Cluster::run(kP, test::test_machine(), rank_fn, opts);
    ASSERT_NE(res.trace, nullptr) << pt.name;
    EXPECT_TRUE(res.trace->contiguous()) << pt.name;
    EXPECT_DOUBLE_EQ(res.trace->makespan(), res.makespan()) << pt.name;
    const auto cp = res.trace->critical_path();
    EXPECT_DOUBLE_EQ(cp.breakdown.total(), res.makespan()) << pt.name;
    const std::string json = res.trace->chrome_json();
    if (baseline_json.empty()) {
      baseline_json = json;
    } else {
      EXPECT_EQ(baseline_json, json) << pt.name;
    }
  }
}

/// The bug-finding power demonstration: a deliberately planted
/// order-dependent reduction. The program is virtual-time-correct (every
/// ledger quantity is schedule-invariant), but it folds rank contributions
/// into *shared process memory* in execution order with a non-associative
/// update — the classic harness bug of merging distributed results through
/// an unordered shared accumulator. Grant-order exploration must expose
/// it: some sweep point produces a different fold than FIFO, and that
/// point's certificate replays the deviant fold exactly.
TEST(ScheduleExplore, CatchesPlantedOrderDependentReduction) {
  constexpr int kP = 6;
  std::mutex mu;
  auto make_rank_fn = [&mu](Real* acc) {
    return [&mu, acc](Comm& c) {
      c.compute(1e5);  // identical modeled work on every rank
      {
        // BUG (planted): non-associative fold in grant order.
        std::lock_guard<std::mutex> lk(mu);
        *acc = *acc * 1.0000001 + Real(c.rank() + 1);
      }
      c.barrier();
    };
  };

  Real fifo_acc = 0.0;
  const RunOptions fifo{.deterministic = true};
  const Cluster::Result fifo_res =
      Cluster::run(kP, test::test_machine(), make_rank_fn(&fifo_acc), fifo);

  bool caught = false;
  ScheduleCertificate deviant_cert;
  Real deviant_acc = 0.0;
  for (const auto& pt : test::schedule_sweep(kSeedsPerPolicy)) {
    Real acc = 0.0;
    const Cluster::Result res =
        Cluster::run(kP, test::test_machine(), make_rank_fn(&acc), pt.opts);
    // The *ledger* stays invariant — the bug lives outside virtual time.
    EXPECT_EQ(fifo_res.fingerprint(), res.fingerprint()) << pt.name;
    if (std::memcmp(&acc, &fifo_acc, sizeof(Real)) != 0 && !caught) {
      caught = true;
      deviant_cert = res.schedule;
      deviant_acc = acc;
    }
  }
  ASSERT_TRUE(caught) << "no sweep point permuted the planted fold; "
                         "exploration has lost its bug-finding power";

  // The failing schedule replays exactly from its certificate — same
  // deviant fold, same grant record — including through the text
  // round-trip of the docs/TESTING.md bug-report workflow.
  const ScheduleCertificate parsed =
      ScheduleCertificate::parse(deviant_cert.to_string());
  RunOptions replay{.deterministic = true};
  replay.replay_schedule = &parsed;
  Real acc = 0.0;
  const Cluster::Result res =
      Cluster::run(kP, test::test_machine(), make_rank_fn(&acc), replay);
  EXPECT_EQ(std::memcmp(&acc, &deviant_acc, sizeof(Real)), 0)
      << "replayed fold " << acc << " != recorded deviant " << deviant_acc;
  EXPECT_EQ(res.schedule.grants, deviant_cert.grants);
  EXPECT_EQ(fifo_res.fingerprint(), res.fingerprint());
}

/// Certificates replay bit-exactly for a real solver too: the replayed
/// run's entire grant record equals the original's.
TEST(ScheduleExplore, CertificateReplayReproducesSolverRun) {
  const CsrMatrix a = make_grid2d(10, 10, Stencil2d::kNinePoint, {.seed = 2});
  const FactoredSystem fs = analyze_and_factor(a, 2);
  const std::vector<Real> b = test::random_rhs(a.rows(), 1, 9);
  SolveConfig cfg;
  cfg.shape = {2, 1, 2};
  cfg.run = RunOptions{.deterministic = true, .seed = 7};
  cfg.run.schedule = SchedulePolicy::kRandomPriority;
  cfg.run.schedule_seed = 0xBEEF;
  cfg.run.priority_points = 4;
  const DistSolveOutcome first = solve_system_3d(fs, b, cfg, test::test_machine());
  EXPECT_FALSE(first.run_stats.schedule.grants.empty());

  SolveConfig replay_cfg = cfg;
  replay_cfg.run = RunOptions{.deterministic = true, .seed = 7};
  replay_cfg.run.replay_schedule = &first.run_stats.schedule;
  const DistSolveOutcome second = solve_system_3d(fs, b, replay_cfg, test::test_machine());
  EXPECT_TRUE(test::outcomes_identical(first, second));
  EXPECT_EQ(second.run_stats.schedule.grants, first.run_stats.schedule.grants);
  EXPECT_EQ(second.run_stats.schedule.policy, SchedulePolicy::kRandomPriority);
  EXPECT_EQ(second.run_stats.schedule.seed, 0xBEEFu);
}

/// Deadlock detection still works under exploration policies: a cyclic
/// wait is diagnosed as FaultKind::kDeadlock, not a hang or a misreport.
TEST(ScheduleExplore, DeadlockDetectedUnderEveryPolicy) {
  for (const auto& pt : test::schedule_sweep(2)) {
    const Cluster::Result res = Cluster::try_run(
        3, test::test_machine(),
        [](Comm& c) { c.recv((c.rank() + 1) % c.size(), 99); }, pt.opts);
    EXPECT_FALSE(res.ok()) << pt.name;
    EXPECT_EQ(res.fault.kind, FaultKind::kDeadlock) << pt.name;
  }
}

}  // namespace
}  // namespace sptrsv
