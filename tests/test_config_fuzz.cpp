#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "core/sptrsv3d.hpp"
#include "factor/sptrsv_seq.hpp"
#include "sparse/generators.hpp"
#include "test_support.hpp"

namespace sptrsv {
namespace {

/// Randomized sweep over the pipeline's configuration space: supernode
/// width caps, relaxation, ND depth, grid shapes, algorithms, and RHS
/// counts, all checked against the sequential solver. Catches interactions
/// (e.g. scalar supernodes with wide grids, deep trees with tiny leaves)
/// that the targeted tests do not.

struct FuzzCase {
  std::uint64_t seed;
  Idx max_width;
  Idx relax;
  int nd_levels;
  Grid3dShape shape;
  Algorithm3d alg;
  Idx nrhs;
  /// Fuzzed schedule-exploration knobs, applied to the *faulty* run of the
  /// ledger test — so crash/delivery faults and grant-order perturbation are
  /// exercised together against the FIFO clean run.
  SchedulePolicy policy;
  std::uint64_t schedule_seed;
  int priority_points;
  int delay_budget;
  std::string name;
};

std::vector<FuzzCase> make_cases() {
  std::vector<FuzzCase> cases;
  std::mt19937_64 rng(0xF00D);
  const std::vector<Grid3dShape> shapes{{1, 1, 2}, {2, 1, 4}, {1, 3, 2},
                                        {2, 2, 2}, {3, 2, 1}, {1, 1, 8}};
  for (int i = 0; i < 12; ++i) {
    FuzzCase c;
    c.seed = rng();
    c.max_width = std::uniform_int_distribution<Idx>(1, 40)(rng);
    c.relax = std::uniform_int_distribution<Idx>(0, 12)(rng);
    c.nd_levels = std::uniform_int_distribution<int>(3, 4)(rng);
    c.shape = shapes[static_cast<size_t>(
        std::uniform_int_distribution<int>(0, static_cast<int>(shapes.size()) - 1)(rng))];
    c.alg = (i % 2 == 0) ? Algorithm3d::kProposed : Algorithm3d::kBaseline;
    c.nrhs = std::uniform_int_distribution<Idx>(1, 3)(rng);
    const int pol = std::uniform_int_distribution<int>(0, 2)(rng);
    c.policy = pol == 0   ? SchedulePolicy::kFifo
               : pol == 1 ? SchedulePolicy::kRandomPriority
                          : SchedulePolicy::kDelayBounded;
    c.schedule_seed = rng();
    c.priority_points = std::uniform_int_distribution<int>(0, 6)(rng);
    c.delay_budget = std::uniform_int_distribution<int>(0, 24)(rng);
    c.name = "case" + std::to_string(i) + "_w" + std::to_string(c.max_width) + "_r" +
             std::to_string(c.relax) + "_p" + std::to_string(c.shape.px) + "x" +
             std::to_string(c.shape.py) + "x" + std::to_string(c.shape.pz) +
             (c.alg == Algorithm3d::kProposed ? "_new" : "_base") + "_" +
             schedule_policy_name(c.policy);
    cases.push_back(std::move(c));
  }
  return cases;
}

class ConfigFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(ConfigFuzzTest, DistributedMatchesSequential) {
  const FuzzCase& c = GetParam();
  const CsrMatrix a = make_grid2d(14, 14, Stencil2d::kNinePoint, {.seed = c.seed});

  AnalyzeOptions aopt;
  aopt.nd.levels = c.nd_levels;
  aopt.supernode.max_width = c.max_width;
  aopt.supernode.relax_width = c.relax;
  const FactoredSystem fs = analyze_and_factor(a, aopt);

  const std::vector<Real> b = test::random_rhs(a.rows(), c.nrhs, c.seed ^ 1);

  SolveConfig cfg;
  cfg.shape = c.shape;
  cfg.algorithm = c.alg;
  cfg.nrhs = c.nrhs;
  const DistSolveOutcome out = solve_system_3d(fs, b, cfg, MachineModel::cori_haswell());
  const auto ref = solve_system_seq(fs, b, c.nrhs);
  Real worst = 0;
  for (size_t i = 0; i < ref.size(); ++i) {
    worst = std::max(worst, std::abs(out.x[i] - ref[i]));
  }
  EXPECT_LT(worst, 1e-9);
}

TEST_P(ConfigFuzzTest, CleanLedgerInvariantUnderCrashAndDeliveryFaults) {
  const FuzzCase& c = GetParam();
  const CsrMatrix a = make_grid2d(14, 14, Stencil2d::kNinePoint, {.seed = c.seed});

  AnalyzeOptions aopt;
  aopt.nd.levels = c.nd_levels;
  aopt.supernode.max_width = c.max_width;
  aopt.supernode.relax_width = c.relax;
  const FactoredSystem fs = analyze_and_factor(a, aopt);

  const std::vector<Real> b = test::random_rhs(a.rows(), c.nrhs, c.seed ^ 1);

  SolveConfig cfg;
  cfg.shape = c.shape;
  cfg.algorithm = c.alg;
  cfg.nrhs = c.nrhs;
  cfg.run = RunOptions{.deterministic = true, .seed = c.seed};
  const DistSolveOutcome clean =
      solve_system_3d(fs, b, cfg, MachineModel::cori_haswell());

  // Same solve under a randomly drawn combination of delivery faults, a
  // crash schedule, and a fuzzed schedule-exploration policy. The whole
  // point of the two-ledger design (and of the commit fence under policy
  // grant orders) is that none of this can touch the clean ledger: solution
  // bits, clean fingerprint and message counts must match the fault-free
  // FIFO run for every sampled config.
  cfg.run.schedule = c.policy;
  cfg.run.schedule_seed = c.schedule_seed;
  cfg.run.priority_points = c.priority_points;
  cfg.run.delay_budget = c.delay_budget;
  MachineModel m = MachineModel::cori_haswell();
  std::mt19937_64 knobs(c.seed ^ 0xC7A5);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  m.perturb.drop_prob = 0.10 * u01(knobs);
  m.perturb.dup_prob = 0.05 * u01(knobs);
  m.perturb.corrupt_prob = 0.02 * u01(knobs);
  m.perturb.reorder_prob = 0.05 * u01(knobs);
  m.perturb.reorder_window = 5e-6;
  const int nranks = c.shape.px * c.shape.py * c.shape.pz;
  const int victim = nranks > 1 ? 1 + static_cast<int>(knobs() %
                                      static_cast<std::uint64_t>(nranks - 1))
                                : -1;
  if (victim >= 0) {
    // Mid-solve on the victim's own clock; recoverable (one crash, a live
    // buddy, spares available).
    const double t =
        (0.25 + 0.5 * u01(knobs)) *
        clean.run_stats.ranks[static_cast<size_t>(victim)].vtime;
    m.perturb.crashes.push_back({victim, t});
  }
  const DistSolveOutcome faulty = solve_system_3d(fs, b, cfg, m);

  ASSERT_EQ(clean.x.size(), faulty.x.size());
  for (size_t i = 0; i < clean.x.size(); ++i) {
    ASSERT_EQ(std::memcmp(&clean.x[i], &faulty.x[i], sizeof(Real)), 0)
        << "solution bit " << i << " moved under faults";
  }
  EXPECT_EQ(clean.run_stats.fingerprint(), faulty.run_stats.fingerprint());
  EXPECT_DOUBLE_EQ(clean.run_stats.makespan(), faulty.run_stats.makespan());
  if (victim >= 0) {
    EXPECT_GE(faulty.run_stats.recovery_stats().crashes, 1);
    EXPECT_GT(faulty.run_stats.fault_makespan(), faulty.run_stats.makespan());
  }
}

TEST_P(ConfigFuzzTest, CleanLedgerInvariantUnderElasticDegradation) {
  const FuzzCase& c = GetParam();
  const CsrMatrix a = make_grid2d(14, 14, Stencil2d::kNinePoint, {.seed = c.seed});

  AnalyzeOptions aopt;
  aopt.nd.levels = c.nd_levels;
  aopt.supernode.max_width = c.max_width;
  aopt.supernode.relax_width = c.relax;
  const FactoredSystem fs = analyze_and_factor(a, aopt);

  const std::vector<Real> b = test::random_rhs(a.rows(), c.nrhs, c.seed ^ 1);

  SolveConfig cfg;
  cfg.shape = c.shape;
  cfg.algorithm = c.alg;
  cfg.nrhs = c.nrhs;
  cfg.run = RunOptions{.deterministic = true, .seed = c.seed};
  const DistSolveOutcome clean =
      solve_system_3d(fs, b, cfg, MachineModel::cori_haswell());

  // The harshest sampled regime: an empty spare pool with elastic degrade
  // armed, delivery faults, an explicit mid-solve death, a Poisson crash
  // MTBF on top, and an SDC stream corrected by ABFT. Whatever fires, the
  // only legitimate terminal verdict is kNoSurvivors (the survivor quorum
  // genuinely ran out); a completed run must match the fault-free twin bit
  // for bit on the clean ledger.
  cfg.run.degrade = true;
  cfg.run.abft = true;
  MachineModel m = MachineModel::cori_haswell();
  m.recovery.spare_ranks = 0;
  std::mt19937_64 knobs(c.seed ^ 0xDE64);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  m.perturb.drop_prob = 0.10 * u01(knobs);
  m.perturb.dup_prob = 0.05 * u01(knobs);
  m.perturb.corrupt_prob = 0.02 * u01(knobs);
  m.perturb.reorder_prob = 0.05 * u01(knobs);
  m.perturb.reorder_window = 5e-6;
  m.perturb.sdc_rate = 2e4 * u01(knobs);
  // Rare extra deaths beyond the scheduled one (expected << 1 per rank).
  m.perturb.crash_mtbf = (4.0 + 8.0 * u01(knobs)) * clean.run_stats.makespan();
  // Elastic re-expansion layer: a Poisson repair stream that may return
  // dead nodes mid-solve, and (every other case) load-aware rebalancing
  // splitting a victim's partitions across the least-loaded survivors.
  // Neither may leave a trace on the clean ledger.
  m.perturb.repair_mtbf = (0.5 + 2.0 * u01(knobs)) * clean.run_stats.makespan();
  m.perturb.repair_max_per_rank = 1 + static_cast<int>(knobs() % 3);
  if (knobs() % 2 == 0) m.recovery.rebalance_fanout = 1 + static_cast<int>(knobs() % 3);
  const int nranks = c.shape.px * c.shape.py * c.shape.pz;
  const int victim = nranks > 1 ? 1 + static_cast<int>(knobs() %
                                      static_cast<std::uint64_t>(nranks - 1))
                                : -1;
  if (victim >= 0) {
    const double t =
        (0.25 + 0.5 * u01(knobs)) *
        clean.run_stats.ranks[static_cast<size_t>(victim)].vtime;
    m.perturb.crashes.push_back({victim, t});
  }
  try {
    const DistSolveOutcome faulty = solve_system_3d(fs, b, cfg, m);
    ASSERT_EQ(clean.x.size(), faulty.x.size());
    for (size_t i = 0; i < clean.x.size(); ++i) {
      ASSERT_EQ(std::memcmp(&clean.x[i], &faulty.x[i], sizeof(Real)), 0)
          << "solution bit " << i << " moved under elastic degradation";
    }
    EXPECT_EQ(clean.run_stats.fingerprint(), faulty.run_stats.fingerprint());
    EXPECT_DOUBLE_EQ(clean.run_stats.makespan(), faulty.run_stats.makespan());
    EXPECT_EQ(faulty.run_stats.recovery_stats().spares_used, 0);
    if (victim >= 0) {
      // The scheduled death had no spare: it must have degraded.
      EXPECT_GE(faulty.run_stats.degradation_stats().degrades, 1);
      EXPECT_GE(faulty.run_stats.degradation_stats().ranks_lost, 1);
      EXPECT_GT(faulty.run_stats.fault_makespan(), faulty.run_stats.makespan());
    }
  } catch (const FaultError& fe) {
    // Only a genuinely exhausted survivor quorum may be terminal here —
    // never a spare-pool or buddy verdict, which degrade absorbs.
    EXPECT_EQ(fe.report.kind, FaultKind::kNoSurvivors) << fe.report.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConfigFuzzTest, ::testing::ValuesIn(make_cases()),
                         [](const auto& info) { return info.param.name; });

/// Invalid schedule-knob combinations must be rejected before any rank
/// thread spawns, with std::invalid_argument naming the problem — never an
/// assert, a hang, or a misattributed FaultReport.
TEST(ScheduleKnobValidation, PolicyWithoutDeterministicModeThrows) {
  RunOptions o;
  o.deterministic = false;
  o.schedule = SchedulePolicy::kRandomPriority;
  EXPECT_THROW(Cluster::run(2, test::test_machine(), [](Comm&) {}, o),
               std::invalid_argument);
}

TEST(ScheduleKnobValidation, ReplayWithoutDeterministicModeThrows) {
  ScheduleCertificate cert;
  RunOptions o;
  o.deterministic = false;
  o.replay_schedule = &cert;
  EXPECT_THROW(Cluster::run(2, test::test_machine(), [](Comm&) {}, o),
               std::invalid_argument);
}

TEST(ScheduleKnobValidation, NegativeKnobsThrow) {
  RunOptions o{.deterministic = true};
  o.priority_points = -1;
  EXPECT_THROW(Cluster::run(2, test::test_machine(), [](Comm&) {}, o),
               std::invalid_argument);
  o.priority_points = 2;
  o.delay_budget = -3;
  EXPECT_THROW(Cluster::run(2, test::test_machine(), [](Comm&) {}, o),
               std::invalid_argument);
}

TEST(ScheduleKnobValidation, ReplayGrantOutOfRangeThrows) {
  ScheduleCertificate cert;
  cert.grants = {0, 1, 7};  // rank 7 does not exist in a world of 2
  RunOptions o{.deterministic = true};
  o.replay_schedule = &cert;
  EXPECT_THROW(Cluster::run(2, test::test_machine(), [](Comm&) {}, o),
               std::invalid_argument);
}

TEST(ScheduleKnobValidation, CertificateParseRejectsMalformedText) {
  EXPECT_THROW(ScheduleCertificate::parse(""), std::invalid_argument);
  EXPECT_THROW(ScheduleCertificate::parse("bogus 0 0"), std::invalid_argument);
  EXPECT_THROW(ScheduleCertificate::parse("fifo 0 3 1 2"), std::invalid_argument);
  EXPECT_THROW(ScheduleCertificate::parse("fifo 0 1 2 junk"), std::invalid_argument);
  const ScheduleCertificate c = ScheduleCertificate::parse("random_priority 42 3 0 1 0");
  EXPECT_EQ(c.policy, SchedulePolicy::kRandomPriority);
  EXPECT_EQ(c.seed, 42u);
  EXPECT_EQ(c.grants, (std::vector<std::int32_t>{0, 1, 0}));
  EXPECT_EQ(ScheduleCertificate::parse(c.to_string()).to_string(), c.to_string());
}

}  // namespace
}  // namespace sptrsv
