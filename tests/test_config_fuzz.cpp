#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "core/sptrsv3d.hpp"
#include "factor/sptrsv_seq.hpp"
#include "sparse/generators.hpp"

namespace sptrsv {
namespace {

/// Randomized sweep over the pipeline's configuration space: supernode
/// width caps, relaxation, ND depth, grid shapes, algorithms, and RHS
/// counts, all checked against the sequential solver. Catches interactions
/// (e.g. scalar supernodes with wide grids, deep trees with tiny leaves)
/// that the targeted tests do not.

struct FuzzCase {
  std::uint64_t seed;
  Idx max_width;
  Idx relax;
  int nd_levels;
  Grid3dShape shape;
  Algorithm3d alg;
  Idx nrhs;
  std::string name;
};

std::vector<FuzzCase> make_cases() {
  std::vector<FuzzCase> cases;
  std::mt19937_64 rng(0xF00D);
  const std::vector<Grid3dShape> shapes{{1, 1, 2}, {2, 1, 4}, {1, 3, 2},
                                        {2, 2, 2}, {3, 2, 1}, {1, 1, 8}};
  for (int i = 0; i < 12; ++i) {
    FuzzCase c;
    c.seed = rng();
    c.max_width = std::uniform_int_distribution<Idx>(1, 40)(rng);
    c.relax = std::uniform_int_distribution<Idx>(0, 12)(rng);
    c.nd_levels = std::uniform_int_distribution<int>(3, 4)(rng);
    c.shape = shapes[static_cast<size_t>(
        std::uniform_int_distribution<int>(0, static_cast<int>(shapes.size()) - 1)(rng))];
    c.alg = (i % 2 == 0) ? Algorithm3d::kProposed : Algorithm3d::kBaseline;
    c.nrhs = std::uniform_int_distribution<Idx>(1, 3)(rng);
    c.name = "case" + std::to_string(i) + "_w" + std::to_string(c.max_width) + "_r" +
             std::to_string(c.relax) + "_p" + std::to_string(c.shape.px) + "x" +
             std::to_string(c.shape.py) + "x" + std::to_string(c.shape.pz) +
             (c.alg == Algorithm3d::kProposed ? "_new" : "_base");
    cases.push_back(std::move(c));
  }
  return cases;
}

class ConfigFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(ConfigFuzzTest, DistributedMatchesSequential) {
  const FuzzCase& c = GetParam();
  const CsrMatrix a = make_grid2d(14, 14, Stencil2d::kNinePoint, {.seed = c.seed});

  AnalyzeOptions aopt;
  aopt.nd.levels = c.nd_levels;
  aopt.supernode.max_width = c.max_width;
  aopt.supernode.relax_width = c.relax;
  const FactoredSystem fs = analyze_and_factor(a, aopt);

  std::mt19937_64 rng(c.seed ^ 1);
  std::uniform_real_distribution<Real> uni(-1.0, 1.0);
  std::vector<Real> b(static_cast<size_t>(a.rows()) * c.nrhs);
  for (auto& v : b) v = uni(rng);

  SolveConfig cfg;
  cfg.shape = c.shape;
  cfg.algorithm = c.alg;
  cfg.nrhs = c.nrhs;
  const DistSolveOutcome out = solve_system_3d(fs, b, cfg, MachineModel::cori_haswell());
  const auto ref = solve_system_seq(fs, b, c.nrhs);
  Real worst = 0;
  for (size_t i = 0; i < ref.size(); ++i) {
    worst = std::max(worst, std::abs(out.x[i] - ref[i]));
  }
  EXPECT_LT(worst, 1e-9);
}

TEST_P(ConfigFuzzTest, CleanLedgerInvariantUnderCrashAndDeliveryFaults) {
  const FuzzCase& c = GetParam();
  const CsrMatrix a = make_grid2d(14, 14, Stencil2d::kNinePoint, {.seed = c.seed});

  AnalyzeOptions aopt;
  aopt.nd.levels = c.nd_levels;
  aopt.supernode.max_width = c.max_width;
  aopt.supernode.relax_width = c.relax;
  const FactoredSystem fs = analyze_and_factor(a, aopt);

  std::mt19937_64 rng(c.seed ^ 1);
  std::uniform_real_distribution<Real> uni(-1.0, 1.0);
  std::vector<Real> b(static_cast<size_t>(a.rows()) * c.nrhs);
  for (auto& v : b) v = uni(rng);

  SolveConfig cfg;
  cfg.shape = c.shape;
  cfg.algorithm = c.alg;
  cfg.nrhs = c.nrhs;
  cfg.run = RunOptions{.deterministic = true, .seed = c.seed};
  const DistSolveOutcome clean =
      solve_system_3d(fs, b, cfg, MachineModel::cori_haswell());

  // Same solve under a randomly drawn combination of delivery faults and a
  // crash schedule. The whole point of the two-ledger design is that none of
  // this can touch the clean ledger: solution bits, clean fingerprint and
  // message counts must match the fault-free run for every sampled config.
  MachineModel m = MachineModel::cori_haswell();
  std::mt19937_64 knobs(c.seed ^ 0xC7A5);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  m.perturb.drop_prob = 0.10 * u01(knobs);
  m.perturb.dup_prob = 0.05 * u01(knobs);
  m.perturb.corrupt_prob = 0.02 * u01(knobs);
  m.perturb.reorder_prob = 0.05 * u01(knobs);
  m.perturb.reorder_window = 5e-6;
  const int nranks = c.shape.px * c.shape.py * c.shape.pz;
  const int victim = nranks > 1 ? 1 + static_cast<int>(knobs() %
                                      static_cast<std::uint64_t>(nranks - 1))
                                : -1;
  if (victim >= 0) {
    // Mid-solve on the victim's own clock; recoverable (one crash, a live
    // buddy, spares available).
    const double t =
        (0.25 + 0.5 * u01(knobs)) *
        clean.run_stats.ranks[static_cast<size_t>(victim)].vtime;
    m.perturb.crashes.push_back({victim, t});
  }
  const DistSolveOutcome faulty = solve_system_3d(fs, b, cfg, m);

  ASSERT_EQ(clean.x.size(), faulty.x.size());
  for (size_t i = 0; i < clean.x.size(); ++i) {
    ASSERT_EQ(std::memcmp(&clean.x[i], &faulty.x[i], sizeof(Real)), 0)
        << "solution bit " << i << " moved under faults";
  }
  EXPECT_EQ(clean.run_stats.fingerprint(), faulty.run_stats.fingerprint());
  EXPECT_DOUBLE_EQ(clean.run_stats.makespan(), faulty.run_stats.makespan());
  if (victim >= 0) {
    EXPECT_GE(faulty.run_stats.recovery_stats().crashes, 1);
    EXPECT_GT(faulty.run_stats.fault_makespan(), faulty.run_stats.makespan());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConfigFuzzTest, ::testing::ValuesIn(make_cases()),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace sptrsv
