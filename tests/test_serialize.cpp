#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "core/sptrsv3d.hpp"
#include "factor/serialize.hpp"
#include "factor/sptrsv_seq.hpp"
#include "sparse/paper_matrices.hpp"

namespace sptrsv {
namespace {

FactoredSystem make_system() {
  return analyze_and_factor(
      make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny), 2);
}

TEST(Serialize, RoundTripPreservesSolves) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = make_system();

  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  save_factored_system(stream, fs);
  const FactoredSystem loaded = load_factored_system(stream);

  EXPECT_EQ(loaded.perm, fs.perm);
  EXPECT_EQ(loaded.lu.num_supernodes(), fs.lu.num_supernodes());
  EXPECT_EQ(loaded.tree.levels(), fs.tree.levels());

  std::mt19937_64 rng(3);
  std::uniform_real_distribution<Real> uni(-1.0, 1.0);
  std::vector<Real> b(static_cast<size_t>(a.rows()));
  for (auto& v : b) v = uni(rng);
  const auto x_orig = solve_system_seq(fs, b);
  const auto x_loaded = solve_system_seq(loaded, b);
  for (size_t i = 0; i < x_orig.size(); ++i) {
    EXPECT_DOUBLE_EQ(x_orig[i], x_loaded[i]);  // bitwise-identical factors
  }
}

TEST(Serialize, LoadedSystemRunsDistributedSolve) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  save_factored_system(stream, make_system());
  const FactoredSystem loaded = load_factored_system(stream);

  std::vector<Real> b(static_cast<size_t>(a.rows()), 1.0);
  SolveConfig cfg;
  cfg.shape = {2, 2, 4};
  const auto out = solve_system_3d(loaded, b, cfg, MachineModel::cori_haswell());
  EXPECT_LT(relative_residual(a, out.x, b), 1e-10);
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  stream << "not a factored system at all";
  EXPECT_THROW(load_factored_system(stream), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedStream) {
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  save_factored_system(full, make_system());
  const std::string bytes = full.str();
  std::stringstream cut(std::ios::in | std::ios::out | std::ios::binary);
  cut << bytes.substr(0, bytes.size() / 2);
  EXPECT_THROW(load_factored_system(cut), std::runtime_error);
}

TEST(Serialize, RejectsCorruptInterior) {
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  save_factored_system(full, make_system());
  std::string bytes = full.str();
  // Flip bytes in the symbolic region (after the header + perm).
  for (size_t i = 200; i < 240 && i < bytes.size(); ++i) bytes[i] ^= 0x5A;
  std::stringstream corrupt(std::ios::in | std::ios::out | std::ios::binary);
  corrupt << bytes;
  EXPECT_THROW(load_factored_system(corrupt), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  const FactoredSystem fs = make_system();
  const std::string path = "/tmp/sptrsv_serialize_test.bin";
  save_factored_system_file(path, fs);
  const FactoredSystem loaded = load_factored_system_file(path);
  EXPECT_EQ(loaded.lu.n(), fs.lu.n());
  std::remove(path.c_str());
  EXPECT_THROW(load_factored_system_file("/nonexistent/x.bin"), std::runtime_error);
}

}  // namespace
}  // namespace sptrsv
