#include <gtest/gtest.h>

#include "dist/solve_plan.hpp"
#include "sparse/paper_matrices.hpp"

namespace sptrsv {
namespace {

FactoredSystem make_system(int nd_levels = 3) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  return analyze_and_factor(a, nd_levels);
}

TEST(Layout, OwnerArithmetic) {
  const Grid2dShape g{3, 4};
  EXPECT_EQ(g.size(), 12);
  EXPECT_EQ(g.rank_of(2, 3), 11);
  EXPECT_EQ(g.row_of(11), 2);
  EXPECT_EQ(g.col_of(11), 3);
  EXPECT_EQ(g.owner(7, 9), g.rank_of(7 % 3, 9 % 4));
  EXPECT_EQ(g.diag_owner(5), g.rank_of(2, 1));
}

TEST(Layout, Grid3dDecomposition) {
  const Grid3dShape s{2, 3, 4};
  EXPECT_EQ(s.size(), 24);
  EXPECT_EQ(s.z_of(13), 2);
  EXPECT_EQ(s.grid_rank_of(13), 1);
  EXPECT_EQ(s.world_rank(2, 1), 13);
}

TEST(Layout, ReplicatedNodesAlignAcrossGrids) {
  // The same global supernode id maps to the same (x,y) in every grid —
  // the alignment the sparse allreduce depends on.
  const Grid2dShape g{2, 3};
  for (Idx k = 0; k < 20; ++k) {
    EXPECT_EQ(g.diag_owner(k), g.rank_of(static_cast<int>(k % 2), static_cast<int>(k % 3)));
  }
}

TEST(TreeViewTest, MatchesCommTree) {
  // TreeView over a member list must agree with the reference CommTree.
  const std::vector<int> members{4, 0, 2, 7, 9, 11};  // root=4 first, rest asc
  for (const TreeKind kind : {TreeKind::kBinary, TreeKind::kFlat}) {
    const TreeView v({members.data(), members.size()}, kind);
    const CommTree ref = CommTree::build(kind, members, 4);
    for (const int m : members) {
      EXPECT_EQ(v.parent_of(m), ref.parent_of(m)) << "member " << m;
      std::vector<int> vc;
      v.for_each_child(m, [&](int c) { vc.push_back(c); });
      const auto rc = ref.children_of(m);
      ASSERT_EQ(vc.size(), rc.size());
      for (size_t i = 0; i < vc.size(); ++i) EXPECT_EQ(vc[i], rc[i]);
    }
    EXPECT_FALSE(v.contains(5));
    EXPECT_EQ(v.pos_of(4), 0);
  }
}

TEST(NodeSupernodeRange, CoversTreePartition) {
  const FactoredSystem fs = make_system();
  std::vector<bool> covered(static_cast<size_t>(fs.lu.num_supernodes()), false);
  for (Idx node = 0; node < fs.tree.num_nodes(); ++node) {
    const auto [lo, hi] = node_supernode_range(fs.lu.sym, fs.tree, node);
    for (Idx k = lo; k < hi; ++k) {
      EXPECT_FALSE(covered[static_cast<size_t>(k)]) << "supernode in two nodes";
      covered[static_cast<size_t>(k)] = true;
    }
  }
  for (const bool c : covered) EXPECT_TRUE(c);
}

TEST(CoarsenTree, LeafRangesSpanSubtrees) {
  const FactoredSystem fs = make_system(3);
  for (int levels = 0; levels <= 3; ++levels) {
    const NdTree c = coarsen_nd_tree(fs.tree, levels);
    EXPECT_EQ(c.levels(), levels);
    EXPECT_TRUE(c.check_invariants(fs.lu.n()));
  }
  EXPECT_THROW(coarsen_nd_tree(fs.tree, 4), std::invalid_argument);
}

TEST(GridPlan, ColsAreLeafPlusAncestors) {
  const FactoredSystem fs = make_system(2);
  const Grid2dShape shape{2, 2};
  for (Idx leaf = 0; leaf < fs.tree.num_leaves(); ++leaf) {
    const Solve2dPlan plan =
        make_grid_plan(fs.lu, fs.tree, leaf, shape, TreeKind::kBinary);
    EXPECT_TRUE(plan.external_rows().empty());
    // Every column's tree node is on the leaf's root path.
    const auto path = fs.tree.path_to_root(fs.tree.leaf_node_id(leaf));
    for (const Idx k : plan.cols()) {
      const Idx node =
          fs.tree.node_of_column(fs.lu.sym.part.first_col(k));
      EXPECT_NE(std::find(path.begin(), path.end(), node), path.end());
    }
  }
}

TEST(GridPlan, BelowPatternStaysInsidePlan) {
  // The ND path property: fill from a grid's index set never leaves it.
  const FactoredSystem fs = make_system(3);
  const Grid2dShape shape{2, 3};
  for (Idx leaf = 0; leaf < fs.tree.num_leaves(); ++leaf) {
    const Solve2dPlan plan =
        make_grid_plan(fs.lu, fs.tree, leaf, shape, TreeKind::kBinary);
    for (Idx cp = 0; cp < plan.num_cols(); ++cp) {
      const Idx k = plan.cols()[static_cast<size_t>(cp)];
      // Filtered pattern must equal the full pattern (nothing dropped).
      EXPECT_EQ(plan.below(cp).size(), fs.lu.sym.below[static_cast<size_t>(k)].size())
          << "block outside grid index set: leaf " << leaf << " supernode " << k;
    }
  }
}

TEST(NodePlan, ExternalRowsAreAncestors) {
  const FactoredSystem fs = make_system(2);
  const Grid2dShape shape{2, 2};
  const Idx leaf3 = fs.tree.leaf_node_id(3);
  const Solve2dPlan plan = make_node_plan(fs.lu, fs.tree, leaf3, shape, TreeKind::kBinary);
  const auto path = fs.tree.path_to_root(leaf3);
  for (const Idx i : plan.external_rows()) {
    const Idx node = fs.tree.node_of_column(fs.lu.sym.part.first_col(i));
    EXPECT_NE(node, leaf3);
    EXPECT_NE(std::find(path.begin(), path.end(), node), path.end());
  }
}

TEST(Plan, TreeMembersOwnBlocks) {
  const FactoredSystem fs = make_system(2);
  const Grid2dShape shape{2, 3};
  const Solve2dPlan plan = make_grid_plan(fs.lu, fs.tree, 0, shape, TreeKind::kBinary);
  for (Idx cp = 0; cp < plan.num_cols(); ++cp) {
    const Idx k = plan.cols()[static_cast<size_t>(cp)];
    const TreeView t = plan.l_bcast(cp);
    EXPECT_EQ(t.root(), shape.diag_owner(k));
    // All members sit in the diagonal owner's process column.
    for (int p = 0; p < t.size(); ++p) {
      // reconstruct members through pos queries
    }
    Idx members_with_blocks = 0;
    for (const Idx i : plan.below(cp)) {
      if (t.contains(shape.rank_of(shape.owner_row(i), shape.owner_col(k)))) {
        ++members_with_blocks;
      }
    }
    EXPECT_EQ(members_with_blocks, static_cast<Idx>(plan.below(cp).size()));
  }
}

TEST(Plan, BaselineBuildsMoreTreesThanProposed) {
  // The paper's §3.3 remark: the baseline needs broadcast/reduction trees
  // per (row/column, tree-node) pair — "three broadcast and reduction
  // trees" for the example — while the proposed algorithm needs exactly
  // one pair per row/column of the single 2D matrix L^z.
  const FactoredSystem fs = make_system(2);
  const Grid2dShape shape{2, 3};

  // Proposed: one plan per grid; count (column bcast + row reduce) lists.
  size_t proposed_trees = 0;
  for (Idx z = 0; z < fs.tree.num_leaves(); ++z) {
    const Solve2dPlan p = make_grid_plan(fs.lu, fs.tree, z, shape, TreeKind::kBinary);
    proposed_trees += static_cast<size_t>(p.num_cols() + p.num_rows());
  }
  // Baseline: one plan per tree node, again counting per-plan trees; rows
  // replicated as external targets get their own reduction trees at every
  // level — the blow-up the remark describes.
  size_t baseline_trees = 0;
  for (Idx node = 0; node < fs.tree.num_nodes(); ++node) {
    const Solve2dPlan p = make_node_plan(fs.lu, fs.tree, node, shape, TreeKind::kBinary);
    // The baseline runs each node's solve once per sharing grid... the
    // solve itself runs on one grid, but every replicated ancestor row has
    // a tree in every node plan below it.
    baseline_trees += static_cast<size_t>(p.num_cols() + p.num_rows());
  }
  EXPECT_GT(baseline_trees, proposed_trees / static_cast<size_t>(fs.tree.num_leaves()));
  // Per-grid comparison: grid 0's proposed plan vs the plans its own path
  // nodes need (leaf + ancestors): the baseline's tree count strictly
  // exceeds the proposed one because ancestor rows repeat per level.
  size_t baseline_grid0 = 0;
  for (const Idx node : fs.tree.path_to_root(fs.tree.leaf_node_id(0))) {
    const Solve2dPlan p = make_node_plan(fs.lu, fs.tree, node, shape, TreeKind::kBinary);
    baseline_grid0 += static_cast<size_t>(p.num_cols() + p.num_rows());
  }
  const Solve2dPlan g0 = make_grid_plan(fs.lu, fs.tree, 0, shape, TreeKind::kBinary);
  EXPECT_GT(baseline_grid0, static_cast<size_t>(g0.num_cols() + g0.num_rows()));
}

TEST(Plan, RejectsUnsortedCols) {
  const FactoredSystem fs = make_system(1);
  EXPECT_THROW(
      Solve2dPlan::build(fs.lu, {2, 2}, TreeKind::kBinary, {3, 1, 2}, {}),
      std::invalid_argument);
}

}  // namespace
}  // namespace sptrsv
