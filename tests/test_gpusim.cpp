#include <gtest/gtest.h>

#include "gpusim/gpu_sptrsv.hpp"
#include "sparse/paper_matrices.hpp"

namespace sptrsv {
namespace {

FactoredSystem make_system(PaperMatrix m = PaperMatrix::kS2D9pt2048, int levels = 4,
                           MatrixScale scale = MatrixScale::kTiny) {
  return analyze_and_factor(make_paper_matrix(m, scale), levels);
}

GpuSolveTimes run(const FactoredSystem& fs, int px, int pz, GpuBackend backend,
                  Idx nrhs = 1, const MachineModel& m = MachineModel::perlmutter()) {
  GpuSolveConfig cfg;
  cfg.shape = {px, 1, pz};
  cfg.backend = backend;
  cfg.nrhs = nrhs;
  return simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, m);
}

TEST(GpuModel, ExecAndFabricDerivation) {
  const auto m = MachineModel::perlmutter();
  const auto e = GpuExecModel::from_machine(m);
  EXPECT_EQ(e.sms, m.gpu_sms);
  EXPECT_DOUBLE_EQ(e.sm_flop_rate * m.gpu_sms, m.gpu_flop_rate);
  EXPECT_GT(e.task_time(1e6), e.task_overhead);

  const auto f = GpuFabric::from_machine(m);
  EXPECT_TRUE(f.same_node(0, 3));
  EXPECT_FALSE(f.same_node(3, 4));
  // Inter-node puts are far more expensive for large payloads.
  EXPECT_GT(f.put_time(0, 4, 1e6), 5 * f.put_time(0, 1, 1e6));
}

TEST(GpuSim, PhasesArePositiveAndConsistent) {
  const auto fs = make_system();
  const auto t = run(fs, 1, 4, GpuBackend::kGpu);
  EXPECT_GT(t.l_solve, 0);
  EXPECT_GT(t.u_solve, 0);
  EXPECT_GT(t.z_comm, 0);  // pz=4: allreduce happened
  EXPECT_NEAR(t.total, t.l_solve + t.z_comm + t.u_solve, 1e-12);
  EXPECT_EQ(t.l_finish.size(), 4u);
}

TEST(GpuSim, SingleGpuHasNoZComm) {
  const auto fs = make_system();
  const auto t = run(fs, 1, 1, GpuBackend::kGpu);
  EXPECT_DOUBLE_EQ(t.z_comm, 0.0);
}

TEST(GpuSim, GpuBeatsCpuBackend) {
  // The headline Fig 9-10 comparison: same task graph, GPU rates.
  const auto fs = make_system();
  for (const Idx nrhs : {Idx{1}, Idx{50}}) {
    const auto gpu = run(fs, 1, 4, GpuBackend::kGpu, nrhs);
    const auto cpu = run(fs, 1, 4, GpuBackend::kCpu, nrhs);
    EXPECT_LT(gpu.total, cpu.total) << "nrhs=" << nrhs;
  }
}

TEST(GpuSim, ManyRhsImprovesGpuEfficiency) {
  // Per-RHS GPU time must drop as nrhs grows (task overhead amortizes) —
  // the reason the paper reports higher multi-RHS throughput.
  const auto fs = make_system();
  const auto t1 = run(fs, 1, 4, GpuBackend::kGpu, 1);
  const auto t50 = run(fs, 1, 4, GpuBackend::kGpu, 50);
  EXPECT_LT(t50.total / 50.0, t1.total);
}

TEST(GpuSim, PzScalingHelpsThenSaturates) {
  // 3D scaling (Fig 9-11): going from 1 to 4 grids must speed up the
  // modeled solve of a 2D-PDE matrix. The matrix must be large enough that
  // occupancy (total work / SMs), not the DAG critical path, limits the
  // single-GPU solve — the same regime the paper's matrices are in.
  const auto fs = make_system(PaperMatrix::kS2D9pt2048, 4, MatrixScale::kSmall);
  const auto t1 = run(fs, 1, 1, GpuBackend::kGpu);
  const auto t4 = run(fs, 1, 4, GpuBackend::kGpu);
  EXPECT_LT(t4.total, t1.total);
}

TEST(GpuSim, TwoDGpuStopsScalingAcrossNodes) {
  // Fig 11's red curve: with pz=1, growing px past one node (4 GPUs on
  // Perlmutter) hits the inter-node bandwidth cliff.
  const auto fs = make_system(PaperMatrix::kS2D9pt2048, 4);
  const auto t4 = run(fs, 4, 1, GpuBackend::kGpu);   // one full node
  const auto t8 = run(fs, 8, 1, GpuBackend::kGpu);   // two nodes
  // Crossing the node boundary must not give a speedup (paper: it slows).
  EXPECT_GT(t8.total, 0.95 * t4.total);
}

TEST(GpuSim, ThreeDScalesWherePxCannot) {
  // Fig 11's thesis: at equal GPU counts, 3D (pz) placement beats 2D (px)
  // placement once the 2D layout would leave the node.
  const auto fs = make_system(PaperMatrix::kS2D9pt2048, 4);
  const auto via_px = run(fs, 8, 1, GpuBackend::kGpu);   // 8 GPUs, 2D
  const auto via_pz = run(fs, 1, 8, GpuBackend::kGpu);   // 8 GPUs, 3D
  EXPECT_LT(via_pz.total, via_px.total);
}

TEST(GpuSim, MoreSmsNeverSlower) {
  const auto fs = make_system();
  MachineModel few = MachineModel::perlmutter();
  MachineModel many = few;
  few.gpu_sms = 4;
  few.gpu_flop_rate = 4 * (many.gpu_flop_rate / many.gpu_sms);  // same per-SM rate
  const auto t_few = run(fs, 1, 2, GpuBackend::kGpu, 1, few);
  const auto t_many = run(fs, 1, 2, GpuBackend::kGpu, 1, many);
  EXPECT_LE(t_many.total, t_few.total * 1.0001);
}

TEST(GpuSim, CrusherForbidsMultiGpuGrids) {
  const auto fs = make_system();
  GpuSolveConfig cfg;
  cfg.shape = {2, 1, 2};
  EXPECT_THROW(simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, MachineModel::crusher()),
               std::invalid_argument);
  cfg.shape = {1, 1, 2};  // allowed
  EXPECT_NO_THROW(simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, MachineModel::crusher()));
}

TEST(GpuSim, InvalidShapesThrow) {
  const auto fs = make_system();
  GpuSolveConfig cfg;
  cfg.shape = {1, 2, 2};  // py != 1
  EXPECT_THROW(simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, MachineModel::perlmutter()),
               std::invalid_argument);
  cfg.shape = {1, 1, 3};  // not a power of two
  EXPECT_THROW(simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, MachineModel::perlmutter()),
               std::invalid_argument);
  cfg.shape = {1, 1, 32};  // deeper than the tracked tree (levels=4)
  EXPECT_THROW(simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, MachineModel::perlmutter()),
               std::invalid_argument);
}

TEST(GpuSim, PerlmutterFasterThanCrusherGpu) {
  // The paper reports much higher CPU-GPU speedups on Perlmutter than on
  // Crusher; at equal layouts the Perlmutter model must be faster.
  const auto fs = make_system();
  const auto pm = run(fs, 1, 4, GpuBackend::kGpu, 1, MachineModel::perlmutter());
  const auto cr = run(fs, 1, 4, GpuBackend::kGpu, 1, MachineModel::crusher());
  EXPECT_LT(pm.total, cr.total);
}

TEST(GpuSim, TwoKernelNeverSlowerThanResidentSpin) {
  // The paper's WAIT+SOLVE design exists to stop spinning blocks from
  // holding SMs; under the same concurrency budget it can only help.
  const auto fs = make_system(PaperMatrix::kS2D9pt2048, 4, MatrixScale::kSmall);
  for (const auto& [px, pz] : {std::pair{1, 1}, std::pair{4, 1}, std::pair{2, 4}}) {
    GpuSolveConfig cfg;
    cfg.shape = {px, 1, pz};
    cfg.schedule = GpuScheduleMode::kResidentSpin;
    const auto naive = simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, MachineModel::perlmutter());
    cfg.schedule = GpuScheduleMode::kTwoKernel;
    const auto two = simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, MachineModel::perlmutter());
    EXPECT_LE(two.total, naive.total * 1.0001) << px << "x" << pz;
  }
}

TEST(GpuSim, SchedulesAgreeWhenSlotsAreAbundant) {
  // With more slots than block columns, holding a slot while spinning
  // costs nothing: the two disciplines must coincide.
  const auto fs = make_system();  // tiny matrix
  MachineModel m = MachineModel::perlmutter();
  m.gpu_sms = 100000;
  GpuSolveConfig cfg;
  cfg.shape = {1, 1, 2};
  cfg.schedule = GpuScheduleMode::kResidentSpin;
  const auto naive = simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, m);
  cfg.schedule = GpuScheduleMode::kTwoKernel;
  const auto two = simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, m);
  EXPECT_NEAR(naive.total, two.total, 1e-12);
}

TEST(GpuSim, DeterministicAcrossRuns) {
  const auto fs = make_system();
  const auto a = run(fs, 2, 4, GpuBackend::kGpu);
  const auto b = run(fs, 2, 4, GpuBackend::kGpu);
  EXPECT_DOUBLE_EQ(a.total, b.total);
  EXPECT_DOUBLE_EQ(a.l_solve, b.l_solve);
}

}  // namespace
}  // namespace sptrsv
