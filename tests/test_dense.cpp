#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "factor/dense.hpp"

namespace sptrsv {
namespace {

std::vector<Real> random_matrix(Idx m, Idx n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<Real> uni(-1.0, 1.0);
  std::vector<Real> a(static_cast<size_t>(m) * n);
  for (auto& v : a) v = uni(rng);
  return a;
}

/// Well-conditioned square matrix: random + n on the diagonal.
std::vector<Real> random_dd(Idx n, std::uint64_t seed) {
  auto a = random_matrix(n, n, seed);
  for (Idx i = 0; i < n; ++i) a[static_cast<size_t>(i) * n + i] += n;
  return a;
}

std::vector<Real> matmul(Idx m, Idx k, Idx n, const std::vector<Real>& a,
                         const std::vector<Real>& b) {
  std::vector<Real> c(static_cast<size_t>(m) * n, 0.0);
  gemm_plus(m, k, n, a, b, c);
  return c;
}

TEST(Dense, GemmMinusMatchesNaive) {
  const Idx m = 5, k = 4, n = 3;
  const auto a = random_matrix(m, k, 1);
  const auto b = random_matrix(k, n, 2);
  auto c = random_matrix(m, n, 3);
  const auto c0 = c;
  gemm_minus(m, k, n, a, b, c);
  for (Idx j = 0; j < n; ++j) {
    for (Idx i = 0; i < m; ++i) {
      Real acc = c0[static_cast<size_t>(j) * m + i];
      for (Idx p = 0; p < k; ++p) {
        acc -= a[static_cast<size_t>(p) * m + i] * b[static_cast<size_t>(j) * k + p];
      }
      EXPECT_NEAR(c[static_cast<size_t>(j) * m + i], acc, 1e-13);
    }
  }
}

TEST(Dense, GemmPlusUndoesGemmMinus) {
  const Idx m = 6, k = 6, n = 2;
  const auto a = random_matrix(m, k, 4);
  const auto b = random_matrix(k, n, 5);
  auto c = random_matrix(m, n, 6);
  const auto c0 = c;
  gemm_minus(m, k, n, a, b, c);
  gemm_plus(m, k, n, a, b, c);
  EXPECT_LT(frob_diff(c, c0), 1e-12);
}

TEST(Dense, GemmLdUpdatesEmbeddedBlock) {
  // C is a 3x2 block at row offset 1 inside a 6-row panel.
  const Idx m = 3, k = 2, n = 2, ldc = 6;
  const auto a = random_matrix(m, k, 7);
  const auto b = random_matrix(k, n, 8);
  std::vector<Real> panel(static_cast<size_t>(ldc) * n, 1.0);
  std::vector<Real> expect = panel;
  gemm_minus_ld(m, k, n, a, m, b, k, std::span<Real>(panel).subspan(1), ldc);
  for (Idx j = 0; j < n; ++j) {
    for (Idx i = 0; i < m; ++i) {
      Real acc = 1.0;
      for (Idx p = 0; p < k; ++p) {
        acc -= a[static_cast<size_t>(p) * m + i] * b[static_cast<size_t>(j) * k + p];
      }
      expect[static_cast<size_t>(j) * ldc + 1 + i] = acc;
    }
  }
  EXPECT_LT(frob_diff(panel, expect), 1e-13);
}

TEST(Dense, LuFactorizationReconstructs) {
  const Idx n = 8;
  const auto a0 = random_dd(n, 11);
  auto lu = a0;
  ASSERT_TRUE(lu_unpivoted_inplace(n, lu));
  // Rebuild L (unit lower) and U (upper) and multiply.
  std::vector<Real> l(static_cast<size_t>(n) * n, 0.0), u(static_cast<size_t>(n) * n, 0.0);
  for (Idx j = 0; j < n; ++j) {
    l[static_cast<size_t>(j) * n + j] = 1.0;
    for (Idx i = 0; i < n; ++i) {
      if (i > j) {
        l[static_cast<size_t>(j) * n + i] = lu[static_cast<size_t>(j) * n + i];
      } else {
        u[static_cast<size_t>(j) * n + i] = lu[static_cast<size_t>(j) * n + i];
      }
    }
  }
  const auto prod = matmul(n, n, n, l, u);
  EXPECT_LT(frob_diff(prod, a0), 1e-10);
}

TEST(Dense, LuDetectsZeroPivot) {
  std::vector<Real> a = {0.0, 1.0, 1.0, 0.0};  // 2x2 antidiagonal
  EXPECT_FALSE(lu_unpivoted_inplace(2, a));
}

TEST(Dense, InvertUnitLower) {
  const Idx n = 7;
  auto lu = random_dd(n, 21);
  ASSERT_TRUE(lu_unpivoted_inplace(n, lu));
  std::vector<Real> linv(static_cast<size_t>(n) * n);
  invert_unit_lower(n, lu, linv);
  // L * Linv == I.
  std::vector<Real> l(static_cast<size_t>(n) * n, 0.0);
  for (Idx j = 0; j < n; ++j) {
    l[static_cast<size_t>(j) * n + j] = 1.0;
    for (Idx i = j + 1; i < n; ++i) l[static_cast<size_t>(j) * n + i] = lu[static_cast<size_t>(j) * n + i];
  }
  const auto prod = matmul(n, n, n, l, linv);
  std::vector<Real> eye(static_cast<size_t>(n) * n, 0.0);
  for (Idx i = 0; i < n; ++i) eye[static_cast<size_t>(i) * n + i] = 1.0;
  EXPECT_LT(frob_diff(prod, eye), 1e-11);
}

TEST(Dense, InvertUpper) {
  const Idx n = 7;
  auto lu = random_dd(n, 22);
  ASSERT_TRUE(lu_unpivoted_inplace(n, lu));
  std::vector<Real> uinv(static_cast<size_t>(n) * n);
  invert_upper(n, lu, uinv);
  std::vector<Real> u(static_cast<size_t>(n) * n, 0.0);
  for (Idx j = 0; j < n; ++j) {
    for (Idx i = 0; i <= j; ++i) u[static_cast<size_t>(j) * n + i] = lu[static_cast<size_t>(j) * n + i];
  }
  const auto prod = matmul(n, n, n, u, uinv);
  std::vector<Real> eye(static_cast<size_t>(n) * n, 0.0);
  for (Idx i = 0; i < n; ++i) eye[static_cast<size_t>(i) * n + i] = 1.0;
  EXPECT_LT(frob_diff(prod, eye), 1e-11);
}

TEST(Dense, TrsmRightUpper) {
  const Idx m = 4, n = 5;
  auto lu = random_dd(n, 31);
  ASSERT_TRUE(lu_unpivoted_inplace(n, lu));
  const auto b0 = random_matrix(m, n, 32);
  auto x = b0;
  trsm_right_upper(m, n, lu, x);
  // X * U should equal B.
  std::vector<Real> u(static_cast<size_t>(n) * n, 0.0);
  for (Idx j = 0; j < n; ++j) {
    for (Idx i = 0; i <= j; ++i) u[static_cast<size_t>(j) * n + i] = lu[static_cast<size_t>(j) * n + i];
  }
  const auto prod = matmul(m, n, n, x, u);
  EXPECT_LT(frob_diff(prod, b0), 1e-11);
}

TEST(Dense, TrsmLeftUnitLower) {
  const Idx n = 5, m = 3;
  auto lu = random_dd(n, 41);
  ASSERT_TRUE(lu_unpivoted_inplace(n, lu));
  const auto b0 = random_matrix(n, m, 42);
  auto x = b0;
  trsm_left_unit_lower(n, m, lu, x);
  std::vector<Real> l(static_cast<size_t>(n) * n, 0.0);
  for (Idx j = 0; j < n; ++j) {
    l[static_cast<size_t>(j) * n + j] = 1.0;
    for (Idx i = j + 1; i < n; ++i) l[static_cast<size_t>(j) * n + i] = lu[static_cast<size_t>(j) * n + i];
  }
  const auto prod = matmul(n, n, m, l, x);
  EXPECT_LT(frob_diff(prod, b0), 1e-11);
}

TEST(Dense, InverseConsistentWithTrsm) {
  // Multiplying by the precomputed inverse (what the solver does, per the
  // paper) must agree with the triangular solve (what factorization does).
  const Idx n = 6, m = 4;
  auto lu = random_dd(n, 51);
  ASSERT_TRUE(lu_unpivoted_inplace(n, lu));
  std::vector<Real> uinv(static_cast<size_t>(n) * n);
  invert_upper(n, lu, uinv);

  const auto b0 = random_matrix(m, n, 52);
  auto via_trsm = b0;
  trsm_right_upper(m, n, lu, via_trsm);
  std::vector<Real> via_inv(static_cast<size_t>(m) * n, 0.0);
  gemm_plus(m, n, n, b0, uinv, via_inv);
  EXPECT_LT(frob_diff(via_trsm, via_inv), 1e-10);
}

}  // namespace
}  // namespace sptrsv
