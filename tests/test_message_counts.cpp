#include <gtest/gtest.h>

#include "comm/sparse_allreduce.hpp"
#include "core/sptrsv3d.hpp"
#include "factor/sptrsv_seq.hpp"
#include "ordering/etree.hpp"
#include "sparse/generators.hpp"
#include "sparse/paper_matrices.hpp"
#include "symbolic/colcounts.hpp"
#include "test_support.hpp"

namespace sptrsv {
namespace {

using test::shape_tree;
using test::test_machine;

/// The paper's complexity claims are about *message counts*, which the
/// runtime records exactly (real messages, not modeled ones). These tests
/// pin them down.

TEST(MessageCounts, SparseAllreduceIsLogPz) {
  // Algorithm 2's claim: O(log Pz) pairwise sends per process, everything
  // packed. Exactly: a grid sends at most 1 reduce message and receives
  // the rest; total per-rank sends <= 2 * levels.
  for (int levels = 1; levels <= 5; ++levels) {
    const NdTree tree = shape_tree(levels);
    const auto res =
        Cluster::run(tree.num_leaves(), test_machine(), [&](Comm& c) {
          std::vector<std::vector<Real>> storage;
          std::vector<ReduceSegment> segs;
          for (Idx id : tree.path_to_root(tree.leaf_node_id(c.rank()))) {
            if (tree.node(id).depth >= tree.levels()) continue;
            auto& buf = storage.emplace_back(8, 1.0);
            segs.push_back({id, buf});
          }
          sparse_allreduce(c, tree, segs);
        });
    for (const auto& r : res.ranks) {
      EXPECT_LE(r.messages[static_cast<int>(TimeCategory::kZComm)], 2 * levels)
          << "levels " << levels;
    }
  }
}

TEST(MessageCounts, BinaryTreeBoundsRootFanout) {
  // [29]'s point: with flat fan-out a diagonal owner serializes O(Px)
  // sends for its supernode's broadcast; the binary tree caps the root at
  // 2 and spreads the rest over relays. Measure the root's actual sends:
  // dense 13x13 matrix, scalar supernodes, 13x1 grid — rank 0 is the
  // diagonal owner of column 0 only, whose broadcast tree spans all ranks.
  const CsrMatrix a = make_banded(13, 12);  // dense
  const auto parent = elimination_tree(a);
  const auto counts = cholesky_col_counts(a, parent);
  SupernodeOptions opt;
  opt.max_width = 1;
  opt.relax_width = 0;
  const SupernodalLU lu =
      factor_supernodal(a, block_symbolic(a, find_supernodes(parent, counts, opt)));

  auto root_sends = [&](TreeKind kind) {
    std::vector<Idx> cols(13);
    for (Idx k = 0; k < 13; ++k) cols[static_cast<size_t>(k)] = k;
    const Solve2dPlan plan = Solve2dPlan::build(lu, {13, 1}, kind, cols, {});
    std::int64_t rank0 = 0;
    Cluster::run(13, test_machine(), [&](Comm& c) {
      solve_l_2d(c, plan, {}, {}, 1, 0);
      if (c.rank() == 0) rank0 = c.messages_sent(TimeCategory::kXyComm);
    });
    return rank0;
  };
  EXPECT_EQ(root_sends(TreeKind::kFlat), 12);   // fan-out to every member
  EXPECT_LE(root_sends(TreeKind::kBinary), 2);  // two children at most
}

TEST(MessageCounts, ProposedSendsFewerZMessagesThanBaseline) {
  // §3.1+3.2: one packed exchange per level vs per-node unpacked messages
  // at every level of the baseline.
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, 3);

  // Direct harness: replicate the two exchange schemes' counts.
  // Proposed: sparse allreduce -> <= 2*log2(8) = 6 sends per rank.
  // Baseline: at step s the idle grid sends one message per remaining
  // ancestor node: sum_s |path[s..]| = 3+2+1 = 6 sends just for the
  // L phase of the deepest-idling grid, plus the U-phase mirror on the
  // owner side — strictly more total Z messages than the proposed scheme.
  const NdTree tree = coarsen_nd_tree(fs.tree, 3);
  std::int64_t proposed_total = 0;
  {
    const auto res = Cluster::run(8, test_machine(), [&](Comm& c) {
      std::vector<std::vector<Real>> storage;
      std::vector<ReduceSegment> segs;
      for (Idx id : tree.path_to_root(tree.leaf_node_id(c.rank()))) {
        if (tree.node(id).depth >= tree.levels()) continue;
        auto& buf = storage.emplace_back(4, 1.0);
        segs.push_back({id, buf});
      }
      sparse_allreduce(c, tree, segs);
    });
    for (const auto& r : res.ranks) {
      proposed_total += r.messages[static_cast<int>(TimeCategory::kZComm)];
    }
  }
  // The baseline moves the same vectors twice (L reduce + U broadcast)
  // with one message per node: count its messages analytically.
  std::int64_t baseline_total = 0;
  for (int z = 0; z < 8; ++z) {
    int s_idle = 1;
    while (s_idle <= 3 && z % (1 << s_idle) == 0) ++s_idle;
    if (z != 0) baseline_total += 3 - (s_idle - 1) + 1;  // L-phase sends
    // U-phase sends mirror from each owner.
  }
  for (int s = 3; s >= 1; --s) {
    for (int z = 0; z + (1 << (s - 1)) < 8; z += 1 << s) {
      baseline_total += 3 - s + 1;  // one message per shared node
    }
  }
  EXPECT_LT(proposed_total, baseline_total);
}

TEST(MessageCounts, ResetClockZeroesCounters) {
  Cluster::run(2, test_machine(), [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 0, {1.0, 2.0}, TimeCategory::kXyComm);
      EXPECT_EQ(c.messages_sent(TimeCategory::kXyComm), 1);
      EXPECT_EQ(c.bytes_sent(TimeCategory::kXyComm), 16);
      c.reset_clock();
      EXPECT_EQ(c.messages_sent(TimeCategory::kXyComm), 0);
      EXPECT_EQ(c.bytes_sent(TimeCategory::kXyComm), 0);
    } else {
      c.recv(0, 0);
    }
  });
}

TEST(MessageCounts, CollectivesCountModeledTreeMessages) {
  // barrier/allreduce_sum are modeled as a binomial reduce + broadcast:
  // 2*ceil(log2 P) tree messages per rank (docs/MODEL.md). The counters
  // must reflect that model — zero bytes for barrier, the full payload per
  // message for allreduce_sum; allreduce_max is a zero-cost agreement
  // primitive and counts nothing.
  const int P = 8;
  const std::int64_t tree_msgs = 6;  // 2 * ceil(log2 8)
  const std::vector<Real> payload(4, 1.0);
  const auto res = Cluster::run(P, test_machine(), [&](Comm& c) {
    c.barrier();  // accounted under kOther
    EXPECT_EQ(c.messages_sent(TimeCategory::kOther), tree_msgs);
    EXPECT_EQ(c.bytes_sent(TimeCategory::kOther), 0);
    c.allreduce_sum(payload, TimeCategory::kZComm);
    EXPECT_EQ(c.messages_sent(TimeCategory::kZComm), tree_msgs);
    EXPECT_EQ(c.bytes_sent(TimeCategory::kZComm),
              tree_msgs * static_cast<std::int64_t>(payload.size() * sizeof(Real)));
    c.allreduce_max(1.0);  // uncharged, uncounted
  });
  for (const auto& r : res.ranks) {
    EXPECT_EQ(r.messages[static_cast<int>(TimeCategory::kOther)], tree_msgs);
    EXPECT_EQ(r.messages[static_cast<int>(TimeCategory::kZComm)], tree_msgs);
    EXPECT_EQ(r.messages[static_cast<int>(TimeCategory::kXyComm)], 0);
  }
}

TEST(MessageCounts, StatsExposeCounters) {
  const auto res = Cluster::run(2, test_machine(), [](Comm& c) {
    if (c.rank() == 0) c.send(1, 0, std::vector<Real>(10, 1.0), TimeCategory::kZComm);
    if (c.rank() == 1) c.recv(0, 0);
  });
  EXPECT_EQ(res.ranks[0].messages[static_cast<int>(TimeCategory::kZComm)], 1);
  EXPECT_EQ(res.ranks[0].bytes[static_cast<int>(TimeCategory::kZComm)], 80);
  EXPECT_EQ(res.ranks[1].messages[static_cast<int>(TimeCategory::kZComm)], 0);
}

}  // namespace
}  // namespace sptrsv
