#include <gtest/gtest.h>

#include <sstream>

#include "sparse/generators.hpp"
#include "sparse/mmio.hpp"

namespace sptrsv {
namespace {

TEST(Mmio, RoundTripGeneral) {
  const CsrMatrix m = make_grid2d(4, 4, Stencil2d::kNinePoint);
  std::stringstream s;
  write_matrix_market(s, m);
  const CsrMatrix r = read_matrix_market(s);
  ASSERT_EQ(r.rows(), m.rows());
  ASSERT_EQ(r.nnz(), m.nnz());
  for (Idx i = 0; i < m.rows(); ++i) {
    const auto mv = m.row_vals(i);
    const auto rv = r.row_vals(i);
    for (size_t k = 0; k < mv.size(); ++k) EXPECT_DOUBLE_EQ(mv[k], rv[k]);
  }
}

TEST(Mmio, ReadsSymmetricExpanded) {
  std::stringstream s;
  s << "%%MatrixMarket matrix coordinate real symmetric\n"
    << "% a comment line\n"
    << "3 3 4\n"
    << "1 1 2.0\n"
    << "2 1 -1.0\n"
    << "2 2 2.0\n"
    << "3 3 2.0\n";
  const CsrMatrix m = read_matrix_market(s);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.nnz(), 5);  // (2,1) mirrored to (1,2)
  EXPECT_DOUBLE_EQ(m.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), -1.0);
  EXPECT_TRUE(m.has_symmetric_pattern());
}

TEST(Mmio, RejectsUnsupportedHeader) {
  std::stringstream s;
  s << "%%MatrixMarket matrix array real general\n1 1\n1.0\n";
  EXPECT_THROW(read_matrix_market(s), std::runtime_error);
}

TEST(Mmio, RejectsTruncatedEntries) {
  std::stringstream s;
  s << "%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1.0\n";
  EXPECT_THROW(read_matrix_market(s), std::runtime_error);
}

TEST(Mmio, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/file.mtx"), std::runtime_error);
}

}  // namespace
}  // namespace sptrsv
