#include <gtest/gtest.h>

#include <map>
#include <random>

#include "sparse/csr.hpp"
#include "test_support.hpp"

namespace sptrsv {
namespace {

/// Property fuzz of the CSR builder against a std::map reference model:
/// arbitrary triplet streams (duplicates, any order) must compress to the
/// same (row, col) -> summed-value relation, and the structural operations
/// must agree with brute force. The model generator lives in
/// test_support.hpp (shared with the solver fuzz suites).
using Model = test::CooModel;

TEST(CsrFuzz, FromCooMatchesMapModel) {
  std::mt19937_64 rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    CooMatrix coo;
    const Model m = test::random_coo_model(rng, coo);
    const CsrMatrix a = CsrMatrix::from_coo(coo);
    ASSERT_EQ(a.rows(), m.rows);
    ASSERT_EQ(a.cols(), m.cols);
    ASSERT_EQ(a.nnz(), static_cast<Nnz>(m.entries.size())) << "trial " << trial;
    for (const auto& [rc, v] : m.entries) {
      EXPECT_NEAR(a.at(rc.first, rc.second), v, 1e-12);
    }
  }
}

TEST(CsrFuzz, TransposeAgainstModel) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    CooMatrix coo;
    const Model m = test::random_coo_model(rng, coo);
    const CsrMatrix t = CsrMatrix::from_coo(coo).transposed();
    ASSERT_EQ(t.nnz(), static_cast<Nnz>(m.entries.size()));
    for (const auto& [rc, v] : m.entries) {
      EXPECT_NEAR(t.at(rc.second, rc.first), v, 1e-12);
    }
  }
}

TEST(CsrFuzz, SymmetrizeUnionAgainstModel) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    CooMatrix coo;
    Model m = test::random_coo_model(rng, coo);
    if (m.rows != m.cols) continue;  // symmetrize requires square use here
    const CsrMatrix s = CsrMatrix::from_coo(coo).symmetrized_pattern();
    // Pattern = union of entries and their transposes; values preserved.
    std::map<std::pair<Idx, Idx>, Real> expect;
    for (const auto& [rc, v] : m.entries) {
      expect[{rc.first, rc.second}] += v;
      expect.try_emplace({rc.second, rc.first}, 0.0);
    }
    ASSERT_EQ(s.nnz(), static_cast<Nnz>(expect.size())) << "trial " << trial;
    for (const auto& [rc, v] : expect) {
      EXPECT_NEAR(s.at(rc.first, rc.second), v, 1e-12);
    }
  }
}

TEST(CsrFuzz, PermutationRoundTrips) {
  std::mt19937_64 rng(4242);
  for (int trial = 0; trial < 30; ++trial) {
    CooMatrix coo;
    Model m = test::random_coo_model(rng, coo);
    if (m.rows != m.cols) continue;
    for (Idx i = 0; i < m.rows; ++i) coo.add(i, i, 1.0);  // square w/ diagonal
    const CsrMatrix a = CsrMatrix::from_coo(coo);
    std::vector<Idx> perm(static_cast<size_t>(m.rows));
    std::iota(perm.begin(), perm.end(), 0);
    std::shuffle(perm.begin(), perm.end(), rng);
    const CsrMatrix p = a.permuted_symmetric(perm);
    const CsrMatrix back = p.permuted_symmetric(invert_permutation(perm));
    ASSERT_EQ(back.nnz(), a.nnz());
    for (Idx r = 0; r < m.rows; ++r) {
      const auto av = a.row_vals(r);
      const auto bv = back.row_vals(r);
      const auto ac = a.row_cols(r);
      const auto bc = back.row_cols(r);
      for (size_t i = 0; i < av.size(); ++i) {
        EXPECT_EQ(ac[i], bc[i]);
        EXPECT_DOUBLE_EQ(av[i], bv[i]);
      }
    }
  }
}

TEST(CsrFuzz, MatvecAgainstModel) {
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    CooMatrix coo;
    const Model m = test::random_coo_model(rng, coo);
    const CsrMatrix a = CsrMatrix::from_coo(coo);
    std::uniform_real_distribution<Real> val(-1.0, 1.0);
    std::vector<Real> x(static_cast<size_t>(m.cols));
    for (auto& v : x) v = val(rng);
    std::vector<Real> y(static_cast<size_t>(m.rows));
    a.matvec(x, y);
    std::vector<Real> expect(static_cast<size_t>(m.rows), 0.0);
    for (const auto& [rc, v] : m.entries) {
      expect[static_cast<size_t>(rc.first)] += v * x[static_cast<size_t>(rc.second)];
    }
    for (Idx r = 0; r < m.rows; ++r) {
      EXPECT_NEAR(y[static_cast<size_t>(r)], expect[static_cast<size_t>(r)], 1e-12);
    }
  }
}

}  // namespace
}  // namespace sptrsv
