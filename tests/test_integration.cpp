#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <sstream>

#include "core/sptrsv3d.hpp"
#include "factor/sptrsv_seq.hpp"
#include "gpusim/gpu_sptrsv.hpp"
#include "sparse/generators.hpp"
#include "sparse/mmio.hpp"

namespace sptrsv {
namespace {

TEST(Integration, MatrixMarketToDistributedSolve) {
  // Full user pipeline: matrix -> MM text -> read back -> factor ->
  // distributed solve -> residual, as examples/custom_matrix does.
  const CsrMatrix a0 = make_grid2d(16, 16, Stencil2d::kNinePoint);
  std::stringstream file;
  write_matrix_market(file, a0);
  const CsrMatrix a = read_matrix_market(file);

  const FactoredSystem fs = analyze_and_factor(a, 2);
  std::vector<Real> ones(static_cast<size_t>(a.rows()), 1.0);
  std::vector<Real> b(static_cast<size_t>(a.rows()));
  a.matvec(ones, b);

  SolveConfig cfg;
  cfg.shape = {2, 2, 4};
  const DistSolveOutcome out = solve_system_3d(fs, b, cfg, MachineModel::perlmutter());
  for (const Real v : out.x) EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(Integration, RefactorAndResolveIsDeterministic) {
  // Same matrix, same seed, two full pipelines: bitwise-equal solutions
  // from the sequential path (the distributed path may differ in the last
  // bits because message arrival order varies).
  const CsrMatrix a = make_random_symmetric(200, 4.0, 31);
  const std::vector<Real> b(200, 1.0);
  const FactoredSystem f1 = analyze_and_factor(a, 2);
  const FactoredSystem f2 = analyze_and_factor(a, 2);
  const auto x1 = solve_system_seq(f1, b);
  const auto x2 = solve_system_seq(f2, b);
  for (size_t i = 0; i < x1.size(); ++i) EXPECT_DOUBLE_EQ(x1[i], x2[i]);
}

TEST(Integration, SolveAfterSolveReusesFactor) {
  // Time-stepper pattern: repeated distributed solves against one factor.
  const CsrMatrix a = make_grid2d(12, 12, Stencil2d::kFivePoint);
  const FactoredSystem fs = analyze_and_factor(a, 2);
  SolveConfig cfg;
  cfg.shape = {1, 2, 2};
  std::vector<Real> state(static_cast<size_t>(a.rows()), 1.0);
  for (int step = 0; step < 3; ++step) {
    const DistSolveOutcome out =
        solve_system_3d(fs, state, cfg, MachineModel::cori_haswell());
    EXPECT_LT(relative_residual(a, out.x, state), 1e-9) << "step " << step;
    state = out.x;
  }
}

TEST(Integration, CpuAndGpuModelsShareCorrectness) {
  // The GPU timing model and the threaded CPU solver consume the same
  // factor; the functional answer comes from the CPU path while the GPU
  // model prices the same plan — verify both accept the same system and
  // the timing model's work accounting is consistent with the solve flops.
  const CsrMatrix a = make_grid2d(20, 20, Stencil2d::kNinePoint);
  const FactoredSystem fs = analyze_and_factor(a, 3);

  GpuSolveConfig gcfg;
  gcfg.shape = {1, 1, 8};
  const auto t = simulate_solve_3d_gpu(fs.lu, fs.tree, gcfg, MachineModel::perlmutter());
  EXPECT_GT(t.total, 0);

  SolveConfig cfg;
  cfg.shape = {1, 1, 8};
  std::vector<Real> b(static_cast<size_t>(a.rows()), 1.0);
  const DistSolveOutcome out = solve_system_3d(fs, b, cfg, MachineModel::perlmutter());
  EXPECT_LT(relative_residual(a, out.x, b), 1e-9);
}

TEST(Integration, GpuCpuBackendAgreesWithThreadedSolver) {
  // Two independent performance models of the same CPU execution — the
  // discrete-event model (gpusim kCpu) and the threaded virtual-clock
  // solver — must agree within a small factor on 1x1xPz layouts.
  const CsrMatrix a = make_grid2d(32, 32, Stencil2d::kNinePoint);
  const FactoredSystem fs = analyze_and_factor(a, 3);
  const MachineModel m = MachineModel::perlmutter();
  for (const int pz : {1, 4, 8}) {
    GpuSolveConfig gcfg;
    gcfg.shape = {1, 1, pz};
    gcfg.backend = GpuBackend::kCpu;
    const double des = simulate_solve_3d_gpu(fs.lu, fs.tree, gcfg, m).total;

    SolveConfig cfg;
    cfg.shape = {1, 1, pz};
    std::vector<Real> b(static_cast<size_t>(a.rows()), 1.0);
    const double threaded = solve_system_3d(fs, b, cfg, m).makespan;
    EXPECT_LT(des, threaded * 3.0) << "pz=" << pz;
    EXPECT_GT(des, threaded / 3.0) << "pz=" << pz;
  }
}

TEST(Integration, LargeRankCountSmoke) {
  // 512 rank threads end-to-end (benches go to 2048).
  const CsrMatrix a = make_grid2d(24, 24, Stencil2d::kFivePoint);
  const FactoredSystem fs = analyze_and_factor(a, 3);
  SolveConfig cfg;
  cfg.shape = {8, 8, 8};  // 512 ranks
  std::vector<Real> b(static_cast<size_t>(a.rows()), 1.0);
  const DistSolveOutcome out = solve_system_3d(fs, b, cfg, MachineModel::cori_haswell());
  EXPECT_LT(relative_residual(a, out.x, b), 1e-9);
  EXPECT_EQ(out.rank_times.size(), 512u);
}

}  // namespace
}  // namespace sptrsv
