#include <gtest/gtest.h>

#include "core/sptrsv3d.hpp"
#include "factor/sptrsv_seq.hpp"
#include "gpusim/gpu_sptrsv.hpp"
#include "sparse/generators.hpp"

namespace sptrsv {
namespace {

/// Degenerate inputs through the whole pipeline: 1x1 systems, single
/// supernodes, empty patterns, more ranks than supernodes.

CsrMatrix one_by_one() {
  CooMatrix coo;
  coo.rows = coo.cols = 1;
  coo.add(0, 0, 4.0);
  return CsrMatrix::from_coo(coo);
}

TEST(EdgeCases, OneByOneSystemEndToEnd) {
  const CsrMatrix a = one_by_one();
  const FactoredSystem fs = analyze_and_factor(a, 0);
  const std::vector<Real> b{8.0};
  const auto x = solve_system_seq(fs, b);
  EXPECT_DOUBLE_EQ(x[0], 2.0);

  SolveConfig cfg;
  cfg.shape = {1, 1, 1};
  const auto out = solve_system_3d(fs, b, cfg, MachineModel::cori_haswell());
  EXPECT_DOUBLE_EQ(out.x[0], 2.0);
}

TEST(EdgeCases, MoreRanksThanSupernodes) {
  // A 3x3 grid has ~4-9 supernodes; run it on 36 ranks — most ranks own
  // nothing and must still terminate.
  const CsrMatrix a = make_grid2d(3, 3, Stencil2d::kFivePoint);
  const FactoredSystem fs = analyze_and_factor(a, 1);
  std::vector<Real> b(static_cast<size_t>(a.rows()), 1.0);
  SolveConfig cfg;
  cfg.shape = {3, 6, 2};
  const auto out = solve_system_3d(fs, b, cfg, MachineModel::cori_haswell());
  EXPECT_LT(relative_residual(a, out.x, b), 1e-10);
}

TEST(EdgeCases, DiagonalOnlyMatrixDistributed) {
  CooMatrix coo;
  coo.rows = coo.cols = 16;
  for (Idx i = 0; i < 16; ++i) coo.add(i, i, static_cast<Real>(i + 1));
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const FactoredSystem fs = analyze_and_factor(a, 2);
  std::vector<Real> b(16, 1.0);
  for (const auto alg : {Algorithm3d::kProposed, Algorithm3d::kBaseline}) {
    SolveConfig cfg;
    cfg.shape = {2, 2, 4};
    cfg.algorithm = alg;
    const auto out = solve_system_3d(fs, b, cfg, MachineModel::cori_haswell());
    EXPECT_LT(relative_residual(a, out.x, b), 1e-12);
  }
}

TEST(EdgeCases, GpuModelOnTinySystem) {
  const CsrMatrix a = make_grid2d(3, 3, Stencil2d::kFivePoint);
  const FactoredSystem fs = analyze_and_factor(a, 1);
  GpuSolveConfig cfg;
  cfg.shape = {2, 1, 2};
  const auto t = simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, MachineModel::perlmutter());
  EXPECT_GT(t.total, 0);
  EXPECT_TRUE(std::isfinite(t.total));
}

TEST(EdgeCases, ZeroRhsGivesZeroSolution) {
  const CsrMatrix a = make_grid2d(6, 6, Stencil2d::kNinePoint);
  const FactoredSystem fs = analyze_and_factor(a, 2);
  std::vector<Real> b(static_cast<size_t>(a.rows()), 0.0);
  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  const auto out = solve_system_3d(fs, b, cfg, MachineModel::cori_haswell());
  for (const Real v : out.x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(EdgeCases, SingleColumnGridMatrix) {
  // 1 x n grid: a path graph — maximal chain, minimal parallelism.
  const CsrMatrix a = make_grid2d(1, 40, Stencil2d::kFivePoint);
  const FactoredSystem fs = analyze_and_factor(a, 2);
  std::vector<Real> b(40, 1.0);
  SolveConfig cfg;
  cfg.shape = {2, 1, 4};
  const auto out = solve_system_3d(fs, b, cfg, MachineModel::cori_haswell());
  EXPECT_LT(relative_residual(a, out.x, b), 1e-10);
}

}  // namespace
}  // namespace sptrsv
