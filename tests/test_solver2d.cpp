#include <gtest/gtest.h>

#include <random>

#include "core/solver2d.hpp"
#include "factor/sptrsv_seq.hpp"
#include "sparse/paper_matrices.hpp"
#include "test_support.hpp"

namespace sptrsv {
namespace {

FactoredSystem make_system(int levels = 2) {
  return analyze_and_factor(
      make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny), levels);
}

// RHS generation and the piece scatter/gather helpers are shared with the
// differential and schedule suites via test_support.hpp.
using test::local_pieces;
using test::merge_pieces;
using test::random_rhs;

class Solver2dGridTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Solver2dGridTest, WholeMatrixLThenUMatchesSequential) {
  const auto [px, py] = GetParam();
  const FactoredSystem fs = make_system(0);  // single tracked node = whole matrix
  const Grid2dShape shape{px, py};
  const Solve2dPlan plan =
      make_grid_plan(fs.lu, fs.tree, 0, shape, TreeKind::kBinary);
  const Idx n = fs.lu.n();
  const auto b = random_rhs(n, 1, 3);

  std::vector<Real> y_dist(static_cast<size_t>(n), 0.0);
  std::vector<Real> x_dist(static_cast<size_t>(n), 0.0);
  std::mutex mu;
  Cluster::run(shape.size(), MachineModel::cori_haswell(), [&](Comm& c) {
    const VecMap b_local = local_pieces(fs.lu, plan, c.rank(), plan.cols(), b, 1);
    auto lres = solve_l_2d(c, plan, b_local, {}, 1, 0);
    auto ures = solve_u_2d(c, plan, lres.y, {}, 1, 40000);
    std::lock_guard<std::mutex> lk(mu);
    merge_pieces(fs.lu, lres.y, y_dist, 1);
    merge_pieces(fs.lu, ures.x, x_dist, 1);
  });

  std::vector<Real> y_ref(static_cast<size_t>(n)), x_ref(static_cast<size_t>(n));
  solve_l_seq(fs.lu, b, y_ref, 1);
  solve_u_seq(fs.lu, y_ref, x_ref, 1);
  for (Idx i = 0; i < n; ++i) {
    EXPECT_NEAR(y_dist[static_cast<size_t>(i)], y_ref[static_cast<size_t>(i)], 1e-10);
    EXPECT_NEAR(x_dist[static_cast<size_t>(i)], x_ref[static_cast<size_t>(i)], 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, Solver2dGridTest,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 3},
                                           std::pair{3, 1}, std::pair{2, 2},
                                           std::pair{3, 4}),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param.first) + "x" +
                                  std::to_string(info.param.second);
                         });

TEST(Solver2d, ExternalLsumMatchesManualComputation) {
  // Solve only leaf node 0's columns; the handed-back external partial sums
  // must equal L(ancestors, leaf0) * y(leaf0).
  const FactoredSystem fs = make_system(1);
  const Grid2dShape shape{2, 2};
  const Idx leaf0 = fs.tree.leaf_node_id(0);
  const Solve2dPlan plan = make_node_plan(fs.lu, fs.tree, leaf0, shape, TreeKind::kBinary);
  ASSERT_FALSE(plan.external_rows().empty());
  const Idx n = fs.lu.n();
  const auto b = random_rhs(n, 1, 5);

  std::vector<Real> y_dist(static_cast<size_t>(n), 0.0);
  std::vector<Real> lsum_dist(static_cast<size_t>(n), 0.0);
  std::mutex mu;
  Cluster::run(shape.size(), MachineModel::cori_haswell(), [&](Comm& c) {
    const VecMap b_local = local_pieces(fs.lu, plan, c.rank(), plan.cols(), b, 1);
    auto res = solve_l_2d(c, plan, b_local, {}, 1, 0);
    std::lock_guard<std::mutex> lk(mu);
    merge_pieces(fs.lu, res.y, y_dist, 1);
    merge_pieces(fs.lu, res.external_lsum, lsum_dist, 1);
  });

  // Reference: full sequential L-solve with b zeroed outside leaf 0 gives
  // the same y on leaf 0; external lsum(I) = sum_K L(I,K) y(K) over leaf
  // columns, which we recover via lsum = b_masked - L*y_ext ... simpler:
  // run the sequential solve on the masked RHS and compare the *solution*
  // of ancestor rows: y_anc = inv(L_anc) * (-lsum), so lsum = -L_anc*y_anc.
  std::vector<Real> b_masked(static_cast<size_t>(n), 0.0);
  const auto& nd = fs.tree.node(leaf0);
  for (Idx i = nd.col_begin; i < nd.col_end; ++i) {
    b_masked[static_cast<size_t>(i)] = b[static_cast<size_t>(i)];
  }
  std::vector<Real> y_ref(static_cast<size_t>(n));
  solve_l_seq(fs.lu, b_masked, y_ref, 1);
  // Leaf solution must match exactly.
  for (Idx i = nd.col_begin; i < nd.col_end; ++i) {
    EXPECT_NEAR(y_dist[static_cast<size_t>(i)], y_ref[static_cast<size_t>(i)], 1e-10);
  }
  // For external rows, y_ref satisfies L_ext*y_ext = -lsum restricted to
  // those rows... verify the equivalent forward relation instead: feeding
  // the external lsum back as lsum_in with zero b must reproduce y_ref on
  // the ancestors. Use a 1x1 grid for the check.
  const Solve2dPlan rest = Solve2dPlan::build(
      fs.lu, {1, 1}, TreeKind::kBinary,
      std::vector<Idx>(plan.external_rows().begin(), plan.external_rows().end()), {});
  std::vector<Real> y_anc(static_cast<size_t>(n), 0.0);
  Cluster::run(1, MachineModel::cori_haswell(), [&](Comm& c) {
    VecMap lsum_in = local_pieces(fs.lu, rest, 0, rest.cols(), lsum_dist, 1);
    auto res = solve_l_2d(c, rest, {}, lsum_in, 1, 0);
    merge_pieces(fs.lu, res.y, y_anc, 1);
  });
  for (const Idx k : rest.cols()) {
    const Idx base = fs.lu.sym.part.first_col(k);
    for (Idx i = 0; i < fs.lu.sym.part.width(k); ++i) {
      EXPECT_NEAR(y_anc[static_cast<size_t>(base + i)],
                  y_ref[static_cast<size_t>(base + i)], 1e-10);
    }
  }
}

TEST(Solver2d, FlatAndBinaryTreesGiveIdenticalResults) {
  const FactoredSystem fs = make_system(0);
  const Grid2dShape shape{2, 3};
  const Idx n = fs.lu.n();
  const auto b = random_rhs(n, 2, 7);
  std::vector<std::vector<Real>> results;
  for (const TreeKind kind : {TreeKind::kBinary, TreeKind::kFlat}) {
    const Solve2dPlan plan = make_grid_plan(fs.lu, fs.tree, 0, shape, kind);
    std::vector<Real> y(static_cast<size_t>(n) * 2, 0.0);
    std::mutex mu;
    Cluster::run(shape.size(), MachineModel::cori_haswell(), [&](Comm& c) {
      const VecMap b_local = local_pieces(fs.lu, plan, c.rank(), plan.cols(), b, 2);
      auto res = solve_l_2d(c, plan, b_local, {}, 2, 0);
      std::lock_guard<std::mutex> lk(mu);
      merge_pieces(fs.lu, res.y, y, 2);
    });
    results.push_back(std::move(y));
  }
  for (size_t i = 0; i < results[0].size(); ++i) {
    EXPECT_NEAR(results[0][i], results[1][i], 1e-11);
  }
}

TEST(Solver2d, ConcurrentSolvesOnOneCommStaySeparated) {
  // Two independent L-solves with different tag windows pipelined on the
  // same communicator: a rank that finishes the first solve immediately
  // starts the second while peers are still in the first, so second-solve
  // messages arrive early and must stay queued (the tag-window machinery
  // the baseline algorithm's overlapping levels rely on). Note the solves
  // must start in the SAME order on every rank — discordant orders
  // deadlock, exactly as discordant collective orders do in MPI.
  const FactoredSystem fs = make_system(0);
  const Grid2dShape shape{2, 2};
  const Solve2dPlan plan = make_grid_plan(fs.lu, fs.tree, 0, shape, TreeKind::kBinary);
  const Idx n = fs.lu.n();
  const auto b1 = random_rhs(n, 1, 11);
  const auto b2 = random_rhs(n, 1, 12);

  std::vector<Real> y1(static_cast<size_t>(n), 0.0), y2(static_cast<size_t>(n), 0.0);
  std::mutex mu;
  const int window = 4 * static_cast<int>(fs.lu.num_supernodes()) + 4;
  Cluster::run(shape.size(), MachineModel::cori_haswell(), [&](Comm& c) {
    const VecMap l1 = local_pieces(fs.lu, plan, c.rank(), plan.cols(), b1, 1);
    const VecMap l2 = local_pieces(fs.lu, plan, c.rank(), plan.cols(), b2, 1);
    LSolve2dResult r1 = solve_l_2d(c, plan, l1, {}, 1, 0);
    LSolve2dResult r2 = solve_l_2d(c, plan, l2, {}, 1, window);
    std::lock_guard<std::mutex> lk(mu);
    merge_pieces(fs.lu, r1.y, y1, 1);
    merge_pieces(fs.lu, r2.y, y2, 1);
  });

  std::vector<Real> ref1(static_cast<size_t>(n)), ref2(static_cast<size_t>(n));
  solve_l_seq(fs.lu, b1, ref1, 1);
  solve_l_seq(fs.lu, b2, ref2, 1);
  for (Idx i = 0; i < n; ++i) {
    EXPECT_NEAR(y1[static_cast<size_t>(i)], ref1[static_cast<size_t>(i)], 1e-10);
    EXPECT_NEAR(y2[static_cast<size_t>(i)], ref2[static_cast<size_t>(i)], 1e-10);
  }
}

TEST(Solver2d, MissingExternalSolutionThrows) {
  const FactoredSystem fs = make_system(1);
  const Grid2dShape shape{1, 1};
  const Idx leaf0 = fs.tree.leaf_node_id(0);
  const Solve2dPlan plan = make_node_plan(fs.lu, fs.tree, leaf0, shape, TreeKind::kBinary);
  ASSERT_FALSE(plan.external_rows().empty());
  EXPECT_THROW(Cluster::run(1, MachineModel::cori_haswell(),
                            [&](Comm& c) {
                              // x_external deliberately empty.
                              solve_u_2d(c, plan, {}, {}, 1, 0);
                            }),
               std::invalid_argument);
}

TEST(Solver2d, MismatchedRhsSizeThrows) {
  const FactoredSystem fs = make_system(0);
  const Grid2dShape shape{1, 1};
  const Solve2dPlan plan = make_grid_plan(fs.lu, fs.tree, 0, shape, TreeKind::kBinary);
  EXPECT_THROW(Cluster::run(1, MachineModel::cori_haswell(),
                            [&](Comm& c) {
                              VecMap bogus;
                              bogus.emplace(plan.cols()[0], std::vector<Real>(1, 1.0));
                              solve_l_2d(c, plan, bogus, {}, /*nrhs=*/2, 0);
                            }),
               std::invalid_argument);
}

}  // namespace
}  // namespace sptrsv
