#include <gtest/gtest.h>

#include "sparse/generators.hpp"
#include "sparse/graph.hpp"

namespace sptrsv {
namespace {

TEST(Graph, FromMatrixDropsDiagonal) {
  const CsrMatrix m = make_grid2d(3, 3, Stencil2d::kFivePoint);
  const Graph g = Graph::from_matrix(m);
  EXPECT_EQ(g.num_vertices(), 9);
  // 5-point 3x3 grid: 12 undirected edges.
  EXPECT_EQ(g.num_edges(), 12);
  for (Idx v = 0; v < g.num_vertices(); ++v) {
    for (const Idx u : g.neighbors(v)) EXPECT_NE(u, v);
  }
}

TEST(Graph, DegreesMatchStencil) {
  const Graph g = Graph::from_matrix(make_grid2d(3, 3, Stencil2d::kFivePoint));
  EXPECT_EQ(g.degree(4), 4);  // center
  EXPECT_EQ(g.degree(0), 2);  // corner
}

TEST(Graph, InducedSubgraph) {
  const Graph g = Graph::from_matrix(make_grid2d(3, 3, Stencil2d::kFivePoint));
  // Take the first row of the grid: vertices 0,1,2 form a path.
  const std::vector<Idx> verts{0, 1, 2};
  const Graph s = g.induced_subgraph(verts);
  EXPECT_EQ(s.num_vertices(), 3);
  EXPECT_EQ(s.num_edges(), 2);
  EXPECT_EQ(s.degree(1), 2);
  EXPECT_EQ(s.degree(0), 1);
}

TEST(Graph, InducedSubgraphRelabelsLocally) {
  const Graph g = Graph::from_matrix(make_grid2d(3, 3, Stencil2d::kFivePoint));
  const std::vector<Idx> verts{3, 4, 5};
  const Graph s = g.induced_subgraph(verts);
  for (Idx v = 0; v < s.num_vertices(); ++v) {
    for (const Idx u : s.neighbors(v)) {
      EXPECT_GE(u, 0);
      EXPECT_LT(u, s.num_vertices());
    }
  }
}

TEST(Graph, ComponentsOfConnectedGrid) {
  const Graph g = Graph::from_matrix(make_grid2d(4, 4, Stencil2d::kFivePoint));
  EXPECT_EQ(g.num_components(), 1);
}

TEST(Graph, ComponentsOfDisjointSubgraph) {
  const Graph g = Graph::from_matrix(make_grid2d(3, 3, Stencil2d::kFivePoint));
  // Opposite corners only: no edges.
  const Graph s = g.induced_subgraph(std::vector<Idx>{0, 8});
  EXPECT_EQ(s.num_components(), 2);
  EXPECT_EQ(s.num_edges(), 0);
}

TEST(Graph, FromRawValidates) {
  EXPECT_NO_THROW(Graph::from_raw(2, {0, 1, 2}, {1, 0}));
  EXPECT_THROW(Graph::from_raw(2, {0, 1}, {1, 0}), std::invalid_argument);
}

TEST(Graph, EmptyGraph) {
  const Graph g = Graph::from_raw(0, {0}, {});
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_components(), 0);
}

}  // namespace
}  // namespace sptrsv
