#include <gtest/gtest.h>

#include <random>

#include "dist/factor_dist.hpp"
#include "factor/sptrsv_seq.hpp"
#include "ordering/etree.hpp"
#include "sparse/generators.hpp"
#include "sparse/paper_matrices.hpp"
#include "symbolic/colcounts.hpp"

namespace sptrsv {
namespace {

SymbolicStructure analyze(const CsrMatrix& a) {
  const auto parent = elimination_tree(a);
  const auto counts = cholesky_col_counts(a, parent);
  return block_symbolic(a, find_supernodes(parent, counts));
}

/// Max elementwise difference between two factorizations' stored values.
Real factor_diff(const SupernodalLU& x, const SupernodalLU& y) {
  Real worst = 0;
  auto cmp = [&](const std::vector<std::vector<Real>>& a,
                 const std::vector<std::vector<Real>>& b) {
    for (size_t k = 0; k < a.size(); ++k) {
      for (size_t i = 0; i < a[k].size(); ++i) {
        worst = std::max(worst, std::abs(a[k][i] - b[k][i]));
      }
    }
  };
  cmp(x.diag, y.diag);
  cmp(x.lpanel, y.lpanel);
  cmp(x.upanel, y.upanel);
  cmp(x.diag_linv, y.diag_linv);
  cmp(x.diag_uinv, y.diag_uinv);
  return worst;
}

class FactorDistTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FactorDistTest, MatchesSequentialFactorization) {
  const auto [px, py] = GetParam();
  const CsrMatrix a = make_grid2d(9, 9, Stencil2d::kNinePoint);
  const SupernodalLU seq = factor_supernodal(a, analyze(a));
  const SupernodalLU dist = factor_supernodal_distributed(
      a, analyze(a), {px, py}, MachineModel::cori_haswell());
  EXPECT_LT(factor_diff(seq, dist), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Grids, FactorDistTest,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 1},
                                           std::pair{1, 2}, std::pair{2, 2},
                                           std::pair{3, 2}, std::pair{4, 4}),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param.first) + "x" +
                                  std::to_string(info.param.second);
                         });

TEST(FactorDist, SolveWithDistributedFactors) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kLdoor, MatrixScale::kTiny);
  const SupernodalLU f = factor_supernodal_distributed(
      a, analyze(a), {2, 3}, MachineModel::cori_haswell());
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<Real> uni(-1.0, 1.0);
  std::vector<Real> b(static_cast<size_t>(a.rows()));
  for (auto& v : b) v = uni(rng);
  const auto x = solve_seq(f, b);
  EXPECT_LT(relative_residual(a, x, b), 1e-11);
}

TEST(FactorDist, RandomMatricesAcrossGrids) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const CsrMatrix a = make_random_symmetric(120, 3.0, seed);
    const SupernodalLU seq = factor_supernodal(a, analyze(a));
    const SupernodalLU dist = factor_supernodal_distributed(
        a, analyze(a), {2, 2}, MachineModel::cori_haswell());
    EXPECT_LT(factor_diff(seq, dist), 1e-11) << "seed " << seed;
  }
}

TEST(FactorDist, StatsArePopulated) {
  const CsrMatrix a = make_grid2d(10, 10, Stencil2d::kFivePoint);
  DistFactorStats stats;
  factor_supernodal_distributed(a, analyze(a), {2, 2},
                                MachineModel::cori_haswell(), &stats);
  EXPECT_GT(stats.makespan, 0);
  EXPECT_GT(stats.mean_fp, 0);
  EXPECT_GT(stats.total_messages, 0);
  EXPECT_GT(stats.total_bytes, 0);
}

TEST(FactorDist, MoreRanksReduceModeledTime) {
  // Weak sanity on the model: 4x4 should beat 1x1 on a decent-size matrix.
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  DistFactorStats s1, s16;
  factor_supernodal_distributed(a, analyze(a), {1, 1},
                                MachineModel::cori_haswell(), &s1);
  factor_supernodal_distributed(a, analyze(a), {4, 4},
                                MachineModel::cori_haswell(), &s16);
  EXPECT_LT(s16.makespan, s1.makespan);
}

TEST(FactorDist, ZeroPivotPropagates) {
  CooMatrix coo;
  coo.rows = coo.cols = 2;
  coo.add(0, 0, 1.0);
  coo.add(0, 1, 1.0);
  coo.add(1, 0, 1.0);
  coo.add(1, 1, 1.0);  // singular
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  EXPECT_THROW(factor_supernodal_distributed(a, analyze(a), {2, 2},
                                             MachineModel::cori_haswell()),
               std::runtime_error);
}

}  // namespace
}  // namespace sptrsv
