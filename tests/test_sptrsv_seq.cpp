#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "factor/sptrsv_seq.hpp"
#include "ordering/etree.hpp"
#include "sparse/generators.hpp"
#include "sparse/paper_matrices.hpp"
#include "symbolic/colcounts.hpp"

namespace sptrsv {
namespace {

std::vector<Real> random_rhs(Idx n, Idx nrhs, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<Real> uni(-1.0, 1.0);
  std::vector<Real> b(static_cast<size_t>(n) * nrhs);
  for (auto& v : b) v = uni(rng);
  return b;
}

SupernodalLU factor(const CsrMatrix& a) {
  const auto parent = elimination_tree(a);
  const auto counts = cholesky_col_counts(a, parent);
  return factor_supernodal(a, block_symbolic(a, find_supernodes(parent, counts)));
}

TEST(SptrsvSeq, SolvesBandedSystem) {
  const CsrMatrix a = make_banded(30, 2);
  const auto f = factor(a);
  const auto b = random_rhs(30, 1, 1);
  const auto x = solve_seq(f, b);
  EXPECT_LT(relative_residual(a, x, b), 1e-12);
}

TEST(SptrsvSeq, SolvesGridSystem) {
  const CsrMatrix a = make_grid2d(8, 8, Stencil2d::kNinePoint);
  const auto f = factor(a);
  const auto b = random_rhs(a.rows(), 1, 2);
  const auto x = solve_seq(f, b);
  EXPECT_LT(relative_residual(a, x, b), 1e-12);
}

TEST(SptrsvSeq, MultiRhsMatchesSingleRhsColumns) {
  const CsrMatrix a = make_grid2d(6, 6, Stencil2d::kFivePoint);
  const auto f = factor(a);
  const Idx n = a.rows(), nrhs = 5;
  const auto b = random_rhs(n, nrhs, 3);
  const auto x = solve_seq(f, b, nrhs);
  for (Idx j = 0; j < nrhs; ++j) {
    const auto bj = std::span<const Real>(b).subspan(static_cast<size_t>(j) * n, static_cast<size_t>(n));
    const auto xj = solve_seq(f, bj, 1);
    for (Idx i = 0; i < n; ++i) {
      EXPECT_NEAR(x[static_cast<size_t>(j) * n + i], xj[static_cast<size_t>(i)], 1e-12);
    }
  }
}

TEST(SptrsvSeq, LSolveThenUSolveEqualsFullSolve) {
  const CsrMatrix a = make_grid3d(3, 3, 3, Stencil3d::kSevenPoint);
  const auto f = factor(a);
  const auto b = random_rhs(a.rows(), 2, 4);
  std::vector<Real> y(b.size()), x(b.size());
  solve_l_seq(f, b, y, 2);
  solve_u_seq(f, y, x, 2);
  const auto x2 = solve_seq(f, b, 2);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(x[i], x2[i]);
}

TEST(SptrsvSeq, IdentityMatrixSolveIsIdentity) {
  CooMatrix coo;
  coo.rows = coo.cols = 5;
  for (Idx i = 0; i < 5; ++i) coo.add(i, i, 1.0);
  const auto f = factor(CsrMatrix::from_coo(coo));
  const std::vector<Real> b{1, 2, 3, 4, 5};
  const auto x = solve_seq(f, b);
  for (Idx i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(x[static_cast<size_t>(i)], b[static_cast<size_t>(i)]);
}

TEST(SptrsvSeq, FullSystemSolveWithPermutation) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, 2);
  const auto b = random_rhs(a.rows(), 1, 5);
  const auto x = solve_system_seq(fs, b);
  EXPECT_LT(relative_residual(a, x, b), 1e-11);
}

class PaperMatrixSolveTest : public ::testing::TestWithParam<PaperMatrix> {};

TEST_P(PaperMatrixSolveTest, TinyInstanceSolves) {
  const CsrMatrix a = make_paper_matrix(GetParam(), MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, 2);
  const auto b = random_rhs(a.rows(), 3, 6);
  const auto x = solve_system_seq(fs, b, 3);
  EXPECT_LT(relative_residual(a, x, b, 3), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(AllPaperMatrices, PaperMatrixSolveTest,
                         ::testing::ValuesIn(all_paper_matrices()),
                         [](const auto& info) { return paper_matrix_name(info.param); });

TEST(SptrsvSeq, ResidualDetectsWrongSolution) {
  const CsrMatrix a = make_banded(10, 1);
  const auto b = random_rhs(10, 1, 7);
  std::vector<Real> wrong(10, 0.0);
  EXPECT_GT(relative_residual(a, wrong, b), 0.5);
}

}  // namespace
}  // namespace sptrsv
