#include <gtest/gtest.h>

#include <algorithm>

#include "ordering/etree.hpp"
#include "sparse/generators.hpp"

namespace sptrsv {
namespace {

/// Brute-force reference elimination tree: parent(j) = min{i > j :
/// L(i,j) != 0} computed via dense symbolic Cholesky fill.
std::vector<Idx> etree_reference(const CsrMatrix& a) {
  const Idx n = a.rows();
  std::vector<std::vector<bool>> fill(static_cast<size_t>(n),
                                      std::vector<bool>(static_cast<size_t>(n), false));
  for (Idx i = 0; i < n; ++i) {
    for (const Idx j : a.row_cols(i)) fill[static_cast<size_t>(i)][static_cast<size_t>(j)] = true;
  }
  // Symbolic fill: for k < i < j, if L(i,k) and L(j,k) then L(j,i).
  for (Idx k = 0; k < n; ++k) {
    for (Idx i = k + 1; i < n; ++i) {
      if (!fill[static_cast<size_t>(i)][static_cast<size_t>(k)]) continue;
      for (Idx j = i + 1; j < n; ++j) {
        if (fill[static_cast<size_t>(j)][static_cast<size_t>(k)]) {
          fill[static_cast<size_t>(j)][static_cast<size_t>(i)] = true;
        }
      }
    }
  }
  std::vector<Idx> parent(static_cast<size_t>(n), kNoIdx);
  for (Idx j = 0; j < n; ++j) {
    for (Idx i = j + 1; i < n; ++i) {
      if (fill[static_cast<size_t>(i)][static_cast<size_t>(j)]) {
        parent[static_cast<size_t>(j)] = i;
        break;
      }
    }
  }
  return parent;
}

TEST(Etree, MatchesBruteForceOnGrid) {
  const CsrMatrix a = make_grid2d(4, 4, Stencil2d::kFivePoint);
  EXPECT_EQ(elimination_tree(a), etree_reference(a));
}

TEST(Etree, MatchesBruteForceOnRandoms) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const CsrMatrix a = make_random_symmetric(40, 3.0, seed);
    EXPECT_EQ(elimination_tree(a), etree_reference(a)) << "seed " << seed;
  }
}

TEST(Etree, TridiagonalIsAPath) {
  const CsrMatrix a = make_banded(6, 1);
  const auto parent = elimination_tree(a);
  for (Idx j = 0; j < 5; ++j) EXPECT_EQ(parent[static_cast<size_t>(j)], j + 1);
  EXPECT_EQ(parent[5], kNoIdx);
}

TEST(Etree, DiagonalMatrixIsAForestOfRoots) {
  CooMatrix coo;
  coo.rows = coo.cols = 4;
  for (Idx i = 0; i < 4; ++i) coo.add(i, i, 1.0);
  const auto parent = elimination_tree(CsrMatrix::from_coo(coo));
  for (const Idx p : parent) EXPECT_EQ(p, kNoIdx);
}

TEST(Etree, IsTopologicallyOrdered) {
  const CsrMatrix a = make_grid2d(5, 5, Stencil2d::kNinePoint);
  EXPECT_TRUE(is_topologically_ordered_forest(elimination_tree(a)));
}

TEST(Postorder, VisitsChildrenBeforeParents) {
  const CsrMatrix a = make_grid2d(4, 4, Stencil2d::kFivePoint);
  const auto parent = elimination_tree(a);
  const auto post = postorder(parent);
  ASSERT_EQ(post.size(), parent.size());
  std::vector<Idx> position(post.size());
  for (size_t k = 0; k < post.size(); ++k) position[static_cast<size_t>(post[k])] = static_cast<Idx>(k);
  for (size_t j = 0; j < parent.size(); ++j) {
    if (parent[j] != kNoIdx) {
      EXPECT_LT(position[j], position[static_cast<size_t>(parent[j])]);
    }
  }
  // It is a permutation.
  std::vector<Idx> sorted = post;
  std::sort(sorted.begin(), sorted.end());
  for (size_t k = 0; k < sorted.size(); ++k) EXPECT_EQ(sorted[k], static_cast<Idx>(k));
}

TEST(TreeDepths, PathDepths) {
  const CsrMatrix a = make_banded(5, 1);
  const auto parent = elimination_tree(a);
  const auto depth = tree_depths(parent);
  // Root is column 4 (depth 0), column 0 is deepest.
  EXPECT_EQ(depth[4], 0);
  EXPECT_EQ(depth[0], 4);
  EXPECT_EQ(tree_height(parent), 5);
}

}  // namespace
}  // namespace sptrsv
