#include <gtest/gtest.h>

#include "ordering/etree.hpp"
#include "sparse/generators.hpp"
#include "symbolic/block_pattern.hpp"
#include "symbolic/colcounts.hpp"

namespace sptrsv {
namespace {

SymbolicStructure analyze(const CsrMatrix& a, const SupernodeOptions& opt = {}) {
  const auto parent = elimination_tree(a);
  const auto counts = cholesky_col_counts(a, parent);
  return block_symbolic(a, find_supernodes(parent, counts, opt));
}

TEST(BlockPattern, CoversOriginalEntries) {
  const CsrMatrix a = make_grid2d(6, 6, Stencil2d::kNinePoint);
  const auto s = analyze(a);
  for (Idx i = 0; i < a.rows(); ++i) {
    for (const Idx j : a.row_cols(i)) {
      const Idx ki = s.part.col_to_sn[static_cast<size_t>(i)];
      const Idx kj = s.part.col_to_sn[static_cast<size_t>(j)];
      if (ki > kj) {
        EXPECT_NE(s.find_block(kj, ki), kNoIdx) << "entry (" << i << "," << j << ")";
      } else if (ki < kj) {
        EXPECT_NE(s.find_block(ki, kj), kNoIdx);
      }
    }
  }
}

TEST(BlockPattern, ClosurePropertyHolds) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const CsrMatrix a = make_random_symmetric(60, 3.0, seed);
    EXPECT_TRUE(analyze(a).check_closure()) << "seed " << seed;
  }
  EXPECT_TRUE(analyze(make_grid2d(8, 8, Stencil2d::kFivePoint)).check_closure());
  EXPECT_TRUE(analyze(make_grid3d(4, 4, 4, Stencil3d::kSevenPoint)).check_closure());
}

TEST(BlockPattern, ParentIsFirstBelowBlock) {
  const CsrMatrix a = make_grid2d(7, 7, Stencil2d::kFivePoint);
  const auto s = analyze(a);
  for (Idx k = 0; k < s.num_supernodes(); ++k) {
    const auto& b = s.below[static_cast<size_t>(k)];
    if (b.empty()) {
      EXPECT_EQ(s.sn_parent[static_cast<size_t>(k)], kNoIdx);
    } else {
      EXPECT_EQ(s.sn_parent[static_cast<size_t>(k)], b.front());
      // Sorted, unique, all above k.
      for (size_t i = 0; i < b.size(); ++i) {
        EXPECT_GT(b[i], k);
        if (i > 0) {
          EXPECT_LT(b[i - 1], b[i]);
        }
      }
    }
  }
}

TEST(BlockPattern, OffsetsAreCumulativeWidths) {
  const CsrMatrix a = make_grid2d(6, 6, Stencil2d::kNinePoint);
  const auto s = analyze(a);
  for (Idx k = 0; k < s.num_supernodes(); ++k) {
    const auto& b = s.below[static_cast<size_t>(k)];
    const auto& off = s.below_offset[static_cast<size_t>(k)];
    Idx expect = 0;
    for (size_t i = 0; i < b.size(); ++i) {
      EXPECT_EQ(off[i], expect);
      expect += s.part.width(b[i]);
    }
    EXPECT_EQ(s.panel_rows[static_cast<size_t>(k)], expect);
  }
}

TEST(BlockPattern, BlockedNnzAtLeastScalarFactorNnz) {
  const CsrMatrix a = make_grid2d(8, 8, Stencil2d::kFivePoint);
  const auto parent = elimination_tree(a);
  const Nnz scalar_l = cholesky_factor_nnz(a, parent);
  const auto s = analyze(a);
  // Dense blocks can only add explicit zeros over the exact scalar count
  // (nnz(LU) = 2*nnz(L) - n).
  EXPECT_GE(s.blocked_lu_nnz(), 2 * scalar_l - a.rows());
}

TEST(BlockPattern, LastSupernodeHasEmptyBelow) {
  const CsrMatrix a = make_grid2d(5, 5, Stencil2d::kFivePoint);
  const auto s = analyze(a);
  EXPECT_TRUE(s.below.back().empty());
  EXPECT_EQ(s.panel_rows.back(), 0);
}

TEST(BlockPattern, RejectsBadPartition) {
  const CsrMatrix a = make_banded(6, 1);
  SupernodePartition bogus;
  bogus.start = {0, 3};  // does not reach n
  bogus.col_to_sn = {0, 0, 0, 0, 0, 0};
  EXPECT_THROW(block_symbolic(a, bogus), std::invalid_argument);
}

}  // namespace
}  // namespace sptrsv
