/// \file test_trace.cpp
/// \brief The tracing subsystem (src/trace, docs/OBSERVABILITY.md): edge
/// matching, the critical-path partition invariant, trace determinism and
/// the Perfetto export. Carries the `determinism` label because the
/// byte-identical-JSON guarantee is part of the determinism contract.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/sptrsv3d.hpp"
#include "gpusim/gpu_sptrsv.hpp"
#include "sparse/paper_matrices.hpp"
#include "test_support.hpp"
#include "trace/trace.hpp"

namespace sptrsv {
namespace {

using test::random_rhs;
using test::random_system;
using test::stats_identical;
using test::test_machine;

constexpr RunOptions kDetTraced{.deterministic = true, .seed = 0, .trace = true};

DistSolveOutcome solve_traced(const test::RandomSystem& sys, Algorithm3d alg,
                              const std::vector<Real>& b) {
  SolveConfig cfg;
  cfg.shape = sys.shape;
  cfg.algorithm = alg;
  cfg.nrhs = sys.nrhs;
  cfg.run = kDetTraced;
  return solve_system_3d(sys.fs, b, cfg, test_machine());
}

// ---------------------------------------------------------------------------
// Tracing is off by default and never changes modeled results.
// ---------------------------------------------------------------------------

TEST(TraceOverhead, OffByDefaultAndTimingInvariant) {
  const auto sys = random_system(3);
  const auto b = random_rhs(sys.a.rows(), sys.nrhs, 77);

  SolveConfig cfg;
  cfg.shape = sys.shape;
  cfg.nrhs = sys.nrhs;
  cfg.run = RunOptions{.deterministic = true};
  const auto plain = solve_system_3d(sys.fs, b, cfg, test_machine());
  EXPECT_EQ(plain.run_stats.trace, nullptr) << "trace recorded without opt-in";

  cfg.run.trace = true;
  const auto traced = solve_system_3d(sys.fs, b, cfg, test_machine());
  ASSERT_NE(traced.run_stats.trace, nullptr);
  // Recording must not move a single clock bit or counter.
  EXPECT_TRUE(stats_identical(plain.run_stats, traced.run_stats));
  EXPECT_EQ(plain.run_stats.fingerprint(), traced.run_stats.fingerprint());
}

// ---------------------------------------------------------------------------
// The runtime primitives each leave the advertised event, and a runtime
// trace is contiguous with all receives matched.
// ---------------------------------------------------------------------------

TEST(TraceEvents, RuntimePrimitivesRecorded) {
  const auto res = Cluster::run(
      2, test_machine(),
      [](Comm& c) {
        const TraceSpan span = c.annotate("stage", 42);
        c.compute(1e6);
        if (c.rank() == 0) {
          c.send(1, 9, std::vector<Real>(4, 1.0), TimeCategory::kXyComm);
        } else {
          c.recv(0, 9, TimeCategory::kXyComm);
        }
        c.barrier();
        c.allreduce_sum(std::vector<Real>{1.0}, TimeCategory::kZComm);
      },
      kDetTraced);
  ASSERT_NE(res.trace, nullptr);
  const Trace& tr = *res.trace;

  ASSERT_EQ(tr.num_ranks(), 2);
  EXPECT_TRUE(tr.contiguous());
  EXPECT_EQ(tr.num_sends(), 1u);
  EXPECT_EQ(tr.num_recvs(), 1u);
  EXPECT_EQ(tr.num_matched_recvs(), 1u);
  EXPECT_DOUBLE_EQ(tr.makespan(), res.makespan());

  auto count_kind = [&](int r, TraceEventKind k) {
    int n = 0;
    for (const auto& e : tr.rank(r).events) n += (e.kind == k);
    return n;
  };
  EXPECT_EQ(count_kind(0, TraceEventKind::kCompute), 1);
  EXPECT_EQ(count_kind(0, TraceEventKind::kSend), 1);
  EXPECT_EQ(count_kind(1, TraceEventKind::kRecv), 1);
  // barrier + allreduce on both ranks.
  EXPECT_EQ(count_kind(0, TraceEventKind::kCollective), 2);
  EXPECT_EQ(count_kind(1, TraceEventKind::kCollective), 2);

  // The matched edge points from rank 0's send to rank 1's recv.
  ASSERT_EQ(tr.edges().size(), 1u);
  const Trace::Edge& e = tr.edges()[0];
  EXPECT_EQ(e.src_rank, 0);
  EXPECT_EQ(e.dst_rank, 1);
  EXPECT_GE(e.flight, 0.0);

  // The annotation span covers the whole program on both ranks at no cost.
  for (int r = 0; r < 2; ++r) {
    ASSERT_EQ(tr.rank(r).spans.size(), 1u);
    const TraceSpanRec& sp = tr.rank(r).spans[0];
    EXPECT_STREQ(sp.label, "stage");
    EXPECT_EQ(sp.arg, 42);
    EXPECT_DOUBLE_EQ(sp.t0, 0.0);
    EXPECT_GT(sp.t1, 0.0);
  }
}

TEST(TraceEvents, AnnotateIsNullWhenTracingOff) {
  const auto res = Cluster::run(
      1, test_machine(),
      [](Comm& c) {
        const TraceSpan span = c.annotate("ignored", 1);
        c.compute(1e3);
      },
      RunOptions{});
  EXPECT_EQ(res.trace, nullptr);
}

// ---------------------------------------------------------------------------
// Conservation + the critical-path partition invariant on random solves.
// ---------------------------------------------------------------------------

class TraceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceProperty, RecvSendConservationAndCriticalPath) {
  const auto sys = random_system(GetParam());
  SCOPED_TRACE(sys.name);
  const auto b = random_rhs(sys.a.rows(), sys.nrhs, GetParam() ^ 0xd);

  for (const auto alg : {Algorithm3d::kProposed, Algorithm3d::kBaseline}) {
    const auto out = solve_traced(sys, alg, b);
    ASSERT_NE(out.run_stats.trace, nullptr);
    const Trace& tr = *out.run_stats.trace;

    // Conservation: every send is received, every receive has a send.
    EXPECT_TRUE(tr.contiguous());
    EXPECT_EQ(tr.num_sends(), tr.num_recvs());
    EXPECT_EQ(tr.num_matched_recvs(), tr.num_recvs());

    // The critical-path partition telescopes to the makespan.
    const auto cp = tr.critical_path();
    EXPECT_DOUBLE_EQ(cp.breakdown.makespan, out.run_stats.makespan());
    EXPECT_GE(cp.breakdown.wait, 0.0);
    for (const double c : cp.breakdown.category) EXPECT_GE(c, 0.0);
    const double err = std::abs(cp.breakdown.total() - cp.breakdown.makespan);
    EXPECT_LE(err, 1e-9 * std::max(cp.breakdown.makespan, 1e-300))
        << "partition total " << cp.breakdown.total() << " vs makespan "
        << cp.breakdown.makespan;
  }
}

TEST_P(TraceProperty, DeterministicJsonByteIdentical) {
  const auto sys = random_system(GetParam());
  SCOPED_TRACE(sys.name);
  const auto b = random_rhs(sys.a.rows(), sys.nrhs, GetParam() ^ 0xe);
  const auto out1 = solve_traced(sys, Algorithm3d::kProposed, b);
  const auto out2 = solve_traced(sys, Algorithm3d::kProposed, b);
  const std::string j1 = out1.run_stats.trace->chrome_json();
  const std::string j2 = out2.run_stats.trace->chrome_json();
  EXPECT_FALSE(j1.empty());
  EXPECT_EQ(j1, j2) << "deterministic traces must serialize byte-identically";
}

INSTANTIATE_TEST_SUITE_P(RandomSystems, TraceProperty,
                         ::testing::Range<std::uint64_t>(0, 8),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// The Perfetto export escapes names — a hostile span label must not be able
// to break the JSON document.
// ---------------------------------------------------------------------------

/// Minimal structural JSON check: strings balance (honoring backslash
/// escapes) and every {[ has its ]}; enough to catch an unescaped quote
/// cutting the document in half.
bool json_well_formed(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TEST(TraceExport, SpanNamesAreJsonEscaped) {
  // Label with an embedded quote and a trailing backslash: unescaped,
  // either one corrupts the document.
  static const char kHostile[] = "he\"llo\\";
  const auto res = Cluster::run(
      1, test_machine(),
      [](Comm& c) {
        const TraceSpan span = c.annotate(kHostile, 7);
        c.compute(1e3);
      },
      kDetTraced);
  ASSERT_NE(res.trace, nullptr);
  const std::string json = res.trace->chrome_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  // The escaped form appears; the raw form (quote not preceded by a
  // backslash) must not.
  EXPECT_NE(json.find("he\\\"llo\\\\"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"he\""), std::string::npos) << json;
}

TEST(TraceExport, PlainLabelsExportByteIdenticallyToBefore) {
  // The escaper is the identity on ordinary labels — pinned so the
  // byte-identical-JSON determinism guarantee keeps covering old traces.
  const auto res = Cluster::run(
      1, test_machine(),
      [](Comm& c) {
        const TraceSpan span = c.annotate("plain_label.v1", 3);
        c.compute(1e3);
      },
      kDetTraced);
  const std::string json = res.trace->chrome_json();
  EXPECT_NE(json.find("\"plain_label.v1\""), std::string::npos);
  EXPECT_TRUE(json_well_formed(json));
}

// ---------------------------------------------------------------------------
// Span histograms and the Result aggregation helpers.
// ---------------------------------------------------------------------------

TEST(TraceAnalysis, WaitBySpanBaselineLevels) {
  const auto fs =
      analyze_and_factor(make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny), 2);
  SolveConfig cfg;
  cfg.shape = {2, 2, 4};
  cfg.algorithm = Algorithm3d::kBaseline;
  cfg.run = kDetTraced;
  const auto b = random_rhs(fs.lu.n(), 1, 1);
  const auto out = solve_system_3d(fs, b, cfg, test_machine());
  const auto hist = out.run_stats.trace->wait_by_span("l_level");
  ASSERT_FALSE(hist.empty());
  for (const auto& [level, wait] : hist) {
    EXPECT_GE(level, 0);
    EXPECT_LE(level, 2);  // pz=4 -> tracked levels 0..2
    EXPECT_GE(wait, 0.0);
  }
  EXPECT_TRUE(out.run_stats.trace->wait_by_span("no_such_label").empty());
}

TEST(TraceAnalysis, SpreadDegenerateInputs) {
  // Empty: all-zero summary, and imbalance() must not divide by zero.
  const Spread none = spread_over({});
  EXPECT_DOUBLE_EQ(none.min, 0.0);
  EXPECT_DOUBLE_EQ(none.mean, 0.0);
  EXPECT_DOUBLE_EQ(none.p50, 0.0);
  EXPECT_DOUBLE_EQ(none.p99, 0.0);
  EXPECT_DOUBLE_EQ(none.max, 0.0);
  EXPECT_DOUBLE_EQ(none.imbalance(), 0.0);

  // Single rank: every statistic is that value; perfectly balanced.
  const std::vector<double> one{3.5};
  const Spread single = spread_over(one);
  EXPECT_DOUBLE_EQ(single.min, 3.5);
  EXPECT_DOUBLE_EQ(single.mean, 3.5);
  EXPECT_DOUBLE_EQ(single.p50, 3.5);
  EXPECT_DOUBLE_EQ(single.p99, 3.5);
  EXPECT_DOUBLE_EQ(single.max, 3.5);
  EXPECT_DOUBLE_EQ(single.imbalance(), 1.0);

  // All-equal: percentiles collapse to the common value, imbalance exactly 1.
  const std::vector<double> flat{2.0, 2.0, 2.0, 2.0, 2.0};
  const Spread eq = spread_over(flat);
  EXPECT_DOUBLE_EQ(eq.min, 2.0);
  EXPECT_DOUBLE_EQ(eq.p50, 2.0);
  EXPECT_DOUBLE_EQ(eq.p99, 2.0);
  EXPECT_DOUBLE_EQ(eq.max, 2.0);
  EXPECT_DOUBLE_EQ(eq.imbalance(), 1.0);

  // All-zero ranks (a run that never computes): mean 0 -> imbalance 0, the
  // documented "no load at all" convention.
  const std::vector<double> zeros{0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(spread_over(zeros).imbalance(), 0.0);

  // A zero-work cluster run reports the same degenerate spreads.
  const auto res = Cluster::run(1, test_machine(), [](Comm&) {},
                                RunOptions{.deterministic = true});
  EXPECT_DOUBLE_EQ(res.vtime_spread().imbalance(), 0.0);
  EXPECT_DOUBLE_EQ(res.category_spread(TimeCategory::kFp).max, 0.0);
}

TEST(TraceAnalysis, SpreadHelpers) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  const Spread s = spread_over(v);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.p50, 2.0);  // nearest-rank: ceil(0.5*4) = 2nd smallest
  EXPECT_DOUBLE_EQ(s.p99, 4.0);
  EXPECT_DOUBLE_EQ(s.imbalance(), 4.0 / 2.5);
  EXPECT_DOUBLE_EQ(spread_over({}).imbalance(), 0.0);

  const auto res = Cluster::run(
      4, test_machine(),
      [](Comm& c) { c.compute(1e6 * (c.rank() + 1)); },
      RunOptions{.deterministic = true});
  const Spread fp = res.category_spread(TimeCategory::kFp);
  EXPECT_GT(fp.max, fp.min);
  EXPECT_DOUBLE_EQ(res.vtime_spread().max, res.makespan());
}

// ---------------------------------------------------------------------------
// GPU-simulator traces export but refuse critical-path analysis.
// ---------------------------------------------------------------------------

TEST(TraceGpu, ExportOnly) {
  const auto fs =
      analyze_and_factor(make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny), 4);
  GpuSolveConfig cfg;
  cfg.shape = {1, 1, 4};
  cfg.trace = true;
  const auto t = simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, MachineModel::perlmutter());
  ASSERT_NE(t.trace, nullptr);
  const Trace& tr = *t.trace;
  EXPECT_EQ(tr.num_ranks(), 4);
  EXPECT_FALSE(tr.contiguous()) << "GPU task slices overlap by design";
  EXPECT_GT(tr.num_events(), 0u);
  EXPECT_EQ(tr.num_matched_recvs(), tr.num_recvs());
  EXPECT_THROW(tr.critical_path(), std::logic_error);
  EXPECT_FALSE(tr.chrome_json().empty());

  // Untraced runs pay nothing and produce identical timings.
  GpuSolveConfig plain = cfg;
  plain.trace = false;
  const auto t2 = simulate_solve_3d_gpu(fs.lu, fs.tree, plain, MachineModel::perlmutter());
  EXPECT_EQ(t2.trace, nullptr);
  EXPECT_DOUBLE_EQ(t2.total, t.total);
}

}  // namespace
}  // namespace sptrsv
