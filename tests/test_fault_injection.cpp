/// \file test_fault_injection.cpp
/// \brief Lossy-network fault injection and the reliable transport
/// (docs/ROBUSTNESS.md).
///
/// The contract under test, in order of importance:
///  1. Two-ledger invariant: delivery faults never move the clean ledger —
///     solutions, fingerprints and message/byte counts are bit-identical to
///     a fault-free run under every admissible fault schedule and seed.
///  2. Exact accounting: retransmit/ack traffic and recovery delay are a
///     pure function of (seed, sender, draw index) and match an offline
///     replay of the analytic transport frame by frame.
///  3. Bounded failure: schedules the transport cannot recover from (heavy
///     loss, permanent stalls, wedged communication graphs) terminate in
///     bounded time with a structured FaultReport naming rank, peer, tag
///     and retry count — never as a hang.
///  4. Bypass-free when clean: with no faults configured, the transport
///     leaves no trace at all — counters zero, fault clock bitwise equal to
///     the clean clock, trace JSON free of transport artifacts.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "comm/sparse_allreduce.hpp"
#include "core/sptrsv3d.hpp"
#include "factor/sptrsv_seq.hpp"
#include "sparse/paper_matrices.hpp"
#include "test_support.hpp"
#include "trace/trace.hpp"

namespace sptrsv {
namespace {

using test::bitwise_equal;
using test::faulty_machine;
using test::max_abs_diff;
using test::message_counts_identical;
using test::random_rhs;
using test::shape_tree;
using test::stats_identical;
using test::test_machine;

RunOptions det_opts(std::uint64_t seed, bool trace = false) {
  RunOptions o;
  o.deterministic = true;
  o.seed = seed;
  o.trace = trace;
  return o;
}

// ---------------------------------------------------------------------------
// The analytic transport itself.
// ---------------------------------------------------------------------------

TEST(Transport, ScheduleIsAPureFunctionOfSeedAndCounter) {
  const MachineModel m = faulty_machine(0.3, 0.1, 0.05, 0.1);
  const TransportOptions topt;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    std::uint64_t fa = 0, fb = 0;
    const TransportOutcome a = simulate_transport(
        m.perturb, topt, seed, /*src=*/0, /*dst=*/1, /*send_vt=*/1e-6,
        /*flight=*/2e-6, /*ack_flight=*/1e-6, /*overhead=*/5e-7, &fa);
    const TransportOutcome b = simulate_transport(
        m.perturb, topt, seed, 0, 1, 1e-6, 2e-6, 1e-6, 5e-7, &fb);
    EXPECT_EQ(fa, fb);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_EQ(a.acks, b.acks);
    EXPECT_EQ(a.duplicates, b.duplicates);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.extra_delay, b.extra_delay);  // bitwise: same draws, same math
  }
}

TEST(Transport, ChecksumDetectsBitFlips) {
  std::vector<Real> payload(17);
  for (size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<Real>(i) * 0.5;
  const std::uint64_t clean = payload_checksum(payload);
  EXPECT_EQ(clean, payload_checksum(payload));
  auto flipped = payload;
  auto* bits = reinterpret_cast<unsigned char*>(flipped.data());
  bits[3] ^= 0x10;
  EXPECT_NE(clean, payload_checksum(flipped));
}

TEST(Transport, FrameChecksumCoversTheHeader) {
  // A corrupted header must not be able to deliver an intact-looking
  // payload to the wrong wait: the stamped checksum covers (src, dst, tag,
  // seq) before the payload bytes.
  std::vector<Real> payload{1.0, 2.0, 3.0};
  const std::uint64_t base = frame_checksum(0, 1, 7, /*seq=*/5, payload);
  EXPECT_EQ(base, frame_checksum(0, 1, 7, 5, payload));  // deterministic
  EXPECT_NE(base, frame_checksum(2, 1, 7, 5, payload));  // src flip
  EXPECT_NE(base, frame_checksum(0, 3, 7, 5, payload));  // dst flip
  EXPECT_NE(base, frame_checksum(0, 1, 8, 5, payload));  // tag flip
  EXPECT_NE(base, frame_checksum(0, 1, 7, 6, payload));  // seq flip
  auto flipped = payload;
  auto* bits = reinterpret_cast<unsigned char*>(flipped.data());
  bits[5] ^= 0x04;
  EXPECT_NE(base, frame_checksum(0, 1, 7, 5, flipped));  // payload flip
  // Header mixing is positional, not a plain byte concatenation: swapping
  // src and dst changes the digest even though the byte multiset matches.
  EXPECT_NE(frame_checksum(1, 0, 7, 5, payload), frame_checksum(0, 1, 7, 5, payload));
}

TEST(Transport, LinkFaultsPickWorstMatch) {
  PerturbationModel pm;
  pm.drop_prob = 0.05;
  pm.link_faults.push_back({/*src=*/2, /*dst=*/-1, /*drop_prob=*/0.5});
  pm.link_faults.push_back({/*src=*/-1, /*dst=*/3, /*drop_prob=*/0.9});
  EXPECT_DOUBLE_EQ(drop_prob_for(pm, 0, 1), 0.05);
  EXPECT_DOUBLE_EQ(drop_prob_for(pm, 2, 1), 0.5);
  EXPECT_DOUBLE_EQ(drop_prob_for(pm, 2, 3), 0.9);
}

// ---------------------------------------------------------------------------
// Exact accounting: one message, replayed offline frame by frame.
// ---------------------------------------------------------------------------

TEST(FaultInjection, SingleMessageAccountingMatchesOfflineReplay) {
  MachineModel m = faulty_machine(/*drop=*/0.35, /*dup=*/0.15, /*corrupt=*/0.1,
                                  /*reorder=*/0.15);
  const std::vector<Real> payload{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
  const double bytes = static_cast<double>(payload.size()) * sizeof(Real);

  // Find a seed whose schedule actually exercises a retransmission, so the
  // equalities below are not trivially 0 == 0.
  std::uint64_t seed = 0;
  TransportOutcome expect;
  for (; seed < 64; ++seed) {
    std::uint64_t fseq = 0;
    expect = simulate_transport(
        m.perturb, m.transport, seed, /*src=*/0, /*dst=*/1,
        /*send_vt=*/m.mpi_overhead,
        /*flight=*/m.net.latency + bytes / m.net.bandwidth,
        /*ack_flight=*/m.net.latency + m.transport.ack_bytes / m.net.bandwidth,
        /*overhead=*/m.mpi_overhead, &fseq);
    if (expect.attempts > 1 && !expect.failed) break;
  }
  ASSERT_GT(expect.attempts, 1);
  ASSERT_FALSE(expect.failed);

  const Cluster::Result res = Cluster::run(
      2, m,
      [&](Comm& c) {
        if (c.rank() == 0) {
          c.send(1, /*tag=*/7, payload);
        } else {
          const Message msg = c.recv(0, 7);
          EXPECT_TRUE(bitwise_equal(msg.data, payload));
        }
      },
      det_opts(seed));

  const TransportStats t = res.transport_totals();
  EXPECT_EQ(t.data_frames, expect.attempts);
  EXPECT_EQ(t.retransmits, expect.attempts - 1);
  EXPECT_EQ(t.retrans_bytes,
            static_cast<std::int64_t>(expect.attempts - 1) *
                static_cast<std::int64_t>(bytes));
  EXPECT_EQ(t.timeouts, expect.timeouts);
  EXPECT_EQ(t.frames_dropped, expect.frames_dropped);
  EXPECT_EQ(t.acks, expect.acks);
  EXPECT_EQ(t.ack_bytes, expect.acks * static_cast<std::int64_t>(m.transport.ack_bytes));
  EXPECT_EQ(t.corrupt_detected, expect.corrupt);
  EXPECT_EQ(t.duplicates, expect.duplicates);
  EXPECT_EQ(t.reordered, expect.reordered ? 1 : 0);

  // The receiver's recovery delay is exactly the schedule's extra delay, and
  // it lands on the fault clock only.
  const RankStats& recv = res.ranks[1];
  EXPECT_DOUBLE_EQ(recv.fault_vtime - recv.vtime, expect.extra_delay);
  EXPECT_EQ(res.ranks[0].fault_vtime, res.ranks[0].vtime);  // sender never blocks
  EXPECT_GE(res.fault_makespan(), res.makespan());
}

// ---------------------------------------------------------------------------
// Two-ledger invariant across the solver paths.
// ---------------------------------------------------------------------------

struct SolverCase {
  Algorithm3d alg;
  bool sparse_zreduce;
  const char* name;
};

class SolverFaultTest : public ::testing::TestWithParam<SolverCase> {};

TEST_P(SolverFaultTest, FingerprintInvariantUnderFaultSchedules) {
  const SolverCase& sc = GetParam();
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/3);
  const auto b = random_rhs(a.rows(), 1, 42);

  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.algorithm = sc.alg;
  cfg.sparse_zreduce = sc.sparse_zreduce;

  cfg.run = det_opts(0);
  const DistSolveOutcome clean = solve_system_3d(fs, b, cfg, test_machine());
  ASSERT_FALSE(clean.run_stats.transport_totals().any());

  for (std::uint64_t seed : {1u, 7u, 23u}) {
    cfg.run = det_opts(seed);
    const DistSolveOutcome faulty = solve_system_3d(fs, b, cfg, faulty_machine());
    // Clean ledger: solution, virtual clocks, category times, message and
    // byte counts — all bit-identical to the fault-free run.
    EXPECT_TRUE(bitwise_equal(faulty.x, clean.x)) << sc.name << " seed " << seed;
    EXPECT_EQ(faulty.run_stats.fingerprint(), clean.run_stats.fingerprint())
        << sc.name << " seed " << seed;
    EXPECT_TRUE(message_counts_identical(faulty.run_stats, clean.run_stats));
    // Fault ledger: recovery cost is visible, never negative, and the fault
    // clock dominates the clean clock on every rank.
    EXPECT_GE(faulty.run_stats.fault_makespan(), faulty.run_stats.makespan());
    for (const auto& r : faulty.run_stats.ranks) {
      EXPECT_GE(r.fault_vtime, r.vtime);
    }
    // Replaying the same seed reproduces the fault ledger bit for bit.
    const DistSolveOutcome replay = solve_system_3d(fs, b, cfg, faulty_machine());
    EXPECT_TRUE(stats_identical(replay.run_stats, faulty.run_stats));
    EXPECT_EQ(replay.run_stats.fault_fingerprint(),
              faulty.run_stats.fault_fingerprint());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Paths, SolverFaultTest,
    ::testing::Values(SolverCase{Algorithm3d::kProposed, true, "proposed_sparse"},
                      SolverCase{Algorithm3d::kProposed, false, "proposed_dense"},
                      SolverCase{Algorithm3d::kBaseline, true, "baseline"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(FaultInjection, RetransmitTrafficIsExactlyTheExcessOverClean) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/3);
  const auto b = random_rhs(a.rows(), 1, 42);
  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.run = det_opts(3, /*trace=*/true);
  const DistSolveOutcome out = solve_system_3d(fs, b, cfg, faulty_machine());
  const TransportStats t = out.run_stats.transport_totals();
  ASSERT_NE(out.run_stats.trace, nullptr);
  // Every data frame is either a point-to-point send's first copy or an
  // accounted retransmission — nothing unattributed on the wire.
  EXPECT_EQ(t.data_frames,
            static_cast<std::int64_t>(out.run_stats.trace->num_sends()) +
                t.retransmits);
  EXPECT_GT(t.acks, 0);
  EXPECT_EQ(t.ack_bytes, t.acks * 16);
}

TEST(FaultInjection, SparseAllreduceCompletesUnderFaults) {
  const NdTree tree = shape_tree(3);
  const int pz = tree.num_leaves();
  for (const bool dense : {false, true}) {
    Cluster::run(
        pz, faulty_machine(),
        [&](Comm& c) {
          const int z = c.rank();
          std::vector<std::vector<Real>> storage;
          std::vector<ReduceSegment> segs;
          std::vector<Idx> my_nodes;
          for (Idx id : tree.path_to_root(tree.leaf_node_id(z))) {
            if (tree.node(id).depth >= tree.levels()) continue;
            my_nodes.push_back(id);
            auto& buf = storage.emplace_back(static_cast<size_t>(id % 3 + 1));
            for (size_t i = 0; i < buf.size(); ++i) {
              buf[i] = static_cast<Real>(z * 100 + id * 10) + static_cast<Real>(i);
            }
          }
          for (size_t k = 0; k < my_nodes.size(); ++k) {
            segs.push_back({my_nodes[k], storage[k]});
          }
          if (dense) {
            dense_allreduce_per_node(c, tree, segs);
          } else {
            sparse_allreduce(c, tree, segs);
          }
          for (size_t k = 0; k < my_nodes.size(); ++k) {
            const Idx id = my_nodes[k];
            const auto [lo, hi] = tree.leaf_range(id);
            for (size_t i = 0; i < storage[k].size(); ++i) {
              Real expect = 0;
              for (Idx g = lo; g < hi; ++g) {
                expect += static_cast<Real>(g * 100 + id * 10) + static_cast<Real>(i);
              }
              EXPECT_NEAR(storage[k][i], expect, 1e-12);
            }
          }
        },
        det_opts(11));
  }
}

TEST(FaultInjection, FreeRunningModeSolvesUnderFaults) {
  // Without the deterministic scheduler the clean clocks may differ run to
  // run, but the solve must still complete and the solution — fixed by
  // plan-order reductions, not arrival order — must match the sequential
  // reference.
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/3);
  const auto b = random_rhs(a.rows(), 1, 42);
  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.run.seed = 5;
  const DistSolveOutcome out = solve_system_3d(fs, b, cfg, faulty_machine());
  const auto ref = solve_system_seq(fs, b, 1);
  EXPECT_LT(max_abs_diff(out.x, ref), 1e-9);
}

// ---------------------------------------------------------------------------
// Unrecoverable schedules: structured failure, never a hang.
// ---------------------------------------------------------------------------

TEST(FaultInjection, RetriesExhaustedProducesFaultReport) {
  MachineModel m = test_machine();
  m.perturb.drop_prob = 1.0;
  m.transport.max_retries = 3;
  for (const bool det : {true, false}) {
    RunOptions opts;
    opts.deterministic = det;
    const Cluster::Result res = Cluster::try_run(
        2, m,
        [](Comm& c) {
          if (c.rank() == 0) {
            c.send(1, /*tag=*/7, std::vector<Real>{1.0});
          } else {
            c.recv(0, 7);
            ADD_FAILURE() << "recv of an undeliverable message returned";
          }
        },
        opts);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.fault.kind, FaultKind::kRetriesExhausted) << "det=" << det;
    EXPECT_EQ(res.fault.rank, 1);
    EXPECT_EQ(res.fault.peer, 0);
    EXPECT_EQ(res.fault.tag, 7);
    EXPECT_EQ(res.fault.retries, 3);
    EXPECT_NE(res.error.find("retries-exhausted"), std::string::npos);
  }
}

TEST(FaultInjection, PermanentStallReported) {
  MachineModel m = test_machine();
  m.perturb.stalls.push_back({/*rank=*/0, /*vt_begin=*/0.0,
                              /*vt_end=*/std::numeric_limits<double>::infinity(),
                              /*flight_factor=*/1.0, /*permanent=*/true});
  m.transport.max_retries = 2;
  const Cluster::Result res = Cluster::try_run(
      2, m,
      [](Comm& c) {
        if (c.rank() == 0) {
          c.send(1, /*tag=*/3, std::vector<Real>{1.0});
        } else {
          c.recv(0, 3);
        }
      },
      det_opts(0));
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.fault.kind, FaultKind::kRankStalled);
  EXPECT_EQ(res.fault.peer, 0);
}

TEST(FaultInjection, TransientStallRecoversAndChargesTheFaultClock) {
  MachineModel m = test_machine();
  // An outage covering the first send: the initial attempts vanish, a
  // retransmit after vt_end gets through.
  m.perturb.stalls.push_back({/*rank=*/1, /*vt_begin=*/0.0, /*vt_end=*/1e-4,
                              /*flight_factor=*/1.0, /*permanent=*/true});
  const Cluster::Result res = Cluster::run(
      2, m,
      [](Comm& c) {
        if (c.rank() == 0) {
          c.send(1, /*tag=*/1, std::vector<Real>{2.5});
        } else {
          const Message msg = c.recv(0, 1);
          EXPECT_EQ(msg.data[0], 2.5);
        }
      },
      det_opts(0));
  const TransportStats t = res.transport_totals();
  EXPECT_GT(t.retransmits, 0);
  EXPECT_GE(res.ranks[1].fault_vtime - res.ranks[1].vtime, 1e-4 - 1e-9);
  EXPECT_EQ(res.fault_makespan(), res.ranks[1].fault_vtime);
}

TEST(FaultInjection, SolverFaultNamesThePhase) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/3);
  const auto b = random_rhs(a.rows(), 1, 42);
  MachineModel m = test_machine();
  m.perturb.drop_prob = 1.0;
  m.transport.max_retries = 1;
  SolveConfig cfg;
  cfg.shape = {2, 2, 1};
  cfg.run = det_opts(0);
  try {
    solve_system_3d(fs, b, cfg, m);
    FAIL() << "solve under total loss should raise a FaultError";
  } catch (const FaultError& fe) {
    EXPECT_EQ(fe.report.kind, FaultKind::kRetriesExhausted);
    EXPECT_NE(fe.report.detail.find("sptrsv3d L-solve"), std::string::npos)
        << "detail: " << fe.report.detail;
    EXPECT_NE(fe.report.detail.find("solve_l_2d"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Watchdog: hangs become structured reports.
// ---------------------------------------------------------------------------

TEST(Watchdog, DeterministicRecvDeadlock) {
  const Cluster::Result res = Cluster::try_run(
      2, test_machine(),
      [](Comm& c) {
        if (c.rank() == 1) c.recv(0, /*tag=*/9);  // no one will ever send
      },
      det_opts(0));
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.fault.kind, FaultKind::kDeadlock);
  EXPECT_NE(res.fault.detail.find("waiting on recv"), std::string::npos)
      << "detail: " << res.fault.detail;
}

TEST(Watchdog, CyclicWaitReportNamesEveryWaitingPair) {
  // Hand-built 4-cycle: rank r waits on rank (r+1)%4 with tag 40+r, so no
  // rank can ever progress. The report must carry the witness's own
  // (src, tag) pair in the structured fields AND name all four members of
  // the deadlocked set, each with the exact (src, tag window) it sits on —
  // that text is what a user debugging a wedged solve acts on.
  constexpr int kP = 4;
  for (const bool det : {true, false}) {
    RunOptions opts;
    opts.deterministic = det;
    const Cluster::Result res = Cluster::try_run(
        kP, test_machine(),
        [](Comm& c) { c.recv((c.rank() + 1) % c.size(), 40 + c.rank()); }, opts);
    EXPECT_FALSE(res.ok()) << "det=" << det;
    ASSERT_EQ(res.fault.kind, FaultKind::kDeadlock) << "det=" << det;
    ASSERT_GE(res.fault.rank, 0);
    ASSERT_LT(res.fault.rank, kP);
    EXPECT_EQ(res.fault.peer, (res.fault.rank + 1) % kP) << "det=" << det;
    EXPECT_EQ(res.fault.tag, 40 + res.fault.rank) << "det=" << det;
    for (int r = 0; r < kP; ++r) {
      char expect[64];
      std::snprintf(expect, sizeof(expect), "rank %d waiting on recv(src=%d, tags[%d,%d)",
                    r, (r + 1) % kP, 40 + r, 41 + r);
      EXPECT_NE(res.fault.detail.find(expect), std::string::npos)
          << "det=" << det << ": report does not name rank " << r
          << "'s wait; detail: " << res.fault.detail;
    }
    // Post-mortem flight recorder (docs/OBSERVABILITY.md): the dump rides
    // on the report and must also name every member's parked receive —
    // recv waits are recorded *before* parking exactly so a wedged rank
    // still appears.
    ASSERT_FALSE(res.fault.flight.empty()) << "det=" << det;
    for (int r = 0; r < kP; ++r) {
      char expect[64];
      std::snprintf(expect, sizeof(expect), "recv-wait(src=%d, tags[%d,%d))",
                    (r + 1) % kP, 40 + r, 41 + r);
      bool found = false;
      for (const std::string& line : res.fault.flight) {
        if (line.rfind("rank " + std::to_string(r) + ":", 0) == 0 &&
            line.find(expect) != std::string::npos) {
          found = true;
        }
      }
      EXPECT_TRUE(found) << "det=" << det << ": flight dump does not name rank "
                         << r << "'s wait";
    }
  }
}

TEST(Watchdog, FreeRunningRecvDeadlock) {
  RunOptions opts;  // free-running, watchdog on by default
  const Cluster::Result res = Cluster::try_run(
      2, test_machine(),
      [](Comm& c) {
        if (c.rank() == 1) c.recv(0, /*tag=*/9);
      },
      opts);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.fault.kind, FaultKind::kDeadlock);
  EXPECT_NE(res.fault.detail.find("waiting on recv"), std::string::npos);
}

TEST(Watchdog, CollectiveDeadlockWhenAMemberExits) {
  for (const bool det : {true, false}) {
    RunOptions opts;
    opts.deterministic = det;
    const Cluster::Result res = Cluster::try_run(
        2, test_machine(),
        [](Comm& c) {
          if (c.rank() == 0) c.barrier();  // rank 1 returns without joining
        },
        opts);
    EXPECT_FALSE(res.ok()) << "det=" << det;
    EXPECT_EQ(res.fault.kind, FaultKind::kDeadlock);
    EXPECT_NE(res.fault.detail.find("collective"), std::string::npos);
  }
}

TEST(Watchdog, VtLimitBoundsRunawayClocks) {
  RunOptions opts = det_opts(0);
  opts.vt_limit = 1e-3;
  const Cluster::Result res = Cluster::try_run(
      1, test_machine(),
      [](Comm& c) {
        for (;;) c.compute(1e9);  // ~0.2 s of virtual time per call
      },
      opts);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.fault.kind, FaultKind::kVtLimit);
  EXPECT_GT(res.fault.vt, 1e-3);
}

TEST(Watchdog, ExceptionsStillPoisonPeersFirst) {
  // A rank failure must abort blocked peers (poison), not trip the deadlock
  // watchdog: the error surfaced is the original one.
  for (const bool det : {true, false}) {
    RunOptions opts;
    opts.deterministic = det;
    const Cluster::Result res = Cluster::try_run(
        4, test_machine(),
        [](Comm& c) {
          if (c.rank() == 3) throw std::runtime_error("boom");
          c.recv((c.rank() + 1) % 4, 0);  // everyone else blocks forever
        },
        opts);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.fault.kind, FaultKind::kNone) << res.error;
    EXPECT_NE(res.error.find("boom"), std::string::npos);
  }
}

TEST(Watchdog, BadSourceIsAnImmediateError) {
  EXPECT_THROW(Cluster::run(2, test_machine(),
                            [](Comm& c) {
                              if (c.rank() == 0) c.recv(5, 0);
                            }),
               std::out_of_range);
}

// ---------------------------------------------------------------------------
// Bypass-free when clean.
// ---------------------------------------------------------------------------

TEST(CleanBypass, NoTransportArtifactsWithoutFaults) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/3);
  const auto b = random_rhs(a.rows(), 1, 42);
  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.run = det_opts(0, /*trace=*/true);
  const DistSolveOutcome out = solve_system_3d(fs, b, cfg, test_machine());

  EXPECT_FALSE(out.run_stats.transport_totals().any());
  for (const auto& r : out.run_stats.ranks) {
    // Bitwise: the fault clock mirrors the clean clock's arithmetic exactly.
    EXPECT_TRUE(bitwise_equal({&r.fault_vtime, 1}, {&r.vtime, 1}));
  }
  EXPECT_EQ(out.run_stats.fault_makespan(), out.run_stats.makespan());

  ASSERT_NE(out.run_stats.trace, nullptr);
  const std::string json = out.run_stats.trace->chrome_json();
  EXPECT_EQ(json.find("retrans"), std::string::npos);
  EXPECT_EQ(json.find("fault_delay_us"), std::string::npos);
  EXPECT_EQ(json.find("transport"), std::string::npos);
}

TEST(CleanBypass, FaultySeedsLeaveCleanTraceJsonByteIdentical) {
  // The clean trace of a faulty run must serialize byte-identically to the
  // trace of a fault-free run except for the transport annotations — i.e.
  // stripping nothing, the fault-free JSON is reproducible across seeds of
  // a *clean* machine (delivery knobs ignored when zero).
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/3);
  const auto b = random_rhs(a.rows(), 1, 42);
  SolveConfig cfg;
  cfg.shape = {2, 2, 1};
  cfg.run = det_opts(4, /*trace=*/true);
  const DistSolveOutcome c1 = solve_system_3d(fs, b, cfg, test_machine());
  cfg.run = det_opts(9, /*trace=*/true);
  const DistSolveOutcome c2 = solve_system_3d(fs, b, cfg, test_machine());
  ASSERT_NE(c1.run_stats.trace, nullptr);
  ASSERT_NE(c2.run_stats.trace, nullptr);
  EXPECT_EQ(c1.run_stats.trace->chrome_json(), c2.run_stats.trace->chrome_json());
}

TEST(CleanBypass, FaultFingerprintExtendsCleanFingerprint) {
  const Cluster::Result a = Cluster::run(
      2, test_machine(),
      [](Comm& c) {
        if (c.rank() == 0) c.send(1, 0, std::vector<Real>{1.0});
        else c.recv(0, 0);
      },
      det_opts(0));
  const Cluster::Result b = Cluster::run(
      2, test_machine(),
      [](Comm& c) {
        if (c.rank() == 0) c.send(1, 0, std::vector<Real>{1.0});
        else c.recv(0, 0);
      },
      det_opts(0));
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fault_fingerprint(), b.fault_fingerprint());
  EXPECT_NE(a.fingerprint(), a.fault_fingerprint());  // distinct domains
}

}  // namespace
}  // namespace sptrsv
