#include <gtest/gtest.h>

#include <vector>

#include "test_support.hpp"
#include "trace/trace.hpp"

namespace sptrsv {
namespace {

using test::bitwise_equal;
using test::random_rhs;
using test::test_machine;

constexpr RunOptions kDet{.deterministic = true, .seed = 0};

/// Test machine with an explicit crash schedule (rank, vt interpreted on the
/// post-reset_clock solve clock).
MachineModel crashy_machine(std::vector<PerturbationModel::Crash> crashes) {
  MachineModel m = test_machine();
  m.perturb.crashes = std::move(crashes);
  return m;
}

DistSolveOutcome solve(const test::RandomSystem& s, std::span<const Real> b,
                       Algorithm3d alg, const MachineModel& m,
                       RunOptions run = kDet) {
  SolveConfig cfg;
  cfg.shape = s.shape;
  cfg.algorithm = alg;
  cfg.nrhs = s.nrhs;
  cfg.run = run;
  return solve_system_3d(s.fs, b, cfg, m);
}

/// The tentpole invariant, asserted everywhere below: a recovered run is
/// bitwise indistinguishable from its fault-free twin on the clean ledger —
/// solution, clean fingerprint, per-category message counts — while every
/// recovery cost sits on the fault ledger.
void expect_clean_ledger_invariant(const DistSolveOutcome& clean,
                                   const DistSolveOutcome& crashed) {
  EXPECT_TRUE(bitwise_equal(clean.x, crashed.x));
  EXPECT_EQ(clean.run_stats.fingerprint(), crashed.run_stats.fingerprint());
  EXPECT_DOUBLE_EQ(clean.run_stats.makespan(), crashed.run_stats.makespan());
  EXPECT_TRUE(test::message_counts_identical(clean.run_stats, crashed.run_stats));
}

// ---------------------------------------------------------------------------
// ULFM-style primitives (revoke / agree / shrink) as a user-facing API.
// ---------------------------------------------------------------------------

TEST(UlfmPrimitives, RevokeFailsPendingAndFutureOps) {
  for (const bool det : {false, true}) {
    Cluster::run(3, test_machine(), [](Comm& c) {
      if (c.rank() == 1) {
        // Posted before the revoke lands: must fail with a structured
        // kRevoked report instead of hanging forever.
        try {
          c.recv(0, /*tag=*/7);
          FAIL() << "recv on a revoked communicator returned";
        } catch (const FaultError& fe) {
          EXPECT_EQ(fe.report.kind, FaultKind::kRevoked);
          EXPECT_EQ(fe.report.rank, 1);
        }
      } else if (c.rank() == 0) {
        c.advance(5e-5, TimeCategory::kFp);  // let rank 1 park in its recv first
        c.revoke();
      } else {
        c.advance(1e-4, TimeCategory::kFp);  // arrives after the revoke: fails at entry
        EXPECT_THROW(c.recv(0, 7), FaultError);
      }
      EXPECT_TRUE(c.revoked());
      // Repair collectives still run on the revoked communicator.
      EXPECT_EQ(c.agree(~std::int64_t{0}), ~std::int64_t{0});
    }, RunOptions{.deterministic = det});
  }
}

TEST(UlfmPrimitives, AgreeIsBitwiseAndOverAllMembers) {
  Cluster::run(4, test_machine(), [](Comm& c) {
    const std::int64_t mine = c.rank() == 2 ? 0x6 : 0x7;
    EXPECT_EQ(c.agree(mine), 0x6);
    // Deliberate API calls are clean-ledger traffic, like barrier().
    EXPECT_GT(c.messages_sent(TimeCategory::kOther), 0);
  }, kDet);
}

TEST(UlfmPrimitives, ShrinkRebuildsSurvivorCommunicator) {
  for (const bool det : {false, true}) {
    Cluster::run(4, test_machine(), [](Comm& c) {
      if (c.rank() == 3) return;  // the "dead" rank never joins the repair
      Comm sub = c.shrink({3});
      EXPECT_EQ(sub.size(), 3);
      EXPECT_EQ(sub.rank(), c.rank());  // survivors keep their relative order
      sub.barrier();
      // The shrunken communicator is fully functional.
      if (sub.rank() == 0) {
        sub.send(2, 11, std::vector<Real>{2.5});
      } else if (sub.rank() == 2) {
        EXPECT_EQ(sub.recv(0, 11).data[0], 2.5);
      }
    }, RunOptions{.deterministic = det});
  }
}

TEST(UlfmPrimitives, ShrinkValidatesFailedList) {
  Cluster::run(2, test_machine(), [](Comm& c) {
    if (c.rank() == 0) {
      EXPECT_THROW((void)c.shrink({0}), std::invalid_argument);  // self
      EXPECT_THROW((void)c.shrink({5}), std::out_of_range);
    }
  });
}

// ---------------------------------------------------------------------------
// Checkpoint layer: bypass when off, fault-ledger-only cost when on.
// ---------------------------------------------------------------------------

TEST(Checkpointing, BypassedWithoutCrashModel) {
  const auto r = Cluster::run(2, test_machine(), [](Comm& c) {
    std::vector<Real> state{1.0, 2.0};
    const CheckpointScope scope = c.register_checkpoint(
        "t", [&] { return state; }, [](const CheckpointImage&) {});
    c.checkpoint_epoch();
    c.advance(1e-6, TimeCategory::kFp);
  }, kDet);
  EXPECT_EQ(r.recovery_stats().checkpoints, 0);
  EXPECT_FALSE(r.recovery_stats().any());
  EXPECT_DOUBLE_EQ(r.fault_makespan(), r.makespan());
}

TEST(Checkpointing, TrafficLandsOnFaultLedgerOnly) {
  // A crash scheduled far past the run's end activates the crash model
  // (hooks capture, images ship) without ever firing.
  const auto clean = Cluster::run(2, test_machine(), [](Comm& c) {
    std::vector<Real> state{1.0, 2.0, 3.0};
    const CheckpointScope scope = c.register_checkpoint(
        "t", [&] { return state; }, [](const CheckpointImage&) {});
    c.advance(1e-6, TimeCategory::kFp);
    c.checkpoint_epoch(7);
    c.barrier();
  }, kDet);
  const auto ckpt = Cluster::run(2, crashy_machine({{0, 1e3}}), [](Comm& c) {
    std::vector<Real> state{1.0, 2.0, 3.0};
    const CheckpointScope scope = c.register_checkpoint(
        "t", [&] { return state; }, [](const CheckpointImage&) {});
    c.advance(1e-6, TimeCategory::kFp);
    c.checkpoint_epoch(7);
    c.barrier();
  }, kDet);
  EXPECT_EQ(clean.fingerprint(), ckpt.fingerprint());   // clean ledger untouched
  EXPECT_EQ(ckpt.recovery_stats().checkpoints, 2);      // one epoch per rank
  EXPECT_GT(ckpt.recovery_stats().checkpoint_bytes, 0);
  EXPECT_GT(ckpt.fault_makespan(), ckpt.makespan());
  EXPECT_NE(clean.fault_fingerprint(), ckpt.fault_fingerprint());
}

// ---------------------------------------------------------------------------
// End-to-end solver recovery: bit-identical solutions under crash schedules.
// ---------------------------------------------------------------------------

TEST(CrashRecovery, Solver2dBitIdenticalUnderCrash) {
  const test::RandomSystem s = test::random_system(41);
  const auto b = random_rhs(s.a.rows(), s.nrhs, 14);
  const auto clean = solve(s, b, Algorithm3d::kProposed, test_machine());
  // Kill a non-root rank halfway through its own solve.
  const int victim = s.shape.size() > 1 ? 1 : 0;
  const double t =
      0.5 * clean.run_stats.ranks[static_cast<size_t>(victim)].vtime;
  const auto crashed =
      solve(s, b, Algorithm3d::kProposed, crashy_machine({{victim, t}}));
  ASSERT_GE(crashed.run_stats.recovery_stats().crashes, 1);
  expect_clean_ledger_invariant(clean, crashed);
  EXPECT_GT(crashed.run_stats.fault_makespan(), crashed.run_stats.makespan());
}

TEST(CrashRecovery, Proposed3dBitIdenticalUnderCrash) {
  const test::RandomSystem s = test::random_system(7);  // draws pz >= 1
  const auto b = random_rhs(s.a.rows(), s.nrhs, 3);
  const auto clean = solve(s, b, Algorithm3d::kProposed, test_machine());
  const int victim = 1 % s.shape.size();
  const double t =
      0.5 * clean.run_stats.ranks[static_cast<size_t>(victim)].vtime;
  const auto crashed =
      solve(s, b, Algorithm3d::kProposed, crashy_machine({{victim, t}}));
  ASSERT_GE(crashed.run_stats.recovery_stats().crashes, 1);
  expect_clean_ledger_invariant(clean, crashed);
}

TEST(CrashRecovery, Baseline3dBitIdenticalUnderCrash) {
  const test::RandomSystem s = test::random_system(7);
  const auto b = random_rhs(s.a.rows(), s.nrhs, 3);
  const auto clean = solve(s, b, Algorithm3d::kBaseline, test_machine());
  const int victim = 1 % s.shape.size();
  const double t =
      0.5 * clean.run_stats.ranks[static_cast<size_t>(victim)].vtime;
  const auto crashed =
      solve(s, b, Algorithm3d::kBaseline, crashy_machine({{victim, t}}));
  ASSERT_GE(crashed.run_stats.recovery_stats().crashes, 1);
  expect_clean_ledger_invariant(clean, crashed);
}

TEST(CrashRecovery, KillingMakespanCriticalRankStillRecovers) {
  const test::RandomSystem s = test::random_system(23);
  const auto b = random_rhs(s.a.rows(), s.nrhs, 5);
  const auto clean = solve(s, b, Algorithm3d::kProposed, test_machine());
  int critical = 0;
  for (size_t r = 0; r < clean.run_stats.ranks.size(); ++r) {
    if (clean.run_stats.ranks[r].vtime >
        clean.run_stats.ranks[static_cast<size_t>(critical)].vtime) {
      critical = static_cast<int>(r);
    }
  }
  const double t =
      0.5 * clean.run_stats.ranks[static_cast<size_t>(critical)].vtime;
  const auto crashed =
      solve(s, b, Algorithm3d::kProposed, crashy_machine({{critical, t}}));
  ASSERT_GE(crashed.run_stats.recovery_stats().crashes, 1);
  expect_clean_ledger_invariant(clean, crashed);
}

TEST(CrashRecovery, DoubleFailureDuringRecoveryWindow) {
  // Two non-buddy victims whose detection windows overlap: both recoveries
  // are in flight at once, both must complete, and the run still matches
  // the fault-free twin bit for bit.
  // First seed from 100 whose drawn layout has at least four ranks.
  std::uint64_t seed = 100;
  test::RandomSystem s = test::random_system(seed);
  while (s.shape.size() < 4) s = test::random_system(++seed);
  const auto b = random_rhs(s.a.rows(), s.nrhs, 9);
  const auto clean = solve(s, b, Algorithm3d::kProposed, test_machine());
  const int v1 = 0;
  const int v2 = 2;  // not v1's buddy (v1+1) and v1 is not v2's buddy
  const double t1 = 0.4 * clean.run_stats.ranks[0].vtime;
  const auto crashed = solve(
      s, b, Algorithm3d::kProposed,
      crashy_machine({{v1, t1}, {v2, t1 + 1e-6}}));
  ASSERT_EQ(crashed.run_stats.recovery_stats().crashes, 2);
  EXPECT_EQ(crashed.run_stats.recovery_stats().spares_used, 2);
  expect_clean_ledger_invariant(clean, crashed);
}

// ---------------------------------------------------------------------------
// Unrecoverable verdicts: precise structured reports, never wrong answers.
// ---------------------------------------------------------------------------

TEST(CrashRecovery, BuddyPairLossIsUnrecoverableWithPreciseReport) {
  // Ranks 1 and 2 die inside one detection window; 2 holds 1's checkpoint,
  // so rank 1's crash must surface as a buddy-loss FaultReport naming both.
  const auto r = Cluster::try_run(4, crashy_machine({{1, 1e-4}, {2, 1.2e-4}}),
                                  [](Comm& c) { c.advance(1e-3, TimeCategory::kFp); }, kDet);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.fault.kind, FaultKind::kBuddyLoss);
  EXPECT_EQ(r.fault.rank, 1);
  EXPECT_EQ(r.fault.peer, 2);
  EXPECT_DOUBLE_EQ(r.fault.vt, 1e-4);
}

TEST(CrashRecovery, SingleRankSelfBuddyIsAlwaysLost) {
  const auto r = Cluster::try_run(1, crashy_machine({{0, 1e-5}}),
                                  [](Comm& c) { c.advance(1e-3, TimeCategory::kFp); }, kDet);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.fault.kind, FaultKind::kBuddyLoss);
  EXPECT_EQ(r.fault.rank, 0);
  EXPECT_EQ(r.fault.peer, 0);
}

TEST(CrashRecovery, SparePoolExhaustionIsReported) {
  MachineModel m = crashy_machine({{0, 1e-4}, {2, 5e-3}});
  m.recovery.spare_ranks = 1;  // second crash outlives the pool
  const auto r = Cluster::try_run(4, m, [](Comm& c) { c.advance(1e-2, TimeCategory::kFp); }, kDet);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.fault.kind, FaultKind::kSparesExhausted);
  EXPECT_EQ(r.fault.rank, 2);
}

// ---------------------------------------------------------------------------
// Stream isolation and trace byte-identity.
// ---------------------------------------------------------------------------

TEST(CrashRecovery, MtbfStreamNeverShiftsTimingOrDeliveryDraws) {
  // Enabling an MTBF crash model on top of full timing perturbation and
  // delivery faults must not move a single pre-existing draw: the crash
  // stream is salted and counted separately.
  const test::RandomSystem s = test::random_system(11);
  const auto b = random_rhs(s.a.rows(), s.nrhs, 2);
  MachineModel base = test::perturbed_machine();
  const auto without = solve(s, b, Algorithm3d::kProposed, base,
                             RunOptions{.deterministic = true, .seed = 5});
  MachineModel with = base;
  with.perturb.crash_mtbf = 10.0;  // active model, crashes far past the solve
  const auto withm = solve(s, b, Algorithm3d::kProposed, with,
                           RunOptions{.deterministic = true, .seed = 5});
  EXPECT_TRUE(bitwise_equal(without.x, withm.x));
  EXPECT_EQ(without.run_stats.fingerprint(), withm.run_stats.fingerprint());
}

TEST(CrashRecovery, CleanTraceJsonByteIdenticalUnderCrash) {
  const test::RandomSystem s = test::random_system(7);
  const auto b = random_rhs(s.a.rows(), s.nrhs, 3);
  const RunOptions traced{.deterministic = true, .seed = 0, .trace = true};
  const auto clean =
      solve(s, b, Algorithm3d::kProposed, test_machine(), traced);
  const int victim = 1 % s.shape.size();
  const double t =
      0.5 * clean.run_stats.ranks[static_cast<size_t>(victim)].vtime;
  const auto crashed = solve(s, b, Algorithm3d::kProposed,
                             crashy_machine({{victim, t}}), traced);
  ASSERT_GE(crashed.run_stats.recovery_stats().crashes, 1);
  ASSERT_NE(clean.run_stats.trace, nullptr);
  ASSERT_NE(crashed.run_stats.trace, nullptr);
  // Clean-ledger export: byte-identical to the fault-free twin.
  EXPECT_EQ(clean.run_stats.trace->chrome_json(/*fault_ledger=*/false),
            crashed.run_stats.trace->chrome_json(/*fault_ledger=*/false));
  // Full-fidelity export: the crashed run carries crash/restore/checkpoint
  // markers the clean run does not.
  EXPECT_NE(clean.run_stats.trace->chrome_json(),
            crashed.run_stats.trace->chrome_json());
  EXPECT_NE(crashed.run_stats.trace->chrome_json(),
            crashed.run_stats.trace->chrome_json(/*fault_ledger=*/false));
}

}  // namespace
}  // namespace sptrsv
