#include <gtest/gtest.h>

#include <algorithm>

#include "ordering/min_degree.hpp"
#include "ordering/nested_dissection.hpp"
#include "sparse/generators.hpp"

namespace sptrsv {
namespace {

TEST(Bisect, NoEdgesBetweenParts) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = Graph::from_matrix(make_random_symmetric(120, 3.0, seed));
    const auto label = bisect_graph(g);
    for (Idx v = 0; v < g.num_vertices(); ++v) {
      if (label[static_cast<size_t>(v)] == 2) continue;
      for (const Idx u : g.neighbors(v)) {
        if (label[static_cast<size_t>(u)] == 2) continue;
        EXPECT_EQ(label[static_cast<size_t>(v)], label[static_cast<size_t>(u)])
            << "A-B edge " << v << "-" << u << " seed " << seed;
      }
    }
  }
}

TEST(Bisect, GridSeparatorIsSmall) {
  const Graph g = Graph::from_matrix(make_grid2d(16, 16, Stencil2d::kFivePoint));
  const auto label = bisect_graph(g);
  Idx counts[3] = {0, 0, 0};
  for (const auto l : label) ++counts[l];
  // A good 16x16 grid separator is O(16); allow slack but far below n.
  EXPECT_LE(counts[2], 48);
  EXPECT_GT(counts[0], 64);
  EXPECT_GT(counts[1], 64);
}

TEST(Bisect, SingleVertex) {
  const Graph g = Graph::from_raw(1, {0, 0}, {});
  const auto label = bisect_graph(g);
  EXPECT_EQ(label[0], 0);  // lone vertex goes to part A
}

class NdTest : public ::testing::TestWithParam<int> {};

TEST_P(NdTest, PermutationAndTreeInvariants) {
  const int levels = GetParam();
  const CsrMatrix a = make_grid2d(12, 12, Stencil2d::kNinePoint);
  NdOptions opt;
  opt.levels = levels;
  const NdOrdering nd = nested_dissection(a, opt);
  EXPECT_TRUE(is_permutation(nd.perm));
  EXPECT_EQ(nd.tree.levels(), levels);
  EXPECT_EQ(nd.tree.num_leaves(), Idx{1} << levels);
  EXPECT_EQ(nd.tree.num_nodes(), (Idx{1} << (levels + 1)) - 1);
  EXPECT_TRUE(nd.tree.check_invariants(a.rows()));
}

TEST_P(NdTest, SeparatorsActuallySeparate) {
  // In the permuted matrix, two columns living in disjoint subtrees of the
  // tracked tree must have no direct coupling.
  const int levels = GetParam();
  const CsrMatrix a = make_grid2d(12, 12, Stencil2d::kNinePoint);
  NdOptions opt;
  opt.levels = levels;
  const NdOrdering nd = nested_dissection(a, opt);
  const CsrMatrix p = a.permuted_symmetric(nd.perm);

  // node_of_column per column; two nodes are "related" if one is an
  // ancestor of the other.
  auto related = [&](Idx na, Idx nb) {
    for (Idx v = na; v != kNoIdx; v = nd.tree.node(v).parent) {
      if (v == nb) return true;
    }
    for (Idx v = nb; v != kNoIdx; v = nd.tree.node(v).parent) {
      if (v == na) return true;
    }
    return false;
  };
  std::vector<Idx> node_of(static_cast<size_t>(p.rows()));
  for (Idx c = 0; c < p.rows(); ++c) node_of[static_cast<size_t>(c)] = nd.tree.node_of_column(c);

  for (Idx r = 0; r < p.rows(); ++r) {
    for (const Idx c : p.row_cols(r)) {
      EXPECT_TRUE(related(node_of[static_cast<size_t>(r)], node_of[static_cast<size_t>(c)]))
          << "coupling across unrelated ND nodes: rows " << r << "," << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, NdTest, ::testing::Values(0, 1, 2, 3, 4));

TEST(Nd, LeafRangeIdentities) {
  const CsrMatrix a = make_grid2d(10, 10, Stencil2d::kFivePoint);
  NdOptions opt;
  opt.levels = 3;
  const NdOrdering nd = nested_dissection(a, opt);
  const auto& t = nd.tree;
  // Root spans all leaves.
  EXPECT_EQ(t.leaf_range(0), (std::pair<Idx, Idx>{0, 8}));
  // Each leaf spans itself.
  for (Idx l = 0; l < t.num_leaves(); ++l) {
    EXPECT_EQ(t.leaf_range(t.leaf_node_id(l)), (std::pair<Idx, Idx>{l, l + 1}));
  }
  // A depth-1 node spans half the leaves.
  EXPECT_EQ(t.leaf_range(1), (std::pair<Idx, Idx>{0, 4}));
  EXPECT_EQ(t.leaf_range(2), (std::pair<Idx, Idx>{4, 8}));
}

TEST(Nd, PathToRoot) {
  const CsrMatrix a = make_grid2d(8, 8, Stencil2d::kFivePoint);
  NdOptions opt;
  opt.levels = 2;
  const NdOrdering nd = nested_dissection(a, opt);
  const auto path = nd.tree.path_to_root(nd.tree.leaf_node_id(3));
  ASSERT_EQ(path.size(), 3u);  // leaf, depth-1, root
  EXPECT_EQ(path.back(), 0);
  EXPECT_EQ(path[0], nd.tree.leaf_node_id(3));
}

TEST(Nd, DisconnectedGraphStillValid) {
  // Two disjoint grids glued into one matrix.
  CooMatrix coo;
  const CsrMatrix g = make_grid2d(4, 4, Stencil2d::kFivePoint);
  coo.rows = coo.cols = 32;
  for (Idx r = 0; r < 16; ++r) {
    const auto cs = g.row_cols(r);
    const auto vs = g.row_vals(r);
    for (size_t i = 0; i < cs.size(); ++i) {
      coo.add(r, cs[i], vs[i]);
      coo.add(r + 16, cs[i] + 16, vs[i]);
    }
  }
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  NdOptions opt;
  opt.levels = 2;
  const NdOrdering nd = nested_dissection(a, opt);
  EXPECT_TRUE(is_permutation(nd.perm));
  EXPECT_TRUE(nd.tree.check_invariants(32));
}

TEST(MinDegree, ProducesValidPermutation) {
  const Graph g = Graph::from_matrix(make_grid2d(7, 9, Stencil2d::kNinePoint));
  const auto perm = min_degree_ordering(g);
  EXPECT_TRUE(is_permutation(perm));
}

TEST(MinDegree, StarGraphEliminatesLeavesFirst) {
  // Star: center 0 adjacent to 1..5. Min degree removes all leaves before
  // the center.
  CooMatrix coo;
  coo.rows = coo.cols = 6;
  for (Idx i = 0; i < 6; ++i) coo.add(i, i, 1.0);
  for (Idx i = 1; i < 6; ++i) coo.add_sym(0, i, -1.0);
  const Graph g = Graph::from_matrix(CsrMatrix::from_coo(coo));
  const auto perm = min_degree_ordering(g);
  // The center survives until it ties with the final leaf (degree 1 vs 1,
  // tie-break on id): it must be one of the last two eliminated.
  EXPECT_TRUE(perm.back() == 0 || perm[perm.size() - 2] == 0);
  // Leaves (degree 1) open the elimination.
  EXPECT_NE(perm.front(), 0);
}

TEST(MinDegree, DeterministicTieBreaking) {
  const Graph g = Graph::from_matrix(make_grid2d(6, 6, Stencil2d::kFivePoint));
  EXPECT_EQ(min_degree_ordering(g), min_degree_ordering(g));
}

TEST(MinDegree, LeafOrderingOptionSolvesEndToEnd) {
  const CsrMatrix a = make_grid2d(12, 12, Stencil2d::kNinePoint);
  NdOptions opt;
  opt.levels = 2;
  opt.min_partition = 40;
  opt.leaf_ordering = LeafOrdering::kMinDegree;
  const NdOrdering nd = nested_dissection(a, opt);
  EXPECT_TRUE(is_permutation(nd.perm));
  EXPECT_TRUE(nd.tree.check_invariants(a.rows()));
}

TEST(MinDegree, ReducesFillOverNaturalLeafOrder) {
  // With recursion stopped early (large terminal partitions), the terminal
  // orderer matters; min degree must not lose to natural order.
  const CsrMatrix a = make_grid2d(14, 14, Stencil2d::kFivePoint);
  auto fill_of = [&](LeafOrdering lo) {
    NdOptions opt;
    opt.levels = 1;
    opt.min_partition = 90;  // big terminals: the leaf orderer dominates
    opt.leaf_ordering = lo;
    const NdOrdering nd = nested_dissection(a, opt);
    const CsrMatrix p = a.permuted_symmetric(nd.perm);
    // Exact scalar fill via dense symbolic elimination.
    const Idx n = p.rows();
    std::vector<std::vector<bool>> f(static_cast<size_t>(n),
                                     std::vector<bool>(static_cast<size_t>(n), false));
    for (Idx i = 0; i < n; ++i) {
      for (const Idx j : p.row_cols(i)) {
        if (j <= i) f[static_cast<size_t>(i)][static_cast<size_t>(j)] = true;
      }
    }
    Nnz cnt = 0;
    for (Idx k = 0; k < n; ++k) {
      for (Idx i = k + 1; i < n; ++i) {
        if (!f[static_cast<size_t>(i)][static_cast<size_t>(k)]) continue;
        for (Idx j = i; j < n; ++j) {
          if (f[static_cast<size_t>(j)][static_cast<size_t>(k)]) {
            f[static_cast<size_t>(j)][static_cast<size_t>(i)] = true;
          }
        }
      }
    }
    for (Idx i = 0; i < n; ++i) {
      for (Idx j = 0; j <= i; ++j) cnt += f[static_cast<size_t>(i)][static_cast<size_t>(j)];
    }
    return cnt;
  };
  EXPECT_LE(fill_of(LeafOrdering::kMinDegree), fill_of(LeafOrdering::kNatural));
}

TEST(Nd, FillReductionBeatsNaturalOrderOnGrid) {
  // Sanity check that the ordering actually reduces fill vs natural order.
  const CsrMatrix a = make_grid2d(16, 16, Stencil2d::kFivePoint);
  NdOptions opt;
  opt.levels = 3;
  const NdOrdering nd = nested_dissection(a, opt);
  const CsrMatrix p = a.permuted_symmetric(nd.perm);

  auto fill_count = [](const CsrMatrix& m) {
    // Dense symbolic Cholesky fill count (n is small).
    const Idx n = m.rows();
    std::vector<std::vector<bool>> f(static_cast<size_t>(n),
                                     std::vector<bool>(static_cast<size_t>(n), false));
    for (Idx i = 0; i < n; ++i) {
      for (const Idx j : m.row_cols(i)) {
        if (j <= i) f[static_cast<size_t>(i)][static_cast<size_t>(j)] = true;
      }
    }
    Nnz cnt = 0;
    for (Idx k = 0; k < n; ++k) {
      for (Idx i = k + 1; i < n; ++i) {
        if (!f[static_cast<size_t>(i)][static_cast<size_t>(k)]) continue;
        for (Idx j = i; j < n; ++j) {
          if (f[static_cast<size_t>(j)][static_cast<size_t>(k)]) {
            f[static_cast<size_t>(j)][static_cast<size_t>(i)] = true;
          }
        }
      }
    }
    for (Idx i = 0; i < n; ++i) {
      for (Idx j = 0; j <= i; ++j) cnt += f[static_cast<size_t>(i)][static_cast<size_t>(j)];
    }
    return cnt;
  };
  EXPECT_LT(fill_count(p), fill_count(a));
}

}  // namespace
}  // namespace sptrsv
