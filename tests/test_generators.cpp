#include <gtest/gtest.h>

#include <cmath>

#include "sparse/generators.hpp"
#include "sparse/paper_matrices.hpp"

namespace sptrsv {
namespace {

void expect_solver_ready(const CsrMatrix& m) {
  EXPECT_EQ(m.rows(), m.cols());
  EXPECT_TRUE(m.has_symmetric_pattern());
  EXPECT_TRUE(m.has_full_diagonal());
  // Diagonal dominance (what makes unpivoted LU safe).
  for (Idx r = 0; r < m.rows(); ++r) {
    Real offdiag = 0;
    const auto cs = m.row_cols(r);
    const auto vs = m.row_vals(r);
    for (size_t i = 0; i < cs.size(); ++i) {
      if (cs[i] != r) offdiag += std::abs(vs[i]);
    }
    ASSERT_GT(m.at(r, r), offdiag) << "row " << r;
  }
}

TEST(Generators, Grid2dFivePointShape) {
  const CsrMatrix m = make_grid2d(4, 3, Stencil2d::kFivePoint);
  EXPECT_EQ(m.rows(), 12);
  expect_solver_ready(m);
  // Interior node (1,1) = id 5 has 4 neighbours + diagonal.
  EXPECT_EQ(m.row_cols(5).size(), 5u);
  // Corner node 0 has 2 neighbours + diagonal.
  EXPECT_EQ(m.row_cols(0).size(), 3u);
}

TEST(Generators, Grid2dNinePointShape) {
  const CsrMatrix m = make_grid2d(4, 4, Stencil2d::kNinePoint);
  expect_solver_ready(m);
  // Interior node (1,1) = id 5 has 8 neighbours + diagonal.
  EXPECT_EQ(m.row_cols(5).size(), 9u);
}

TEST(Generators, Grid2dMultiDof) {
  const CsrMatrix m = make_grid2d(3, 3, Stencil2d::kFivePoint, {.dofs_per_node = 3});
  EXPECT_EQ(m.rows(), 27);
  expect_solver_ready(m);
  // All dofs of adjacent nodes are coupled: interior node has
  // (4 neighbours + self) * 3 dofs columns.
  EXPECT_EQ(m.row_cols(4 * 3).size(), 15u);
}

TEST(Generators, Grid3dSevenPointShape) {
  const CsrMatrix m = make_grid3d(3, 3, 3, Stencil3d::kSevenPoint);
  EXPECT_EQ(m.rows(), 27);
  expect_solver_ready(m);
  // Center node (1,1,1) = id 13 has 6 neighbours + diagonal.
  EXPECT_EQ(m.row_cols(13).size(), 7u);
}

TEST(Generators, Grid3dTwentySevenPointShape) {
  const CsrMatrix m = make_grid3d(3, 3, 3, Stencil3d::kTwentySevenPoint);
  expect_solver_ready(m);
  // Center node has 26 neighbours + diagonal.
  EXPECT_EQ(m.row_cols(13).size(), 27u);
}

TEST(Generators, RandomGeometricIsSolverReady) {
  const CsrMatrix m = make_random_geometric(300, 8.0, 2.0, 7);
  EXPECT_EQ(m.rows(), 300);
  expect_solver_ready(m);
  EXPECT_GT(m.nnz(), 300);  // has off-diagonal entries
}

TEST(Generators, RandomSymmetricDeterministicInSeed) {
  const CsrMatrix a = make_random_symmetric(100, 4.0, 99);
  const CsrMatrix b = make_random_symmetric(100, 4.0, 99);
  ASSERT_EQ(a.nnz(), b.nnz());
  for (Idx r = 0; r < a.rows(); ++r) {
    const auto av = a.row_vals(r);
    const auto bv = b.row_vals(r);
    for (size_t i = 0; i < av.size(); ++i) EXPECT_DOUBLE_EQ(av[i], bv[i]);
  }
  const CsrMatrix c = make_random_symmetric(100, 4.0, 100);
  EXPECT_NE(a.nnz(), c.nnz());  // different seed, different matrix (overwhelmingly)
}

TEST(Generators, BandedShape) {
  const CsrMatrix m = make_banded(10, 2);
  expect_solver_ready(m);
  EXPECT_EQ(m.row_cols(5).size(), 5u);  // bw 2 each side + diag
  EXPECT_EQ(m.row_cols(0).size(), 3u);
}

TEST(Generators, InvalidArgumentsThrow) {
  EXPECT_THROW(make_grid2d(0, 3, Stencil2d::kFivePoint), std::invalid_argument);
  EXPECT_THROW(make_grid3d(2, -1, 2, Stencil3d::kSevenPoint), std::invalid_argument);
  EXPECT_THROW(make_random_geometric(0, 4.0, 1.0), std::invalid_argument);
  EXPECT_THROW(make_banded(4, -1), std::invalid_argument);
}

class PaperMatrixTest : public ::testing::TestWithParam<PaperMatrix> {};

TEST_P(PaperMatrixTest, TinyInstanceIsSolverReady) {
  const CsrMatrix m = make_paper_matrix(GetParam(), MatrixScale::kTiny);
  expect_solver_ready(m);
  EXPECT_GE(m.rows(), 100);  // big enough to be meaningful
}

TEST_P(PaperMatrixTest, ScalesGrow) {
  const CsrMatrix tiny = make_paper_matrix(GetParam(), MatrixScale::kTiny);
  const CsrMatrix small = make_paper_matrix(GetParam(), MatrixScale::kSmall);
  EXPECT_GT(small.rows(), tiny.rows());
}

TEST_P(PaperMatrixTest, HasNameAndDescription) {
  EXPECT_FALSE(paper_matrix_name(GetParam()).empty());
  EXPECT_FALSE(paper_matrix_description(GetParam()).empty());
}

INSTANTIATE_TEST_SUITE_P(AllPaperMatrices, PaperMatrixTest,
                         ::testing::ValuesIn(all_paper_matrices()),
                         [](const auto& info) { return paper_matrix_name(info.param); });

}  // namespace
}  // namespace sptrsv
