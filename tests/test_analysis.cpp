#include <gtest/gtest.h>

#include "core/sptrsv3d.hpp"
#include "factor/supernodal_lu.hpp"
#include "ordering/etree.hpp"
#include "sparse/generators.hpp"
#include "sparse/paper_matrices.hpp"
#include "symbolic/analysis.hpp"
#include "symbolic/colcounts.hpp"

namespace sptrsv {
namespace {

SymbolicStructure analyze(const CsrMatrix& a, const SupernodeOptions& opt = {}) {
  const auto parent = elimination_tree(a);
  const auto counts = cholesky_col_counts(a, parent);
  return block_symbolic(a, find_supernodes(parent, counts, opt));
}

TEST(SolveDag, DiagonalMatrixIsFullyParallel) {
  CooMatrix coo;
  coo.rows = coo.cols = 8;
  for (Idx i = 0; i < 8; ++i) coo.add(i, i, 1.0);
  SupernodeOptions opt;
  opt.relax_width = 0;
  const auto s = analyze_solve_dag(analyze(CsrMatrix::from_coo(coo), opt));
  EXPECT_EQ(s.num_tasks, 8);
  EXPECT_EQ(s.critical_path_length, 1);
  EXPECT_DOUBLE_EQ(s.parallelism(), 8.0);  // all tasks identical, independent
  ASSERT_EQ(s.level_sizes.size(), 1u);
  EXPECT_EQ(s.level_sizes[0], 8);
}

TEST(SolveDag, ChainMatrixIsFullySequential) {
  // Tridiagonal with scalar supernodes: every task depends on the previous.
  const CsrMatrix a = make_banded(12, 1);
  SupernodeOptions opt;
  opt.relax_width = 0;
  opt.max_width = 1;
  const auto s = analyze_solve_dag(analyze(a, opt));
  EXPECT_EQ(s.num_tasks, 12);
  EXPECT_EQ(s.critical_path_length, 12);
  EXPECT_LT(s.parallelism(), 1.5);
  for (const Idx l : s.level_sizes) EXPECT_EQ(l, 1);
}

TEST(SolveDag, TotalFlopsMatchSolveFlops) {
  const CsrMatrix a = make_grid2d(8, 8, Stencil2d::kNinePoint);
  const auto sym = analyze(a);
  const auto s1 = analyze_solve_dag(sym, 1);
  // analyze_solve_dag counts one triangular solve; SupernodalLU counts
  // L-solve + U-solve (2x).
  const FactoredSystem fs = analyze_and_factor(a, 0);
  // Different supernode partitions possible; compare against the same sym.
  double expect = 0;
  for (Idx k = 0; k < sym.num_supernodes(); ++k) {
    const double w = sym.part.width(k);
    expect += 2.0 * w * (w + sym.panel_rows[static_cast<size_t>(k)]);
  }
  EXPECT_DOUBLE_EQ(s1.total_flops, expect);
  (void)fs;
  // nrhs scales linearly.
  const auto s50 = analyze_solve_dag(sym, 50);
  EXPECT_DOUBLE_EQ(s50.total_flops, 50.0 * s1.total_flops);
  EXPECT_DOUBLE_EQ(s50.parallelism(), s1.parallelism());
}

TEST(SolveDag, NdOrderingIncreasesParallelism) {
  // ND ordering should expose far more DAG parallelism than the natural
  // (banded-ish) ordering of a grid.
  const CsrMatrix a = make_grid2d(16, 16, Stencil2d::kFivePoint);
  const auto natural = analyze_solve_dag(analyze(a));
  const FactoredSystem fs = analyze_and_factor(a, 3);
  const auto nd = analyze_solve_dag(fs.lu.sym);
  EXPECT_GT(nd.parallelism(), natural.parallelism());
}

TEST(SolveDag, LevelSizesSumToTasks) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, 2);
  const auto s = analyze_solve_dag(fs.lu.sym);
  Idx sum = 0;
  for (const Idx l : s.level_sizes) sum += l;
  EXPECT_EQ(sum, s.num_tasks);
  EXPECT_EQ(static_cast<Idx>(s.level_sizes.size()), s.critical_path_length);
}

TEST(SolveDag, SingleRankModeledTimeMatchesTotalFlops) {
  // Model consistency: on one rank with no communication, the modeled
  // solve time must be close to total_flops / rate (the DAG imposes no
  // waiting when everything is local and sequential).
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, 0);
  const auto s = analyze_solve_dag(fs.lu.sym);
  SolveConfig cfg;
  cfg.shape = {1, 1, 1};
  const MachineModel m = MachineModel::cori_haswell();
  const std::vector<Real> b(static_cast<size_t>(a.rows()), 1.0);
  const DistSolveOutcome out = solve_system_3d(fs, b, cfg, m);
  const double fp = out.rank_times[0].l_fp + out.rank_times[0].u_fp;
  // Both L and U phases execute the full task set once: 2 * total_flops.
  EXPECT_NEAR(fp, 2.0 * s.total_flops / m.cpu_flop_rate, 0.05 * fp);
  EXPECT_GE(out.makespan, fp);  // overheads only add
}

TEST(SolveDag, LowerBoundBehaviour) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, 2);
  const auto s = analyze_solve_dag(fs.lu.sym);
  const double no_latency = solve_time_lower_bound(s, 1e9, 0.0);
  const double with_latency = solve_time_lower_bound(s, 1e9, 1e-6);
  EXPECT_GT(no_latency, 0);
  EXPECT_GT(with_latency, no_latency);
  // Faster hardware lowers the bound.
  EXPECT_LT(solve_time_lower_bound(s, 1e12, 0.0), no_latency);
}

}  // namespace
}  // namespace sptrsv
