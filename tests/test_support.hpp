#pragma once
/// \file test_support.hpp
/// \brief Shared fixtures for the test suite: the canonical test machine,
/// seeded random matrix / grid-shape / RHS generators, a synthetic NdTree
/// builder, and bitwise outcome-comparison helpers for the determinism
/// suite. Every generator takes an explicit seed so a failing case replays
/// exactly (see docs/DETERMINISM.md).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "core/sptrsv3d.hpp"
#include "factor/supernodal_lu.hpp"
#include "ordering/nested_dissection.hpp"
#include "sparse/generators.hpp"

namespace sptrsv::test {

/// The machine every unit test models unless it needs something else.
inline MachineModel test_machine() { return MachineModel::cori_haswell(); }

/// Test machine with every perturbation knob enabled; `seed` goes into
/// RunOptions, not here (one machine, many seeds).
inline MachineModel perturbed_machine(double latency_jitter = 0.5,
                                      double delivery_delay = 2e-6,
                                      double compute_skew = 0.3) {
  MachineModel m = test_machine();
  m.perturb.latency_jitter = latency_jitter;
  m.perturb.delivery_delay = delivery_delay;
  m.perturb.compute_skew = compute_skew;
  return m;
}

/// Test machine with a lossy network: drop / duplicate / corrupt / reorder
/// delivery faults at recoverable rates (the default TransportOptions retry
/// budget absorbs them), driving the reliable transport of
/// docs/ROBUSTNESS.md. The clean ledger must be untouched by any of this.
inline MachineModel faulty_machine(double drop = 0.1, double dup = 0.05,
                                   double corrupt = 0.02, double reorder = 0.05) {
  MachineModel m = test_machine();
  m.perturb.drop_prob = drop;
  m.perturb.dup_prob = dup;
  m.perturb.corrupt_prob = corrupt;
  m.perturb.reorder_prob = reorder;
  m.perturb.reorder_window = 5e-6;
  return m;
}

/// Seeded dense RHS, n x nrhs column-major in [-1, 1).
inline std::vector<Real> random_rhs(Idx n, Idx nrhs, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<Real> uni(-1.0, 1.0);
  std::vector<Real> b(static_cast<size_t>(n) * static_cast<size_t>(nrhs));
  for (auto& v : b) v = uni(rng);
  return b;
}

inline Real max_abs_diff(std::span<const Real> a, std::span<const Real> b) {
  Real worst = 0;
  for (size_t i = 0; i < a.size(); ++i) worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

/// Exact (bitwise) equality of two Real spans — the determinism tests
/// compare solutions this way, not with a tolerance.
inline ::testing::AssertionResult bitwise_equal(std::span<const Real> a,
                                                std::span<const Real> b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "sizes differ: " << a.size() << " vs " << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(Real)) != 0) {
      return ::testing::AssertionFailure()
             << "element " << i << " differs: " << a[i] << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

/// Complete binary NdTree with `levels` levels of separators (2^levels
/// leaves) and no rows attached — enough shape for tree/allreduce tests.
inline NdTree shape_tree(int levels) {
  const Idx n_nodes = (Idx{1} << (levels + 1)) - 1;
  std::vector<NdNode> nodes(static_cast<size_t>(n_nodes));
  for (Idx id = 0; id < n_nodes; ++id) {
    auto& nd = nodes[static_cast<size_t>(id)];
    if (id > 0) nd.parent = (id - 1) / 2;
    int d = 0;
    for (Idx v = id; v > 0; v = (v - 1) / 2) ++d;
    nd.depth = d;
    if (d < levels) {
      nd.left = 2 * id + 1;
      nd.right = 2 * id + 2;
    }
  }
  return NdTree(levels, std::move(nodes));
}

/// One randomly drawn solve problem: matrix, factorization, 3D layout and
/// RHS width, all a pure function of `seed`.
struct RandomSystem {
  CsrMatrix a;
  FactoredSystem fs;
  Grid3dShape shape;
  Idx nrhs = 1;
  std::string name;
};

inline RandomSystem random_system(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto pick = [&](int lo, int hi) {  // inclusive
    return static_cast<int>(rng() % static_cast<std::uint64_t>(hi - lo + 1)) + lo;
  };
  RandomSystem s;
  switch (pick(0, 2)) {
    case 0: {
      const Idx nx = pick(8, 18), ny = pick(8, 18);
      s.a = make_grid2d(nx, ny, Stencil2d::kNinePoint);
      s.name = "grid2d_" + std::to_string(nx) + "x" + std::to_string(ny);
      break;
    }
    case 1: {
      const Idx n = pick(40, 120);
      s.a = make_random_symmetric(n, 3.0, rng());
      s.name = "randsym_" + std::to_string(n);
      break;
    }
    default: {
      const Idx n = pick(20, 40);
      const Idx bw = pick(2, 6);
      s.a = make_banded(n, bw, rng());
      s.name = "banded_" + std::to_string(n) + "_bw" + std::to_string(bw);
      break;
    }
  }
  const int nd_levels = pick(2, 3);
  s.fs = analyze_and_factor(s.a, nd_levels);
  const int pz_pow = pick(0, std::min(2, nd_levels));
  s.shape.pz = 1 << pz_pow;
  s.shape.px = pick(1, 3);
  s.shape.py = pick(1, 3);
  s.nrhs = pick(1, 3);
  s.name += "_p" + std::to_string(s.shape.px) + "x" + std::to_string(s.shape.py) +
            "x" + std::to_string(s.shape.pz) + "_r" + std::to_string(s.nrhs) +
            "_seed" + std::to_string(seed);
  return s;
}

/// Bitwise comparison of two runtime result sets (clocks, category times,
/// message/byte counts). This is what "deterministic" means here.
inline ::testing::AssertionResult stats_identical(const Cluster::Result& a,
                                                  const Cluster::Result& b) {
  if (a.ranks.size() != b.ranks.size()) {
    return ::testing::AssertionFailure() << "rank counts differ";
  }
  for (size_t r = 0; r < a.ranks.size(); ++r) {
    if (std::memcmp(&a.ranks[r], &b.ranks[r], sizeof(RankStats)) != 0) {
      return ::testing::AssertionFailure()
             << "rank " << r << " stats differ (vtime " << a.ranks[r].vtime << " vs "
             << b.ranks[r].vtime << ", fingerprints " << a.fingerprint() << " vs "
             << b.fingerprint() << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

/// Message/byte counters only (the perturbation-invariance check: counts
/// must match even when every timing moved).
inline ::testing::AssertionResult message_counts_identical(const Cluster::Result& a,
                                                           const Cluster::Result& b) {
  if (a.ranks.size() != b.ranks.size()) {
    return ::testing::AssertionFailure() << "rank counts differ";
  }
  for (size_t r = 0; r < a.ranks.size(); ++r) {
    for (int c = 0; c < kNumTimeCategories; ++c) {
      if (a.ranks[r].messages[c] != b.ranks[r].messages[c] ||
          a.ranks[r].bytes[c] != b.ranks[r].bytes[c]) {
        return ::testing::AssertionFailure()
               << "rank " << r << " category " << c << " counts differ: "
               << a.ranks[r].messages[c] << "/" << a.ranks[r].bytes[c] << " vs "
               << b.ranks[r].messages[c] << "/" << b.ranks[r].bytes[c];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// Full bitwise comparison of two distributed-solve outcomes: solution,
/// per-rank phase times and raw runtime statistics.
inline ::testing::AssertionResult outcomes_identical(const DistSolveOutcome& a,
                                                     const DistSolveOutcome& b) {
  if (auto r = bitwise_equal(a.x, b.x); !r) {
    return ::testing::AssertionFailure() << "solutions differ: " << r.message();
  }
  if (a.rank_times.size() != b.rank_times.size()) {
    return ::testing::AssertionFailure() << "rank_times sizes differ";
  }
  for (size_t r = 0; r < a.rank_times.size(); ++r) {
    if (std::memcmp(&a.rank_times[r], &b.rank_times[r], sizeof(RankPhaseTimes)) != 0) {
      return ::testing::AssertionFailure() << "rank " << r << " phase times differ";
    }
  }
  return stats_identical(a.run_stats, b.run_stats);
}

}  // namespace sptrsv::test
