#pragma once
/// \file test_support.hpp
/// \brief Shared fixtures for the test suite: the canonical test machine,
/// seeded random matrix / grid-shape / RHS generators, a synthetic NdTree
/// builder, and bitwise outcome-comparison helpers for the determinism
/// suite. Every generator takes an explicit seed so a failing case replays
/// exactly (see docs/DETERMINISM.md).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>
#include <mutex>
#include <random>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/solver2d.hpp"
#include "core/sptrsv3d.hpp"
#include "dist/solve_plan.hpp"
#include "factor/supernodal_lu.hpp"
#include "ordering/nested_dissection.hpp"
#include "sparse/generators.hpp"

namespace sptrsv::test {

/// The machine every unit test models unless it needs something else.
inline MachineModel test_machine() { return MachineModel::cori_haswell(); }

/// Test machine with every perturbation knob enabled; `seed` goes into
/// RunOptions, not here (one machine, many seeds).
inline MachineModel perturbed_machine(double latency_jitter = 0.5,
                                      double delivery_delay = 2e-6,
                                      double compute_skew = 0.3) {
  MachineModel m = test_machine();
  m.perturb.latency_jitter = latency_jitter;
  m.perturb.delivery_delay = delivery_delay;
  m.perturb.compute_skew = compute_skew;
  return m;
}

/// Test machine with a lossy network: drop / duplicate / corrupt / reorder
/// delivery faults at recoverable rates (the default TransportOptions retry
/// budget absorbs them), driving the reliable transport of
/// docs/ROBUSTNESS.md. The clean ledger must be untouched by any of this.
inline MachineModel faulty_machine(double drop = 0.1, double dup = 0.05,
                                   double corrupt = 0.02, double reorder = 0.05) {
  MachineModel m = test_machine();
  m.perturb.drop_prob = drop;
  m.perturb.dup_prob = dup;
  m.perturb.corrupt_prob = corrupt;
  m.perturb.reorder_prob = reorder;
  m.perturb.reorder_window = 5e-6;
  return m;
}

/// Seeded dense RHS, n x nrhs column-major in [-1, 1).
inline std::vector<Real> random_rhs(Idx n, Idx nrhs, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<Real> uni(-1.0, 1.0);
  std::vector<Real> b(static_cast<size_t>(n) * static_cast<size_t>(nrhs));
  for (auto& v : b) v = uni(rng);
  return b;
}

inline Real max_abs_diff(std::span<const Real> a, std::span<const Real> b) {
  Real worst = 0;
  for (size_t i = 0; i < a.size(); ++i) worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

/// Units-in-the-last-place distance between two doubles: 0 iff bitwise
/// equal, 1 for adjacent representables, huge across a sign flip. The
/// differential oracle compares solver paths this way — a fixed absolute
/// tolerance would be meaninglessly loose for well-scaled entries and
/// meaninglessly tight near zero.
inline std::uint64_t ulp_distance(Real a, Real b) {
  if (std::isnan(a) || std::isnan(b)) return ~std::uint64_t{0};
  auto mono = [](Real v) {
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof u);
    // Map the IEEE bit pattern to a monotone unsigned key (negative range
    // reversed and placed below the positive range).
    return (u & (std::uint64_t{1} << 63)) ? ~u : u | (std::uint64_t{1} << 63);
  };
  const std::uint64_t ka = mono(a), kb = mono(b);
  return ka > kb ? ka - kb : kb - ka;
}

/// Worst elementwise ULP distance over two equal-length spans.
inline std::uint64_t max_ulp_distance(std::span<const Real> a,
                                      std::span<const Real> b) {
  std::uint64_t worst = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, ulp_distance(a[i], b[i]));
  }
  return worst;
}

/// Reference model for the CSR-builder property fuzz: the (row, col) ->
/// summed-value relation an arbitrary triplet stream must compress to.
struct CooModel {
  Idx rows = 0, cols = 0;
  std::map<std::pair<Idx, Idx>, Real> entries;
};

/// Draws a random triplet stream (duplicates, any order) into `coo` and
/// returns the matching CooModel.
inline CooModel random_coo_model(std::mt19937_64& rng, CooMatrix& coo) {
  std::uniform_int_distribution<Idx> dim(1, 30);
  CooModel m;
  m.rows = dim(rng);
  m.cols = dim(rng);
  coo.rows = m.rows;
  coo.cols = m.cols;
  std::uniform_int_distribution<Idx> ri(0, m.rows - 1), ci(0, m.cols - 1);
  std::uniform_real_distribution<Real> val(-2.0, 2.0);
  std::uniform_int_distribution<int> count(0, 120);
  const int n = count(rng);
  for (int e = 0; e < n; ++e) {
    const Idx r = ri(rng), c = ci(rng);
    const Real v = val(rng);
    coo.add(r, c, v);
    m.entries[{r, c}] += v;
  }
  return m;
}

/// Scatters diag-owned supernode pieces out of an n x nrhs column-major
/// vector (the 2D solvers' input layout).
inline VecMap local_pieces(const SupernodalLU& lu, const Solve2dPlan& plan, int me,
                           std::span<const Idx> snodes, std::span<const Real> v,
                           Idx nrhs) {
  VecMap out;
  for (const Idx k : snodes) {
    if (plan.shape().diag_owner(k) != me) continue;
    const Idx w = lu.sym.part.width(k);
    const Idx base = lu.sym.part.first_col(k);
    std::vector<Real> piece(static_cast<size_t>(w) * nrhs);
    for (Idx j = 0; j < nrhs; ++j) {
      for (Idx i = 0; i < w; ++i) {
        piece[static_cast<size_t>(j) * w + i] =
            v[static_cast<size_t>(j) * lu.n() + base + i];
      }
    }
    out.emplace(k, std::move(piece));
  }
  return out;
}

/// Gathers solved pieces from all ranks back into an n x nrhs vector
/// (shared-memory merge; call under a mutex from rank_fn).
inline void merge_pieces(const SupernodalLU& lu, const VecMap& pieces,
                         std::span<Real> out, Idx nrhs) {
  for (const auto& [k, piece] : pieces) {
    const Idx w = lu.sym.part.width(k);
    const Idx base = lu.sym.part.first_col(k);
    for (Idx j = 0; j < nrhs; ++j) {
      for (Idx i = 0; i < w; ++i) {
        out[static_cast<size_t>(j) * lu.n() + base + i] =
            piece[static_cast<size_t>(j) * w + i];
      }
    }
  }
}

/// Whole-matrix A x = b through the message-driven 2D solver on a px*py
/// grid: permutes b into factor order, runs L-then-U, permutes x back.
/// `fs` must track the whole matrix as one node (analyze_and_factor(a, 0)).
struct Dist2dOutcome {
  std::vector<Real> x;
  Cluster::Result run;
};
inline Dist2dOutcome solve_system_2d(const FactoredSystem& fs, Grid2dShape shape,
                                     std::span<const Real> b, Idx nrhs,
                                     const MachineModel& m,
                                     const RunOptions& opts = {}) {
  const Solve2dPlan plan = make_grid_plan(fs.lu, fs.tree, 0, shape, TreeKind::kBinary);
  const Idx n = fs.lu.n();
  std::vector<Real> pb(b.size());
  for (Idx j = 0; j < nrhs; ++j) {
    for (Idx i = 0; i < n; ++i) {
      pb[static_cast<size_t>(j) * n + i] =
          b[static_cast<size_t>(j) * n + fs.perm[static_cast<size_t>(i)]];
    }
  }
  std::vector<Real> px(b.size(), 0.0);
  std::mutex mu;
  Dist2dOutcome out;
  out.run = Cluster::run(
      shape.size(), m,
      [&](Comm& c) {
        const VecMap b_local = local_pieces(fs.lu, plan, c.rank(), plan.cols(), pb, nrhs);
        auto lres = solve_l_2d(c, plan, b_local, {}, nrhs, 0);
        auto ures = solve_u_2d(c, plan, lres.y, {}, nrhs, 40000);
        std::lock_guard<std::mutex> lk(mu);
        merge_pieces(fs.lu, ures.x, px, nrhs);
      },
      opts);
  out.x.resize(b.size());
  for (Idx j = 0; j < nrhs; ++j) {
    for (Idx i = 0; i < n; ++i) {
      out.x[static_cast<size_t>(j) * n + fs.perm[static_cast<size_t>(i)]] =
          px[static_cast<size_t>(j) * n + i];
    }
  }
  return out;
}

/// One point of the schedule-exploration sweep: a named RunOptions.
struct SchedulePoint {
  RunOptions opts;
  std::string name;
};

/// The standard exploration grid (docs/TESTING.md): FIFO, PCT random
/// priorities with d in {0, 2, 5}, and delay-bounded with budgets {4, 16},
/// each over `seeds_per_policy` schedule seeds — 1 + 5 * seeds points.
/// `fault_seed` goes into RunOptions::seed (the perturbation/fault stream),
/// deliberately held fixed while schedules vary.
inline std::vector<SchedulePoint> schedule_sweep(int seeds_per_policy,
                                                 std::uint64_t fault_seed = 0) {
  std::vector<SchedulePoint> pts;
  RunOptions base;
  base.deterministic = true;
  base.seed = fault_seed;
  pts.push_back({base, "fifo"});
  for (const int d : {0, 2, 5}) {
    for (int s = 0; s < seeds_per_policy; ++s) {
      RunOptions o = base;
      o.schedule = SchedulePolicy::kRandomPriority;
      o.schedule_seed = 0xACE1ull + 1000 * static_cast<std::uint64_t>(d) + static_cast<std::uint64_t>(s);
      o.priority_points = d;
      pts.push_back({o, "pct_d" + std::to_string(d) + "_s" + std::to_string(s)});
    }
  }
  for (const int budget : {4, 16}) {
    for (int s = 0; s < seeds_per_policy; ++s) {
      RunOptions o = base;
      o.schedule = SchedulePolicy::kDelayBounded;
      o.schedule_seed = 0xD31Aull + 1000 * static_cast<std::uint64_t>(budget) + static_cast<std::uint64_t>(s);
      o.delay_budget = budget;
      pts.push_back({o, "delay_b" + std::to_string(budget) + "_s" + std::to_string(s)});
    }
  }
  return pts;
}

/// Exact (bitwise) equality of two Real spans — the determinism tests
/// compare solutions this way, not with a tolerance.
inline ::testing::AssertionResult bitwise_equal(std::span<const Real> a,
                                                std::span<const Real> b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "sizes differ: " << a.size() << " vs " << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(Real)) != 0) {
      return ::testing::AssertionFailure()
             << "element " << i << " differs: " << a[i] << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

/// Complete binary NdTree with `levels` levels of separators (2^levels
/// leaves) and no rows attached — enough shape for tree/allreduce tests.
inline NdTree shape_tree(int levels) {
  const Idx n_nodes = (Idx{1} << (levels + 1)) - 1;
  std::vector<NdNode> nodes(static_cast<size_t>(n_nodes));
  for (Idx id = 0; id < n_nodes; ++id) {
    auto& nd = nodes[static_cast<size_t>(id)];
    if (id > 0) nd.parent = (id - 1) / 2;
    int d = 0;
    for (Idx v = id; v > 0; v = (v - 1) / 2) ++d;
    nd.depth = d;
    if (d < levels) {
      nd.left = 2 * id + 1;
      nd.right = 2 * id + 2;
    }
  }
  return NdTree(levels, std::move(nodes));
}

/// One randomly drawn solve problem: matrix, factorization, 3D layout and
/// RHS width, all a pure function of `seed`.
struct RandomSystem {
  CsrMatrix a;
  FactoredSystem fs;
  Grid3dShape shape;
  Idx nrhs = 1;
  std::string name;
};

inline RandomSystem random_system(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto pick = [&](int lo, int hi) {  // inclusive
    return static_cast<int>(rng() % static_cast<std::uint64_t>(hi - lo + 1)) + lo;
  };
  RandomSystem s;
  switch (pick(0, 2)) {
    case 0: {
      const Idx nx = pick(8, 18), ny = pick(8, 18);
      s.a = make_grid2d(nx, ny, Stencil2d::kNinePoint);
      s.name = "grid2d_" + std::to_string(nx) + "x" + std::to_string(ny);
      break;
    }
    case 1: {
      const Idx n = pick(40, 120);
      s.a = make_random_symmetric(n, 3.0, rng());
      s.name = "randsym_" + std::to_string(n);
      break;
    }
    default: {
      const Idx n = pick(20, 40);
      const Idx bw = pick(2, 6);
      s.a = make_banded(n, bw, rng());
      s.name = "banded_" + std::to_string(n) + "_bw" + std::to_string(bw);
      break;
    }
  }
  const int nd_levels = pick(2, 3);
  s.fs = analyze_and_factor(s.a, nd_levels);
  const int pz_pow = pick(0, std::min(2, nd_levels));
  s.shape.pz = 1 << pz_pow;
  s.shape.px = pick(1, 3);
  s.shape.py = pick(1, 3);
  s.nrhs = pick(1, 3);
  s.name += "_p" + std::to_string(s.shape.px) + "x" + std::to_string(s.shape.py) +
            "x" + std::to_string(s.shape.pz) + "_r" + std::to_string(s.nrhs) +
            "_seed" + std::to_string(seed);
  return s;
}

/// Bitwise comparison of two runtime result sets (clocks, category times,
/// message/byte counts). This is what "deterministic" means here.
inline ::testing::AssertionResult stats_identical(const Cluster::Result& a,
                                                  const Cluster::Result& b) {
  if (a.ranks.size() != b.ranks.size()) {
    return ::testing::AssertionFailure() << "rank counts differ";
  }
  for (size_t r = 0; r < a.ranks.size(); ++r) {
    if (std::memcmp(&a.ranks[r], &b.ranks[r], sizeof(RankStats)) != 0) {
      return ::testing::AssertionFailure()
             << "rank " << r << " stats differ (vtime " << a.ranks[r].vtime << " vs "
             << b.ranks[r].vtime << ", fingerprints " << a.fingerprint() << " vs "
             << b.fingerprint() << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

/// Message/byte counters only (the perturbation-invariance check: counts
/// must match even when every timing moved).
inline ::testing::AssertionResult message_counts_identical(const Cluster::Result& a,
                                                           const Cluster::Result& b) {
  if (a.ranks.size() != b.ranks.size()) {
    return ::testing::AssertionFailure() << "rank counts differ";
  }
  for (size_t r = 0; r < a.ranks.size(); ++r) {
    for (int c = 0; c < kNumTimeCategories; ++c) {
      if (a.ranks[r].messages[c] != b.ranks[r].messages[c] ||
          a.ranks[r].bytes[c] != b.ranks[r].bytes[c]) {
        return ::testing::AssertionFailure()
               << "rank " << r << " category " << c << " counts differ: "
               << a.ranks[r].messages[c] << "/" << a.ranks[r].bytes[c] << " vs "
               << b.ranks[r].messages[c] << "/" << b.ranks[r].bytes[c];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// Full bitwise comparison of two distributed-solve outcomes: solution,
/// per-rank phase times and raw runtime statistics.
inline ::testing::AssertionResult outcomes_identical(const DistSolveOutcome& a,
                                                     const DistSolveOutcome& b) {
  if (auto r = bitwise_equal(a.x, b.x); !r) {
    return ::testing::AssertionFailure() << "solutions differ: " << r.message();
  }
  if (a.rank_times.size() != b.rank_times.size()) {
    return ::testing::AssertionFailure() << "rank_times sizes differ";
  }
  for (size_t r = 0; r < a.rank_times.size(); ++r) {
    if (std::memcmp(&a.rank_times[r], &b.rank_times[r], sizeof(RankPhaseTimes)) != 0) {
      return ::testing::AssertionFailure() << "rank " << r << " phase times differ";
    }
  }
  return stats_identical(a.run_stats, b.run_stats);
}

}  // namespace sptrsv::test
