#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "comm/sparse_allreduce.hpp"

namespace sptrsv {
namespace {

/// Shape-only tracked tree (ranges unused by the allreduce).
NdTree shape_tree(int levels) {
  const Idx n_nodes = (Idx{1} << (levels + 1)) - 1;
  std::vector<NdNode> nodes(static_cast<size_t>(n_nodes));
  for (Idx id = 0; id < n_nodes; ++id) {
    auto& nd = nodes[static_cast<size_t>(id)];
    if (id > 0) nd.parent = (id - 1) / 2;
    int d = 0;
    for (Idx v = id; v > 0; v = (v - 1) / 2) ++d;
    nd.depth = d;
    if (d < levels) {
      nd.left = 2 * id + 1;
      nd.right = 2 * id + 2;
    }
  }
  return NdTree(levels, std::move(nodes));
}

/// Length of node `id`'s subvector in the tests.
size_t seg_len(Idx id) { return static_cast<size_t>(id % 3 + 1); }

/// Value grid z contributes at position i of node `id`'s slice.
Real contrib(int z, Idx id, size_t i) {
  return static_cast<Real>(z * 100 + id * 10) + static_cast<Real>(i);
}

/// Runs either allreduce flavor on Pz grids and checks every grid ends with
/// the full sums of its ancestors.
void check_allreduce(int levels, bool dense) {
  const NdTree tree = shape_tree(levels);
  const int pz = tree.num_leaves();
  Cluster::run(pz, MachineModel::cori_haswell(), [&](Comm& c) {
    const int z = c.rank();
    // My ancestors: path from my leaf, excluding the leaf itself.
    std::vector<std::vector<Real>> storage;
    std::vector<ReduceSegment> segs;
    std::vector<Idx> my_nodes;
    for (Idx id : tree.path_to_root(tree.leaf_node_id(z))) {
      if (tree.node(id).depth >= tree.levels()) continue;
      my_nodes.push_back(id);
      auto& buf = storage.emplace_back(seg_len(id));
      for (size_t i = 0; i < buf.size(); ++i) buf[i] = contrib(z, id, i);
    }
    for (size_t k = 0; k < my_nodes.size(); ++k) {
      segs.push_back({my_nodes[k], storage[k]});
    }
    if (dense) {
      dense_allreduce_per_node(c, tree, segs);
    } else {
      sparse_allreduce(c, tree, segs);
    }
    for (size_t k = 0; k < my_nodes.size(); ++k) {
      const Idx id = my_nodes[k];
      const auto [lo, hi] = tree.leaf_range(id);
      for (size_t i = 0; i < storage[k].size(); ++i) {
        Real expect = 0;
        for (Idx g = lo; g < hi; ++g) expect += contrib(static_cast<int>(g), id, i);
        EXPECT_NEAR(storage[k][i], expect, 1e-12)
            << "grid " << z << " node " << id << " pos " << i;
      }
    }
  });
}

TEST(SparseAllreduce, TwoGrids) { check_allreduce(1, false); }
TEST(SparseAllreduce, FourGrids) { check_allreduce(2, false); }
TEST(SparseAllreduce, EightGrids) { check_allreduce(3, false); }
TEST(SparseAllreduce, SixteenGrids) { check_allreduce(4, false); }

TEST(DenseAllreducePerNode, FourGrids) { check_allreduce(2, true); }
TEST(DenseAllreducePerNode, EightGrids) { check_allreduce(3, true); }

TEST(SparseAllreduce, SingleGridIsNoop) {
  const NdTree tree = shape_tree(0);
  Cluster::run(1, MachineModel::cori_haswell(), [&](Comm& c) {
    std::vector<ReduceSegment> empty;
    sparse_allreduce(c, tree, empty);
    EXPECT_DOUBLE_EQ(c.category_time(TimeCategory::kZComm), 0.0);
  });
}

TEST(SparseAllreduce, MessageCountIsLogarithmic) {
  // Each grid sends/receives at most 2*levels messages; verify via the
  // modeled Z-comm time: it must grow ~linearly in levels, not in Pz.
  std::map<int, double> zcomm_time;
  for (int levels = 1; levels <= 4; ++levels) {
    const NdTree tree = shape_tree(levels);
    const auto res =
        Cluster::run(tree.num_leaves(), MachineModel::cori_haswell(), [&](Comm& c) {
          std::vector<std::vector<Real>> storage;
          std::vector<ReduceSegment> segs;
          for (Idx id : tree.path_to_root(tree.leaf_node_id(c.rank()))) {
            if (tree.node(id).depth >= tree.levels()) continue;
            auto& buf = storage.emplace_back(4, 1.0);
            segs.push_back({id, buf});
          }
          sparse_allreduce(c, tree, segs);
        });
    zcomm_time[levels] = res.max_category(TimeCategory::kZComm);
  }
  // Doubling the grid count (levels+1) must not double the time: growth is
  // additive (one extra exchange), not multiplicative.
  EXPECT_LT(zcomm_time[4], zcomm_time[1] * 4.5);
  EXPECT_GT(zcomm_time[2], zcomm_time[1]);
}

TEST(SparseAllreduce, WrongCommSizeThrows) {
  const NdTree tree = shape_tree(2);  // 4 leaves
  EXPECT_THROW(Cluster::run(3, MachineModel::cori_haswell(),
                            [&](Comm& c) {
                              std::vector<ReduceSegment> empty;
                              sparse_allreduce(c, tree, empty);
                            }),
               std::invalid_argument);
}

TEST(SparseAllreduce, NonAncestorSegmentThrows) {
  const NdTree tree = shape_tree(2);
  EXPECT_THROW(Cluster::run(4, MachineModel::cori_haswell(),
                            [&](Comm& c) {
                              std::vector<Real> buf(2, 1.0);
                              // Node 1 is only an ancestor of grids 0,1.
                              std::vector<ReduceSegment> segs{{1, buf}};
                              if (c.rank() == 3) sparse_allreduce(c, tree, segs);
                              c.barrier();
                            }),
               std::invalid_argument);
}

TEST(SparseAllreduce, SparseBeatsDensePerNodeInModeledTime) {
  // The point of Algorithm 2: fewer, packed messages. Compare modeled
  // Z-comm makespans on 8 grids.
  const NdTree tree = shape_tree(3);
  auto run = [&](bool dense) {
    const auto res =
        Cluster::run(tree.num_leaves(), MachineModel::cori_haswell(), [&](Comm& c) {
          std::vector<std::vector<Real>> storage;
          std::vector<ReduceSegment> segs;
          for (Idx id : tree.path_to_root(tree.leaf_node_id(c.rank()))) {
            if (tree.node(id).depth >= tree.levels()) continue;
            auto& buf = storage.emplace_back(64, 1.0);
            segs.push_back({id, buf});
          }
          if (dense) {
            dense_allreduce_per_node(c, tree, segs);
          } else {
            sparse_allreduce(c, tree, segs);
          }
        });
    return res.max_category(TimeCategory::kZComm);
  };
  EXPECT_LT(run(false), run(true));
}

}  // namespace
}  // namespace sptrsv
