#include <gtest/gtest.h>

#include "ordering/etree.hpp"
#include "sparse/generators.hpp"
#include "symbolic/colcounts.hpp"
#include "symbolic/supernodes.hpp"

namespace sptrsv {
namespace {

SupernodePartition detect(const CsrMatrix& a, const SupernodeOptions& opt = {}) {
  const auto parent = elimination_tree(a);
  const auto counts = cholesky_col_counts(a, parent);
  return find_supernodes(parent, counts, opt);
}

TEST(Supernodes, PartitionInvariants) {
  const CsrMatrix a = make_grid2d(8, 8, Stencil2d::kNinePoint);
  const auto part = detect(a);
  EXPECT_TRUE(part.check_invariants(a.rows()));
  EXPECT_GE(part.num_supernodes(), 1);
}

TEST(Supernodes, DenseMatrixIsOneSupernode) {
  // A dense matrix's factor column counts decrease by exactly one per
  // column and every parent is the next column, so the fundamental
  // detection yields a single maximal supernode.
  const CsrMatrix a = make_banded(16, 15);  // full bandwidth = dense
  SupernodeOptions opt;
  opt.relax_width = 0;
  opt.max_width = 64;
  const auto part = detect(a, opt);
  EXPECT_EQ(part.num_supernodes(), 1);
  EXPECT_EQ(part.width(0), 16);
}

TEST(Supernodes, DiagonalMatrixAllSingletonsWithoutRelaxation) {
  CooMatrix coo;
  coo.rows = coo.cols = 6;
  for (Idx i = 0; i < 6; ++i) coo.add(i, i, 1.0);
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  SupernodeOptions opt;
  opt.relax_width = 0;
  const auto part = detect(a, opt);
  EXPECT_EQ(part.num_supernodes(), 6);
}

TEST(Supernodes, MaxWidthIsRespected) {
  const CsrMatrix a = make_banded(64, 8);
  SupernodeOptions opt;
  opt.max_width = 5;
  const auto part = detect(a, opt);
  for (Idx k = 0; k < part.num_supernodes(); ++k) {
    EXPECT_LE(part.width(k), 5);
  }
  EXPECT_TRUE(part.check_invariants(a.rows()));
}

TEST(Supernodes, ForcedBreaksAreHonored) {
  const CsrMatrix a = make_banded(20, 3);
  SupernodeOptions opt;
  opt.forced_breaks = {7, 13};
  const auto part = detect(a, opt);
  // 7 and 13 must be supernode starts.
  bool saw7 = false, saw13 = false;
  for (const Idx s : part.start) {
    saw7 |= (s == 7);
    saw13 |= (s == 13);
  }
  EXPECT_TRUE(saw7);
  EXPECT_TRUE(saw13);
}

TEST(Supernodes, RelaxationMergesSingletonChains) {
  // Tridiagonal: fundamental supernodes are width-2 at most (counts drop by
  // one but parent chains); relaxation should merge more aggressively.
  const CsrMatrix a = make_banded(24, 1);
  SupernodeOptions strict;
  strict.relax_width = 0;
  SupernodeOptions relaxed;
  relaxed.relax_width = 8;
  relaxed.max_width = 8;
  const auto p_strict = detect(a, strict);
  const auto p_relaxed = detect(a, relaxed);
  EXPECT_LT(p_relaxed.num_supernodes(), p_strict.num_supernodes());
  EXPECT_TRUE(p_relaxed.check_invariants(a.rows()));
}

TEST(Supernodes, FundamentalConditionHolds) {
  // Inside any detected supernode (without relaxation) every column chains.
  const CsrMatrix a = make_grid2d(7, 7, Stencil2d::kFivePoint);
  const auto parent = elimination_tree(a);
  const auto counts = cholesky_col_counts(a, parent);
  SupernodeOptions opt;
  opt.relax_width = 0;
  const auto part = find_supernodes(parent, counts, opt);
  for (Idx k = 0; k < part.num_supernodes(); ++k) {
    for (Idx j = part.first_col(k) + 1; j < part.first_col(k) + part.width(k); ++j) {
      EXPECT_EQ(parent[static_cast<size_t>(j - 1)], j);
      EXPECT_EQ(counts[static_cast<size_t>(j)], counts[static_cast<size_t>(j - 1)] - 1);
    }
  }
}

TEST(Supernodes, BadArgumentsThrow) {
  const CsrMatrix a = make_banded(6, 1);
  const auto parent = elimination_tree(a);
  const auto counts = cholesky_col_counts(a, parent);
  SupernodeOptions opt;
  opt.max_width = 0;
  EXPECT_THROW(find_supernodes(parent, counts, opt), std::invalid_argument);
}

}  // namespace
}  // namespace sptrsv
