/// \file test_sdc.cpp
/// \brief Silent-data-corruption resilience (docs/ROBUSTNESS.md, SDC
/// section): memory-fault injection, ABFT detection/correction, and the
/// residual-verified repair path.
///
/// The contract under test, in order of importance:
///  1. Two-ledger invariant under ABFT: every injected bit flip is detected
///     and corrected with solution, fingerprint, clean clocks, message/byte
///     counts and the clean trace export bitwise identical to a fault-free
///     run — across the 2D solver, both 3D algorithms and the sparse
///     allreduce.
///  2. Verification backstop: with ABFT off the same schedules trip the
///     end-of-solve residual gate into a structured kSilentCorruption
///     report, or — with RunOptions::sdc_repair — degrade gracefully into
///     converged iterative refinement.
///  3. Bypass-free arming: ABFT with no faults injected changes no
///     clean-ledger bit; its verification cost is fault-ledger-only.
///  4. Stream isolation: SDC draws live on their own salted stream
///     (kMemStreamSalt) — arming them shifts no timing, delivery or crash
///     draw (the PR-4 MTBF salting pin, extended).

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "comm/sparse_allreduce.hpp"
#include "core/sptrsv3d.hpp"
#include "factor/sptrsv_seq.hpp"
#include "runtime/abft.hpp"
#include "sparse/paper_matrices.hpp"
#include "test_support.hpp"
#include "trace/trace.hpp"

namespace sptrsv {
namespace {

using test::bitwise_equal;
using test::max_abs_diff;
using test::message_counts_identical;
using test::perturbed_machine;
using test::random_rhs;
using test::shape_tree;
using test::stats_identical;
using test::test_machine;

using MemFault = PerturbationModel::MemFault;

RunOptions det_opts(std::uint64_t seed, bool trace = false) {
  RunOptions o;
  o.deterministic = true;
  o.seed = seed;
  o.trace = trace;
  return o;
}

MachineModel sdc_machine(std::vector<MemFault> faults,
                         MachineModel base = test_machine()) {
  base.perturb.mem_faults = std::move(faults);
  return base;
}

// ---------------------------------------------------------------------------
// The fault plan itself: a pure function of (model, seed, world).
// ---------------------------------------------------------------------------

TEST(SdcPlan, PureFunctionOfSeedAndSchedule) {
  PerturbationModel pm;
  pm.sdc_rate = 1e4;
  pm.mem_faults.push_back({1, 2e-4, PerturbationModel::MemFaultTarget::kPartial});
  pm.mem_faults.push_back({-1, 1e-4, {}});  // invalid rank: dropped
  pm.mem_faults.push_back({9, 1e-4, {}});   // out of range: dropped
  const SdcPlan p1 = build_sdc_plan(pm, /*seed=*/3, /*nranks=*/4);
  const SdcPlan p2 = build_sdc_plan(pm, 3, 4);
  ASSERT_EQ(p1.by_rank.size(), 4u);
  ASSERT_EQ(p2.by_rank.size(), 4u);
  for (size_t r = 0; r < 4; ++r) {
    ASSERT_EQ(p1.by_rank[r].size(), p2.by_rank[r].size());
    for (size_t e = 0; e < p1.by_rank[r].size(); ++e) {
      const SdcEvent &a = p1.by_rank[r][e], &b = p2.by_rank[r][e];
      EXPECT_EQ(a.vt, b.vt);
      EXPECT_EQ(a.word_draw, b.word_draw);
      EXPECT_EQ(a.bit, b.bit);
      EXPECT_EQ(a.refail_draw, b.refail_draw);
    }
    // Per-rank events come sorted by firing time; bits stay in the
    // mantissa window the fault model promises (46..49).
    for (size_t e = 0; e + 1 < p1.by_rank[r].size(); ++e) {
      EXPECT_LE(p1.by_rank[r][e].vt, p1.by_rank[r][e + 1].vt);
    }
    for (const SdcEvent& ev : p1.by_rank[r]) {
      EXPECT_GE(ev.bit, 46);
      EXPECT_LE(ev.bit, 49);
    }
  }
  // The explicit fault landed on its rank; the invalid entries did not.
  bool found = false;
  for (const SdcEvent& ev : p1.by_rank[1]) found |= (ev.vt == 2e-4);
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// (a) ABFT corrects every flip with a bitwise-clean ledger — all paths.
// ---------------------------------------------------------------------------

struct SdcCase {
  Algorithm3d alg;
  bool sparse_zreduce;
  const char* name;
};

class SolverSdcTest : public ::testing::TestWithParam<SdcCase> {};

TEST_P(SolverSdcTest, AbftCorrectsEveryFlipBitwise) {
  const SdcCase& sc = GetParam();
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/3);
  const auto b = random_rhs(a.rows(), 1, 42);

  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.algorithm = sc.alg;
  cfg.sparse_zreduce = sc.sparse_zreduce;
  cfg.run = det_opts(0, /*trace=*/true);
  const DistSolveOutcome clean = solve_system_3d(fs, b, cfg, test_machine());
  ASSERT_FALSE(clean.run_stats.sdc_stats().any());

  // One flip at the very first epoch on rank 0, one mid-solve on another
  // rank — exercising both L-phase and later-phase state.
  const double mid = 0.5 * clean.run_stats.ranks[3].vtime;
  const MachineModel m = sdc_machine({{0, 0.0, {}}, {3, mid, {}}});
  cfg.run.abft = true;
  const DistSolveOutcome faulty = solve_system_3d(fs, b, cfg, m);

  const SdcStats s = faulty.run_stats.sdc_stats();
  ASSERT_GE(s.injected, 1) << sc.name;
  EXPECT_EQ(s.detected, s.injected) << sc.name;
  EXPECT_EQ(s.corrected, s.injected) << sc.name;
  EXPECT_GT(s.checks, 0);
  EXPECT_GT(s.verify_time, 0.0);
  EXPECT_GT(s.repair_time, 0.0);

  // Clean ledger: solution, fingerprint, clocks, counters — bit-identical.
  EXPECT_TRUE(bitwise_equal(faulty.x, clean.x)) << sc.name;
  EXPECT_EQ(faulty.run_stats.fingerprint(), clean.run_stats.fingerprint()) << sc.name;
  EXPECT_DOUBLE_EQ(faulty.run_stats.makespan(), clean.run_stats.makespan());
  EXPECT_TRUE(message_counts_identical(faulty.run_stats, clean.run_stats));
  for (size_t r = 0; r < clean.run_stats.ranks.size(); ++r) {
    EXPECT_TRUE(bitwise_equal({&faulty.run_stats.ranks[r].vtime, 1},
                              {&clean.run_stats.ranks[r].vtime, 1}));
    // Every ABFT cost sits on the fault clock only.
    EXPECT_GE(faulty.run_stats.ranks[r].fault_vtime,
              faulty.run_stats.ranks[r].vtime);
  }
  EXPECT_GT(faulty.run_stats.fault_makespan(), faulty.run_stats.makespan());

  // Trace: the clean export is byte-identical; the full-fidelity export
  // carries the inject/detect/correct markers (kept off the clean export).
  ASSERT_NE(clean.run_stats.trace, nullptr);
  ASSERT_NE(faulty.run_stats.trace, nullptr);
  EXPECT_EQ(faulty.run_stats.trace->chrome_json(/*fault_ledger=*/false),
            clean.run_stats.trace->chrome_json(/*fault_ledger=*/false));
  const std::string full = faulty.run_stats.trace->chrome_json();
  EXPECT_NE(full.find("sdc-inject"), std::string::npos);
  EXPECT_NE(full.find("sdc-detect"), std::string::npos);
  EXPECT_NE(full.find("sdc-correct"), std::string::npos);
  EXPECT_EQ(clean.run_stats.trace->chrome_json().find("sdc-"), std::string::npos);

  // Replaying the same schedule reproduces both ledgers bit for bit.
  const DistSolveOutcome replay = solve_system_3d(fs, b, cfg, m);
  EXPECT_TRUE(stats_identical(replay.run_stats, faulty.run_stats));
  EXPECT_EQ(replay.run_stats.fault_fingerprint(),
            faulty.run_stats.fault_fingerprint());
}

INSTANTIATE_TEST_SUITE_P(
    Paths, SolverSdcTest,
    ::testing::Values(SdcCase{Algorithm3d::kProposed, true, "proposed_sparse"},
                      SdcCase{Algorithm3d::kProposed, false, "proposed_dense"},
                      SdcCase{Algorithm3d::kBaseline, true, "baseline"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Sdc2d, AbftCorrectsFlipsInThe2dSolvers) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/0);
  const auto b = random_rhs(a.rows(), 2, 7);
  const Grid2dShape shape{2, 2};

  const auto clean = test::solve_system_2d(fs, shape, b, 2, test_machine(), det_opts(0));
  RunOptions opts = det_opts(0);
  opts.abft = true;
  const auto faulty = test::solve_system_2d(
      fs, shape, b, 2, sdc_machine({{0, 0.0, {}}, {3, 0.0, {}}}), opts);

  const SdcStats s = faulty.run.sdc_stats();
  ASSERT_GE(s.injected, 1);
  EXPECT_EQ(s.detected, s.injected);
  EXPECT_EQ(s.corrected, s.injected);
  EXPECT_TRUE(bitwise_equal(faulty.x, clean.x));
  EXPECT_EQ(faulty.run.fingerprint(), clean.run.fingerprint());
  EXPECT_TRUE(message_counts_identical(faulty.run, clean.run));
}

TEST(SdcAllreduce, AbftCorrectsFlipsInReductionPartials) {
  const NdTree tree = shape_tree(3);
  const int pz = tree.num_leaves();
  std::mutex mu;

  auto run = [&](const MachineModel& m, const RunOptions& opts,
                 std::vector<std::vector<Real>>& results) {
    results.assign(static_cast<size_t>(pz), {});
    return Cluster::run(
        pz, m,
        [&](Comm& c) {
          const int z = c.rank();
          std::vector<std::vector<Real>> storage;
          std::vector<ReduceSegment> segs;
          std::vector<Idx> my_nodes;
          for (Idx id : tree.path_to_root(tree.leaf_node_id(z))) {
            if (tree.node(id).depth >= tree.levels()) continue;
            my_nodes.push_back(id);
            auto& buf = storage.emplace_back(static_cast<size_t>(id % 3 + 1));
            for (size_t i = 0; i < buf.size(); ++i) {
              buf[i] = static_cast<Real>(z * 100 + id * 10) + static_cast<Real>(i);
            }
          }
          for (size_t k = 0; k < my_nodes.size(); ++k) {
            segs.push_back({my_nodes[k], storage[k]});
          }
          sparse_allreduce(c, tree, segs);
          std::vector<Real> flat;
          for (const auto& buf : storage) flat.insert(flat.end(), buf.begin(), buf.end());
          std::lock_guard<std::mutex> lk(mu);
          results[static_cast<size_t>(z)] = std::move(flat);
        },
        opts);
  };

  std::vector<std::vector<Real>> clean_vals, faulty_vals;
  const Cluster::Result clean = run(test_machine(), det_opts(0), clean_vals);
  RunOptions opts = det_opts(0);
  opts.abft = true;
  const Cluster::Result faulty =
      run(sdc_machine({{0, 0.0, PerturbationModel::MemFaultTarget::kPartial},
                       {5, 0.0, PerturbationModel::MemFaultTarget::kPartial}}),
          opts, faulty_vals);

  const SdcStats s = faulty.sdc_stats();
  ASSERT_GE(s.injected, 1);
  EXPECT_EQ(s.detected, s.injected);
  EXPECT_EQ(s.corrected, s.injected);
  EXPECT_EQ(faulty.fingerprint(), clean.fingerprint());
  for (int z = 0; z < pz; ++z) {
    EXPECT_TRUE(bitwise_equal(faulty_vals[static_cast<size_t>(z)],
                              clean_vals[static_cast<size_t>(z)]))
        << "grid " << z;
  }
}

TEST(SdcAttribution, PerTargetLedgersSplitInjectionAndCorrection) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/3);
  const auto b = random_rhs(a.rows(), 1, 42);
  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.run = det_opts(0);
  const DistSolveOutcome clean = solve_system_3d(fs, b, cfg, test_machine());

  // One fault per declared target class. The target is the plan's fault
  // attribution (placement inside the exposed state is target-independent),
  // so the per-target ledgers must split exactly along these labels.
  using Target = PerturbationModel::MemFaultTarget;
  const double vt3 = clean.run_stats.ranks[3].vtime;
  const MachineModel m = sdc_machine({{0, 0.0, Target::kX},
                                      {3, 0.4 * vt3, Target::kPartial},
                                      {3, 0.7 * vt3, Target::kLValues}});
  cfg.run.abft = true;
  cfg.run.metrics = true;
  const DistSolveOutcome faulty = solve_system_3d(fs, b, cfg, m);

  const SdcStats s = faulty.run_stats.sdc_stats();
  ASSERT_GE(s.injected, 3);
  EXPECT_EQ(s.injected_by[0] + s.injected_by[1] + s.injected_by[2], s.injected);
  EXPECT_GE(s.injected_by[0], 1);  // x
  EXPECT_GE(s.injected_by[1], 1);  // L values
  EXPECT_GE(s.injected_by[2], 1);  // reduction partial
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(s.corrected_by[t], s.injected_by[t]) << "target " << t;
  }
  // The metric registry mirrors the same split.
  ASSERT_NE(faulty.run_stats.metrics, nullptr);
  const MetricsReport& rep = *faulty.run_stats.metrics;
  EXPECT_DOUBLE_EQ(rep.total("abft.injected.x"),
                   static_cast<double>(s.injected_by[0]));
  EXPECT_DOUBLE_EQ(rep.total("abft.injected.l"),
                   static_cast<double>(s.injected_by[1]));
  EXPECT_DOUBLE_EQ(rep.total("abft.injected.partial"),
                   static_cast<double>(s.injected_by[2]));
  EXPECT_DOUBLE_EQ(rep.total("abft.corrected.x") + rep.total("abft.corrected.l") +
                       rep.total("abft.corrected.partial"),
                   static_cast<double>(s.corrected));
  // Attribution is bookkeeping only: the clean ledger is still untouched.
  EXPECT_TRUE(bitwise_equal(faulty.x, clean.x));
  EXPECT_EQ(faulty.run_stats.fingerprint(), clean.run_stats.fingerprint());
}

TEST(SdcAbft, RecomputeRefailEscalatesToRestoreCost) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/3);
  const auto b = random_rhs(a.rows(), 1, 42);
  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.run = det_opts(0);
  const DistSolveOutcome clean = solve_system_3d(fs, b, cfg, test_machine());

  MachineModel m = sdc_machine({{0, 0.0, {}}});
  m.abft.recompute_refail_prob = 1.0;  // every recomputation re-fails
  cfg.run.abft = true;
  const DistSolveOutcome out = solve_system_3d(fs, b, cfg, m);
  const SdcStats s = out.run_stats.sdc_stats();
  ASSERT_GE(s.corrected, 1);
  EXPECT_EQ(s.escalated, s.corrected);
  // The escalation chain's restore leg is priced on top of recomputation.
  EXPECT_GE(s.repair_time,
            static_cast<double>(s.corrected) *
                (m.abft.recompute_overhead + m.recovery.restore_overhead) - 1e-15);
  // Escalation is still invisible on the clean ledger.
  EXPECT_TRUE(bitwise_equal(out.x, clean.x));
  EXPECT_EQ(out.run_stats.fingerprint(), clean.run_stats.fingerprint());
}

// ---------------------------------------------------------------------------
// (b) ABFT off: the residual gate catches what sailed through.
// ---------------------------------------------------------------------------

TEST(SdcVerification, ResidualGateTripsWithoutAbft) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/3);
  const auto b = random_rhs(a.rows(), 1, 42);
  for (const Algorithm3d alg : {Algorithm3d::kProposed, Algorithm3d::kBaseline}) {
    SolveConfig cfg;
    cfg.shape = {2, 2, 2};
    cfg.algorithm = alg;
    cfg.run = det_opts(0);  // ABFT off: corruption survives the solve
    const MachineModel m = sdc_machine({{0, 0.0, {}}, {3, 0.0, {}}});
    try {
      solve_system_3d_verified(a, fs, b, cfg, m);
      FAIL() << "corrupted solve passed the residual gate";
    } catch (const FaultError& fe) {
      EXPECT_EQ(fe.report.kind, FaultKind::kSilentCorruption);
      EXPECT_NE(fe.report.detail.find("residual"), std::string::npos)
          << "detail: " << fe.report.detail;
    }
  }
}

TEST(SdcVerification, SdcRepairDegradesIntoConvergedRefinement) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/3);
  const auto b = random_rhs(a.rows(), 1, 42);
  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.run = det_opts(0);
  cfg.run.sdc_repair = true;
  const MachineModel m = sdc_machine({{0, 0.0, {}}, {3, 0.0, {}}});
  const VerifiedSolveOutcome v = solve_system_3d_verified(a, fs, b, cfg, m);
  EXPECT_TRUE(v.repaired);
  EXPECT_GE(v.repair_iterations, 1);
  EXPECT_LE(v.residual, m.abft.residual_tol);
  const SdcStats s = v.solve.run_stats.sdc_stats();
  EXPECT_GE(s.injected, 1);
  EXPECT_EQ(s.detected, 0);  // ABFT was off: nothing caught in-flight
  EXPECT_GE(s.refine_iters, 1);
  EXPECT_GT(s.repair_time, 0.0);
  // The repaired solution matches the sequential reference.
  const auto ref = solve_system_seq(fs, b, 1);
  EXPECT_LT(max_abs_diff(v.solve.x, ref), 1e-6);
}

TEST(SdcVerification, CleanSolvePaysOnlyTheResidualCheck) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/3);
  const auto b = random_rhs(a.rows(), 1, 42);
  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.run = det_opts(0);
  const DistSolveOutcome plain = solve_system_3d(fs, b, cfg, test_machine());
  const VerifiedSolveOutcome v = solve_system_3d_verified(a, fs, b, cfg, test_machine());
  EXPECT_FALSE(v.repaired);
  EXPECT_LE(v.residual, test_machine().abft.residual_tol);
  EXPECT_TRUE(bitwise_equal(v.solve.x, plain.x));
  EXPECT_EQ(v.solve.run_stats.fingerprint(), plain.run_stats.fingerprint());
  for (const auto& r : v.solve.run_stats.ranks) {
    EXPECT_EQ(r.sdc.residual_checks, 1);
    EXPECT_GT(r.sdc.residual_time, 0.0);
    EXPECT_GT(r.fault_vtime, r.vtime);  // the check is fault-ledger-priced
  }
}

// Regression: at a heavy rate several events fire in one epoch and can land
// on the same word (exercised here at nd_levels=1, where the exposed pieces
// are small). The flip journal must unwind in reverse (LIFO) order — forward
// restoration writes the later entry's stale "original" (which already
// contains the earlier flip) back over the first restore, leaving the word
// corrupted even though every flip counts as corrected.
TEST(SdcAbft, SameEpochFlipCollisionsUnwindCleanly) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/1);
  const auto b = random_rhs(a.rows(), 1, 3);
  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.run = det_opts(0);
  const MachineModel base = MachineModel::cori_haswell();
  const DistSolveOutcome clean = solve_system_3d(fs, b, cfg, base);
  cfg.run.abft = true;
  MachineModel machine = base;
  machine.perturb.sdc_rate = 5e4;
  const DistSolveOutcome faulty = solve_system_3d(fs, b, cfg, machine);
  const SdcStats s = faulty.run_stats.sdc_stats();
  EXPECT_GT(s.injected, 8);  // heavy rate: multiple flips per epoch
  EXPECT_EQ(s.corrected, s.injected);
  EXPECT_TRUE(bitwise_equal(faulty.x, clean.x));
  EXPECT_EQ(faulty.run_stats.fingerprint(), clean.run_stats.fingerprint());
  EXPECT_LT(relative_residual(a, faulty.x, b), 1e-12);
}

// ---------------------------------------------------------------------------
// (c) Arming ABFT with no faults changes no clean-ledger bit.
// ---------------------------------------------------------------------------

TEST(SdcAbft, ArmedWithoutFaultsIsCleanLedgerInvisible) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/3);
  const auto b = random_rhs(a.rows(), 1, 42);
  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.run = det_opts(0, /*trace=*/true);
  const DistSolveOutcome clean = solve_system_3d(fs, b, cfg, test_machine());
  cfg.run.abft = true;
  const DistSolveOutcome armed = solve_system_3d(fs, b, cfg, test_machine());

  const SdcStats s = armed.run_stats.sdc_stats();
  EXPECT_EQ(s.injected, 0);
  EXPECT_GT(s.checks, 0);  // verification ran and was priced
  EXPECT_GT(s.verify_time, 0.0);
  EXPECT_TRUE(bitwise_equal(armed.x, clean.x));
  EXPECT_EQ(armed.run_stats.fingerprint(), clean.run_stats.fingerprint());
  EXPECT_TRUE(message_counts_identical(armed.run_stats, clean.run_stats));
  for (size_t r = 0; r < clean.run_stats.ranks.size(); ++r) {
    EXPECT_TRUE(bitwise_equal({&armed.run_stats.ranks[r].vtime, 1},
                              {&clean.run_stats.ranks[r].vtime, 1}));
  }
  // No flips -> no markers: even the full-fidelity trace is byte-identical.
  ASSERT_NE(armed.run_stats.trace, nullptr);
  EXPECT_EQ(armed.run_stats.trace->chrome_json(),
            clean.run_stats.trace->chrome_json());
  EXPECT_GT(armed.run_stats.fault_makespan(), armed.run_stats.makespan());
}

// ---------------------------------------------------------------------------
// (d) Salt isolation: SDC draws shift no other stream.
// ---------------------------------------------------------------------------

TEST(SdcSaltIsolation, ArmingSdcShiftsNoTimingDeliveryOrCrashDraw) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/3);
  const auto b = random_rhs(a.rows(), 1, 42);
  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.run = det_opts(5);

  // Every other stream live at once: timing jitter + compute skew, delivery
  // faults, and an armed (never-firing) MTBF crash model.
  MachineModel base = perturbed_machine();
  base.perturb.drop_prob = 0.05;
  base.perturb.dup_prob = 0.02;
  base.perturb.corrupt_prob = 0.01;
  base.perturb.reorder_prob = 0.02;
  base.perturb.reorder_window = 5e-6;
  base.perturb.crash_mtbf = 10.0;
  const DistSolveOutcome without = solve_system_3d(fs, b, cfg, base);

  MachineModel with = base;
  with.perturb.sdc_rate = 5e4;
  cfg.run.abft = true;
  const DistSolveOutcome armed = solve_system_3d(fs, b, cfg, with);
  ASSERT_GE(armed.run_stats.sdc_stats().injected, 1)
      << "rate produced no fault; the isolation check would be vacuous";

  // Clean ledger identical, and — the actual pin — every *other* fault
  // stream's accounting is bit-for-bit unmoved.
  EXPECT_TRUE(bitwise_equal(armed.x, without.x));
  EXPECT_EQ(armed.run_stats.fingerprint(), without.run_stats.fingerprint());
  const TransportStats ta = armed.run_stats.transport_totals();
  const TransportStats tb = without.run_stats.transport_totals();
  EXPECT_EQ(ta.data_frames, tb.data_frames);
  EXPECT_EQ(ta.retransmits, tb.retransmits);
  EXPECT_EQ(ta.retrans_bytes, tb.retrans_bytes);
  EXPECT_EQ(ta.timeouts, tb.timeouts);
  EXPECT_EQ(ta.frames_dropped, tb.frames_dropped);
  EXPECT_EQ(ta.acks, tb.acks);
  EXPECT_EQ(ta.corrupt_detected, tb.corrupt_detected);
  EXPECT_EQ(ta.duplicates, tb.duplicates);
  EXPECT_EQ(ta.reordered, tb.reordered);
  const RecoveryStats ra = armed.run_stats.recovery_stats();
  const RecoveryStats rb = without.run_stats.recovery_stats();
  EXPECT_EQ(ra.crashes, rb.crashes);
  EXPECT_EQ(ra.checkpoints, rb.checkpoints);
  EXPECT_EQ(ra.checkpoint_bytes, rb.checkpoint_bytes);
  EXPECT_EQ(ra.restores, rb.restores);
}

}  // namespace
}  // namespace sptrsv
