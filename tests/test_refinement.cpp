#include <gtest/gtest.h>

#include <random>

#include "core/refinement.hpp"
#include "factor/sptrsv_seq.hpp"
#include "sparse/paper_matrices.hpp"
#include "test_support.hpp"

namespace sptrsv {
namespace {

std::vector<Real> random_rhs(Idx n, Idx nrhs, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<Real> uni(-1.0, 1.0);
  std::vector<Real> b(static_cast<size_t>(n) * nrhs);
  for (auto& v : b) v = uni(rng);
  return b;
}

TEST(Refinement, ConvergesInOneOrTwoIterations) {
  // A well-conditioned diagonally dominant system: the first corrected
  // solve already reaches working accuracy.
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, 2);
  const auto b = random_rhs(a.rows(), 1, 3);
  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  const RefinementResult r =
      iterative_refinement(a, fs, b, cfg, MachineModel::cori_haswell());
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations(), 3);
  EXPECT_LT(r.residual_history.back(), 1e-13);
  EXPECT_LT(relative_residual(a, r.x, b), 1e-12);
  EXPECT_GT(r.modeled_solve_time, 0);
}

TEST(Refinement, ResidualsAreMonotoneUntilConvergence) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kLdoor, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, 1);
  const auto b = random_rhs(a.rows(), 2, 4);
  SolveConfig cfg;
  cfg.shape = {1, 2, 2};
  cfg.nrhs = 2;
  RefinementOptions opt;
  opt.tolerance = 0;  // force max_iterations to observe the decay
  opt.max_iterations = 3;
  const RefinementResult r =
      iterative_refinement(a, fs, b, cfg, MachineModel::cori_haswell(), opt);
  ASSERT_EQ(r.iterations(), 3);
  // Each iteration must not increase the residual (beyond roundoff noise).
  EXPECT_LE(r.residual_history[1], r.residual_history[0] * 1.5);
  EXPECT_LE(r.residual_history[2], r.residual_history[0] * 1.5);
}

TEST(Refinement, MultiRhsConverges) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kNlpkkt80, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, 2);
  const Idx nrhs = 4;
  const auto b = random_rhs(a.rows(), nrhs, 5);
  SolveConfig cfg;
  cfg.shape = {1, 1, 4};
  cfg.nrhs = nrhs;
  const RefinementResult r =
      iterative_refinement(a, fs, b, cfg, MachineModel::perlmutter());
  EXPECT_TRUE(r.converged);
  EXPECT_LT(relative_residual(a, r.x, b, nrhs), 1e-12);
}

TEST(Refinement, RhsSizeMismatchThrows) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, 1);
  SolveConfig cfg;
  cfg.shape = {1, 1, 2};
  cfg.nrhs = 2;
  const std::vector<Real> b(static_cast<size_t>(a.rows()), 1.0);  // only 1 RHS
  EXPECT_THROW(iterative_refinement(a, fs, b, cfg, MachineModel::cori_haswell()),
               std::invalid_argument);
}

TEST(Refinement, ModeledTimeAccumulatesPerIteration) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, 1);
  const auto b = random_rhs(a.rows(), 1, 6);
  SolveConfig cfg;
  cfg.shape = {1, 1, 2};
  RefinementOptions one, three;
  one.tolerance = 0;
  one.max_iterations = 1;
  three.tolerance = 0;
  three.max_iterations = 3;
  const auto r1 = iterative_refinement(a, fs, b, cfg, MachineModel::cori_haswell(), one);
  const auto r3 =
      iterative_refinement(a, fs, b, cfg, MachineModel::cori_haswell(), three);
  EXPECT_GT(r3.modeled_solve_time, 2.0 * r1.modeled_solve_time * 0.8);
}

// ---------------------------------------------------------------------------
// Refinement under perturbation (docs/ROBUSTNESS.md): every inner solve
// rides the same two-ledger contract, so delivery faults and crashes leave
// the numerical trajectory bitwise unchanged.
// ---------------------------------------------------------------------------

TEST(Refinement, DeliveryFaultsLeaveTheTrajectoryBitwiseClean) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, 2);
  const auto b = random_rhs(a.rows(), 1, 3);
  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.run.deterministic = true;
  cfg.run.seed = 9;
  RefinementOptions opt;
  opt.tolerance = 0;  // fixed-length run: identical iteration counts by design
  opt.max_iterations = 3;
  const RefinementResult clean =
      iterative_refinement(a, fs, b, cfg, test::test_machine(), opt);
  const RefinementResult faulty =
      iterative_refinement(a, fs, b, cfg, test::faulty_machine(), opt);
  EXPECT_EQ(faulty.iterations(), clean.iterations());
  EXPECT_TRUE(test::bitwise_equal(faulty.x, clean.x));
  EXPECT_TRUE(test::bitwise_equal(faulty.residual_history, clean.residual_history));
  // Monotone decay survives the fault schedule (roundoff slack as above).
  for (size_t i = 1; i < faulty.residual_history.size(); ++i) {
    EXPECT_LE(faulty.residual_history[i], faulty.residual_history[0] * 1.5);
  }
}

TEST(Refinement, MidRefinementCrashRecoversBitwise) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, 2);
  const auto b = random_rhs(a.rows(), 1, 3);
  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.run.deterministic = true;
  const RefinementResult clean =
      iterative_refinement(a, fs, b, cfg, test::test_machine());
  ASSERT_TRUE(clean.converged);

  // Probe one inner solve for rank 1's clean finish time, then crash that
  // rank halfway through — the schedule re-fires inside every refinement
  // iteration's solve (vt restarts at reset_clock), so recovery runs
  // repeatedly mid-refinement.
  const DistSolveOutcome probe = solve_system_3d(fs, b, cfg, test::test_machine());
  MachineModel crashy = test::test_machine();
  crashy.perturb.crashes.push_back({1, 0.5 * probe.run_stats.ranks[1].vtime});
  const RefinementResult crashed = iterative_refinement(a, fs, b, cfg, crashy);
  EXPECT_TRUE(crashed.converged);
  EXPECT_EQ(crashed.iterations(), clean.iterations());
  EXPECT_TRUE(test::bitwise_equal(crashed.x, clean.x));
  EXPECT_TRUE(test::bitwise_equal(crashed.residual_history, clean.residual_history));
  for (size_t i = 1; i < crashed.residual_history.size(); ++i) {
    EXPECT_LE(crashed.residual_history[i], crashed.residual_history[0] * 1.5);
  }
}

}  // namespace
}  // namespace sptrsv
