#include <gtest/gtest.h>

#include "ordering/etree.hpp"
#include "sparse/generators.hpp"
#include "symbolic/colcounts.hpp"

namespace sptrsv {
namespace {

/// Dense symbolic Cholesky reference: exact column counts of L.
std::vector<Nnz> colcounts_reference(const CsrMatrix& a) {
  const Idx n = a.rows();
  std::vector<std::vector<bool>> f(static_cast<size_t>(n),
                                   std::vector<bool>(static_cast<size_t>(n), false));
  for (Idx i = 0; i < n; ++i) {
    for (const Idx j : a.row_cols(i)) {
      if (j <= i) f[static_cast<size_t>(i)][static_cast<size_t>(j)] = true;
    }
  }
  for (Idx k = 0; k < n; ++k) {
    for (Idx i = k + 1; i < n; ++i) {
      if (!f[static_cast<size_t>(i)][static_cast<size_t>(k)]) continue;
      for (Idx j = i; j < n; ++j) {
        if (f[static_cast<size_t>(j)][static_cast<size_t>(k)]) {
          f[static_cast<size_t>(j)][static_cast<size_t>(i)] = true;
        }
      }
    }
  }
  std::vector<Nnz> count(static_cast<size_t>(n), 0);
  for (Idx j = 0; j < n; ++j) {
    for (Idx i = j; i < n; ++i) {
      if (f[static_cast<size_t>(i)][static_cast<size_t>(j)]) ++count[static_cast<size_t>(j)];
    }
  }
  return count;
}

TEST(ColCounts, MatchesReferenceOnGrid) {
  const CsrMatrix a = make_grid2d(5, 5, Stencil2d::kFivePoint);
  const auto parent = elimination_tree(a);
  EXPECT_EQ(cholesky_col_counts(a, parent), colcounts_reference(a));
}

TEST(ColCounts, MatchesReferenceOnRandoms) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const CsrMatrix a = make_random_symmetric(50, 3.0, seed);
    const auto parent = elimination_tree(a);
    EXPECT_EQ(cholesky_col_counts(a, parent), colcounts_reference(a)) << "seed " << seed;
  }
}

TEST(ColCounts, DiagonalMatrixIsAllOnes) {
  CooMatrix coo;
  coo.rows = coo.cols = 5;
  for (Idx i = 0; i < 5; ++i) coo.add(i, i, 1.0);
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const auto parent = elimination_tree(a);
  for (const Nnz c : cholesky_col_counts(a, parent)) EXPECT_EQ(c, 1);
}

TEST(ColCounts, TridiagonalCountsAreTwoExceptLast) {
  const CsrMatrix a = make_banded(6, 1);
  const auto parent = elimination_tree(a);
  const auto counts = cholesky_col_counts(a, parent);
  for (Idx j = 0; j < 5; ++j) EXPECT_EQ(counts[static_cast<size_t>(j)], 2);
  EXPECT_EQ(counts[5], 1);
}

TEST(ColCounts, FactorNnzIsSumOfCounts) {
  const CsrMatrix a = make_grid2d(6, 6, Stencil2d::kNinePoint);
  const auto parent = elimination_tree(a);
  const auto counts = cholesky_col_counts(a, parent);
  Nnz sum = 0;
  for (const Nnz c : counts) sum += c;
  EXPECT_EQ(cholesky_factor_nnz(a, parent), sum);
  EXPECT_GE(sum, a.nnz() / 2);  // factor at least as dense as the lower triangle
}

}  // namespace
}  // namespace sptrsv
