#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "comm/sparse_allreduce.hpp"
#include "core/sptrsv3d.hpp"
#include "factor/sptrsv_seq.hpp"
#include "ordering/etree.hpp"
#include "symbolic/colcounts.hpp"
#include "test_support.hpp"

namespace sptrsv {
namespace {

using test::bitwise_equal;
using test::message_counts_identical;
using test::outcomes_identical;
using test::perturbed_machine;
using test::random_rhs;
using test::random_system;
using test::shape_tree;
using test::stats_identical;
using test::test_machine;

constexpr RunOptions kDet{.deterministic = true, .seed = 0};

// ---------------------------------------------------------------------------
// Scheduler unit tests: the token protocol itself.
// ---------------------------------------------------------------------------

TEST(DetScheduler, WildcardTakesGloballyEarliestArrival) {
  // Rank r>0 computes r virtual seconds then sends; rank 0 receives with a
  // wildcard. In deterministic mode the receive order must be exactly the
  // virtual-arrival order (1, 2, ..., P-1) in every run — even though the
  // later senders' messages are often queued before rank 0 first looks.
  const int P = 8;
  for (int run = 0; run < 3; ++run) {
    Cluster::run(
        P, test_machine(),
        [](Comm& c) {
          if (c.rank() == 0) {
            for (int i = 1; i < c.size(); ++i) {
              const Message m = c.recv(kAnySource, 7);
              EXPECT_EQ(m.src, i) << "receive " << i << " out of arrival order";
            }
          } else {
            c.compute(static_cast<double>(c.rank()) * 1e6);
            c.send(0, 7, {static_cast<Real>(c.rank())});
          }
        },
        kDet);
  }
}

TEST(DetScheduler, FingerprintStableAcrossRuns) {
  // Messy all-to-all traffic with wildcard receives; three runs must agree
  // on every statistic bit.
  auto program = [](Comm& c) {
    for (int d = 0; d < c.size(); ++d) {
      if (d != c.rank()) {
        c.send(d, c.rank(), std::vector<Real>(8, 1.0), TimeCategory::kXyComm);
      }
    }
    double acc = 0;
    for (int i = 0; i + 1 < c.size(); ++i) {
      const Message m = c.recv(kAnySource, kAnyTag, TimeCategory::kXyComm);
      acc = acc * 1.0000001 + m.data[0] * m.src;
    }
    c.barrier();
    c.allreduce_sum(std::vector<Real>{acc}, TimeCategory::kZComm);
  };
  const auto r0 = Cluster::run(6, test_machine(), program, kDet);
  const auto r1 = Cluster::run(6, test_machine(), program, kDet);
  const auto r2 = Cluster::run(6, test_machine(), program, kDet);
  EXPECT_TRUE(stats_identical(r0, r1));
  EXPECT_TRUE(stats_identical(r0, r2));
  EXPECT_EQ(r0.fingerprint(), r1.fingerprint());
  EXPECT_EQ(r0.fingerprint(), r2.fingerprint());
}

TEST(DetScheduler, ExceptionsStillPropagate) {
  EXPECT_THROW(Cluster::run(
                   4, test_machine(),
                   [](Comm& c) {
                     if (c.rank() == 2) throw std::runtime_error("rank 2 died");
                     c.recv(kAnySource, kAnyTag);
                   },
                   kDet),
               std::runtime_error);
  EXPECT_THROW(Cluster::run(
                   3, test_machine(),
                   [](Comm& c) {
                     if (c.rank() == 0) throw std::logic_error("boom");
                     c.barrier();
                   },
                   kDet),
               std::logic_error);
}

TEST(DetScheduler, ProbeSpinMakesProgress) {
  Cluster::run(
      2, test_machine(),
      [](Comm& c) {
        if (c.rank() == 0) {
          c.compute(1e6);
          c.send(1, 3, {1.0});
        } else {
          while (!c.probe(0, 3)) {
          }
          EXPECT_DOUBLE_EQ(c.recv(0, 3).data.at(0), 1.0);
        }
      },
      kDet);
}

// ---------------------------------------------------------------------------
// Collective reduction order is pinned by rank, not arrival.
// ---------------------------------------------------------------------------

TEST(ReductionOrder, AllreduceSumsInRankOrder) {
  // 0.1 + 0.2 + 0.3 is not FP-associative; the result must be the exact
  // left-to-right rank-order sum in free-running and deterministic mode.
  const Real expected = ((Real{0.1} + Real{0.2}) + Real{0.3});
  for (const bool det : {false, true}) {
    Cluster::run(
        3, test_machine(),
        [&](Comm& c) {
          // Stagger clocks so deposit order != rank order in most runs.
          c.compute(static_cast<double>(2 - c.rank()) * 1e7);
          const std::vector<Real> mine{Real{0.1} * (c.rank() + 1)};
          const auto out = c.allreduce_sum(mine, TimeCategory::kOther);
          const Real got = out.at(0);
          EXPECT_EQ(std::memcmp(&got, &expected, sizeof(Real)), 0)
              << "allreduce order not rank-pinned (det=" << det << ")";
        },
        RunOptions{.deterministic = det});
  }
}

TEST(ReductionOrder, LSolvePinnedToPlanOrder) {
  // Reference reimplementation of the documented L reduction order — own
  // blocks by ascending column, then child partials by ascending source
  // rank (flat tree: children are leaves) — compared bitwise against the
  // distributed solve on a 1 x P grid, where each row's partial sums come
  // from all P ranks.
  const Idx n = 12;
  const CsrMatrix a = make_banded(n, n - 1);  // dense lower triangle
  const auto parent = elimination_tree(a);
  const auto counts = cholesky_col_counts(a, parent);
  SupernodeOptions opt;
  opt.max_width = 1;
  opt.relax_width = 0;
  const SupernodalLU lu =
      factor_supernodal(a, block_symbolic(a, find_supernodes(parent, counts, opt)));

  const int P = 4;
  std::vector<Idx> cols(static_cast<size_t>(n));
  for (Idx k = 0; k < n; ++k) cols[static_cast<size_t>(k)] = k;
  const Solve2dPlan plan = Solve2dPlan::build(lu, {1, P}, TreeKind::kFlat, cols, {});
  const Grid2dShape shape{1, P};

  const auto b = random_rhs(n, 1, 99);
  VecMap b_map;
  for (Idx i = 0; i < n; ++i) b_map[i] = {b[static_cast<size_t>(i)]};

  // Distributed solve (deterministic mode); gather y from the diag owners.
  std::vector<Real> y_dist(static_cast<size_t>(n), 0.0);
  Cluster::run(
      P, test_machine(),
      [&](Comm& c) {
        const auto res = solve_l_2d(c, plan, b_map, {}, 1, 0);
        for (const auto& [i, y] : res.y) y_dist[static_cast<size_t>(i)] = y.at(0);
      },
      kDet);

  // Reference: sequential, same order.
  std::vector<Real> y_ref(static_cast<size_t>(n), 0.0);
  for (Idx i = 0; i < n; ++i) {
    const Idx rp = plan.row_pos(i);
    const TreeView t = plan.l_reduce(rp);
    const auto pat = plan.row_pattern(rp);
    const auto pidx = plan.row_pattern_index(rp);
    auto partial = [&](int member) {
      Real s = 0;
      for (size_t pi = 0; pi < pat.size(); ++pi) {
        const Idx k = pat[pi];
        if (shape.owner_col(k) != shape.col_of(member)) continue;
        const Idx off =
            lu.sym.below_offset[static_cast<size_t>(k)][static_cast<size_t>(pidx[pi])];
        s += lu.lpanel[static_cast<size_t>(k)][static_cast<size_t>(off)] *
             y_ref[static_cast<size_t>(k)];
      }
      return s;
    };
    Real lsum = partial(t.root());
    for (int r = 0; r < P; ++r) {
      if (r != t.root() && t.contains(r)) lsum += partial(r);
    }
    y_ref[static_cast<size_t>(i)] =
        lu.diag_linv[static_cast<size_t>(i)].at(0) * (b[static_cast<size_t>(i)] - lsum);
  }
  EXPECT_TRUE(bitwise_equal(y_dist, y_ref));
}

// ---------------------------------------------------------------------------
// Property suite: ~20 random systems, every solver, two deterministic runs
// bitwise identical; perturbation seeds move timings but nothing else.
// ---------------------------------------------------------------------------

class DeterminismProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismProperty, SolversAreBitReproducible) {
  const auto sys = random_system(GetParam());
  SCOPED_TRACE(sys.name);
  const auto b = random_rhs(sys.a.rows(), sys.nrhs, GetParam() ^ 0xb);

  for (const auto alg : {Algorithm3d::kProposed, Algorithm3d::kBaseline}) {
    SolveConfig cfg;
    cfg.shape = sys.shape;
    cfg.algorithm = alg;
    cfg.nrhs = sys.nrhs;
    cfg.run = kDet;
    const auto out1 = solve_system_3d(sys.fs, b, cfg, test_machine());
    const auto out2 = solve_system_3d(sys.fs, b, cfg, test_machine());
    EXPECT_TRUE(outcomes_identical(out1, out2));
    EXPECT_EQ(out1.run_stats.fingerprint(), out2.run_stats.fingerprint());
    EXPECT_EQ(out1.makespan, out2.makespan);
    // The solution itself must not depend on arrival order at all: the
    // free-running mode has to produce the same bits.
    cfg.run = RunOptions{};
    const auto out_free = solve_system_3d(sys.fs, b, cfg, test_machine());
    EXPECT_TRUE(bitwise_equal(out1.x, out_free.x));
  }
}

TEST_P(DeterminismProperty, PerturbationsMoveOnlyTimings) {
  const auto sys = random_system(GetParam());
  SCOPED_TRACE(sys.name);
  const auto b = random_rhs(sys.a.rows(), sys.nrhs, GetParam() ^ 0xc);

  SolveConfig cfg;
  cfg.shape = sys.shape;
  cfg.nrhs = sys.nrhs;
  cfg.run = kDet;
  const auto base = solve_system_3d(sys.fs, b, cfg, test_machine());

  const MachineModel pm = perturbed_machine();
  bool some_timing_moved = false;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    cfg.run = RunOptions{.deterministic = true, .seed = seed};
    const auto out = solve_system_3d(sys.fs, b, cfg, pm);
    // Solutions and message counts are invariant under any perturbation...
    EXPECT_TRUE(bitwise_equal(base.x, out.x)) << "seed " << seed;
    EXPECT_TRUE(message_counts_identical(base.run_stats, out.run_stats))
        << "seed " << seed;
    // ...and a perturbed run is itself reproducible.
    const auto out2 = solve_system_3d(sys.fs, b, cfg, pm);
    EXPECT_TRUE(outcomes_identical(out, out2)) << "seed " << seed;
    if (out.makespan != base.makespan) some_timing_moved = true;
  }
  EXPECT_TRUE(some_timing_moved)
      << "perturbations (jitter+delay+skew) never changed the makespan";
}

INSTANTIATE_TEST_SUITE_P(RandomSystems, DeterminismProperty,
                         ::testing::Range<std::uint64_t>(0, 20),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// The communication building blocks on their own.
// ---------------------------------------------------------------------------

TEST(Determinism, SparseAllreduceBitReproducible) {
  const NdTree tree = shape_tree(3);
  auto run_once = [&](const MachineModel& m, const RunOptions& opts) {
    std::vector<std::vector<Real>> payloads(
        static_cast<size_t>(tree.num_leaves()));
    const auto stats = Cluster::run(
        tree.num_leaves(), m,
        [&](Comm& c) {
          std::vector<std::vector<Real>> storage;
          std::vector<ReduceSegment> segs;
          for (Idx id : tree.path_to_root(tree.leaf_node_id(c.rank()))) {
            if (tree.node(id).depth >= tree.levels()) continue;
            auto& buf = storage.emplace_back(8, 0.0);
            for (size_t i = 0; i < buf.size(); ++i) {
              buf[i] = 0.1 * static_cast<Real>(c.rank() + 1) + 0.01 * i;
            }
            segs.push_back({id, buf});
          }
          sparse_allreduce(c, tree, segs);
          std::vector<Real> flat;
          for (const auto& s : storage) flat.insert(flat.end(), s.begin(), s.end());
          payloads[static_cast<size_t>(c.rank())] = std::move(flat);
        },
        opts);
    return std::pair(stats, payloads);
  };
  const auto [s1, p1] = run_once(test_machine(), kDet);
  const auto [s2, p2] = run_once(test_machine(), kDet);
  EXPECT_TRUE(stats_identical(s1, s2));
  for (size_t r = 0; r < p1.size(); ++r) EXPECT_TRUE(bitwise_equal(p1[r], p2[r]));
  // Perturbed run: same reduced values, same counts, different clock bits.
  const auto [s3, p3] =
      run_once(perturbed_machine(), RunOptions{.deterministic = true, .seed = 7});
  EXPECT_TRUE(message_counts_identical(s1, s3));
  for (size_t r = 0; r < p1.size(); ++r) EXPECT_TRUE(bitwise_equal(p1[r], p3[r]));
}

TEST(Determinism, TreeBroadcastBitReproducible) {
  // The binary-tree broadcast inside a 2D L-solve (13x1 grid: rank 0's
  // column-0 broadcast spans every rank), run twice deterministically.
  const Idx n = 13;
  const CsrMatrix a = make_banded(n, n - 1);
  const auto parent = elimination_tree(a);
  const auto counts = cholesky_col_counts(a, parent);
  SupernodeOptions opt;
  opt.max_width = 1;
  opt.relax_width = 0;
  const SupernodalLU lu =
      factor_supernodal(a, block_symbolic(a, find_supernodes(parent, counts, opt)));
  std::vector<Idx> cols(static_cast<size_t>(n));
  for (Idx k = 0; k < n; ++k) cols[static_cast<size_t>(k)] = k;
  const Solve2dPlan plan =
      Solve2dPlan::build(lu, {static_cast<int>(n), 1}, TreeKind::kBinary, cols, {});
  const auto b = random_rhs(n, 1, 5);
  VecMap b_map;
  for (Idx i = 0; i < n; ++i) b_map[i] = {b[static_cast<size_t>(i)]};

  auto run_once = [&] {
    std::vector<Real> y(static_cast<size_t>(n), 0.0);
    const auto stats = Cluster::run(
        static_cast<int>(n), test_machine(),
        [&](Comm& c) {
          const auto res = solve_l_2d(c, plan, b_map, {}, 1, 0);
          for (const auto& [i, yv] : res.y) y[static_cast<size_t>(i)] = yv.at(0);
        },
        kDet);
    return std::pair(stats, y);
  };
  const auto [s1, y1] = run_once();
  const auto [s2, y2] = run_once();
  EXPECT_TRUE(stats_identical(s1, s2));
  EXPECT_TRUE(bitwise_equal(y1, y2));
}

}  // namespace
}  // namespace sptrsv
