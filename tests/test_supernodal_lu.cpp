#include <gtest/gtest.h>

#include "factor/sptrsv_seq.hpp"
#include "factor/supernodal_lu.hpp"
#include "ordering/etree.hpp"
#include "sparse/generators.hpp"
#include "sparse/paper_matrices.hpp"
#include "symbolic/colcounts.hpp"

namespace sptrsv {
namespace {

SupernodalLU factor(const CsrMatrix& a, const SupernodeOptions& opt = {}) {
  const auto parent = elimination_tree(a);
  const auto counts = cholesky_col_counts(a, parent);
  return factor_supernodal(a, block_symbolic(a, find_supernodes(parent, counts, opt)));
}

/// Max |L*U - A| over all entries, via the dense reconstruction.
Real reconstruction_error(const CsrMatrix& a, const SupernodalLU& f) {
  const auto prod = f.reconstruct_dense();
  const Idx n = a.rows();
  Real worst = 0;
  for (Idx i = 0; i < n; ++i) {
    for (Idx j = 0; j < n; ++j) {
      worst = std::max(worst, std::abs(prod[static_cast<size_t>(j) * n + i] - a.at(i, j)));
    }
  }
  return worst;
}

TEST(SupernodalLu, ReconstructsBanded) {
  const CsrMatrix a = make_banded(20, 3);
  EXPECT_LT(reconstruction_error(a, factor(a)), 1e-10);
}

TEST(SupernodalLu, ReconstructsGrid2d) {
  const CsrMatrix a = make_grid2d(6, 6, Stencil2d::kNinePoint);
  EXPECT_LT(reconstruction_error(a, factor(a)), 1e-10);
}

TEST(SupernodalLu, ReconstructsGrid3d) {
  const CsrMatrix a = make_grid3d(3, 3, 4, Stencil3d::kSevenPoint);
  EXPECT_LT(reconstruction_error(a, factor(a)), 1e-10);
}

TEST(SupernodalLu, ReconstructsRandoms) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const CsrMatrix a = make_random_symmetric(48, 3.0, seed);
    EXPECT_LT(reconstruction_error(a, factor(a)), 1e-10) << "seed " << seed;
  }
}

TEST(SupernodalLu, NarrowSupernodesStillCorrect) {
  const CsrMatrix a = make_grid2d(5, 7, Stencil2d::kFivePoint);
  SupernodeOptions opt;
  opt.max_width = 1;  // fully scalar
  opt.relax_width = 0;
  EXPECT_LT(reconstruction_error(a, factor(a, opt)), 1e-10);
}

TEST(SupernodalLu, WideRelaxationStillCorrect) {
  const CsrMatrix a = make_grid2d(6, 6, Stencil2d::kFivePoint);
  SupernodeOptions opt;
  opt.relax_width = 16;
  opt.max_width = 24;
  EXPECT_LT(reconstruction_error(a, factor(a, opt)), 1e-10);
}

TEST(SupernodalLu, SolveFlopsPositiveAndScalesWithRhs) {
  const CsrMatrix a = make_grid2d(6, 6, Stencil2d::kFivePoint);
  const auto f = factor(a);
  const double f1 = f.solve_flops(1);
  const double f50 = f.solve_flops(50);
  EXPECT_GT(f1, 0);
  EXPECT_DOUBLE_EQ(f50, 50.0 * f1);
}

TEST(AnalyzeAndFactor, EndToEndOnPaperMatrix) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/3);
  EXPECT_TRUE(is_permutation(fs.perm));
  EXPECT_TRUE(fs.tree.check_invariants(a.rows()));
  EXPECT_EQ(fs.lu.n(), a.rows());
}

TEST(AnalyzeAndFactor, SupernodesRespectTreeBoundaries) {
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, 2);
  // Every supernode must live inside exactly one tracked tree node range.
  for (Idx k = 0; k < fs.lu.num_supernodes(); ++k) {
    const Idx lo = fs.lu.sym.part.first_col(k);
    const Idx hi = lo + fs.lu.sym.part.width(k) - 1;
    EXPECT_EQ(fs.tree.node_of_column(lo), fs.tree.node_of_column(hi))
        << "supernode " << k << " straddles a separator boundary";
  }
}

TEST(AnalyzeAndFactor, ExpertOptionsPipeline) {
  // Full-options pipeline: min-degree leaf ordering, tight supernodes.
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  AnalyzeOptions opt;
  opt.nd.levels = 2;
  opt.nd.leaf_ordering = LeafOrdering::kMinDegree;
  opt.supernode.max_width = 24;
  opt.supernode.forced_breaks = {1, 2, 3};  // must be ignored/overwritten
  const FactoredSystem fs = analyze_and_factor(a, opt);
  EXPECT_TRUE(is_permutation(fs.perm));
  for (Idx k = 0; k < fs.lu.num_supernodes(); ++k) {
    EXPECT_LE(fs.lu.sym.part.width(k), 24);
  }
  // Still solves correctly.
  std::vector<Real> b(static_cast<size_t>(a.rows()), 1.0);
  const auto x = solve_system_seq(fs, b);
  EXPECT_LT(relative_residual(a, x, b), 1e-10);
}

TEST(AnalyzeAndFactor, ZeroPivotThrows) {
  // A singular matrix: a 2x2 zero block on the diagonal after elimination.
  CooMatrix coo;
  coo.rows = coo.cols = 2;
  coo.add(0, 0, 1.0);
  coo.add(0, 1, 1.0);
  coo.add(1, 0, 1.0);
  coo.add(1, 1, 1.0);  // exactly singular
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  EXPECT_THROW(analyze_and_factor(a, 0), std::runtime_error);
}

}  // namespace
}  // namespace sptrsv
