#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/sptrsv3d.hpp"
#include "sparse/paper_matrices.hpp"
#include "test_support.hpp"

namespace sptrsv {
namespace {

/// Golden-fingerprint corpus: the clean-ledger fingerprint of a 2x2x2
/// deterministic solve of every Table-1 matrix, for both 3D algorithms,
/// two perturbation seeds, and two ABFT-armed variants (fault-free and
/// seeded-SDC), pinned in tests/golden_fingerprints.txt. Any
/// drift — a clock-model change, a reordered reduction, a perturbation
/// stream change — fails here with the exact (matrix, algorithm, seed)
/// that moved. Intentional changes regenerate the corpus:
///
///   SPTRSV_GOLDEN_REGEN=tests/golden_fingerprints.txt ./build/tests/test_golden
///
/// (path relative to where the binary runs; see docs/TESTING.md).

std::string fp_hex(std::uint64_t fp) {
  std::ostringstream os;
  os << std::hex;
  os.width(16);
  os.fill('0');
  os << fp;
  return os.str();
}

/// "<matrix> <algorithm> <seed-token>" -> fingerprint hex, for all 72
/// corpus entries, computed fresh. Seed tokens "0"/"1" are plain perturbed
/// solves; "abft0" is the same seed-0 solve with ABFT armed and no faults,
/// "sdc0" is seed 0 with ABFT armed over an aggressive memory-fault rate,
/// "degrade0" is seed 0 with an empty spare pool, one scheduled rank
/// death and elastic degradation absorbing it, and "elastic0" adds a
/// spare-return event that re-expands the degraded world mid-solve. All
/// four fault rows must equal the plain "0" row bit for bit — the corpus
/// pins the docs/ROBUSTNESS.md contract that verification, correction,
/// shrink-and-redistribute recovery and elastic re-expansion never touch
/// the clean ledger.
std::map<std::string, std::string> compute_corpus() {
  std::map<std::string, std::string> out;
  for (const PaperMatrix pm : all_paper_matrices()) {
    const CsrMatrix a = make_paper_matrix(pm, MatrixScale::kTiny);
    const FactoredSystem fs = analyze_and_factor(a, 3);
    const std::vector<Real> b = test::random_rhs(a.rows(), 1, 42);
    for (const Algorithm3d alg : {Algorithm3d::kProposed, Algorithm3d::kBaseline}) {
      const std::string base = paper_matrix_name(pm) + " " +
                               (alg == Algorithm3d::kProposed ? "proposed" : "baseline");
      for (const std::uint64_t seed : {0, 1}) {
        SolveConfig cfg;
        cfg.shape = {2, 2, 2};
        cfg.algorithm = alg;
        cfg.run = RunOptions{.deterministic = true, .seed = seed};
        // Perturbations are seeded, so the perturbed clocks are part of
        // what the fingerprint pins — seeds 0 and 1 are distinct entries.
        const DistSolveOutcome res =
            solve_system_3d(fs, b, cfg, test::perturbed_machine());
        out[base + " " + std::to_string(seed)] = fp_hex(res.run_stats.fingerprint());
      }
      for (const bool faulted : {false, true}) {
        SolveConfig cfg;
        cfg.shape = {2, 2, 2};
        cfg.algorithm = alg;
        cfg.run = RunOptions{.deterministic = true, .seed = 0};
        cfg.run.abft = true;
        MachineModel machine = test::perturbed_machine();
        if (faulted) machine.perturb.sdc_rate = 5e4;
        const DistSolveOutcome res = solve_system_3d(fs, b, cfg, machine);
        const std::string key = base + (faulted ? " sdc0" : " abft0");
        if (faulted) {
          EXPECT_GT(res.run_stats.sdc_stats().injected, 0u)
              << key << ": the seeded-SDC corpus row injected nothing";
        }
        EXPECT_EQ(fp_hex(res.run_stats.fingerprint()), out[base + " 0"])
            << key << ": ABFT-corrected fingerprint drifted from the clean row";
        out[key] = fp_hex(res.run_stats.fingerprint());
      }
      {
        // Elastic degradation row: a mid-solve death with no spares left,
        // absorbed by shrink-and-redistribute. The shrunken world must
        // still reproduce the clean row bit for bit.
        SolveConfig cfg;
        cfg.shape = {2, 2, 2};
        cfg.algorithm = alg;
        cfg.run = RunOptions{.deterministic = true, .seed = 0};
        cfg.run.degrade = true;
        MachineModel machine = test::perturbed_machine();
        machine.recovery.spare_ranks = 0;
        machine.perturb.crashes.push_back({1, 1e-5});
        const DistSolveOutcome res = solve_system_3d(fs, b, cfg, machine);
        const std::string key = base + " degrade0";
        EXPECT_GT(res.run_stats.degradation_stats().degrades, 0)
            << key << ": the scheduled crash never degraded";
        EXPECT_EQ(fp_hex(res.run_stats.fingerprint()), out[base + " 0"])
            << key << ": degraded fingerprint drifted from the clean row";
        out[key] = fp_hex(res.run_stats.fingerprint());
      }
      {
        // Elastic re-expansion row: the same spare-less death, but the
        // repaired node returns mid-solve and the world grows back to
        // full width. Shrink, re-agree, image transfer and replay are all
        // fault-ledger costs — the clean row must still match bit for bit.
        SolveConfig cfg;
        cfg.shape = {2, 2, 2};
        cfg.algorithm = alg;
        cfg.run = RunOptions{.deterministic = true, .seed = 0};
        cfg.run.degrade = true;
        MachineModel machine = test::perturbed_machine();
        machine.recovery.spare_ranks = 0;
        machine.perturb.crashes.push_back({1, 1e-5});
        machine.perturb.returns.push_back({1, 8e-5});
        const DistSolveOutcome res = solve_system_3d(fs, b, cfg, machine);
        const std::string key = base + " elastic0";
        EXPECT_GT(res.run_stats.elasticity_stats().returns, 0)
            << key << ": the scheduled return never re-expanded";
        EXPECT_EQ(fp_hex(res.run_stats.fingerprint()), out[base + " 0"])
            << key << ": elastic fingerprint drifted from the clean row";
        out[key] = fp_hex(res.run_stats.fingerprint());
      }
    }
  }
  return out;
}

TEST(GoldenFingerprints, MatchCorpus) {
  const std::map<std::string, std::string> computed = compute_corpus();

  if (const char* regen = std::getenv("SPTRSV_GOLDEN_REGEN");
      regen != nullptr && *regen != '\0') {
    std::ofstream out(regen);
    ASSERT_TRUE(out) << "cannot write " << regen;
    out << "# Golden clean-ledger fingerprints (tests/test_golden.cpp).\n"
        << "# <matrix> <algorithm> <seed-token: 0|1|abft0|sdc0|degrade0|elastic0> <fingerprint>\n"
        << "# Regenerate: SPTRSV_GOLDEN_REGEN=<path> ./build/tests/test_golden\n";
    for (const auto& [key, fp] : computed) out << key << " " << fp << "\n";
    GTEST_SKIP() << "regenerated " << computed.size() << " entries into " << regen;
  }

  std::ifstream in(GOLDEN_FILE);
  ASSERT_TRUE(in) << "missing golden corpus " << GOLDEN_FILE;
  std::map<std::string, std::string> golden;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string matrix, alg, seed, fp;
    ASSERT_TRUE(ls >> matrix >> alg >> seed >> fp) << "malformed line: " << line;
    golden[matrix + " " + alg + " " + seed] = fp;
  }

  ASSERT_EQ(golden.size(), computed.size())
      << "corpus entry count drifted — regenerate deliberately";
  for (const auto& [key, fp] : computed) {
    const auto it = golden.find(key);
    ASSERT_NE(it, golden.end()) << "no golden entry for " << key;
    EXPECT_EQ(it->second, fp) << "fingerprint drifted for " << key;
  }
}

}  // namespace
}  // namespace sptrsv
