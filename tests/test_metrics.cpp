/// \file test_metrics.cpp
/// \brief The metrics layer (docs/OBSERVABILITY.md §Metrics).
///
/// The contract under test, in order of importance:
///  1. Outside the clean ledger: enabling metrics (with or without
///     virtual-time sampling) changes no solution bit, fingerprint,
///     message/byte count or trace byte.
///  2. Determinism: two deterministic runs of the same program produce
///     byte-identical MetricsReport JSON, and every metric except the
///     scheduler's own "sched.*" family is invariant across schedule
///     policies.
///  3. Mirror fidelity: the metric mirrors of the clean counters agree
///     with the clean ledger exactly, per rank and per category.
///  4. Post-mortem evidence: a faulted or deadlocked try_run attaches a
///     non-empty flight-recorder dump to the FaultReport.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/sptrsv3d.hpp"
#include "factor/sptrsv_seq.hpp"
#include "gpusim/gpu_sptrsv.hpp"
#include "metrics/metrics.hpp"
#include "sparse/paper_matrices.hpp"
#include "test_support.hpp"
#include "trace/trace.hpp"

namespace sptrsv {
namespace {

using test::bitwise_equal;
using test::random_rhs;
using test::stats_identical;
using test::test_machine;

// ---------------------------------------------------------------------------
// Registry unit tests.
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CounterGaugeRoundTrip) {
  MetricsRegistry reg;
  const auto c = reg.counter("a.count");
  const auto g = reg.gauge("a.gauge");
  c.add();
  c.add(41);
  g.set(2.5);
  g.add(0.5);
  const auto vals = reg.values();
  EXPECT_DOUBLE_EQ(vals.at("a.count"), 42.0);
  EXPECT_DOUBLE_EQ(vals.at("a.gauge"), 3.0);
}

TEST(MetricsRegistry, NullHandlesAreNoOps) {
  // Default-constructed handles (metrics off) must be safely bumpable.
  const MetricsRegistry::Counter c;
  const MetricsRegistry::Gauge g;
  const MetricsRegistry::Histogram h;
  c.add(7);
  g.set(1.0);
  h.observe(3.0);  // nothing to assert beyond "does not crash"
}

TEST(MetricsRegistry, SameNameSharesStorage) {
  MetricsRegistry reg;
  const auto a = reg.counter("shared");
  const auto b = reg.counter("shared");
  a.add(1);
  b.add(2);
  EXPECT_DOUBLE_EQ(reg.values().at("shared"), 3.0);
}

TEST(MetricsRegistry, HistogramBucketPlacement) {
  MetricsRegistry reg;
  const std::array<double, 3> bounds{1.0, 10.0, 100.0};
  const auto h = reg.histogram("h", bounds);
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (boundary is inclusive)
  h.observe(5.0);    // bucket 1
  h.observe(1000.0); // overflow bucket
  const auto hs = reg.histograms().at("h");
  ASSERT_EQ(hs.counts.size(), 4u);
  EXPECT_EQ(hs.counts[0], 2);
  EXPECT_EQ(hs.counts[1], 1);
  EXPECT_EQ(hs.counts[2], 0);
  EXPECT_EQ(hs.counts[3], 1);
  EXPECT_EQ(hs.total, 4);
  EXPECT_DOUBLE_EQ(hs.sum, 0.5 + 1.0 + 5.0 + 1000.0);
}

TEST(MetricsRegistry, SampleCapturesSeries) {
  MetricsRegistry reg;
  const auto c = reg.counter("c");
  c.add(1);
  reg.sample(1.0);
  c.add(2);
  reg.sample(2.0);
  const auto names = reg.series_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "c");
  ASSERT_EQ(reg.series().size(), 2u);
  EXPECT_DOUBLE_EQ(reg.series()[0].vt, 1.0);
  EXPECT_DOUBLE_EQ(reg.series()[0].values[0], 1.0);
  EXPECT_DOUBLE_EQ(reg.series()[1].vt, 2.0);
  EXPECT_DOUBLE_EQ(reg.series()[1].values[0], 3.0);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsHandles) {
  MetricsRegistry reg;
  const auto c = reg.counter("c");
  c.add(5);
  reg.sample(1.0);
  reg.reset();
  EXPECT_DOUBLE_EQ(reg.values().at("c"), 0.0);
  EXPECT_TRUE(reg.series().empty());
  c.add(2);  // handle survives the reset
  EXPECT_DOUBLE_EQ(reg.values().at("c"), 2.0);
}

TEST(MetricsReport, ExportersStampSchemaAndMangleNames) {
  MetricsReport rep;
  rep.ranks.resize(2);
  rep.ranks[0].values["cluster.messages.fp"] = 3.0;
  rep.ranks[1].values["cluster.messages.fp"] = 4.0;
  MetricsRegistry::HistStorage h;
  h.bounds = {1.0};
  h.counts = {2, 1};
  h.sum = 12.0;
  h.total = 3;
  rep.ranks[0].histograms["cluster.wait_time"] = h;

  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"schema\":\"sptrsv-metrics/1\""), std::string::npos);
  EXPECT_EQ(json, rep.to_json());  // deterministic byte-for-byte

  const std::string prom = rep.to_prometheus();
  EXPECT_NE(prom.find("sptrsv_cluster_messages_fp{rank=\"0\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("sptrsv_cluster_messages_fp{rank=\"1\"} 4"),
            std::string::npos);
  // Histograms export as cumulative bucket / sum / count families.
  EXPECT_NE(prom.find("sptrsv_cluster_wait_time_bucket"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(prom.find("sptrsv_cluster_wait_time_sum"), std::string::npos);
  EXPECT_NE(prom.find("sptrsv_cluster_wait_time_count"), std::string::npos);

  EXPECT_DOUBLE_EQ(rep.total("cluster.messages.fp"), 7.0);
  EXPECT_DOUBLE_EQ(rep.max("cluster.messages.fp"), 4.0);
  EXPECT_DOUBLE_EQ(rep.value(1, "cluster.messages.fp"), 4.0);
  EXPECT_DOUBLE_EQ(rep.value(1, "absent"), 0.0);
  EXPECT_DOUBLE_EQ(rep.hist_sum_total("cluster.wait_time"), 12.0);
  EXPECT_DOUBLE_EQ(rep.hist_sum_max("cluster.wait_time"), 12.0);
}

TEST(MetricsOptions, PeriodRequiresMetricsAndNonNegative) {
  RunOptions bad;
  bad.metrics_period = 1e-6;  // but metrics == false
  EXPECT_THROW(Cluster::run(1, test_machine(), [](Comm&) {}, bad),
               std::invalid_argument);
  RunOptions neg;
  neg.metrics = true;
  neg.metrics_period = -1.0;
  EXPECT_THROW(Cluster::run(1, test_machine(), [](Comm&) {}, neg),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The clean-ledger invariant: metrics on/off is bitwise invisible.
// ---------------------------------------------------------------------------

struct SolveSetup {
  CsrMatrix a;
  FactoredSystem fs;
  std::vector<Real> b;
  SolveSetup()
      : a(make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny)),
        fs(analyze_and_factor(a, 2)),
        b(random_rhs(a.rows(), 1, 17)) {}
};

SolveConfig tiny_cfg(Algorithm3d alg = Algorithm3d::kProposed) {
  SolveConfig cfg;
  cfg.shape = {2, 2, 4};
  cfg.algorithm = alg;
  cfg.run.deterministic = true;
  return cfg;
}

TEST(MetricsCleanLedger, EnablingMetricsChangesNoCleanBit) {
  const SolveSetup s;
  for (const Algorithm3d alg : {Algorithm3d::kProposed, Algorithm3d::kBaseline}) {
    SolveConfig off = tiny_cfg(alg);
    off.run.trace = true;
    const DistSolveOutcome base = solve_system_3d(s.fs, s.b, off, test_machine());
    ASSERT_EQ(base.run_stats.metrics, nullptr);

    SolveConfig on = off;
    on.run.metrics = true;
    const DistSolveOutcome with = solve_system_3d(s.fs, s.b, on, test_machine());
    ASSERT_NE(with.run_stats.metrics, nullptr);

    SolveConfig sampled = on;
    sampled.run.metrics_period = 1e-5;
    const DistSolveOutcome with_series =
        solve_system_3d(s.fs, s.b, sampled, test_machine());

    for (const DistSolveOutcome* o : {&with, &with_series}) {
      EXPECT_TRUE(bitwise_equal(base.x, o->x));
      EXPECT_TRUE(stats_identical(base.run_stats, o->run_stats));
      EXPECT_EQ(base.run_stats.fingerprint(), o->run_stats.fingerprint());
      EXPECT_DOUBLE_EQ(base.run_stats.makespan(), o->run_stats.makespan());
      // Trace bytes too: the trace layer must not see the metrics layer.
      EXPECT_EQ(base.run_stats.trace->chrome_json(), o->run_stats.trace->chrome_json());
    }
  }
}

TEST(MetricsCleanLedger, MirrorsAgreeWithCleanCountersPerRank) {
  const SolveSetup s;
  SolveConfig cfg = tiny_cfg();
  cfg.run.metrics = true;
  const DistSolveOutcome out = solve_system_3d(s.fs, s.b, cfg, test_machine());
  const MetricsReport& rep = *out.run_stats.metrics;
  const char* suffix[kNumTimeCategories] = {"fp", "xy", "z", "other"};
  ASSERT_EQ(rep.ranks.size(), out.run_stats.ranks.size());
  for (size_t r = 0; r < rep.ranks.size(); ++r) {
    for (int c = 0; c < kNumTimeCategories; ++c) {
      EXPECT_DOUBLE_EQ(
          rep.value(static_cast<int>(r), std::string("cluster.messages.") + suffix[c]),
          static_cast<double>(out.run_stats.ranks[r].messages[c]))
          << "rank " << r << " category " << c;
      EXPECT_DOUBLE_EQ(
          rep.value(static_cast<int>(r), std::string("cluster.bytes.") + suffix[c]),
          static_cast<double>(out.run_stats.ranks[r].bytes[c]))
          << "rank " << r << " category " << c;
    }
  }
  // The solver-layer counters fired too.
  EXPECT_GT(rep.total("solver2d.rows_completed"), 0.0);
  EXPECT_GT(rep.total("solver2d.cols_completed"), 0.0);
  EXPECT_GT(rep.total("solver2d.diag_solves"), 0.0);
  EXPECT_GT(rep.total("zreduce.exchanges"), 0.0);
  EXPECT_GT(rep.total("zbcast.exchanges"), 0.0);
}

TEST(MetricsDeterminism, ReportJsonIsByteIdenticalAcrossRuns) {
  const SolveSetup s;
  SolveConfig cfg = tiny_cfg();
  cfg.run.metrics = true;
  cfg.run.metrics_period = 1e-5;
  const DistSolveOutcome a = solve_system_3d(s.fs, s.b, cfg, test_machine());
  const DistSolveOutcome b = solve_system_3d(s.fs, s.b, cfg, test_machine());
  EXPECT_EQ(a.run_stats.metrics->to_json(), b.run_stats.metrics->to_json());
  EXPECT_EQ(a.run_stats.metrics->to_prometheus(),
            b.run_stats.metrics->to_prometheus());
}

TEST(MetricsDeterminism, SeriesLandsOnTheVirtualTimeGrid) {
  const SolveSetup s;
  SolveConfig cfg = tiny_cfg();
  cfg.run.metrics = true;
  cfg.run.metrics_period = 1e-5;
  const DistSolveOutcome out = solve_system_3d(s.fs, s.b, cfg, test_machine());
  const MetricsReport& rep = *out.run_stats.metrics;
  EXPECT_DOUBLE_EQ(rep.metrics_period, 1e-5);
  bool any = false;
  for (const auto& rank : rep.ranks) {
    double prev = 0.0;
    for (const auto& smp : rank.series) {
      any = true;
      EXPECT_GT(smp.vt, prev);
      // Every sample sits on the grid k * period exactly (the grid is a
      // pure function of the clean clock).
      const double k = smp.vt / rep.metrics_period;
      EXPECT_DOUBLE_EQ(k, std::floor(k + 0.5));
      prev = smp.vt;
    }
  }
  EXPECT_TRUE(any) << "no rank captured any series sample";
}

TEST(MetricsDeterminism, AllMetricsExceptSchedAreScheduleInvariant) {
  const SolveSetup s;
  auto strip_sched = [](const MetricsReport& rep) {
    std::vector<std::map<std::string, double>> out;
    for (const auto& rank : rep.ranks) {
      std::map<std::string, double> vals;
      for (const auto& [name, v] : rank.values) {
        if (name.rfind("sched.", 0) == 0) continue;  // the one variant family
        vals[name] = v;
      }
      out.push_back(std::move(vals));
    }
    return out;
  };
  SolveConfig cfg = tiny_cfg();
  cfg.run.metrics = true;
  const DistSolveOutcome fifo = solve_system_3d(s.fs, s.b, cfg, test_machine());
  const auto expect = strip_sched(*fifo.run_stats.metrics);
  for (const auto& pt : test::schedule_sweep(/*seeds_per_policy=*/1)) {
    SolveConfig c2 = cfg;
    c2.run = pt.opts;
    c2.run.metrics = true;
    const DistSolveOutcome out = solve_system_3d(s.fs, s.b, c2, test_machine());
    EXPECT_EQ(strip_sched(*out.run_stats.metrics), expect)
        << "metrics moved under schedule policy " << pt.name;
  }
}

// ---------------------------------------------------------------------------
// Post-mortem: flight recorder attaches to every failed run.
// ---------------------------------------------------------------------------

TEST(MetricsFlight, DeadlockAttachesNonEmptyFlightDump) {
  const Cluster::Result res = Cluster::try_run(
      2, test_machine(),
      [](Comm& c) {
        if (c.rank() == 0) c.send(1, /*tag=*/5, std::vector<Real>{1.0});
        if (c.rank() == 1) {
          c.recv(0, 5);
          c.recv(0, /*tag=*/9);  // never sent
        }
      },
      RunOptions{.deterministic = true});
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.fault.kind, FaultKind::kDeadlock);
  ASSERT_FALSE(res.fault.flight.empty());
  // The ring holds the last events of *both* ranks: rank 0's send and the
  // wait rank 1 is parked on (recorded before parking).
  bool saw_send = false, saw_wait = false;
  for (const std::string& line : res.fault.flight) {
    if (line.find("send(dst=1, tag=5") != std::string::npos) saw_send = true;
    if (line.find("recv-wait(src=0, tags[9,10)") != std::string::npos) saw_wait = true;
  }
  EXPECT_TRUE(saw_send) << "flight dump misses rank 0's send";
  EXPECT_TRUE(saw_wait) << "flight dump misses the parked receive";
}

TEST(MetricsFlight, SuccessfulRunReportsNoFault) {
  const Cluster::Result res = Cluster::try_run(
      2, test_machine(),
      [](Comm& c) {
        if (c.rank() == 0) c.send(1, 5, std::vector<Real>{1.0});
        if (c.rank() == 1) c.recv(0, 5);
      },
      RunOptions{.deterministic = true});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.fault.kind, FaultKind::kNone);
  EXPECT_TRUE(res.fault.flight.empty());
}

// ---------------------------------------------------------------------------
// GPU model: per-GPU registries behind GpuSolveConfig::metrics.
// ---------------------------------------------------------------------------

TEST(MetricsGpu, RegistriesPopulateAndLeaveTimesUntouched) {
  const SolveSetup s;
  GpuSolveConfig cfg;
  cfg.shape = {1, 1, 4};
  const GpuSolveTimes off = simulate_solve_3d_gpu(s.fs.lu, s.fs.tree, cfg, test_machine());
  EXPECT_EQ(off.metrics, nullptr);
  cfg.metrics = true;
  const GpuSolveTimes on = simulate_solve_3d_gpu(s.fs.lu, s.fs.tree, cfg, test_machine());
  ASSERT_NE(on.metrics, nullptr);
  // Metrics sit outside the modeled clock on the GPU path too.
  EXPECT_EQ(off.total, on.total);
  EXPECT_EQ(off.l_solve, on.l_solve);
  EXPECT_EQ(off.u_solve, on.u_solve);
  EXPECT_EQ(off.z_comm, on.z_comm);
  EXPECT_GT(on.metrics->total("gpu.tasks"), 0.0);
  EXPECT_GT(on.metrics->total("gpu.puts"), 0.0);
  EXPECT_GT(on.metrics->total("gpu.put_bytes.z"), 0.0);
}

}  // namespace
}  // namespace sptrsv
