/// \file test_degrade.cpp
/// \brief Graceful degradation (docs/ROBUSTNESS.md, graceful degradation):
/// elastic shrink-and-redistribute recovery when the spare pool runs dry.
///
/// The contract under test, in order of importance:
///  1. The acceptance scenario: a solve on 8 ranks with an empty spare pool
///     survives two staggered crashes under RunOptions::degrade, finishes on
///     6 ranks, and its solution, fingerprint, clean clocks, message counts
///     and clean trace export are bitwise identical to the fault-free run.
///     The same scenario without degrade still reports kSparesExhausted.
///  2. Every shrink/agree/redistribute/replay/overload cost rides the fault
///     ledger only (DegradationStats, recovery.degrade.* metrics, and
///     full-fidelity-only shrink/redistribute trace markers).
///  3. Terminal conditions: no surviving adopter surfaces kNoSurvivors; a
///     corrupt checkpoint image is rejected (RecoveryStats::image_rejects)
///     and escalates to replay-from-start instead of resurrecting bad state.
///  4. build_degrade_plan is a pure function of (model, world, dead set):
///     dedup, ring-adopter selection, buddy-image survival.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/sptrsv3d.hpp"
#include "factor/sptrsv_seq.hpp"
#include "runtime/checkpoint.hpp"
#include "sparse/paper_matrices.hpp"
#include "test_support.hpp"
#include "trace/trace.hpp"

namespace sptrsv {
namespace {

using test::bitwise_equal;
using test::message_counts_identical;
using test::random_rhs;
using test::test_machine;

constexpr RunOptions kDet{.deterministic = true, .seed = 0};
constexpr RunOptions kDegradeOpts{.deterministic = true, .seed = 0,
                                  .degrade = true};

/// Machine with an explicit crash schedule and an empty spare pool — the
/// regime where every crash verdict is terminal unless degrade is armed.
MachineModel dry_machine(std::vector<PerturbationModel::Crash> crashes,
                         int spares = 0) {
  MachineModel m = test_machine();
  m.perturb.crashes = std::move(crashes);
  m.recovery.spare_ranks = spares;
  return m;
}

// ---------------------------------------------------------------------------
// build_degrade_plan: pure, deterministic shrink arithmetic.
// ---------------------------------------------------------------------------

TEST(DegradePlan, RingAdopterAndBuddySurvival) {
  const RecoveryModel rm;
  const DegradePlan p = build_degrade_plan(rm, 8, {2});
  EXPECT_EQ(p.victim, 2);
  EXPECT_EQ(p.adopter, 3);  // next surviving rank on the ring
  EXPECT_EQ(p.survivors_after, 7);
  EXPECT_EQ(p.image_survives, 1);  // buddy 3 is alive
}

TEST(DegradePlan, DeadBuddyLosesTheImageAndAdopterSkipsDead) {
  const RecoveryModel rm;
  // 3 died earlier; now 2 dies. Its buddy (3) is dead -> no image, and the
  // adopter scan must skip 3 and land on 4.
  const DegradePlan p = build_degrade_plan(rm, 8, {3, 2});
  EXPECT_EQ(p.victim, 2);
  EXPECT_EQ(p.adopter, 4);
  EXPECT_EQ(p.survivors_after, 6);
  EXPECT_EQ(p.image_survives, 0);
}

TEST(DegradePlan, DedupsRepeatedDeadEntriesAndWrapsTheRing) {
  const RecoveryModel rm;
  const DegradePlan dup = build_degrade_plan(rm, 8, {2, 2});
  EXPECT_EQ(dup.survivors_after, 7);  // one death, listed twice
  const DegradePlan wrap = build_degrade_plan(rm, 4, {3});
  EXPECT_EQ(wrap.adopter, 0);  // ring wraps past the last rank
}

TEST(DegradePlan, NoSurvivorsYieldsNoAdopter) {
  const RecoveryModel rm;
  const DegradePlan p = build_degrade_plan(rm, 2, {0, 1});
  EXPECT_EQ(p.survivors_after, 0);
  EXPECT_EQ(p.adopter, -1);
}

TEST(DegradePlan, PureFunctionOfInputs) {
  const RecoveryModel rm;
  const DegradePlan a = build_degrade_plan(rm, 8, {1, 5});
  const DegradePlan b = build_degrade_plan(rm, 8, {1, 5});
  EXPECT_EQ(a.victim, b.victim);
  EXPECT_EQ(a.adopter, b.adopter);
  EXPECT_EQ(a.survivors_after, b.survivors_after);
  EXPECT_EQ(a.image_survives, b.image_survives);
}

// ---------------------------------------------------------------------------
// The acceptance scenario: 8 ranks, no spares, two staggered crashes.
// ---------------------------------------------------------------------------

TEST(GracefulDegradation, TwoCrashesShrinkToSixRanksBitwiseClean) {
  const CsrMatrix a =
      make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/3);
  const auto b = random_rhs(a.rows(), 1, 42);

  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.run = kDet;
  cfg.run.trace = true;
  const DistSolveOutcome clean = solve_system_3d(fs, b, cfg, test_machine());

  // Two staggered mid-solve deaths on non-buddy ranks (buddy_of(2)=3,
  // buddy_of(5)=6, all survivors), with an empty spare pool: both verdicts
  // are terminal, and degrade must shrink 8 -> 7 -> 6. Crash times sit
  // below every rank's finish time so each adopter's clock provably
  // crosses its overload event.
  double minvt = clean.run_stats.ranks[0].vtime;
  for (const auto& r : clean.run_stats.ranks) minvt = std::min(minvt, r.vtime);
  const double t2 = 0.3 * minvt;
  const double t5 = 0.6 * minvt;
  const MachineModel m = dry_machine({{2, t2}, {5, t5}});

  SolveConfig dcfg = cfg;
  dcfg.run = kDegradeOpts;
  dcfg.run.trace = true;
  dcfg.run.metrics = true;
  const DistSolveOutcome degraded = solve_system_3d(fs, b, dcfg, m);

  const DegradationStats deg = degraded.run_stats.degradation_stats();
  ASSERT_EQ(deg.degrades, 2);
  EXPECT_EQ(deg.ranks_lost, 2);  // finished on 6 of 8 ranks
  EXPECT_EQ(deg.partitions_adopted, 2);
  EXPECT_GT(deg.redistributed_bytes, 0);  // both buddy images survived
  EXPECT_GT(deg.agree_time, 0.0);
  EXPECT_GT(deg.shrink_time, 0.0);
  EXPECT_GT(deg.redistribute_time, 0.0);
  EXPECT_GT(deg.replay_time, 0.0);
  EXPECT_GT(deg.overload_time, 0.0);  // adopters host two partitions each
  EXPECT_EQ(degraded.run_stats.recovery_stats().crashes, 2);
  EXPECT_EQ(degraded.run_stats.recovery_stats().spares_used, 0);

  // Clean ledger: bitwise indistinguishable from the fault-free run.
  EXPECT_TRUE(bitwise_equal(degraded.x, clean.x));
  EXPECT_EQ(degraded.run_stats.fingerprint(), clean.run_stats.fingerprint());
  EXPECT_DOUBLE_EQ(degraded.run_stats.makespan(), clean.run_stats.makespan());
  EXPECT_TRUE(message_counts_identical(degraded.run_stats, clean.run_stats));
  for (size_t r = 0; r < clean.run_stats.ranks.size(); ++r) {
    EXPECT_TRUE(bitwise_equal({&degraded.run_stats.ranks[r].vtime, 1},
                              {&clean.run_stats.ranks[r].vtime, 1}));
    EXPECT_GE(degraded.run_stats.ranks[r].fault_vtime,
              degraded.run_stats.ranks[r].vtime);
  }
  EXPECT_GT(degraded.run_stats.fault_makespan(),
            degraded.run_stats.makespan());

  // Trace: the clean export is byte-identical; the full-fidelity export
  // carries the shrink/redistribute markers (kept off the clean export).
  ASSERT_NE(clean.run_stats.trace, nullptr);
  ASSERT_NE(degraded.run_stats.trace, nullptr);
  EXPECT_EQ(degraded.run_stats.trace->chrome_json(/*fault_ledger=*/false),
            clean.run_stats.trace->chrome_json(/*fault_ledger=*/false));
  const std::string full = degraded.run_stats.trace->chrome_json();
  EXPECT_NE(full.find("shrink"), std::string::npos);
  EXPECT_NE(full.find("redistribute"), std::string::npos);
  EXPECT_EQ(degraded.run_stats.trace->chrome_json(/*fault_ledger=*/false)
                .find("redistribute"),
            std::string::npos);

  // Metrics: the shrink ledger is mirrored into recovery.degrade.* series.
  ASSERT_NE(degraded.run_stats.metrics, nullptr);
  EXPECT_DOUBLE_EQ(degraded.run_stats.metrics->total("recovery.degrade.events"),
                   2.0);
  EXPECT_DOUBLE_EQ(
      degraded.run_stats.metrics->total("recovery.degrade.ranks_lost"), 2.0);
  EXPECT_DOUBLE_EQ(
      degraded.run_stats.metrics->total("recovery.degrade.adopted"), 2.0);
  EXPECT_GT(degraded.run_stats.metrics->total("recovery.degrade.bytes"), 0.0);

  // Replay determinism: the same schedule reproduces both ledgers.
  const DistSolveOutcome replay = solve_system_3d(fs, b, dcfg, m);
  EXPECT_TRUE(test::stats_identical(replay.run_stats, degraded.run_stats));
  EXPECT_EQ(replay.run_stats.fault_fingerprint(),
            degraded.run_stats.fault_fingerprint());
}

TEST(GracefulDegradation, SameScenarioWithoutDegradeStillSparesExhausted) {
  const CsrMatrix a =
      make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/3);
  const auto b = random_rhs(a.rows(), 1, 42);
  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.run = kDet;
  const DistSolveOutcome clean = solve_system_3d(fs, b, cfg, test_machine());
  double minvt = clean.run_stats.ranks[0].vtime;
  for (const auto& r : clean.run_stats.ranks) minvt = std::min(minvt, r.vtime);
  const MachineModel m = dry_machine({{2, 0.3 * minvt}, {5, 0.6 * minvt}});
  try {
    solve_system_3d(fs, b, cfg, m);
    FAIL() << "dry spare pool without degrade must be terminal";
  } catch (const FaultError& fe) {
    EXPECT_EQ(fe.report.kind, FaultKind::kSparesExhausted);
    EXPECT_EQ(fe.report.rank, 2);  // the first terminal crash
  }
}

// ---------------------------------------------------------------------------
// Degrade absorbs what the spare path cannot: buddy-pair loss.
// ---------------------------------------------------------------------------

TEST(GracefulDegradation, BuddyPairLossDegradesIntoReplayFromStart) {
  // Same schedule test_recovery pins as kBuddyLoss: ranks 1 and 2 die
  // inside one detection window, and 2 holds 1's checkpoint. With degrade,
  // rank 1's partition is re-solved from scratch (no image) and rank 2's
  // from its surviving image; the run completes on 2 of 4 ranks.
  const MachineModel m = dry_machine({{1, 1e-4}, {2, 1.2e-4}},
                                     /*spares=*/0);
  const auto clean = Cluster::run(
      4, test_machine(), [](Comm& c) { c.advance(1e-3, TimeCategory::kFp); },
      kDet);
  const auto r = Cluster::run(
      4, m, [](Comm& c) { c.advance(1e-3, TimeCategory::kFp); }, kDegradeOpts);
  const DegradationStats deg = r.degradation_stats();
  EXPECT_EQ(deg.degrades, 2);
  EXPECT_EQ(deg.ranks_lost, 2);
  // No checkpoint hooks registered here, so every replay is from scratch.
  EXPECT_EQ(deg.redistributed_bytes, 0);
  EXPECT_GT(deg.replay_time, 0.0);
  EXPECT_EQ(r.fingerprint(), clean.fingerprint());
  EXPECT_GT(r.fault_makespan(), r.makespan());
}

TEST(GracefulDegradation, NoSurvivorsIsTerminalWithPreciseReport) {
  // A single self-buddied rank dying leaves nobody to adopt its partition:
  // even degrade mode must refuse, with its own structured verdict.
  const auto r = Cluster::try_run(
      1, dry_machine({{0, 1e-5}}),
      [](Comm& c) { c.advance(1e-3, TimeCategory::kFp); }, kDegradeOpts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.fault.kind, FaultKind::kNoSurvivors);
  EXPECT_EQ(r.fault.rank, 0);
  EXPECT_DOUBLE_EQ(r.fault.vt, 1e-5);
}

// ---------------------------------------------------------------------------
// Checkpoint-image integrity: corrupt images are rejected, not restored.
// ---------------------------------------------------------------------------

TEST(ImageIntegrity, CorruptImageIsRejectedOnSpareRestore) {
  auto scenario = [](const MachineModel& m) {
    return Cluster::run(2, m, [](Comm& c) {
      std::vector<Real> state{1.0, 2.0, 3.0};
      const CheckpointScope scope = c.register_checkpoint(
          "t", [&] { return state; }, [](const CheckpointImage&) {});
      c.advance(1e-6, TimeCategory::kFp);
      c.checkpoint_epoch();
      c.advance(1e-4, TimeCategory::kFp);  // rank 0's crash fires in here
      c.barrier();
    }, kDet);
  };
  MachineModel intact = test_machine();
  intact.perturb.crashes = {{0, 5e-5}};
  const auto good = scenario(intact);
  EXPECT_EQ(good.recovery_stats().image_rejects, 0);
  EXPECT_EQ(good.recovery_stats().restores, 1);

  MachineModel corrupt = intact;
  corrupt.perturb.ckpt_faults = {{0, 0}};  // flip a bit in rank 0's epoch 0
  const auto bad = scenario(corrupt);
  EXPECT_EQ(bad.recovery_stats().image_rejects, 1);
  EXPECT_EQ(bad.recovery_stats().restores, 0);  // escalated: no hook restore
  EXPECT_EQ(bad.recovery_stats().crashes, 1);
  // The escalation changes fault accounting only — the clean ledger and the
  // run's outcome are untouched.
  EXPECT_EQ(bad.fingerprint(), good.fingerprint());
  EXPECT_NE(bad.fault_fingerprint(), good.fault_fingerprint());
}

TEST(ImageIntegrity, CorruptImageEscalatesDegradeToReplayFromStart) {
  const CsrMatrix a =
      make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/3);
  const auto b = random_rhs(a.rows(), 1, 42);
  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.run = kDet;
  const DistSolveOutcome clean = solve_system_3d(fs, b, cfg, test_machine());

  MachineModel m = dry_machine({{2, 0.6 * clean.run_stats.ranks[2].vtime}});
  // Poison every image rank 2 could have captured: the degrade fetch must
  // reject whichever epoch is latest and re-solve the partition from
  // scratch instead of resurrecting corrupt state.
  for (std::int64_t e = 0; e < 64; ++e) m.perturb.ckpt_faults.push_back({2, e});

  SolveConfig dcfg = cfg;
  dcfg.run = kDegradeOpts;
  const DistSolveOutcome degraded = solve_system_3d(fs, b, dcfg, m);
  const DegradationStats deg = degraded.run_stats.degradation_stats();
  ASSERT_EQ(deg.degrades, 1);
  EXPECT_EQ(deg.redistributed_bytes, 0);  // no usable image
  EXPECT_GT(deg.replay_time, 0.0);
  EXPECT_GE(degraded.run_stats.recovery_stats().image_rejects, 1);
  EXPECT_TRUE(bitwise_equal(degraded.x, clean.x));
  EXPECT_EQ(degraded.run_stats.fingerprint(), clean.run_stats.fingerprint());
}

// ---------------------------------------------------------------------------
// Arming degrade without terminal crashes changes nothing at all.
// ---------------------------------------------------------------------------

TEST(GracefulDegradation, ArmedWithoutTerminalCrashesIsInert) {
  const CsrMatrix a =
      make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/3);
  const auto b = random_rhs(a.rows(), 1, 42);
  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.run = kDet;
  const DistSolveOutcome clean = solve_system_3d(fs, b, cfg, test_machine());

  // Spares available: the crash takes the ordinary spare-adoption path and
  // the armed degrade machinery must not fire or shift a single fault draw.
  MachineModel m = test_machine();
  m.perturb.crashes = {{2, 0.5 * clean.run_stats.ranks[2].vtime}};
  SolveConfig scfg = cfg;
  const DistSolveOutcome spared = solve_system_3d(fs, b, scfg, m);
  SolveConfig dcfg = cfg;
  dcfg.run = kDegradeOpts;
  const DistSolveOutcome armed = solve_system_3d(fs, b, dcfg, m);

  EXPECT_FALSE(armed.run_stats.degradation_stats().any());
  EXPECT_EQ(armed.run_stats.recovery_stats().spares_used, 1);
  EXPECT_TRUE(test::stats_identical(armed.run_stats, spared.run_stats));
  EXPECT_EQ(armed.run_stats.fault_fingerprint(),
            spared.run_stats.fault_fingerprint());
}

}  // namespace
}  // namespace sptrsv
