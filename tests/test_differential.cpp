#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/sptrsv3d.hpp"
#include "factor/sptrsv_seq.hpp"
#include "gpusim/gpu_sptrsv.hpp"
#include "sparse/generators.hpp"
#include "test_support.hpp"

namespace sptrsv {
namespace {

/// Differential solver oracle (docs/TESTING.md): the same random system is
/// pushed through every solver path — sequential, message-driven 2D,
/// 3D proposed, 3D baseline — and the answers are cross-checked in ULPs,
/// not with a flat absolute tolerance. Paths consuming the *same*
/// factorization perform the same eliminations up to summation order, so
/// they must agree to a handful of ULPs; any looser disagreement is a
/// dropped update or a misrouted partial sum, exactly the bug class a
/// residual check hides. The whole oracle is then repeated under delivery
/// faults and a crash-recovery schedule, where every distributed path must
/// reproduce its clean answer bit-for-bit (the two-ledger contract).

/// Same-factorization paths differ only in the order partial sums are
/// folded (the inter-grid reduction); observed disagreement on the corpus
/// tops out near 3e4 ULP (cancellation-heavy entries), bounded here with
/// ~4x headroom. 2^17 ULP is still ~3e-11 relative — a dropped update or
/// misrouted partial sum shows up as 1e+15 ULP or worse.
constexpr std::uint64_t kSameFactorUlp = std::uint64_t{1} << 17;

class DifferentialOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialOracle, AllSolverPathsAgree) {
  const test::RandomSystem s = test::random_system(GetParam());
  SCOPED_TRACE(s.name);
  const Idx n = s.a.rows();
  const std::vector<Real> b = test::random_rhs(n, s.nrhs, GetParam() ^ 0xD1FF);

  // Oracle path: sequential supernodal solve of the shared factorization.
  const std::vector<Real> ref = solve_system_seq(s.fs, b, s.nrhs);
  EXPECT_LT(relative_residual(s.a, ref, b, s.nrhs), 1e-9);

  // 3D proposed and baseline consume the same factor as the oracle.
  SolveConfig cfg;
  cfg.shape = s.shape;
  cfg.nrhs = s.nrhs;
  cfg.run = RunOptions{.deterministic = true, .seed = GetParam()};
  cfg.algorithm = Algorithm3d::kProposed;
  const DistSolveOutcome proposed = solve_system_3d(s.fs, b, cfg, test::test_machine());
  cfg.algorithm = Algorithm3d::kBaseline;
  const DistSolveOutcome baseline = solve_system_3d(s.fs, b, cfg, test::test_machine());

  EXPECT_LE(test::max_ulp_distance(proposed.x, ref), kSameFactorUlp);
  EXPECT_LE(test::max_ulp_distance(baseline.x, ref), kSameFactorUlp);
  EXPECT_LE(test::max_ulp_distance(proposed.x, baseline.x), kSameFactorUlp);

  // Message-driven 2D path on its own whole-matrix factorization (the 2D
  // solvers address the matrix as one node), checked against the
  // sequential solve of *that* factor — same-factor tightness again.
  const FactoredSystem fs0 = analyze_and_factor(s.a, 0);
  const std::vector<Real> ref0 = solve_system_seq(fs0, b, s.nrhs);
  const test::Dist2dOutcome d2 = test::solve_system_2d(
      fs0, {2, 2}, b, s.nrhs, test::test_machine(),
      RunOptions{.deterministic = true, .seed = GetParam()});
  EXPECT_LE(test::max_ulp_distance(d2.x, ref0), kSameFactorUlp);

  // Cross-factorization agreement (different elimination orders, so the
  // bound is the conditioning of the system, not summation order).
  EXPECT_LT(test::max_abs_diff(ref0, ref), 1e-8);
}

/// The oracle under a lossy network: the reliable transport must hand every
/// distributed path its clean answer bit-for-bit, so the clean-run ULP
/// agreement carries over unchanged.
TEST_P(DifferentialOracle, FaultyRunsReproduceCleanAnswers) {
  const test::RandomSystem s = test::random_system(GetParam());
  SCOPED_TRACE(s.name);
  const std::vector<Real> b = test::random_rhs(s.a.rows(), s.nrhs, GetParam() ^ 0xFA17);

  SolveConfig cfg;
  cfg.shape = s.shape;
  cfg.nrhs = s.nrhs;
  cfg.run = RunOptions{.deterministic = true, .seed = GetParam()};
  for (const Algorithm3d alg : {Algorithm3d::kProposed, Algorithm3d::kBaseline}) {
    cfg.algorithm = alg;
    const DistSolveOutcome clean = solve_system_3d(s.fs, b, cfg, test::test_machine());
    const DistSolveOutcome faulty = solve_system_3d(s.fs, b, cfg, test::faulty_machine());
    EXPECT_TRUE(test::bitwise_equal(clean.x, faulty.x));
    EXPECT_EQ(clean.run_stats.fingerprint(), faulty.run_stats.fingerprint());
  }
}

/// The oracle under a crash: a mid-solve rank failure with buddy-checkpoint
/// recovery must also hand back the clean bits, with the recovery cost on
/// the fault ledger only.
TEST_P(DifferentialOracle, CrashingRunsReproduceCleanAnswers) {
  const test::RandomSystem s = test::random_system(GetParam());
  const int nranks = s.shape.px * s.shape.py * s.shape.pz;
  if (nranks < 2) GTEST_SKIP() << "single-rank layout has no rank to crash";
  SCOPED_TRACE(s.name);
  const std::vector<Real> b = test::random_rhs(s.a.rows(), s.nrhs, GetParam() ^ 0xC4A5);

  SolveConfig cfg;
  cfg.shape = s.shape;
  cfg.nrhs = s.nrhs;
  cfg.algorithm = Algorithm3d::kProposed;
  cfg.run = RunOptions{.deterministic = true, .seed = GetParam()};
  const DistSolveOutcome clean = solve_system_3d(s.fs, b, cfg, test::test_machine());

  MachineModel m = test::test_machine();
  const int victim = 1 + static_cast<int>(GetParam() % static_cast<std::uint64_t>(nranks - 1));
  m.perturb.crashes.push_back(
      {victim, 0.5 * clean.run_stats.ranks[static_cast<std::size_t>(victim)].vtime});
  const DistSolveOutcome crashed = solve_system_3d(s.fs, b, cfg, m);

  EXPECT_TRUE(test::bitwise_equal(clean.x, crashed.x));
  EXPECT_EQ(clean.run_stats.fingerprint(), crashed.run_stats.fingerprint());
  EXPECT_GE(crashed.run_stats.recovery_stats().crashes, 1);
  EXPECT_GT(crashed.run_stats.fault_makespan(), crashed.run_stats.makespan());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialOracle,
                         ::testing::Range<std::uint64_t>(0, 10),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

/// The GPU discrete-event model carries no solution vector, so its
/// differential check is determinism and sanity of the timing surface:
/// bit-identical timings across repeated runs, positive phase times, and
/// the CPU backend agreeing with itself.
TEST(DifferentialGpu, TimingModelIsDeterministicAndPositive) {
  const FactoredSystem fs = analyze_and_factor(
      make_grid2d(24, 24, Stencil2d::kNinePoint, {.seed = 3}), 3);
  for (const GpuBackend backend : {GpuBackend::kGpu, GpuBackend::kCpu}) {
    for (const auto& [px, pz] : {std::pair{1, 4}, std::pair{2, 2}}) {
      GpuSolveConfig cfg;
      cfg.shape = {px, 1, pz};
      cfg.backend = backend;
      cfg.nrhs = 2;
      const GpuSolveTimes a = simulate_solve_3d_gpu(fs.lu, fs.tree, cfg,
                                                    MachineModel::perlmutter());
      const GpuSolveTimes second = simulate_solve_3d_gpu(fs.lu, fs.tree, cfg,
                                                         MachineModel::perlmutter());
      const auto tag = ::testing::Message()
                       << "backend " << (backend == GpuBackend::kGpu ? "gpu" : "cpu")
                       << " shape " << px << "x1x" << pz;
      EXPECT_GT(a.l_solve, 0.0) << tag;
      EXPECT_GT(a.u_solve, 0.0) << tag;
      EXPECT_GE(a.z_comm, 0.0) << tag;
      EXPECT_GE(a.total, a.l_solve + a.u_solve) << tag;
      EXPECT_EQ(std::memcmp(&a.l_solve, &second.l_solve, sizeof a.l_solve), 0) << tag;
      EXPECT_EQ(std::memcmp(&a.z_comm, &second.z_comm, sizeof a.z_comm), 0) << tag;
      EXPECT_EQ(std::memcmp(&a.u_solve, &second.u_solve, sizeof a.u_solve), 0) << tag;
      EXPECT_EQ(std::memcmp(&a.total, &second.total, sizeof a.total), 0) << tag;
      ASSERT_EQ(a.l_finish.size(), second.l_finish.size()) << tag;
      EXPECT_TRUE(test::bitwise_equal(a.l_finish, second.l_finish)) << tag;
      EXPECT_TRUE(test::bitwise_equal(a.u_finish, second.u_finish)) << tag;
    }
  }
}

}  // namespace
}  // namespace sptrsv
