/// \file test_elastic.cpp
/// \brief Elastic re-expansion and straggler resilience
/// (docs/ROBUSTNESS.md, elasticity lifecycle): spare-return events grow a
/// degraded world back, load-aware rebalancing bounds the post-shrink
/// overload, and the progress-watermark watchdog classifies stragglers.
///
/// The contract under test, in order of importance:
///  1. The acceptance scenario: a solve on 8 ranks shrinks to 7 under
///     RunOptions::degrade, a spare-return event re-expands it to 8
///     mid-solve, and the solution, fingerprint, clean clocks, message
///     counts and clean trace export are bitwise identical to the
///     fault-free run. Every re-agree/expand/transfer/replay cost rides the
///     fault ledger only (ElasticityStats, recovery.elastic.* metrics,
///     full-fidelity-only expand/transfer trace markers).
///  2. Load-aware degradation (RecoveryModel::rebalance_fanout) splits a
///     victim's hosted set across the least-loaded survivors, bounding the
///     worst overload multiplier below whole-set ring adoption on the same
///     crash schedule — with the clean ledger still bitwise invariant.
///  3. The straggler watchdog fires on rank-stall schedules (diagnostic
///     FaultKind::kStraggler, never terminal), never on clean runs, and
///     under RunOptions::rebalance charges a mitigation repartition to the
///     fault clock.
///  4. Armed-but-inert repair schedules (repair_mtbf set, no terminal
///     crashes) are bitwise invisible on BOTH ledgers.
///  5. build_repair_plan / load-aware build_degrade_plan are pure functions
///     of their inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "core/sptrsv3d.hpp"
#include "factor/sptrsv_seq.hpp"
#include "runtime/checkpoint.hpp"
#include "sparse/paper_matrices.hpp"
#include "test_support.hpp"
#include "trace/trace.hpp"

namespace sptrsv {
namespace {

using test::bitwise_equal;
using test::message_counts_identical;
using test::random_rhs;
using test::test_machine;

constexpr RunOptions kDet{.deterministic = true, .seed = 0};
constexpr RunOptions kDegradeOpts{.deterministic = true, .seed = 0,
                                  .degrade = true};

/// Machine with an explicit crash schedule and an empty spare pool — every
/// crash verdict is terminal unless degrade absorbs it.
MachineModel dry_machine(std::vector<PerturbationModel::Crash> crashes,
                         int spares = 0) {
  MachineModel m = test_machine();
  m.perturb.crashes = std::move(crashes);
  m.recovery.spare_ranks = spares;
  return m;
}

// ---------------------------------------------------------------------------
// build_repair_plan: pure, seeded spare-return arithmetic.
// ---------------------------------------------------------------------------

TEST(RepairPlan, ExplicitReturnsAreValidatedAndSortedPerRank) {
  PerturbationModel pm;
  pm.returns = {{2, 3e-4}, {2, 1e-4}, {-1, 1e-5}, {9, 1e-5}, {0, 2e-4}};
  const auto plan = build_repair_plan(pm, /*seed=*/0, /*nranks=*/4);
  ASSERT_EQ(plan.size(), 4u);
  ASSERT_EQ(plan[2].size(), 2u);  // out-of-range ranks dropped
  EXPECT_DOUBLE_EQ(plan[2][0], 1e-4);  // sorted ascending
  EXPECT_DOUBLE_EQ(plan[2][1], 3e-4);
  ASSERT_EQ(plan[0].size(), 1u);
  EXPECT_TRUE(plan[1].empty());
  EXPECT_TRUE(plan[3].empty());
}

TEST(RepairPlan, PoissonDrawsArePureFunctionsOfSeedAndRank) {
  PerturbationModel pm;
  pm.repair_mtbf = 1e-3;
  pm.repair_max_per_rank = 3;
  const auto a = build_repair_plan(pm, 7, 4);
  const auto b = build_repair_plan(pm, 7, 4);
  ASSERT_EQ(a.size(), b.size());
  for (size_t r = 0; r < a.size(); ++r) {
    ASSERT_EQ(a[r].size(), 3u);
    EXPECT_TRUE(bitwise_equal(a[r], b[r])) << "rank " << r;
    EXPECT_TRUE(std::is_sorted(a[r].begin(), a[r].end()));
    for (const double t : a[r]) EXPECT_GT(t, 0.0);
  }
  const auto c = build_repair_plan(pm, 8, 4);
  bool any_differs = false;
  for (size_t r = 0; r < a.size(); ++r) any_differs |= !bitwise_equal(a[r], c[r]);
  EXPECT_TRUE(any_differs) << "different seeds must draw different repairs";
}

TEST(RepairPlan, DisarmedModelYieldsEmptyPlan) {
  const auto plan = build_repair_plan(PerturbationModel{}, 0, 4);
  for (const auto& v : plan) EXPECT_TRUE(v.empty());
}

// ---------------------------------------------------------------------------
// Load-aware build_degrade_plan: LPT split across least-loaded survivors.
// ---------------------------------------------------------------------------

TEST(LoadAwarePlan, FanoutZeroKeepsClassicRingAndNoMoves) {
  const RecoveryModel rm;
  const DegradePlan p = build_degrade_plan(rm, 8, {2});
  EXPECT_EQ(p.adopter, 3);
  EXPECT_TRUE(p.moved_partitions.empty());
  EXPECT_TRUE(p.adopters.empty());
}

TEST(LoadAwarePlan, UniformWorkGoesToLeastLoadedLowestRank) {
  RecoveryModel rm;
  rm.rebalance_fanout = 2;
  const DegradePlan p = build_degrade_plan(rm, 8, {2});
  ASSERT_EQ(p.moved_partitions.size(), 1u);
  EXPECT_EQ(p.moved_partitions[0], 2);
  EXPECT_EQ(p.adopters[0], 0);  // all loads equal: lowest alive rank wins
  EXPECT_EQ(p.adopter, 0);      // headline adopter follows the victim's own
}

TEST(LoadAwarePlan, ChainedDeathsSplitAcrossTheFanout) {
  RecoveryModel rm;
  rm.rebalance_fanout = 2;
  // Rank 2 died earlier and its partition moved to 3; now 3 dies hosting
  // both. The two partitions must split across the two least-loaded
  // survivors instead of piling onto one adopter.
  const std::vector<int> host = {0, 1, 3, 3, 4, 5, 6, 7};
  const DegradePlan p = build_degrade_plan(rm, 8, {2, 3}, host);
  ASSERT_EQ(p.moved_partitions.size(), 2u);
  EXPECT_EQ(p.adopters[0], 0);
  EXPECT_EQ(p.adopters[1], 1);
}

TEST(LoadAwarePlan, WorkEstimatesSteerTheAssignment) {
  RecoveryModel rm;
  rm.rebalance_fanout = 1;
  rm.rank_work = {1.0, 1.0, 1.0, 1.0, 1.0, 0.125, 1.0, 1.0};
  const DegradePlan p = build_degrade_plan(rm, 8, {2});
  ASSERT_EQ(p.moved_partitions.size(), 1u);
  EXPECT_EQ(p.adopters[0], 5);  // the lightest survivor, not the ring next
}

TEST(LoadAwarePlan, PureFunctionOfInputs) {
  RecoveryModel rm;
  rm.rebalance_fanout = 3;
  rm.rank_work = {2.0, 1.0, 4.0, 1.0, 1.0, 1.0, 3.0, 1.0};
  const std::vector<int> host = {0, 1, 2, 2, 4, 5, 6, 7};
  const DegradePlan a = build_degrade_plan(rm, 8, {5, 2}, host);
  const DegradePlan b = build_degrade_plan(rm, 8, {5, 2}, host);
  EXPECT_EQ(a.moved_partitions, b.moved_partitions);
  EXPECT_EQ(a.adopters, b.adopters);
  EXPECT_EQ(a.adopter, b.adopter);
}

// ---------------------------------------------------------------------------
// The acceptance scenario: shrink to 7 ranks, re-expand to 8 mid-solve.
// ---------------------------------------------------------------------------

TEST(ElasticReExpansion, SpareReturnRegrowsTheWorldBitwiseClean) {
  const CsrMatrix a =
      make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/3);
  const auto b = random_rhs(a.rows(), 1, 42);

  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.run = kDet;
  cfg.run.trace = true;
  const DistSolveOutcome clean = solve_system_3d(fs, b, cfg, test_machine());

  // Rank 2 dies at 30% of the shortest clean finish (empty spare pool, so
  // degrade shrinks 8 -> 7); its repaired node returns at 60%, well inside
  // the solve, so the world re-expands to 8 and the adopted partition's
  // image travels back.
  double minvt = clean.run_stats.ranks[0].vtime;
  for (const auto& r : clean.run_stats.ranks) minvt = std::min(minvt, r.vtime);
  MachineModel m = dry_machine({{2, 0.3 * minvt}});
  m.perturb.returns = {{2, 0.6 * minvt}};

  SolveConfig ecfg = cfg;
  ecfg.run = kDegradeOpts;
  ecfg.run.trace = true;
  ecfg.run.metrics = true;
  const DistSolveOutcome elastic = solve_system_3d(fs, b, ecfg, m);

  const ElasticityStats el = elastic.run_stats.elasticity_stats();
  ASSERT_EQ(el.returns, 1);
  EXPECT_EQ(el.expansions, 1);
  EXPECT_EQ(el.transfers, 1);  // the partition's checkpoint image came back
  EXPECT_GT(el.transfer_bytes, 0);
  EXPECT_GT(el.agree_time, 0.0);
  EXPECT_GT(el.expand_time, 0.0);
  EXPECT_GT(el.transfer_time, 0.0);
  EXPECT_GT(el.replay_time, 0.0);
  EXPECT_EQ(el.stragglers, 0);  // no stall schedule: watchdog stays silent
  const DegradationStats deg = elastic.run_stats.degradation_stats();
  EXPECT_EQ(deg.degrades, 1);
  EXPECT_DOUBLE_EQ(deg.overload_mult, 2.0);  // adopter peaked at 2 partitions

  // Clean ledger: bitwise indistinguishable from the fault-free run at
  // restored parallelism.
  EXPECT_TRUE(bitwise_equal(elastic.x, clean.x));
  EXPECT_EQ(elastic.run_stats.fingerprint(), clean.run_stats.fingerprint());
  EXPECT_DOUBLE_EQ(elastic.run_stats.makespan(), clean.run_stats.makespan());
  EXPECT_TRUE(message_counts_identical(elastic.run_stats, clean.run_stats));
  for (size_t r = 0; r < clean.run_stats.ranks.size(); ++r) {
    EXPECT_TRUE(bitwise_equal({&elastic.run_stats.ranks[r].vtime, 1},
                              {&clean.run_stats.ranks[r].vtime, 1}));
    EXPECT_GE(elastic.run_stats.ranks[r].fault_vtime,
              elastic.run_stats.ranks[r].vtime);
  }
  EXPECT_GT(elastic.run_stats.fault_makespan(), elastic.run_stats.makespan());

  // Trace: the clean export is byte-identical; only the full-fidelity
  // export carries the expand/transfer markers.
  ASSERT_NE(clean.run_stats.trace, nullptr);
  ASSERT_NE(elastic.run_stats.trace, nullptr);
  EXPECT_EQ(elastic.run_stats.trace->chrome_json(/*fault_ledger=*/false),
            clean.run_stats.trace->chrome_json(/*fault_ledger=*/false));
  const std::string full = elastic.run_stats.trace->chrome_json();
  EXPECT_NE(full.find("expand"), std::string::npos);
  EXPECT_NE(full.find("transfer"), std::string::npos);
  EXPECT_EQ(elastic.run_stats.trace->chrome_json(/*fault_ledger=*/false)
                .find("expand"),
            std::string::npos);

  // Metrics: the re-expansion ledger is mirrored into recovery.elastic.*.
  ASSERT_NE(elastic.run_stats.metrics, nullptr);
  EXPECT_DOUBLE_EQ(elastic.run_stats.metrics->total("recovery.elastic.returns"),
                   1.0);
  EXPECT_DOUBLE_EQ(
      elastic.run_stats.metrics->total("recovery.elastic.expansions"), 1.0);
  EXPECT_GT(elastic.run_stats.metrics->total("recovery.elastic.bytes"), 0.0);
  // The overload gauge is live (not peak): after re-expansion every rank
  // is back to x1, while the stats field above kept the x2 peak.
  EXPECT_DOUBLE_EQ(
      elastic.run_stats.metrics->max("recovery.degrade.overload"), 1.0);

  // Replay determinism: the same schedule reproduces both ledgers.
  const DistSolveOutcome replay = solve_system_3d(fs, b, ecfg, m);
  EXPECT_TRUE(test::stats_identical(replay.run_stats, elastic.run_stats));
  EXPECT_EQ(replay.run_stats.fault_fingerprint(),
            elastic.run_stats.fault_fingerprint());
}

TEST(ElasticReExpansion, ReturnBeforeAnyDegradeIsInert) {
  const CsrMatrix a =
      make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/3);
  const auto b = random_rhs(a.rows(), 1, 42);
  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.run = kDet;
  const DistSolveOutcome clean = solve_system_3d(fs, b, cfg, test_machine());
  // The return fires before the crash: the rank is alive, so the event must
  // be dropped from the plan entirely, leaving the later degrade unchanged.
  double minvt = clean.run_stats.ranks[0].vtime;
  for (const auto& r : clean.run_stats.ranks) minvt = std::min(minvt, r.vtime);
  MachineModel with_ret = dry_machine({{2, 0.5 * minvt}});
  with_ret.perturb.returns = {{2, 0.1 * minvt}};
  const MachineModel without_ret = dry_machine({{2, 0.5 * minvt}});
  SolveConfig dcfg = cfg;
  dcfg.run = kDegradeOpts;
  const DistSolveOutcome x = solve_system_3d(fs, b, dcfg, with_ret);
  const DistSolveOutcome y = solve_system_3d(fs, b, dcfg, without_ret);
  EXPECT_FALSE(x.run_stats.elasticity_stats().any());
  EXPECT_TRUE(test::stats_identical(x.run_stats, y.run_stats));
  EXPECT_EQ(x.run_stats.fault_fingerprint(), y.run_stats.fault_fingerprint());
}

TEST(ElasticReExpansion, CorruptImageEscalatesToReplayFromStart) {
  auto scenario = [](bool poison) {
    MachineModel m = dry_machine({{1, 5e-5}});
    m.perturb.returns = {{1, 4e-4}};
    if (poison) {
      for (std::int64_t e = 0; e < 64; ++e) {
        m.perturb.ckpt_faults.push_back({1, e});
      }
    }
    return Cluster::run(4, m, [](Comm& c) {
      std::vector<Real> state{1.0, 2.0, 3.0};
      const CheckpointScope scope = c.register_checkpoint(
          "t", [&] { return state; }, [](const CheckpointImage&) {});
      for (int e = 0; e < 8; ++e) {
        c.advance(1e-4, TimeCategory::kFp);
        c.checkpoint_epoch(e);
      }
      c.barrier();
    }, kDegradeOpts);
  };
  const auto good = scenario(false);
  ASSERT_EQ(good.elasticity_stats().returns, 1);
  EXPECT_EQ(good.elasticity_stats().transfers, 1);
  const auto bad = scenario(true);
  ASSERT_EQ(bad.elasticity_stats().returns, 1);
  EXPECT_EQ(bad.elasticity_stats().transfers, 0);  // image rejected
  EXPECT_GE(bad.recovery_stats().image_rejects, 1);
  EXPECT_GT(bad.elasticity_stats().replay_time,
            good.elasticity_stats().replay_time);
  EXPECT_EQ(bad.fingerprint(), good.fingerprint());
  EXPECT_NE(bad.fault_fingerprint(), good.fault_fingerprint());
}

TEST(ElasticReExpansion, NoSurvivorsStaysTerminalEvenWithRepairArmed) {
  MachineModel m = dry_machine({{0, 1e-5}});
  m.perturb.returns = {{0, 5e-5}};  // too late: the world already died
  const auto r = Cluster::try_run(
      1, m, [](Comm& c) { c.advance(1e-3, TimeCategory::kFp); }, kDegradeOpts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.fault.kind, FaultKind::kNoSurvivors);
}

// ---------------------------------------------------------------------------
// Load-aware rebalancing bounds the overload multiplier.
// ---------------------------------------------------------------------------

TEST(LoadAwareRebalance, FanoutBoundsOverloadBelowRingAdoption) {
  // Two chained deaths, no spares. Classic ring adoption piles three
  // partitions onto one survivor (x3); a fanout of 2 splits them across
  // the two least-loaded survivors (x2 worst case) on the same schedule.
  auto run_with = [](int fanout) {
    MachineModel m = dry_machine({{2, 1e-4}, {3, 3e-4}});
    m.recovery.rebalance_fanout = fanout;
    return Cluster::run(
        8, m, [](Comm& c) { c.advance(1e-3, TimeCategory::kFp); }, kDegradeOpts);
  };
  const auto classic = run_with(0);
  const auto split = run_with(2);
  EXPECT_DOUBLE_EQ(classic.degradation_stats().overload_mult, 3.0);
  EXPECT_DOUBLE_EQ(split.degradation_stats().overload_mult, 2.0);
  EXPECT_LT(split.degradation_stats().overload_mult,
            classic.degradation_stats().overload_mult);
  EXPECT_EQ(classic.degradation_stats().degrades,
            split.degradation_stats().degrades);
  // The split is a fault-ledger policy: the clean ledger cannot see it.
  EXPECT_EQ(classic.fingerprint(), split.fingerprint());
}

TEST(LoadAwareRebalance, SolverPopulatesWorkEstimatesAndStaysBitwiseClean) {
  const CsrMatrix a =
      make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/3);
  const auto b = random_rhs(a.rows(), 1, 42);
  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.run = kDet;
  const DistSolveOutcome clean = solve_system_3d(fs, b, cfg, test_machine());
  double minvt = clean.run_stats.ranks[0].vtime;
  for (const auto& r : clean.run_stats.ranks) minvt = std::min(minvt, r.vtime);

  MachineModel m = dry_machine({{2, 0.4 * minvt}});
  m.recovery.rebalance_fanout = 2;  // rank_work auto-derived from the plans
  SolveConfig dcfg = cfg;
  dcfg.run = kDegradeOpts;
  const DistSolveOutcome split = solve_system_3d(fs, b, dcfg, m);
  EXPECT_EQ(split.run_stats.degradation_stats().degrades, 1);
  EXPECT_GT(split.run_stats.degradation_stats().overload_mult, 1.0);
  EXPECT_TRUE(bitwise_equal(split.x, clean.x));
  EXPECT_EQ(split.run_stats.fingerprint(), clean.run_stats.fingerprint());
  EXPECT_TRUE(message_counts_identical(split.run_stats, clean.run_stats));
}

// ---------------------------------------------------------------------------
// Straggler watchdog: classification on stalls, silence on clean runs.
// ---------------------------------------------------------------------------

/// Ring workload with per-round checkpoint epochs — the epochs are where
/// the progress watermark is evaluated.
void ring_rounds(Comm& c) {
  const int next = (c.rank() + 1) % c.size();
  const int prev = (c.rank() + c.size() - 1) % c.size();
  for (int e = 0; e < 6; ++e) {
    c.send(next, /*tag=*/100 + e, std::vector<Real>{1.0});
    c.recv(prev, 100 + e);
    c.advance(1e-5, TimeCategory::kFp);
    c.checkpoint_epoch(e);
  }
  c.barrier();
}

MachineModel stall_machine(double lag_threshold) {
  MachineModel m = test_machine();
  // A transient outage of rank 1 early in the run: frames to/from it are
  // lost until vt_end, so its neighbours' retransmits land ~1e-4 of lag on
  // the fault clock while the clean clock never moves.
  m.perturb.stalls.push_back({/*rank=*/1, /*vt_begin=*/0.0, /*vt_end=*/1e-4,
                              /*flight_factor=*/1.0, /*permanent=*/true});
  m.recovery.straggler_lag = lag_threshold;
  return m;
}

TEST(StragglerWatchdog, FiresOnStallSchedulesNeverOnCleanRuns) {
  const auto clean = Cluster::run(4, test_machine(), ring_rounds, kDet);
  EXPECT_EQ(clean.elasticity_stats().stragglers, 0);

  const auto stalled = Cluster::run(4, stall_machine(1e-6), ring_rounds, kDet);
  const ElasticityStats el = stalled.elasticity_stats();
  EXPECT_GE(el.stragglers, 1);
  EXPECT_EQ(el.rebalances, 0);  // diagnostic only without RunOptions::rebalance
  EXPECT_GT(el.straggler_time, 0.0);
  // Diagnostic only: the run completes, the clean ledger never moves.
  EXPECT_EQ(stalled.fingerprint(), clean.fingerprint());
  EXPECT_TRUE(message_counts_identical(stalled, clean));
  EXPECT_GT(stalled.fault_makespan(), stalled.makespan());

  // The same stall with the watchdog disarmed (threshold 0) stays silent.
  const auto disarmed = Cluster::run(4, stall_machine(0.0), ring_rounds, kDet);
  EXPECT_EQ(disarmed.elasticity_stats().stragglers, 0);
}

TEST(StragglerWatchdog, ThresholdAboveTheLagStaysSilent) {
  // The outage contributes ~1e-4 of lag growth; a 1-second threshold can
  // never be crossed.
  const auto quiet = Cluster::run(4, stall_machine(1.0), ring_rounds, kDet);
  EXPECT_EQ(quiet.elasticity_stats().stragglers, 0);
}

TEST(StragglerWatchdog, RebalanceMitigatesAndChargesTheFaultClock) {
  RunOptions ropts = kDet;
  ropts.rebalance = true;
  const auto diagnosed = Cluster::run(4, stall_machine(1e-6), ring_rounds, kDet);
  const auto mitigated =
      Cluster::run(4, stall_machine(1e-6), ring_rounds, ropts);
  ASSERT_GE(mitigated.elasticity_stats().stragglers, 1);
  EXPECT_GE(mitigated.elasticity_stats().rebalances, 1);
  EXPECT_EQ(diagnosed.elasticity_stats().rebalances, 0);
  // Mitigation sweeps are fault-clock-only and come on top of the lag.
  EXPECT_GT(mitigated.elasticity_stats().straggler_time,
            diagnosed.elasticity_stats().straggler_time);
  EXPECT_EQ(mitigated.fingerprint(), diagnosed.fingerprint());
  EXPECT_NE(mitigated.fault_fingerprint(), diagnosed.fault_fingerprint());
}

TEST(StragglerWatchdog, KindHasAName) {
  EXPECT_STREQ(fault_kind_name(FaultKind::kStraggler), "straggler");
}

// ---------------------------------------------------------------------------
// Armed-but-inert repair schedules are invisible on both ledgers.
// ---------------------------------------------------------------------------

TEST(ArmedInert, RepairMtbfWithoutCrashesIsBitwiseInvisible) {
  const CsrMatrix a =
      make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kTiny);
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/3);
  const auto b = random_rhs(a.rows(), 1, 42);
  SolveConfig cfg;
  cfg.shape = {2, 2, 2};
  cfg.run = kDegradeOpts;
  const DistSolveOutcome plain = solve_system_3d(fs, b, cfg, test_machine());
  MachineModel armed = test_machine();
  armed.perturb.repair_mtbf = 1e-4;
  armed.recovery.rebalance_fanout = 2;
  const DistSolveOutcome idle = solve_system_3d(fs, b, cfg, armed);
  EXPECT_FALSE(idle.run_stats.elasticity_stats().any());
  EXPECT_TRUE(bitwise_equal(idle.x, plain.x));
  EXPECT_TRUE(test::stats_identical(idle.run_stats, plain.run_stats));
  EXPECT_EQ(idle.run_stats.fault_fingerprint(),
            plain.run_stats.fault_fingerprint());
}

TEST(ArmedInert, ReturnsAreInertWhenSparesAbsorbTheCrash) {
  // With a spare available the crash never degrades, so the scheduled
  // return has nothing to re-expand and must not shift a single draw.
  MachineModel with_ret = dry_machine({{2, 5e-5}}, /*spares=*/2);
  with_ret.perturb.returns = {{2, 2e-4}};
  const MachineModel without_ret = dry_machine({{2, 5e-5}}, /*spares=*/2);
  auto work = [](Comm& c) {
    std::vector<Real> state{1.0};
    const CheckpointScope scope = c.register_checkpoint(
        "t", [&] { return state; }, [](const CheckpointImage&) {});
    for (int e = 0; e < 4; ++e) {
      c.advance(1e-4, TimeCategory::kFp);
      c.checkpoint_epoch(e);
    }
    c.barrier();
  };
  const auto x = Cluster::run(4, with_ret, work, kDegradeOpts);
  const auto y = Cluster::run(4, without_ret, work, kDegradeOpts);
  EXPECT_EQ(x.recovery_stats().spares_used, 1);
  EXPECT_FALSE(x.elasticity_stats().any());
  EXPECT_TRUE(test::stats_identical(x, y));
  EXPECT_EQ(x.fault_fingerprint(), y.fault_fingerprint());
}

}  // namespace
}  // namespace sptrsv
