#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "comm/trees.hpp"

namespace sptrsv {
namespace {

void expect_valid_tree(const CommTree& t, const std::vector<int>& members, int root) {
  EXPECT_EQ(t.root(), root);
  EXPECT_EQ(t.num_members(), static_cast<int>(members.size()));
  EXPECT_EQ(t.parent_of(root), kNoIdx);
  // Every non-root member has a parent, and parent/child lists agree.
  std::set<int> reached{root};
  for (const int m : members) {
    EXPECT_TRUE(t.contains(m));
    if (m == root) continue;
    const int p = t.parent_of(m);
    EXPECT_TRUE(t.contains(p));
    bool found = false;
    for (const int c : t.children_of(p)) found |= (c == m);
    EXPECT_TRUE(found) << "member " << m << " missing from parent's children";
  }
  // Walking up from every member terminates at the root (no cycles).
  for (const int m : members) {
    int v = m;
    int hops = 0;
    while (v != root) {
      v = t.parent_of(v);
      ASSERT_LE(++hops, static_cast<int>(members.size()));
    }
  }
  // Child count totals n-1 (spanning tree).
  int edges = 0;
  for (const int m : members) edges += t.num_children(m);
  EXPECT_EQ(edges, static_cast<int>(members.size()) - 1);
}

TEST(CommTree, BinaryTreeValidSmall) {
  const std::vector<int> members{3, 8, 1, 5, 9};
  const auto t = CommTree::build(TreeKind::kBinary, members, 5);
  expect_valid_tree(t, members, 5);
}

TEST(CommTree, BinaryDepthIsLogarithmic) {
  std::vector<int> members(63);
  std::iota(members.begin(), members.end(), 0);
  const auto t = CommTree::build(TreeKind::kBinary, members, 0);
  expect_valid_tree(t, members, 0);
  EXPECT_EQ(t.depth(), 5);  // 63 nodes in a heap: depth 5
  // Binary: at most 2 children.
  for (const int m : members) EXPECT_LE(t.num_children(m), 2);
}

TEST(CommTree, FlatDepthIsOne) {
  std::vector<int> members(17);
  std::iota(members.begin(), members.end(), 10);
  const auto t = CommTree::build(TreeKind::kFlat, members, 12);
  expect_valid_tree(t, members, 12);
  EXPECT_EQ(t.depth(), 1);
  EXPECT_EQ(t.num_children(12), 16);
}

TEST(CommTree, SingletonTree) {
  const auto t = CommTree::build(TreeKind::kBinary, std::vector<int>{4}, 4);
  EXPECT_EQ(t.depth(), 0);
  EXPECT_EQ(t.parent_of(4), kNoIdx);
  EXPECT_TRUE(t.children_of(4).empty());
}

TEST(CommTree, NonMemberRootThrows) {
  EXPECT_THROW(CommTree::build(TreeKind::kBinary, std::vector<int>{1, 2}, 3),
               std::invalid_argument);
}

TEST(CommTree, NonMemberQueriesThrow) {
  const auto t = CommTree::build(TreeKind::kBinary, std::vector<int>{1, 2}, 1);
  EXPECT_THROW(t.parent_of(9), std::out_of_range);
  EXPECT_THROW(t.children_of(9), std::out_of_range);
}

TEST(CommTree, DuplicateMembersCollapsed) {
  const auto t = CommTree::build(TreeKind::kBinary, std::vector<int>{2, 2, 7, 7}, 7);
  EXPECT_EQ(t.num_members(), 2);
}

TEST(CommTree, DeterministicAcrossBuilds) {
  // Same member set in different input orders must give identical trees —
  // every rank constructs its tree locally and they must agree.
  const std::vector<int> a{9, 4, 6, 2, 0};
  const std::vector<int> b{0, 2, 4, 6, 9};
  const auto ta = CommTree::build(TreeKind::kBinary, a, 4);
  const auto tb = CommTree::build(TreeKind::kBinary, b, 4);
  for (const int m : a) {
    EXPECT_EQ(ta.parent_of(m), tb.parent_of(m));
  }
}

TEST(CommTree, MessageCountComparisonFlatVsBinary) {
  // The optimization the paper integrates: the root's send count drops from
  // O(P) to <= 2 with a binary tree.
  std::vector<int> members(64);
  std::iota(members.begin(), members.end(), 0);
  const auto flat = CommTree::build(TreeKind::kFlat, members, 0);
  const auto bin = CommTree::build(TreeKind::kBinary, members, 0);
  EXPECT_EQ(flat.num_children(0), 63);
  EXPECT_LE(bin.num_children(0), 2);
  // Total depth trade-off: flat 1, binary log2(P).
  EXPECT_LE(bin.depth(), 6);
}

}  // namespace
}  // namespace sptrsv
