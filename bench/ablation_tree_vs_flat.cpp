/// \file ablation_tree_vs_flat.cpp
/// \brief Ablation of §3.3 in isolation: binary communication trees vs flat
/// fan-out for the intra-grid communication, proposed algorithm, same
/// everything else. The tree advantage grows with the 2D grid size (the
/// root's O(P) serialized sends become O(log P) hops).

#include "bench/bench_util.hpp"

using namespace sptrsv;
using namespace sptrsv::bench;

int main() {
  const MachineModel machine = MachineModel::cori_haswell();
  SystemCache cache;
  const FactoredSystem& fs =
      cache.get(PaperMatrix::kS2D9pt2048, /*nd_levels=*/5, bench_scale());

  std::printf("# Ablation — intra-grid binary trees [29] vs flat fan-out\n");
  std::printf("# proposed 3D algorithm, %s, s2D9pt2048\n", machine.name.c_str());
  Table t({"P", "Pz", "grid", "flat", "binary", "tree speedup"});
  const std::vector<std::pair<int, int>> configs =
      full_sweep() ? std::vector<std::pair<int, int>>{{128, 1}, {128, 4}, {512, 1},
                                                      {512, 4}, {2048, 1}, {2048, 4},
                                                      {2048, 16}}
                   : std::vector<std::pair<int, int>>{{128, 1}, {512, 4}, {2048, 1},
                                                      {2048, 16}};
  for (const auto& [p, pz] : configs) {
    const auto [px, py] = square_grid(p / pz);
    const auto flat = run_cpu(fs, {px, py, pz}, Algorithm3d::kProposed, machine, 1,
                              TreeKind::kFlat);
    const auto tree = run_cpu(fs, {px, py, pz}, Algorithm3d::kProposed, machine, 1,
                              TreeKind::kBinary);
    t.add_row({std::to_string(p), std::to_string(pz),
               std::to_string(px) + "x" + std::to_string(py),
               fmt_time(flat.makespan), fmt_time(tree.makespan),
               fmt_ratio(flat.makespan / tree.makespan)});
  }
  t.print();
  return 0;
}
