/// \file fig9_crusher.cpp
/// \brief Reproduces Fig 9: proposed 3D SpTRSV on Crusher (MI250X), CPU vs
/// GPU solves on 1x1xPz layouts (ROC-SHMEM has no subcommunicators, so
/// Px = Py = 1 is mandatory on this machine), nrhs in {1, 50}.
/// Matrices: s1_mat_0_253872, s2D9pt2048, ldoor.

#include "bench/gpu_common.hpp"

int main() {
  sptrsv::bench::run_gpu_1x1xpz_figure(
      "Fig 9", sptrsv::MachineModel::crusher(),
      {sptrsv::PaperMatrix::kS1Mat0253872, sptrsv::PaperMatrix::kS2D9pt2048,
       sptrsv::PaperMatrix::kLdoor},
      "1.6x-1.8x @1RHS, 2.2x-2.9x @50RHS");
  return 0;
}
