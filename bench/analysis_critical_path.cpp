/// \file analysis_critical_path.cpp
/// \brief Critical-path analysis of one traced 3D SpTRSV run
/// (docs/OBSERVABILITY.md).
///
/// Runs a single deterministic, traced solve and reports where the modeled
/// makespan goes: the critical-path partition into the paper's breakdown
/// categories plus explicit *wait* (message flight on the path — the
/// quantity the paper's synchronization-reduction optimizations attack),
/// the top-k longest message hops on the path, per-rank category spreads,
/// and the per-level receive-wait histograms of the annotated phases.
///
///   analysis_critical_path [--matrix NAME] [--scale tiny|small|medium]
///                          [--shape PXxPYxPZ] [--alg new|baseline]
///                          [--tree binary|flat] [--nrhs N]
///                          [--machine cori|perlmutter|crusher]
///                          [--topk K] [--json FILE]
///
/// Example:
///   analysis_critical_path --matrix s2D9pt2048 --shape 2x2x4 --alg baseline

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/sptrsv3d.hpp"
#include "factor/sptrsv_seq.hpp"
#include "sparse/paper_matrices.hpp"
#include "trace/trace.hpp"

using namespace sptrsv;
using namespace sptrsv::bench;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--matrix NAME] [--scale tiny|small|medium]\n"
               "          [--shape PXxPYxPZ] [--alg new|baseline] [--tree "
               "binary|flat]\n"
               "          [--machine cori|perlmutter|crusher] [--nrhs N]\n"
               "          [--topk K] [--json FILE]\n",
               argv0);
  std::exit(2);
}

const char* category_name(int c) {
  switch (static_cast<TimeCategory>(c)) {
    case TimeCategory::kFp: return "FP";
    case TimeCategory::kXyComm: return "XY-Comm";
    case TimeCategory::kZComm: return "Z-Comm";
    default: return "other";
  }
}

void print_spread_row(Table& t, const char* name, const Spread& s) {
  t.add_row({name, fmt_time(s.min), fmt_time(s.mean), fmt_time(s.p50),
             fmt_time(s.p99), fmt_time(s.max), fmt_ratio(s.imbalance())});
}

void print_wait_histogram(const Trace& trace, const char* label,
                          const char* key_name) {
  const auto hist = trace.wait_by_span(label);
  if (hist.empty()) return;
  std::printf("\n## receive wait inside \"%s\" spans (summed over ranks)\n", label);
  Table t({key_name, "wait"});
  for (const auto& [arg, wait] : hist) {
    t.add_row({std::to_string(arg), fmt_time(wait)});
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  std::string matrix = "s2D9pt2048";
  MatrixScale scale = MatrixScale::kSmall;
  Grid3dShape shape{2, 2, 4};
  Algorithm3d alg = Algorithm3d::kProposed;
  TreeKind tree = TreeKind::kBinary;
  std::string machine_name = "cori";
  Idx nrhs = 1;
  int topk = 10;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--matrix") {
      matrix = next();
    } else if (a == "--scale") {
      const std::string s = next();
      scale = s == "tiny" ? MatrixScale::kTiny
              : s == "medium" ? MatrixScale::kMedium
                              : MatrixScale::kSmall;
    } else if (a == "--shape") {
      const std::string s = next();
      if (std::sscanf(s.c_str(), "%dx%dx%d", &shape.px, &shape.py, &shape.pz) != 3) {
        usage(argv[0]);
      }
    } else if (a == "--alg") {
      alg = next() == "baseline" ? Algorithm3d::kBaseline : Algorithm3d::kProposed;
    } else if (a == "--tree") {
      tree = next() == "flat" ? TreeKind::kFlat : TreeKind::kBinary;
    } else if (a == "--machine") {
      machine_name = next();
    } else if (a == "--nrhs") {
      nrhs = static_cast<Idx>(std::atoi(next().c_str()));
    } else if (a == "--topk") {
      topk = std::atoi(next().c_str());
    } else if (a == "--json") {
      json_path = next();
    } else {
      usage(argv[0]);
    }
  }

  const MachineModel machine = machine_name == "perlmutter" ? MachineModel::perlmutter()
                               : machine_name == "crusher"  ? MachineModel::crusher()
                                                            : MachineModel::cori_haswell();

  PaperMatrix which = PaperMatrix::kS2D9pt2048;
  bool found = false;
  for (const PaperMatrix m : all_paper_matrices()) {
    if (paper_matrix_name(m) == matrix) {
      which = m;
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown paper matrix '%s'\n", matrix.c_str());
    return 2;
  }

  int levels = 0;
  while ((1 << levels) < shape.pz) ++levels;
  const CsrMatrix a = make_paper_matrix(which, scale);
  const FactoredSystem fs = analyze_and_factor(a, levels);

  SolveConfig cfg;
  cfg.shape = shape;
  cfg.algorithm = alg;
  cfg.tree = tree;
  cfg.nrhs = nrhs;
  cfg.run.deterministic = true;  // repeated runs print identical reports
  cfg.run.trace = true;
  cfg.run.metrics = bench_json_enabled();
  const auto b = bench_rhs(fs.lu.n(), nrhs);
  const DistSolveOutcome out = solve_system_3d(fs, b, cfg, machine);
  const Trace& trace = *out.run_stats.trace;

  std::printf("# critical-path analysis — %s, %dx%dx%d, %s algorithm, %s\n",
              matrix.c_str(), shape.px, shape.py, shape.pz,
              alg == Algorithm3d::kProposed ? "proposed" : "baseline",
              machine.name.c_str());
  std::printf("# events: %zu (%zu sends, %zu recvs, %zu matched)\n",
              trace.num_events(), trace.num_sends(), trace.num_recvs(),
              trace.num_matched_recvs());

  const Trace::CriticalPath cp = trace.critical_path();
  const double makespan = cp.breakdown.makespan;
  std::printf("\n## makespan attribution along the critical path\n");
  std::printf("modeled makespan: %s (sink rank %d, %zu events on path, %zu hops)\n",
              fmt_time(makespan).c_str(), cp.sink_rank, cp.num_events,
              cp.edges.size());
  {
    Table t({"segment", "time", "share"});
    char pct[32];
    for (int c = 0; c < kNumTimeCategories; ++c) {
      std::snprintf(pct, sizeof(pct), "%5.1f%%",
                    100.0 * cp.breakdown.category[c] / makespan);
      t.add_row({category_name(c), fmt_time(cp.breakdown.category[c]), pct});
    }
    std::snprintf(pct, sizeof(pct), "%5.1f%%", 100.0 * cp.breakdown.wait / makespan);
    t.add_row({"wait (flight)", fmt_time(cp.breakdown.wait), pct});
    t.print();
  }
  const double err = std::abs(cp.breakdown.total() - makespan) /
                     std::max(makespan, 1e-300);
  std::printf("partition check: |sum - makespan| / makespan = %.2e\n", err);

  if (bench_json_enabled()) {
    std::map<std::string, double> values;
    if (out.run_stats.metrics != nullptr) {
      values = metric_totals(*out.run_stats.metrics);
    }
    values["makespan"] = makespan;
    values["cp_wait"] = cp.breakdown.wait;
    for (int c = 0; c < kNumTimeCategories; ++c) {
      values[std::string("cp_") + category_name(c)] = cp.breakdown.category[c];
    }
    bench_report(matrix + "_" + std::to_string(shape.px) + "x" +
                     std::to_string(shape.py) + "x" + std::to_string(shape.pz),
                 values);
  }

  std::printf("\n## top-%d longest message hops on the critical path\n", topk);
  {
    std::vector<Trace::PathEdge> hops = cp.edges;
    std::stable_sort(hops.begin(), hops.end(),
                     [](const Trace::PathEdge& x, const Trace::PathEdge& y) {
                       return x.flight > y.flight;
                     });
    if (hops.size() > static_cast<size_t>(std::max(topk, 0))) {
      hops.resize(static_cast<size_t>(std::max(topk, 0)));
    }
    Table t({"src", "dst", "tag", "bytes", "sent at", "flight"});
    for (const auto& h : hops) {
      t.add_row({std::to_string(h.src_rank), std::to_string(h.dst_rank),
                 std::to_string(h.recv->tag), std::to_string(h.recv->bytes),
                 fmt_time(h.send->t0), fmt_time(h.flight)});
    }
    t.print();
  }

  std::printf("\n## per-rank category time spread\n");
  {
    Table t({"category", "min", "mean", "p50", "p99", "max", "imb"});
    for (int c = 0; c < kNumTimeCategories; ++c) {
      print_spread_row(t, category_name(c),
                       out.run_stats.category_spread(static_cast<TimeCategory>(c)));
    }
    print_spread_row(t, "total vtime", out.run_stats.vtime_spread());
    t.print();
  }

  if (alg == Algorithm3d::kBaseline) {
    print_wait_histogram(trace, "l_level", "level");
    print_wait_histogram(trace, "u_level", "level");
  } else {
    print_wait_histogram(trace, "zreduce", "exchange level");
    print_wait_histogram(trace, "zbcast", "exchange level");
  }

  if (!json_path.empty()) {
    if (!trace.write_chrome_json_file(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote Perfetto trace to %s\n", json_path.c_str());
  }
  return 0;
}
