/// \file layout_study.cpp
/// \brief Extra experiment: process-layout study at fixed rank counts —
/// 1D row layouts (the non-blocked 1D family of the paper's related work
/// [41]), square 2D layouts [22, 29], and 3D layouts with increasing Pz.
/// Shows why the field moved 1D -> 2D -> 3D: each dimension added trades
/// per-rank message fan-out for replication.

#include "bench/bench_util.hpp"

using namespace sptrsv;
using namespace sptrsv::bench;

int main() {
  const MachineModel machine = MachineModel::cori_haswell();
  SystemCache cache;
  const FactoredSystem& fs =
      cache.get(PaperMatrix::kS2D9pt2048, /*nd_levels=*/5, bench_scale());

  std::printf("# Layout study — s2D9pt2048 on %s, proposed algorithm, 1 RHS\n",
              machine.name.c_str());
  Table t({"P", "1D (Px x 1 x 1)", "2D (sq x sq x 1)", "3D (sq x sq x 16)",
           "best"});
  for (const int p : full_sweep() ? std::vector<int>{64, 256, 1024, 2048}
                                  : std::vector<int>{64, 1024}) {
    const auto d1 = run_cpu(fs, {p, 1, 1}, Algorithm3d::kProposed, machine);
    const auto [px2, py2] = square_grid(p);
    const auto d2 = run_cpu(fs, {px2, py2, 1}, Algorithm3d::kProposed, machine);
    const auto [px3, py3] = square_grid(p / 16);
    const auto d3 = run_cpu(fs, {px3, py3, 16}, Algorithm3d::kProposed, machine);
    const double best = std::min({d1.makespan, d2.makespan, d3.makespan});
    t.add_row({std::to_string(p), fmt_time(d1.makespan), fmt_time(d2.makespan),
               fmt_time(d3.makespan),
               best == d3.makespan ? "3D" : (best == d2.makespan ? "2D" : "1D")});
  }
  t.print();
  std::printf("\n2D halves the per-rank fan-out of 1D; the third dimension\n"
              "converts the remaining latency chains into replicated compute.\n");
  return 0;
}
