/// \file nrhs_sweep.cpp
/// \brief Extra experiment: right-hand-side amortization. The paper reports
/// 1 and 50 RHS endpoints (Fig 9-10); this sweep fills in the curve —
/// per-RHS time drops as block-column overheads amortize and the GPU's
/// GEMV turns into blocked GEMM, until the flop-bound floor.

#include "bench/bench_util.hpp"

using namespace sptrsv;
using namespace sptrsv::bench;

int main() {
  const MachineModel machine = MachineModel::perlmutter();
  SystemCache cache;
  const FactoredSystem& fs =
      cache.get(PaperMatrix::kS2D9pt2048, /*nd_levels=*/5, bench_scale());

  std::printf("# RHS sweep — proposed 3D SpTRSV, 1x1x16, %s\n", machine.name.c_str());
  Table t({"nrhs", "cpu total", "cpu per-RHS", "gpu total", "gpu per-RHS",
           "gpu speedup"});
  double cpu1 = 0, gpu1 = 0, cpu50 = 0, gpu50 = 0;
  for (const Idx nrhs : {Idx{1}, Idx{2}, Idx{5}, Idx{10}, Idx{20}, Idx{50}}) {
    GpuSolveConfig cfg;
    cfg.shape = {1, 1, 16};
    cfg.nrhs = nrhs;
    cfg.metrics = bench_json_enabled();
    cfg.backend = GpuBackend::kCpu;
    const auto cpu_res = simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, machine);
    cfg.backend = GpuBackend::kGpu;
    const auto gpu_res = simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, machine);
    bench_report_gpu("cpu_r" + std::to_string(nrhs), cpu_res);
    bench_report_gpu("gpu_r" + std::to_string(nrhs), gpu_res);
    const double cpu = cpu_res.total;
    const double gpu = gpu_res.total;
    if (nrhs == 1) {
      cpu1 = cpu;
      gpu1 = gpu;
    }
    if (nrhs == 50) {
      cpu50 = cpu;
      gpu50 = gpu;
    }
    t.add_row({std::to_string(nrhs), fmt_time(cpu), fmt_time(cpu / nrhs),
               fmt_time(gpu), fmt_time(gpu / nrhs), fmt_ratio(cpu / gpu)});
  }
  t.print();
  std::printf("\nper-RHS amortization, 1 -> 50 RHS: cpu %.1fx, gpu %.1fx\n",
              cpu1 / (cpu50 / 50.0), gpu1 / (gpu50 / 50.0));
  return 0;
}
