/// \file fig6_breakdown_3d.cpp
/// \brief Reproduces Fig 6: the same breakdown as Fig 5 for nlpkkt80. A 3D
/// PDE matrix replicates asymptotically more ancestor computation as Pz
/// grows, so the proposed algorithm's FP bar rises with Pz — the effect the
/// paper highlights in §4.1.

#include "bench/bench_util.hpp"
#include "bench/breakdown_common.hpp"

int main() {
  sptrsv::bench::run_breakdown_figure("Fig 6", sptrsv::PaperMatrix::kNlpkkt80);
  return 0;
}
