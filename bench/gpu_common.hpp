#pragma once
/// \file gpu_common.hpp
/// \brief Shared driver for the Fig 9 / Fig 10 GPU-vs-CPU benches.

#include "bench/bench_util.hpp"

namespace sptrsv::bench {

/// Prints total / L-solve / U-solve / Z-comm modeled times for the proposed
/// 3D SpTRSV with CPU and GPU solves on 1 x 1 x Pz layouts, for 1 and 50
/// RHSs — the Fig 9 (Crusher) / Fig 10 (Perlmutter) series. Also reports
/// the per-configuration CPU/GPU speedup and its maximum.
inline void run_gpu_1x1xpz_figure(const char* figure, const MachineModel& machine,
                                  const std::vector<PaperMatrix>& matrices,
                                  const char* paper_speedups) {
  const std::vector<int> pz_sweep = full_sweep()
                                        ? std::vector<int>{1, 2, 4, 8, 16, 32, 64}
                                        : std::vector<int>{1, 4, 16, 64};
  SystemCache cache;
  std::printf("# %s — proposed 3D SpTRSV on %s, 1x1xPz layouts, CPU vs GPU solves\n",
              figure, machine.name.c_str());
  for (const PaperMatrix which : matrices) {
    const FactoredSystem& fs = cache.get(which, /*nd_levels=*/6, bench_scale());
    for (const Idx nrhs : {Idx{1}, Idx{50}}) {
      std::printf("\n## %s, nrhs = %d\n", paper_matrix_name(which).c_str(),
                  static_cast<int>(nrhs));
      Table t({"Pz", "cpu total", "cpu L", "cpu U", "cpu Z", "gpu total", "gpu L",
               "gpu U", "gpu Z", "speedup"});
      double best = 0;
      for (const int pz : pz_sweep) {
        GpuSolveConfig cfg;
        cfg.shape = {1, 1, pz};
        cfg.nrhs = nrhs;
        cfg.trace = !bench_trace_dir().empty();
        cfg.metrics = bench_json_enabled();
        cfg.backend = GpuBackend::kCpu;
        const auto cpu = simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, machine);
        cfg.backend = GpuBackend::kGpu;
        const auto gpu = simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, machine);
        const std::string stem_tail = paper_matrix_name(which) + "_1x1x" +
                                      std::to_string(pz) + "_r" +
                                      std::to_string(nrhs);
        maybe_dump_trace(cpu.trace.get(), "cpu_" + stem_tail);
        maybe_dump_trace(gpu.trace.get(), "gpu_" + stem_tail);
        bench_report_gpu("cpu_" + stem_tail, cpu);
        bench_report_gpu("gpu_" + stem_tail, gpu);
        const double speedup = cpu.total / gpu.total;
        best = std::max(best, speedup);
        t.add_row({std::to_string(pz), fmt_time(cpu.total), fmt_time(cpu.l_solve),
                   fmt_time(cpu.u_solve), fmt_time(cpu.z_comm), fmt_time(gpu.total),
                   fmt_time(gpu.l_solve), fmt_time(gpu.u_solve), fmt_time(gpu.z_comm),
                   fmt_ratio(speedup)});
      }
      t.print();
      std::printf("-> max CPU->GPU speedup: %s (paper, across matrices: %s)\n",
                  fmt_ratio(best).c_str(), paper_speedups);
    }
  }
}

}  // namespace sptrsv::bench
