/// \file fig5_breakdown_2d.cpp
/// \brief Reproduces Fig 5: time breakdown (Z-Comm / XY-Comm / FP-Operation,
/// averaged over ranks) of s2D9pt2048 on Cori Haswell, baseline vs proposed
/// 3D SpTRSV, as P and Pz vary.

#include "bench/bench_util.hpp"
#include "bench/breakdown_common.hpp"

int main() {
  sptrsv::bench::run_breakdown_figure("Fig 5", sptrsv::PaperMatrix::kS2D9pt2048);
  return 0;
}
