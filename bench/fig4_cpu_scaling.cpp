/// \file fig4_cpu_scaling.cpp
/// \brief Reproduces Fig 4: CPU SpTRSV time on Cori Haswell as the total
/// MPI count P = Px*Py*Pz varies, for the baseline and proposed 3D
/// algorithms with Pz from 1 to 32.
///
/// Matrices: s2D9pt2048, nlpkkt80, ldoor, dielFilterV3real. One curve per
/// (algorithm, Pz); x-axis is P; the 2D grid is chosen as square as
/// possible. "New pz1" is the communication-optimized 2D algorithm [29].
/// Also prints the §4.1 headline speedups (proposed vs baseline, proposed
/// vs 2D).

#include <algorithm>

#include "bench/bench_util.hpp"

using namespace sptrsv;
using namespace sptrsv::bench;

int main() {
  const std::vector<PaperMatrix> matrices{
      PaperMatrix::kS2D9pt2048, PaperMatrix::kNlpkkt80, PaperMatrix::kLdoor,
      PaperMatrix::kDielFilterV3real};
  const std::vector<int> p_sweep = full_sweep()
                                       ? std::vector<int>{128, 256, 512, 1024, 2048}
                                       : std::vector<int>{128, 512, 2048};
  const std::vector<int> pz_sweep = full_sweep() ? std::vector<int>{1, 2, 4, 8, 16, 32}
                                                 : std::vector<int>{1, 4, 16, 32};
  const MachineModel machine = MachineModel::cori_haswell();
  SystemCache cache;

  print_mode_banner();
  std::printf("# Fig 4 — SpTRSV modeled time (s) on %s; P = Px*Py*Pz\n",
              machine.name.c_str());
  for (const PaperMatrix which : matrices) {
    const FactoredSystem& fs = cache.get(which, /*nd_levels=*/5, bench_scale());
    std::printf("\n## %s (n=%d)\n", paper_matrix_name(which).c_str(), fs.lu.n());

    std::vector<std::string> header{"P"};
    for (const auto alg : {Algorithm3d::kBaseline, Algorithm3d::kProposed}) {
      for (const int pz : pz_sweep) {
        header.push_back(std::string(alg == Algorithm3d::kBaseline ? "base" : "new") +
                         "_pz" + std::to_string(pz));
      }
    }
    Table t(header);

    double best_vs_base = 0, best_vs_2d = 0;
    for (const int p : p_sweep) {
      std::vector<std::string> row{std::to_string(p)};
      std::map<std::pair<int, int>, double> time;  // (alg, pz) -> makespan
      for (const auto alg : {Algorithm3d::kBaseline, Algorithm3d::kProposed}) {
        // The artifact's baseline runs without tree communication
        // (NEW3DSOLVETREECOMM unset), i.e. flat fan-out.
        const TreeKind tree =
            alg == Algorithm3d::kBaseline ? TreeKind::kFlat : TreeKind::kBinary;
        for (const int pz : pz_sweep) {
          if (p % pz != 0) {
            row.push_back("-");
            continue;
          }
          const auto [px, py] = square_grid(p / pz);
          const auto out = run_cpu(fs, {px, py, pz}, alg, machine, 1, tree);
          time[{static_cast<int>(alg), pz}] = out.makespan;
          row.push_back(fmt_time(out.makespan));
        }
      }
      t.add_row(std::move(row));
      // Headline "up to" ratios: max over matched (P, Pz) configurations,
      // plus proposed's best against the 2D algorithm (proposed at Pz=1).
      double best_new = 1e300;
      for (const int pz : pz_sweep) {
        const auto itb = time.find({static_cast<int>(Algorithm3d::kBaseline), pz});
        const auto itn = time.find({static_cast<int>(Algorithm3d::kProposed), pz});
        if (itn == time.end()) continue;
        best_new = std::min(best_new, itn->second);
        if (itb != time.end()) {
          best_vs_base = std::max(best_vs_base, itb->second / itn->second);
        }
      }
      const auto it2d = time.find({static_cast<int>(Algorithm3d::kProposed), 1});
      if (it2d != time.end() && best_new < 1e300) {
        best_vs_2d = std::max(best_vs_2d, it2d->second / best_new);
      }
    }
    t.print();
    std::printf("-> max speedup proposed-3D vs baseline-3D: %s (paper: 3.45x/1.87x/"
                "1.13x/1.98x)\n",
                fmt_ratio(best_vs_base).c_str());
    std::printf("-> max speedup proposed-3D vs 2D (pz=1):   %s (paper: 2.2x/1.1x/"
                "2.1x/1.43x)\n",
                fmt_ratio(best_vs_2d).c_str());
  }
  return 0;
}
