/// \file fig11_gpu_3d.cpp
/// \brief Reproduces Fig 11: proposed 3D SpTRSV on Perlmutter GPUs with
/// Px x 1 x Pz layouts (NVSHMEM-based multi-GPU 2D solves, Algorithm 5).
///
/// Key paper findings regenerated here:
///  - the 2D GPU algorithm (Pz = 1) stops scaling at P = 8 GPUs, when
///    NVSHMEM puts start crossing the node boundary (300 vs 12.5 GB/s);
///  - at a fixed GPU count, growing Pz beats growing Px;
///  - the proposed 3D GPU SpTRSV scales to 256 GPUs (Px=4, Pz=64).
/// One curve per Pz; x-axis is the total GPU count P = Px * Pz. CPU
/// reference uses the same layouts with CPU solves.

#include "bench/bench_util.hpp"

using namespace sptrsv;
using namespace sptrsv::bench;

int main() {
  const MachineModel machine = MachineModel::perlmutter();
  const std::vector<PaperMatrix> matrices{
      PaperMatrix::kS1Mat0253872, PaperMatrix::kNlpkkt80, PaperMatrix::kGa19As19H42,
      PaperMatrix::kDielFilterV3real};
  const std::vector<int> pz_sweep = full_sweep()
                                        ? std::vector<int>{1, 4, 16, 64}
                                        : std::vector<int>{1, 16, 64};
  SystemCache cache;

  std::printf("# Fig 11 — proposed 3D GPU SpTRSV on %s, Px x 1 x Pz, 1 RHS\n",
              machine.name.c_str());
  std::printf("# Pz=1,Px>1 is the NVSHMEM 2D GPU algorithm [12]; Px<=4 keeps\n");
  std::printf("# puts inside one node except the Pz=1 curve probing Px=8.\n");
  for (const PaperMatrix which : matrices) {
    const FactoredSystem& fs = cache.get(which, /*nd_levels=*/6, bench_scale());
    std::printf("\n## %s (n=%d)\n", paper_matrix_name(which).c_str(), fs.lu.n());
    Table t({"Px", "Pz", "P(gpus)", "gpu total", "cpu total", "gpu/2D-best"});

    // 2D GPU curve (Pz = 1): Px up to 8 shows the node-boundary wall.
    double best_2d = 1e300;
    std::map<std::pair<int, int>, double> gpu_time;
    for (const int pz : pz_sweep) {
      for (const int px : {1, 2, 4, 8, 16}) {
        if (px > 4 && pz != 1) continue;  // paper confines puts to a node
        GpuSolveConfig cfg;
        cfg.shape = {px, 1, pz};
        cfg.metrics = bench_json_enabled();
        cfg.backend = GpuBackend::kGpu;
        const auto gpu = simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, machine);
        cfg.backend = GpuBackend::kCpu;
        const auto cpu = simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, machine);
        const std::string stem_tail = paper_matrix_name(which) + "_" +
                                      std::to_string(px) + "x1x" +
                                      std::to_string(pz);
        bench_report_gpu("gpu_" + stem_tail, gpu);
        bench_report_gpu("cpu_" + stem_tail, cpu);
        gpu_time[{px, pz}] = gpu.total;
        if (pz == 1) best_2d = std::min(best_2d, gpu.total);
        t.add_row({std::to_string(px), std::to_string(pz), std::to_string(px * pz),
                   fmt_time(gpu.total), fmt_time(cpu.total),
                   pz == 1 ? "-" : fmt_ratio(best_2d / gpu.total)});
      }
    }
    t.print();
    const double at_256 = gpu_time.count({4, 64}) ? gpu_time[{4, 64}] : 0;
    if (at_256 > 0) {
      std::printf("-> 256-GPU (4x1x64) vs best 2D GPU (<=8 GPUs): %s faster\n",
                  fmt_ratio(best_2d / at_256).c_str());
    }
  }
  return 0;
}
