#pragma once
/// \file breakdown_common.hpp
/// \brief Shared driver for the Fig 5 / Fig 6 time-breakdown benches.

#include "bench/bench_util.hpp"

namespace sptrsv::bench {

/// Prints rank-averaged Z-Comm / XY-Comm / FP-Operation bars for the
/// baseline (flat comm, per the artifact) and proposed (tree comm)
/// algorithms over the paper's (P, Pz) grid.
inline void run_breakdown_figure(const char* figure, PaperMatrix which) {
  const std::vector<int> p_sweep =
      full_sweep() ? std::vector<int>{128, 512, 2048} : std::vector<int>{128, 2048};
  const std::vector<int> pz_sweep = full_sweep() ? std::vector<int>{1, 2, 4, 8, 16, 32}
                                                 : std::vector<int>{1, 4, 16, 32};
  const MachineModel machine = MachineModel::cori_haswell();
  SystemCache cache;
  const FactoredSystem& fs = cache.get(which, /*nd_levels=*/5, bench_scale());

  std::printf("# %s — time breakdown (s, averaged over ranks) of %s on %s\n", figure,
              paper_matrix_name(which).c_str(), machine.name.c_str());
  std::printf("# Z-Comm = inter-grid, XY-Comm = intra-grid, FP = block kernels\n");
  for (const int p : p_sweep) {
    std::printf("\n## P = %d\n", p);
    Table t({"alg", "Pz", "Z-Comm", "XY-Comm", "FP-Operation", "total(max)"});
    for (const auto alg : {Algorithm3d::kBaseline, Algorithm3d::kProposed}) {
      const TreeKind tree =
          alg == Algorithm3d::kBaseline ? TreeKind::kFlat : TreeKind::kBinary;
      for (const int pz : pz_sweep) {
        if (p % pz != 0) continue;
        const auto [px, py] = square_grid(p / pz);
        const auto out = run_cpu(fs, {px, py, pz}, alg, machine, 1, tree);
        const double z = out.mean(&RankPhaseTimes::l_z) +
                         out.mean(&RankPhaseTimes::z_time) +
                         out.mean(&RankPhaseTimes::u_z);
        const double xy =
            out.mean(&RankPhaseTimes::l_xy) + out.mean(&RankPhaseTimes::u_xy);
        const double fp =
            out.mean(&RankPhaseTimes::l_fp) + out.mean(&RankPhaseTimes::u_fp);
        t.add_row({alg == Algorithm3d::kBaseline ? "baseline" : "proposed",
                   std::to_string(pz), fmt_time(z), fmt_time(xy), fmt_time(fp),
                   fmt_time(out.makespan)});
      }
    }
    t.print();
  }
}

}  // namespace sptrsv::bench
