#pragma once
/// \file loadbalance_common.hpp
/// \brief Shared driver for the Fig 7 / Fig 8 load-balance benches.

#include "bench/bench_util.hpp"

namespace sptrsv::bench {

/// Prints min/mean/max over ranks of the L- and U-solve times (Z-Comm
/// excluded, matching the paper's Fig 7-8 convention) for P in {128, 1024}.
inline void run_loadbalance_figure(const char* figure, PaperMatrix which) {
  const std::vector<int> pz_sweep = full_sweep() ? std::vector<int>{1, 2, 4, 8, 16, 32}
                                                 : std::vector<int>{1, 4, 16, 32};
  const MachineModel machine = MachineModel::cori_haswell();
  SystemCache cache;
  const FactoredSystem& fs = cache.get(which, /*nd_levels=*/5, bench_scale());

  std::printf("# %s — load balance of %s on %s: L/U solve time across ranks\n",
              figure, paper_matrix_name(which).c_str(), machine.name.c_str());
  std::printf("# (min / mean / max over MPI ranks; Z-Comm time excluded)\n");
  for (const int p : {128, 1024}) {
    std::printf("\n## P = %d\n", p);
    Table t({"alg", "Pz", "L min", "L mean", "L max", "U min", "U mean", "U max"});
    for (const auto alg : {Algorithm3d::kBaseline, Algorithm3d::kProposed}) {
      const TreeKind tree =
          alg == Algorithm3d::kBaseline ? TreeKind::kFlat : TreeKind::kBinary;
      for (const int pz : pz_sweep) {
        if (p % pz != 0) continue;
        const auto [px, py] = square_grid(p / pz);
        const auto out = run_cpu(fs, {px, py, pz}, alg, machine, 1, tree);
        auto l_of = [](const RankPhaseTimes& r) { return r.l_solve(); };
        auto u_of = [](const RankPhaseTimes& r) { return r.u_solve(); };
        double lmin = 1e300, lmax = 0, lsum = 0, umin = 1e300, umax = 0, usum = 0;
        for (const auto& r : out.rank_times) {
          lmin = std::min(lmin, l_of(r));
          lmax = std::max(lmax, l_of(r));
          lsum += l_of(r);
          umin = std::min(umin, u_of(r));
          umax = std::max(umax, u_of(r));
          usum += u_of(r);
        }
        const double n = static_cast<double>(out.rank_times.size());
        t.add_row({alg == Algorithm3d::kBaseline ? "baseline" : "proposed",
                   std::to_string(pz), fmt_time(lmin), fmt_time(lsum / n),
                   fmt_time(lmax), fmt_time(umin), fmt_time(usum / n),
                   fmt_time(umax)});
      }
    }
    t.print();
  }
}

}  // namespace sptrsv::bench
