#pragma once
/// \file loadbalance_common.hpp
/// \brief Shared driver for the Fig 7 / Fig 8 load-balance benches.

#include "bench/bench_util.hpp"

namespace sptrsv::bench {

/// Prints min/mean/max over ranks of the L- and U-solve times (Z-Comm
/// excluded, matching the paper's Fig 7-8 convention) for P in {128, 1024}.
inline void run_loadbalance_figure(const char* figure, PaperMatrix which) {
  const std::vector<int> pz_sweep = full_sweep() ? std::vector<int>{1, 2, 4, 8, 16, 32}
                                                 : std::vector<int>{1, 4, 16, 32};
  const MachineModel machine = MachineModel::cori_haswell();
  SystemCache cache;
  const FactoredSystem& fs = cache.get(which, /*nd_levels=*/5, bench_scale());

  std::printf("# %s — load balance of %s on %s: L/U solve time across ranks\n",
              figure, paper_matrix_name(which).c_str(), machine.name.c_str());
  std::printf("# (min / mean / max / p99 / imbalance over MPI ranks; Z-Comm excluded)\n");
  for (const int p : {128, 1024}) {
    std::printf("\n## P = %d\n", p);
    Table t({"alg", "Pz", "L min", "L mean", "L max", "L p99", "L imb", "U min",
             "U mean", "U max", "U p99", "U imb"});
    for (const auto alg : {Algorithm3d::kBaseline, Algorithm3d::kProposed}) {
      const TreeKind tree =
          alg == Algorithm3d::kBaseline ? TreeKind::kFlat : TreeKind::kBinary;
      for (const int pz : pz_sweep) {
        if (p % pz != 0) continue;
        const auto [px, py] = square_grid(p / pz);
        const auto out = run_cpu(fs, {px, py, pz}, alg, machine, 1, tree);
        // Per-rank L/U phase times summarized by the runtime's Spread helper
        // (nearest-rank percentiles, max/mean imbalance).
        std::vector<double> l_times, u_times;
        l_times.reserve(out.rank_times.size());
        u_times.reserve(out.rank_times.size());
        for (const auto& r : out.rank_times) {
          l_times.push_back(r.l_solve());
          u_times.push_back(r.u_solve());
        }
        const Spread l = spread_over(l_times);
        const Spread u = spread_over(u_times);
        t.add_row({alg == Algorithm3d::kBaseline ? "baseline" : "proposed",
                   std::to_string(pz), fmt_time(l.min), fmt_time(l.mean),
                   fmt_time(l.max), fmt_time(l.p99), fmt_ratio(l.imbalance()),
                   fmt_time(u.min), fmt_time(u.mean), fmt_time(u.max),
                   fmt_time(u.p99), fmt_ratio(u.imbalance())});
      }
    }
    t.print();
  }
}

}  // namespace sptrsv::bench
