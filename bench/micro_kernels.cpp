/// \file micro_kernels.cpp
/// \brief google-benchmark microbenchmarks of the kernels the solve spends
/// its time in: dense block GEMM/TRSM/LU, tree construction, and a SpMV
/// bandwidth probe.

#include <benchmark/benchmark.h>

#include <numeric>
#include <random>

#include "bench/bench_util.hpp"
#include "comm/trees.hpp"
#include "factor/dense.hpp"
#include "sparse/generators.hpp"

namespace sptrsv {
namespace {

std::vector<Real> random_matrix(Idx m, Idx n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<Real> uni(-1.0, 1.0);
  std::vector<Real> a(static_cast<size_t>(m) * n);
  for (auto& v : a) v = uni(rng);
  return a;
}

void BM_GemmPanelUpdate(benchmark::State& state) {
  // lsum(I) += L(I,K) * y(K): the L-solve's inner kernel. Arg0 = supernode
  // width, Arg1 = nrhs.
  const Idx w = static_cast<Idx>(state.range(0));
  const Idx nrhs = static_cast<Idx>(state.range(1));
  const Idx rows = 4 * w;  // typical panel height
  const auto panel = random_matrix(rows, w, 1);
  const auto y = random_matrix(w, nrhs, 2);
  std::vector<Real> lsum(static_cast<size_t>(rows) * nrhs, 0.0);
  for (auto _ : state) {
    gemm_plus_ld(rows, w, nrhs, panel, rows, y, w, lsum, rows);
    benchmark::DoNotOptimize(lsum.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * rows * w * nrhs);
}
BENCHMARK(BM_GemmPanelUpdate)
    ->Args({8, 1})
    ->Args({32, 1})
    ->Args({96, 1})
    ->Args({32, 50})
    ->Args({96, 50});

void BM_DiagApply(benchmark::State& state) {
  // y(K) = inv(L_KK) * rhs: the diagonal kernel.
  const Idx w = static_cast<Idx>(state.range(0));
  const auto inv = random_matrix(w, w, 3);
  const auto rhs = random_matrix(w, 1, 4);
  std::vector<Real> y(static_cast<size_t>(w), 0.0);
  for (auto _ : state) {
    std::fill(y.begin(), y.end(), 0.0);
    gemm_plus(w, w, 1, inv, rhs, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * w * w);
}
BENCHMARK(BM_DiagApply)->Arg(8)->Arg(32)->Arg(96);

void BM_DenseLuFactor(benchmark::State& state) {
  const Idx w = static_cast<Idx>(state.range(0));
  auto base = random_matrix(w, w, 5);
  for (Idx i = 0; i < w; ++i) base[static_cast<size_t>(i) * w + i] += w;
  for (auto _ : state) {
    auto a = base;
    benchmark::DoNotOptimize(lu_unpivoted_inplace(w, a));
  }
}
BENCHMARK(BM_DenseLuFactor)->Arg(8)->Arg(32)->Arg(96);

void BM_InvertTriangular(benchmark::State& state) {
  const Idx w = static_cast<Idx>(state.range(0));
  auto lu = random_matrix(w, w, 6);
  for (Idx i = 0; i < w; ++i) lu[static_cast<size_t>(i) * w + i] += w;
  lu_unpivoted_inplace(w, lu);
  std::vector<Real> out(static_cast<size_t>(w) * w);
  for (auto _ : state) {
    invert_unit_lower(w, lu, out);
    invert_upper(w, lu, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_InvertTriangular)->Arg(8)->Arg(32)->Arg(96);

void BM_TrsmRightUpper(benchmark::State& state) {
  const Idx w = static_cast<Idx>(state.range(0));
  const Idx rows = 4 * w;
  auto lu = random_matrix(w, w, 7);
  for (Idx i = 0; i < w; ++i) lu[static_cast<size_t>(i) * w + i] += w;
  lu_unpivoted_inplace(w, lu);
  const auto base = random_matrix(rows, w, 8);
  for (auto _ : state) {
    auto b = base;
    trsm_right_upper(rows, w, lu, b);
    benchmark::DoNotOptimize(b.data());
  }
}
BENCHMARK(BM_TrsmRightUpper)->Arg(8)->Arg(32)->Arg(96);

void BM_BinaryTreeBuild(benchmark::State& state) {
  // Tree construction happens once per supernode during setup.
  const int n = static_cast<int>(state.range(0));
  std::vector<int> members(static_cast<size_t>(n));
  std::iota(members.begin(), members.end(), 0);
  for (auto _ : state) {
    auto t = CommTree::build(TreeKind::kBinary, members, 0);
    benchmark::DoNotOptimize(&t);
  }
}
BENCHMARK(BM_BinaryTreeBuild)->Arg(4)->Arg(32)->Arg(256);

void BM_SpmvReference(benchmark::State& state) {
  // Residual-check kernel; also a rough memory-bandwidth probe.
  const Idx side = static_cast<Idx>(state.range(0));
  const CsrMatrix a = make_grid2d(side, side, Stencil2d::kNinePoint);
  std::vector<Real> x(static_cast<size_t>(a.rows()), 1.0);
  std::vector<Real> y(static_cast<size_t>(a.rows()));
  for (auto _ : state) {
    a.matvec(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz() * 2);
}
BENCHMARK(BM_SpmvReference)->Arg(64)->Arg(192);

// Console output plus one sptrsv-bench/1 JSON per benchmark when
// SPTRSV_BENCH_JSON is set (bench_util.hpp).
class ReportingConsole : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      std::string stem = run.benchmark_name();
      for (char& c : stem) {
        if (c == '/' || c == ':') c = '_';
      }
      bench::bench_report(stem, {{"real_time_ns", run.GetAdjustedRealTime()},
                                 {"cpu_time_ns", run.GetAdjustedCPUTime()}});
    }
  }
};

}  // namespace
}  // namespace sptrsv

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  sptrsv::ReportingConsole reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
