/// \file ext_crusher_subcomm.cpp
/// \brief Extension experiment: the paper's stated future work — "Adding
/// support for MPI subcommunicators in ROC-SHMEM will enable significantly
/// improved scalability of SpTRSV for large numbers of GPU nodes" (§3.4).
///
/// We project that claim by running the Crusher machine model with the
/// constraint lifted (a hypothetical ROC-SHMEM with subcommunicators,
/// enabling Px > 1) and comparing against the shipping Px = 1 limit.

#include "bench/bench_util.hpp"

using namespace sptrsv;
using namespace sptrsv::bench;

int main() {
  MachineModel crusher = MachineModel::crusher();
  MachineModel what_if = crusher;
  what_if.name = "crusher+subcomm";
  what_if.shmem_subcomm_support = true;  // the hypothetical ROC-SHMEM

  SystemCache cache;
  const FactoredSystem& fs =
      cache.get(PaperMatrix::kS1Mat0253872, /*nd_levels=*/6, bench_scale());

  std::printf("# Extension — projecting the paper's future work: ROC-SHMEM with\n");
  std::printf("# subcommunicators on Crusher (s1_mat_0_253872, 1 RHS)\n");
  Table t({"GPUs", "today (1x1xPz)", "with subcomm (Px x 1 x Pz)", "layout",
           "gain"});
  for (const int gpus : {8, 32, 64, 128, 256}) {
    // Today: all GPUs along z (if a power of two and within the tree).
    double today = -1;
    if ((gpus & (gpus - 1)) == 0 && gpus <= 64) {
      GpuSolveConfig cfg;
      cfg.shape = {1, 1, gpus};
      cfg.metrics = bench_json_enabled();
      const auto res = simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, crusher);
      bench_report_gpu("today_1x1x" + std::to_string(gpus), res);
      today = res.total;
    }
    // With subcommunicators: best Px in {1,2,4,8} x Pz split.
    double best = 1e300;
    int best_px = 1, best_pz = 1;
    for (const int px : {1, 2, 4, 8}) {
      if (gpus % px != 0) continue;
      const int pz = gpus / px;
      if ((pz & (pz - 1)) != 0 || pz > 64) continue;
      GpuSolveConfig cfg;
      cfg.shape = {px, 1, pz};
      cfg.metrics = bench_json_enabled();
      const auto res = simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, what_if);
      bench_report_gpu("subcomm_" + std::to_string(px) + "x1x" + std::to_string(pz),
                       res);
      const double v = res.total;
      if (v < best) {
        best = v;
        best_px = px;
        best_pz = pz;
      }
    }
    t.add_row({std::to_string(gpus), today < 0 ? "-" : fmt_time(today),
               fmt_time(best),
               std::to_string(best_px) + "x1x" + std::to_string(best_pz),
               today < 0 ? "-" : fmt_ratio(today / best)});
  }
  t.print();
  std::printf("\nWithout subcommunicators Crusher cannot exceed 64 GPUs (one per\n"
              "grid, tree depth 6); with them, Px multiplies the usable GPU count\n"
              "and keeps improving the solve — supporting the paper's claim.\n");
  return 0;
}
