/// \file fig7_loadbalance_2d.cpp
/// \brief Reproduces Fig 7: load balance of the s2D9pt2048 solve — both
/// algorithms stay reasonably balanced on a 2D-PDE matrix.

#include "bench/loadbalance_common.hpp"

int main() {
  sptrsv::bench::run_loadbalance_figure("Fig 7", sptrsv::PaperMatrix::kS2D9pt2048);
  return 0;
}
