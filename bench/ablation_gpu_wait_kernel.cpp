/// \file ablation_gpu_wait_kernel.cpp
/// \brief Ablation of the paper's two-kernel GPU design (§3.4): NVSHMEM
/// limits resident thread blocks, and a naive single SOLVE kernel has
/// blocks spin-wait while *holding* their slot; the paper adds a WAIT
/// kernel so blocks only occupy resources when they have work. Both
/// disciplines run under the same concurrency budget here, so the gap is
/// purely the cost of slot-holding spins.

#include "bench/bench_util.hpp"

using namespace sptrsv;
using namespace sptrsv::bench;

int main() {
  const MachineModel machine = MachineModel::perlmutter();
  SystemCache cache;
  std::printf("# Ablation — WAIT+SOLVE two-kernel design vs naive resident-spin\n");
  std::printf("# proposed GPU 3D SpTRSV on %s, 1 RHS\n", machine.name.c_str());
  for (const PaperMatrix which :
       {PaperMatrix::kS2D9pt2048, PaperMatrix::kNlpkkt80}) {
    const FactoredSystem& fs = cache.get(which, /*nd_levels=*/6, bench_scale());
    std::printf("\n## %s (n=%d)\n", paper_matrix_name(which).c_str(), fs.lu.n());
    Table t({"Px", "Pz", "resident-spin", "two-kernel", "speedup"});
    for (const auto& [px, pz] : {std::pair{1, 1}, std::pair{4, 1}, std::pair{1, 16},
                                 std::pair{4, 16}}) {
      GpuSolveConfig cfg;
      cfg.shape = {px, 1, pz};
      cfg.metrics = bench_json_enabled();
      cfg.schedule = GpuScheduleMode::kResidentSpin;
      const auto naive = simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, machine);
      cfg.schedule = GpuScheduleMode::kTwoKernel;
      const auto two = simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, machine);
      const std::string stem_tail = paper_matrix_name(which) + "_" +
                                    std::to_string(px) + "x1x" +
                                    std::to_string(pz);
      bench_report_gpu("spin_" + stem_tail, naive);
      bench_report_gpu("twok_" + stem_tail, two);
      t.add_row({std::to_string(px), std::to_string(pz), fmt_time(naive.total),
                 fmt_time(two.total), fmt_ratio(naive.total / two.total)});
    }
    t.print();
  }
  return 0;
}
