/// \file ablation_allreduce.cpp
/// \brief Ablation of §3.2 in isolation: the packed sparse allreduce
/// (Algorithm 2) vs the straightforward one-dense-allreduce-per-node
/// inter-grid reduction the paper argues against. Proposed algorithm,
/// binary trees, everything else equal.

#include "bench/bench_util.hpp"

using namespace sptrsv;
using namespace sptrsv::bench;

int main() {
  const MachineModel machine = MachineModel::cori_haswell();
  SystemCache cache;
  const FactoredSystem& fs =
      cache.get(PaperMatrix::kS2D9pt2048, /*nd_levels=*/5, bench_scale());

  std::printf("# Ablation — sparse allreduce (Alg 2) vs per-node dense allreduce\n");
  std::printf("# proposed 3D algorithm, %s, s2D9pt2048; times are the Z phase\n",
              machine.name.c_str());
  Table t({"P", "Pz", "dense Z", "sparse Z", "Z speedup", "dense total",
           "sparse total"});
  const std::vector<std::pair<int, int>> configs =
      full_sweep() ? std::vector<std::pair<int, int>>{{128, 4}, {128, 16}, {512, 4},
                                                      {512, 16}, {2048, 16},
                                                      {2048, 32}}
                   : std::vector<std::pair<int, int>>{{128, 4}, {512, 16}, {2048, 32}};
  for (const auto& [p, pz] : configs) {
    const auto [px, py] = square_grid(p / pz);
    const auto dense = run_cpu(fs, {px, py, pz}, Algorithm3d::kProposed, machine, 1,
                               TreeKind::kBinary, /*sparse_zreduce=*/false);
    const auto sparse = run_cpu(fs, {px, py, pz}, Algorithm3d::kProposed, machine, 1,
                                TreeKind::kBinary, /*sparse_zreduce=*/true);
    const double dz = dense.max(&RankPhaseTimes::z_time);
    const double sz = sparse.max(&RankPhaseTimes::z_time);
    t.add_row({std::to_string(p), std::to_string(pz), fmt_time(dz), fmt_time(sz),
               fmt_ratio(dz / sz), fmt_time(dense.makespan),
               fmt_time(sparse.makespan)});
  }
  t.print();
  return 0;
}
