/// \file bench_compare.cpp
/// \brief Diffs two SPTRSV_BENCH_JSON report directories and flags
/// regressions (docs/OBSERVABILITY.md).
///
///   bench_compare [--tol FRAC] BASELINE_DIR CANDIDATE_DIR
///   bench_compare --self-test
///
/// Reports are matched by filename (NNN_<stem>.json, schema
/// "sptrsv-bench/1"); every value is compared lower-is-better, and a
/// relative increase beyond --tol (default 0.10) is a regression. Exit
/// codes: 0 no regressions, 1 regressions found, 2 usage or IO failure.
///
/// Reports whose per-rank row sets differ (metric.<name>.rank<N> rows
/// appearing on one side only — e.g. a run that degraded to fewer ranks or
/// re-expanded) are not silently skipped: the added/removed ranks are
/// listed per metric as a RANKSET line and each mismatched metric counts
/// as one regression. Files present on one side only are reported too.
///
/// --self-test writes a baseline and a deliberately regressed copy into a
/// scratch directory and checks both comparison outcomes; it is wired into
/// ctest so the regression exit path stays exercised.

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Report {
  std::string point;
  std::map<std::string, double> values;
};

/// Minimal parser for the flat sptrsv-bench/1 document bench_report writes:
/// {"schema":"sptrsv-bench/1","point":"<stem>","values":{"k":num,...}}.
/// Returns false on anything that doesn't look like that schema.
bool parse_report(const std::string& text, Report& out) {
  auto find_string = [&](const char* key, std::string& val) {
    const std::string pat = std::string("\"") + key + "\":\"";
    const size_t at = text.find(pat);
    if (at == std::string::npos) return false;
    const size_t begin = at + pat.size();
    const size_t end = text.find('"', begin);
    if (end == std::string::npos) return false;
    val = text.substr(begin, end - begin);
    return true;
  };
  std::string schema;
  if (!find_string("schema", schema) || schema != "sptrsv-bench/1") return false;
  if (!find_string("point", out.point)) return false;
  const size_t vals_at = text.find("\"values\":{");
  if (vals_at == std::string::npos) return false;
  size_t i = vals_at + std::strlen("\"values\":{");
  while (i < text.size() && text[i] != '}') {
    if (text[i] == ',') {
      ++i;
      continue;
    }
    if (text[i] != '"') return false;
    const size_t kend = text.find('"', i + 1);
    if (kend == std::string::npos || kend + 1 >= text.size() ||
        text[kend + 1] != ':') {
      return false;
    }
    const std::string key = text.substr(i + 1, kend - i - 1);
    char* num_end = nullptr;
    const double v = std::strtod(text.c_str() + kend + 2, &num_end);
    if (num_end == text.c_str() + kend + 2) return false;
    out.values[key] = v;
    i = static_cast<size_t>(num_end - text.c_str());
  }
  return i < text.size();  // saw the closing brace
}

bool read_report(const fs::path& path, Report& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return parse_report(text, out);
}

/// Loads every *.json report in `dir`, keyed by filename.
bool load_dir(const fs::path& dir, std::map<std::string, Report>& out) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    std::fprintf(stderr, "bench_compare: not a directory: %s\n", dir.c_str());
    return false;
  }
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".json") continue;
    Report rep;
    if (!read_report(entry.path(), rep)) {
      std::fprintf(stderr, "bench_compare: skipping unparsable report %s\n",
                   entry.path().c_str());
      continue;
    }
    out.emplace(entry.path().filename().string(), std::move(rep));
  }
  if (ec) {
    std::fprintf(stderr, "bench_compare: cannot list %s\n", dir.c_str());
    return false;
  }
  return true;
}

/// Splits "metric.cluster.wait_time.rank3" into the metric stem and the
/// rank index; false when the key carries no ".rank<N>" suffix.
bool split_rank_key(const std::string& key, std::string* stem, int* rank) {
  const size_t at = key.rfind(".rank");
  if (at == std::string::npos) return false;
  const char* digits = key.c_str() + at + 5;
  if (*digits == '\0') return false;
  char* end = nullptr;
  const long r = std::strtol(digits, &end, 10);
  if (*end != '\0' || r < 0) return false;
  *stem = key.substr(0, at);
  *rank = static_cast<int>(r);
  return true;
}

std::string fmt_ranks(const std::vector<int>& v) {
  std::string s = "{";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(v[i]);
  }
  return s + "}";
}

/// Compares candidate against baseline; returns the number of regressions
/// (relative increase > tol on any value, all lower-is-better, plus one
/// per metric whose per-rank row set changed).
int compare_dirs(const fs::path& base_dir, const fs::path& cand_dir, double tol,
                 bool quiet = false) {
  std::map<std::string, Report> base, cand;
  if (!load_dir(base_dir, base) || !load_dir(cand_dir, cand)) return -1;
  int regressions = 0;
  int compared = 0;
  for (const auto& [file, b] : base) {
    const auto it = cand.find(file);
    if (it == cand.end()) {
      if (!quiet) {
        std::fprintf(stderr, "bench_compare: %s missing from candidate\n",
                     file.c_str());
      }
      continue;
    }
    // Keys present on one side only. A degraded or re-expanded run changes
    // which metric.<name>.rank<N> rows exist; skipping them silently would
    // let a world-size change pass as "no regressions". Group the
    // mismatches by metric stem and report the rank sets explicitly; every
    // other one-sided key gets a warning.
    std::map<std::string, std::pair<std::vector<int>, std::vector<int>>> ranksets;
    for (const auto& [name, bv] : b.values) {
      if (it->second.values.count(name) != 0) continue;
      std::string stem;
      int rk = -1;
      if (split_rank_key(name, &stem, &rk)) {
        ranksets[stem].second.push_back(rk);  // removed in candidate
      } else if (!quiet) {
        std::fprintf(stderr, "bench_compare: %s value %s missing from candidate\n",
                     file.c_str(), name.c_str());
      }
    }
    for (const auto& [name, cv] : it->second.values) {
      if (b.values.count(name) != 0) continue;
      std::string stem;
      int rk = -1;
      if (split_rank_key(name, &stem, &rk)) {
        ranksets[stem].first.push_back(rk);  // added by candidate
      } else if (!quiet) {
        std::fprintf(stderr, "bench_compare: %s value %s only in candidate\n",
                     file.c_str(), name.c_str());
      }
    }
    for (const auto& [stem, delta] : ranksets) {
      ++regressions;
      if (!quiet) {
        std::printf("RANKSET %s %s: ranks added %s, removed %s\n", file.c_str(),
                    stem.c_str(), fmt_ranks(delta.first).c_str(),
                    fmt_ranks(delta.second).c_str());
      }
    }
    for (const auto& [name, bv] : b.values) {
      const auto vt = it->second.values.find(name);
      if (vt == it->second.values.end()) continue;
      ++compared;
      const double nv = vt->second;
      const double denom = std::max(std::fabs(bv), 1e-300);
      const double rel = (nv - bv) / denom;
      if (rel > tol) {
        ++regressions;
        if (!quiet) {
          std::printf("REGRESSION %s %s: %.6g -> %.6g (+%.1f%% > %.1f%%)\n",
                      file.c_str(), name.c_str(), bv, nv, 100.0 * rel,
                      100.0 * tol);
        }
      }
    }
  }
  for (const auto& [file, c] : cand) {
    if (base.count(file) == 0 && !quiet) {
      std::fprintf(stderr, "bench_compare: %s only in candidate\n", file.c_str());
    }
  }
  if (!quiet) {
    std::printf("compared %d values across %zu matched reports: %d regression%s\n",
                compared, base.size(), regressions, regressions == 1 ? "" : "s");
  }
  return regressions;
}

bool write_file(const fs::path& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return (std::fclose(f) == 0) && ok;
}

/// Proves the regression exit path: a clean pair compares equal, an
/// injected +50% makespan is flagged, a regression confined to one rank's
/// metric row (metric.<name>.rank<N>) is flagged even though the
/// cross-rank total is unchanged, and a candidate whose per-rank row set
/// changed (rank row removed, another added) is flagged as a RANKSET
/// mismatch instead of being silently skipped. Returns the exit code.
int self_test() {
  const fs::path root = fs::temp_directory_path() / "sptrsv_bench_compare_selftest";
  std::error_code ec;
  fs::remove_all(root, ec);
  const fs::path base = root / "base";
  const fs::path same = root / "same";
  const fs::path regressed = root / "regressed";
  fs::create_directories(base, ec);
  fs::create_directories(same, ec);
  fs::create_directories(regressed, ec);
  const fs::path skewed = root / "skewed";
  fs::create_directories(skewed, ec);
  const fs::path reshaped = root / "reshaped";
  fs::create_directories(reshaped, ec);
  const char* doc_base =
      "{\"schema\":\"sptrsv-bench/1\",\"point\":\"new_2x2x4\","
      "\"values\":{\"makespan\":0.001,\"metric.cluster.messages.z\":128,"
      "\"metric.cluster.wait_time.rank0\":0.0001,"
      "\"metric.cluster.wait_time.rank1\":0.0001}}\n";
  const char* doc_regressed =
      "{\"schema\":\"sptrsv-bench/1\",\"point\":\"new_2x2x4\","
      "\"values\":{\"makespan\":0.0015,\"metric.cluster.messages.z\":128,"
      "\"metric.cluster.wait_time.rank0\":0.0001,"
      "\"metric.cluster.wait_time.rank1\":0.0001}}\n";
  // Same makespan and totals, but rank 1's wait doubled while rank 0's
  // halved — only the per-rank rows can catch this load-balance shift.
  const char* doc_skewed =
      "{\"schema\":\"sptrsv-bench/1\",\"point\":\"new_2x2x4\","
      "\"values\":{\"makespan\":0.001,\"metric.cluster.messages.z\":128,"
      "\"metric.cluster.wait_time.rank0\":0.00005,"
      "\"metric.cluster.wait_time.rank1\":0.0002}}\n";
  // Same values where comparable, but rank 1's row vanished and a rank 2
  // row appeared — the world changed size. Must surface as a RANKSET
  // mismatch, not be silently skipped by the key-matching loop.
  const char* doc_reshaped =
      "{\"schema\":\"sptrsv-bench/1\",\"point\":\"new_2x2x4\","
      "\"values\":{\"makespan\":0.001,\"metric.cluster.messages.z\":128,"
      "\"metric.cluster.wait_time.rank0\":0.0001,"
      "\"metric.cluster.wait_time.rank2\":0.0001}}\n";
  if (!write_file(base / "000_new_2x2x4.json", doc_base) ||
      !write_file(same / "000_new_2x2x4.json", doc_base) ||
      !write_file(regressed / "000_new_2x2x4.json", doc_regressed) ||
      !write_file(skewed / "000_new_2x2x4.json", doc_skewed) ||
      !write_file(reshaped / "000_new_2x2x4.json", doc_reshaped)) {
    std::fprintf(stderr, "self-test: cannot write scratch reports\n");
    return 2;
  }
  const int clean = compare_dirs(base, same, 0.10, /*quiet=*/true);
  const int dirty = compare_dirs(base, regressed, 0.10, /*quiet=*/true);
  const int rank_dirty = compare_dirs(base, skewed, 0.10, /*quiet=*/true);
  const int rankset_dirty = compare_dirs(base, reshaped, 0.10, /*quiet=*/true);
  fs::remove_all(root, ec);
  if (clean != 0) {
    std::fprintf(stderr, "self-test FAIL: identical dirs reported %d\n", clean);
    return 1;
  }
  if (dirty <= 0) {
    std::fprintf(stderr, "self-test FAIL: injected regression not flagged\n");
    return 1;
  }
  if (rank_dirty <= 0) {
    std::fprintf(stderr,
                 "self-test FAIL: per-rank regression hidden by unchanged "
                 "totals was not flagged\n");
    return 1;
  }
  if (rankset_dirty <= 0) {
    std::fprintf(stderr,
                 "self-test FAIL: changed per-rank row set (rank removed, "
                 "rank added) was silently skipped\n");
    return 1;
  }
  std::printf("self-test PASS: identical dirs clean, injected +50%% flagged, "
              "per-rank skew flagged, rank-set change flagged\n");
  return 0;
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: bench_compare [--tol FRAC] BASELINE_DIR CANDIDATE_DIR\n"
               "       bench_compare --self-test\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  double tol = 0.10;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--self-test") {
      return self_test();
    } else if (a == "--tol") {
      if (i + 1 >= argc) usage();
      tol = std::atof(argv[++i]);
    } else if (!a.empty() && a[0] == '-') {
      usage();
    } else {
      dirs.push_back(a);
    }
  }
  if (dirs.size() != 2) usage();
  const int regressions = compare_dirs(dirs[0], dirs[1], tol);
  if (regressions < 0) return 2;
  return regressions > 0 ? 1 : 0;
}
