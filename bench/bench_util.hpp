#pragma once
/// \file bench_util.hpp
/// \brief Shared helpers for the figure/table reproduction benches.
///
/// Every bench regenerates one table or figure of the paper: it sweeps the
/// paper's parameters, runs the modeled solve, and prints the same series
/// the paper plots (see DESIGN.md §4 and EXPERIMENTS.md). Benches default
/// to a reduced sweep that finishes in seconds-to-minutes on one machine;
/// set SPTRSV_BENCH_FULL=1 for the paper's full parameter grid.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/sptrsv3d.hpp"
#include "factor/sptrsv_seq.hpp"
#include "gpusim/gpu_sptrsv.hpp"
#include "sparse/paper_matrices.hpp"
#include "trace/trace.hpp"

namespace sptrsv::bench {

inline bool full_sweep() {
  const char* v = std::getenv("SPTRSV_BENCH_FULL");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Matrix scale used by benches (paper matrices are far larger; the scaled
/// instances keep the regime, see DESIGN.md §3). SPTRSV_BENCH_SMALL=1
/// switches to the small instances for quick smoke runs.
inline MatrixScale bench_scale() {
  const char* v = std::getenv("SPTRSV_BENCH_SMALL");
  const bool small = v != nullptr && v[0] != '\0' && v[0] != '0';
  return small ? MatrixScale::kSmall : MatrixScale::kMedium;
}

/// SPTRSV_BENCH_TRACE=<dir> dumps one Perfetto trace JSON per sweep point
/// into <dir> (docs/OBSERVABILITY.md). Empty string: tracing off.
inline std::string bench_trace_dir() {
  const char* v = std::getenv("SPTRSV_BENCH_TRACE");
  return (v != nullptr) ? std::string(v) : std::string();
}

/// SPTRSV_BENCH_JSON=<dir> writes one machine-readable report per sweep
/// point into <dir> as NNN_<stem>.json (schema "sptrsv-bench/1"): the
/// bench's headline numbers plus, for modeled solves, the metric-registry
/// totals. bench_compare diffs two such directories. Empty string: off.
inline std::string bench_json_dir() {
  const char* v = std::getenv("SPTRSV_BENCH_JSON");
  return (v != nullptr) ? std::string(v) : std::string();
}

inline bool bench_json_enabled() { return !bench_json_dir().empty(); }

/// SPTRSV_BENCH_FAULT=<drop_prob> runs every solve over a lossy network that
/// drops each data/ack frame with the given probability. The reliable
/// transport (docs/ROBUSTNESS.md) retransmits until delivery, so the printed
/// tables are unchanged; each sweep point adds a `# fault:` line reporting
/// the retransmit traffic and the recovery delay on the fault clock.
inline double bench_fault_drop() {
  const char* v = std::getenv("SPTRSV_BENCH_FAULT");
  if (v == nullptr || v[0] == '\0') return 0.0;
  return std::atof(v);
}

/// SPTRSV_BENCH_CRASH=<mtbf_seconds> arms a Poisson crash-stop model with
/// the given per-rank mean time between failures. Ranks die mid-solve and
/// are recovered (heartbeat detection, spare adoption, buddy-checkpoint
/// restore — docs/ROBUSTNESS.md), so the printed tables are unchanged; each
/// sweep point adds a `# crash:` line reporting the crashes absorbed, the
/// checkpoint-traffic overhead and the recovery time on the fault clock.
inline double bench_crash_mtbf() {
  const char* v = std::getenv("SPTRSV_BENCH_CRASH");
  if (v == nullptr || v[0] == '\0') return 0.0;
  return std::atof(v);
}

/// SPTRSV_BENCH_SDC=<rate> injects silent memory faults (bit flips in live
/// solver state) as a Poisson process with the given per-rank rate per
/// virtual second, and arms ABFT so every flip is detected and corrected
/// in place (docs/ROBUSTNESS.md, SDC section). The printed tables are
/// unchanged; each sweep point adds a `# sdc:` line with the fault counts
/// and the ABFT overhead on the fault clock, and the SPTRSV_BENCH_JSON
/// reports carry the metric.abft.* totals.
inline double bench_sdc_rate() {
  const char* v = std::getenv("SPTRSV_BENCH_SDC");
  if (v == nullptr || v[0] == '\0') return 0.0;
  return std::atof(v);
}

/// SPTRSV_BENCH_DEGRADE=1 empties the spare-rank pool and arms elastic
/// shrink-and-redistribute recovery (RunOptions::degrade), so the crashes
/// from SPTRSV_BENCH_CRASH shrink the world and redistribute the dead
/// rank's partition instead of adopting spares (docs/ROBUSTNESS.md,
/// graceful degradation). The printed tables are unchanged; each sweep
/// point adds a `# degrade:` line with the shrink ledger.
inline bool bench_degrade() {
  const char* v = std::getenv("SPTRSV_BENCH_DEGRADE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// SPTRSV_BENCH_ELASTIC=1 layers spare-return re-expansion on top of the
/// degrade mode (implies SPTRSV_BENCH_DEGRADE): repaired nodes rejoin as
/// spares with mean time to repair equal to the crash MTBF, so a shrunk
/// world grows back mid-solve (docs/ROBUSTNESS.md, elasticity lifecycle).
/// The printed tables are unchanged; each sweep point adds a `# elastic:`
/// line with the re-expansion ledger.
inline bool bench_elastic() {
  const char* v = std::getenv("SPTRSV_BENCH_ELASTIC");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// SPTRSV_BENCH_DETERMINISTIC=1 runs every solve in the deterministic
/// scheduler mode: slower (ranks serialize on the run token), but two runs
/// of a bench print byte-identical tables (docs/DETERMINISM.md).
inline RunOptions bench_run_options() {
  const char* v = std::getenv("SPTRSV_BENCH_DETERMINISTIC");
  RunOptions opts;
  opts.deterministic = v != nullptr && v[0] != '\0' && v[0] != '0';
  opts.trace = !bench_trace_dir().empty();
  // Metrics ride along with JSON reporting; they live outside the clean
  // ledger, so the printed tables are bitwise unchanged.
  opts.metrics = bench_json_enabled();
  return opts;
}

/// Prints the reproducibility banner benches lead with.
inline void print_mode_banner() {
  if (bench_run_options().deterministic) {
    std::printf("# deterministic scheduler: repeated runs are byte-identical\n");
  }
  const std::string tdir = bench_trace_dir();
  if (!tdir.empty()) {
    std::printf("# tracing: one Perfetto JSON per sweep point under %s/\n",
                tdir.c_str());
  }
  if (bench_json_enabled()) {
    std::printf("# reports: one sptrsv-bench/1 JSON per sweep point under %s/\n",
                bench_json_dir().c_str());
  }
  if (const double drop = bench_fault_drop(); drop > 0.0) {
    std::printf(
        "# lossy network: drop_prob=%.3f, reliable transport retransmits "
        "(tables unchanged; fault-clock overhead per sweep point)\n",
        drop);
  }
  if (const double mtbf = bench_crash_mtbf(); mtbf > 0.0) {
    std::printf(
        "# crash-stop: mtbf=%.3e s/rank, buddy-checkpoint recovery "
        "(tables unchanged; recovery overhead per sweep point)\n",
        mtbf);
  }
  if (const double rate = bench_sdc_rate(); rate > 0.0) {
    std::printf(
        "# sdc: rate=%.3e faults/s/rank, ABFT detect+correct "
        "(tables unchanged; verification overhead per sweep point)\n",
        rate);
  }
  if (bench_degrade() || bench_elastic()) {
    std::printf(
        "# degrade: spare pool emptied, crashes shrink the world and "
        "redistribute (tables unchanged; shrink ledger per sweep point)\n");
  }
  if (bench_elastic()) {
    std::printf(
        "# elastic: repaired nodes rejoin (repair mtbf = crash mtbf), "
        "degraded worlds re-expand (tables unchanged; re-expansion ledger "
        "per sweep point)\n");
  }
}

/// Writes `trace` as Perfetto JSON into the SPTRSV_BENCH_TRACE directory as
/// NNN_<stem>.json (NNN = per-process sweep-point counter). No-op when the
/// env var is unset or `trace` is null.
inline void maybe_dump_trace(const Trace* trace, const std::string& stem) {
  const std::string dir = bench_trace_dir();
  if (dir.empty() || trace == nullptr) return;
  static int counter = 0;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  char prefix[16];
  std::snprintf(prefix, sizeof(prefix), "%03d_", counter++);
  const std::string path = dir + "/" + prefix + stem + ".json";
  if (!trace->write_chrome_json_file(path)) {
    std::fprintf(stderr, "warning: failed to write trace %s\n", path.c_str());
  }
}

/// Writes one sweep-point report into the SPTRSV_BENCH_JSON directory as
/// NNN_<stem>.json. `values` are the point's headline numbers, flat and
/// name-sorted; all are compared lower-is-better by bench_compare, so emit
/// times/counts, not speedup ratios. Deterministic byte-for-byte for equal
/// inputs (%.17g doubles, sorted keys). No-op when the env var is unset.
inline void bench_report(const std::string& stem,
                         const std::map<std::string, double>& values) {
  const std::string dir = bench_json_dir();
  if (dir.empty()) return;
  static int counter = 0;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  char prefix[16];
  std::snprintf(prefix, sizeof(prefix), "%03d_", counter++);
  const std::string path = dir + "/" + prefix + stem + ".json";
  std::string doc = "{\"schema\":\"sptrsv-bench/1\",\"point\":\"" + stem +
                    "\",\"values\":{";
  bool first = true;
  for (const auto& [k, v] : values) {
    char num[40];
    std::snprintf(num, sizeof(num), "%.17g", v);
    doc += (first ? "" : ",");
    doc += "\"" + k + "\":" + num;
    first = false;
  }
  doc += "}}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr ||
      std::fwrite(doc.data(), 1, doc.size(), f) != doc.size() ||
      std::fclose(f) != 0) {
    std::fprintf(stderr, "warning: failed to write report %s\n", path.c_str());
    if (f != nullptr) std::fclose(f);
  }
}

/// Flattens a MetricsReport into per-name totals (sum over ranks), prefixed
/// "metric." so bench headline numbers and registry counters don't collide.
inline std::map<std::string, double> metric_totals(const MetricsReport& rep) {
  std::map<std::string, double> out;
  for (const auto& rank : rep.ranks) {
    for (const auto& [name, v] : rank.values) out["metric." + name] += v;
  }
  return out;
}

/// Adds per-rank metric rows (`metric.<name>.rank<N>`) next to the totals:
/// bench_compare's generic key loop then diffs each rank's series under
/// --tol, so a regression confined to one rank can't hide inside an
/// unchanged sum (e.g. a load-balance shift that leaves total messages
/// equal but doubles one rank's wait time).
inline void add_metric_rank_rows(const MetricsReport& rep,
                                 std::map<std::string, double>* out) {
  for (std::size_t r = 0; r < rep.ranks.size(); ++r) {
    const std::string suffix = ".rank" + std::to_string(r);
    for (const auto& [name, v] : rep.ranks[r].values) {
      (*out)["metric." + name + suffix] += v;
    }
  }
}

/// Sweep-point report for the GPU discrete-event model: phase timings plus
/// the per-GPU metric totals when GpuSolveConfig::metrics was on.
inline void bench_report_gpu(const std::string& stem, const GpuSolveTimes& t) {
  if (!bench_json_enabled()) return;
  std::map<std::string, double> values;
  if (t.metrics != nullptr) {
    values = metric_totals(*t.metrics);
    add_metric_rank_rows(*t.metrics, &values);
  }
  values["total"] = t.total;
  values["l_solve"] = t.l_solve;
  values["u_solve"] = t.u_solve;
  values["z_comm"] = t.z_comm;
  bench_report(stem, values);
}

/// Factorizes a paper matrix once and caches it across sweep points.
class SystemCache {
 public:
  const FactoredSystem& get(PaperMatrix which, int nd_levels, MatrixScale scale) {
    const std::string key =
        paper_matrix_name(which) + "/" + std::to_string(nd_levels) + "/" +
        std::to_string(static_cast<int>(scale));
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      const CsrMatrix a = make_paper_matrix(which, scale);
      it = cache_
               .emplace(key, std::make_unique<FactoredSystem>(
                                 analyze_and_factor(a, nd_levels)))
               .first;
    }
    return *it->second;
  }

 private:
  std::map<std::string, std::unique_ptr<FactoredSystem>> cache_;
};

/// Deterministic RHS for benches.
inline std::vector<Real> bench_rhs(Idx n, Idx nrhs) {
  std::vector<Real> b(static_cast<size_t>(n) * nrhs);
  for (size_t i = 0; i < b.size(); ++i) {
    b[i] = 1.0 + 0.001 * static_cast<Real>(i % 977);
  }
  return b;
}

/// Runs the threaded CPU 3D solve and returns the outcome.
inline DistSolveOutcome run_cpu(const FactoredSystem& fs, const Grid3dShape& shape,
                                Algorithm3d alg, const MachineModel& machine,
                                Idx nrhs = 1, TreeKind tree = TreeKind::kBinary,
                                bool sparse_zreduce = true) {
  SolveConfig cfg;
  cfg.shape = shape;
  cfg.algorithm = alg;
  cfg.tree = tree;
  cfg.nrhs = nrhs;
  cfg.sparse_zreduce = sparse_zreduce;
  cfg.run = bench_run_options();
  MachineModel m = machine;
  if (const double drop = bench_fault_drop(); drop > 0.0) {
    m.perturb.drop_prob = drop;
  }
  if (const double rate = bench_sdc_rate(); rate > 0.0) {
    m.perturb.sdc_rate = rate;
    cfg.run.abft = true;  // flips are corrected: tables stay unchanged
  }
  if (const double mtbf = bench_crash_mtbf(); mtbf > 0.0) {
    m.perturb.crash_mtbf = mtbf;
    if (bench_elastic()) {
      // Repairs arrive at the same Poisson rate the crashes do, so a
      // typical sweep point shrinks and re-grows at least once.
      m.perturb.repair_mtbf = mtbf;
    }
    if (bench_degrade() || bench_elastic()) {
      // Elastic mode: no spares at all — every crash shrinks the world and
      // redistributes the dead rank's partition. Only a lost survivor
      // quorum aborts the sweep.
      m.recovery.spare_ranks = 0;
      cfg.run.degrade = true;
    } else {
      // A sweep wants overhead lines, not unrecoverable-verdict demos (the
      // tests own those): widen the spare pool to the cluster size so large
      // points survive several deaths. A buddy-pair loss still aborts the
      // bench — raise the MTBF if a sweep trips one.
      m.recovery.spare_ranks = shape.px * shape.py * shape.pz;
    }
  }
  const auto b = bench_rhs(fs.lu.n(), nrhs);
  DistSolveOutcome out = solve_system_3d(fs, b, cfg, m);
  if (bench_fault_drop() > 0.0) {
    const TransportStats t = out.run_stats.transport_totals();
    const double clean = out.run_stats.makespan();
    const double faulty = out.run_stats.fault_makespan();
    std::printf("# fault: retransmits=%lld (%lld bytes), acks=%lld (%lld bytes), "
                "makespan %.3e -> %.3e s (+%.1f%%)\n",
                static_cast<long long>(t.retransmits),
                static_cast<long long>(t.retrans_bytes),
                static_cast<long long>(t.acks),
                static_cast<long long>(t.ack_bytes), clean, faulty,
                clean > 0.0 ? 100.0 * (faulty - clean) / clean : 0.0);
  }
  if (bench_crash_mtbf() > 0.0) {
    const RecoveryStats rec = out.run_stats.recovery_stats();
    const double clean = out.run_stats.makespan();
    const double recovery = rec.detect_time + rec.repair_time +
                            rec.restore_time + rec.replay_time;
    std::printf("# crash: crashes=%lld spares=%lld, checkpoints=%lld "
                "(%lld bytes, +%.1f%% of makespan), recovery %.3e s\n",
                static_cast<long long>(rec.crashes),
                static_cast<long long>(rec.spares_used),
                static_cast<long long>(rec.checkpoints),
                static_cast<long long>(rec.checkpoint_bytes),
                clean > 0.0 ? 100.0 * rec.checkpoint_time / clean : 0.0,
                recovery);
  }
  if (bench_crash_mtbf() > 0.0 && (bench_degrade() || bench_elastic())) {
    const DegradationStats deg = out.run_stats.degradation_stats();
    std::printf("# degrade: events=%lld ranks_lost=%lld adopted=%lld "
                "redistributed=%lld bytes, shrink+agree %.3e s, "
                "redistribute %.3e s, replay %.3e s, overload %.3e s\n",
                static_cast<long long>(deg.degrades),
                static_cast<long long>(deg.ranks_lost),
                static_cast<long long>(deg.partitions_adopted),
                static_cast<long long>(deg.redistributed_bytes),
                deg.agree_time + deg.shrink_time, deg.redistribute_time,
                deg.replay_time, deg.overload_time);
  }
  if (bench_crash_mtbf() > 0.0 && bench_elastic()) {
    const ElasticityStats el = out.run_stats.elasticity_stats();
    const double overhead =
        el.agree_time + el.expand_time + el.transfer_time + el.replay_time;
    std::printf("# elastic: returns=%lld expansions=%lld transfers=%lld "
                "(%lld bytes), re-expansion %.3e s\n",
                static_cast<long long>(el.returns),
                static_cast<long long>(el.expansions),
                static_cast<long long>(el.transfers),
                static_cast<long long>(el.transfer_bytes), overhead);
  }
  if (bench_sdc_rate() > 0.0) {
    const SdcStats s = out.run_stats.sdc_stats();
    const double clean = out.run_stats.makespan();
    const double overhead = s.verify_time + s.repair_time;
    std::printf("# sdc: injected=%lld detected=%lld corrected=%lld "
                "(escalated=%lld), checks=%lld, abft overhead %.3e s "
                "(+%.2f%% of makespan)\n",
                static_cast<long long>(s.injected),
                static_cast<long long>(s.detected),
                static_cast<long long>(s.corrected),
                static_cast<long long>(s.escalated),
                static_cast<long long>(s.checks), overhead,
                clean > 0.0 ? 100.0 * overhead / clean : 0.0);
  }
  const std::string stem =
      std::string(alg == Algorithm3d::kProposed ? "new" : "base") + "_" +
      std::to_string(shape.px) + "x" + std::to_string(shape.py) + "x" +
      std::to_string(shape.pz);
  maybe_dump_trace(out.run_stats.trace.get(), stem);
  if (bench_json_enabled() && out.run_stats.metrics != nullptr) {
    std::map<std::string, double> values = metric_totals(*out.run_stats.metrics);
    add_metric_rank_rows(*out.run_stats.metrics, &values);
    values["makespan"] = out.makespan;
    values["fault_makespan"] = out.run_stats.fault_makespan();
    bench_report(stem, values);
  }
  return out;
}

/// Picks (px, py) as square as possible with px*py = p2d (paper Fig 4:
/// "the 2D grid (Px, Py) is set as square as possible").
inline std::pair<int, int> square_grid(int p2d) {
  int px = 1;
  for (int d = 1; d * d <= p2d; ++d) {
    if (p2d % d == 0) px = d;
  }
  return {px, p2d / px};
}

/// Simple aligned table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }
  void print() const {
    std::vector<size_t> w(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& r) {
      for (size_t i = 0; i < r.size() && i < w.size(); ++i) {
        w[i] = std::max(w[i], r[i].size());
      }
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);
    auto print_row = [&](const std::vector<std::string>& r) {
      for (size_t i = 0; i < r.size(); ++i) {
        std::printf("%s%-*s", i ? "  " : "", static_cast<int>(w[i]), r[i].c_str());
      }
      std::printf("\n");
    };
    print_row(header_);
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt_time(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3e", seconds);
  return buf;
}

inline std::string fmt_ratio(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", r);
  return buf;
}

}  // namespace sptrsv::bench
