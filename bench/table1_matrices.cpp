/// \file table1_matrices.cpp
/// \brief Reproduces Table 1: the test matrices and their LU statistics.
///
/// Paper columns: Matrix, Size n, Nonzeros in LU, Density = nnz(LU)/n^2,
/// Description. Our matrices are scaled-down synthetic stand-ins (DESIGN.md
/// §3); the density *class* (dense-chemistry vs sparse-Poisson etc.) is the
/// property that matters downstream and is reproduced here.

#include "bench/bench_util.hpp"
#include "ordering/etree.hpp"
#include "symbolic/colcounts.hpp"

using namespace sptrsv;
using namespace sptrsv::bench;

int main() {
  const MatrixScale scale = bench_scale();
  std::printf("# Table 1 — test matrices (synthetic stand-ins, scale=%s)\n",
              scale == MatrixScale::kMedium ? "medium" : "small");
  std::printf("# Density := nnz(LU) / n^2, LU pattern from ND-ordered symbolic "
              "factorization\n");
  Table t({"Matrix", "Size n", "Nonzeros in LU", "Density", "Description"});
  for (const PaperMatrix which : all_paper_matrices()) {
    const CsrMatrix a = make_paper_matrix(which, scale);
    NdOptions opt;
    opt.levels = 5;
    const NdOrdering nd = nested_dissection(a, opt);
    const CsrMatrix pa = a.permuted_symmetric(nd.perm);
    const auto parent = elimination_tree(pa);
    const Nnz nnz_l = cholesky_factor_nnz(pa, parent);
    const Nnz nnz_lu = 2 * nnz_l - a.rows();  // L and U share the diagonal
    const double density =
        static_cast<double>(nnz_lu) / (static_cast<double>(a.rows()) * a.rows());
    char dens[32];
    std::snprintf(dens, sizeof(dens), "%.3f%%", 100.0 * density);
    t.add_row({paper_matrix_name(which), std::to_string(a.rows()),
               std::to_string(nnz_lu), dens, paper_matrix_description(which)});
    bench_report(paper_matrix_name(which),
                 {{"n", static_cast<double>(a.rows())},
                  {"nnz_lu", static_cast<double>(nnz_lu)},
                  {"density", density}});
  }
  t.print();
  return 0;
}
