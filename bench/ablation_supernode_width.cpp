/// \file ablation_supernode_width.cpp
/// \brief Ablation of a substrate design choice DESIGN.md calls out: the
/// supernode width cap. Wide supernodes amortize per-message latency and
/// improve kernel efficiency but lengthen the serial root chains and
/// reduce DAG parallelism; the sweep shows the trade-off on the modeled
/// solve and on the DAG statistics.

#include "bench/bench_util.hpp"
#include "symbolic/analysis.hpp"

using namespace sptrsv;
using namespace sptrsv::bench;

int main() {
  const MachineModel machine = MachineModel::cori_haswell();
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, bench_scale());
  std::printf("# Ablation — supernode width cap (s2D9pt2048, n=%d, proposed alg,\n",
              a.rows());
  std::printf("# P=512 as 4x8x16 on %s)\n", machine.name.c_str());
  Table t({"max_width", "supernodes", "DAG parallelism", "chain length",
           "modeled solve"});
  for (const Idx cap : {8, 24, 48, 96, 192}) {
    const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/4, cap);
    const SolveDagStats dag = analyze_solve_dag(fs.lu.sym);
    const auto out = run_cpu(fs, {4, 8, 16}, Algorithm3d::kProposed, machine);
    char par[32];
    std::snprintf(par, sizeof(par), "%.1f", dag.parallelism());
    t.add_row({std::to_string(cap), std::to_string(fs.lu.num_supernodes()), par,
               std::to_string(dag.critical_path_length), fmt_time(out.makespan)});
    bench_report("cap" + std::to_string(cap),
                 {{"supernodes", static_cast<double>(fs.lu.num_supernodes())},
                  {"chain_length", static_cast<double>(dag.critical_path_length)},
                  {"makespan", out.makespan}});
  }
  t.print();
  return 0;
}
