/// \file analysis_dag.cpp
/// \brief Critical-path analysis of every test matrix's solve DAG — the
/// quantities behind the scaling knees in Fig 4 and Fig 9-11: available
/// parallelism bounds the useful processor count, and the critical path
/// bounds the solve time on any machine (cf. the paper's critical-path
/// studies [12, 13]).

#include "bench/bench_util.hpp"
#include "symbolic/analysis.hpp"

using namespace sptrsv;
using namespace sptrsv::bench;

int main() {
  SystemCache cache;
  std::printf("# Solve-DAG analysis (nrhs=1, ND levels=5)\n");
  Table t({"matrix", "tasks", "total Mflop", "chain Mflop", "parallelism",
           "chain len", "cp bound @6Gf/s+1.8us"});
  for (const PaperMatrix which : all_paper_matrices()) {
    const FactoredSystem& fs = cache.get(which, 5, bench_scale());
    const SolveDagStats s = analyze_solve_dag(fs.lu.sym);
    char total[32], chain[32], par[32], bound[32];
    std::snprintf(total, sizeof(total), "%.2f", s.total_flops / 1e6);
    std::snprintf(chain, sizeof(chain), "%.3f", s.critical_path_flops / 1e6);
    std::snprintf(par, sizeof(par), "%.1f", s.parallelism());
    std::snprintf(bound, sizeof(bound), "%.3e",
                  solve_time_lower_bound(s, 6e9, 1.8e-6));
    t.add_row({paper_matrix_name(which), std::to_string(s.num_tasks), total, chain,
               par, std::to_string(s.critical_path_length), bound});
    bench_report(paper_matrix_name(which),
                 {{"tasks", static_cast<double>(s.num_tasks)},
                  {"total_flops", s.total_flops},
                  {"critical_path_flops", s.critical_path_flops},
                  {"critical_path_length",
                   static_cast<double>(s.critical_path_length)},
                  {"cp_bound", solve_time_lower_bound(s, 6e9, 1.8e-6)}});
  }
  t.print();
  std::printf("\nParallelism ~bounds the useful total rank count; the chain bound\n"
              "is a floor under every curve in Fig 4 and Fig 9-11.\n");
  return 0;
}
