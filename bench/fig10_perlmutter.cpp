/// \file fig10_perlmutter.cpp
/// \brief Reproduces Fig 10: proposed 3D SpTRSV on Perlmutter (A100), CPU
/// vs GPU solves on 1x1xPz layouts, nrhs in {1, 50}. Matrices:
/// s1_mat_0_253872, s2D9pt2048, nlpkkt80, dielFilterV3real.

#include "bench/gpu_common.hpp"

int main() {
  sptrsv::bench::run_gpu_1x1xpz_figure(
      "Fig 10", sptrsv::MachineModel::perlmutter(),
      {sptrsv::PaperMatrix::kS1Mat0253872, sptrsv::PaperMatrix::kS2D9pt2048,
       sptrsv::PaperMatrix::kNlpkkt80, sptrsv::PaperMatrix::kDielFilterV3real},
      "4.6x-6.5x @1RHS, 3.7x-5.2x @50RHS");
  return 0;
}
