/// \file fig8_loadbalance_3d.cpp
/// \brief Reproduces Fig 8: load balance of the nlpkkt80 solve — at large
/// Pz the baseline's idle grids show up as a wide min/max spread while the
/// proposed algorithm's replicated computation keeps ranks busy (its mean
/// rises, its max — the one that matters — does not).

#include "bench/loadbalance_common.hpp"

int main() {
  sptrsv::bench::run_loadbalance_figure("Fig 8", sptrsv::PaperMatrix::kNlpkkt80);
  return 0;
}
