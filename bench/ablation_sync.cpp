/// \file ablation_sync.cpp
/// \brief Ablation of §3.1 in isolation: the one-synchronization schedule
/// with replicated computation (proposed) vs the O(log Pz)-synchronization
/// level-by-level schedule (baseline), with binary communication trees
/// enabled for BOTH so only the schedule differs.

#include "bench/bench_util.hpp"

using namespace sptrsv;
using namespace sptrsv::bench;

int main() {
  const MachineModel machine = MachineModel::cori_haswell();
  SystemCache cache;

  std::printf("# Ablation — one-sync replicated schedule (§3.1) vs level-by-level,\n");
  std::printf("# binary trees in both; %s\n", machine.name.c_str());
  for (const PaperMatrix which :
       {PaperMatrix::kS2D9pt2048, PaperMatrix::kNlpkkt80}) {
    const FactoredSystem& fs = cache.get(which, /*nd_levels=*/5, bench_scale());
    std::printf("\n## %s\n", paper_matrix_name(which).c_str());
    Table t({"P", "Pz", "level-by-level", "one-sync", "speedup"});
    const std::vector<std::pair<int, int>> configs =
        full_sweep() ? std::vector<std::pair<int, int>>{{128, 4}, {128, 16}, {512, 8},
                                                        {2048, 8}, {2048, 32}}
                     : std::vector<std::pair<int, int>>{{128, 16}, {2048, 32}};
    for (const auto& [p, pz] : configs) {
      const auto [px, py] = square_grid(p / pz);
      const auto base = run_cpu(fs, {px, py, pz}, Algorithm3d::kBaseline, machine, 1,
                                TreeKind::kBinary);
      const auto prop = run_cpu(fs, {px, py, pz}, Algorithm3d::kProposed, machine, 1,
                                TreeKind::kBinary);
      t.add_row({std::to_string(p), std::to_string(pz), fmt_time(base.makespan),
                 fmt_time(prop.makespan), fmt_ratio(base.makespan / prop.makespan)});
    }
    t.print();
  }
  return 0;
}
